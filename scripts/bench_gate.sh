#!/usr/bin/env bash
# Regression gate over the macro-benchmark (`experiments bench`).
#
# Reads the checked-in baseline trajectory (BENCH_pr*.json, most recent
# PR by default), runs a fresh benchmark, and enforces three contracts:
#
#   1. The **deterministic payload** (event counts, simulated seconds,
#      completions — pure functions of the seed) must match the
#      baseline's newest phase exactly. Any drift is a behavior change,
#      not a perf change, and fails the gate outright. For the region10k
#      config this is also the shard-count-invariance gate: its payload
#      is pinned from an 8-shard run, so any shard-dependent behavior
#      diffs here.
#   2. The **wall-clock speed** (events_per_wall_sec) must be at least
#      NEZHA_BENCH_TOLERANCE × the baseline's. Wall numbers vary with
#      the host, so this is a coarse floor against order-of-magnitude
#      regressions, not an exact diff (default tolerance: 0.5).
#   3. Any **declared budgets** (`budget.<timing>` config entries, e.g.
#      region10k's wall-clock and peak-RSS caps) must hold on the fresh
#      run, scaled by NEZHA_BENCH_BUDGET_SCALE (default 1.0) for slow
#      CI hosts.
#
# Usage: scripts/bench_gate.sh [baseline.json] [fresh.json]
#   baseline.json   defaults to the highest-numbered BENCH_pr*.json
#   fresh.json      defaults to running the benchmark now
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-$(ls BENCH_pr*.json | sort -V | tail -1)}"
fresh="${2:-}"
tolerance="${NEZHA_BENCH_TOLERANCE:-0.5}"

if [ ! -f "$baseline" ]; then
    echo "bench_gate: baseline $baseline not found" >&2
    exit 2
fi

if [ -z "$fresh" ]; then
    fresh=target/bench_gate.json
    echo "==> experiments bench --out=$fresh --phase=gate"
    cargo run -q --release -p nezha-bench --bin experiments -- bench \
        --out="$fresh" --phase=gate
fi

budget_scale="${NEZHA_BENCH_BUDGET_SCALE:-1.0}"

python3 - "$baseline" "$fresh" "$tolerance" "$budget_scale" <<'PYEOF'
import json
import sys

# v1: deterministic + timing + metrics. v2 adds an optional per-report
# "percentiles" section (log-histogram quantile summaries); older
# baselines stay comparable because the gate diffs only "deterministic".
SCHEMAS = {1, 2}
PERCENTILE_KEYS = {"count", "p50", "p90", "p99", "p999", "max", "rel_error_bound"}
baseline_path, fresh_path = sys.argv[1], sys.argv[2]
tolerance, budget_scale = float(sys.argv[3]), float(sys.argv[4])

with open(baseline_path) as f:
    baseline = json.load(f)
with open(fresh_path) as f:
    fresh = json.load(f)


def check_schema(name, doc):
    v = doc.get("schema_version")
    if v not in SCHEMAS:
        sys.exit(
            f"bench_gate: {name}: unsupported schema_version {v!r} (want one of {sorted(SCHEMAS)})"
        )
    for r in doc.get("reports", []):
        for hist, summary in sorted(r.get("percentiles", {}).items()):
            got = set(summary)
            if got != PERCENTILE_KEYS:
                sys.exit(
                    f"bench_gate: {name}: report {r.get('id')!r} percentiles[{hist!r}] "
                    f"has keys {sorted(got)}, want {sorted(PERCENTILE_KEYS)}"
                )


check_schema(baseline_path, baseline)
check_schema(fresh_path, fresh)

# A trajectory file wraps per-phase documents; gate against the newest.
if "phases" in baseline:
    for phase in baseline["phases"]:
        check_schema(f"{baseline_path} phase {phase.get('phase')!r}", phase)
    reference = baseline["phases"][-1]
else:
    reference = baseline
print(f"    baseline: {baseline_path} (phase: {reference.get('phase')!r})")


def deterministic(doc):
    return {r["id"]: json.dumps(r["deterministic"], sort_keys=True) for r in doc["reports"]}


def speed(doc):
    return {r["id"]: r["timing"]["events_per_wall_sec"]["value"] for r in doc["reports"]}


ref_det, new_det = deterministic(reference), deterministic(fresh)
if set(ref_det) != set(new_det):
    sys.exit(
        f"bench_gate: config set changed: baseline {sorted(ref_det)} vs fresh {sorted(new_det)}"
    )
for rid in sorted(ref_det):
    if ref_det[rid] != new_det[rid]:
        print(f"FAIL {rid}: deterministic payload drifted from baseline", file=sys.stderr)
        print(f"  baseline: {ref_det[rid]}", file=sys.stderr)
        print(f"  fresh:    {new_det[rid]}", file=sys.stderr)
        sys.exit(
            "bench_gate: the deterministic section is a pure function of the seed; "
            "a mismatch is a behavior change, not noise"
        )
    print(f"    ok {rid}: deterministic payload matches baseline exactly")

ref_speed, new_speed = speed(reference), speed(fresh)
failed = False
for rid in sorted(ref_speed):
    floor = ref_speed[rid] * tolerance
    verdict = "ok" if new_speed[rid] >= floor else "FAIL"
    print(
        f"    {verdict} {rid}: {new_speed[rid]:,.0f} events/s "
        f"(floor {floor:,.0f} = {tolerance} x baseline {ref_speed[rid]:,.0f})"
    )
    failed |= new_speed[rid] < floor
if failed:
    sys.exit("bench_gate: wall-clock speed fell below the tolerance floor")

# Declared budgets: every `budget.<timing>` config entry on the fresh run
# caps the timing sample of the same name.
budget_failed = False
for r in fresh["reports"]:
    for key, raw in sorted(r.get("config", {}).items()):
        if not key.startswith("budget."):
            continue
        name = key[len("budget.") :]
        cap = float(raw) * budget_scale
        sample = r.get("timing", {}).get(name)
        if sample is None:
            sys.exit(f"bench_gate: {r['id']}: budget {key} names no timing sample")
        actual = sample["value"]
        verdict = "ok" if actual <= cap else "FAIL"
        print(
            f"    {verdict} {r['id']}: {name} {actual:,.1f} {sample.get('unit', '')} "
            f"<= budget {cap:,.1f} (scale {budget_scale})"
        )
        budget_failed |= actual > cap
if budget_failed:
    sys.exit("bench_gate: a run exceeded its declared budget")
print("bench_gate: all checks passed")
PYEOF

#!/usr/bin/env bash
# File-size guard: no .rs file under crates/ may exceed MAX_LINES lines.
#
# The old crates/core/src/cluster.rs monolith grew to ~2,700 lines before
# it had to be split into datapath/{ctx,dispatch,be,fe}.rs + config.rs +
# telemetry.rs + driver.rs; this gate keeps that from recurring by
# failing the build the moment a module crosses the threshold, while the
# split is still cheap.
#
# To exempt a file, add a line to ALLOW below in the form
#     path=<workspace-relative path> max=<higher cap> why=<justification>
# A bare exemption with no `why=` is rejected, and a stale exemption
# (file shrank back under MAX_LINES, or no longer exists) is an error so
# the list can only grow deliberately.
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_LINES=1200

# Post-refactor, `crates/vswitch` is a set of focused stage/table modules
# behind a facade, so it gets a tighter cap: no file may exceed 600
# lines. A file that wants more is a module that wants splitting — the
# stage combinators make that cheap (new stages, not a bigger monolith).
VSWITCH_MAX_LINES=600

# One entry per line; keep justifications honest and specific.
ALLOW=(
    # (none — vswitch.rs is a facade well under even the 600-line cap)
)

allow_max_for() {
    local path="$1" entry emax ewhy
    for entry in "${ALLOW[@]:-}"; do
        [ -n "$entry" ] || continue
        case "$entry" in
        path="$path"\ *)
            emax=$(sed -n 's/.* max=\([0-9][0-9]*\).*/\1/p' <<<"$entry")
            ewhy=$(sed -n 's/.* why=\(.*\)$/\1/p' <<<"$entry")
            if [ -z "$ewhy" ]; then
                echo "file-size-guard: exemption for $path has no why= justification" >&2
                exit 2
            fi
            echo "${emax:-$MAX_LINES}"
            return 0
            ;;
        esac
    done
    case "$path" in
    crates/vswitch/*) echo "$VSWITCH_MAX_LINES" ;;
    *) echo "$MAX_LINES" ;;
    esac
}

fail=0
checked=0
while IFS= read -r f; do
    rel="${f#./}"
    lines=$(wc -l <"$f")
    checked=$((checked + 1))
    cap=$(allow_max_for "$rel")
    if [ "$lines" -gt "$cap" ]; then
        echo "file-size-guard: $rel is $lines lines (cap $cap) — split it;" \
            "see how cluster.rs became datapath/{ctx,dispatch,be,fe}.rs" >&2
        fail=1
    fi
done < <(find crates -name '*.rs' -not -path '*/target/*' | sort)

# Stale-exemption check: every allow-listed file must still exist and
# still need its raised cap.
for entry in "${ALLOW[@]:-}"; do
    [ -n "$entry" ] || continue
    path=$(sed -n 's/^path=\([^ ]*\) .*/\1/p' <<<"$entry")
    [ -n "$path" ] || continue
    if [ ! -f "$path" ]; then
        echo "file-size-guard: stale exemption: $path no longer exists" >&2
        fail=1
    elif [ "$(wc -l <"$path")" -le "$MAX_LINES" ]; then
        echo "file-size-guard: stale exemption: $path is back under $MAX_LINES lines" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "file-size-guard: $checked files under crates/ within the caps" \
    "($MAX_LINES lines; $VSWITCH_MAX_LINES for crates/vswitch)"

#!/usr/bin/env bash
# The full local gate, in the order CI would run it:
# formatting, lints as errors, then the test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."

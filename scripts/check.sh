#!/usr/bin/env bash
# The full local gate, in the order CI would run it: formatting, the
# nezha-lint determinism/panic-safety pass, lints as errors, then the
# test suite.
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the full test suite (quick pre-commit run); still runs
#            the stage-graph equivalence smoke (combinator pipeline vs
#            the legacy reference semantics, plus the exact cost-plan
#            reconciliation properties), the reduced chaos smoke scenario
#            so the fault-injection path is never shipped unexercised,
#            plus the profiler smoke run
#            (`experiments profile` self-asserts its cycle reconciliation)
#            and the observability smoke (`experiments watch` runs the
#            windowed chaos scenario and asserts the SLO watchdog fires).
#            nezha-lint runs only on .rs files changed vs origin/main
#            (the symbol index is still built workspace-wide, so D8-D11
#            cross-file reasoning stays exact).
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
    case "$arg" in
    --fast) fast=1 ;;
    *)
        echo "usage: scripts/check.sh [--fast]" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> scripts/file_size_guard.sh"
./scripts/file_size_guard.sh

if [ "$fast" -eq 1 ]; then
    # Only lint files changed vs the merge base with origin/main; pass 1
    # still indexes the whole workspace, so graph rules see every caller.
    base=$(git merge-base HEAD origin/main 2>/dev/null || git rev-parse HEAD)
    changed=()
    while IFS= read -r f; do
        [[ -f "$f" && "$f" != *fixtures* ]] && changed+=("$f")
    done < <(git diff --name-only "$base" -- '*.rs'; git ls-files --others --exclude-standard -- '*.rs')
    if [ "${#changed[@]}" -gt 0 ]; then
        echo "==> nezha-lint --stale-allows --deny-warnings   (--fast: ${#changed[@]} changed file(s))"
        cargo run -q -p nezha-lint -- --stale-allows --deny-warnings "${changed[@]}"
    else
        echo "==> nezha-lint   (--fast: no .rs files changed vs origin/main, skipped)"
    fi
else
    echo "==> nezha-lint --workspace --stale-allows --deny-warnings"
    cargo run -q -p nezha-lint -- --workspace --stale-allows --deny-warnings
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "$fast" -eq 1 ]; then
    echo "==> cargo test -q -p nezha-vswitch --test stage_graph_properties   (--fast: graph-equivalence smoke)"
    cargo test -q -p nezha-vswitch --test stage_graph_properties
    echo "==> cargo test -q --test chaos smoke_   (--fast: reduced chaos scenario)"
    cargo test -q --test chaos smoke_
    echo "==> experiments profile   (--fast: profiler smoke, artifacts to target/profile-smoke)"
    mkdir -p target/profile-smoke
    NEZHA_PROFILE_DIR=target/profile-smoke cargo run -q --release -p nezha-bench --bin experiments -- profile
    echo "==> experiments bench --config=region10k_smoke   (--fast: shard-equivalence smoke)"
    cargo run -q --release -p nezha-bench --bin experiments -- bench --config=region10k_smoke
    echo "==> experiments watch   (--fast: observability smoke, self-asserts >=1 SLO event)"
    cargo run -q --release -p nezha-bench --bin experiments -- watch
    echo "All checks passed (--fast: full test suite skipped)."
else
    echo "==> cargo test -q"
    cargo test -q
    echo "==> cargo test -q --test chaos   (fault-injection suite)"
    cargo test -q --test chaos
    echo "All checks passed."
fi

//! End-to-end lifecycle scenarios across the whole stack: offload →
//! final stage → scale-out → fallback → re-offload, with live traffic
//! throughout and zero tolerance for lost connections outside injected
//! failures.

use nezha::core::be::OffloadPhase;
use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::conn::{ConnKind, ConnSpec};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::sim::topology::TopologyConfig;
use nezha::types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};

const VNIC: VnicId = VnicId(1);
const HOME: ServerId = ServerId(0);
const SERVICE: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);
const PORT: u16 = 9000;

fn cluster() -> Cluster {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .build();
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), HOME);
    vnic.allow_inbound_port(PORT);
    c.add_vnic(vnic, HOME, VmConfig::with_vcpus(64)).unwrap();
    c
}

fn spec(n: u32, at: SimTime, kind: ConnKind) -> ConnSpec {
    ConnSpec {
        vnic: VNIC,
        vpc: VpcId(1),
        tuple: FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 2, (n % 200) as u8 + 1),
            (1024 + n / 200 * 211 + n % 200) as u16,
            SERVICE,
            PORT,
        ),
        peer_server: ServerId(12 + n % 12),
        kind,
        start: at,
        payload: 200,
        overlay_encap_src: None,
    }
}

#[test]
fn full_lifecycle_keeps_every_connection() {
    let mut c = cluster();
    let mut n = 0u32;
    let mut drive = |c: &mut Cluster, count: u32| {
        let t = c.now();
        for i in 0..count {
            c.add_conn(spec(
                n + i,
                t + SimDuration::from_millis(i as u64),
                ConnKind::Inbound,
            ))
            .unwrap();
        }
        n += count;
        c.run_until(c.now() + SimDuration::from_secs(3));
    };

    // 1. Local phase.
    drive(&mut c, 100);
    assert_eq!(c.stats().completed, 100);

    // 2. Offload; traffic continues across the dual-running stage.
    c.trigger_offload(VNIC, c.now()).unwrap();
    drive(&mut c, 200);
    assert_eq!(c.backend(VNIC).unwrap().phase, OffloadPhase::Offloaded);
    assert_eq!(c.stats().completed, 300);
    assert_eq!(c.stats().failed, 0);

    // 3. Manual scale-out 4 -> 8; continuing flows keep completing even
    //    though the wider pool re-hashes them onto new FEs (a cache miss
    //    is just one extra rule lookup, §3.2.3).
    let added = c.scale_out(VNIC, 4, c.now());
    assert_eq!(added, 4);
    drive(&mut c, 200);
    assert_eq!(c.fe_count(VNIC), 8);
    assert_eq!(c.stats().completed, 500);
    assert_eq!(c.stats().failed, 0);

    // 4. Fallback to local.
    c.trigger_fallback(VNIC, c.now()).unwrap();
    drive(&mut c, 100);
    assert!(c.backend(VNIC).is_none());
    assert_eq!(c.fe_count(VNIC), 0);
    assert_eq!(c.stats().completed, 600);
    assert_eq!(c.stats().failed, 0);
    // The BE's rule tables are back.
    assert!(c.switch(HOME).unwrap().vnic(VNIC).is_some());

    // 5. Re-offload works after fallback.
    c.trigger_offload(VNIC, c.now()).unwrap();
    drive(&mut c, 100);
    assert_eq!(c.backend(VNIC).unwrap().phase, OffloadPhase::Offloaded);
    assert_eq!(c.stats().completed, 700);
    assert_eq!(c.stats().failed, 0);
    assert_eq!(c.stats().denied, 0);
}

#[test]
fn offload_frees_be_memory_and_fallback_restores_it() {
    let mut c = cluster();
    let before = c.switch(HOME).unwrap().mem.used();
    assert!(before > 0, "tables charged locally");

    c.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    let offloaded = c.switch(HOME).unwrap().mem.used();
    assert!(
        offloaded < before / 100,
        "final stage must free the tables: {offloaded} vs {before}"
    );
    // Each FE carries a full copy.
    for fe in c.fe_servers(VNIC) {
        assert!(
            c.switch(fe).unwrap().mem.used() >= before,
            "FE {fe} lacks the tables"
        );
    }

    c.trigger_fallback(VNIC, c.now()).unwrap();
    c.run_until(c.now() + SimDuration::from_secs(2));
    assert_eq!(
        c.switch(HOME).unwrap().mem.used(),
        before,
        "fallback restores the footprint"
    );
    for fe in 1..5u32 {
        assert_eq!(
            c.switch(ServerId(fe)).unwrap().mem.used(),
            0,
            "FE memory must drain"
        );
    }
}

#[test]
fn dual_running_stage_has_no_interruption() {
    // The paper's headline operational claim: activating offload causes
    // no service interruption (§4.2.1). Saturate the transition window
    // with connections and require all of them to complete.
    let mut c = cluster();
    let t0 = SimTime::ZERO;
    // 2000 connections spanning the whole transition (0..2.5s).
    for i in 0..2000u32 {
        c.add_conn(spec(
            i,
            t0 + SimDuration::from_micros(1250 * i as u64),
            ConnKind::Inbound,
        ))
        .unwrap();
    }
    c.run_until(t0 + SimDuration::from_millis(100));
    c.trigger_offload(VNIC, c.now()).unwrap();
    c.run_until(t0 + SimDuration::from_secs(6));
    assert_eq!(c.backend(VNIC).unwrap().phase, OffloadPhase::Offloaded);
    assert_eq!(
        c.stats().completed,
        2000,
        "failed={} denied={}",
        c.stats().failed,
        c.stats().denied
    );
    // Activation time was recorded and is within the paper's envelope.
    let act = c.stats().offload_completion.mean();
    assert!((0.3..3.0).contains(&act), "activation took {act}s");
}

#[test]
fn outbound_connections_work_under_offload() {
    // §5.1's TX workflow: the VM initiates; the BE records first_dir=TX
    // and responses pass the stateful ACL at the FE.
    let mut c = cluster();
    c.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    for i in 0..50u32 {
        let mut s = spec(
            i,
            c.now() + SimDuration::from_millis(i as u64),
            ConnKind::Outbound,
        );
        // Outbound: tuple oriented VM -> peer.
        s.tuple = FiveTuple::tcp(SERVICE, 40_000 + i as u16, Ipv4Addr::new(10, 7, 3, 9), 443);
        c.add_conn(s).unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(3));
    assert_eq!(
        c.stats().completed,
        50,
        "failed={} denied={}",
        c.stats().failed,
        c.stats().denied
    );
}

#[test]
fn notify_packets_only_on_policy_bearing_misses() {
    // §3.2.2: notify packets are generated only on cached-flow misses
    // whose lookup yields rule-table-involved state differing from the
    // carried state. Traffic to destinations without a statistics policy
    // must generate zero notifies.
    let mut c = cluster();
    c.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    for i in 0..100u32 {
        c.add_conn(spec(
            i,
            c.now() + SimDuration::from_millis(i as u64),
            ConnKind::Inbound,
        ))
        .unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(3));
    assert_eq!(c.stats().completed, 100);
    assert_eq!(
        c.stats().notifies,
        0,
        "no stats policy applies to this traffic"
    );

    // Outbound traffic toward a logged prefix (the synthetic policy
    // tables cover the upper half of the /16) does generate notifies.
    for i in 0..20u32 {
        let mut s = spec(
            1000 + i,
            c.now() + SimDuration::from_millis(i as u64),
            ConnKind::Outbound,
        );
        s.tuple = FiveTuple::tcp(
            SERVICE,
            41_000 + i as u16,
            Ipv4Addr::new(10, 7, 128, 9),
            443,
        );
        c.add_conn(s).unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(3));
    assert!(
        c.stats().notifies > 0,
        "logged prefix must trigger notifies"
    );
    assert!(
        c.stats().notifies <= 20,
        "at most one notify per miss, got {}",
        c.stats().notifies
    );
}

#[test]
fn feature_release_by_offloading_to_upgraded_vswitches() {
    // §7.2: instead of upgrading every vSwitch in the region, upgrade a
    // few and offload the vNICs that need the new feature onto them.
    let mut c = cluster();
    for s in [5u32, 6, 7, 8, 9] {
        c.switch_mut(ServerId(s)).unwrap().version = 2;
    }
    c.trigger_offload_to_version(VNIC, c.now(), Some(2))
        .unwrap();
    c.run_until(c.now() + SimDuration::from_secs(3));
    let fes = c.fe_servers(VNIC);
    assert_eq!(fes.len(), 4);
    for fe in &fes {
        assert_eq!(c.switch(*fe).unwrap().version, 2, "FE {fe} not upgraded");
    }
    // Traffic flows through the upgraded pool.
    let t = c.now();
    for i in 0..50 {
        c.add_conn(spec(
            i,
            t + SimDuration::from_millis(i as u64),
            ConnKind::Inbound,
        ))
        .unwrap();
    }
    c.run_until(t + SimDuration::from_secs(3));
    assert_eq!(c.stats().completed, 50);
}

#[test]
fn bug_dodging_by_offloading_to_older_vswitches() {
    // §7.2 "cost-effective fault recovery": a buggy new release on most
    // switches; pin the vNIC's processing to the old version.
    let mut c = cluster();
    for s in 1..24u32 {
        c.switch_mut(ServerId(s)).unwrap().version = 3; // buggy rollout
    }
    for s in [10u32, 11, 12, 13] {
        c.switch_mut(ServerId(s)).unwrap().version = 1; // held back
    }
    c.trigger_offload_to_version(VNIC, c.now(), Some(1))
        .unwrap();
    c.run_until(c.now() + SimDuration::from_secs(3));
    let fes = c.fe_servers(VNIC);
    assert_eq!(fes.len(), 4);
    for fe in &fes {
        assert_eq!(c.switch(*fe).unwrap().version, 1);
    }
}

#[test]
fn mirrored_prefixes_generate_copies_under_offload() {
    // Traffic mirroring (an advanced table, §2.2.2) survives the split:
    // outbound flows toward a mirrored prefix generate exactly one copy
    // per accepted packet at the FE; unmirrored traffic generates none.
    let mut c = cluster();
    c.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));

    // Unmirrored outbound traffic.
    for i in 0..20u32 {
        let mut s = spec(
            i,
            c.now() + SimDuration::from_millis(i as u64),
            ConnKind::Outbound,
        );
        s.tuple = FiveTuple::tcp(SERVICE, 42_000 + i as u16, Ipv4Addr::new(10, 7, 3, 9), 443);
        c.add_conn(s).unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(3));
    assert_eq!(c.stats().completed, 20);
    assert_eq!(c.stats().mirror_copies, 0);

    // The default profile has no mirror rules; install one on the master
    // copy via a fresh offload cycle with a mirroring vNIC instead.
    let mut c = cluster();
    {
        let vnic = c.switch_mut(HOME).unwrap().vnic_mut(VNIC).unwrap();
        vnic.tables
            .mirror
            .insert(nezha::vswitch::tables::mirror::MirrorRule {
                dst_prefix: (Ipv4Addr::new(10, 7, 3, 0), 24),
                dst_ports: nezha::vswitch::tables::acl::PortRange::ANY,
                collector: Ipv4Addr::new(10, 7, 240, 1),
            });
    }
    // Local mode first: the vSwitch counts the copies.
    for i in 0..10u32 {
        let mut s = spec(
            100 + i,
            c.now() + SimDuration::from_millis(i as u64),
            ConnKind::Outbound,
        );
        s.tuple = FiveTuple::tcp(SERVICE, 43_000 + i as u16, Ipv4Addr::new(10, 7, 3, 9), 443);
        c.add_conn(s).unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(3));
    assert_eq!(c.stats().completed, 10);
    // 10 conns x (1 slow + 2 fast) accepted TX packets, RX side unmirrored
    // (mirroring keys on the remote endpoint in both directions).
    let mirrored = c.switch(HOME).unwrap().counters().mirrored + c.stats().mirror_copies;
    assert!(mirrored >= 30, "copies {mirrored}");
}

//! Cycle-attribution profiler guarantees: the per-stage decomposition
//! reconciles with the CPU model's charged total, and causal span ids
//! survive the BE↔FE hop so one packet's life reconstructs as a single
//! tree across servers.

use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::conn::{ConnKind, ConnSpec};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::sim::topology::TopologyConfig;
use nezha::types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};

const SERVICE: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);

/// An offloaded single-vNIC cluster with `notify_always` on, profiled
/// from the moment traffic starts: 150 inbound + 40 outbound TCP_CRR
/// connections (the outbound side is what misses at the FEs on TX and
/// emits §3.2.2 notifies). Returns the cluster after the run plus the
/// cycles charged while the profiler was enabled.
fn profiled_cluster(seed: u64, span_capacity: usize) -> (Cluster, f64) {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .notify_always(true)
        .seed(seed)
        .build();
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        SERVICE,
        VnicProfile::default(),
        ServerId(0),
    );
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(64))
        .unwrap();
    c.trigger_offload(VnicId(1), SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));

    let base = c.total_charged_cycles();
    c.enable_profile(span_capacity);
    for i in 0..150u32 {
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i) as u16,
                SERVICE,
                9000,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Inbound,
            start: c.now() + SimDuration::from_micros(700 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    for i in 0..40u32 {
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                SERVICE,
                30_000 + i as u16,
                Ipv4Addr::new(10, 7, 3, (i % 200) as u8 + 1),
                4433,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Outbound,
            start: c.now() + SimDuration::from_micros(900 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(5));
    let charged = c.total_charged_cycles() - base;
    (c, charged)
}

#[test]
fn stage_cycles_reconcile_with_charged_total() {
    let (c, charged) = profiled_cluster(42, 1 << 18);
    let prof = c.profiler();
    let attributed = prof.total_cycles() as f64;
    assert!(charged > 0.0, "the run charged no cycles");
    let drift = (attributed - charged).abs() / charged;
    assert!(
        drift <= 1e-3,
        "per-stage cycles {attributed} drifted {:.4}% from the charged total {charged}",
        drift * 100.0
    );
    // And the per-stage table tells the same story as the grand total.
    let table: u64 = prof.stage_totals().iter().map(|(_, t)| t.cycles).sum();
    assert_eq!(table, prof.total_cycles());
}

#[test]
fn span_tree_links_the_full_be_fe_be_chain() {
    // Capacity generous enough that nothing is evicted: every link of
    // the chain must still be in the ring for the parent walk.
    let (c, _) = profiled_cluster(42, 1 << 18);
    let prof = c.profiler();
    assert_eq!(prof.evicted(), 0, "ring evicted spans; grow the capacity");

    let spans = prof.spans();
    let notify_root = spans
        .iter()
        .find(|s| prof.stage_name(s.stage) == "be_notify")
        .expect("no notify was profiled");
    // The interned path alone reconstructs the cross-server chain.
    assert_eq!(
        prof.stack(notify_root.id),
        ["be_tx", "nsh_encap", "fe_tx_carry", "be_notify"],
        "causal stack diverged"
    );
    // Walk the explicit parent links: BE notify ← FE visit ← BE encap
    // marker ← BE TX root, with the servers alternating home/FE.
    let home = ServerId(0);
    assert_eq!(notify_root.server, home, "notify lands at the BE");
    let fe_visit = prof
        .span(notify_root.parent.expect("notify has no parent"))
        .expect("parent span missing from the ring");
    assert_eq!(prof.stage_name(fe_visit.stage), "fe_tx_carry");
    assert_ne!(fe_visit.server, home, "the FE visit runs on another server");
    // The notify packet travels with trace id 0, yet its spans still
    // attach to the originating packet's tree: only the causal id links
    // them, exactly what the prof_span hop threading is for.
    assert_ne!(notify_root.trace, fe_visit.trace);
    let encap = prof
        .span(fe_visit.parent.expect("FE visit has no parent"))
        .expect("encap marker missing from the ring");
    assert_eq!(prof.stage_name(encap.stage), "nsh_encap");
    assert_eq!(encap.server, home);
    assert_eq!(encap.cycles, 0, "the encap hop marker carries no cycles");
    let be_root = prof
        .span(encap.parent.expect("encap marker has no parent"))
        .expect("BE root missing from the ring");
    assert_eq!(prof.stage_name(be_root.stage), "be_tx");
    assert_eq!(be_root.server, home);
    assert_eq!(be_root.parent, None, "the BE TX root starts the tree");
    assert_eq!(be_root.trace, fe_visit.trace, "same packet, same trace id");
}

#[test]
fn rx_chain_crosses_from_fe_to_be() {
    let (c, _) = profiled_cluster(42, 1 << 18);
    let prof = c.profiler();
    let spans = prof.spans();
    let be_rx = spans
        .iter()
        .find(|s| prof.stage_name(s.stage) == "be_rx_carry")
        .expect("no RX carry was profiled");
    assert_eq!(
        prof.stack(be_rx.id),
        ["fe_rx", "nsh_encap", "be_rx_carry"],
        "RX causal stack diverged"
    );
    let encap = prof.span(be_rx.parent.unwrap()).unwrap();
    let fe_root = prof.span(encap.parent.unwrap()).unwrap();
    assert_ne!(fe_root.server, be_rx.server, "hop must cross servers");
    assert_eq!(fe_root.parent, None);
}

#[test]
fn disabled_profiler_records_nothing() {
    let cfg = ClusterConfig::builder().auto(false).seed(7).build();
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        SERVICE,
        VnicProfile::default(),
        ServerId(0),
    );
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(64))
        .unwrap();
    for i in 0..50u32 {
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i) as u16,
                SERVICE,
                9000,
            ),
            peer_server: ServerId(8 + i % 8),
            kind: ConnKind::Inbound,
            start: SimTime::ZERO + SimDuration::from_micros(700 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    c.run_until(SimTime::ZERO + SimDuration::from_secs(4));
    assert_eq!(c.profiler().recorded(), 0);
    assert_eq!(c.profiler().total_cycles(), 0);
    assert_eq!(c.profiler().flamegraph(), "");
}

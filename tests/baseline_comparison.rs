//! Comparative behaviour of the baseline architectures against Nezha,
//! on equal substrate (Table 2 / §2.3.3 / §8 claims).

use nezha::baselines::{
    DeploymentCost, FeatureMatrix, LocalOnly, SailfishGateway, SiriusPool, TeaSwitch,
};
use nezha::core::region::middlebox;
use nezha::core::vm::VmConfig;
use nezha::sim::time::SimDuration;
use nezha::vswitch::config::VSwitchConfig;
use nezha::vswitch::vnic::VnicProfile;

#[test]
fn sirius_pays_half_its_silicon_for_replication() {
    // Equal hardware: 8 DPUs at 1M CPS each. Sirius's in-line primary/
    // backup replication delivers half; a Nezha-style stateless pool
    // would deliver all of it.
    let pool = SiriusPool::new(8, 1_000_000.0, 10_000_000);
    assert_eq!(pool.cps_capacity(), 4_000_000.0);
    assert_eq!(pool.cps_capacity_unreplicated(), 8_000_000.0);
    // And every session is stored twice.
    assert_eq!(pool.session_capacity(), 8 * 10_000_000 / 2);
    // Moving load transfers long-lived state; Nezha transfers none.
    let mut pool = pool;
    for a in 0..256u64 {
        let _ = pool.pair_of(a); // warm the map (no-op, determinism check)
    }
    let transferred = pool.move_buckets(32, 100);
    assert!(transferred > 0, "Sirius must move state when load moves");
}

#[test]
fn tea_latency_and_throughput_degrade_off_chip() {
    let tea = TeaSwitch::default();
    // A cloud-scale session count blows past SRAM.
    let sessions = 100_000_000;
    assert!(tea.offchip_fraction(sessions) > 0.9);
    assert!(tea.mean_access_latency(sessions) > SimDuration::from_micros(7));
    // The DRAM servers cap the packet rate well below the switch ASIC.
    let capped = tea.pps_ceiling(sessions, 2e9);
    assert!(capped < 5e7, "DRAM-bound rate {capped}");
}

#[test]
fn sailfish_cannot_host_the_stateful_middleboxes() {
    let gw = SailfishGateway::tofino();
    // The three middleboxes of Table 3 all need stateful NFs.
    assert!(!gw.can_offload(true));
    // Its table budget cannot hold a production session table either.
    assert!(!gw.fits(30_000_000));
}

#[test]
fn only_nezha_satisfies_all_table2_columns() {
    let rows = FeatureMatrix::rows();
    for r in rows {
        let all = r.stateful_nf && r.no_remote_state && r.no_new_hardware;
        assert_eq!(all, r.name == "Nezha", "{}", r.name);
    }
}

#[test]
fn nezha_gains_exceed_what_local_upgrades_buy() {
    // Upgrading the local SmartNIC 2x (cores) buys 2x CPS; Nezha's
    // measured middlebox gains (Table 3) exceed that without any new
    // hardware.
    let base = LocalOnly::new(
        VSwitchConfig::middlebox_host(),
        VnicProfile::load_balancer(),
    );
    let mut upgraded_cfg = VSwitchConfig::middlebox_host();
    upgraded_cfg.cores *= 2;
    let upgraded = LocalOnly::new(upgraded_cfg, VnicProfile::load_balancer());
    let upgrade_gain = upgraded.cps_capacity(64) / base.cps_capacity(64);
    assert!((1.9..2.1).contains(&upgrade_gain));

    let vm = VmConfig {
        vcpus: 64,
        per_core_cps: 90_000.0,
        ..VmConfig::default()
    };
    let rows = middlebox::gains(&VSwitchConfig::middlebox_host(), &vm);
    let lb = rows.iter().find(|r| r.name == "Load-balancer").unwrap();
    assert!(
        lb.cps_gain > upgrade_gain,
        "Nezha {:.2}x vs 2x-hardware {:.2}x",
        lb.cps_gain,
        upgrade_gain
    );
}

#[test]
fn deployment_cost_gap_is_an_order_of_magnitude() {
    let sailfish = DeploymentCost::sailfish();
    let nezha = DeploymentCost::nezha();
    assert!(sailfish.total_pm() as f64 / nezha.total_pm() as f64 > 10.0);
    assert!(sailfish.scale_out.min_days >= 4 * nezha.scale_out.max_days);
}

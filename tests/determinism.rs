#![allow(clippy::field_reassign_with_default)]
//! Determinism guarantees: identical seeds produce identical runs, and
//! different seeds genuinely differ. Every recorded experiment depends on
//! this property.

use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::conn::{ConnKind, ConnSpec};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::sim::topology::TopologyConfig;
use nezha::types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};

fn run_scenario(seed: u64) -> (u64, u64, u64, f64, Vec<ServerId>, u64) {
    let mut cfg = ClusterConfig::default();
    cfg.topology = TopologyConfig {
        servers_per_rack: 12,
        racks_per_pod: 2,
        pods: 1,
        ..TopologyConfig::default()
    };
    cfg.controller.auto_offload = false;
    cfg.controller.auto_scale = false;
    cfg.seed = seed;
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(64));
    c.trigger_offload(VnicId(1), SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    for i in 0..500u32 {
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Inbound,
            start: c.now() + SimDuration::from_micros(700 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        });
    }
    // Inject a crash mid-run for the failure paths too.
    let victim = c.fe_servers(VnicId(1))[0];
    c.crash_at(victim, c.now() + SimDuration::from_millis(150));
    c.run_until(c.now() + SimDuration::from_secs(8));

    let mut fes = c.fe_servers(VnicId(1));
    fes.sort_unstable_by_key(|s| s.0);
    (
        c.stats.completed,
        c.stats.failed,
        c.stats.pkts.dropped,
        c.stats.offload_completion.mean(),
        fes,
        c.engine.processed(),
    )
}

#[test]
fn identical_seeds_replay_identically() {
    let a = run_scenario(42);
    let b = run_scenario(42);
    assert_eq!(a.0, b.0, "completed");
    assert_eq!(a.1, b.1, "failed");
    assert_eq!(a.2, b.2, "dropped");
    assert_eq!(a.3.to_bits(), b.3.to_bits(), "completion time");
    assert_eq!(a.4, b.4, "FE set");
    assert_eq!(a.5, b.5, "event count");
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = run_scenario(1);
    let b = run_scenario(2);
    // The workload is identical; the seeds drive config-push jitter, so
    // at minimum the activation time must differ.
    assert!(
        a.3.to_bits() != b.3.to_bits() || a.5 != b.5 || a.4 != b.4,
        "seeds 1 and 2 produced byte-identical runs"
    );
}

//! Determinism guarantees: identical seeds produce identical runs, and
//! different seeds genuinely differ. Every recorded experiment depends on
//! this property.

use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::conn::{ConnKind, ConnSpec};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::sim::topology::TopologyConfig;
use nezha::sim::trace::TraceEvent;
use nezha::types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};

fn run_scenario(seed: u64) -> (u64, u64, u64, f64, Vec<ServerId>, u64) {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .seed(seed)
        .build();
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(64))
        .unwrap();
    c.trigger_offload(VnicId(1), SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    for i in 0..500u32 {
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Inbound,
            start: c.now() + SimDuration::from_micros(700 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    // Inject a crash mid-run for the failure paths too.
    let victim = c.fe_servers(VnicId(1))[0];
    c.crash_at(victim, c.now() + SimDuration::from_millis(150));
    c.run_until(c.now() + SimDuration::from_secs(8));

    let mut fes = c.fe_servers(VnicId(1));
    fes.sort_unstable_by_key(|s| s.0);
    (
        c.stats().completed,
        c.stats().failed,
        c.stats().pkts.dropped,
        c.stats().offload_completion.mean(),
        fes,
        c.engine.processed(),
    )
}

#[test]
fn identical_seeds_replay_identically() {
    let a = run_scenario(42);
    let b = run_scenario(42);
    assert_eq!(a.0, b.0, "completed");
    assert_eq!(a.1, b.1, "failed");
    assert_eq!(a.2, b.2, "dropped");
    assert_eq!(a.3.to_bits(), b.3.to_bits(), "completion time");
    assert_eq!(a.4, b.4, "FE set");
    assert_eq!(a.5, b.5, "event count");
}

/// Same scenario as [`run_scenario`], but returns the full telemetry:
/// the serialized metrics snapshot and the recorded trace events.
fn run_telemetry_scenario(seed: u64) -> (String, Vec<TraceEvent>) {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .seed(seed)
        .build();
    let mut c = Cluster::new(cfg);
    c.enable_trace(8192);
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(64))
        .unwrap();
    c.trigger_offload(VnicId(1), SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    for i in 0..300u32 {
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Inbound,
            start: c.now() + SimDuration::from_micros(700 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(6));
    (c.metrics().snapshot().to_json(), c.trace().events())
}

#[test]
fn telemetry_is_deterministic_across_same_seed_runs() {
    let (json_a, trace_a) = run_telemetry_scenario(42);
    let (json_b, trace_b) = run_telemetry_scenario(42);
    // The serialized metrics snapshot is byte-identical ...
    assert_eq!(json_a, json_b, "metrics snapshots diverged");
    // ... and the trace replays the exact same event sequence.
    assert_eq!(trace_a.len(), trace_b.len(), "trace lengths diverged");
    for (a, b) in trace_a.iter().zip(trace_b.iter()) {
        assert_eq!(a, b, "trace events diverged");
    }
    // The run did real work: counters registered and events recorded.
    assert!(json_a.contains("\"conn.completed\""));
    assert!(!trace_a.is_empty(), "trace recorded nothing");
}

#[test]
fn snapshot_histogram_percentiles_match_samples() {
    let cfg = ClusterConfig::builder().auto(false).seed(7).build();
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(64))
        .unwrap();
    for i in 0..200u32 {
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            ),
            peer_server: ServerId(8 + i % 8),
            kind: ConnKind::Inbound,
            start: SimTime::ZERO + SimDuration::from_micros(700 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    c.run_until(SimTime::ZERO + SimDuration::from_secs(5));
    // The registry-backed histogram and the legacy Samples view are the
    // same data: every percentile must agree bit-for-bit.
    let mut snap_hist = c.metrics().snapshot().histogram("latency.conn");
    let mut legacy = c.stats().conn_latency;
    assert!(!snap_hist.is_empty(), "no latency samples recorded");
    assert_eq!(snap_hist.len(), legacy.len());
    for p in [0.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
        assert_eq!(
            snap_hist.percentile(p).to_bits(),
            legacy.percentile(p).to_bits(),
            "percentile {p} diverged between snapshot and Samples"
        );
    }
}

#[test]
fn snapshots_are_seed_identical_and_seed_sensitive() {
    // The exact property lint rules D1-D5 protect: with hash-order
    // iteration, wall-clock reads, or ambient entropy anywhere in the
    // sim-visible crates, one of these two assertions fails.
    let (json_a1, _) = run_telemetry_scenario(42);
    let (json_a2, _) = run_telemetry_scenario(42);
    assert_eq!(json_a1, json_a2, "same seed must be byte-identical");

    let (json_b, _) = run_telemetry_scenario(43);
    assert_ne!(
        json_a1, json_b,
        "different seeds produced byte-identical snapshots (jitter dead?)"
    );
}

/// Same telemetry scenario with a scripted fault plan on top: FE crash,
/// a bursty Gilbert–Elliott channel on the BE↔FE path, and a restart.
/// Covers the whole `nezha_sim::fault` engine — scheduling, the derived
/// fault RNG stream, link-state machines, and recovery metrics.
fn run_chaos_telemetry_scenario(seed: u64) -> String {
    use nezha::sim::fault::{FaultPlan, GilbertElliott};
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .seed(seed)
        .build();
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(64))
        .unwrap();
    c.trigger_offload(VnicId(1), SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    for i in 0..300u32 {
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Inbound,
            start: c.now() + SimDuration::from_micros(700 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    let fes = c.fe_servers(VnicId(1));
    let t0 = c.now();
    c.apply_fault_plan(
        FaultPlan::new()
            .crash(t0 + SimDuration::from_millis(500), fes[0])
            .bursty_loss(
                t0 + SimDuration::from_millis(800),
                ServerId(0),
                fes[1],
                GilbertElliott::bursty(),
            )
            .restart(t0 + SimDuration::from_secs(3), fes[0])
            .link_heal(t0 + SimDuration::from_secs(4), ServerId(0), fes[1]),
    );
    c.run_until(t0 + SimDuration::from_secs(8));
    c.metrics().snapshot().to_json()
}

#[test]
fn chaos_snapshots_are_seed_identical_and_seed_sensitive() {
    // The Fig. 14 recovery time-series under faults is a golden artifact:
    // same seed → byte-identical, different seed → genuinely different.
    let a1 = run_chaos_telemetry_scenario(42);
    let a2 = run_chaos_telemetry_scenario(42);
    assert_eq!(a1, a2, "chaos run must replay byte-identically");
    // The fault machinery actually ran.
    assert!(a1.contains("\"fault.events\": {\"type\": \"counter\", \"value\": 4}"));

    let b = run_chaos_telemetry_scenario(43);
    assert_ne!(
        a1, b,
        "different seeds produced byte-identical chaos snapshots"
    );
}

/// The `experiments profile` scenario in miniature: offloaded vNIC,
/// profiler on, mixed inbound/outbound traffic with `notify_always` so
/// the BE→FE→BE notify chain is exercised. Returns the two artifacts the
/// subcommand exports: the collapsed-stack flamegraph text and the
/// Chrome `trace_event` JSON.
fn run_profile_scenario(seed: u64) -> (String, String) {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .notify_always(true)
        .seed(seed)
        .build();
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(64))
        .unwrap();
    c.trigger_offload(VnicId(1), SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    c.enable_profile(1 << 16);
    for i in 0..200u32 {
        let outbound = i % 5 == 0;
        let tuple = if outbound {
            FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 0, 1),
                (30_000 + i) as u16,
                Ipv4Addr::new(10, 7, 3, (i % 200) as u8 + 1),
                4433,
            )
        } else {
            FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            )
        };
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple,
            peer_server: ServerId(12 + i % 12),
            kind: if outbound {
                ConnKind::Outbound
            } else {
                ConnKind::Inbound
            },
            start: c.now() + SimDuration::from_micros(700 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(6));
    (c.profiler().flamegraph(), c.profiler().chrome_trace())
}

#[test]
fn profile_artifacts_are_seed_identical_and_seed_sensitive() {
    // The two files `experiments profile` writes are golden artifacts:
    // same seed → byte-identical (SimTime only, deterministic ordering),
    // different seed → genuinely different.
    let (fg_a1, ct_a1) = run_profile_scenario(42);
    let (fg_a2, ct_a2) = run_profile_scenario(42);
    assert_eq!(fg_a1, fg_a2, "flamegraph must replay byte-identically");
    assert_eq!(ct_a1, ct_a2, "chrome trace must replay byte-identically");
    // The run profiled real work, including the cross-server chains.
    assert!(fg_a1.contains("be_tx;nsh_encap;fe_tx_carry"));
    assert!(fg_a1.contains("fe_rx;nsh_encap;be_rx_carry"));
    assert!(ct_a1.contains("\"traceEvents\""));

    let (fg_b, ct_b) = run_profile_scenario(43);
    assert!(
        fg_a1 != fg_b || ct_a1 != ct_b,
        "different seeds produced byte-identical profile artifacts"
    );
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = run_scenario(1);
    let b = run_scenario(2);
    // The workload is identical; the seeds drive config-push jitter, so
    // at minimum the activation time must differ.
    assert!(
        a.3.to_bits() != b.3.to_bits() || a.5 != b.5 || a.4 != b.4,
        "seeds 1 and 2 produced byte-identical runs"
    );
}

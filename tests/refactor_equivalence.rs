//! Refactor-equivalence harness: pins the observable behavior of the
//! datapath against fixtures generated **before** the `cluster.rs` →
//! `datapath/` decomposition. Three scenario families (testbed, chaos,
//! profile) run on three seeds each; for every run the full
//! [`ClusterStats`] view, the FNV-1a hash of the metrics snapshot JSON,
//! and (for the profile scenario) the complete flamegraph text must be
//! byte-identical to the checked-in pre-refactor fixture.
//!
//! To regenerate the fixtures (only legitimate when a PR *intentionally*
//! changes datapath behavior and says so):
//!
//! ```sh
//! NEZHA_REGEN_FIXTURES=1 cargo test --test refactor_equivalence
//! ```

use nezha::core::cluster::{Cluster, ClusterConfig, ClusterStats};
use nezha::core::conn::{ConnKind, ConnSpec};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::sim::topology::TopologyConfig;
use nezha::types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};
use std::fmt::Write as _;
use std::path::PathBuf;

const SEEDS: [u64; 3] = [41, 42, 43];

/// FNV-1a, 64-bit. Stable across platforms and std versions, unlike
/// `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders every field of [`ClusterStats`] into a line-oriented text
/// form. Floats are rendered as raw bits so "identical" means
/// bit-identical, not approximately equal.
fn stats_repr(stats: &mut ClusterStats) -> String {
    let mut out = String::new();
    let mut line = |k: &str, v: String| {
        let _ = writeln!(out, "{k}={v}");
    };
    line("pkts.ok", stats.pkts.ok.to_string());
    line("pkts.dropped", stats.pkts.dropped.to_string());
    line("completed", stats.completed.to_string());
    line("denied", stats.denied.to_string());
    line("failed", stats.failed.to_string());
    line("notifies", stats.notifies.to_string());
    line("mirror_copies", stats.mirror_copies.to_string());
    line("stale_bounces", stats.stale_bounces.to_string());
    line("misroutes", stats.misroutes.to_string());
    line("offload_events", stats.offload_events.to_string());
    line("scale_out_events", stats.scale_out_events.to_string());
    line("scale_in_events", stats.scale_in_events.to_string());
    line("fallback_events", stats.fallback_events.to_string());
    line("failover_events", stats.failover_events.to_string());
    line("monitor_suspensions", stats.monitor_suspensions.to_string());
    line("fault_events", stats.fault_events.to_string());
    line("degraded_events", stats.degraded_events.to_string());
    line("rehash_churn", stats.rehash_churn.to_string());
    for (name, s) in [
        ("probe_latency", &mut stats.probe_latency),
        ("conn_latency", &mut stats.conn_latency),
        ("offload_completion", &mut stats.offload_completion),
        ("detection_latency", &mut stats.detection_latency),
    ] {
        let (mean, p50, p90, p99, p999, p9999) = s.summary();
        let _ = writeln!(
            out,
            "{name}: n={} mean={:016x} p50={:016x} p90={:016x} p99={:016x} \
             p999={:016x} p9999={:016x} max={:016x}",
            s.len(),
            mean.to_bits(),
            p50.to_bits(),
            p90.to_bits(),
            p99.to_bits(),
            p999.to_bits(),
            p9999.to_bits(),
            s.max().to_bits(),
        );
    }
    for (name, series) in [
        ("cps_series", &stats.cps_series),
        ("loss_series", &stats.loss_series),
        ("total_series", &stats.total_series),
    ] {
        let points = series.points();
        let mut text = String::new();
        for (t, v) in &points {
            let _ = writeln!(text, "{:016x} {:016x}", t.to_bits(), v.to_bits());
        }
        let _ = writeln!(
            out,
            "{name}: bins={} hash={:016x}",
            points.len(),
            fnv1a(text.as_bytes())
        );
    }
    out
}

fn base_config(seed: u64) -> ClusterConfig {
    ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .seed(seed)
        .build()
}

fn offloaded_cluster(cfg: ClusterConfig) -> Cluster {
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(64))
        .unwrap();
    c.trigger_offload(VnicId(1), SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    c
}

fn inbound_conns(c: &mut Cluster, n: u32) {
    for i in 0..n {
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Inbound,
            start: c.now() + SimDuration::from_micros(700 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
}

/// Plain offloaded testbed: 300 inbound connections plus a mid-run FE
/// crash, exercising be/fe handlers, retries, and failover.
fn run_testbed(seed: u64) -> String {
    let mut c = offloaded_cluster(base_config(seed));
    c.enable_trace(8192);
    inbound_conns(&mut c, 300);
    let victim = c.fe_servers(VnicId(1))[0];
    c.crash_at(victim, c.now() + SimDuration::from_millis(150));
    c.run_until(c.now() + SimDuration::from_secs(8));
    let mut out = stats_repr(&mut c.stats());
    let _ = writeln!(
        out,
        "metrics_hash={:016x}",
        fnv1a(c.metrics().snapshot().to_json().as_bytes())
    );
    let _ = writeln!(out, "trace_events={}", c.trace().events().len());
    out
}

/// The chaos scenario from `tests/determinism.rs`: scripted crash,
/// bursty Gilbert–Elliott link loss on the BE↔FE path, restart, heal.
fn run_chaos(seed: u64) -> String {
    use nezha::sim::fault::{FaultPlan, GilbertElliott};
    let mut c = offloaded_cluster(base_config(seed));
    inbound_conns(&mut c, 300);
    let fes = c.fe_servers(VnicId(1));
    let t0 = c.now();
    c.apply_fault_plan(
        FaultPlan::new()
            .crash(t0 + SimDuration::from_millis(500), fes[0])
            .bursty_loss(
                t0 + SimDuration::from_millis(800),
                ServerId(0),
                fes[1],
                GilbertElliott::bursty(),
            )
            .restart(t0 + SimDuration::from_secs(3), fes[0])
            .link_heal(t0 + SimDuration::from_secs(4), ServerId(0), fes[1]),
    );
    c.run_until(t0 + SimDuration::from_secs(8));
    let mut out = stats_repr(&mut c.stats());
    let _ = writeln!(
        out,
        "metrics_hash={:016x}",
        fnv1a(c.metrics().snapshot().to_json().as_bytes())
    );
    out
}

/// The profiling scenario: `notify_always` plus mixed inbound/outbound
/// traffic with the profiler on, so the BE→FE→notify→BE causal chains
/// appear in the flamegraph. The full collapsed-stack text is pinned.
fn run_profile(seed: u64) -> String {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .notify_always(true)
        .seed(seed)
        .build();
    let mut c = offloaded_cluster(cfg);
    c.enable_profile(1 << 16);
    for i in 0..200u32 {
        let outbound = i % 5 == 0;
        let tuple = if outbound {
            FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 0, 1),
                (30_000 + i) as u16,
                Ipv4Addr::new(10, 7, 3, (i % 200) as u8 + 1),
                4433,
            )
        } else {
            FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            )
        };
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple,
            peer_server: ServerId(12 + i % 12),
            kind: if outbound {
                ConnKind::Outbound
            } else {
                ConnKind::Inbound
            },
            start: c.now() + SimDuration::from_micros(700 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(6));
    let mut out = stats_repr(&mut c.stats());
    let _ = writeln!(
        out,
        "metrics_hash={:016x}",
        fnv1a(c.metrics().snapshot().to_json().as_bytes())
    );
    let _ = writeln!(
        out,
        "chrome_trace_hash={:016x}",
        fnv1a(c.profiler().chrome_trace().as_bytes())
    );
    let _ = writeln!(out, "--- flamegraph ---");
    out.push_str(&c.profiler().flamegraph());
    out
}

fn fixture_path(name: &str, seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/refactor")
        .join(format!("{name}_seed{seed}.txt"))
}

fn check_or_regen(name: &str, seed: u64, actual: &str) {
    let path = fixture_path(name, seed);
    if std::env::var("NEZHA_REGEN_FIXTURES").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing pre-refactor fixture {} ({e}); run with \
             NEZHA_REGEN_FIXTURES=1 only if a behavior change is intended",
            path.display()
        )
    });
    if expected != actual {
        // Show the first diverging line, not a wall of text.
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a);
        match mismatch {
            Some((i, (e, a))) => panic!(
                "{name} seed {seed} diverged from the pre-refactor fixture \
                 at line {}:\n  fixture: {e}\n  actual:  {a}",
                i + 1
            ),
            None => panic!(
                "{name} seed {seed} diverged from the pre-refactor fixture \
                 (line counts differ: fixture {} vs actual {})",
                expected.lines().count(),
                actual.lines().count()
            ),
        }
    }
}

#[test]
fn testbed_scenario_matches_pre_refactor_fixtures() {
    for seed in SEEDS {
        check_or_regen("testbed", seed, &run_testbed(seed));
    }
}

#[test]
fn chaos_scenario_matches_pre_refactor_fixtures() {
    for seed in SEEDS {
        check_or_regen("chaos", seed, &run_chaos(seed));
    }
}

#[test]
fn profile_scenario_matches_pre_refactor_fixtures() {
    for seed in SEEDS {
        check_or_regen("profile", seed, &run_profile(seed));
    }
}

//! Multi-tenant scenarios: several vNICs sharing the fabric, mixed
//! offload states, VPC isolation, and servers that simultaneously serve
//! their own tenants and host FEs for others — the exact reuse posture
//! the paper's "reuse before adding resources" principle creates.

use nezha::core::be::OffloadPhase;
use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::conn::{ConnKind, ConnSpec};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::sim::topology::TopologyConfig;
use nezha::types::{FiveTuple, Ipv4Addr, ServerId, SessionKey, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};

fn cluster() -> Cluster {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .build();
    Cluster::new(cfg)
}

fn add_tenant(c: &mut Cluster, id: u32, vpc: u32, home: ServerId) -> (VnicId, Ipv4Addr) {
    let vnic_id = VnicId(id);
    let addr = Ipv4Addr::new(10, 10 + id as u8, 0, 1);
    let mut vnic = Vnic::new(vnic_id, VpcId(vpc), addr, VnicProfile::default(), home);
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, home, VmConfig::with_vcpus(32)).unwrap();
    (vnic_id, addr)
}

fn conns(c: &mut Cluster, vnic: VnicId, vpc: u32, addr: Ipv4Addr, base: u32, count: u32) {
    let t = c.now();
    for i in 0..count {
        c.add_conn(ConnSpec {
            vnic,
            vpc: VpcId(vpc),
            tuple: FiveTuple::tcp(
                Ipv4Addr(addr.masked(16).0 | (2 << 8) | (i % 200 + 1)),
                (1024 + base + i) as u16,
                addr,
                9000,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Inbound,
            start: t + SimDuration::from_millis(i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
}

#[test]
fn mixed_offload_states_coexist() {
    let mut c = cluster();
    let (a, a_addr) = add_tenant(&mut c, 1, 1, ServerId(0));
    let (b, b_addr) = add_tenant(&mut c, 2, 2, ServerId(1));
    let (d, d_addr) = add_tenant(&mut c, 3, 3, ServerId(2));

    // Offload tenant A only.
    c.trigger_offload(a, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    assert_eq!(c.backend(a).unwrap().phase, OffloadPhase::Offloaded);
    assert!(c.backend(b).is_none());
    assert!(c.backend(d).is_none());

    conns(&mut c, a, 1, a_addr, 0, 100);
    conns(&mut c, b, 2, b_addr, 1000, 100);
    conns(&mut c, d, 3, d_addr, 2000, 100);
    c.run_until(c.now() + SimDuration::from_secs(4));
    assert_eq!(
        c.stats().completed,
        300,
        "failed={} denied={}",
        c.stats().failed,
        c.stats().denied
    );

    // A's sessions were tracked at its BE; B and D at their own switches
    // (completed connections age out, so check the lifetime counters).
    assert!(c.switch(ServerId(0)).unwrap().sessions.counters().0 >= 100);
    assert!(c.switch(ServerId(1)).unwrap().sessions.counters().0 >= 100);
    assert!(c.switch(ServerId(2)).unwrap().sessions.counters().0 >= 100);
}

#[test]
fn same_five_tuple_in_two_vpcs_does_not_collide() {
    // VPC isolation: two tenants reusing identical private addresses and
    // ports must produce two independent sessions (§2.1's reason for
    // recording the VPC id in cached flows).
    let mut c = cluster();
    let shared_addr = Ipv4Addr::new(10, 50, 0, 1);
    for (id, vpc, home) in [(1u32, 1u32, ServerId(0)), (2, 2, ServerId(1))] {
        let mut vnic = Vnic::new(
            VnicId(id),
            VpcId(vpc),
            shared_addr,
            VnicProfile::default(),
            home,
        );
        vnic.allow_inbound_port(9000);
        c.add_vnic(vnic, home, VmConfig::with_vcpus(16)).unwrap();
    }
    // NOTE: the two vNICs share an overlay address but live in different
    // VPCs; the gateway keys on address alone in this model, so give each
    // tenant its own client flows and drive them through their homes.
    let tuple = FiveTuple::tcp(Ipv4Addr::new(10, 50, 2, 9), 5555, shared_addr, 9000);
    let k1 = SessionKey::of(VpcId(1), tuple);
    let k2 = SessionKey::of(VpcId(2), tuple);
    assert_ne!(k1, k2, "VPC id must separate identical 5-tuples");
}

#[test]
fn fe_host_serves_its_own_tenant_at_the_same_time() {
    // The reuse principle: an "idle" vSwitch hosting an FE still serves
    // its local vNIC. Both workloads must complete.
    let mut c = cluster();
    let (hot, hot_addr) = add_tenant(&mut c, 1, 1, ServerId(0));
    c.trigger_offload(hot, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    let fe_host = c.fe_servers(hot)[0];

    // A local tenant on the FE host.
    let (local, local_addr) = add_tenant(&mut c, 2, 2, fe_host);

    conns(&mut c, hot, 1, hot_addr, 0, 200);
    conns(&mut c, local, 2, local_addr, 3000, 200);
    c.run_until(c.now() + SimDuration::from_secs(4));
    assert_eq!(c.stats().completed, 400);
    assert_eq!(c.stats().failed, 0);

    // The FE host carried both: its tenant's sessions and the hot vNIC's
    // cached flows.
    assert!(c.switch(fe_host).unwrap().sessions.counters().0 >= 200);
    assert!(c.fe_cached_flows(fe_host, hot).unwrap() > 0);
}

#[test]
fn two_offloaded_vnics_get_disjoint_bookkeeping() {
    let mut c = cluster();
    let (a, a_addr) = add_tenant(&mut c, 1, 1, ServerId(0));
    let (b, b_addr) = add_tenant(&mut c, 2, 2, ServerId(1));
    c.trigger_offload(a, SimTime::ZERO).unwrap();
    c.trigger_offload(b, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));

    let fes_a = c.fe_servers(a);
    let fes_b = c.fe_servers(b);
    assert_eq!(fes_a.len(), 4);
    assert_eq!(fes_b.len(), 4);

    conns(&mut c, a, 1, a_addr, 0, 150);
    conns(&mut c, b, 2, b_addr, 5000, 150);
    c.run_until(c.now() + SimDuration::from_secs(4));
    assert_eq!(c.stats().completed, 300);

    // Per-vNIC FE instances are independent even on shared hosts.
    for fe in &fes_a {
        let (_, misses_a, _) = c.fe_counters(*fe, a).unwrap();
        assert!(misses_a > 0, "A's FE on {fe} idle");
        if let Some((_, misses_b, _)) = c.fe_counters(*fe, b) {
            // Shared host: B's instance counts only B's flows.
            assert!(misses_b <= 150);
        }
    }
    // Fallback of A leaves B untouched.
    c.trigger_fallback(a, c.now()).unwrap();
    c.run_until(c.now() + SimDuration::from_secs(2));
    assert!(c.backend(a).is_none());
    assert_eq!(c.backend(b).unwrap().phase, OffloadPhase::Offloaded);
    assert_eq!(c.fe_count(a), 0);
    assert_eq!(c.fe_count(b), 4);
}

#[test]
fn controller_offloads_only_the_heavy_tenant() {
    // Auto mode: two tenants on one switch, one hot and one cold — the
    // §4.2.1 selection policy ("descending order of CPU/memory
    // consumption") must offload only the hot one.
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .cores(1)
        .auto_offload(true)
        .auto_scale(false)
        .build();
    let mut c = Cluster::new(cfg);
    let (hot, hot_addr) = add_tenant(&mut c, 1, 1, ServerId(0));
    let (cold, cold_addr) = add_tenant(&mut c, 2, 2, ServerId(0));
    c.switch_mut(ServerId(0))
        .unwrap()
        .set_util_window(SimDuration::from_millis(500));

    // Hot: ~50K CPS (0.85x of the 1-core switch); cold: a trickle.
    let t0 = SimTime::ZERO;
    for i in 0..30_000u32 {
        c.add_conn(ConnSpec {
            vnic: hot,
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr(hot_addr.masked(16).0 | ((2 + i / 250) << 8) | (i % 250 + 1)),
                (10_000 + i % 50_000) as u16,
                hot_addr,
                9000,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Inbound,
            start: t0 + SimDuration::from_micros(20 * i as u64),
            payload: 64,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    conns(&mut c, cold, 2, cold_addr, 9000, 20);
    c.run_until(t0 + SimDuration::from_secs(4));

    assert!(c.backend(hot).is_some(), "hot tenant must offload");
    assert!(c.backend(cold).is_none(), "cold tenant must stay local");
}

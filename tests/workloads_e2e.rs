//! Workload-driven end-to-end scenarios: SYN floods vs. aging, persistent
//! flows vs. session capacity, link blackholes vs. mutual pings, and the
//! packet-level LB ablation's cache behaviour.

use nezha::core::cluster::{Cluster, ClusterConfig, LbMode};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::sim::topology::TopologyConfig;
use nezha::types::{Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};
use nezha::workloads::flows::PersistentFlows;
use nezha::workloads::syn_flood::SynFlood;

const VNIC: VnicId = VnicId(1);
const HOME: ServerId = ServerId(0);
const SERVICE: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);

fn cluster_with(f: impl FnOnce(&mut ClusterConfig)) -> Cluster {
    let mut cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .build();
    f(&mut cfg);
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), HOME);
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, HOME, VmConfig::with_vcpus(64)).unwrap();
    c
}

#[test]
fn syn_flood_cannot_pin_be_memory() {
    let mut c = cluster_with(|_| {});
    c.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));

    let flood = SynFlood {
        vnic: VNIC,
        vpc: VpcId(1),
        service_addr: SERVICE,
        service_port: 9000,
        attacker_server: ServerId(20),
        rate: 40_000.0,
        duration: SimDuration::from_secs(4),
    };
    let t = c.now();
    for s in flood.generate(t) {
        c.add_conn(s).unwrap();
    }
    let mut peak = 0usize;
    for step in 1..=6 {
        c.run_until(t + SimDuration::from_secs(step));
        peak = peak.max(c.switch(HOME).unwrap().sessions.len());
    }
    // With 1 s SYN aging the table holds at most ~1 s of flood (plus
    // sweep slack), not the full 160K offered.
    assert!(peak < 90_000, "SYN aging failed: peak {peak}");
    // And it fully drains afterwards.
    c.run_until(t + SimDuration::from_secs(8));
    assert_eq!(c.switch(HOME).unwrap().sessions.len(), 0);
    let (_, expired, _) = c.switch(HOME).unwrap().sessions.counters();
    assert!(expired >= 159_000, "expired {expired}");
}

#[test]
fn syn_flood_without_short_aging_would_blow_the_table() {
    // Counterfactual: set SYN aging equal to the 8s established timeout
    // and the same flood pins ~8x the entries.
    let mut c = cluster_with(|cfg| {
        cfg.vswitch.syn_aging = cfg.vswitch.session_aging;
    });
    c.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    let flood = SynFlood {
        vnic: VNIC,
        vpc: VpcId(1),
        service_addr: SERVICE,
        service_port: 9000,
        attacker_server: ServerId(20),
        rate: 40_000.0,
        duration: SimDuration::from_secs(4),
    };
    let t = c.now();
    for s in flood.generate(t) {
        c.add_conn(s).unwrap();
    }
    let mut peak = 0usize;
    for step in 1..=6 {
        c.run_until(t + SimDuration::from_secs(step));
        peak = peak.max(c.switch(HOME).unwrap().sessions.len());
    }
    assert!(
        peak > 150_000,
        "without short aging the flood should pin most entries, peak {peak}"
    );
}

#[test]
fn persistent_flows_live_exactly_until_idle_aging() {
    let mut c = cluster_with(|_| {});
    let flows = PersistentFlows {
        vnic: VNIC,
        vpc: VpcId(1),
        service_addr: SERVICE,
        service_port: 9000,
        client_servers: (12..24).map(ServerId).collect(),
        count: 5_000,
        open_interval: SimDuration::from_micros(100),
    };
    let t = c.now();
    for s in flows.generate(t) {
        c.add_conn(s).unwrap();
    }
    // All opened within ~0.5s; established entries persist...
    c.run_until(t + SimDuration::from_secs(3));
    assert_eq!(c.stats().completed, 5_000);
    assert_eq!(c.switch(HOME).unwrap().sessions.len(), 5_000);
    // ... until the 8s idle timeout passes.
    c.run_until(t + SimDuration::from_secs(11));
    assert_eq!(c.switch(HOME).unwrap().sessions.len(), 0);
}

#[test]
fn be_fe_link_blackhole_is_detected_by_mutual_ping() {
    let mut c = cluster_with(|_| {});
    c.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    let fes = c.fe_servers(VNIC);
    let cut = fes[1];
    // The fabric between BE and this FE dies; the FE itself stays healthy
    // (the central monitor keeps seeing it — Appendix C.1).
    c.blackhole_link(HOME, cut);
    c.run_until(c.now() + SimDuration::from_secs(4));
    let fes_after = c.fe_servers(VNIC);
    assert!(
        !fes_after.contains(&cut),
        "mutual ping must remove the unreachable FE: {fes_after:?}"
    );
    assert_eq!(fes_after.len(), 4, "floor restored");
    assert!(c.is_alive(cut), "the FE host itself never crashed");
}

#[test]
fn packet_level_lb_duplicates_cached_flows() {
    // The §3.2.3 cache-friendliness argument, as an invariant: under
    // packet-level spreading a single session's flow entry appears on
    // multiple FEs; under flow-level exactly one.
    for (mode, max_copies) in [(LbMode::FlowLevel, 1usize), (LbMode::PacketLevel, 4)] {
        let mut c = cluster_with(|cfg| cfg.lb_mode = mode);
        c.trigger_offload(VNIC, SimTime::ZERO).unwrap();
        c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
        let flows = PersistentFlows {
            vnic: VNIC,
            vpc: VpcId(1),
            service_addr: SERVICE,
            service_port: 9000,
            client_servers: (12..24).map(ServerId).collect(),
            count: 200,
            open_interval: SimDuration::from_micros(500),
        };
        let t = c.now();
        for s in flows.generate(t) {
            c.add_conn(s).unwrap();
        }
        c.run_until(t + SimDuration::from_secs(3));
        assert_eq!(c.stats().completed, 200);
        let cached: usize = c
            .fe_servers(VNIC)
            .iter()
            .map(|s| c.fe_cached_flows(*s, VNIC).unwrap())
            .sum();
        assert!(
            cached <= 200 * max_copies,
            "{mode:?}: {cached} cached entries"
        );
        if mode == LbMode::FlowLevel {
            assert_eq!(cached, 200, "flow-level: exactly one copy per session");
        } else {
            assert!(
                cached > 300,
                "packet-level must duplicate entries, got {cached}"
            );
        }
    }
}

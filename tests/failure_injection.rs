//! Failure-injection scenarios: FE crashes, detection latency, the ≥4-FE
//! floor, widespread-failure suspension (Appendix C), and the fate of
//! in-flight traffic.

use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::conn::{ConnKind, ConnSpec};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::sim::topology::TopologyConfig;
use nezha::types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};

const VNIC: VnicId = VnicId(1);
const HOME: ServerId = ServerId(0);
const SERVICE: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);

fn cluster() -> Cluster {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .build();
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), HOME);
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, HOME, VmConfig::with_vcpus(64)).unwrap();
    c.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    c
}

fn steady_traffic(c: &mut Cluster, count: u32, spacing: SimDuration) {
    let t = c.now();
    for i in 0..count {
        c.add_conn(ConnSpec {
            vnic: VNIC,
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i / 200 * 211 + i % 200) as u16,
                SERVICE,
                9000,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Inbound,
            start: t + SimDuration(spacing.nanos() * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
}

#[test]
fn detection_and_failover_complete_within_2_5s() {
    let mut c = cluster();
    let victim = c.fe_servers(VNIC)[0];
    let crash_at = c.now() + SimDuration::from_secs(1);
    c.crash_at(victim, crash_at);
    c.run_until(crash_at + SimDuration::from_millis(2_500));
    // Paper §4.4 / Fig. 14: detection + failover within ~2 s.
    assert_eq!(c.stats().failover_events, 1, "failover must have completed");
    let fes = c.fe_servers(VNIC);
    assert!(!fes.contains(&victim));
    assert_eq!(fes.len(), 4, "the 4-FE floor is restored: {fes:?}");
    // The gateway no longer routes new flows to the corpse.
    let addr_servers = c.gateway.current(SERVICE).unwrap();
    assert!(!addr_servers.contains(&victim));
}

#[test]
fn traffic_recovers_after_crash_via_retransmission() {
    let mut c = cluster();
    steady_traffic(&mut c, 3_000, SimDuration::from_millis(2)); // 6s of traffic
    let victim = c.fe_servers(VNIC)[0];
    c.crash_at(victim, c.now() + SimDuration::from_secs(2));
    c.run_until(c.now() + SimDuration::from_secs(12));
    let total = c.stats().completed + c.stats().failed + c.stats().denied;
    assert_eq!(total, 3_000);
    // Losses happened (the surge) ...
    assert!(c.stats().pkts.dropped > 0);
    // ... but retransmission + failover saved nearly everything.
    assert!(
        c.stats().completed >= 2_980,
        "completed only {} of 3000",
        c.stats().completed
    );
}

#[test]
fn multiple_sequential_crashes_keep_the_pool_alive() {
    let mut c = cluster();
    steady_traffic(&mut c, 4_000, SimDuration::from_millis(3)); // 12s
                                                                // Crash two different FEs, 4 seconds apart.
    let f1 = c.fe_servers(VNIC)[0];
    c.crash_at(f1, c.now() + SimDuration::from_secs(2));
    c.run_until(c.now() + SimDuration::from_secs(5));
    let f2 = *c
        .fe_servers(VNIC)
        .iter()
        .find(|s| **s != f1)
        .expect("pool refilled");
    c.crash_at(f2, c.now());
    c.run_until(c.now() + SimDuration::from_secs(9));

    assert_eq!(c.stats().failover_events, 2);
    let fes = c.fe_servers(VNIC);
    assert_eq!(fes.len(), 4);
    assert!(!fes.contains(&f1) && !fes.contains(&f2));
    assert!(
        c.stats().completed >= 3_950,
        "completed {}",
        c.stats().completed
    );
}

#[test]
fn widespread_apparent_failure_suspends_auto_removal() {
    // Appendix C.2: when a majority of monitored FE hosts appear dead at
    // once, it is far more likely a monitoring bug than a real outage —
    // the monitor suspends automatic removal.
    let mut c = cluster();
    let fes = c.fe_servers(VNIC);
    assert_eq!(fes.len(), 4);
    // Kill 3 of 4 simultaneously (in the model this stands in for a
    // monitor bug reporting them all unreachable).
    for &fe in &fes[..3] {
        c.crash_at(fe, c.now() + SimDuration::from_millis(100));
    }
    c.run_until(c.now() + SimDuration::from_secs(5));
    assert!(c.stats().monitor_suspensions >= 1, "monitor must suspend");
    assert_eq!(
        c.stats().failover_events,
        0,
        "automatic removal suspended during widespread failure"
    );
    // The FE set is untouched, pending manual inspection.
    assert_eq!(c.fe_count(VNIC), 4);
}

#[test]
fn crash_of_a_nonmember_server_changes_nothing() {
    let mut c = cluster();
    let fes_before = c.fe_servers(VNIC);
    let outsider = ServerId(11);
    assert!(!fes_before.contains(&outsider));
    c.crash_at(outsider, c.now() + SimDuration::from_millis(100));
    c.run_until(c.now() + SimDuration::from_secs(4));
    assert_eq!(c.stats().failover_events, 0);
    let mut a = c.fe_servers(VNIC);
    let mut b = fes_before.clone();
    a.sort_unstable_by_key(|s| s.0);
    b.sort_unstable_by_key(|s| s.0);
    assert_eq!(a, b);
}

//! Shard-equivalence harness: proves the region simulator's tentpole
//! invariant — **the shard count is an execution detail, never a model
//! parameter**. The same scenario runs at 1, 2, 4, and 8 shards on
//! three seeds; every observable (the full [`RegionReport`] rendered
//! with bit-exact floats, the FNV-1a hash of the metrics snapshot JSON,
//! and the bench report's deterministic section) must be byte-identical
//! across shard counts, and the 1-shard rendering is additionally
//! pinned against a checked-in golden fixture so cross-commit drift is
//! caught too.
//!
//! To regenerate the fixtures (only legitimate when a PR *intentionally*
//! changes region-model behavior and says so):
//!
//! ```sh
//! NEZHA_REGEN_FIXTURES=1 cargo test --test shard_equivalence
//! ```

use nezha::core::region::{Region, RegionConfig, RegionReport, Scenario};
use nezha::sim::metrics::MetricsRegistry;
use nezha::sim::obs::SloRule;
use nezha::sim::time::SimDuration;
use std::fmt::Write as _;
use std::path::PathBuf;

const SEEDS: [u64; 3] = [41, 42, 43];
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// FNV-1a, 64-bit. Stable across platforms and std versions, unlike
/// `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A scaled-down `region10k`: every stressor of the production-day
/// scenario on a population large enough that churn, migration, flash
/// crowds, and fault waves all fire on every seed.
fn scenario_cfg(seed: u64, shards: u32) -> RegionConfig {
    RegionConfig {
        servers: 1_500,
        shards,
        seed,
        tenants: 50_000,
        spike_prob: 0.01,
        epoch: SimDuration::from_secs(3600),
        ..Default::default()
    }
}

/// Renders every observable of a run into a line-oriented text form.
/// Floats are rendered as raw bits so "identical" means bit-identical,
/// not approximately equal.
fn report_repr(report: &mut RegionReport, metrics_json: &str, bench_json: &str) -> String {
    let mut out = String::new();
    let mut line = |k: &str, v: String| {
        let _ = writeln!(out, "{k}={v}");
    };
    let (cps, flows, vnics) = report.totals();
    line("overloads.cps", cps.to_string());
    line("overloads.flows", flows.to_string());
    line("overloads.vnics", vnics.to_string());
    line("daily.cps", format!("{:?}", report.daily_cps));
    line("daily.flows", format!("{:?}", report.daily_flows));
    line("daily.vnics", format!("{:?}", report.daily_vnics));
    line("offload_events", report.offload_events.to_string());
    line("offload_denied", report.offload_denied.to_string());
    line(
        "total_fes_provisioned",
        report.total_fes_provisioned.to_string(),
    );
    line("scale_out_events", report.scale_out_events.to_string());
    line("tenant_births", report.tenant_births.to_string());
    line("tenant_deaths", report.tenant_deaths.to_string());
    line("migrations", report.migrations.to_string());
    line("flash_crowds", report.flash_crowds.to_string());
    line("fault_crashes", report.fault_crashes.to_string());
    for (name, s) in [
        ("cpu_utils", &mut report.cpu_utils),
        ("mem_utils", &mut report.mem_utils),
        ("completion_times", &mut report.completion_times),
    ] {
        let (mean, p50, p90, p99, p999, p9999) = s.summary();
        let _ = writeln!(
            out,
            "{name}: n={} mean={:016x} p50={:016x} p90={:016x} p99={:016x} \
             p999={:016x} p9999={:016x}",
            s.len(),
            mean.to_bits(),
            p50.to_bits(),
            p90.to_bits(),
            p99.to_bits(),
            p999.to_bits(),
            p9999.to_bits(),
        );
    }
    let _ = writeln!(out, "metrics_hash={:016x}", fnv1a(metrics_json.as_bytes()));
    let _ = writeln!(out, "--- bench deterministic section ---");
    out.push_str(bench_json);
    out.push('\n');
    out
}

fn run_once(seed: u64, shards: u32, nezha: bool) -> String {
    let reg = MetricsRegistry::new();
    let mut region = Region::new(scenario_cfg(seed, shards));
    region.attach_metrics(&reg);
    let mut report = region.run_scenario(&Scenario::production_day(), nezha);
    let metrics_json = reg.snapshot().to_json();
    let bench_json = report
        .bench_report("shard_equivalence")
        .deterministic_json();
    report_repr(&mut report, &metrics_json, &bench_json)
}

fn fixture_path(name: &str, seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/shard")
        .join(format!("{name}_seed{seed}.txt"))
}

fn check_or_regen(name: &str, seed: u64, actual: &str) {
    let path = fixture_path(name, seed);
    if std::env::var("NEZHA_REGEN_FIXTURES").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with \
             NEZHA_REGEN_FIXTURES=1 only if a behavior change is intended",
            path.display()
        )
    });
    if expected != actual {
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a);
        match mismatch {
            Some((i, (e, a))) => panic!(
                "{name} seed {seed} diverged from the golden fixture at \
                 line {}:\n  fixture: {e}\n  actual:  {a}",
                i + 1
            ),
            None => panic!(
                "{name} seed {seed} diverged from the golden fixture \
                 (line counts differ: fixture {} vs actual {})",
                expected.lines().count(),
                actual.lines().count()
            ),
        }
    }
}

/// The tentpole matrix: {1, 2, 4, 8} shards × 3 seeds with Nezha on.
/// Every shard count must reproduce the 1-shard run byte for byte, and
/// the 1-shard run must match its golden fixture.
#[test]
fn shard_counts_are_byte_identical_with_nezha() {
    for seed in SEEDS {
        let baseline = run_once(seed, SHARD_COUNTS[0], true);
        for &shards in &SHARD_COUNTS[1..] {
            let actual = run_once(seed, shards, true);
            if baseline != actual {
                let (i, (e, a)) = baseline
                    .lines()
                    .zip(actual.lines())
                    .enumerate()
                    .find(|(_, (e, a))| e != a)
                    .expect("same line count but unequal text");
                panic!(
                    "seed {seed}: shards={shards} diverged from shards=1 at \
                     line {}:\n  1 shard:  {e}\n  {shards} shards: {a}",
                    i + 1
                );
            }
        }
        check_or_regen("nezha", seed, &baseline);
    }
}

/// The region watch's SLO rule set (mirrors `experiments watch
/// --config=region`), so the golden fixture pins the event log the live
/// view would show.
fn window_rules() -> Vec<SloRule> {
    vec![
        SloRule::p99_above("cpu_p99_hot", "region.util.cpu", 0.60),
        SloRule::counter_above("flash_crowd", "region.flash_crowds", 0),
        SloRule::fairness_below("overload_skew", "region.overload.", 0.35),
    ]
}

/// One windowed run: the full JSONL window stream plus the SLO event
/// log, exactly as the exporters would write them.
fn run_windows(seed: u64, shards: u32) -> String {
    let mut region = Region::new(scenario_cfg(seed, shards));
    region.enable_windows(64, window_rules());
    let _ = region.run_scenario(&Scenario::production_day(), true);
    let rollup = region.windows().expect("windows enabled");
    format!(
        "{}--- slo events ---\n{}",
        rollup.jsonl(),
        rollup.watchdog().events_jsonl()
    )
}

/// The observability tentpole's acceptance test: the per-epoch window
/// stream (counters, histogram summaries, SLO events — all of it
/// assembled from per-shard effects merged at barriers) is byte-identical
/// at every shard count, and pinned against a golden fixture. One seed:
/// each cell is a full production-day run, and the merge path it
/// exercises is seed-independent.
#[test]
fn window_stream_and_slo_log_are_byte_identical_across_shards() {
    let seed = SEEDS[0];
    let baseline = run_windows(seed, SHARD_COUNTS[0]);
    for &shards in &SHARD_COUNTS[1..] {
        let actual = run_windows(seed, shards);
        if baseline != actual {
            let (i, (e, a)) = baseline
                .lines()
                .zip(actual.lines())
                .enumerate()
                .find(|(_, (e, a))| e != a)
                .expect("same line count but unequal text");
            panic!(
                "seed {seed}: windowed run at shards={shards} diverged from \
                 shards=1 at line {}:\n  1 shard:  {e}\n  {shards} shards: {a}",
                i + 1
            );
        }
    }
    check_or_regen("windows", seed, &baseline);
}

/// Same matrix without Nezha (pure overload accounting, no controller
/// traffic): the invariance must not depend on the offload machinery.
#[test]
fn shard_counts_are_byte_identical_without_nezha() {
    for seed in SEEDS {
        let baseline = run_once(seed, SHARD_COUNTS[0], false);
        for &shards in &SHARD_COUNTS[1..] {
            assert_eq!(
                baseline,
                run_once(seed, shards, false),
                "seed {seed}: shards={shards} diverged from shards=1 (no-nezha)"
            );
        }
        check_or_regen("baseline", seed, &baseline);
    }
}

//! Chaos suite: scripted fault injection (`nezha_sim::fault`) against
//! the full cluster, pinning the paper's recovery story (Fig. 14,
//! Appendix C) seed-for-seed.
//!
//! Every fault-class test asserts two things: a *recovery bound* (the
//! cluster actually survives the fault) and *determinism* (two runs with
//! the same seed produce byte-identical telemetry snapshots). Run with
//! `cargo test --test chaos`.

use nezha::core::cluster::{Cluster, ClusterConfig, ClusterStats};
use nezha::core::conn::{ConnKind, ConnSpec};
use nezha::core::vm::VmConfig;
use nezha::sim::fault::{FaultPlan, GilbertElliott};
use nezha::sim::metrics::MetricsDiff;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::sim::topology::TopologyConfig;
use nezha::types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};

const VNIC: VnicId = VnicId(1);
const HOME: ServerId = ServerId(0);
const SERVICE: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);

/// An offloaded-and-settled two-rack cluster (4 ready FEs).
fn chaos_cluster(seed: u64, notify_always: bool) -> Cluster {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .notify_always(notify_always)
        .seed(seed)
        .build();
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), HOME);
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, HOME, VmConfig::with_vcpus(64)).unwrap();
    c.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    assert_eq!(c.fe_servers(VNIC).len(), 4, "offload must settle at 4 FEs");
    c
}

fn inbound_traffic(c: &mut Cluster, count: u32, spacing: SimDuration) {
    let t = c.now();
    for i in 0..count {
        c.add_conn(ConnSpec {
            vnic: VNIC,
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i / 200 * 211 + i % 200) as u16,
                SERVICE,
                9000,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Inbound,
            start: t + SimDuration(spacing.nanos() * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
}

fn outbound_traffic(c: &mut Cluster, count: u32, spacing: SimDuration) {
    let t = c.now();
    for i in 0..count {
        c.add_conn(ConnSpec {
            vnic: VNIC,
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                SERVICE,
                (1024 + i / 200 * 211 + i % 200) as u16,
                Ipv4Addr::new(10, 7, 3, (i % 200) as u8 + 1),
                443,
            ),
            peer_server: ServerId(12 + i % 12),
            kind: ConnKind::Outbound,
            start: t + SimDuration(spacing.nanos() * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
}

/// Runs one chaos scenario: offload + settle, `n` connections, the plan
/// built by `mk_plan(&cluster, traffic_start)`, then a long drain.
/// Returns the snapshot JSON, the fault-window metrics delta (baseline
/// taken after settling, before traffic and faults), and the stats view.
fn run_chaos(
    seed: u64,
    notify_always: bool,
    n: u32,
    outbound: bool,
    drain: SimDuration,
    mk_plan: impl Fn(&Cluster, SimTime) -> FaultPlan,
) -> (String, MetricsDiff, ClusterStats) {
    let mut c = chaos_cluster(seed, notify_always);
    let baseline = c.metrics().snapshot();
    let start = c.now();
    let spacing = SimDuration::from_millis(2);
    if outbound {
        outbound_traffic(&mut c, n, spacing);
    } else {
        inbound_traffic(&mut c, n, spacing);
    }
    c.apply_fault_plan(mk_plan(&c, start));
    c.run_until(start + SimDuration(spacing.nanos() * n as u64) + drain);
    let end = c.metrics().snapshot();
    (end.to_json(), end.diff(&baseline), c.stats())
}

/// Runs the scenario twice with the same seed, asserts the telemetry
/// snapshots are byte-identical, and returns the fault-window metrics
/// delta plus the stats view.
fn run_deterministic(
    seed: u64,
    notify_always: bool,
    n: u32,
    outbound: bool,
    drain: SimDuration,
    mk_plan: impl Fn(&Cluster, SimTime) -> FaultPlan,
) -> (MetricsDiff, ClusterStats) {
    let (json_a, diff, stats) = run_chaos(seed, notify_always, n, outbound, drain, &mk_plan);
    let (json_b, _, _) = run_chaos(seed, notify_always, n, outbound, drain, &mk_plan);
    assert_eq!(json_a, json_b, "same seed must replay byte-identically");
    (diff, stats)
}

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

// ---------------------------------------------------------------------
// Fault class 1: FE crash + restart.
// ---------------------------------------------------------------------

#[test]
fn crash_and_restart_recovers_within_bound() {
    let (diff, stats) = run_deterministic(42, false, 1_500, false, secs(10), |c, t0| {
        let victim = c.fe_servers(VNIC)[0];
        FaultPlan::new()
            .crash(t0 + secs(1), victim)
            .restart(t0 + secs(5), victim)
    });
    assert_eq!(stats.fault_events, 2);
    assert!(stats.failover_events >= 1, "crash must be failed over");
    // Detection latency metric: crash → failover within the paper's ~2 s
    // envelope (3 missed 500 ms pings + slack).
    assert!(!stats.detection_latency.is_empty());
    assert!(
        stats.detection_latency.mean() < 3.0,
        "detection took {:.2}s",
        stats.detection_latency.mean()
    );
    // Failure handling re-hashed part of the flow space.
    assert!(stats.rehash_churn >= 2, "churn {}", stats.rehash_churn);
    assert!(
        stats.completed >= 1_480,
        "completed only {} of 1500",
        stats.completed
    );
    // The windowed delta isolates the fault from the settling phase: the
    // offload fired *before* the baseline, so it must not appear here,
    // while both in-window fault events must.
    assert_eq!(diff.counter("ctrl.offload_events"), 0);
    assert_eq!(diff.counter("fault.events"), 2);
    assert!(diff.counter("ctrl.failover_events") >= 1);
}

// ---------------------------------------------------------------------
// Fault class 2: gray-slow member (degraded, not dead).
// ---------------------------------------------------------------------

#[test]
fn gray_slow_fe_degrades_then_recovers() {
    let (_, stats) = run_deterministic(43, false, 1_500, false, secs(10), |c, t0| {
        let victim = c.fe_servers(VNIC)[0];
        FaultPlan::new()
            .gray_slow(t0 + secs(1), victim, 1_000.0)
            .gray_recover(t0 + secs(3), victim)
    });
    assert_eq!(stats.fault_events, 2);
    // The slow member sheds load (CPU backlog drops) but is *not*
    // declared dead — gray failure evades the liveness monitor.
    assert!(stats.pkts.dropped > 0, "gray member never overloaded");
    assert_eq!(
        stats.failover_events, 0,
        "gray-slow must not be failed over"
    );
    // Backed-off retries carry the affected flows past the recovery.
    assert!(
        stats.completed >= 1_450,
        "completed only {} of 1500",
        stats.completed
    );
}

// ---------------------------------------------------------------------
// Fault class 3: bursty (Gilbert–Elliott) link loss.
// ---------------------------------------------------------------------

#[test]
fn bursty_link_loss_is_absorbed_by_retries() {
    let (diff, stats) = run_deterministic(44, false, 1_500, false, secs(10), |c, t0| {
        let victim = c.fe_servers(VNIC)[0];
        let model = GilbertElliott {
            p_enter: 0.1,
            p_exit: 0.2,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        FaultPlan::new()
            .bursty_loss(t0 + secs(1), HOME, victim, model)
            .link_heal(t0 + secs(4), HOME, victim)
    });
    assert_eq!(stats.fault_events, 2);
    // The channel actually dropped packets on the BE↔FE path ...
    assert!(
        diff.counter("fault.link_drops") > 0,
        "bursty channel never dropped"
    );
    // ... and no failover fired (both endpoints stayed healthy).
    assert_eq!(stats.failover_events, 0);
    assert!(
        stats.completed >= 1_450,
        "completed only {} of 1500",
        stats.completed
    );
}

// ---------------------------------------------------------------------
// Fault class 4: partition (BE cut off from one FE).
// ---------------------------------------------------------------------

#[test]
fn partition_is_detected_by_mutual_ping_and_healed_around() {
    let (_, stats) = run_deterministic(45, false, 1_500, false, secs(10), |c, t0| {
        let victim = c.fe_servers(VNIC)[0];
        let others: Vec<ServerId> = (0..24).map(ServerId).filter(|s| *s != victim).collect();
        FaultPlan::new()
            .partition(t0 + secs(1), vec![victim], others)
            .heal_partition(t0 + secs(6))
    });
    assert_eq!(stats.fault_events, 2);
    // The central monitor still sees the victim answering, but the BE↔FE
    // mutual ping (Appendix C.1) detects the cut and removes the FE from
    // this BE's pool.
    assert!(
        stats.failover_events >= 1,
        "mutual ping must remove the partitioned FE"
    );
    assert!(
        stats.completed >= 1_450,
        "completed only {} of 1500",
        stats.completed
    );
}

// ---------------------------------------------------------------------
// Fault class 5: controller outage delays detection.
// ---------------------------------------------------------------------

#[test]
fn controller_outage_delays_crash_detection() {
    let (_, stats) = run_deterministic(46, false, 1_500, false, secs(12), |c, t0| {
        let victim = c.fe_servers(VNIC)[0];
        FaultPlan::new()
            .controller_outage(t0 + SimDuration::from_millis(750))
            .crash(t0 + secs(1), victim)
            .controller_recover(t0 + secs(4))
    });
    assert_eq!(stats.fault_events, 3);
    // Failover still happens — after the controller comes back.
    assert!(stats.failover_events >= 1, "failover after recovery");
    assert!(!stats.detection_latency.is_empty());
    // Detection latency includes the ~3 s blackout: well above the
    // healthy-path ~1.5-2 s.
    assert!(
        stats.detection_latency.mean() >= 2.5,
        "outage did not delay detection: {:.2}s",
        stats.detection_latency.mean()
    );
    // The data plane kept forwarding on its last configuration: most
    // connections survive the blackout via retransmission.
    assert!(
        stats.completed >= 1_400,
        "completed only {} of 1500",
        stats.completed
    );
}

// ---------------------------------------------------------------------
// Fault class 6: notify-packet loss (best-effort channel).
// ---------------------------------------------------------------------

#[test]
fn notify_loss_degrades_no_connections() {
    // Outbound traffic: the first packet of each flow is a TX-side FE
    // cache miss, which (with `notify_always`) emits a notify packet.
    let (diff, stats) = run_deterministic(47, true, 800, true, secs(8), |_, t0| {
        FaultPlan::new()
            .notify_drop(t0, 1.0)
            .notify_drop_stop(t0 + secs(30))
    });
    assert_eq!(stats.fault_events, 1, "stop lies beyond the run window");
    // Notifies were generated (notify_always) and every one was dropped —
    // both counted within the fault window, so the deltas must agree.
    assert!(
        diff.counter("nsh.notifies") > 0,
        "no notify traffic generated"
    );
    assert_eq!(
        diff.counter("fault.notify_drops"),
        diff.counter("nsh.notifies"),
        "loss=1.0 must drop every notify"
    );
    // … yet the notify channel is best-effort by design (§3.2.2): no
    // connection is lost to it.
    assert_eq!(stats.completed, 800, "notify loss must not break conns");
    assert_eq!(stats.failover_events, 0);
}

// ---------------------------------------------------------------------
// Graceful degradation: total FE-pool collapse falls back to local.
// ---------------------------------------------------------------------

#[test]
fn fe_pool_collapse_degrades_to_local_processing() {
    let (_, stats) = run_deterministic(48, false, 1_200, true, secs(10), |c, t0| {
        let mut plan = FaultPlan::new();
        for fe in c.fe_servers(VNIC) {
            plan = plan.crash(t0 + secs(1), fe);
        }
        plan
    });
    assert_eq!(stats.fault_events, 4);
    // All 4 monitored hosts dead at once → Appendix C.2 suspension, so
    // the monitor rebuilds nothing …
    assert!(
        stats.monitor_suspensions >= 1,
        "widespread failure suspends"
    );
    // … and the data plane saves itself: the BE detects the collapsed
    // pool and re-arms its local tables.
    assert!(stats.degraded_events >= 1, "degradation must trigger");
    assert!(
        stats.completed >= 1_150,
        "completed only {} of 1200",
        stats.completed
    );
}

// ---------------------------------------------------------------------
// Suspension boundary (Appendix C.2): exactly-at vs one-past threshold,
// and resumption after recovery.
// ---------------------------------------------------------------------

#[test]
fn suspension_boundary_half_dead_still_fails_over() {
    // 2 dead of 4 targets: 2·2 = 4 is NOT > 4 — no suspension, both
    // crashes are failed over normally.
    let mut c = chaos_cluster(50, false);
    let fes = c.fe_servers(VNIC);
    let plan = FaultPlan::new()
        .crash(c.now() + secs(1), fes[0])
        .crash(c.now() + secs(1), fes[1]);
    c.apply_fault_plan(plan);
    c.run_until(c.now() + secs(6));
    assert_eq!(
        c.stats().monitor_suspensions,
        0,
        "at-threshold must not suspend"
    );
    assert_eq!(c.stats().failover_events, 2);
    let now_fes = c.fe_servers(VNIC);
    assert!(!now_fes.contains(&fes[0]) && !now_fes.contains(&fes[1]));
    assert!(!c.monitor_suspended());
}

#[test]
fn suspension_boundary_one_past_threshold_suspends() {
    // 3 dead of 4 targets: 3·2 = 6 > 4 — suspended, nothing removed.
    let mut c = chaos_cluster(50, false);
    let fes = c.fe_servers(VNIC);
    let plan = FaultPlan::new()
        .crash(c.now() + secs(1), fes[0])
        .crash(c.now() + secs(1), fes[1])
        .crash(c.now() + secs(1), fes[2]);
    c.apply_fault_plan(plan);
    c.run_until(c.now() + secs(6));
    assert!(c.stats().monitor_suspensions >= 1);
    assert_eq!(c.stats().failover_events, 0, "suspension blocks removal");
    assert_eq!(c.fe_count(VNIC), 4, "pool untouched pending inspection");
    assert!(c.monitor_suspended());
}

#[test]
fn suspension_lifts_and_failover_resumes_after_recovery() {
    // 3 of 4 die; two later restart. Once a majority answers again the
    // suspension lifts and the one genuinely dead host is failed over
    // even though its threshold crossing happened *during* suspension.
    let mut c = chaos_cluster(51, false);
    let fes = c.fe_servers(VNIC);
    let t0 = c.now();
    let plan = FaultPlan::new()
        .crash(t0 + secs(1), fes[0])
        .crash(t0 + secs(1), fes[1])
        .crash(t0 + secs(1), fes[2])
        .restart(t0 + secs(4), fes[1])
        .restart(t0 + secs(4), fes[2]);
    c.apply_fault_plan(plan);
    c.run_until(t0 + secs(3));
    assert!(c.monitor_suspended(), "suspended while majority is dead");
    c.run_until(t0 + secs(10));
    assert!(!c.monitor_suspended(), "suspension lifts after recovery");
    assert!(c.stats().monitor_suspensions >= 1);
    assert!(
        c.stats().failover_events >= 1,
        "the stale dead host must be failed over after resumption"
    );
    let now_fes = c.fe_servers(VNIC);
    assert!(!now_fes.contains(&fes[0]), "dead FE removed: {now_fes:?}");
    assert_eq!(now_fes.len(), 4, "floor restored: {now_fes:?}");
}

// ---------------------------------------------------------------------
// Reduced scenario for `scripts/check.sh --fast` / quick CI smoke.
// ---------------------------------------------------------------------

#[test]
fn smoke_crash_failover_reduced() {
    let (_, stats) = run_deterministic(7, false, 300, false, secs(8), |c, t0| {
        let victim = c.fe_servers(VNIC)[0];
        FaultPlan::new().crash(t0 + secs(1), victim)
    });
    assert!(stats.failover_events >= 1);
    assert!(stats.completed >= 295, "completed {}", stats.completed);
}

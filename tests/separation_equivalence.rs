//! The paper's §3.1 equivalence claim, verified as a property:
//!
//! > "We demonstrate the equivalence of processing results under this
//! > separation architecture."
//!
//! For arbitrary rule tables, NF mixes, and packet sequences, processing
//! a session through the **split** architecture — state at the BE,
//! rules/flows at the FE, inputs carried in packet headers — must yield
//! exactly the decisions of the **monolithic** vSwitch:
//!
//! * TX: the BE applies packet-derived state transitions and ships a
//!   state snapshot; the FE finalizes against its pre-actions.
//! * RX: the FE looks up pre-actions and piggybacks them (plus decap
//!   info); the BE applies the full transition and finalizes.
//!
//! Statistics state is excluded from the final-state comparison: the
//! paper itself accepts a notify-packet lag there (§3.2.2). Everything
//! else — verdicts, NAT rewrites, encap overrides, first-packet
//! direction, TCP FSM, decap state — must match bit for bit.

use nezha::types::{
    Direction, FiveTuple, Ipv4Addr, Packet, ServerId, SessionState, TcpFlags, VnicId, VpcId,
};
use nezha::vswitch::pipeline::{finalize_with_state, process_pkt, slow_path_lookup, update_state};
use nezha::vswitch::tables::acl::{AclRule, PortRange};
use nezha::vswitch::vnic::{Vnic, VnicProfile};
use proptest::prelude::*;

/// A randomly generated packet event within one session.
#[derive(Clone, Copy, Debug)]
struct Step {
    dir: Direction,
    flags: u8,
    payload: u16,
    encap_src: Option<u32>,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        prop::bool::ANY,
        prop::sample::select(vec![0x02u8, 0x12, 0x10, 0x18, 0x11, 0x04]),
        0u16..1400,
        prop::option::of(1u32..0xffff),
    )
        .prop_map(|(tx, flags, payload, encap)| Step {
            dir: if tx { Direction::Tx } else { Direction::Rx },
            flags,
            payload,
            encap_src: encap,
        })
}

fn rule_strategy() -> impl Strategy<Value = AclRule> {
    (
        0u32..100,                         // priority
        prop::option::of(prop::bool::ANY), // direction filter
        0u8..3,                            // src prefix selector
        0u8..3,                            // dst prefix selector
        0u16..3,                           // port band
        prop::bool::ANY,                   // decision
        prop::bool::ANY,                   // stateful
    )
        .prop_map(|(prio, dirf, srcsel, dstsel, band, accept, stateful)| {
            let prefix = |sel: u8| match sel {
                0 => (Ipv4Addr::UNSPECIFIED, 0),
                1 => (Ipv4Addr::new(10, 7, 0, 0), 16),
                _ => (Ipv4Addr::new(10, 7, 1, 0), 24),
            };
            AclRule {
                priority: prio,
                direction: dirf.map(|d| if d { Direction::Tx } else { Direction::Rx }),
                src: prefix(srcsel),
                dst: prefix(dstsel),
                src_ports: PortRange::ANY,
                dst_ports: PortRange {
                    lo: band * 3000,
                    hi: band * 3000 + 2999,
                },
                protocol: None,
                decision: if accept {
                    nezha::types::Decision::Accept
                } else {
                    nezha::types::Decision::Drop
                },
                stateful,
            }
        })
}

fn build_vnic(rules: &[AclRule], stateful_decap: bool) -> Vnic {
    let profile = VnicProfile {
        acl_rules: 0,
        stateful_decap,
        ..VnicProfile::default()
    };
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        profile,
        ServerId(0),
    );
    for r in rules {
        vnic.tables.acl.insert(*r);
    }
    vnic
}

fn make_packet(tuple: FiveTuple, s: &Step, trace: u64) -> Packet {
    let t = match s.dir {
        Direction::Tx => tuple.reversed(),
        Direction::Rx => tuple,
    };
    let mut pkt = match s.dir {
        Direction::Tx => Packet::tx_data(
            trace,
            VpcId(1),
            VnicId(1),
            t,
            TcpFlags(s.flags),
            s.payload as u32,
        ),
        Direction::Rx => Packet::rx_data(
            trace,
            VpcId(1),
            VnicId(1),
            t,
            TcpFlags(s.flags),
            s.payload as u32,
        ),
    };
    if s.dir == Direction::Rx {
        pkt.overlay_encap_src = s.encap_src.map(Ipv4Addr);
    }
    pkt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn split_architecture_decides_identically(
        rules in prop::collection::vec(rule_strategy(), 0..12),
        stateful_decap in prop::bool::ANY,
        client_octet in 1u8..250,
        client_port in 1024u16..60000,
        svc_port in 1u16..9000,
        steps in prop::collection::vec(step_strategy(), 1..12),
    ) {
        let vnic = build_vnic(&rules, stateful_decap);
        let graph = nezha::vswitch::stage::lookup::lookup_graph();
        // Session tuple, oriented client -> VM.
        let tuple = FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 1, client_octet),
            client_port,
            Ipv4Addr::new(10, 7, 0, 1),
            svc_port,
        );

        // ------- monolithic reference -------
        let mut mono_state = SessionState::default();
        let mut mono_pair = None;
        let mut mono_actions = Vec::new();
        for (i, s) in steps.iter().enumerate() {
            let pkt = make_packet(tuple, s, i as u64);
            let pair = *mono_pair
                .get_or_insert_with(|| slow_path_lookup(&graph, &vnic, &pkt.tuple, pkt.dir).pair);
            let action = process_pkt(pair.for_direction(pkt.dir), &mut mono_state, &pkt);
            mono_actions.push(action);
        }

        // ------- split architecture -------
        // FE: rules + cached flow (stateless). BE: state only.
        let mut be_state = SessionState::default();
        let mut fe_cached = None;
        let mut split_actions = Vec::new();
        for (i, s) in steps.iter().enumerate() {
            let pkt = make_packet(tuple, s, i as u64);
            match pkt.dir {
                Direction::Tx => {
                    // BE half: packet-derived state transitions, then the
                    // state snapshot travels in the NSH header.
                    update_state(None, &mut be_state, &pkt);
                    let carried = SessionState {
                        first_dir: be_state.first_dir,
                        decap: be_state.decap,
                        ..SessionState::default()
                    };
                    // FE half: look up (or hit the cached) pre-actions and
                    // finalize with the carried state.
                    let pair = *fe_cached
                        .get_or_insert_with(|| slow_path_lookup(&graph, &vnic, &pkt.tuple, pkt.dir).pair);
                    split_actions.push(finalize_with_state(&pair.tx, &carried, &pkt));
                }
                Direction::Rx => {
                    // FE half: pre-actions piggybacked (plus the overlay
                    // encap source the FE would otherwise destroy).
                    let pair = *fe_cached
                        .get_or_insert_with(|| slow_path_lookup(&graph, &vnic, &pkt.tuple, pkt.dir).pair);
                    // BE half: the packet arrives with its decap info
                    // restored from the header; full transition + final.
                    split_actions.push(process_pkt(&pair.rx, &mut be_state, &pkt));
                }
            }
        }

        // Decisions must match packet for packet.
        for (i, (m, s)) in mono_actions.iter().zip(&split_actions).enumerate() {
            prop_assert_eq!(m.verdict, s.verdict, "verdict diverged at step {}", i);
            prop_assert_eq!(m.next_hop, s.next_hop, "next hop diverged at step {}", i);
            prop_assert_eq!(m.nat_rewrite, s.nat_rewrite, "NAT diverged at step {}", i);
            prop_assert_eq!(
                m.encap_override, s.encap_override,
                "encap override diverged at step {}", i
            );
            prop_assert_eq!(m.qos_class, s.qos_class, "qos diverged at step {}", i);
        }
        // Final state must match (statistics excluded: notify lag, §3.2.2).
        prop_assert_eq!(mono_state.first_dir, be_state.first_dir);
        prop_assert_eq!(mono_state.tcp, be_state.tcp);
        prop_assert_eq!(mono_state.decap, be_state.decap);
    }
}

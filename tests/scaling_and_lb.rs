//! Load-balancing and elastic-scaling behaviour: hash spreading across
//! FEs, scale-in prioritizing local traffic, elephant isolation, and the
//! session-table pressure relief that offloading buys.

use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::conn::{ConnKind, ConnSpec};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::sim::topology::TopologyConfig;
use nezha::types::{FiveTuple, Ipv4Addr, ServerId, SessionKey, VnicId, VpcId};
use nezha::vswitch::config::VSwitchConfig;
use nezha::vswitch::vnic::{Vnic, VnicProfile};
use nezha::workloads::flows::PersistentFlows;

const VNIC: VnicId = VnicId(1);
const HOME: ServerId = ServerId(0);
const SERVICE: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);

fn cluster(auto_scale: bool) -> Cluster {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto_offload(false)
        .auto_scale(auto_scale)
        .build();
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), HOME);
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, HOME, VmConfig::with_vcpus(64)).unwrap();
    c.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    c
}

fn inbound(i: u32, at: SimTime) -> ConnSpec {
    ConnSpec {
        vnic: VNIC,
        vpc: VpcId(1),
        tuple: FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
            (1024 + i / 200 * 199 + i % 200) as u16,
            SERVICE,
            9000,
        ),
        peer_server: ServerId(12 + i % 12),
        kind: ConnKind::Inbound,
        start: at,
        payload: 100,
        overlay_encap_src: None,
    }
}

#[test]
fn hash_lb_spreads_flows_roughly_evenly() {
    let mut c = cluster(false);
    let t = c.now();
    for i in 0..400 {
        c.add_conn(inbound(i, t + SimDuration::from_millis(i as u64)))
            .unwrap();
    }
    c.run_until(t + SimDuration::from_secs(3));
    assert_eq!(c.stats().completed, 400);
    // Each FE served between 12% and 40% of the sessions (fair-ish for
    // 4-way hashing of 400 flows).
    let mut total_misses = 0u64;
    for fe in c.fe_servers(VNIC) {
        let (_, misses, _) = c.fe_counters(fe, VNIC).unwrap();
        total_misses += misses;
    }
    assert_eq!(total_misses, 400, "one slow-path lookup per session");
    for fe in c.fe_servers(VNIC) {
        let (_, misses, _) = c.fe_counters(fe, VNIC).unwrap();
        let share = misses as f64 / total_misses as f64;
        assert!(
            (0.12..0.40).contains(&share),
            "FE {fe} share {share} out of balance"
        );
    }
}

#[test]
fn scale_in_prioritizes_local_traffic() {
    // §4.3: a vSwitch whose *local* vNIC heats up evicts every FE it
    // hosts; the pool compensates elsewhere.
    let mut c = cluster(false);
    let victim_fe = c.fe_servers(VNIC)[0];
    let now = c.now();
    c.scale_in_server(victim_fe, now);
    c.run_until(c.now() + SimDuration::from_secs(2));
    let fes = c.fe_servers(VNIC);
    assert!(!fes.contains(&victim_fe), "evicted FE must be gone");
    assert_eq!(fes.len(), 4, "compensating scale-out restores the floor");
    // Traffic still flows.
    let t = c.now();
    for i in 0..100 {
        c.add_conn(inbound(1000 + i, t + SimDuration::from_millis(i as u64)))
            .unwrap();
    }
    c.run_until(t + SimDuration::from_secs(3));
    assert_eq!(c.stats().completed, 100);
}

#[test]
fn elephant_pinning_isolates_the_flow() {
    let mut c = cluster(false);
    let elephant = FiveTuple::tcp(Ipv4Addr::new(198, 19, 0, 1), 40_000, SERVICE, 9000);
    let key = SessionKey::of(VpcId(1), elephant);
    let fes = c.fe_servers(VNIC);
    let dedicated = fes[0];
    c.pin_flow(VNIC, key, dedicated).unwrap();
    // The pinned flow must always select its dedicated FE regardless of
    // what the hash says.
    let meta = c.backend(VNIC).unwrap();
    for h in 0..64u64 {
        assert_eq!(meta.select_fe(&key, h), Some(dedicated));
    }
    // Other flows still spread.
    let other = SessionKey::of(
        VpcId(1),
        FiveTuple::tcp(Ipv4Addr::new(10, 7, 2, 9), 5555, SERVICE, 9000),
    );
    let picks: std::collections::HashSet<_> = (0..64u64)
        .filter_map(|h| meta.select_fe(&other, h))
        .collect();
    assert!(picks.len() > 1);
}

#[test]
fn offloading_multiplies_live_session_capacity() {
    // Squeeze the session budget and show that dropping the 100B cached
    // flows (keeping 64B states) lets strictly more sessions coexist.
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 12,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        // Tables (~6.2MB) + ~1.2MB for sessions.
        .vswitch(VSwitchConfig::builder().table_memory(7_400_000).build())
        .build();

    let persistent = |count| PersistentFlows {
        vnic: VNIC,
        vpc: VpcId(1),
        service_addr: SERVICE,
        service_port: 9000,
        client_servers: (12..24).map(ServerId).collect(),
        count,
        open_interval: SimDuration::from_micros(100),
    };

    // Local: sessions cost 164B; ~1.2MB fits ~7.3K.
    let mut local = Cluster::new(cfg);
    let mut vnic = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), HOME);
    vnic.allow_inbound_port(9000);
    local
        .add_vnic(vnic.clone(), HOME, VmConfig::with_vcpus(64))
        .unwrap();
    for s in persistent(12_000).generate(local.now()) {
        local.add_conn(s).unwrap();
    }
    local.run_until(local.now() + SimDuration::from_secs(4));
    let local_live = local.switch(HOME).unwrap().sessions.len();
    assert!(
        local.switch(HOME).unwrap().counters().session_overflows > 0,
        "the squeeze must actually bind"
    );

    // Offloaded: the BE holds 64B states and the freed table memory.
    let mut off = Cluster::new(cfg);
    off.add_vnic(vnic, HOME, VmConfig::with_vcpus(64)).unwrap();
    off.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    off.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    for s in persistent(12_000).generate(off.now()) {
        off.add_conn(s).unwrap();
    }
    off.run_until(off.now() + SimDuration::from_secs(4));
    let off_live = off.switch(HOME).unwrap().sessions.len();

    assert!(
        off_live as f64 > 1.5 * local_live as f64,
        "offloading should lift live sessions well past local: {off_live} vs {local_live}"
    );
}

#[test]
fn pinned_flow_survives_its_dedicated_fe_crashing() {
    // Review regression: a gateway pin to a removed FE must be cleaned up
    // so the elephant's flow re-enters the general hash ring instead of
    // being blackholed forever.
    let mut c = cluster(false);
    let elephant = FiveTuple::tcp(Ipv4Addr::new(198, 19, 0, 2), 41_000, SERVICE, 9000);
    let key = SessionKey::of(VpcId(1), elephant);
    let dedicated = c.fe_servers(VNIC)[0];
    c.pin_flow(VNIC, key, dedicated).unwrap();

    // Crash the dedicated FE and let failover finish.
    c.crash_at(dedicated, c.now() + SimDuration::from_millis(100));
    c.run_until(c.now() + SimDuration::from_secs(4));
    assert!(!c.fe_servers(VNIC).contains(&dedicated));

    // The previously pinned flow must still complete (via the ring).
    c.add_conn(nezha::core::conn::ConnSpec {
        vnic: VNIC,
        vpc: VpcId(1),
        tuple: elephant,
        peer_server: ServerId(20),
        kind: nezha::core::conn::ConnKind::Inbound,
        start: c.now(),
        payload: 100,
        overlay_encap_src: None,
    })
    .unwrap();
    c.run_until(c.now() + SimDuration::from_secs(4));
    assert_eq!(
        c.stats().completed,
        1,
        "pinned flow blackholed after FE loss"
    );
}

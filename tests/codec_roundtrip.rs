//! Property tests for the wire codecs: any header or packet this stack
//! can emit must decode back to itself, and corrupted input must never
//! decode to something else silently (checksums).

use bytes::BytesMut;
use nezha::types::headers::{Ipv4Header, TcpHeader};
use nezha::types::IpProtocol;
use nezha::types::{
    Decision, Direction, FiveTuple, Ipv4Addr, NezhaHeader, NezhaPayloadKind, Packet, PreAction,
    PreActionPair, ServerId, TcpFlags, VnicId, VpcId,
};
use proptest::prelude::*;

fn tuple_strategy() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop::bool::ANY,
    )
        .prop_map(|(s, d, sp, dp, tcp)| FiveTuple {
            src_ip: Ipv4Addr(s),
            dst_ip: Ipv4Addr(d),
            src_port: sp,
            dst_port: dp,
            protocol: if tcp {
                IpProtocol::Tcp
            } else {
                IpProtocol::Udp
            },
        })
}

fn pre_action_strategy() -> impl Strategy<Value = PreAction> {
    (
        prop::bool::ANY,
        prop::bool::ANY,
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u32>()),
        prop::bool::ANY,
        any::<u8>(),
        any::<u8>(),
    )
        .prop_map(|(acc, st, hop, nat, decap, qos, pol)| PreAction {
            verdict: if acc {
                Decision::Accept
            } else {
                Decision::Drop
            },
            stateful_acl: st,
            next_hop: hop.map(ServerId),
            nat_rewrite: nat.map(Ipv4Addr),
            stateful_decap: decap,
            qos_class: qos,
            stats_policy: pol,
            // Derive a mirror target from fields already drawn so the
            // codec's mirror path is exercised without widening the tuple.
            mirror_to: (qos % 3 == 0).then_some(Ipv4Addr(0xac10_0000 | pol as u32)),
        })
}

fn nsh_strategy() -> impl Strategy<Value = NezhaHeader> {
    (
        prop::sample::select(vec![
            NezhaPayloadKind::TxCarry,
            NezhaPayloadKind::RxCarry,
            NezhaPayloadKind::Notify,
            NezhaPayloadKind::HealthProbe,
            NezhaPayloadKind::HealthReply,
        ]),
        any::<u32>(),
        any::<u32>(),
        prop::option::of(prop::bool::ANY),
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u8>()),
        prop::option::of((pre_action_strategy(), pre_action_strategy())),
    )
        .prop_map(|(kind, vnic, vpc, dir, decap, pol, pair)| NezhaHeader {
            kind,
            vnic: VnicId(vnic),
            vpc: VpcId(vpc),
            first_dir: dir.map(|d| if d { Direction::Tx } else { Direction::Rx }),
            decap_addr: decap.map(Ipv4Addr),
            stats_policy: pol,
            pre_actions: pair.map(|(tx, rx)| PreActionPair { tx, rx }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn nsh_round_trips(h in nsh_strategy()) {
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        prop_assert_eq!(buf.len(), h.wire_len());
        let (decoded, used) = NezhaHeader::decode(&buf).unwrap();
        prop_assert_eq!(decoded, h);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn fabric_packet_round_trips(
        tuple in tuple_strategy(),
        trace in any::<u32>(),
        vpc in 0u32..0x00ff_ffff, // VXLAN VNI is 24-bit
        vnic in any::<u32>(),
        payload in 0u32..1400,
        src in 0u32..0xffff,
        dst in 0u32..0xffff,
        with_nsh in prop::bool::ANY,
    ) {
        let mut p = Packet::tx_data(
            trace as u64,
            VpcId(vpc),
            VnicId(vnic),
            tuple,
            TcpFlags(0x18),
            payload,
        );
        p.outer_src = Some(ServerId(src));
        p.outer_dst = Some(ServerId(dst));
        if with_nsh {
            p = p.with_nezha(NezhaHeader::bare(
                NezhaPayloadKind::TxCarry,
                VnicId(vnic),
                VpcId(vpc),
            ));
        }
        let wire = p.encode_wire();
        prop_assert_eq!(wire.len(), p.wire_len());
        let d = Packet::decode_wire(&wire).unwrap();
        prop_assert_eq!(d.vpc, p.vpc);
        prop_assert_eq!(d.tuple, p.tuple);
        prop_assert_eq!(d.payload_len, p.payload_len);
        prop_assert_eq!(d.outer_src, p.outer_src);
        prop_assert_eq!(d.outer_dst, p.outer_dst);
        prop_assert_eq!(d.nezha, p.nezha);
        if tuple.protocol == IpProtocol::Tcp {
            prop_assert_eq!(d.trace, trace as u64);
        }
    }

    #[test]
    fn ipv4_rejects_any_single_byte_corruption(
        src in any::<u32>(),
        dst in any::<u32>(),
        len in 0usize..1000,
        corrupt_at in 0usize..20,
        corrupt_bits in 1u8..=255,
    ) {
        let h = Ipv4Header::new(Ipv4Addr(src), Ipv4Addr(dst), IpProtocol::Tcp, len);
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut raw = buf.to_vec();
        raw[corrupt_at] ^= corrupt_bits;
        // Either the decode fails, or the corruption hit a field the
        // checksum does not cover (there is none in IPv4's header) —
        // so it must always fail.
        prop_assert!(Ipv4Header::decode(&raw).is_err());
    }

    #[test]
    fn tcp_checksum_covers_pseudo_header(
        sip in any::<u32>(),
        dip in any::<u32>(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        seq in any::<u32>(),
        wrong in any::<u32>(),
    ) {
        prop_assume!(wrong != sip && wrong != dip);
        // Swapping in a wrong address whose 16-bit word sum differs must
        // break the checksum.
        let sum16 = |v: u32| (v >> 16) + (v & 0xffff);
        prop_assume!(sum16(wrong) != sum16(sip));
        let h = TcpHeader {
            src_port: sp,
            dst_port: dp,
            seq,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 1024,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf, Ipv4Addr(sip), Ipv4Addr(dip));
        prop_assert!(TcpHeader::decode(&buf, Ipv4Addr(sip), Ipv4Addr(dip)).is_ok());
        prop_assert!(TcpHeader::decode(&buf, Ipv4Addr(wrong), Ipv4Addr(dip)).is_err());
    }

    #[test]
    fn truncation_never_panics(
        h in nsh_strategy(),
        cut in 0usize..48,
    ) {
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let cut = cut.min(buf.len());
        // Must return an error or a valid prefix decode — never panic.
        let _ = NezhaHeader::decode(&buf[..cut]);
    }
}

//! Property tests for the wire codecs: any header or packet this stack
//! can emit must decode back to itself, and corrupted input must never
//! decode to something else silently (checksums).

use bytes::BytesMut;
use nezha::types::headers::{Ipv4Header, TcpHeader};
use nezha::types::IpProtocol;
use nezha::types::{
    Decision, Direction, FiveTuple, Ipv4Addr, NezhaHeader, NezhaPayloadKind, Packet, PreAction,
    PreActionPair, ServerId, TcpFlags, VnicId, VpcId,
};
use proptest::prelude::*;

fn tuple_strategy() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop::bool::ANY,
    )
        .prop_map(|(s, d, sp, dp, tcp)| FiveTuple {
            src_ip: Ipv4Addr(s),
            dst_ip: Ipv4Addr(d),
            src_port: sp,
            dst_port: dp,
            protocol: if tcp {
                IpProtocol::Tcp
            } else {
                IpProtocol::Udp
            },
        })
}

fn pre_action_strategy() -> impl Strategy<Value = PreAction> {
    (
        prop::bool::ANY,
        prop::bool::ANY,
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u32>()),
        prop::bool::ANY,
        any::<u8>(),
        any::<u8>(),
    )
        .prop_map(|(acc, st, hop, nat, decap, qos, pol)| PreAction {
            verdict: if acc {
                Decision::Accept
            } else {
                Decision::Drop
            },
            stateful_acl: st,
            next_hop: hop.map(ServerId),
            nat_rewrite: nat.map(Ipv4Addr),
            stateful_decap: decap,
            qos_class: qos,
            stats_policy: pol,
            // Derive a mirror target from fields already drawn so the
            // codec's mirror path is exercised without widening the tuple.
            mirror_to: (qos % 3 == 0).then_some(Ipv4Addr(0xac10_0000 | pol as u32)),
        })
}

fn nsh_strategy() -> impl Strategy<Value = NezhaHeader> {
    (
        prop::sample::select(vec![
            NezhaPayloadKind::TxCarry,
            NezhaPayloadKind::RxCarry,
            NezhaPayloadKind::Notify,
            NezhaPayloadKind::HealthProbe,
            NezhaPayloadKind::HealthReply,
        ]),
        any::<u32>(),
        any::<u32>(),
        prop::option::of(prop::bool::ANY),
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u8>()),
        prop::option::of((pre_action_strategy(), pre_action_strategy())),
    )
        .prop_map(|(kind, vnic, vpc, dir, decap, pol, pair)| NezhaHeader {
            kind,
            vnic: VnicId(vnic),
            vpc: VpcId(vpc),
            first_dir: dir.map(|d| if d { Direction::Tx } else { Direction::Rx }),
            decap_addr: decap.map(Ipv4Addr),
            stats_policy: pol,
            pre_actions: pair.map(|(tx, rx)| PreActionPair { tx, rx }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn nsh_round_trips(h in nsh_strategy()) {
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        prop_assert_eq!(buf.len(), h.wire_len());
        let (decoded, used) = NezhaHeader::decode(&buf).unwrap();
        prop_assert_eq!(decoded, h);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn fabric_packet_round_trips(
        tuple in tuple_strategy(),
        trace in any::<u32>(),
        vpc in 0u32..0x00ff_ffff, // VXLAN VNI is 24-bit
        vnic in any::<u32>(),
        payload in 0u32..1400,
        src in 0u32..0xffff,
        dst in 0u32..0xffff,
        with_nsh in prop::bool::ANY,
    ) {
        let mut p = Packet::tx_data(
            trace as u64,
            VpcId(vpc),
            VnicId(vnic),
            tuple,
            TcpFlags(0x18),
            payload,
        );
        p.outer_src = Some(ServerId(src));
        p.outer_dst = Some(ServerId(dst));
        if with_nsh {
            p = p.with_nezha(NezhaHeader::bare(
                NezhaPayloadKind::TxCarry,
                VnicId(vnic),
                VpcId(vpc),
            ));
        }
        let wire = p.encode_wire();
        prop_assert_eq!(wire.len(), p.wire_len());
        let d = Packet::decode_wire(&wire).unwrap();
        prop_assert_eq!(d.vpc, p.vpc);
        prop_assert_eq!(d.tuple, p.tuple);
        prop_assert_eq!(d.payload_len, p.payload_len);
        prop_assert_eq!(d.outer_src, p.outer_src);
        prop_assert_eq!(d.outer_dst, p.outer_dst);
        prop_assert_eq!(d.nezha, p.nezha);
        if tuple.protocol == IpProtocol::Tcp {
            prop_assert_eq!(d.trace, trace as u64);
        }
    }

    #[test]
    fn ipv4_rejects_any_single_byte_corruption(
        src in any::<u32>(),
        dst in any::<u32>(),
        len in 0usize..1000,
        corrupt_at in 0usize..20,
        corrupt_bits in 1u8..=255,
    ) {
        let h = Ipv4Header::new(Ipv4Addr(src), Ipv4Addr(dst), IpProtocol::Tcp, len);
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut raw = buf.to_vec();
        raw[corrupt_at] ^= corrupt_bits;
        // Either the decode fails, or the corruption hit a field the
        // checksum does not cover (there is none in IPv4's header) —
        // so it must always fail.
        prop_assert!(Ipv4Header::decode(&raw).is_err());
    }

    #[test]
    fn tcp_checksum_covers_pseudo_header(
        sip in any::<u32>(),
        dip in any::<u32>(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        seq in any::<u32>(),
        wrong in any::<u32>(),
    ) {
        prop_assume!(wrong != sip && wrong != dip);
        // Swapping in a wrong address whose 16-bit word sum differs must
        // break the checksum.
        let sum16 = |v: u32| (v >> 16) + (v & 0xffff);
        prop_assume!(sum16(wrong) != sum16(sip));
        let h = TcpHeader {
            src_port: sp,
            dst_port: dp,
            seq,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 1024,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf, Ipv4Addr(sip), Ipv4Addr(dip));
        prop_assert!(TcpHeader::decode(&buf, Ipv4Addr(sip), Ipv4Addr(dip)).is_ok());
        prop_assert!(TcpHeader::decode(&buf, Ipv4Addr(wrong), Ipv4Addr(dip)).is_err());
    }

    #[test]
    fn truncation_never_panics(
        h in nsh_strategy(),
        cut in 0usize..48,
    ) {
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let cut = cut.min(buf.len());
        // Must return an error or a valid prefix decode — never panic.
        let _ = NezhaHeader::decode(&buf[..cut]);
    }
}

/// The same roundtrip properties driven by the simulator's own seeded
/// [`SimRng`] instead of proptest: every "random" case is replayable from
/// the literal seed, so a failure here is a one-line repro — and the
/// generator exercised is the exact RNG the chaos/fault engine runs on.
mod seeded {
    use super::*;
    use nezha::sim::rng::SimRng;
    use nezha::types::{CodecError, PacketKind};

    fn random_pre_action(rng: &mut SimRng) -> PreAction {
        PreAction {
            verdict: if rng.chance(0.8) {
                Decision::Accept
            } else {
                Decision::Drop
            },
            stateful_acl: rng.chance(0.5),
            next_hop: rng
                .chance(0.5)
                .then(|| ServerId(rng.range(0, 1 << 24) as u32)),
            nat_rewrite: rng
                .chance(0.5)
                .then(|| Ipv4Addr(rng.range(0, 1 << 32) as u32)),
            stateful_decap: rng.chance(0.5),
            qos_class: rng.range(0, 256) as u8,
            stats_policy: rng.range(0, 256) as u8,
            mirror_to: rng
                .chance(0.3)
                .then(|| Ipv4Addr(rng.range(0, 1 << 32) as u32)),
        }
    }

    fn random_header(rng: &mut SimRng) -> NezhaHeader {
        let kind = match rng.index(5) {
            0 => NezhaPayloadKind::TxCarry,
            1 => NezhaPayloadKind::RxCarry,
            2 => NezhaPayloadKind::Notify,
            3 => NezhaPayloadKind::HealthProbe,
            _ => NezhaPayloadKind::HealthReply,
        };
        NezhaHeader {
            kind,
            vnic: VnicId(rng.range(0, 1 << 32) as u32),
            vpc: VpcId(rng.range(0, 1 << 32) as u32),
            first_dir: rng.chance(0.7).then(|| {
                if rng.chance(0.5) {
                    Direction::Tx
                } else {
                    Direction::Rx
                }
            }),
            decap_addr: rng
                .chance(0.5)
                .then(|| Ipv4Addr(rng.range(0, 1 << 32) as u32)),
            stats_policy: rng.chance(0.5).then(|| rng.range(0, 256) as u8),
            pre_actions: rng.chance(0.5).then(|| PreActionPair {
                tx: random_pre_action(rng),
                rx: random_pre_action(rng),
            }),
        }
    }

    #[test]
    fn a_thousand_random_nsh_headers_roundtrip_identically() {
        let mut rng = SimRng::new(0x4e5a_0001);
        for case in 0..1000 {
            let h = random_header(&mut rng);
            let mut buf = BytesMut::new();
            h.encode(&mut buf);
            assert_eq!(buf.len(), h.wire_len(), "case {case}: wire_len mismatch");
            let (decoded, consumed) =
                NezhaHeader::decode(&buf).unwrap_or_else(|e| panic!("case {case}: {e:?}"));
            assert_eq!(decoded, h, "case {case}: decode(encode(h)) != h");
            assert_eq!(consumed, buf.len(), "case {case}: trailing bytes");
        }
    }

    #[test]
    fn every_truncation_of_an_nsh_header_errors() {
        // Any cut strictly below the declared wire length must produce a
        // decode error (the flags byte declares the optionals and each
        // optional read is bounds-checked) — never a panic, never a bogus
        // success with a shorter field set.
        let mut rng = SimRng::new(0x4e5a_0002);
        for case in 0..200 {
            let h = random_header(&mut rng);
            let mut buf = BytesMut::new();
            h.encode(&mut buf);
            for cut in 0..buf.len() {
                match NezhaHeader::decode(&buf[..cut]) {
                    Err(CodecError::Truncated { .. }) => {}
                    Err(e) => panic!("case {case} cut {cut}: unexpected error {e:?}"),
                    Ok((partial, consumed)) => panic!(
                        "case {case} cut {cut}: decoded {partial:?} ({consumed} bytes) \
                         from a truncated buffer"
                    ),
                }
            }
        }
    }

    fn random_packet(rng: &mut SimRng) -> Packet {
        let tuple = FiveTuple::tcp(
            Ipv4Addr(rng.range(0, 1 << 32) as u32),
            rng.range(1, 1 << 16) as u16,
            Ipv4Addr(rng.range(0, 1 << 32) as u32),
            rng.range(1, 1 << 16) as u16,
        );
        let flags = match rng.index(4) {
            0 => TcpFlags::SYN,
            1 => TcpFlags::SYN | TcpFlags::ACK,
            2 => TcpFlags::ACK,
            _ => TcpFlags::FIN | TcpFlags::ACK,
        };
        // Fabric-decodable fields only: the VNI and server ids are 24-bit
        // on the wire, the trace id rides in the 32-bit TCP sequence
        // number, and `dir`/`vnic` are reconstructed from the NSH carry.
        let vnic = VnicId(rng.range(0, 1 << 32) as u32);
        let dir = if rng.chance(0.5) {
            Direction::Tx
        } else {
            Direction::Rx
        };
        let mut nsh = random_header(rng);
        nsh.vnic = vnic;
        nsh.first_dir = Some(dir);
        Packet {
            trace: rng.range(0, 1 << 32),
            kind: PacketKind::Nezha,
            vpc: VpcId(rng.range(0, 1 << 24) as u32),
            vnic,
            tuple,
            dir,
            tcp_flags: flags,
            payload_len: rng.range(0, 1400) as u32,
            outer_src: Some(ServerId(rng.range(0, 1 << 24) as u32)),
            outer_dst: Some(ServerId(rng.range(0, 1 << 24) as u32)),
            overlay_encap_src: None,
            nezha: Some(nsh),
            prof_span: 0,
        }
    }

    #[test]
    fn a_thousand_random_fabric_packets_roundtrip_identically() {
        let mut rng = SimRng::new(0x4e5a_0003);
        for case in 0..1000 {
            let p = random_packet(&mut rng);
            let wire = p.encode_wire();
            assert_eq!(wire.len(), p.wire_len(), "case {case}: wire_len mismatch");
            let decoded =
                Packet::decode_wire(&wire).unwrap_or_else(|e| panic!("case {case}: {e:?}"));
            assert_eq!(decoded, p, "case {case}: decode_wire(encode_wire(p)) != p");
        }
    }

    #[test]
    fn truncated_fabric_packets_error_not_panic() {
        // Sparse cuts (every 7th offset) across 50 random packets: each
        // must fail cleanly. Exhaustive per-byte cuts are covered for the
        // NSH above; here the point is that the outer/inner header chain
        // never panics on short input.
        let mut rng = SimRng::new(0x4e5a_0004);
        for case in 0..50 {
            let p = random_packet(&mut rng);
            let wire = p.encode_wire();
            let min_ok = wire.len() - p.payload_len as usize;
            for cut in (0..min_ok).step_by(7) {
                assert!(
                    Packet::decode_wire(&wire[..cut]).is_err(),
                    "case {case} cut {cut}: decoded a packet from a truncated header chain"
                );
            }
        }
    }
}

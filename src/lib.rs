//! # nezha
//!
//! A research-quality Rust reproduction of **"Nezha: SmartNIC-Based
//! Virtual Switch Load Sharing"** (SIGCOMM 2025): a distributed vSwitch
//! load-sharing system that offloads a high-demand vNIC's *stateless*
//! rule tables and cached flows to a pool of idle SmartNICs (frontends)
//! while keeping all session state local in a single copy (the backend) —
//! eliminating state synchronization, and making load balancing a plain
//! 5-tuple hash and fault tolerance active-active.
//!
//! The paper's SmartNIC testbed and production region are replaced by a
//! deterministic discrete-event simulator with explicit CPU/memory/fabric
//! models (see `DESIGN.md` for the substitution argument). This facade
//! crate re-exports the workspace:
//!
//! * [`types`] — wire formats, flow keys, actions, the Nezha service
//!   header;
//! * [`sim`] — the event engine, resource models, topology, statistics;
//! * [`vswitch`] — the SmartNIC vSwitch: rule tables, session table,
//!   slow/fast path, stateful NFs;
//! * [`core`] — Nezha itself: BE/FE split, controller, offload/fallback,
//!   scaling, failover, and the region-scale fluid simulator;
//! * [`workloads`] — TCP_CRR, persistent flows, SYN floods, elephants,
//!   tenant populations;
//! * [`baselines`] — Sirius-like, Tea-like, Sailfish-like comparators and
//!   the deployment-cost model.
//!
//! ## Quickstart
//!
//! The [`prelude`] pulls in everything a typical simulation needs:
//!
//! ```
//! use nezha::prelude::*;
//!
//! // A small testbed with one busy vNIC on server 0.
//! let cfg = ClusterConfig::builder().auto(false).build();
//! let mut cluster = Cluster::new(cfg);
//! let mut vnic = Vnic::new(
//!     VnicId(1),
//!     VpcId(1),
//!     Ipv4Addr::new(10, 7, 0, 1),
//!     VnicProfile::default(),
//!     ServerId(0),
//! );
//! vnic.allow_inbound_port(9000);
//! cluster
//!     .add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(64))
//!     .unwrap();
//!
//! // Offload it to four idle SmartNICs and let the config propagate.
//! cluster.trigger_offload(VnicId(1), SimTime::ZERO).unwrap();
//! cluster.run_until(SimTime::ZERO + SimDuration::from_secs(3));
//! assert_eq!(cluster.fe_count(VnicId(1)), 4);
//!
//! // Every run records telemetry; snapshots are deterministic.
//! let snap = cluster.metrics().snapshot();
//! assert_eq!(snap.counter("ctrl.offload_events"), 1);
//! ```

#![warn(missing_docs)]

pub use nezha_baselines as baselines;
pub use nezha_core as core;
pub use nezha_sim as sim;
pub use nezha_types as types;
pub use nezha_vswitch as vswitch;
pub use nezha_workloads as workloads;

/// The most commonly used names, importable in one line.
///
/// Covers building a cluster ([`Cluster`], [`ClusterConfig`],
/// [`VSwitchConfig`], their builders), populating it ([`Vnic`],
/// [`VnicProfile`], [`VmConfig`], the workload generators), driving it
/// ([`SimTime`], [`SimDuration`], [`ConnSpec`]), and reading it back
/// ([`MetricsRegistry`], [`PacketTrace`], [`Profiler`], [`NezhaError`]).
pub mod prelude {
    pub use nezha_core::cluster::{Cluster, ClusterConfig, ClusterConfigBuilder, LbMode};
    pub use nezha_core::config::ConfigOp;
    pub use nezha_core::conn::{ConnKind, ConnSpec};
    pub use nezha_core::region::Region;
    pub use nezha_core::telemetry::ClusterStats;
    pub use nezha_core::vm::VmConfig;
    pub use nezha_core::Event;
    pub use nezha_sim::metrics::{MetricsDiff, MetricsRegistry, MetricsSnapshot};
    pub use nezha_sim::profile::{Profiler, Span, SpanId, SpanRecord};
    pub use nezha_sim::report::{BenchReport, Sample, BENCH_SCHEMA_VERSION};
    pub use nezha_sim::time::{SimDuration, SimTime};
    pub use nezha_sim::topology::TopologyConfig;
    pub use nezha_sim::trace::{PacketTrace, TraceEvent, TraceEventKind, TraceFilter};
    pub use nezha_types::{
        FiveTuple, Ipv4Addr, NezhaError, NezhaResult, ServerId, SessionKey, VnicId, VpcId,
    };
    pub use nezha_vswitch::config::{VSwitchConfig, VSwitchConfigBuilder};
    pub use nezha_vswitch::vnic::{Vnic, VnicProfile};
    pub use nezha_vswitch::vswitch::VSwitch;
    pub use nezha_workloads::cps::CpsWorkload;
    pub use nezha_workloads::elephant::ElephantFlow;
    pub use nezha_workloads::flows::PersistentFlows;
    pub use nezha_workloads::syn_flood::SynFlood;
}

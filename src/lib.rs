//! # nezha
//!
//! A research-quality Rust reproduction of **"Nezha: SmartNIC-Based
//! Virtual Switch Load Sharing"** (SIGCOMM 2025): a distributed vSwitch
//! load-sharing system that offloads a high-demand vNIC's *stateless*
//! rule tables and cached flows to a pool of idle SmartNICs (frontends)
//! while keeping all session state local in a single copy (the backend) —
//! eliminating state synchronization, and making load balancing a plain
//! 5-tuple hash and fault tolerance active-active.
//!
//! The paper's SmartNIC testbed and production region are replaced by a
//! deterministic discrete-event simulator with explicit CPU/memory/fabric
//! models (see `DESIGN.md` for the substitution argument). This facade
//! crate re-exports the workspace:
//!
//! * [`types`] — wire formats, flow keys, actions, the Nezha service
//!   header;
//! * [`sim`] — the event engine, resource models, topology, statistics;
//! * [`vswitch`] — the SmartNIC vSwitch: rule tables, session table,
//!   slow/fast path, stateful NFs;
//! * [`core`] — Nezha itself: BE/FE split, controller, offload/fallback,
//!   scaling, failover, and the region-scale fluid simulator;
//! * [`workloads`] — TCP_CRR, persistent flows, SYN floods, elephants,
//!   tenant populations;
//! * [`baselines`] — Sirius-like, Tea-like, Sailfish-like comparators and
//!   the deployment-cost model.
//!
//! ## Quickstart
//!
//! ```
//! use nezha::core::{Cluster, ClusterConfig};
//! use nezha::core::vm::VmConfig;
//! use nezha::sim::time::{SimDuration, SimTime};
//! use nezha::types::{Ipv4Addr, VnicId, VpcId};
//! use nezha::vswitch::vnic::{Vnic, VnicProfile};
//!
//! // A small testbed with one busy vNIC on server 0.
//! let mut cluster = Cluster::new(ClusterConfig::default());
//! let mut vnic = Vnic::new(
//!     VnicId(1),
//!     VpcId(1),
//!     Ipv4Addr::new(10, 7, 0, 1),
//!     VnicProfile::default(),
//!     nezha::types::ServerId(0),
//! );
//! vnic.allow_inbound_port(9000);
//! cluster.add_vnic(vnic, nezha::types::ServerId(0), VmConfig::with_vcpus(64));
//!
//! // Offload it to four idle SmartNICs and let the config propagate.
//! cluster.trigger_offload(VnicId(1), SimTime::ZERO).unwrap();
//! cluster.run_until(SimTime::ZERO + SimDuration::from_secs(3));
//! assert_eq!(cluster.fe_count(VnicId(1)), 4);
//! ```

#![warn(missing_docs)]

pub use nezha_baselines as baselines;
pub use nezha_core as core;
pub use nezha_sim as sim;
pub use nezha_types as types;
pub use nezha_vswitch as vswitch;
pub use nezha_workloads as workloads;

//! Property tests of the rule-table semantics against straightforward
//! reference implementations, plus session-table conservation invariants.

use nezha_sim::resources::MemoryPool;
use nezha_sim::time::SimTime;
use nezha_types::{
    Decision, Direction, FiveTuple, Ipv4Addr, PreActionPair, SessionKey, VnicId, VpcId,
};
use nezha_vswitch::config::VSwitchConfig;
use nezha_vswitch::session::SessionTable;
use nezha_vswitch::tables::acl::{AclRule, AclTable, PortRange};
use nezha_vswitch::tables::route::{RouteTable, RouteTarget};
use proptest::prelude::*;

fn arb_rule() -> impl Strategy<Value = AclRule> {
    (
        0u32..50,
        any::<u32>(),
        0u8..=32,
        any::<u32>(),
        0u8..=32,
        any::<u16>(),
        any::<u16>(),
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(
            |(prio, src, sl, dst, dl, plo, phi, accept, stateful)| AclRule {
                priority: prio,
                direction: None,
                src: (Ipv4Addr(src), sl),
                dst: (Ipv4Addr(dst), dl),
                src_ports: PortRange::ANY,
                dst_ports: PortRange {
                    lo: plo.min(phi),
                    hi: plo.max(phi),
                },
                protocol: None,
                decision: if accept {
                    Decision::Accept
                } else {
                    Decision::Drop
                },
                stateful,
            },
        )
}

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>())
        .prop_map(|(s, d, sp, dp)| FiveTuple::tcp(Ipv4Addr(s), sp, Ipv4Addr(d), dp))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The ACL's first-hit-by-priority lookup equals a naive reference:
    /// sort by (priority, insertion index), take the first match.
    #[test]
    fn acl_matches_reference(
        rules in prop::collection::vec(arb_rule(), 0..20),
        tuple in arb_tuple(),
    ) {
        let mut acl = AclTable::allow_all();
        for r in &rules {
            acl.insert(*r);
        }
        let got = acl.lookup(&tuple, Direction::Tx);

        let mut indexed: Vec<(usize, &AclRule)> = rules.iter().enumerate().collect();
        indexed.sort_by_key(|(i, r)| (r.priority, *i));
        let want = indexed
            .iter()
            .find(|(_, r)| r.matches(&tuple, Direction::Tx))
            .map(|(_, r)| (r.decision, r.stateful))
            .unwrap_or((Decision::Accept, false));
        prop_assert_eq!((got.decision, got.stateful), want);
    }

    /// LPM equals a naive longest-prefix scan.
    #[test]
    fn route_lpm_matches_reference(
        routes in prop::collection::vec((any::<u32>(), 0u8..=32, any::<u32>()), 0..24),
        dst in any::<u32>(),
    ) {
        let mut rt = RouteTable::new();
        for (p, l, hint) in &routes {
            rt.insert(Ipv4Addr(*p), *l, RouteTarget::Overlay(Ipv4Addr(*hint)));
        }
        let got = rt.lookup(Ipv4Addr(dst));

        // Reference: longest prefix wins; later inserts replace equals.
        let mut best: Option<(u8, Ipv4Addr)> = None;
        for (p, l, hint) in &routes {
            if Ipv4Addr(dst).in_prefix(Ipv4Addr(*p), *l)
                && best.is_none_or(|(bl, _)| *l >= bl)
            {
                best = Some((*l, Ipv4Addr(*hint)));
            }
        }
        prop_assert_eq!(got, best.map(|(_, h)| RouteTarget::Overlay(h)));
    }

    /// Memory conservation: any interleaving of establishes, removes,
    /// flow drops and expiries leaves the pool exactly balanced, and
    /// memory use equals what the live entries imply.
    #[test]
    fn session_table_conserves_memory(
        ops in prop::collection::vec((0u8..4, 0u16..48), 1..200),
    ) {
        let cfg = VSwitchConfig::default();
        let mut table = SessionTable::new();
        let mut pool = MemoryPool::new(1 << 20);
        let mut now = SimTime(0);
        let key = |n: u16| SessionKey::of(
            VpcId(1),
            FiveTuple::tcp(Ipv4Addr::new(10, 0, (n >> 8) as u8, n as u8), 1000 + n, Ipv4Addr::new(10, 1, 0, 1), 80),
        );
        for (op, n) in ops {
            now = SimTime(now.0 + 1_000_000);
            match op {
                0 => {
                    let k = key(n);
                    if table.get(&k).is_none() {
                        let _ = table.establish(
                            k,
                            VnicId(1),
                            Direction::Tx,
                            Some(PreActionPair::accept(None, None)),
                            now,
                            &mut pool,
                            &cfg.memory,
                        );
                    }
                }
                1 => table.remove(&key(n), &mut pool, &cfg.memory),
                2 => {
                    table.drop_cached_flows(&mut pool, &cfg.memory);
                }
                _ => {
                    table.expire(SimTime(now.0 + 60_000_000_000), &cfg, &mut pool);
                    now = SimTime(now.0 + 60_000_000_000);
                }
            }
            // Invariant: pool usage equals the sum over live entries.
            let expect: u64 = table
                .iter()
                .map(|(_, e)| {
                    cfg.memory.state_slab
                        + if e.pre_actions.is_some() { cfg.memory.flow_entry } else { 0 }
                })
                .sum();
            prop_assert_eq!(pool.used(), expect);
        }
        // Drain completely.
        table.expire(SimTime(now.0 + 600_000_000_000), &cfg, &mut pool);
        prop_assert_eq!(pool.used(), 0);
        prop_assert!(table.is_empty());
    }

    /// Canonical-hash affinity: for any tuple, both directions select the
    /// same FE index for any pool size.
    #[test]
    fn canonical_hash_is_direction_invariant(
        tuple in arb_tuple(),
        pool in 1u64..16,
    ) {
        let a = tuple.canonical().stable_hash() % pool;
        let b = tuple.reversed().canonical().stable_hash() % pool;
        prop_assert_eq!(a, b);
    }
}

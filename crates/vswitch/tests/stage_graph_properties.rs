//! Property tests of the stage-graph layer: the exact-sum invariant of
//! graph-derived cost plans, and equivalence of the combinator-composed
//! lookup pipeline against a straightforward reference implementation of
//! the legacy monolith's table-walk semantics.
//!
//! This file lives outside the lint's sim-visible scope, so the reference
//! implementation may read `tables.*` fields directly — that is the
//! point: it re-states the pre-refactor semantics independently of the
//! stage graph it checks.

use nezha_sim::profile::{Profiler, StageSet};
use nezha_types::{Decision, Direction, FiveTuple, Ipv4Addr, PreAction, ServerId, VnicId, VpcId};
use nezha_vswitch::config::CostModel;
use nezha_vswitch::stage::costing::{costs_from_plan, plan_leaves};
use nezha_vswitch::stage::lookup::{direction_lookup, lookup_graph, pair_lookup};
use nezha_vswitch::stage::{CostSlot, SwitchGraphs, FAST_PLAN, SLOW_PLAN};
use nezha_vswitch::tables::route::RouteTarget;
use nezha_vswitch::vnic::{Vnic, VnicProfile};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A small random vNIC profile: every table populated enough to exercise
/// each stage, cheap enough to synthesize hundreds of times.
fn arb_profile() -> impl Strategy<Value = VnicProfile> {
    (
        0usize..24, // acl_rules
        0usize..12, // routes
        0usize..8,  // qos_rules
        0usize..8,  // nat_rules
        0usize..6,  // policy_rules
        0usize..6,  // mirror_rules
        0usize..4,  // pbr_rules
        0usize..16, // vnic_server_entries
        0u8..4,     // extra_tables
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(
            |(acl, routes, qos, nat, policy, mirror, pbr, peers, extra, sacl, sdecap)| {
                VnicProfile {
                    acl_rules: acl,
                    routes,
                    qos_rules: qos,
                    nat_rules: nat,
                    policy_rules: policy,
                    mirror_rules: mirror,
                    pbr_rules: pbr,
                    vnic_server_entries: peers,
                    extra_tables: extra,
                    lookup_weight: 1.0,
                    stateful_acl: sacl,
                    stateful_decap: sdecap,
                }
            },
        )
}

fn arb_vnic() -> impl Strategy<Value = Vnic> {
    (arb_profile(), 1u32..200).prop_map(|(p, net)| {
        Vnic::new(VnicId(1), VpcId(1), Ipv4Addr(net << 16 | 7), p, ServerId(0))
    })
}

fn arb_dir() -> impl Strategy<Value = Direction> {
    prop::sample::select(vec![Direction::Tx, Direction::Rx])
}

/// A random valid plan: a duplicate-free subset of the non-absorbing
/// slots closed by an absorber, mirroring what `StageGraph::compile`
/// guarantees per path (each stage declares its slot once, and the
/// session slot is either the residue absorber or the create share —
/// never both).
fn arb_plan() -> impl Strategy<Value = Vec<CostSlot>> {
    (
        prop::bool::ANY, // dma
        prop::bool::ANY, // parse
        prop::bool::ANY, // session create
        prop::bool::ANY, // slow overhead
        prop::bool::ANY, // absorber: tiers vs session residue
    )
        .prop_map(|(dma, parse, create, overhead, tiers)| {
            let mut plan = Vec::new();
            if dma {
                plan.push(CostSlot::Dma);
            }
            if parse {
                plan.push(CostSlot::Parse);
            }
            if create && tiers {
                plan.push(CostSlot::SessionCreate);
            }
            if overhead {
                plan.push(CostSlot::SlowOverhead);
            }
            plan.push(if tiers {
                CostSlot::RuleTiers
            } else {
                CostSlot::SessionResidue
            });
            plan
        })
}

fn arb_costs() -> impl Strategy<Value = CostModel> {
    (
        0u64..200_000, // per_byte_milli
        0u64..5_000,   // parse
        0u64..20_000,  // session_create
        0u64..50_000,  // first_packet_overhead
        0u64..10_000,  // per_extra_table
    )
        .prop_map(
            |(per_byte_milli, parse, session_create, overhead, per_table)| CostModel {
                per_byte_milli,
                parse,
                session_create,
                first_packet_overhead: overhead,
                per_extra_table: per_table,
                ..CostModel::default()
            },
        )
}

// ---------------------------------------------------------------------
// Reference semantics: the legacy monolith's per-direction table walk,
// restated as straight-line code over direct table reads.
// ---------------------------------------------------------------------

fn reference_lookup(vnic: &Vnic, tuple: &FiveTuple, dir: Direction) -> PreAction {
    let t = &vnic.tables;
    let acl = t.acl.lookup(tuple, dir);
    let qos_class = t.qos.classify(tuple.dst_port);
    let stats_policy = match dir {
        Direction::Tx => t.policy.lookup(tuple.dst_ip, tuple.dst_port),
        Direction::Rx => t.policy.lookup(tuple.src_ip, tuple.src_port),
    };
    let (routable, next_hop) = match dir {
        Direction::Tx => {
            if let Some(via) = t.pbr.lookup(tuple.src_ip) {
                // PBR steers straight to a server, bypassing the routes.
                (true, t.vnic_server.select(via, tuple.stable_hash()))
            } else {
                match t.route.lookup(tuple.dst_ip) {
                    Some(RouteTarget::Overlay(hint)) => {
                        let h = tuple.stable_hash();
                        let hop = t
                            .vnic_server
                            .select(tuple.dst_ip, h)
                            .or_else(|| t.vnic_server.select(hint, h));
                        (true, hop)
                    }
                    Some(RouteTarget::Blackhole) | None => (false, None),
                }
            }
        }
        Direction::Rx => (true, None),
    };
    let nat_rewrite = match dir {
        Direction::Tx => t.nat.lookup(tuple.src_ip),
        Direction::Rx => None,
    };
    let mirror_to = match dir {
        Direction::Tx => t.mirror.lookup(tuple.dst_ip, tuple.dst_port),
        Direction::Rx => t.mirror.lookup(tuple.src_ip, tuple.src_port),
    };
    PreAction {
        verdict: if routable {
            acl.decision
        } else {
            Decision::Drop
        },
        stateful_acl: acl.stateful && routable,
        next_hop,
        nat_rewrite,
        stateful_decap: vnic.profile.stateful_decap,
        qos_class,
        stats_policy,
        mirror_to,
    }
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any valid plan — the canonical fast/slow plans and arbitrary
    /// absorber-closed compositions alike — splits any charged total into
    /// shares that sum back to it *exactly*, for any cost model, packet
    /// size, and vNIC profile. This is the cycle-reconciliation invariant
    /// the profiler's 0.00%-drift check rests on.
    #[test]
    fn plan_shares_sum_exactly_to_the_charged_total(
        plan in arb_plan(),
        costs in arb_costs(),
        vnic in arb_vnic(),
        bytes in 0usize..10_000,
        total in 0u64..5_000_000,
    ) {
        let c = costs_from_plan(&plan, &costs, &vnic, bytes, total);
        prop_assert_eq!(c.total(), total);
    }

    /// The canonical graph-derived plans preserve the same invariant and
    /// produce a tier vector sized by the vNIC's extra tables on the slow
    /// path.
    #[test]
    fn canonical_plans_reconcile_and_size_tiers(
        costs in arb_costs(),
        vnic in arb_vnic(),
        bytes in 0usize..10_000,
        total in 0u64..5_000_000,
        slow in prop::bool::ANY,
    ) {
        let plan = if slow { SLOW_PLAN } else { FAST_PLAN };
        let c = costs_from_plan(plan, &costs, &vnic, bytes, total);
        prop_assert_eq!(c.total(), total);
        if slow {
            prop_assert_eq!(c.tiers.len(), vnic.profile.extra_tables as usize + 1);
        } else {
            prop_assert!(c.tiers.is_empty());
        }
    }

    /// The profiler leaves a plan emits carry exactly the realized
    /// shares: summing the emitted cycles recovers the charged total, so
    /// flamegraph totals can never drift from the CPU accounting.
    #[test]
    fn plan_leaves_sum_to_the_charged_total(
        plan in arb_plan(),
        costs in arb_costs(),
        vnic in arb_vnic(),
        bytes in 0usize..10_000,
        total in 0u64..5_000_000,
    ) {
        let p = Profiler::new();
        let st = StageSet::register(&p);
        let c = costs_from_plan(&plan, &costs, &vnic, bytes, total);
        let mut sum = 0u64;
        plan_leaves(&plan, &st, &c, &mut |_stage, cycles| sum += cycles);
        prop_assert_eq!(sum, total);
    }

    /// The combinator-composed lookup pipeline computes, packet for
    /// packet, the same pre-action as the legacy monolith's table walk
    /// (restated above as `reference_lookup`).
    #[test]
    fn lookup_graph_matches_the_legacy_reference(
        vnic in arb_vnic(),
        src_off in 0u32..=0xffff,
        dst_raw in any::<u32>(),
        dst_in_subnet in prop::bool::ANY,
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        dir in arb_dir(),
    ) {
        let graph = lookup_graph();
        let subnet = vnic.addr.masked(16);
        // Sources sit in the vNIC's /16 (where the synthetic PBR/NAT
        // rules live); destinations are biased there too, with fully
        // random outliers so route misses occur.
        let dst = if dst_in_subnet {
            Ipv4Addr(subnet.0 | (dst_raw & 0xffff))
        } else {
            Ipv4Addr(dst_raw)
        };
        let tuple = FiveTuple::tcp(Ipv4Addr(subnet.0 | src_off), src_port, dst, dst_port);
        let got = direction_lookup(&graph, &vnic, &tuple, dir);
        prop_assert_eq!(got, reference_lookup(&vnic, &tuple, dir));
    }

    /// The bidirectional pair a slow path (or an FE) installs is exactly
    /// the two per-direction reference lookups over the session's
    /// Tx-oriented tuple, whichever direction the triggering packet had.
    #[test]
    fn pair_lookup_matches_per_direction_references(
        vnic in arb_vnic(),
        src_off in 0u32..=0xffff,
        dst_off in 0u32..=0xffff,
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        dir in arb_dir(),
    ) {
        let graph = lookup_graph();
        let subnet = vnic.addr.masked(16);
        let tuple = FiveTuple::tcp(
            Ipv4Addr(subnet.0 | src_off),
            src_port,
            Ipv4Addr(subnet.0 | dst_off),
            dst_port,
        );
        let pair = pair_lookup(&graph, &vnic, &tuple, dir);
        let tx_tuple = match dir {
            Direction::Tx => tuple,
            Direction::Rx => tuple.reversed(),
        };
        prop_assert_eq!(pair.tx, reference_lookup(&vnic, &tx_tuple, Direction::Tx));
        prop_assert_eq!(pair.rx, reference_lookup(&vnic, &tx_tuple.reversed(), Direction::Rx));
    }
}

/// The standard process graph derives exactly the canonical plans — the
/// contract `costs_from_plan`'s callers (and the constants above) assume.
#[test]
fn standard_graph_derives_the_canonical_plans() {
    use nezha_vswitch::pipeline::PathTaken;
    let g = SwitchGraphs::standard();
    assert_eq!(g.process.plan(PathTaken::Fast), FAST_PLAN);
    assert_eq!(g.process.plan(PathTaken::Slow), SLOW_PLAN);
}

//! Calibration constants of the vSwitch resource model.
//!
//! Every constant here is traceable to a statement in the paper (cited
//! inline). The defaults reproduce the paper's *envelope*: a vSwitch with
//! O(100K) CPS capacity (§2.2.2), a few GB of table memory out of 10 GB
//! (§2.2.2), ~100 B session entries, 2 MB+ rule tables per vNIC, and the
//! Table A1 lookup-throughput sensitivities to packet size and #ACL rules.

use nezha_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// CPU cycle costs of the packet-processing stages.
///
/// The split between **lookup** cycles (the pure rule-table query measured
/// by the paper's Table A1 microbenchmark) and **overhead** cycles (session
/// management, queue/doorbell handling, hypervisor interaction) is what
/// reconciles the paper's two numbers: a rule-table lookup sustains ~6.6 M
/// ops/s on the card while end-to-end CPS is only O(100K) — the first
/// packet of a connection pays both, several times over, across the
/// handshake.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed parse/classify cost paid by *every* packet.
    pub parse: u64,
    /// Per-byte DMA + copy cost (Table A1's packet-size sensitivity).
    pub per_byte_milli: u64,
    /// Fast-path cost: exact-match session lookup + `process_pkt`.
    pub fast_path: u64,
    /// Base cost of the minimum 5-table slow-path pipeline, excluding the
    /// ACL's rule-count-dependent part ("at least five tables", §2.2.2).
    pub pipeline_base: u64,
    /// Extra cost per additional advanced table (policy routing, mirror,
    /// flow log — "up to 12 tables", §2.2.2).
    pub per_extra_table: u64,
    /// ACL cost = `acl_base + acl_log_factor × ln(1 + rules)`; range
    /// matching over priorities grows with the rule count (Table A1).
    pub acl_base: u64,
    /// See [`CostModel::acl_base`].
    pub acl_log_factor: u64,
    /// Creating a bidirectional session entry (alloc + two-key insert).
    pub session_create: u64,
    /// Per-first-packet overhead outside lookup: doorbells, VM queue
    /// setup, metadata plumbing. The dominant term behind O(100K) CPS.
    pub first_packet_overhead: u64,
    /// BE-side work under Nezha per first packet: state init + NSH encap.
    pub be_first_packet: u64,
    /// BE-side work under Nezha per subsequent packet: state lookup/update
    /// plus NSH encap/decap — cheap, thanks to the per-flow hardware
    /// acceleration of §7.3.
    pub be_per_packet: u64,
    /// FE-side NSH decap/encap cost per carried packet.
    pub fe_carry: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            parse: 300,
            per_byte_milli: 550, // 0.55 cycles per byte
            fast_path: 600,
            pipeline_base: 1_400,
            per_extra_table: 450,
            acl_base: 120,
            acl_log_factor: 75,
            session_create: 1_500,
            first_packet_overhead: 25_000,
            be_first_packet: 2_000,
            be_per_packet: 250,
            fe_carry: 400,
        }
    }
}

impl CostModel {
    /// Cycles for one rule-table pipeline pass (the Table A1 quantity):
    /// parse + per-byte + base pipeline + ACL scaling + extra tables.
    pub fn lookup_cycles(&self, pkt_bytes: usize, acl_rules: usize, extra_tables: u8) -> u64 {
        self.parse
            + (self.per_byte_milli * pkt_bytes as u64) / 1000
            + self.pipeline_base
            + self.acl_base
            + (self.acl_log_factor as f64 * ((1 + acl_rules) as f64).ln()) as u64
            + self.per_extra_table * extra_tables as u64
    }

    /// Cycles for the complete slow-path handling of a first packet in the
    /// traditional (non-offloaded) architecture.
    pub fn slow_path_cycles(&self, pkt_bytes: usize, acl_rules: usize, extra_tables: u8) -> u64 {
        self.lookup_cycles(pkt_bytes, acl_rules, extra_tables)
            + self.session_create
            + self.first_packet_overhead
    }

    /// Cycles for a fast-path packet in the traditional architecture.
    pub fn fast_path_cycles(&self, pkt_bytes: usize) -> u64 {
        self.parse + (self.per_byte_milli * pkt_bytes as u64) / 1000 + self.fast_path
    }
}

/// Memory footprints of the vSwitch data structures.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Bidirectional cached-flow record: two 5-tuples + VPC id +
    /// pre-actions ("O(100B) in total", §2.2.2).
    pub flow_entry: u64,
    /// Fixed session-state slab (§7.1: 64 B).
    pub state_slab: u64,
    /// One ACL rule.
    pub acl_rule: u64,
    /// One route entry.
    pub route_entry: u64,
    /// One QoS rule.
    pub qos_rule: u64,
    /// One NAT rule.
    pub nat_rule: u64,
    /// One statistics-policy rule.
    pub policy_rule: u64,
    /// One vNIC→server mapping entry ("O(100K) entries … over 200 MB",
    /// §2.2.2 ⇒ ~2 KB each).
    pub vnic_server_entry: u64,
    /// Fixed per-vNIC table overhead (indexes, metadata), ensuring even a
    /// rule-light vNIC costs the paper's ~2 MB minimum (§6.2.1).
    pub vnic_base: u64,
    /// BE-side metadata for one *offloaded* vNIC: FE locations + essential
    /// local metadata ("2KB memory to store BE data", §6.2.1).
    pub be_metadata: u64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            flow_entry: 100,
            state_slab: 64,
            acl_rule: 64,
            route_entry: 32,
            qos_rule: 32,
            nat_rule: 32,
            policy_rule: 24,
            vnic_server_entry: 2_048,
            vnic_base: 2 * 1024 * 1024,
            be_metadata: 2 * 1024,
        }
    }
}

/// Complete configuration of one vSwitch instance.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VSwitchConfig {
    /// CPU cores available to virtual networking ("only a few CPU cores to
    /// virtual networks", §2.2.2; the card has 8 total — testbed §6.1).
    pub cores: u32,
    /// Clock of each core in Hz.
    pub core_hz: u64,
    /// Memory available for networking tables, in bytes ("hundreds of MB
    /// to a few GB for the session table" out of 10 GB, §2.2.2).
    pub table_memory: u64,
    /// Deepest CPU backlog (as drain time) before packets drop.
    pub max_backlog: SimDuration,
    /// Idle timeout for established sessions ("an average of 8s", §2.2.2).
    pub session_aging: SimDuration,
    /// Short aging for embryonic (SYN-state) sessions (§7.3).
    pub syn_aging: SimDuration,
    /// Cycle costs.
    pub costs: CostModel,
    /// Memory footprints.
    pub memory: MemoryModel,
}

impl Default for VSwitchConfig {
    fn default() -> Self {
        VSwitchConfig {
            cores: 4,
            core_hz: 2_000_000_000,
            table_memory: 1024 * 1024 * 1024, // 1 GB for tables
            max_backlog: SimDuration::from_millis(2),
            session_aging: SimDuration::from_secs(8),
            syn_aging: SimDuration::from_secs(1),
            costs: CostModel::default(),
            memory: MemoryModel::default(),
        }
    }
}

/// Fluent builder for [`VSwitchConfig`], starting from the defaults.
///
/// ```
/// use nezha_vswitch::config::VSwitchConfig;
/// use nezha_sim::time::SimDuration;
///
/// let cfg = VSwitchConfig::builder()
///     .cores(1)
///     .max_backlog(SimDuration::from_millis(4))
///     .build();
/// assert_eq!(cfg.cores, 1);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct VSwitchConfigBuilder {
    cfg: VSwitchConfig,
}

impl VSwitchConfigBuilder {
    /// CPU cores available to virtual networking.
    pub fn cores(mut self, cores: u32) -> Self {
        self.cfg.cores = cores;
        self
    }

    /// Clock of each core in Hz.
    pub fn core_hz(mut self, hz: u64) -> Self {
        self.cfg.core_hz = hz;
        self
    }

    /// Memory available for networking tables, in bytes.
    pub fn table_memory(mut self, bytes: u64) -> Self {
        self.cfg.table_memory = bytes;
        self
    }

    /// Deepest CPU backlog (as drain time) before packets drop.
    pub fn max_backlog(mut self, backlog: SimDuration) -> Self {
        self.cfg.max_backlog = backlog;
        self
    }

    /// Idle timeout for established sessions.
    pub fn session_aging(mut self, aging: SimDuration) -> Self {
        self.cfg.session_aging = aging;
        self
    }

    /// Short aging for embryonic (SYN-state) sessions.
    pub fn syn_aging(mut self, aging: SimDuration) -> Self {
        self.cfg.syn_aging = aging;
        self
    }

    /// Cycle costs.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.cfg.costs = costs;
        self
    }

    /// Memory footprints.
    pub fn memory(mut self, memory: MemoryModel) -> Self {
        self.cfg.memory = memory;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> VSwitchConfig {
        self.cfg
    }
}

impl VSwitchConfig {
    /// Starts a fluent [`VSwitchConfigBuilder`] from the defaults.
    pub fn builder() -> VSwitchConfigBuilder {
        VSwitchConfigBuilder::default()
    }

    /// Total CPU capacity in cycles per second.
    pub fn capacity_hz(&self) -> f64 {
        self.cores as f64 * self.core_hz as f64
    }

    /// A larger configuration used for the production middlebox hosts of
    /// §6.3 ("some more capable server SmartNICs").
    pub fn middlebox_host() -> Self {
        VSwitchConfig {
            cores: 8,
            core_hz: 2_500_000_000,
            table_memory: 2 * 1024 * 1024 * 1024,
            costs: CostModel {
                // Middlebox hosts pay heavier per-connection overheads
                // (deep feature pipelines, flow logging plumbing).
                first_packet_overhead: 36_000,
                ..CostModel::default()
            },
            ..Default::default()
        }
    }

    /// Theoretical CPS capacity: cycles/s divided by the cost of one
    /// TCP_CRR connection — one slow-path pass (the first packet creates
    /// the *bidirectional* cached flow, so the reverse direction already
    /// hits the fast path) plus six fast-path packets.
    pub fn nominal_cps(&self, pkt_bytes: usize, acl_rules: usize, extra_tables: u8) -> f64 {
        let per_conn = self
            .costs
            .slow_path_cycles(pkt_bytes, acl_rules, extra_tables)
            + 6 * self.costs.fast_path_cycles(pkt_bytes);
        self.capacity_hz() / per_conn as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cps_is_order_100k() {
        // §2.2.2: "We have optimized our SmartNIC's capacity to O(100K) CPS".
        let cfg = VSwitchConfig::default();
        let cps = cfg.nominal_cps(64, 100, 0);
        assert!(
            (80_000.0..400_000.0).contains(&cps),
            "nominal CPS {cps} out of the paper's O(100K) envelope"
        );
    }

    #[test]
    fn lookup_cost_grows_with_rules_and_bytes() {
        let c = CostModel::default();
        let base = c.lookup_cycles(64, 0, 0);
        assert!(c.lookup_cycles(64, 1000, 0) > c.lookup_cycles(64, 100, 0));
        assert!(c.lookup_cycles(64, 100, 0) > base);
        assert!(c.lookup_cycles(512, 0, 0) > base);
        assert!(c.lookup_cycles(64, 0, 7) > base);
    }

    #[test]
    fn lookup_rule_sensitivity_matches_table_a1_shape() {
        // Table A1 (64 B): 6.612 Mpps at 0 rules -> 5.422 Mpps at 1000
        // rules, a ~18% throughput drop. Our model must land in a similar
        // band: cost ratio 1000-rules/0-rules within [1.05, 1.45].
        let c = CostModel::default();
        let ratio = c.lookup_cycles(64, 1000, 0) as f64 / c.lookup_cycles(64, 0, 0) as f64;
        assert!((1.05..1.45).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn lookup_size_sensitivity_matches_table_a1_shape() {
        // Table A1 (0 rules): 6.612 Mpps at 64 B -> 5.985 Mpps at 512 B,
        // ~10% drop. Cost ratio 512/64 within [1.03, 1.30].
        let c = CostModel::default();
        let ratio = c.lookup_cycles(512, 0, 0) as f64 / c.lookup_cycles(64, 0, 0) as f64;
        assert!((1.03..1.30).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn be_work_is_much_cheaper_than_slow_path() {
        // Nezha's whole premise: the BE's residual per-connection work is a
        // small fraction of the full slow path, so offloading multiplies
        // CPS severalfold.
        let c = CostModel::default();
        let be = c.be_first_packet + 6 * c.be_per_packet;
        let local = c.slow_path_cycles(64, 100, 0) + 6 * c.fast_path_cycles(64);
        assert!(local as f64 / be as f64 > 3.0);
    }

    #[test]
    fn middlebox_host_is_larger() {
        let mb = VSwitchConfig::middlebox_host();
        let dflt = VSwitchConfig::default();
        assert!(mb.capacity_hz() > dflt.capacity_hz());
        assert!(mb.table_memory > dflt.table_memory);
    }

    #[test]
    fn memory_model_matches_paper_quantities() {
        let m = MemoryModel::default();
        // §2.2.2: session entry "O(100B)" + 64 B state slab.
        assert_eq!(m.flow_entry + m.state_slab, 164);
        // §6.2.1: rule table at least 2 MB; BE data 2 KB ⇒ 1000x #vNIC gain.
        assert_eq!(m.vnic_base / m.be_metadata, 1024);
        // §2.2.2: O(100K) vNIC-server entries consume >200 MB (decimal).
        assert!(100_000 * m.vnic_server_entry > 200_000_000);
    }
}

//! The session fast/slow split as stages.
//!
//! Process-level work (flow-cache probe, CPU charge, session
//! establishment) needs mutable access to the switch, so these stages
//! delegate one [`ProcOp`] each to the [`SwitchEnv`](super::SwitchEnv)
//! driving the graph. The stages also *declare their cost slots*: the
//! graph compiler collects them per path into the cost plan that
//! [`costing`](super::costing) realizes against the charged cycle total,
//! which is how `stage_costs` and the profiler's flamegraph leaves are
//! derived from topology instead of hand-wired.

use super::graph::{branch, seq, stage, CostSlot, Node, Stage, StageVerdict, PATH_SPLIT};
use super::{PktCtx, SwitchEnv};
use crate::pipeline::PathTaken;

/// Process-level operations a [`SwitchEnv`](super::SwitchEnv) executes
/// on behalf of the macro-stages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcOp {
    /// Probe the flow cache; decides the packet's path.
    ProbeFlowCache,
    /// Price the decided path and charge it against the switch CPU.
    ChargeCpu,
    /// Fast path: process against the cached bidirectional pre-actions.
    ProcessCached,
    /// Slow path: full bidirectional rule lookup (runs the lookup graph).
    LookupRules,
    /// Slow path: stateless routing drops are final — stop before any
    /// session is established.
    GateStatelessDrop,
    /// Slow path: establish (or re-cache) the session entry.
    EstablishSession,
    /// Slow path: process against the freshly looked-up pre-actions.
    ProcessFresh,
    /// Final admission: ACL verdict, then the QoS meter.
    Admit,
}

/// A macro-stage: delegates one [`ProcOp`] to the environment and
/// declares which cost slots it owns on each path.
#[derive(Debug)]
pub struct ProcStage {
    name: &'static str,
    op: ProcOp,
    fast_slots: &'static [CostSlot],
    slow_slots: &'static [CostSlot],
}

impl Stage<PktCtx> for ProcStage {
    fn name(&self) -> &'static str {
        self.name
    }

    fn eval(&self, ctx: &mut PktCtx, env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        env.op(self.op, ctx)
    }

    fn cost_slots(&self, path: PathTaken) -> &'static [CostSlot] {
        match path {
            PathTaken::Fast => self.fast_slots,
            PathTaken::Slow => self.slow_slots,
        }
    }
}

/// A pure cost-model stage: contributes cost slots to the plan but does
/// no per-packet work of its own (the simulator charges wire costs as
/// one total; these slots say how the total decomposes).
#[derive(Debug)]
pub struct ModelStage {
    name: &'static str,
    slots: &'static [CostSlot],
}

impl Stage<PktCtx> for ModelStage {
    fn name(&self) -> &'static str {
        self.name
    }

    fn eval(&self, _ctx: &mut PktCtx, _env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        StageVerdict::Continue
    }

    fn cost_slots(&self, _path: PathTaken) -> &'static [CostSlot] {
        self.slots
    }
}

fn took_fast_path(ctx: &PktCtx) -> bool {
    ctx.path == Some(PathTaken::Fast)
}

/// The standard process pipeline: ingest → parse → flow-cache probe →
/// CPU charge → fast/slow split → admission.
pub fn process_node() -> Node<PktCtx> {
    seq(vec![
        stage(ModelStage {
            name: "ingest-dma",
            slots: &[CostSlot::Dma],
        }),
        stage(ModelStage {
            name: "parse",
            slots: &[CostSlot::Parse],
        }),
        stage(ProcStage {
            name: "flow-cache-probe",
            op: ProcOp::ProbeFlowCache,
            fast_slots: &[CostSlot::SessionResidue],
            slow_slots: &[CostSlot::SessionCreate],
        }),
        stage(ProcStage {
            name: "cpu-charge",
            op: ProcOp::ChargeCpu,
            fast_slots: &[],
            slow_slots: &[],
        }),
        branch(
            PATH_SPLIT,
            took_fast_path,
            stage(ProcStage {
                name: "process-cached",
                op: ProcOp::ProcessCached,
                fast_slots: &[],
                slow_slots: &[],
            }),
            seq(vec![
                stage(ProcStage {
                    name: "rule-lookup",
                    op: ProcOp::LookupRules,
                    fast_slots: &[],
                    slow_slots: &[CostSlot::SlowOverhead, CostSlot::RuleTiers],
                }),
                stage(ProcStage {
                    name: "stateless-drop-gate",
                    op: ProcOp::GateStatelessDrop,
                    fast_slots: &[],
                    slow_slots: &[],
                }),
                stage(ProcStage {
                    name: "session-establish",
                    op: ProcOp::EstablishSession,
                    fast_slots: &[],
                    slow_slots: &[],
                }),
                stage(ProcStage {
                    name: "process-fresh",
                    op: ProcOp::ProcessFresh,
                    fast_slots: &[],
                    slow_slots: &[],
                }),
            ]),
        ),
        stage(ProcStage {
            name: "admit",
            op: ProcOp::Admit,
            fast_slots: &[],
            slow_slots: &[],
        }),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::graph::{StageGraph, FAST_PLAN, SLOW_PLAN};

    #[test]
    fn derived_plans_match_the_legacy_decomposition() {
        let g = StageGraph::compile(process_node()).expect("standard graph compiles");
        assert_eq!(g.plan(PathTaken::Fast), FAST_PLAN);
        assert_eq!(g.plan(PathTaken::Slow), SLOW_PLAN);
    }
}

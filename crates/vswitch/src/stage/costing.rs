//! Realizes a graph's cost plan against a charged cycle total.
//!
//! A compiled [`StageGraph`](super::StageGraph) carries one
//! [`CostSlot`] plan per path, collected from stage declarations in
//! topology order. [`costs_from_plan`] walks the plan with sequential
//! budgeting — each slot takes `min(model cost, remaining budget)` and
//! the path's absorber slot takes the remainder — so the shares sum to
//! the charged total *exactly* even when a vNIC `lookup_weight` or a
//! gray-failure multiplier scaled the charge away from the nominal
//! model costs. [`plan_leaves`] then maps each realized slot onto the
//! profiler's registered stage handles, which is how flamegraph leaves
//! follow graph topology automatically.

use super::graph::CostSlot;
use crate::config::CostModel;
use crate::pipeline::StageCosts;
use crate::vnic::Vnic;
use nezha_sim::profile::{StageHandle, StageSet};

/// Splits one charged cycle `total` into per-stage shares following
/// `plan` (see the module docs for the exact-sum budgeting rule).
pub fn costs_from_plan(
    plan: &[CostSlot],
    costs: &CostModel,
    vnic: &Vnic,
    bytes: usize,
    total: u64,
) -> StageCosts {
    fn take(budget: &mut u64, want: u64) -> u64 {
        let t = want.min(*budget);
        *budget -= t;
        t
    }
    let mut budget = total;
    let mut out = StageCosts::default();
    for slot in plan {
        match slot {
            CostSlot::Dma => {
                out.dma = take(&mut budget, (costs.per_byte_milli * bytes as u64) / 1000);
            }
            CostSlot::Parse => out.parse = take(&mut budget, costs.parse),
            CostSlot::SessionResidue => {
                // Cached-flow lookup: the rest of the fast-path charge.
                out.session = budget;
                budget = 0;
            }
            CostSlot::SessionCreate => out.session = take(&mut budget, costs.session_create),
            CostSlot::SlowOverhead => {
                out.overhead = take(&mut budget, costs.first_packet_overhead);
            }
            CostSlot::RuleTiers => {
                let extra = vnic.profile.extra_tables as usize;
                out.tiers = vec![0u64; extra + 1];
                for t in out.tiers.iter_mut().skip(1) {
                    *t = take(&mut budget, costs.per_extra_table);
                }
                out.tiers[0] = budget; // base pipeline + ACL + scaling residue
                budget = 0;
            }
        }
    }
    out
}

/// Emits `(handle, cycles)` for each realized slot of `plan`, in plan
/// order, against the profiler's registered stage set. Zero-cycle leaves
/// are emitted too — the span recorder filters them — so callers that
/// record directly should skip zeros themselves.
pub fn plan_leaves(
    plan: &[CostSlot],
    st: &StageSet,
    c: &StageCosts,
    f: &mut dyn FnMut(StageHandle, u64),
) {
    for slot in plan {
        match slot {
            CostSlot::Dma => f(st.dma, c.dma),
            CostSlot::Parse => f(st.parse, c.parse),
            CostSlot::SessionResidue | CostSlot::SessionCreate => f(st.session_lookup, c.session),
            CostSlot::SlowOverhead => f(st.slowpath, c.overhead),
            CostSlot::RuleTiers => {
                for (i, &cycles) in c.tiers.iter().enumerate() {
                    f(st.rule_tiers[i.min(st.rule_tiers.len() - 1)], cycles);
                }
            }
        }
    }
}

//! The stage-combinator core: typed stages composed into a compiled
//! [`StageGraph`].
//!
//! A [`Stage`] is a value with a typed interface — it reads and writes a
//! context `C` (the packet view) and may call into the context family's
//! environment ([`StageCtx::Env`], the switch services behind the
//! pipeline), returning a [`StageVerdict`]. Stages compose with four
//! combinators:
//!
//! * [`seq`] — run stages in order, short-circuiting on [`StageVerdict::Stop`];
//! * [`branch`] — predicate-selected alternative subgraphs;
//! * [`tee`] — a side-effect tap whose verdict never gates the pipeline;
//! * [`guard`] — a predicate-gated optional subgraph.
//!
//! [`StageGraph::compile`] validates the composition **once at
//! construction** and derives the per-path [`CostSlot`] plans the
//! profiler and `stage_costs` decomposition follow — so the flamegraph
//! topology and the exact cycle-reconciliation invariant are properties
//! of the graph, not of hand-maintained parallel code.

use crate::pipeline::PathTaken;
use std::fmt;

/// What a stage tells the graph walker after evaluating.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageVerdict {
    /// Proceed to the next stage.
    Continue,
    /// Terminal: the packet's fate is decided; skip the rest of the graph.
    Stop,
}

/// A context family for stage graphs: the mutable per-packet context type
/// itself, plus the environment its stages call into. The environment is
/// a generic-lifetime associated type so graphs stay lifetime-free (and
/// thus storable in a `VSwitch`/cluster) while environments may borrow
/// the switch they drive.
pub trait StageCtx {
    /// The environment stages of this context family receive
    /// (`dyn`-traits and `()` both work).
    type Env<'a>: ?Sized;
}

/// A composable pipeline stage with a typed interface: context `C` in,
/// [`StageVerdict`] out, with switch services reached through the
/// context family's environment.
///
/// Stages must be pure over `(ctx, env)` — all state they read or write
/// lives in the context or behind the environment, never in the stage
/// value itself. That is what lets one compiled graph serve every packet
/// and every role (local, FE, BE) concurrently.
pub trait Stage<C: StageCtx>: fmt::Debug + Send + Sync {
    /// Stable stage name (graph inventory, validation errors, docs).
    fn name(&self) -> &'static str;

    /// Evaluates the stage against one packet context.
    fn eval(&self, ctx: &mut C, env: &mut C::Env<'_>) -> StageVerdict;

    /// The cycle-cost slots this stage contributes to the charge
    /// decomposition when a packet takes `path`. Most stages model no
    /// cost of their own and return the empty slice.
    fn cost_slots(&self, path: PathTaken) -> &'static [CostSlot] {
        let _ = path;
        &[]
    }
}

/// A stage predicate: branch/guard selectors over the packet context.
/// Plain function pointers keep nodes `Debug + Send + Sync` and
/// allocation-free to evaluate.
pub type Pred<C> = fn(&C) -> bool;

/// The name of the distinguished [`branch`] that splits the session
/// fast path (then-arm) from the slow path (else-arm). Cost-plan
/// derivation resolves this branch by [`PathTaken`]; every other branch
/// must be cost-neutral.
pub const PATH_SPLIT: &str = "flow-cache";

/// One node of a stage graph: a stage or a combinator over subgraphs.
pub enum Node<C: StageCtx> {
    /// A leaf stage.
    Stage(Box<dyn Stage<C>>),
    /// Ordered composition; stops at the first [`StageVerdict::Stop`].
    Seq(Vec<Node<C>>),
    /// Predicate-selected alternatives.
    Branch {
        /// Branch name ([`PATH_SPLIT`] marks the fast/slow split).
        name: &'static str,
        /// Selector: `true` evaluates `then_node`, `false` `else_node`.
        pred: Pred<C>,
        /// Taken when the predicate holds.
        then_node: Box<Node<C>>,
        /// Taken otherwise.
        else_node: Box<Node<C>>,
    },
    /// A side-effect tap: the subgraph runs, its verdict is ignored.
    Tee(Box<Node<C>>),
    /// A predicate-gated subgraph; skipped (as `Continue`) when the
    /// predicate is false.
    Guard {
        /// Guard name (validation errors, docs).
        name: &'static str,
        /// Gate: the subgraph runs only when this holds.
        pred: Pred<C>,
        /// The gated subgraph.
        inner: Box<Node<C>>,
    },
}

/// Wraps a stage value as a graph node.
pub fn stage<C: StageCtx, S: Stage<C> + 'static>(s: S) -> Node<C> {
    Node::Stage(Box::new(s))
}

/// Sequential composition of `nodes` (must be non-empty at compile).
pub fn seq<C: StageCtx>(nodes: Vec<Node<C>>) -> Node<C> {
    Node::Seq(nodes)
}

/// Predicate-selected alternative subgraphs.
pub fn branch<C: StageCtx>(
    name: &'static str,
    pred: Pred<C>,
    then_node: Node<C>,
    else_node: Node<C>,
) -> Node<C> {
    Node::Branch {
        name,
        pred,
        then_node: Box::new(then_node),
        else_node: Box::new(else_node),
    }
}

/// A side-effect tap: `inner` runs but can never stop the pipeline.
pub fn tee<C: StageCtx>(inner: Node<C>) -> Node<C> {
    Node::Tee(Box::new(inner))
}

/// A predicate-gated subgraph.
pub fn guard<C: StageCtx>(name: &'static str, pred: Pred<C>, inner: Node<C>) -> Node<C> {
    Node::Guard {
        name,
        pred,
        inner: Box::new(inner),
    }
}

impl<C: StageCtx> Node<C> {
    fn eval(&self, ctx: &mut C, env: &mut C::Env<'_>) -> StageVerdict {
        match self {
            Node::Stage(s) => s.eval(ctx, env),
            Node::Seq(nodes) => {
                for n in nodes {
                    if n.eval(ctx, &mut *env) == StageVerdict::Stop {
                        return StageVerdict::Stop;
                    }
                }
                StageVerdict::Continue
            }
            Node::Branch {
                pred,
                then_node,
                else_node,
                ..
            } => {
                if pred(ctx) {
                    then_node.eval(ctx, env)
                } else {
                    else_node.eval(ctx, env)
                }
            }
            Node::Tee(inner) => {
                let _ = inner.eval(ctx, env);
                StageVerdict::Continue
            }
            Node::Guard { pred, inner, .. } => {
                if pred(ctx) {
                    inner.eval(ctx, env)
                } else {
                    StageVerdict::Continue
                }
            }
        }
    }

    fn collect_names(&self, out: &mut Vec<&'static str>) {
        match self {
            Node::Stage(s) => out.push(s.name()),
            Node::Seq(nodes) => {
                for n in nodes {
                    n.collect_names(out);
                }
            }
            Node::Branch {
                then_node,
                else_node,
                ..
            } => {
                then_node.collect_names(out);
                else_node.collect_names(out);
            }
            Node::Tee(inner) | Node::Guard { inner, .. } => inner.collect_names(out),
        }
    }

    fn validate(&self) -> Result<(), GraphError> {
        match self {
            Node::Stage(_) => Ok(()),
            Node::Seq(nodes) => {
                if nodes.is_empty() {
                    return Err(GraphError::EmptySeq);
                }
                nodes.iter().try_for_each(Node::validate)
            }
            Node::Branch {
                then_node,
                else_node,
                ..
            } => {
                then_node.validate()?;
                else_node.validate()
            }
            Node::Tee(inner) | Node::Guard { inner, .. } => inner.validate(),
        }
    }

    /// Appends this subtree's cost slots for `path` to `out`, resolving
    /// the [`PATH_SPLIT`] branch by `path` and rejecting cost slots whose
    /// execution the plan could not predict statically.
    fn collect_plan(&self, path: PathTaken, out: &mut Vec<CostSlot>) -> Result<(), GraphError> {
        match self {
            Node::Stage(s) => {
                out.extend_from_slice(s.cost_slots(path));
                Ok(())
            }
            Node::Seq(nodes) => nodes.iter().try_for_each(|n| n.collect_plan(path, out)),
            Node::Branch {
                name,
                then_node,
                else_node,
                ..
            } => {
                if *name == PATH_SPLIT {
                    match path {
                        PathTaken::Fast => then_node.collect_plan(path, out),
                        PathTaken::Slow => else_node.collect_plan(path, out),
                    }
                } else {
                    // A data-dependent branch must be cost-neutral (or
                    // symmetric): the decomposition cannot depend on
                    // which arm ran.
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    then_node.collect_plan(path, &mut a)?;
                    else_node.collect_plan(path, &mut b)?;
                    if a != b {
                        return Err(GraphError::AmbiguousCost(name));
                    }
                    out.append(&mut a);
                    Ok(())
                }
            }
            Node::Tee(inner) => Self::require_cost_neutral(inner, path, "tee"),
            Node::Guard { name, inner, .. } => Self::require_cost_neutral(inner, path, name),
        }
    }

    fn require_cost_neutral(
        inner: &Node<C>,
        path: PathTaken,
        name: &'static str,
    ) -> Result<(), GraphError> {
        let mut slots = Vec::new();
        inner.collect_plan(path, &mut slots)?;
        if slots.is_empty() {
            Ok(())
        } else {
            Err(GraphError::ConditionalCost(name))
        }
    }
}

impl<C: StageCtx> fmt::Debug for Node<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Stage(s) => write!(f, "{}", s.name()),
            Node::Seq(nodes) => f.debug_list().entries(nodes).finish(),
            Node::Branch {
                name,
                then_node,
                else_node,
                ..
            } => f
                .debug_struct("branch")
                .field("name", name)
                .field("then", then_node)
                .field("else", else_node)
                .finish(),
            Node::Tee(inner) => f.debug_tuple("tee").field(inner).finish(),
            Node::Guard { name, inner, .. } => f
                .debug_struct("guard")
                .field("name", name)
                .field("inner", inner)
                .finish(),
        }
    }
}

/// One slot of the charge decomposition, in budget order. The plans a
/// graph compiles to are sequences of these; `stage_costs` realizes a
/// plan against a concrete charge by sequential budgeting, so leaf
/// cycles always sum to exactly the charged total.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CostSlot {
    /// Per-byte DMA + copy share.
    Dma,
    /// Header-parse share.
    Parse,
    /// Fast-path session share: the cached-flow lookup absorbs the whole
    /// remaining budget (it is the fast path's only post-parse work).
    SessionResidue,
    /// Slow-path session-creation share.
    SessionCreate,
    /// First-packet slow-path overhead share.
    SlowOverhead,
    /// The rule-pipeline tiers: each extra table takes its model cost and
    /// tier 0 (base pipeline + ACL) absorbs the remaining budget.
    RuleTiers,
}

impl CostSlot {
    /// True when this slot absorbs the remaining budget (must be the
    /// last slot of any non-empty plan).
    pub fn is_absorber(self) -> bool {
        matches!(self, CostSlot::SessionResidue | CostSlot::RuleTiers)
    }
}

/// The standard fast-path plan (what the canonical process graph derives).
pub const FAST_PLAN: &[CostSlot] = &[CostSlot::Dma, CostSlot::Parse, CostSlot::SessionResidue];

/// The standard slow-path plan (what the canonical process graph derives).
pub const SLOW_PLAN: &[CostSlot] = &[
    CostSlot::Dma,
    CostSlot::Parse,
    CostSlot::SessionCreate,
    CostSlot::SlowOverhead,
    CostSlot::RuleTiers,
];

/// Why a composition failed to compile.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// A `seq` combinator with no stages.
    EmptySeq,
    /// A non-[`PATH_SPLIT`] branch whose arms declare different cost
    /// slots — the decomposition would depend on runtime data.
    AmbiguousCost(&'static str),
    /// A `tee`/`guard` subtree declares cost slots, but whether it runs
    /// is not statically known.
    ConditionalCost(&'static str),
    /// A plan declares the same cost slot twice.
    DuplicateSlot(CostSlot),
    /// A budget-absorbing slot is missing or not last, so leaf cycles
    /// could not sum to the charged total exactly.
    MisplacedAbsorber(PathTaken),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptySeq => write!(f, "seq combinator with no stages"),
            GraphError::AmbiguousCost(n) => {
                write!(f, "branch '{n}': arms declare different cost slots")
            }
            GraphError::ConditionalCost(n) => {
                write!(f, "tee/guard '{n}': conditional subtree declares cost slots")
            }
            GraphError::DuplicateSlot(s) => write!(f, "cost slot {s:?} declared twice"),
            GraphError::MisplacedAbsorber(p) => write!(
                f,
                "{p:?} plan lacks a trailing budget-absorbing slot; leaves would not sum to the charge"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated, compiled stage graph: the composition itself plus the
/// derived inventory and per-path cost plans.
pub struct StageGraph<C: StageCtx> {
    root: Node<C>,
    names: Vec<&'static str>,
    fast_plan: Vec<CostSlot>,
    slow_plan: Vec<CostSlot>,
}

impl<C: StageCtx> StageGraph<C> {
    /// Validates the composition and derives its stage inventory and
    /// cost plans. Called once at vSwitch (or cluster) construction.
    pub fn compile(root: Node<C>) -> Result<Self, GraphError> {
        root.validate()?;
        let mut names = Vec::new();
        root.collect_names(&mut names);
        let mut plans = [Vec::new(), Vec::new()];
        for (path, plan) in [PathTaken::Fast, PathTaken::Slow]
            .into_iter()
            .zip(&mut plans)
        {
            root.collect_plan(path, plan)?;
            for (i, slot) in plan.iter().enumerate() {
                if plan[..i].contains(slot) {
                    return Err(GraphError::DuplicateSlot(*slot));
                }
                if slot.is_absorber() != (i == plan.len() - 1) {
                    return Err(GraphError::MisplacedAbsorber(path));
                }
            }
        }
        let [fast_plan, slow_plan] = plans;
        Ok(StageGraph {
            root,
            names,
            fast_plan,
            slow_plan,
        })
    }

    /// Walks the graph for one packet context.
    pub fn eval(&self, ctx: &mut C, env: &mut C::Env<'_>) -> StageVerdict {
        self.root.eval(ctx, env)
    }

    /// The derived cost plan for `path`.
    pub fn plan(&self, path: PathTaken) -> &[CostSlot] {
        match path {
            PathTaken::Fast => &self.fast_plan,
            PathTaken::Slow => &self.slow_plan,
        }
    }

    /// Stage names in evaluation (pre-)order, both branch arms included.
    pub fn stage_names(&self) -> &[&'static str] {
        &self.names
    }

    /// True when a stage of this name is part of the graph.
    pub fn contains_stage(&self, name: &str) -> bool {
        self.names.contains(&name)
    }
}

impl<C: StageCtx> fmt::Debug for StageGraph<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageGraph")
            .field("root", &self.root)
            .field("fast_plan", &self.fast_plan)
            .field("slow_plan", &self.slow_plan)
            .finish()
    }
}

#[cfg(test)]
#[path = "graph_tests.rs"]
mod tests;

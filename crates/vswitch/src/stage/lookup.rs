//! The rule-table lookup pipeline as stages.
//!
//! One evaluation of [`direction_node`] over a [`PktCtx`] reproduces the
//! legacy `direction_lookup` exactly: ACL → QoS classify → stats policy
//! → routing (PBR steer, overlay route + vNIC-server selection, or local
//! Rx delivery) → source NAT (Tx only) → mirror tap. Stage bodies are
//! the only code (outside graph construction) allowed to touch
//! `tables::*` fields directly — lint rule D12 enforces this boundary.

use super::graph::{branch, guard, seq, stage, Node, Stage, StageVerdict};
use super::{PktCtx, PktGraph, SwitchEnv};
use crate::tables::route::RouteTarget;
use crate::vnic::Vnic;
use nezha_types::{Direction, FiveTuple, PreAction, PreActionPair};

fn is_tx(ctx: &PktCtx) -> bool {
    ctx.dir == Direction::Tx
}

fn pbr_steered(ctx: &PktCtx) -> bool {
    ctx.draft.pbr_via.is_some()
}

fn overlay_routed(ctx: &PktCtx) -> bool {
    ctx.draft.overlay_hint.is_some()
}

/// ACL match: records the (possibly stateful) preliminary verdict.
#[derive(Debug)]
pub struct AclLookup;

impl Stage<PktCtx> for AclLookup {
    fn name(&self) -> &'static str {
        "acl"
    }

    fn eval(&self, ctx: &mut PktCtx, env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        ctx.draft.acl = env.vnic().tables.acl.lookup(&ctx.tuple, ctx.dir);
        StageVerdict::Continue
    }
}

/// QoS classification by destination port.
#[derive(Debug)]
pub struct QosClassify;

impl Stage<PktCtx> for QosClassify {
    fn name(&self) -> &'static str {
        "qos-classify"
    }

    fn eval(&self, ctx: &mut PktCtx, env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        ctx.draft.qos_class = env.vnic().tables.qos.classify(ctx.tuple.dst_port);
        StageVerdict::Continue
    }
}

/// Statistics-policy match on the remote endpoint.
#[derive(Debug)]
pub struct StatsPolicy;

impl Stage<PktCtx> for StatsPolicy {
    fn name(&self) -> &'static str {
        "stats-policy"
    }

    fn eval(&self, ctx: &mut PktCtx, env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        let t = &ctx.tuple;
        ctx.draft.stats_policy = match ctx.dir {
            Direction::Tx => env.vnic().tables.policy.lookup(t.dst_ip, t.dst_port),
            Direction::Rx => env.vnic().tables.policy.lookup(t.src_ip, t.src_port),
        };
        StageVerdict::Continue
    }
}

/// Policy-based routing: source-address override of the route table.
#[derive(Debug)]
pub struct PbrLookup;

impl Stage<PktCtx> for PbrLookup {
    fn name(&self) -> &'static str {
        "pbr"
    }

    fn eval(&self, ctx: &mut PktCtx, env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        ctx.draft.pbr_via = env.vnic().tables.pbr.lookup(ctx.tuple.src_ip);
        StageVerdict::Continue
    }
}

/// Resolves a PBR hit straight to a server, bypassing the route table.
#[derive(Debug)]
pub struct PbrSteer;

impl Stage<PktCtx> for PbrSteer {
    fn name(&self) -> &'static str {
        "pbr-steer"
    }

    fn eval(&self, ctx: &mut PktCtx, env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        let Some(via) = ctx.draft.pbr_via else {
            return StageVerdict::Continue;
        };
        ctx.draft.routable = true;
        ctx.draft.next_hop = env
            .vnic()
            .tables
            .vnic_server
            .select(via, ctx.tuple.stable_hash());
        StageVerdict::Continue
    }
}

/// Overlay route lookup on the destination address.
#[derive(Debug)]
pub struct RouteLookup;

impl Stage<PktCtx> for RouteLookup {
    fn name(&self) -> &'static str {
        "route"
    }

    fn eval(&self, ctx: &mut PktCtx, env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        match env.vnic().tables.route.lookup(ctx.tuple.dst_ip) {
            Some(RouteTarget::Overlay(hint)) => {
                ctx.draft.routable = true;
                ctx.draft.overlay_hint = Some(hint);
            }
            Some(RouteTarget::Blackhole) | None => ctx.draft.routable = false,
        }
        StageVerdict::Continue
    }
}

/// Maps an overlay hop to a concrete server: first by the flow's own
/// destination, then by the route's hint.
#[derive(Debug)]
pub struct VnicServerSelect;

impl Stage<PktCtx> for VnicServerSelect {
    fn name(&self) -> &'static str {
        "vnic-server"
    }

    fn eval(&self, ctx: &mut PktCtx, env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        let Some(hint) = ctx.draft.overlay_hint else {
            return StageVerdict::Continue;
        };
        let map = &env.vnic().tables.vnic_server;
        let flow_hash = ctx.tuple.stable_hash();
        ctx.draft.next_hop = map
            .select(ctx.tuple.dst_ip, flow_hash)
            .or_else(|| map.select(hint, flow_hash));
        StageVerdict::Continue
    }
}

/// Rx direction: the packet terminates at this vNIC, always routable.
#[derive(Debug)]
pub struct RxLocalDeliver;

impl Stage<PktCtx> for RxLocalDeliver {
    fn name(&self) -> &'static str {
        "rx-local"
    }

    fn eval(&self, ctx: &mut PktCtx, _env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        ctx.draft.routable = true;
        ctx.draft.next_hop = None;
        StageVerdict::Continue
    }
}

/// Source NAT on the egress direction.
#[derive(Debug)]
pub struct NatRewrite;

impl Stage<PktCtx> for NatRewrite {
    fn name(&self) -> &'static str {
        "nat"
    }

    fn eval(&self, ctx: &mut PktCtx, env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        ctx.draft.nat_rewrite = env.vnic().tables.nat.lookup(ctx.tuple.src_ip);
        StageVerdict::Continue
    }
}

/// Mirror tap on the remote endpoint. Observability only — composed
/// under [`tee`](super::tee) so it can never stop the pipeline.
#[derive(Debug)]
pub struct MirrorTap;

impl Stage<PktCtx> for MirrorTap {
    fn name(&self) -> &'static str {
        "mirror"
    }

    fn eval(&self, ctx: &mut PktCtx, env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        let t = &ctx.tuple;
        ctx.draft.mirror_to = match ctx.dir {
            Direction::Tx => env.vnic().tables.mirror.lookup(t.dst_ip, t.dst_port),
            Direction::Rx => env.vnic().tables.mirror.lookup(t.src_ip, t.src_port),
        };
        StageVerdict::Continue
    }
}

/// The standard per-direction rule-table pipeline, composed.
pub fn direction_node() -> Node<PktCtx> {
    seq(vec![
        stage(AclLookup),
        stage(QosClassify),
        stage(StatsPolicy),
        branch(
            "egress-routing",
            is_tx,
            seq(vec![
                stage(PbrLookup),
                branch(
                    "pbr-steer",
                    pbr_steered,
                    stage(PbrSteer),
                    seq(vec![
                        stage(RouteLookup),
                        guard("overlay-hop", overlay_routed, stage(VnicServerSelect)),
                    ]),
                ),
            ]),
            stage(RxLocalDeliver),
        ),
        guard("snat", is_tx, stage(NatRewrite)),
        super::tee(stage(MirrorTap)),
    ])
}

/// Compiles the standard lookup graph stand-alone (benchmarks, tests).
pub fn lookup_graph() -> PktGraph {
    PktGraph::compile(direction_node()).expect("standard lookup graph is valid")
}

/// A minimal environment for pure rule-table lookups: exposes one vNIC,
/// no process-level operations.
#[derive(Debug)]
pub struct LookupEnv<'a> {
    vnic: &'a Vnic,
}

impl<'a> LookupEnv<'a> {
    /// An environment reading `vnic`'s tables.
    pub fn new(vnic: &'a Vnic) -> Self {
        LookupEnv { vnic }
    }
}

impl SwitchEnv for LookupEnv<'_> {
    fn vnic(&self) -> &Vnic {
        self.vnic
    }
}

/// Evaluates the lookup graph for one direction of `tuple`.
pub fn direction_lookup(
    graph: &PktGraph,
    vnic: &Vnic,
    tuple: &FiveTuple,
    dir: Direction,
) -> PreAction {
    let mut ctx = PktCtx::lookup(*tuple, dir);
    let mut env = LookupEnv::new(vnic);
    graph.eval(&mut ctx, &mut env);
    ctx.draft.finish(vnic)
}

/// Evaluates the lookup graph for both directions of the session the
/// packet belongs to, producing the bidirectional pre-action pair.
pub fn pair_lookup(
    graph: &PktGraph,
    vnic: &Vnic,
    tuple: &FiveTuple,
    pkt_dir: Direction,
) -> PreActionPair {
    let tx_tuple = match pkt_dir {
        Direction::Tx => *tuple,
        Direction::Rx => tuple.reversed(),
    };
    PreActionPair {
        tx: direction_lookup(graph, vnic, &tx_tuple, Direction::Tx),
        rx: direction_lookup(graph, vnic, &tx_tuple.reversed(), Direction::Rx),
    }
}

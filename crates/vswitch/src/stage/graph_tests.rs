//! Unit tests for the combinator core (split out to keep `graph.rs`
//! under the vswitch 600-line file-size cap).

use super::*;

/// Test context: a hit log and a flag the predicates read.
#[derive(Default)]
struct Ctx {
    hits: Vec<&'static str>,
    flag: bool,
}

impl StageCtx for Ctx {
    type Env<'a> = ();
}

#[derive(Debug)]
struct Mark(&'static str, StageVerdict);
impl Stage<Ctx> for Mark {
    fn name(&self) -> &'static str {
        self.0
    }
    fn eval(&self, ctx: &mut Ctx, _env: &mut ()) -> StageVerdict {
        ctx.hits.push(self.0);
        self.1
    }
}

#[derive(Debug)]
struct Cost(&'static str, &'static [CostSlot]);
impl Stage<Ctx> for Cost {
    fn name(&self) -> &'static str {
        self.0
    }
    fn eval(&self, _ctx: &mut Ctx, _env: &mut ()) -> StageVerdict {
        StageVerdict::Continue
    }
    fn cost_slots(&self, _path: PathTaken) -> &'static [CostSlot] {
        self.1
    }
}

fn flag(c: &Ctx) -> bool {
    c.flag
}

#[test]
fn seq_short_circuits_on_stop() {
    let g = StageGraph::compile(seq(vec![
        stage(Mark("a", StageVerdict::Continue)),
        stage(Mark("b", StageVerdict::Stop)),
        stage(Mark("c", StageVerdict::Continue)),
    ]))
    .unwrap();
    let mut ctx = Ctx::default();
    assert_eq!(g.eval(&mut ctx, &mut ()), StageVerdict::Stop);
    assert_eq!(ctx.hits, ["a", "b"]);
}

#[test]
fn branch_selects_by_predicate_and_guard_gates() {
    let g = StageGraph::compile(seq(vec![
        branch(
            "side",
            flag,
            stage(Mark("then", StageVerdict::Continue)),
            stage(Mark("else", StageVerdict::Continue)),
        ),
        guard("opt", flag, stage(Mark("gated", StageVerdict::Continue))),
    ]))
    .unwrap();
    let mut ctx = Ctx {
        flag: true,
        ..Ctx::default()
    };
    g.eval(&mut ctx, &mut ());
    assert_eq!(ctx.hits, ["then", "gated"]);
    let mut ctx = Ctx::default();
    g.eval(&mut ctx, &mut ());
    assert_eq!(ctx.hits, ["else"]);
}

#[test]
fn tee_never_stops_the_pipeline() {
    let g = StageGraph::compile(seq(vec![
        tee(stage(Mark("tap", StageVerdict::Stop))),
        stage(Mark("after", StageVerdict::Continue)),
    ]))
    .unwrap();
    let mut ctx = Ctx::default();
    assert_eq!(g.eval(&mut ctx, &mut ()), StageVerdict::Continue);
    assert_eq!(ctx.hits, ["tap", "after"]);
}

#[test]
fn compile_rejects_empty_seq_and_conditional_costs() {
    assert_eq!(
        StageGraph::<Ctx>::compile(seq(vec![])).unwrap_err(),
        GraphError::EmptySeq
    );
    let err = StageGraph::compile(guard(
        "g",
        flag,
        stage(Cost("c", &[CostSlot::Dma, CostSlot::SessionResidue])),
    ))
    .unwrap_err();
    assert_eq!(err, GraphError::ConditionalCost("g"));
}

#[test]
fn compile_rejects_plans_without_trailing_absorber() {
    let err = StageGraph::compile(stage(Cost("c", &[CostSlot::Dma]))).unwrap_err();
    assert_eq!(err, GraphError::MisplacedAbsorber(PathTaken::Fast));
}

#[test]
fn path_split_branch_resolves_plans() {
    #[derive(Debug)]
    struct Probe;
    impl Stage<Ctx> for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn eval(&self, _c: &mut Ctx, _e: &mut ()) -> StageVerdict {
            StageVerdict::Continue
        }
        fn cost_slots(&self, path: PathTaken) -> &'static [CostSlot] {
            match path {
                PathTaken::Fast => &[CostSlot::SessionResidue],
                PathTaken::Slow => &[CostSlot::SessionCreate],
            }
        }
    }
    let g = StageGraph::compile(seq(vec![
        stage(Cost("ingest", &[CostSlot::Dma])),
        stage(Cost("parse", &[CostSlot::Parse])),
        stage(Probe),
        branch(
            PATH_SPLIT,
            flag,
            stage(Mark("fast", StageVerdict::Continue)),
            stage(Cost(
                "rules",
                &[CostSlot::SlowOverhead, CostSlot::RuleTiers],
            )),
        ),
    ]))
    .unwrap();
    assert_eq!(g.plan(PathTaken::Fast), FAST_PLAN);
    assert_eq!(g.plan(PathTaken::Slow), SLOW_PLAN);
    assert!(g.contains_stage("probe"));
}

//! The local-architecture [`SwitchEnv`]: one packet's run through
//! `VSwitch::process_local`, executing the process graph's [`ProcOp`]s
//! against the switch's sessions, CPU, memory and telemetry.

use super::process::ProcOp;
use super::{PktCtx, StageVerdict, SwitchEnv, SwitchGraphs};
use crate::pipeline::{self, PathTaken, ProcessOutcome};
use crate::vnic::Vnic;
use crate::vswitch::VSwitch;
use nezha_sim::resources::CpuOutcome;
use nezha_sim::time::SimTime;
use nezha_sim::trace::TraceEventKind;
use nezha_types::{Decision, Packet, PreAction, PreActionPair, SessionKey};

/// Accumulated result of one run (consumed by the facade).
pub(crate) struct RunResult {
    pub(crate) outcome: ProcessOutcome,
    pub(crate) path: PathTaken,
    pub(crate) done: SimTime,
    pub(crate) created: bool,
    pub(crate) overflow: bool,
}

/// Mutable run state for one packet through the local process graph.
pub(crate) struct LocalRun<'a> {
    vs: &'a mut VSwitch,
    graphs: &'a SwitchGraphs,
    pkt: &'a Packet,
    key: SessionKey,
    now: SimTime,
    bytes: usize,
    path: PathTaken,
    done: SimTime,
    outcome: Option<ProcessOutcome>,
    action: Option<nezha_types::Action>,
    pre: Option<PreAction>,
    pair: Option<PreActionPair>,
    created: bool,
    overflow: bool,
}

impl<'a> LocalRun<'a> {
    pub(crate) fn new(
        vs: &'a mut VSwitch,
        graphs: &'a SwitchGraphs,
        pkt: &'a Packet,
        now: SimTime,
    ) -> Self {
        LocalRun {
            vs,
            graphs,
            pkt,
            key: SessionKey::of(pkt.vpc, pkt.tuple),
            now,
            bytes: pkt.wire_len(),
            path: PathTaken::Slow,
            done: now,
            outcome: None,
            action: None,
            pre: None,
            pair: None,
            created: false,
            overflow: false,
        }
    }

    /// Consumes the run; the graph must have decided an outcome.
    pub(crate) fn finish(self) -> RunResult {
        RunResult {
            outcome: self.outcome.expect("process graph decided an outcome"),
            path: self.path,
            done: self.done,
            created: self.created,
            overflow: self.overflow,
        }
    }

    fn probe_flow_cache(&mut self) -> StageVerdict {
        let have_cached = self
            .vs
            .sessions
            .get(&self.key)
            .is_some_and(|e| e.pre_actions.is_some());
        self.path = if have_cached {
            PathTaken::Fast
        } else {
            PathTaken::Slow
        };
        self.vs.trace_event(
            self.now,
            self.pkt,
            if have_cached {
                TraceEventKind::TableHit
            } else {
                TraceEventKind::TableMiss
            },
        );
        StageVerdict::Continue
    }

    fn charge_cpu(&mut self) -> StageVerdict {
        let costs = self.vs.cfg.costs;
        // Slow-path pricing happens here, after the probe, so fast-path
        // packets skip the slow-path formula's `ln`.
        let cycles = match self.path {
            PathTaken::Fast => costs.fast_path_cycles(self.bytes),
            PathTaken::Slow => self.vnic().slow_path_cycles(&costs, self.bytes),
        };
        match self.vs.charge(self.now, self.pkt.vnic, cycles) {
            CpuOutcome::Dropped => {
                self.outcome = Some(ProcessOutcome::CpuOverload);
                StageVerdict::Stop
            }
            CpuOutcome::Done { done_at } => {
                self.done = done_at;
                self.vs
                    .trace_event(self.now, self.pkt, TraceEventKind::CpuCharge { cycles });
                self.vs
                    .profile_local(self.pkt, self.now, done_at, cycles, self.bytes, self.path);
                StageVerdict::Continue
            }
        }
    }

    fn process_cached(&mut self) -> StageVerdict {
        let entry = self.vs.sessions.get_mut(&self.key).expect("probe hit");
        let pre = *entry
            .pre_actions
            .as_ref()
            .expect("probe hit")
            .for_direction(self.pkt.dir);
        self.action = Some(pipeline::process_pkt(&pre, &mut entry.state, self.pkt));
        entry.last_seen = self.now;
        StageVerdict::Continue
    }

    fn lookup_rules(&mut self) -> StageVerdict {
        let vnic = self.vs.vnics.get(&self.pkt.vnic).expect("facade checked");
        let pair = self.graphs.lookup_pair(vnic, &self.pkt.tuple, self.pkt.dir);
        self.pre = Some(*pair.for_direction(self.pkt.dir));
        self.pair = Some(pair);
        StageVerdict::Continue
    }

    fn gate_stateless_drop(&mut self) -> StageVerdict {
        let pre = self.pre.expect("rule lookup ran");
        if pre.verdict == Decision::Drop && !pre.stateful_acl {
            self.outcome = Some(ProcessOutcome::Unroutable);
            StageVerdict::Stop
        } else {
            StageVerdict::Continue
        }
    }

    fn establish_session(&mut self) -> StageVerdict {
        let pair = self.pair.expect("rule lookup ran");
        if self.vs.sessions.get(&self.key).is_none() {
            match self.vs.sessions.establish(
                self.key,
                self.pkt.vnic,
                self.pkt.dir,
                Some(pair),
                self.now,
                &mut self.vs.mem,
                &self.vs.cfg.memory,
            ) {
                Ok(_) => self.created = true,
                Err(_) => self.overflow = true, // process uncached
            }
        } else if let Some(e) = self.vs.sessions.get_mut(&self.key) {
            // Entry existed without cached flows (post rule-update): try to
            // re-cache the fresh lookup.
            if e.pre_actions.is_none() && self.vs.mem.alloc(self.vs.cfg.memory.flow_entry).is_ok() {
                e.pre_actions = Some(pair);
            }
            e.last_seen = self.now;
        }
        StageVerdict::Continue
    }

    fn process_fresh(&mut self) -> StageVerdict {
        let pre = self.pre.expect("rule lookup ran");
        self.action = Some(if let Some(e) = self.vs.sessions.get_mut(&self.key) {
            pipeline::process_pkt(&pre, &mut e.state, self.pkt)
        } else {
            // Uncached processing: ephemeral state (stateful guarantees
            // degrade exactly as they would on a real overflowing switch).
            let mut scratch = nezha_types::SessionState::default();
            pipeline::process_pkt(&pre, &mut scratch, self.pkt)
        });
        StageVerdict::Continue
    }

    fn admit(&mut self) -> StageVerdict {
        let action = self.action.expect("a process stage ran");
        self.outcome = Some(if action.verdict == Decision::Drop {
            ProcessOutcome::AclDrop
        } else if !self
            .vs
            .vnics
            .get_mut(&self.pkt.vnic)
            .expect("vnic present")
            .tables
            .qos
            .admit(self.now, action.qos_class, self.bytes as u64)
        {
            ProcessOutcome::RateLimited
        } else {
            ProcessOutcome::Forwarded(action)
        });
        StageVerdict::Continue
    }
}

impl SwitchEnv for LocalRun<'_> {
    fn vnic(&self) -> &Vnic {
        self.vs.vnics.get(&self.pkt.vnic).expect("facade checked")
    }

    fn op(&mut self, op: ProcOp, ctx: &mut PktCtx) -> StageVerdict {
        match op {
            ProcOp::ProbeFlowCache => {
                let v = self.probe_flow_cache();
                ctx.path = Some(self.path);
                v
            }
            ProcOp::ChargeCpu => self.charge_cpu(),
            ProcOp::ProcessCached => self.process_cached(),
            ProcOp::LookupRules => self.lookup_rules(),
            ProcOp::GateStatelessDrop => self.gate_stateless_drop(),
            ProcOp::EstablishSession => self.establish_session(),
            ProcOp::ProcessFresh => self.process_fresh(),
            ProcOp::Admit => self.admit(),
        }
    }
}

impl std::fmt::Debug for LocalRun<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalRun")
            .field("key", &self.key)
            .field("path", &self.path)
            .field("outcome", &self.outcome)
            .finish_non_exhaustive()
    }
}

//! Pipeline-as-combinators: the vSwitch datapath as typed, composable
//! stage graphs.
//!
//! The paper's equivalence argument (§3.1) rests on the *same*
//! packet-processing pipeline running in three places — the traditional
//! local vSwitch, a Nezha FE, and a Nezha BE. This module makes that
//! pipeline a first-class value: stages with typed interfaces
//! ([`PktCtx`] in, [`StageVerdict`] out) composed with [`seq`],
//! [`branch`], [`tee`] and [`guard`] into a [`StageGraph`] that is
//! compiled (validated + cost-planned) **once at construction** and then
//! drives every packet.
//!
//! * [`graph`] — the combinator core: [`Stage`], [`Node`], compilation,
//!   cost-plan derivation;
//! * [`lookup`] — the rule-table pipeline (ACL, QoS, policy, PBR, route,
//!   vNIC-server, NAT, mirror) as stages over [`PktCtx`];
//! * [`process`] — the session fast/slow split as macro-stages delegating
//!   to a [`SwitchEnv`];
//! * [`costing`] — realizes a graph's [`CostSlot`] plan against a charged
//!   cycle total (exact reconciliation) and maps it onto profiler
//!   stage handles;
//! * `local` — the [`SwitchEnv`] implementation driving
//!   `VSwitch::process_local`.
//!
//! Alternative pipelines (new tables, NAT/firewall variants, baseline
//! architectures) are new graphs over the same combinators — not forks
//! of `vswitch.rs`.

pub mod costing;
pub mod graph;
pub(crate) mod local;
pub mod lookup;
pub mod process;

pub use graph::{
    branch, guard, seq, stage, tee, CostSlot, GraphError, Node, Pred, Stage, StageCtx, StageGraph,
    StageVerdict, FAST_PLAN, PATH_SPLIT, SLOW_PLAN,
};
pub use process::ProcOp;

use crate::config::CostModel;
use crate::pipeline::{PathTaken, StageCosts};
use crate::tables::acl::AclVerdict;
use crate::vnic::Vnic;
use nezha_types::{Decision, Direction, FiveTuple, Ipv4Addr, PreAction, PreActionPair, ServerId};

/// The packet context every vSwitch stage reads and writes: the tuple
/// under consideration, the direction, the accumulating pre-action
/// draft, and the path the flow-cache probe decided.
#[derive(Clone, Copy, Debug)]
pub struct PktCtx {
    /// The five-tuple as seen from `dir`.
    pub tuple: FiveTuple,
    /// The direction this evaluation models.
    pub dir: Direction,
    /// The pre-action under construction (lookup stages).
    pub draft: PreActionDraft,
    /// Fast or slow, once the flow-cache probe has decided.
    pub path: Option<PathTaken>,
}

impl PktCtx {
    /// A context for one rule-table lookup pass.
    pub fn lookup(tuple: FiveTuple, dir: Direction) -> Self {
        PktCtx {
            tuple,
            dir,
            draft: PreActionDraft::default(),
            path: None,
        }
    }
}

impl StageCtx for PktCtx {
    type Env<'a> = dyn SwitchEnv + 'a;
}

/// The environment vSwitch stages call into: read access to the vNIC
/// under processing (rule tables), and process-level operations for the
/// macro-stages of the fast/slow split.
pub trait SwitchEnv {
    /// The vNIC whose tables this evaluation consults.
    fn vnic(&self) -> &Vnic;

    /// Executes one process-level operation. Pure lookup environments
    /// keep the default (their graphs contain no process stages).
    fn op(&mut self, op: ProcOp, ctx: &mut PktCtx) -> StageVerdict {
        let _ = (op, ctx);
        StageVerdict::Continue
    }
}

/// The pre-action a lookup pass accumulates stage by stage;
/// [`PreActionDraft::finish`] assembles the final [`PreAction`] with the
/// routing-overrides-ACL verdict rule.
#[derive(Clone, Copy, Debug)]
pub struct PreActionDraft {
    /// The ACL stage's (possibly stateful) preliminary verdict.
    pub acl: AclVerdict,
    /// QoS class from the classifier stage.
    pub qos_class: u8,
    /// Statistics policy id (0 = none).
    pub stats_policy: u8,
    /// Whether any routing stage accepted the destination.
    pub routable: bool,
    /// Resolved next hop, if any.
    pub next_hop: Option<ServerId>,
    /// Policy-based-routing hop address, when the PBR stage matched.
    pub pbr_via: Option<Ipv4Addr>,
    /// Overlay routing hint, when the route stage matched an overlay.
    pub overlay_hint: Option<Ipv4Addr>,
    /// Source-NAT rewrite, when the NAT stage matched.
    pub nat_rewrite: Option<Ipv4Addr>,
    /// Mirror collector, when the mirror tap matched.
    pub mirror_to: Option<Ipv4Addr>,
}

impl Default for PreActionDraft {
    fn default() -> Self {
        PreActionDraft {
            acl: AclVerdict {
                decision: Decision::Accept,
                stateful: false,
            },
            qos_class: 0,
            stats_policy: 0,
            routable: false,
            next_hop: None,
            pbr_via: None,
            overlay_hint: None,
            nat_rewrite: None,
            mirror_to: None,
        }
    }
}

impl PreActionDraft {
    /// Assembles the final pre-action: routing drops are final
    /// (stateless); only ACL verdicts may be softened by connection
    /// state.
    pub fn finish(&self, vnic: &Vnic) -> PreAction {
        let verdict = if !self.routable {
            Decision::Drop
        } else {
            self.acl.decision
        };
        PreAction {
            verdict,
            stateful_acl: self.acl.stateful && self.routable,
            next_hop: self.next_hop,
            nat_rewrite: self.nat_rewrite,
            stateful_decap: vnic.profile.stateful_decap,
            qos_class: self.qos_class,
            stats_policy: self.stats_policy,
            mirror_to: self.mirror_to,
        }
    }
}

/// A compiled stage graph over the vSwitch packet context.
pub type PktGraph = StageGraph<PktCtx>;

/// The two compiled graphs one switch (or cluster role) drives: the
/// full process pipeline (fast/slow split) and the rule-table lookup
/// subgraph the slow path — and the Nezha FE — evaluates per direction.
#[derive(Debug)]
pub struct SwitchGraphs {
    /// The process pipeline: probe → charge → fast/slow split → admit.
    pub process: PktGraph,
    /// The per-direction rule-table lookup pipeline.
    pub lookup: PktGraph,
}

impl SwitchGraphs {
    /// Compiles the standard pipeline (the paper's Fig. 1).
    pub fn standard() -> Self {
        SwitchGraphs {
            process: StageGraph::compile(process::process_node())
                .expect("standard process graph is valid"),
            lookup: StageGraph::compile(lookup::direction_node())
                .expect("standard lookup graph is valid"),
        }
    }

    /// Splits one charged cycle total into per-stage shares following
    /// the process graph's derived cost plan (leaves sum to `total`
    /// exactly).
    pub fn stage_costs(
        &self,
        costs: &CostModel,
        vnic: &Vnic,
        bytes: usize,
        total: u64,
        path: PathTaken,
    ) -> StageCosts {
        costing::costs_from_plan(self.process.plan(path), costs, vnic, bytes, total)
    }

    /// Runs the lookup subgraph for both directions of `tuple`'s
    /// session, producing the bidirectional pre-actions.
    pub fn lookup_pair(&self, vnic: &Vnic, tuple: &FiveTuple, pkt_dir: Direction) -> PreActionPair {
        lookup::pair_lookup(&self.lookup, vnic, tuple, pkt_dir)
    }
}

//! Per-switch telemetry plumbing: counter handles, trace buffer,
//! profiler + registered stage set.

use nezha_sim::metrics::{CounterHandle, MetricsRegistry};
use nezha_sim::profile::{Profiler, StageSet};
use nezha_sim::trace::PacketTrace;

/// Lifetime packet counters of one vSwitch.
///
/// Since the telemetry redesign this is a *view* assembled from the
/// vSwitch's `vswitch.*{server=N}` metrics on demand — the struct is kept
/// so existing `vs.counters().forwarded`-style call sites read unchanged.
#[derive(Clone, Copy, Debug, Default)]
pub struct VSwitchCounters {
    /// Packets processed to a forwarding decision.
    pub forwarded: u64,
    /// Packets dropped by final ACL verdict.
    pub acl_drops: u64,
    /// Packets dropped for lack of a route.
    pub unroutable: u64,
    /// Packets dropped by QoS rate limits.
    pub rate_limited: u64,
    /// Packets dropped because the CPU backlog bound was exceeded.
    pub cpu_drops: u64,
    /// First packets that could not cache a session (memory exhausted).
    pub session_overflows: u64,
    /// Mirror copies generated toward collectors.
    pub mirrored: u64,
}

/// Pre-registered handles for the per-switch counters. Registered once at
/// construction (or re-registered on `VSwitch::attach_metrics`); the hot
/// path only does handle increments.
#[derive(Clone, Debug)]
pub(crate) struct SwitchTelemetry {
    pub(crate) registry: MetricsRegistry,
    pub(crate) trace: PacketTrace,
    pub(crate) profiler: Profiler,
    pub(crate) stages: StageSet,
    pub(crate) forwarded: CounterHandle,
    pub(crate) acl_drops: CounterHandle,
    pub(crate) unroutable: CounterHandle,
    pub(crate) rate_limited: CounterHandle,
    pub(crate) cpu_drops: CounterHandle,
    pub(crate) session_overflows: CounterHandle,
    pub(crate) mirrored: CounterHandle,
}

impl SwitchTelemetry {
    pub(crate) fn register(registry: &MetricsRegistry, server: nezha_types::ServerId) -> Self {
        let labels = [("server", server.raw().to_string())];
        let c = |name: &str| registry.counter(name, &labels);
        let profiler = Profiler::new();
        let stages = StageSet::register(&profiler);
        SwitchTelemetry {
            registry: registry.clone(),
            trace: PacketTrace::disabled(),
            profiler,
            stages,
            forwarded: c("vswitch.forwarded"),
            acl_drops: c("vswitch.acl_drops"),
            unroutable: c("vswitch.unroutable"),
            rate_limited: c("vswitch.rate_limited"),
            cpu_drops: c("vswitch.cpu_drops"),
            session_overflows: c("vswitch.session_overflows"),
            mirrored: c("vswitch.mirrored"),
        }
    }

    pub(crate) fn view(&self) -> VSwitchCounters {
        let v = |h: CounterHandle| self.registry.counter_value(h);
        VSwitchCounters {
            forwarded: v(self.forwarded),
            acl_drops: v(self.acl_drops),
            unroutable: v(self.unroutable),
            rate_limited: v(self.rate_limited),
            cpu_drops: v(self.cpu_drops),
            session_overflows: v(self.session_overflows),
            mirrored: v(self.mirrored),
        }
    }
}

//! The packet-processing pipeline: slow-path rule lookup and fast-path
//! `process_pkt(pre_actions, state)`.
//!
//! These are *pure* functions over tables and state — the same code runs
//! in three places, exactly as the paper requires for its equivalence
//! argument (§3.1): in the traditional local vSwitch, at a Nezha FE
//! (which has rules/flows but receives state in the packet), and at a
//! Nezha BE (which has state but receives pre-actions in the packet).

use crate::config::CostModel;
use crate::vnic::Vnic;
use nezha_types::{
    Action, Direction, FiveTuple, Packet, PreAction, PreActionPair, SessionState,
    StatefulDecapState, TcpEvent,
};
use serde::{Deserialize, Serialize};

/// Result of one slow-path lookup: the bidirectional pre-actions that get
/// cached as a flow entry.
#[derive(Clone, Copy, Debug)]
pub struct LookupResult {
    /// Pre-actions for both directions of the session.
    pub pair: PreActionPair,
}

/// Which processing path a packet took.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PathTaken {
    /// Exact-match hit on the cached flow.
    Fast,
    /// Full rule-table lookup.
    Slow,
}

/// Terminal outcome for one packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcessOutcome {
    /// The packet proceeds with this final action.
    Forwarded(Action),
    /// Dropped by policy (final ACL verdict).
    AclDrop,
    /// Dropped: no route covers the destination.
    Unroutable,
    /// Dropped: per-class QoS rate exceeded.
    RateLimited,
    /// Dropped: the vSwitch CPU backlog bound was exceeded (overload).
    CpuOverload,
}

impl ProcessOutcome {
    /// True when the packet survived.
    pub fn is_forwarded(&self) -> bool {
        matches!(self, ProcessOutcome::Forwarded(_))
    }
}

/// Full result of processing one packet at one vSwitch.
#[derive(Clone, Copy, Debug)]
pub struct ProcessResult {
    /// What happened.
    pub outcome: ProcessOutcome,
    /// Which path the packet took; `None` for CPU drops (an overloaded
    /// switch rejects the packet before it takes any path).
    pub path: Option<PathTaken>,
    /// When the vSwitch finished with the packet (includes CPU queueing).
    pub done_at: nezha_sim::time::SimTime,
    /// True when a new session entry was created by this packet.
    pub created_session: bool,
    /// True when session-table memory was exhausted and the flow is being
    /// processed without caching (a #concurrent-flows overload signal).
    pub session_overflow: bool,
}

/// Per-stage decomposition of one CPU charge, produced by [`stage_costs`]
/// for the profiler. Leaf cycles always sum to exactly the charged total.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageCosts {
    /// Per-byte DMA + copy share.
    pub dma: u64,
    /// Header-parse share.
    pub parse: u64,
    /// Session share: flow-cache lookup (fast) or creation (slow).
    pub session: u64,
    /// First-packet slow-path overhead share (slow path only).
    pub overhead: u64,
    /// Rule-pipeline tiers (slow path only): index 0 is the base pipeline
    /// + ACL tier, indices 1.. the vNIC's extra per-table costs.
    pub tiers: Vec<u64>,
}

impl StageCosts {
    /// Sum of every leaf share (equals the charged total by construction).
    pub fn total(&self) -> u64 {
        self.dma + self.parse + self.session + self.overhead + self.tiers.iter().sum::<u64>()
    }
}

/// Splits one charged cycle `total` into per-stage shares following the
/// process graph's derived cost plan for `path`.
///
/// Shares are assigned by sequential budgeting — each stage takes
/// `min(model cost, remaining budget)` and the path's absorber slot
/// takes the remainder — so the parts sum to `total` *exactly* even when
/// a vNIC `lookup_weight` or gray-failure multiplier scaled the charge
/// away from the nominal model costs (see [`crate::stage::costing`]).
/// The plans here are the standard graph's, proven equal to the compiled
/// topology by the stage-module tests; callers holding a compiled graph
/// should prefer [`crate::stage::SwitchGraphs::stage_costs`]. Costs the
/// model does not split (BE state work, notify processing) are not
/// artificially split here.
pub fn stage_costs(
    costs: &CostModel,
    vnic: &Vnic,
    bytes: usize,
    total: u64,
    path: PathTaken,
) -> StageCosts {
    let plan = match path {
        PathTaken::Fast => crate::stage::FAST_PLAN,
        PathTaken::Slow => crate::stage::SLOW_PLAN,
    };
    crate::stage::costing::costs_from_plan(plan, costs, vnic, bytes, total)
}

/// Runs the compiled rule-table `graph` for the session of `tuple` as
/// seen from direction `pkt_dir`, producing the bidirectional
/// pre-actions.
///
/// Table order mirrors §2.2.2's "at least five tables": ACL, QoS, policy,
/// VXLAN routing, vNIC-server mapping (+ NAT for NAT vNICs) — composed in
/// [`crate::stage::lookup`]. The result depends only on the vNIC's
/// tables and the tuple — stateless, hence FE-replicable.
pub fn slow_path_lookup(
    graph: &crate::stage::PktGraph,
    vnic: &Vnic,
    tuple: &FiveTuple,
    pkt_dir: Direction,
) -> LookupResult {
    LookupResult {
        pair: crate::stage::lookup::pair_lookup(graph, vnic, tuple, pkt_dir),
    }
}

/// The fast-path `process_pkt(pre_actions, state)` of the paper's Fig. 1:
/// combines a direction's pre-action with the session state to produce the
/// final action, and applies the state transition the packet implies.
///
/// This exact function runs on the BE for RX packets (state local,
/// pre-actions from the packet) and on the FE for TX packets (pre-actions
/// local, state from the packet) — byte-identical decisions either way,
/// which `tests/separation_equivalence.rs` verifies exhaustively.
pub fn process_pkt(pre: &PreAction, state: &mut SessionState, pkt: &Packet) -> Action {
    update_state(Some(pre), state, pkt);
    finalize_with_state(pre, state, pkt)
}

/// Applies the state transitions a packet implies.
///
/// With `pre = Some(_)` this is the full transition (pre-action-derived
/// state like the statistics policy is adopted). With `pre = None` it is
/// the **BE-side TX half** under Nezha: the BE sees the packet before any
/// rule lookup, so it can apply packet-derived transitions (first-packet
/// direction, TCP FSM, statistics under the already-known policy) but
/// cannot adopt rule-table-involved state — that arrives later via notify
/// packets (§3.2.2).
pub fn update_state(pre: Option<&PreAction>, state: &mut SessionState, pkt: &Packet) {
    if state.first_dir.is_none() {
        state.first_dir = Some(pkt.dir);
    }
    if pkt.tuple.protocol == nezha_types::IpProtocol::Tcp {
        let first = state.first_dir.expect("set above");
        let ev = TcpEvent::from_flags(pkt.tcp_flags, pkt.dir, first);
        state.tcp = state.tcp.step(ev);
    }
    // Stateful decap (§5.2): RX records the overlay source.
    if pre.is_some_and(|p| p.stateful_decap) && pkt.dir == Direction::Rx {
        if let Some(src) = pkt.overlay_encap_src {
            state.decap = Some(StatefulDecapState { overlay_src: src });
        }
    }
    // Rule-table-involved state: adopt the statistics policy the
    // pre-action dictates (§3.2.2), then record under whatever policy is
    // in force.
    if let Some(p) = pre {
        if p.stats_policy != 0 {
            state.stats.policy = p.stats_policy;
        }
    }
    if state.stats.policy != 0 {
        state.stats.record(pkt.dir, pkt.wire_len() as u64);
    }
}

/// Computes the final action from a pre-action and the (already updated)
/// session state — pure, no state mutation. This is the decision half of
/// `process_pkt`, runnable wherever the two inputs happen to meet: at the
/// local vSwitch, at the FE (state carried in), or at the BE (pre-actions
/// carried in).
pub fn finalize_with_state(pre: &PreAction, state: &SessionState, pkt: &Packet) -> Action {
    let mut action = Action::finalize(pre, pkt.dir, state.first_dir);
    if pre.stateful_decap && pkt.dir == Direction::Tx {
        action.encap_override = state.decap.map(|d| d.overlay_src);
    }
    action
}

/// Number of mirror copies the action implies (0 or 1); counted by the
/// vSwitch and emitted toward the collector by the surrounding fabric.
pub fn mirror_copies(action: &Action) -> u32 {
    u32::from(action.mirror_to.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::PktGraph;
    use crate::vnic::VnicProfile;
    use nezha_types::TcpState;
    use nezha_types::{Decision, Ipv4Addr, ServerId, TcpFlags, VnicId, VpcId};

    /// A graph-free façade over [`slow_path_lookup`] so the table-order
    /// assertions below read as before the combinator refactor.
    fn lookup(vnic: &Vnic, tuple: &FiveTuple, pkt_dir: Direction) -> LookupResult {
        let graph: PktGraph = crate::stage::lookup::lookup_graph();
        slow_path_lookup(&graph, vnic, tuple, pkt_dir)
    }

    fn vnic() -> Vnic {
        Vnic::new(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile::default(),
            ServerId(0),
        )
    }

    fn tx_tuple() -> FiveTuple {
        // From the vNIC's own address to a mapped peer.
        FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 0, 1),
            40000,
            Ipv4Addr::new(10, 7, 0, 100),
            9000, // outside synthetic ACL drop ranges
        )
    }

    #[test]
    fn lookup_is_deterministic_and_direction_symmetric() {
        let v = vnic();
        let a = lookup(&v, &tx_tuple(), Direction::Tx);
        let b = lookup(&v, &tx_tuple(), Direction::Tx);
        assert_eq!(a.pair, b.pair);
        // Looking up from the RX side of the same session yields the same
        // bidirectional pair — this is what makes FE caching direction-
        // agnostic.
        let c = lookup(&v, &tx_tuple().reversed(), Direction::Rx);
        assert_eq!(a.pair, c.pair);
    }

    #[test]
    fn tx_preaction_resolves_next_hop() {
        let v = vnic();
        let r = lookup(&v, &tx_tuple(), Direction::Tx);
        assert!(r.pair.tx.next_hop.is_some(), "mapped peer must resolve");
        assert_eq!(r.pair.rx.next_hop, None, "ingress delivers locally");
    }

    #[test]
    fn unmapped_destination_uses_gateway() {
        // A vNIC with no vNIC-server entries at all: destinations are
        // routable via the default route but resolve to no server, which
        // models egress via the VPC gateway (next_hop None, Accept).
        let profile = VnicProfile {
            vnic_server_entries: 0,
            ..VnicProfile::default()
        };
        let v = Vnic::new(
            VnicId(3),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            profile,
            ServerId(0),
        );
        let t = FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 0, 1),
            40000,
            Ipv4Addr::new(172, 30, 1, 1),
            9000,
        );
        let r = lookup(&v, &t, Direction::Tx);
        assert_eq!(r.pair.tx.verdict, Decision::Accept);
        assert_eq!(r.pair.tx.next_hop, None);
    }

    #[test]
    fn pbr_overrides_destination_routing() {
        let mut v = vnic();
        // Map the policy hop to a concrete server, then steer the test
        // subnet's 192.x sources through it.
        let via = Ipv4Addr::new(10, 7, 250, 1);
        v.tables.vnic_server.set(via, ServerId(42));
        v.tables.pbr.insert(crate::tables::pbr::PbrRule {
            src_prefix: (Ipv4Addr::new(10, 7, 192, 0), 24),
            via,
        });
        let steered = FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 192, 5),
            40000,
            Ipv4Addr::new(10, 7, 0, 100),
            9000,
        );
        let r = lookup(&v, &steered, Direction::Tx);
        assert_eq!(r.pair.tx.next_hop, Some(ServerId(42)));
        // Unsteered sources still follow the destination route.
        let normal = tx_tuple();
        let r = lookup(&v, &normal, Direction::Tx);
        assert_ne!(r.pair.tx.next_hop, Some(ServerId(42)));
    }

    #[test]
    fn blackhole_routes_drop_statelessly() {
        let mut v = vnic();
        v.tables.route.insert(
            Ipv4Addr::new(192, 0, 2, 0),
            24,
            crate::tables::route::RouteTarget::Blackhole,
        );
        let t = FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 0, 1),
            40000,
            Ipv4Addr::new(192, 0, 2, 9),
            9000,
        );
        let r = lookup(&v, &t, Direction::Tx);
        assert_eq!(r.pair.tx.verdict, Decision::Drop);
        assert!(!r.pair.tx.stateful_acl, "routing drops are not stateful");
    }

    #[test]
    fn process_pkt_initializes_first_dir_and_fsm() {
        let v = vnic();
        let r = lookup(&v, &tx_tuple(), Direction::Tx);
        let mut state = SessionState::default();
        let pkt = Packet::tx_data(1, VpcId(1), VnicId(1), tx_tuple(), TcpFlags::SYN, 0);
        let act = process_pkt(&r.pair.tx, &mut state, &pkt);
        assert_eq!(state.first_dir, Some(Direction::Tx));
        assert_eq!(state.tcp, TcpState::SynSent);
        assert_eq!(act.verdict, Decision::Accept);
    }

    #[test]
    fn stateful_acl_blocks_unsolicited_rx_but_allows_responses() {
        let v = vnic(); // security-group default: stateful drop inbound
                        // A destination covered by routing but hitting the stateful
                        // default-drop on RX.
        let rx = FiveTuple::tcp(
            Ipv4Addr::new(172, 30, 1, 1),
            50000,
            Ipv4Addr::new(10, 7, 0, 1),
            9000,
        );
        let r = lookup(&v, &rx, Direction::Rx);

        // Unsolicited: first packet is RX.
        let mut state = SessionState::default();
        let pkt = Packet::rx_data(1, VpcId(1), VnicId(1), rx, TcpFlags::SYN, 0);
        let act = process_pkt(&r.pair.rx, &mut state, &pkt);
        assert_eq!(act.verdict, Decision::Drop);

        // Solicited: the session's first packet was TX.
        let mut state = SessionState::first_packet(Direction::Tx);
        let act = process_pkt(&r.pair.rx, &mut state, &pkt);
        assert_eq!(act.verdict, Decision::Accept);
    }

    #[test]
    fn stateful_decap_records_and_reencapsulates() {
        let profile = VnicProfile {
            stateful_decap: true,
            ..VnicProfile::default()
        };
        let v = Vnic::new(
            VnicId(2),
            VpcId(1),
            Ipv4Addr::new(10, 8, 0, 1),
            profile,
            ServerId(0),
        );
        let rx = FiveTuple::tcp(
            Ipv4Addr::new(203, 0, 113, 50), // client
            55555,
            Ipv4Addr::new(10, 8, 0, 1), // real server (this vNIC)
            8080,
        );
        let r = lookup(&v, &rx, Direction::Rx);
        let mut state = SessionState::default();

        // RX packet from the LB, overlay-encapsulated with the LB address.
        let mut pkt = Packet::rx_data(1, VpcId(1), VnicId(2), rx, TcpFlags::SYN, 0);
        pkt.overlay_encap_src = Some(Ipv4Addr::new(100, 64, 0, 7));
        // RX must be permitted: loosen verdict by treating first dir RX as
        // accepted (LB vNICs allow inbound).
        let mut pre_rx = r.pair.rx;
        pre_rx.verdict = Decision::Accept;
        pre_rx.stateful_acl = false;
        process_pkt(&pre_rx, &mut state, &pkt);
        assert_eq!(
            state.decap,
            Some(StatefulDecapState {
                overlay_src: Ipv4Addr::new(100, 64, 0, 7)
            })
        );

        // The TX response is re-encapsulated toward the recorded LB.
        let mut pre_tx = r.pair.tx;
        pre_tx.verdict = Decision::Accept;
        pre_tx.stateful_acl = false;
        let tx_pkt = Packet::tx_data(
            2,
            VpcId(1),
            VnicId(2),
            rx.reversed(),
            TcpFlags::SYN | TcpFlags::ACK,
            0,
        );
        let act = process_pkt(&pre_tx, &mut state, &tx_pkt);
        assert_eq!(act.encap_override, Some(Ipv4Addr::new(100, 64, 0, 7)));
    }

    #[test]
    fn stats_policy_from_preaction_becomes_state_and_records() {
        let v = vnic();
        let mut pre = lookup(&v, &tx_tuple(), Direction::Tx).pair.tx;
        pre.stats_policy = 3;
        let mut state = SessionState::default();
        let pkt = Packet::tx_data(1, VpcId(1), VnicId(1), tx_tuple(), TcpFlags::SYN, 100);
        process_pkt(&pre, &mut state, &pkt);
        assert_eq!(state.stats.policy, 3);
        assert_eq!(state.stats.tx_packets, 1);
        assert!(state.stats.tx_bytes > 100);
    }

    #[test]
    fn outcome_helpers() {
        assert!(ProcessOutcome::Forwarded(Action::drop()).is_forwarded());
        assert!(!ProcessOutcome::AclDrop.is_forwarded());
        assert!(!ProcessOutcome::CpuOverload.is_forwarded());
    }
}

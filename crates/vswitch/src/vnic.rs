//! A vNIC: the unit of tenant connectivity and of Nezha offloading.
//!
//! Each vNIC owns its full set of rule tables ([`VnicTables`]) for tenant
//! isolation (§2.1). A [`VnicProfile`] describes the *size class* of a
//! vNIC — ordinary VM vNICs need 5.5–10 MB of rule tables, middlebox
//! vNICs reach O(100 MB) (§2.2.2) — and is used both for synthetic table
//! generation and for memory accounting.

use crate::config::MemoryModel;
use crate::tables::acl::{AclRule, AclTable, PortRange};
use crate::tables::mirror::{MirrorRule, MirrorTable};
use crate::tables::nat::{NatRule, NatTable};
use crate::tables::pbr::{PbrRule, PbrTable};
use crate::tables::policy::{PolicyRule, PolicyTable};
use crate::tables::qos::{QosRule, QosTable};
use crate::tables::route::{RouteTable, RouteTarget};
use crate::tables::vnic_server::VnicServerMap;
use nezha_types::{Decision, Ipv4Addr, ServerId, VnicId, VpcId};
use serde::{Deserialize, Serialize};

/// Size/feature class of a vNIC, used to build synthetic rule tables.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VnicProfile {
    /// Number of ACL rules.
    pub acl_rules: usize,
    /// Number of route entries.
    pub routes: usize,
    /// Number of QoS rules.
    pub qos_rules: usize,
    /// Number of NAT rules (0 for non-NAT vNICs).
    pub nat_rules: usize,
    /// Number of statistics-policy rules.
    pub policy_rules: usize,
    /// Number of traffic-mirroring rules (an advanced table, §2.2.2).
    pub mirror_rules: usize,
    /// Number of policy-based-routing rules (an advanced table, §2.2.2).
    pub pbr_rules: usize,
    /// Number of vNIC→server mapping entries this vNIC caches locally
    /// (large VPCs reach O(100K), §2.2.2).
    pub vnic_server_entries: usize,
    /// Advanced tables enabled beyond the base five (policy routing,
    /// mirroring, flow log, … up to 7 more; §2.2.2).
    pub extra_tables: u8,
    /// Multiplier on the rule-lookup cycle cost, capturing per-table
    /// content richness the table *counts* alone miss (large range-match
    /// sets, policy routing, mirroring filters). Ordinary VM vNICs are
    /// 1.0; middlebox pipelines are calibrated so Table 3's "the more
    /// complex the rule table lookup, the lower the CPS without Nezha"
    /// ordering (NAT > LB > TR) reproduces.
    pub lookup_weight: f64,
    /// Whether the ACL behaves statefully (security-group semantics).
    pub stateful_acl: bool,
    /// Whether stateful decapsulation applies (LB real-server vNICs, §5.2).
    pub stateful_decap: bool,
}

impl Default for VnicProfile {
    fn default() -> Self {
        // An ordinary VM vNIC: a modest security group, a few routes, and
        // a few thousand peer mappings => ~5.5-10 MB with table overheads.
        VnicProfile {
            acl_rules: 100,
            routes: 64,
            qos_rules: 8,
            nat_rules: 0,
            policy_rules: 4,
            mirror_rules: 0,
            pbr_rules: 0,
            vnic_server_entries: 2_000,
            extra_tables: 0,
            lookup_weight: 1.0,
            stateful_acl: true,
            stateful_decap: false,
        }
    }
}

impl VnicProfile {
    /// A load-balancer middlebox vNIC: huge ACLs, many peers, stateful
    /// decap toward real servers, O(100 MB) of tables (§6.3.1).
    pub fn load_balancer() -> Self {
        VnicProfile {
            acl_rules: 4_000,
            routes: 2_000,
            qos_rules: 64,
            nat_rules: 0,
            policy_rules: 32,
            mirror_rules: 16,
            pbr_rules: 4,
            vnic_server_entries: 50_000,
            extra_tables: 2,
            lookup_weight: 5.45,
            stateful_acl: true,
            stateful_decap: true,
        }
    }

    /// A NAT-gateway middlebox vNIC: large NAT + ACL tables (§6.3.1).
    pub fn nat_gateway() -> Self {
        VnicProfile {
            acl_rules: 5_000,
            routes: 2_000,
            qos_rules: 64,
            nat_rules: 8_000,
            policy_rules: 32,
            mirror_rules: 16,
            pbr_rules: 4,
            vnic_server_entries: 50_000,
            extra_tables: 2,
            lookup_weight: 7.3,
            stateful_acl: true,
            stateful_decap: false,
        }
    }

    /// A transit-router middlebox vNIC: routing-heavy, **bypasses the
    /// ACL** — which is why TR shows the smallest CPS gain in Table 3
    /// ("TR has the simplest rule table lookup as it bypasses the ACL").
    pub fn transit_router() -> Self {
        VnicProfile {
            acl_rules: 0,
            routes: 20_000,
            qos_rules: 64,
            nat_rules: 0,
            policy_rules: 32,
            mirror_rules: 0,
            pbr_rules: 0,
            vnic_server_entries: 60_000,
            extra_tables: 1,
            lookup_weight: 1.35,
            stateful_acl: false,
            stateful_decap: false,
        }
    }
}

/// The bundle of rule tables owned by one vNIC.
#[derive(Clone, Debug, Default)]
pub struct VnicTables {
    /// Access control.
    pub acl: AclTable,
    /// VXLAN routing.
    pub route: RouteTable,
    /// QoS classification and metering.
    pub qos: QosTable,
    /// Source NAT.
    pub nat: NatTable,
    /// Statistics policy.
    pub policy: PolicyTable,
    /// Traffic mirroring.
    pub mirror: MirrorTable,
    /// Policy-based routing.
    pub pbr: PbrTable,
    /// Cached vNIC→server mappings.
    pub vnic_server: VnicServerMap,
}

impl VnicTables {
    /// Total memory footprint of the tables under `m`, including the fixed
    /// per-vNIC base overhead.
    pub fn memory_bytes(&self, m: &MemoryModel) -> u64 {
        m.vnic_base
            + self.acl.memory_bytes(m.acl_rule)
            + self.route.memory_bytes(m.route_entry)
            + self.qos.memory_bytes(m.qos_rule)
            + self.nat.memory_bytes(m.nat_rule)
            + self.policy.memory_bytes(m.policy_rule)
            + self.mirror.memory_bytes(m.policy_rule)
            + self.pbr.memory_bytes(m.policy_rule)
            + self.vnic_server.memory_bytes(m.vnic_server_entry)
    }

    /// Builds synthetic tables matching a profile.
    ///
    /// The generated rules are deterministic functions of the profile and
    /// `home`: routes cover the vNIC's /16, ACL rules allow a spread of
    /// port ranges under a stateful default, peers map into consecutive
    /// synthetic servers. The content is synthetic but the *lookup work
    /// and memory* match the profile exactly, which is what the
    /// experiments measure.
    pub fn synthesize(profile: &VnicProfile, subnet: Ipv4Addr, home: ServerId) -> Self {
        let mut t = VnicTables {
            acl: if profile.stateful_acl {
                AclTable::security_group()
            } else {
                AclTable::allow_all()
            },
            ..Default::default()
        };
        for i in 0..profile.acl_rules {
            // Alternate accept/drop rules over varied ports and prefixes.
            let port_base = (i as u16).wrapping_mul(13) % 60_000;
            t.acl.insert(AclRule {
                priority: i as u32 + 1,
                direction: None,
                src: (Ipv4Addr::UNSPECIFIED, 0),
                dst: (Ipv4Addr(subnet.0 + ((i as u32) << 8)), 24),
                src_ports: PortRange::ANY,
                dst_ports: PortRange {
                    lo: port_base,
                    hi: port_base + 128,
                },
                protocol: None,
                decision: if i % 4 == 0 {
                    Decision::Drop
                } else {
                    Decision::Accept
                },
                stateful: profile.stateful_acl,
            });
        }
        // Routes: the subnet itself plus /24s fanning out, ending with a
        // default route so synthetic traffic is always routable.
        t.route.insert(subnet, 16, RouteTarget::Overlay(subnet));
        for i in 0..profile.routes {
            t.route.insert(
                Ipv4Addr(subnet.0 ^ ((i as u32 + 1) << 8)),
                24,
                RouteTarget::Overlay(subnet),
            );
        }
        t.route
            .insert(Ipv4Addr::UNSPECIFIED, 0, RouteTarget::Overlay(subnet));
        for i in 0..profile.qos_rules {
            t.qos.add_rule(QosRule {
                dst_ports: PortRange {
                    lo: (i as u16) * 100,
                    hi: (i as u16) * 100 + 99,
                },
                class: (i % 4) as u8,
            });
        }
        for i in 0..profile.nat_rules {
            t.nat.insert(NatRule {
                src_prefix: (Ipv4Addr(subnet.0 + (i as u32)), 32),
                public: Ipv4Addr(0xcb00_7100 + (i as u32 % 250)),
            });
        }
        for i in 0..profile.policy_rules {
            // Statistics policies cover the upper half of the /16 — flow
            // logging applies to designated prefixes, not to all traffic
            // (most production state is just FSM+direction, Fig. 15).
            t.policy.insert(PolicyRule {
                dst_prefix: (Ipv4Addr(subnet.0 + ((128 + i as u32) << 8)), 24),
                dst_ports: PortRange::ANY,
                policy: (i % 3 + 1) as u8,
            });
        }
        for i in 0..profile.mirror_rules {
            // Mirrors watch designated prefixes in the upper /16 half,
            // like the statistics policies (most traffic is not mirrored).
            t.mirror.insert(MirrorRule {
                dst_prefix: (Ipv4Addr(subnet.0 + ((160 + i as u32) << 8)), 24),
                dst_ports: PortRange::ANY,
                collector: Ipv4Addr(subnet.0 + 0xf0_00 + i as u32),
            });
        }
        for i in 0..profile.pbr_rules {
            // Policy routes steer designated source /24s via an egress
            // inspection hop inside the subnet.
            t.pbr.insert(PbrRule {
                src_prefix: (Ipv4Addr(subnet.0 + ((192 + i as u32) << 8)), 24),
                via: Ipv4Addr(subnet.0 + 0xf1_00 + i as u32),
            });
        }
        for i in 0..profile.vnic_server_entries {
            t.vnic_server.set(
                Ipv4Addr(subnet.0 + i as u32),
                ServerId(home.0 + i as u32 % 64),
            );
        }
        t
    }
}

/// A vNIC instance: identity, overlay address, tables, profile.
#[derive(Clone, Debug)]
pub struct Vnic {
    /// The vNIC's id.
    pub id: VnicId,
    /// Owning tenant network.
    pub vpc: VpcId,
    /// The vNIC's overlay address (what peers send to).
    pub addr: Ipv4Addr,
    /// Size/feature profile.
    pub profile: VnicProfile,
    /// The rule tables (present when this node holds them; a Nezha BE in
    /// the final stage has dropped them).
    pub tables: VnicTables,
}

impl Vnic {
    /// Builds a vNIC with synthetic tables per its profile.
    pub fn new(
        id: VnicId,
        vpc: VpcId,
        addr: Ipv4Addr,
        profile: VnicProfile,
        home: ServerId,
    ) -> Self {
        let subnet = addr.masked(16);
        Vnic {
            id,
            vpc,
            addr,
            profile,
            tables: VnicTables::synthesize(&profile, subnet, home),
        }
    }

    /// Memory its tables occupy under `m`.
    pub fn table_memory(&self, m: &MemoryModel) -> u64 {
        self.tables.memory_bytes(m)
    }

    /// Opens an inbound service port: inserts a top-priority stateless
    /// RX accept rule, the security-group idiom for exposing a listener.
    pub fn allow_inbound_port(&mut self, port: u16) {
        self.tables.acl.insert(AclRule {
            priority: 0,
            direction: Some(nezha_types::Direction::Rx),
            src: (Ipv4Addr::UNSPECIFIED, 0),
            dst: (Ipv4Addr::UNSPECIFIED, 0),
            src_ports: PortRange::ANY,
            dst_ports: PortRange::only(port),
            protocol: None,
            decision: Decision::Accept,
            stateful: false,
        });
    }

    /// Rule-lookup cycles for one pipeline pass over this vNIC's tables.
    pub fn lookup_cycles(&self, costs: &crate::config::CostModel, pkt_bytes: usize) -> u64 {
        let base = costs.lookup_cycles(pkt_bytes, self.tables.acl.len(), self.profile.extra_tables);
        (base as f64 * self.profile.lookup_weight) as u64
    }

    /// Full slow-path cycles for this vNIC's first packets.
    pub fn slow_path_cycles(&self, costs: &crate::config::CostModel, pkt_bytes: usize) -> u64 {
        self.lookup_cycles(costs, pkt_bytes) + costs.session_create + costs.first_packet_overhead
    }

    /// Cycles one TCP_CRR connection costs on a local vSwitch: one slow
    /// path (the first packet caches the bidirectional flow) plus six
    /// fast-path packets.
    pub fn crr_cycles(&self, costs: &crate::config::CostModel, pkt_bytes: usize) -> u64 {
        self.slow_path_cycles(costs, pkt_bytes) + 6 * costs.fast_path_cycles(pkt_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nezha_types::FiveTuple;

    fn mm() -> MemoryModel {
        MemoryModel::default()
    }

    #[test]
    fn default_profile_memory_matches_paper_band() {
        // §2.2.2: "most vNICs require 5.5-10MB of memory".
        let v = Vnic::new(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile::default(),
            ServerId(0),
        );
        let mb = v.table_memory(&mm()) as f64 / (1024.0 * 1024.0);
        assert!((5.5..=10.0).contains(&mb), "vNIC memory {mb} MB");
    }

    #[test]
    fn middlebox_profiles_are_order_100mb() {
        // §6.3.1: "the rule table sizes of LB, NAT and TR are generally
        // O(100MB)".
        for p in [
            VnicProfile::load_balancer(),
            VnicProfile::nat_gateway(),
            VnicProfile::transit_router(),
        ] {
            let v = Vnic::new(
                VnicId(2),
                VpcId(1),
                Ipv4Addr::new(10, 8, 0, 1),
                p,
                ServerId(0),
            );
            let mb = v.table_memory(&mm()) as f64 / (1024.0 * 1024.0);
            assert!((50.0..=400.0).contains(&mb), "middlebox memory {mb} MB");
        }
    }

    #[test]
    fn synthetic_tables_have_requested_sizes() {
        let p = VnicProfile {
            acl_rules: 10,
            routes: 5,
            qos_rules: 3,
            nat_rules: 2,
            policy_rules: 4,
            mirror_rules: 2,
            pbr_rules: 0,
            vnic_server_entries: 7,
            extra_tables: 1,
            lookup_weight: 1.0,
            stateful_acl: true,
            stateful_decap: false,
        };
        let t = VnicTables::synthesize(&p, Ipv4Addr::new(10, 9, 0, 0), ServerId(3));
        assert_eq!(t.acl.len(), 10);
        assert_eq!(t.route.len(), 5 + 2); // + subnet route + default route
        assert_eq!(t.qos.len(), 3);
        assert_eq!(t.nat.len(), 2);
        assert_eq!(t.policy.len(), 4);
        assert_eq!(t.mirror.len(), 2);
        assert_eq!(t.vnic_server.len(), 7);
    }

    #[test]
    fn synthetic_traffic_is_routable() {
        let v = Vnic::new(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile::default(),
            ServerId(0),
        );
        // Any destination resolves via the default route.
        assert!(v
            .tables
            .route
            .lookup(Ipv4Addr::new(172, 16, 0, 1))
            .is_some());
        // Peer addresses resolve to servers.
        assert!(!v
            .tables
            .vnic_server
            .lookup(Ipv4Addr::new(10, 7, 0, 5))
            .is_empty());
        // ACL with stateful default never panics on lookup.
        let _ = v.tables.acl.lookup(
            &FiveTuple::tcp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
            nezha_types::Direction::Tx,
        );
    }

    #[test]
    fn transit_router_bypasses_acl() {
        let p = VnicProfile::transit_router();
        assert_eq!(p.acl_rules, 0);
        assert!(!p.stateful_acl);
        let t = VnicTables::synthesize(&p, Ipv4Addr::new(10, 1, 0, 0), ServerId(0));
        assert!(t.acl.is_empty());
    }
}

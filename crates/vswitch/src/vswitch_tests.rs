use super::*;
use crate::config::VSwitchConfig;
use crate::tables::acl::PortRange;
use crate::tables::qos::{ClassLimit, QosRule};
use crate::vnic::VnicProfile;
use nezha_types::{FiveTuple, Ipv4Addr, ServerId, TcpFlags, VpcId};

fn vswitch_with_vnic() -> (VSwitch, VnicId) {
    let mut vs = VSwitch::new(ServerId(0), VSwitchConfig::default());
    let vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vs.add_vnic(vnic).unwrap();
    (vs, VnicId(1))
}

fn tx_pkt(trace: u64, sport: u16) -> Packet {
    Packet::tx_data(
        trace,
        VpcId(1),
        VnicId(1),
        FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 0, 1),
            sport,
            Ipv4Addr::new(10, 7, 0, 100),
            9000,
        ),
        TcpFlags::SYN,
        64,
    )
}

#[test]
fn first_packet_slow_then_fast() {
    let (mut vs, _) = vswitch_with_vnic();
    let r1 = vs.process_local(&tx_pkt(1, 40000), SimTime(0));
    assert!(r1.outcome.is_forwarded());
    assert_eq!(r1.path, Some(PathTaken::Slow));
    assert!(r1.created_session);

    let mut p2 = tx_pkt(2, 40000);
    p2.tcp_flags = TcpFlags::ACK;
    let r2 = vs.process_local(&p2, SimTime(1000));
    assert!(r2.outcome.is_forwarded());
    assert_eq!(r2.path, Some(PathTaken::Fast));
    assert!(!r2.created_session);
    assert_eq!(vs.sessions.len(), 1);
    assert_eq!(vs.counters().forwarded, 2);
}

#[test]
fn fast_path_is_cheaper_than_slow_path() {
    let (mut vs, _) = vswitch_with_vnic();
    let r1 = vs.process_local(&tx_pkt(1, 40001), SimTime(0));
    let slow_latency = r1.done_at.since(SimTime(0));
    // Re-use the session from a quiet start time.
    let t = SimTime(1_000_000_000);
    let mut p2 = tx_pkt(2, 40001);
    p2.tcp_flags = TcpFlags::ACK;
    let r2 = vs.process_local(&p2, t);
    let fast_latency = r2.done_at.since(t);
    assert!(
        fast_latency.nanos() * 3 < slow_latency.nanos(),
        "fast {fast_latency} vs slow {slow_latency}"
    );
}

#[test]
fn unknown_vnic_is_unroutable() {
    let (mut vs, _) = vswitch_with_vnic();
    let mut p = tx_pkt(1, 40000);
    p.vnic = VnicId(99);
    let r = vs.process_local(&p, SimTime(0));
    assert_eq!(r.outcome, ProcessOutcome::Unroutable);
    assert_eq!(vs.counters().unroutable, 1);
}

#[test]
fn sustained_overload_drops_packets() {
    let (mut vs, _) = vswitch_with_vnic();
    // Hammer new connections at one instant; the backlog bound breaks.
    let mut cpu_drops = 0;
    for i in 0..3000 {
        let r = vs.process_local(&tx_pkt(i, 10000 + (i % 50_000) as u16), SimTime(0));
        if r.outcome == ProcessOutcome::CpuOverload {
            cpu_drops += 1;
        }
    }
    assert!(cpu_drops > 0);
    assert_eq!(vs.counters().cpu_drops, cpu_drops);
}

/// Regression for the old `ProcessResult.path` wart: a CPU-overloaded
/// packet never took a path, so the result must say so (`None`) instead
/// of reporting a meaningless value — while surviving packets still
/// report the real path and the drop is otherwise accounted identically.
#[test]
fn cpu_overload_reports_no_path() {
    let (mut vs, _) = vswitch_with_vnic();
    let mut saw_overload = false;
    for i in 0..3000 {
        let r = vs.process_local(&tx_pkt(i, 10000 + (i % 50_000) as u16), SimTime(0));
        match r.outcome {
            ProcessOutcome::CpuOverload => {
                saw_overload = true;
                assert_eq!(r.path, None, "a CPU drop took no path");
                assert_eq!(r.done_at, SimTime(0), "dropped on arrival");
                assert!(!r.created_session);
            }
            _ => assert!(r.path.is_some(), "surviving packets report a path"),
        }
    }
    assert!(saw_overload, "overload never engaged");
    assert!(vs.counters().cpu_drops > 0);
}

#[test]
fn vnic_table_memory_enforced() {
    // 10 MB: fits one default vNIC.
    let cfg = VSwitchConfig::builder()
        .table_memory(10 * 1024 * 1024)
        .build();
    let mut vs = VSwitch::new(ServerId(0), cfg);
    let v1 = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    let v2 = Vnic::new(
        VnicId(2),
        VpcId(1),
        Ipv4Addr::new(10, 8, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vs.add_vnic(v1).unwrap();
    assert!(vs.add_vnic(v2).is_err(), "second vNIC must not fit");
    assert_eq!(vs.vnic_count(), 1);
}

#[test]
fn remove_vnic_releases_memory() {
    let (mut vs, id) = vswitch_with_vnic();
    let used = vs.mem.used();
    assert!(used > 0);
    let v = vs.remove_vnic(id).unwrap();
    assert_eq!(vs.mem.used(), 0);
    assert_eq!(v.id, id);
    assert!(vs.remove_vnic(id).is_none());
}

#[test]
fn cycle_attribution_ranks_heavy_vnics() {
    let (mut vs, _) = vswitch_with_vnic();
    let v2 = Vnic::new(
        VnicId(2),
        VpcId(1),
        Ipv4Addr::new(10, 9, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vs.add_vnic(v2).unwrap();
    // vNIC 1 gets 10 connections, vNIC 2 gets 1.
    for i in 0..10 {
        vs.process_local(&tx_pkt(i, 41000 + i as u16), SimTime(i * 1_000_000));
    }
    let mut p = tx_pkt(100, 45000);
    p.vnic = VnicId(2);
    p.tuple.src_ip = Ipv4Addr::new(10, 9, 0, 1);
    // Offer after the earlier backlog has drained (time is monotone in
    // real runs; the CPU model treats an out-of-order earlier offer as
    // arriving behind the whole backlog).
    vs.process_local(&p, SimTime(20_000_000));
    let shares = vs.vnic_cycle_shares();
    assert!(shares[&VnicId(1)] > shares[&VnicId(2)]);
}

#[test]
fn session_overflow_processes_uncached() {
    // Just enough memory for the vNIC tables + one session.
    let cfg = VSwitchConfig::builder()
        .table_memory(8 * 1024 * 1024)
        .build();
    let mut vs = VSwitch::new(ServerId(0), cfg);
    let vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vs.add_vnic(vnic).unwrap();
    // Fill the remaining memory with sessions.
    let mut overflowed = false;
    for i in 0..200_000 {
        let r = vs.process_local(
            &tx_pkt(i, (i % 60_000) as u16),
            SimTime(i * 10_000_000), // spread to avoid CPU drops
        );
        if r.session_overflow {
            overflowed = true;
            assert!(r.outcome.is_forwarded(), "overflow still forwards");
            break;
        }
    }
    assert!(overflowed, "never hit session-table memory limit");
    assert!(vs.counters().session_overflows > 0);
}

#[test]
fn utilization_reflects_load() {
    let (mut vs, _) = vswitch_with_vnic();
    vs.set_util_window(nezha_sim::time::SimDuration::from_millis(10));
    assert_eq!(vs.cpu_utilization(SimTime(0)), 0.0);
    // 2000 new connections at 5 us spacing = 200K CPS offered for 10 ms
    // on a ~400K-CPS-lookup-capable switch: roughly half utilized.
    for i in 0..2000 {
        vs.process_local(&tx_pkt(i, 20000 + (i % 40_000) as u16), SimTime(i * 5_000));
    }
    let u = vs.cpu_utilization(SimTime(2000 * 5_000));
    assert!(u > 0.2, "utilization {u}");
    assert!(vs.mem_utilization() > 0.0);
}

#[test]
fn expire_sessions_frees_capacity() {
    let (mut vs, _) = vswitch_with_vnic();
    vs.process_local(&tx_pkt(1, 40000), SimTime(0));
    assert_eq!(vs.sessions.len(), 1);
    // SYN sessions age out after syn_aging (1 s).
    let n = vs.expire_sessions(SimTime(2_000_000_000));
    assert_eq!(n, 1);
    assert_eq!(vs.sessions.len(), 0);
}

/// A vNIC whose port-443 class is rate limited to ~10 packets of
/// burst: the fast path must start returning RateLimited once the
/// bucket drains, and recover as tokens refill.
#[test]
fn qos_rate_limit_enforced_on_fast_path() {
    let mut vs = VSwitch::new(ServerId(0), VSwitchConfig::default());
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile {
            qos_rules: 0,
            ..VnicProfile::default()
        },
        ServerId(0),
    );
    vnic.tables.qos.add_rule(QosRule {
        dst_ports: PortRange::only(443),
        class: 2,
    });
    vnic.tables.qos.add_limit(ClassLimit {
        class: 2,
        rate_bytes_per_sec: 10_000.0,
        burst_bytes: 2_000.0,
    });
    vs.add_vnic(vnic).unwrap();

    let pkt = |n: u64| {
        Packet::tx_data(
            n,
            VpcId(1),
            VnicId(1),
            FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 0, 1),
                50_000,
                Ipv4Addr::new(10, 7, 0, 9),
                443,
            ),
            if n == 0 { TcpFlags::SYN } else { TcpFlags::ACK },
            100,
        )
    };
    // Burst through the bucket (each packet ~154B on the wire).
    let mut limited = 0;
    for n in 0..30 {
        let r = vs.process_local(&pkt(n), SimTime(n * 1_000_000));
        if r.outcome == ProcessOutcome::RateLimited {
            limited += 1;
        }
    }
    assert!(limited > 5, "rate limit never engaged: {limited}");
    assert_eq!(vs.counters().rate_limited, limited);
    // After a second, tokens are back.
    let r = vs.process_local(&pkt(100), SimTime(1_500_000_000));
    assert!(
        r.outcome.is_forwarded(),
        "bucket must refill: {:?}",
        r.outcome
    );
}

/// Unlimited classes never rate limit, regardless of volume.
#[test]
fn best_effort_class_is_unlimited() {
    let mut vs = VSwitch::new(ServerId(0), VSwitchConfig::default());
    let vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile {
            qos_rules: 0,
            ..VnicProfile::default()
        },
        ServerId(0),
    );
    vs.add_vnic(vnic).unwrap();
    for n in 0..200u64 {
        let pkt = Packet::tx_data(
            n,
            VpcId(1),
            VnicId(1),
            FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 0, 1),
                50_000,
                Ipv4Addr::new(10, 7, 0, 9),
                9000,
            ),
            if n == 0 { TcpFlags::SYN } else { TcpFlags::ACK },
            1_400,
        );
        let r = vs.process_local(&pkt, SimTime(n * 10_000_000));
        assert!(r.outcome != ProcessOutcome::RateLimited);
    }
    assert_eq!(vs.counters().rate_limited, 0);
}

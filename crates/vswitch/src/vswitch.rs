//! The assembled vSwitch: vNICs + session table + CPU/memory enforcement.
//!
//! Since the pipeline-as-combinators refactor this file is a *facade*:
//! [`VSwitch::process_local`] implements the traditional architecture of
//! the paper's Fig. 1 by driving the compiled process
//! [`StageGraph`](crate::stage::StageGraph) (built once at construction)
//! over a [`LocalRun`] environment — the fast/slow split, rule lookup and
//! session establishment live in [`crate::stage`], all charged against
//! the CPU server and the table memory pool owned here. `nezha-core`
//! builds the BE and FE roles from the finer-grained primitives also
//! exposed here ([`VSwitch::charge`], [`VSwitch::vnic`], the session
//! table).

use crate::config::VSwitchConfig;
use crate::pipeline::{PathTaken, ProcessOutcome, ProcessResult};
use crate::session::SessionTable;
use crate::stage::local::LocalRun;
use crate::stage::{costing, PktCtx, SwitchGraphs};
use crate::telemetry::SwitchTelemetry;
use crate::vnic::Vnic;
use nezha_sim::dense::DenseMap;
use nezha_sim::metrics::MetricsRegistry;
use nezha_sim::profile::{Profiler, Span, SpanId, StageSet};
use nezha_sim::resources::{CpuOutcome, CpuServer, MemoryPool, OutOfMemory};
use nezha_sim::time::SimTime;
use nezha_sim::trace::{DropReason, PacketTrace, TraceEvent, TraceEventKind};
use nezha_types::{Packet, VnicId};
use std::collections::BTreeMap;
use std::sync::Arc;

pub use crate::telemetry::VSwitchCounters;

/// A SmartNIC vSwitch instance.
#[derive(Debug)]
pub struct VSwitch {
    /// The hosting server's id.
    pub id: nezha_types::ServerId,
    /// Software version of this vSwitch. Nezha turns version skew into a
    /// feature (§7.2): vNICs needing a new capability offload to upgraded
    /// FEs; vNICs bitten by a release bug offload to older, known-good
    /// ones.
    pub version: u32,
    pub(crate) cfg: VSwitchConfig,
    cpu: CpuServer,
    /// Table memory pool (rule tables + session table share it, §2.2.2).
    pub mem: MemoryPool,
    /// Dense-hashed: probed (twice) per processed packet. Iteration is
    /// only via [`VSwitch::vnic_ids`], which sorts.
    pub(crate) vnics: DenseMap<VnicId, Vnic>,
    /// The session table (public: the Nezha BE role manipulates it).
    pub sessions: SessionTable,
    pub(crate) tel: SwitchTelemetry,
    /// The compiled stage graphs this switch drives (process pipeline +
    /// lookup subgraph), built once at construction.
    graphs: Arc<SwitchGraphs>,
    /// Cycles charged per vNIC (for the controller's offload-candidate
    /// ranking, §4.2.1), measured over the CPU's utilization window.
    vnic_cycles: BTreeMap<VnicId, f64>,
    /// Exact bytes charged to the pool per vNIC's tables. Table contents
    /// can change after installation (learned vNIC-server entries, rule
    /// pushes); frees must match what was actually charged.
    vnic_charged: DenseMap<VnicId, u64>,
    /// Gray-failure knob: every cycle charge is scaled by this factor
    /// (1.0 when healthy). A degraded SmartNIC burns more cycles for the
    /// same work — the "slow but not dead" member of Appendix C.
    cycle_multiplier: f64,
}

impl VSwitch {
    /// Builds a vSwitch on server `id` with the given configuration,
    /// compiling the standard stage graphs.
    pub fn new(id: nezha_types::ServerId, cfg: VSwitchConfig) -> Self {
        VSwitch {
            id,
            version: 1,
            cpu: CpuServer::new(cfg.cores, cfg.core_hz, cfg.max_backlog),
            mem: MemoryPool::new(cfg.table_memory),
            vnics: DenseMap::new(),
            sessions: SessionTable::new(),
            tel: SwitchTelemetry::register(&MetricsRegistry::new(), id),
            graphs: Arc::new(SwitchGraphs::standard()),
            vnic_cycles: BTreeMap::new(),
            vnic_charged: DenseMap::new(),
            cycle_multiplier: 1.0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &VSwitchConfig {
        &self.cfg
    }

    /// The compiled stage graphs this switch drives.
    pub fn graphs(&self) -> &Arc<SwitchGraphs> {
        &self.graphs
    }

    /// Re-homes this switch's `vswitch.*{server=N}` counters into a shared
    /// [`MetricsRegistry`] (carrying over any counts already accumulated in
    /// the private default registry). The cluster calls this so one
    /// snapshot covers every switch.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        let old = self.tel.view();
        let trace = self.tel.trace.clone();
        let profiler = self.tel.profiler.clone();
        let stages = self.tel.stages.clone();
        self.tel = SwitchTelemetry::register(registry, self.id);
        self.tel.trace = trace;
        self.tel.profiler = profiler;
        self.tel.stages = stages;
        let carry = [
            (self.tel.forwarded, old.forwarded),
            (self.tel.acl_drops, old.acl_drops),
            (self.tel.unroutable, old.unroutable),
            (self.tel.rate_limited, old.rate_limited),
            (self.tel.cpu_drops, old.cpu_drops),
            (self.tel.session_overflows, old.session_overflows),
            (self.tel.mirrored, old.mirrored),
        ];
        for (h, n) in carry {
            registry.add(h, n);
        }
    }

    /// Attaches a shared [`PacketTrace`]; subsequent packets record
    /// structured events (enqueue, CPU charge, table hit/miss, drops).
    pub fn attach_trace(&mut self, trace: &PacketTrace) {
        self.tel.trace = trace.clone();
    }

    /// Attaches a shared [`Profiler`]; while it is enabled, every CPU
    /// charge in [`VSwitch::process_local`] records a causal span tree
    /// decomposed per pipeline stage.
    pub fn attach_profiler(&mut self, profiler: &Profiler) {
        self.tel.profiler = profiler.clone();
        self.tel.stages = StageSet::register(profiler);
    }

    /// The attached profiler (a private disabled one by default).
    pub fn profiler(&self) -> &Profiler {
        &self.tel.profiler
    }

    /// Lifetime counters, assembled from the metrics registry.
    pub fn counters(&self) -> VSwitchCounters {
        self.tel.view()
    }

    /// Installs a vNIC, charging its rule-table memory. Fails when the
    /// SmartNIC cannot fit the tables — the #vNICs bottleneck of §2.2.2.
    pub fn add_vnic(&mut self, vnic: Vnic) -> Result<(), OutOfMemory> {
        let bytes = vnic.table_memory(&self.cfg.memory);
        self.mem.alloc(bytes)?;
        self.vnic_charged.insert(vnic.id, bytes);
        self.vnics.insert(vnic.id, vnic);
        Ok(())
    }

    /// Removes a vNIC, releasing exactly the bytes charged for its tables.
    /// Returns the vNIC.
    pub fn remove_vnic(&mut self, id: VnicId) -> Option<Vnic> {
        let vnic = self.vnics.remove(&id)?;
        self.mem.free(self.vnic_charged.remove(&id).unwrap_or(0));
        Some(vnic)
    }

    /// Re-reconciles a vNIC's memory charge after its tables changed
    /// (config pushes, learned mappings). Fails when growth does not fit.
    pub fn sync_vnic_memory(&mut self, id: VnicId) -> Result<(), OutOfMemory> {
        let Some(vnic) = self.vnics.get(&id) else {
            return Ok(());
        };
        let new = vnic.table_memory(&self.cfg.memory);
        let old = self.vnic_charged.get(&id).copied().unwrap_or(0);
        if new > old {
            self.mem.alloc(new - old)?;
        } else {
            self.mem.free(old - new);
        }
        self.vnic_charged.insert(id, new);
        Ok(())
    }

    /// Looks up a hosted vNIC.
    pub fn vnic(&self, id: VnicId) -> Option<&Vnic> {
        self.vnics.get(&id)
    }

    /// Mutable vNIC access (controller rule pushes).
    pub fn vnic_mut(&mut self, id: VnicId) -> Option<&mut Vnic> {
        self.vnics.get_mut(&id)
    }

    /// Ids of all hosted vNICs, in stable (id) order — iteration order
    /// must never leak BTreeMap randomness into control decisions.
    pub fn vnic_ids(&self) -> Vec<VnicId> {
        let mut ids: Vec<VnicId> = self.vnics.keys().copied().collect();
        ids.sort_unstable_by_key(|v| v.0);
        ids
    }

    /// Number of hosted vNICs.
    pub fn vnic_count(&self) -> usize {
        self.vnics.len()
    }

    /// Sets the gray-failure cycle multiplier (fault injection; 1.0
    /// restores healthy behavior). Values > 1 inflate every subsequent
    /// cycle charge, shrinking this switch's effective capacity.
    pub fn set_cycle_multiplier(&mut self, multiplier: f64) {
        self.cycle_multiplier = multiplier.max(0.0);
    }

    /// The current gray-failure cycle multiplier.
    pub fn cycle_multiplier(&self) -> f64 {
        self.cycle_multiplier
    }

    /// The post-multiplier cycle cost of a nominal charge: exactly what
    /// [`VSwitch::charge`] bills the CPU and attributes to the vNIC.
    /// Profiling sites record this value so span totals reconcile with
    /// [`VSwitch::vnic_cycle_shares`] even under gray-failure scaling.
    pub fn scaled_cycles(&self, cycles: u64) -> u64 {
        if self.cycle_multiplier == 1.0 {
            cycles
        } else {
            ((cycles as f64) * self.cycle_multiplier).round() as u64
        }
    }

    /// Charges `cycles` of work at `now`, attributed to `vnic`.
    pub fn charge(&mut self, now: SimTime, vnic: VnicId, cycles: u64) -> CpuOutcome {
        let cycles = self.scaled_cycles(cycles);
        let out = self.cpu.offer(now, cycles);
        if !out.is_dropped() {
            *self.vnic_cycles.entry(vnic).or_insert(0.0) += cycles as f64;
        }
        out
    }

    /// CPU utilization over the trailing window, `[0, 1]`.
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }

    /// Replaces the CPU utilization measurement window (default 1 s).
    pub fn set_util_window(&mut self, len: nezha_sim::time::SimDuration) {
        self.cpu.set_window(len);
    }

    /// Memory utilization, `[0, 1]`.
    pub fn mem_utilization(&self) -> f64 {
        self.mem.utilization()
    }

    /// Cumulative cycles attributed to each vNIC (the controller ranks
    /// offload candidates by this, descending — §4.2.1).
    pub fn vnic_cycle_shares(&self) -> &BTreeMap<VnicId, f64> {
        &self.vnic_cycles
    }

    /// Memory bytes attributable to one vNIC: its rule tables plus its
    /// share of the session table.
    pub fn vnic_memory(&self, id: VnicId) -> u64 {
        let tables = self
            .vnics
            .get(&id)
            .map_or(0, |v| v.table_memory(&self.cfg.memory));
        let m = &self.cfg.memory;
        let sessions: u64 = self
            .sessions
            .iter()
            .filter(|(_, e)| e.vnic == id)
            .map(|(_, e)| {
                m.state_slab
                    + if e.pre_actions.is_some() {
                        m.flow_entry
                    } else {
                        0
                    }
            })
            .sum();
        tables + sessions
    }

    /// Sweeps expired sessions (call periodically, e.g. every second).
    pub fn expire_sessions(&mut self, now: SimTime) -> usize {
        self.sessions.expire(now, &self.cfg, &mut self.mem)
    }

    /// Records one structured trace event for `pkt` (no-op when no trace
    /// buffer is attached or the filter rejects it).
    pub fn trace_event(&self, at: SimTime, pkt: &Packet, kind: TraceEventKind) {
        if self.tel.trace.is_enabled() {
            self.tel.trace.record(TraceEvent {
                at,
                trace_id: pkt.trace,
                server: self.id,
                vnic: pkt.vnic,
                kind,
            });
        }
    }

    /// Processes one packet in the **traditional local architecture**:
    /// this vSwitch holds the vNIC's rules, flows, and state.
    ///
    /// The facade only traces the arrival and screens unknown vNICs
    /// (they indicate a stale vNIC-server mapping upstream); everything
    /// else — flow-cache probe, CPU charge, rule lookup, session
    /// establishment, admission — is the compiled process graph driving
    /// a [`LocalRun`] environment.
    pub fn process_local(&mut self, pkt: &Packet, now: SimTime) -> ProcessResult {
        self.trace_event(now, pkt, TraceEventKind::Enqueue);
        if !self.vnics.contains_key(&pkt.vnic) {
            return self.finish_traced(
                ProcessOutcome::Unroutable,
                Some(PathTaken::Slow),
                now,
                false,
                false,
                pkt,
            );
        }
        let graphs = Arc::clone(&self.graphs);
        let mut ctx = PktCtx::lookup(pkt.tuple, pkt.dir);
        let mut run = LocalRun::new(self, &graphs, pkt, now);
        graphs.process.eval(&mut ctx, &mut run);
        let r = run.finish();
        // A CPU drop happens before the packet takes any path (satellite
        // of the refactor: `path` is None instead of a meaningless value).
        let path = match r.outcome {
            ProcessOutcome::CpuOverload => None,
            _ => Some(r.path),
        };
        self.finish_traced(r.outcome, path, r.done, r.created, r.overflow, pkt)
    }

    /// Records the span tree for one successful local-pipeline charge:
    /// a `local` root (linked to any span the packet already carries)
    /// with per-stage leaves whose cycles sum to exactly what the CPU
    /// model charged. Leaves follow the process graph's cost plan for
    /// the path taken. No-op while the profiler is disabled.
    pub(crate) fn profile_local(
        &self,
        pkt: &Packet,
        start: SimTime,
        end: SimTime,
        nominal_cycles: u64,
        bytes: usize,
        path: PathTaken,
    ) {
        let prof = &self.tel.profiler;
        if !prof.is_enabled() {
            return;
        }
        let Some(vnic) = self.vnics.get(&pkt.vnic) else {
            return;
        };
        let st = &self.tel.stages;
        let total = self.scaled_cycles(nominal_cycles);
        let base = Span {
            stage: st.local,
            parent: SpanId::from_raw(pkt.prof_span),
            trace: pkt.trace,
            server: self.id,
            vnic: pkt.vnic,
            start,
            end,
            cycles: 0,
            bytes: bytes as u64,
            packets: 1,
        };
        let root = prof.record(base);
        let c = self
            .graphs
            .stage_costs(&self.cfg.costs, vnic, bytes, total, path);
        costing::plan_leaves(
            self.graphs.process.plan(path),
            st,
            &c,
            &mut |stage, cycles| {
                if cycles > 0 {
                    prof.record(Span {
                        stage,
                        parent: root,
                        cycles,
                        bytes: 0,
                        packets: 0,
                        ..base
                    });
                }
            },
        );
    }

    fn finish_traced(
        &mut self,
        outcome: ProcessOutcome,
        path: Option<PathTaken>,
        done_at: SimTime,
        created_session: bool,
        session_overflow: bool,
        pkt: &Packet,
    ) -> ProcessResult {
        let reg = &self.tel.registry;
        let drop_reason = match outcome {
            ProcessOutcome::Forwarded(a) => {
                reg.inc(self.tel.forwarded);
                if a.mirror_to.is_some() {
                    reg.inc(self.tel.mirrored);
                }
                None
            }
            ProcessOutcome::AclDrop => {
                reg.inc(self.tel.acl_drops);
                Some(DropReason::PolicyDeny)
            }
            ProcessOutcome::Unroutable => {
                reg.inc(self.tel.unroutable);
                Some(DropReason::NoRoute)
            }
            ProcessOutcome::RateLimited => {
                reg.inc(self.tel.rate_limited);
                Some(DropReason::RateLimited)
            }
            ProcessOutcome::CpuOverload => {
                reg.inc(self.tel.cpu_drops);
                Some(DropReason::Backlog)
            }
        };
        if session_overflow {
            reg.inc(self.tel.session_overflows);
        }
        if let Some(reason) = drop_reason {
            self.trace_event(done_at, pkt, TraceEventKind::Drop(reason));
        }
        ProcessResult {
            outcome,
            path,
            done_at,
            created_session,
            session_overflow,
        }
    }
}

#[cfg(test)]
#[path = "vswitch_tests.rs"]
mod tests;

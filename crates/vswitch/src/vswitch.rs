//! The assembled vSwitch: vNICs + session table + CPU/memory enforcement.
//!
//! [`VSwitch::process_local`] implements the traditional architecture of
//! the paper's Fig. 1 end to end — fast path on cached-flow hits, slow
//! path (rule lookup + session establishment) on misses, all charged
//! against the CPU server and the table memory pool. `nezha-core` builds
//! the BE and FE roles from the finer-grained primitives also exposed
//! here ([`VSwitch::charge`], [`VSwitch::vnic`], the session table).

use crate::config::VSwitchConfig;
use crate::pipeline::{self, PathTaken, ProcessOutcome, ProcessResult};
use crate::session::SessionTable;
use crate::vnic::Vnic;
use nezha_sim::dense::DenseMap;
use nezha_sim::metrics::{CounterHandle, MetricsRegistry};
use nezha_sim::profile::{Profiler, Span, SpanId, StageSet};
use nezha_sim::resources::{CpuOutcome, CpuServer, MemoryPool, OutOfMemory};
use nezha_sim::time::SimTime;
use nezha_sim::trace::{DropReason, PacketTrace, TraceEvent, TraceEventKind};
use nezha_types::{Decision, Packet, SessionKey, VnicId};
use std::collections::BTreeMap;

/// Lifetime packet counters of one vSwitch.
///
/// Since the telemetry redesign this is a *view* assembled from the
/// vSwitch's `vswitch.*{server=N}` metrics on demand — the struct is kept
/// so existing `vs.counters().forwarded`-style call sites read unchanged.
#[derive(Clone, Copy, Debug, Default)]
pub struct VSwitchCounters {
    /// Packets processed to a forwarding decision.
    pub forwarded: u64,
    /// Packets dropped by final ACL verdict.
    pub acl_drops: u64,
    /// Packets dropped for lack of a route.
    pub unroutable: u64,
    /// Packets dropped by QoS rate limits.
    pub rate_limited: u64,
    /// Packets dropped because the CPU backlog bound was exceeded.
    pub cpu_drops: u64,
    /// First packets that could not cache a session (memory exhausted).
    pub session_overflows: u64,
    /// Mirror copies generated toward collectors.
    pub mirrored: u64,
}

/// Pre-registered handles for the per-switch counters. Registered once at
/// construction (or re-registered on [`VSwitch::attach_metrics`]); the hot
/// path only does handle increments.
#[derive(Clone, Debug)]
struct SwitchTelemetry {
    registry: MetricsRegistry,
    trace: PacketTrace,
    profiler: Profiler,
    stages: StageSet,
    forwarded: CounterHandle,
    acl_drops: CounterHandle,
    unroutable: CounterHandle,
    rate_limited: CounterHandle,
    cpu_drops: CounterHandle,
    session_overflows: CounterHandle,
    mirrored: CounterHandle,
}

impl SwitchTelemetry {
    fn register(registry: &MetricsRegistry, server: nezha_types::ServerId) -> Self {
        let labels = [("server", server.raw().to_string())];
        let c = |name: &str| registry.counter(name, &labels);
        let profiler = Profiler::new();
        let stages = StageSet::register(&profiler);
        SwitchTelemetry {
            registry: registry.clone(),
            trace: PacketTrace::disabled(),
            profiler,
            stages,
            forwarded: c("vswitch.forwarded"),
            acl_drops: c("vswitch.acl_drops"),
            unroutable: c("vswitch.unroutable"),
            rate_limited: c("vswitch.rate_limited"),
            cpu_drops: c("vswitch.cpu_drops"),
            session_overflows: c("vswitch.session_overflows"),
            mirrored: c("vswitch.mirrored"),
        }
    }

    fn view(&self) -> VSwitchCounters {
        let v = |h: CounterHandle| self.registry.counter_value(h);
        VSwitchCounters {
            forwarded: v(self.forwarded),
            acl_drops: v(self.acl_drops),
            unroutable: v(self.unroutable),
            rate_limited: v(self.rate_limited),
            cpu_drops: v(self.cpu_drops),
            session_overflows: v(self.session_overflows),
            mirrored: v(self.mirrored),
        }
    }
}

/// A SmartNIC vSwitch instance.
#[derive(Debug)]
pub struct VSwitch {
    /// The hosting server's id.
    pub id: nezha_types::ServerId,
    /// Software version of this vSwitch. Nezha turns version skew into a
    /// feature (§7.2): vNICs needing a new capability offload to upgraded
    /// FEs; vNICs bitten by a release bug offload to older, known-good
    /// ones.
    pub version: u32,
    cfg: VSwitchConfig,
    cpu: CpuServer,
    /// Table memory pool (rule tables + session table share it, §2.2.2).
    pub mem: MemoryPool,
    /// Dense-hashed: probed (twice) per processed packet. Iteration is
    /// only via [`VSwitch::vnic_ids`], which sorts.
    vnics: DenseMap<VnicId, Vnic>,
    /// The session table (public: the Nezha BE role manipulates it).
    pub sessions: SessionTable,
    tel: SwitchTelemetry,
    /// Cycles charged per vNIC (for the controller's offload-candidate
    /// ranking, §4.2.1), measured over the CPU's utilization window.
    vnic_cycles: BTreeMap<VnicId, f64>,
    /// Exact bytes charged to the pool per vNIC's tables. Table contents
    /// can change after installation (learned vNIC-server entries, rule
    /// pushes); frees must match what was actually charged.
    vnic_charged: DenseMap<VnicId, u64>,
    /// Gray-failure knob: every cycle charge is scaled by this factor
    /// (1.0 when healthy). A degraded SmartNIC burns more cycles for the
    /// same work — the "slow but not dead" member of Appendix C.
    cycle_multiplier: f64,
}

impl VSwitch {
    /// Builds a vSwitch on server `id` with the given configuration.
    pub fn new(id: nezha_types::ServerId, cfg: VSwitchConfig) -> Self {
        VSwitch {
            id,
            version: 1,
            cpu: CpuServer::new(cfg.cores, cfg.core_hz, cfg.max_backlog),
            mem: MemoryPool::new(cfg.table_memory),
            vnics: DenseMap::new(),
            sessions: SessionTable::new(),
            tel: SwitchTelemetry::register(&MetricsRegistry::new(), id),
            vnic_cycles: BTreeMap::new(),
            vnic_charged: DenseMap::new(),
            cycle_multiplier: 1.0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &VSwitchConfig {
        &self.cfg
    }

    /// Re-homes this switch's `vswitch.*{server=N}` counters into a shared
    /// [`MetricsRegistry`] (carrying over any counts already accumulated in
    /// the private default registry). The cluster calls this so one
    /// snapshot covers every switch.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        let old = self.tel.view();
        let trace = self.tel.trace.clone();
        let profiler = self.tel.profiler.clone();
        let stages = self.tel.stages.clone();
        self.tel = SwitchTelemetry::register(registry, self.id);
        self.tel.trace = trace;
        self.tel.profiler = profiler;
        self.tel.stages = stages;
        let carry = [
            (self.tel.forwarded, old.forwarded),
            (self.tel.acl_drops, old.acl_drops),
            (self.tel.unroutable, old.unroutable),
            (self.tel.rate_limited, old.rate_limited),
            (self.tel.cpu_drops, old.cpu_drops),
            (self.tel.session_overflows, old.session_overflows),
            (self.tel.mirrored, old.mirrored),
        ];
        for (h, n) in carry {
            registry.add(h, n);
        }
    }

    /// Attaches a shared [`PacketTrace`]; subsequent packets record
    /// structured events (enqueue, CPU charge, table hit/miss, drops).
    pub fn attach_trace(&mut self, trace: &PacketTrace) {
        self.tel.trace = trace.clone();
    }

    /// Attaches a shared [`Profiler`]; while it is enabled, every CPU
    /// charge in [`VSwitch::process_local`] records a causal span tree
    /// decomposed per pipeline stage.
    pub fn attach_profiler(&mut self, profiler: &Profiler) {
        self.tel.profiler = profiler.clone();
        self.tel.stages = StageSet::register(profiler);
    }

    /// The attached profiler (a private disabled one by default).
    pub fn profiler(&self) -> &Profiler {
        &self.tel.profiler
    }

    /// Lifetime counters, assembled from the metrics registry.
    pub fn counters(&self) -> VSwitchCounters {
        self.tel.view()
    }

    /// Installs a vNIC, charging its rule-table memory. Fails when the
    /// SmartNIC cannot fit the tables — the #vNICs bottleneck of §2.2.2.
    pub fn add_vnic(&mut self, vnic: Vnic) -> Result<(), OutOfMemory> {
        let bytes = vnic.table_memory(&self.cfg.memory);
        self.mem.alloc(bytes)?;
        self.vnic_charged.insert(vnic.id, bytes);
        self.vnics.insert(vnic.id, vnic);
        Ok(())
    }

    /// Removes a vNIC, releasing exactly the bytes charged for its tables.
    /// Returns the vNIC.
    pub fn remove_vnic(&mut self, id: VnicId) -> Option<Vnic> {
        let vnic = self.vnics.remove(&id)?;
        self.mem.free(self.vnic_charged.remove(&id).unwrap_or(0));
        Some(vnic)
    }

    /// Re-reconciles a vNIC's memory charge after its tables changed
    /// (config pushes, learned mappings). Fails when growth does not fit.
    pub fn sync_vnic_memory(&mut self, id: VnicId) -> Result<(), OutOfMemory> {
        let Some(vnic) = self.vnics.get(&id) else {
            return Ok(());
        };
        let new = vnic.table_memory(&self.cfg.memory);
        let old = self.vnic_charged.get(&id).copied().unwrap_or(0);
        if new > old {
            self.mem.alloc(new - old)?;
        } else {
            self.mem.free(old - new);
        }
        self.vnic_charged.insert(id, new);
        Ok(())
    }

    /// Looks up a hosted vNIC.
    pub fn vnic(&self, id: VnicId) -> Option<&Vnic> {
        self.vnics.get(&id)
    }

    /// Mutable vNIC access (controller rule pushes).
    pub fn vnic_mut(&mut self, id: VnicId) -> Option<&mut Vnic> {
        self.vnics.get_mut(&id)
    }

    /// Ids of all hosted vNICs, in stable (id) order — iteration order
    /// must never leak BTreeMap randomness into control decisions.
    pub fn vnic_ids(&self) -> Vec<VnicId> {
        let mut ids: Vec<VnicId> = self.vnics.keys().copied().collect();
        ids.sort_unstable_by_key(|v| v.0);
        ids
    }

    /// Number of hosted vNICs.
    pub fn vnic_count(&self) -> usize {
        self.vnics.len()
    }

    /// Sets the gray-failure cycle multiplier (fault injection; 1.0
    /// restores healthy behavior). Values > 1 inflate every subsequent
    /// cycle charge, shrinking this switch's effective capacity.
    pub fn set_cycle_multiplier(&mut self, multiplier: f64) {
        self.cycle_multiplier = multiplier.max(0.0);
    }

    /// The current gray-failure cycle multiplier.
    pub fn cycle_multiplier(&self) -> f64 {
        self.cycle_multiplier
    }

    /// The post-multiplier cycle cost of a nominal charge: exactly what
    /// [`VSwitch::charge`] bills the CPU and attributes to the vNIC.
    /// Profiling sites record this value so span totals reconcile with
    /// [`VSwitch::vnic_cycle_shares`] even under gray-failure scaling.
    pub fn scaled_cycles(&self, cycles: u64) -> u64 {
        if self.cycle_multiplier == 1.0 {
            cycles
        } else {
            ((cycles as f64) * self.cycle_multiplier).round() as u64
        }
    }

    /// Charges `cycles` of work at `now`, attributed to `vnic`.
    pub fn charge(&mut self, now: SimTime, vnic: VnicId, cycles: u64) -> CpuOutcome {
        let cycles = self.scaled_cycles(cycles);
        let out = self.cpu.offer(now, cycles);
        if !out.is_dropped() {
            *self.vnic_cycles.entry(vnic).or_insert(0.0) += cycles as f64;
        }
        out
    }

    /// CPU utilization over the trailing window, `[0, 1]`.
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }

    /// Replaces the CPU utilization measurement window (default 1 s).
    pub fn set_util_window(&mut self, len: nezha_sim::time::SimDuration) {
        self.cpu.set_window(len);
    }

    /// Memory utilization, `[0, 1]`.
    pub fn mem_utilization(&self) -> f64 {
        self.mem.utilization()
    }

    /// Cumulative cycles attributed to each vNIC (the controller ranks
    /// offload candidates by this, descending — §4.2.1).
    pub fn vnic_cycle_shares(&self) -> &BTreeMap<VnicId, f64> {
        &self.vnic_cycles
    }

    /// Memory bytes attributable to one vNIC: its rule tables plus its
    /// share of the session table.
    pub fn vnic_memory(&self, id: VnicId) -> u64 {
        let tables = self
            .vnics
            .get(&id)
            .map_or(0, |v| v.table_memory(&self.cfg.memory));
        let m = &self.cfg.memory;
        let sessions: u64 = self
            .sessions
            .iter()
            .filter(|(_, e)| e.vnic == id)
            .map(|(_, e)| {
                m.state_slab
                    + if e.pre_actions.is_some() {
                        m.flow_entry
                    } else {
                        0
                    }
            })
            .sum();
        tables + sessions
    }

    /// Sweeps expired sessions (call periodically, e.g. every second).
    pub fn expire_sessions(&mut self, now: SimTime) -> usize {
        self.sessions.expire(now, &self.cfg, &mut self.mem)
    }

    /// Records one structured trace event for `pkt` (no-op when no trace
    /// buffer is attached or the filter rejects it).
    pub fn trace_event(&self, at: SimTime, pkt: &Packet, kind: TraceEventKind) {
        if self.tel.trace.is_enabled() {
            self.tel.trace.record(TraceEvent {
                at,
                trace_id: pkt.trace,
                server: self.id,
                vnic: pkt.vnic,
                kind,
            });
        }
    }

    /// Processes one packet in the **traditional local architecture**:
    /// this vSwitch holds the vNIC's rules, flows, and state.
    ///
    /// `pkt.vnic` must be hosted here; packets for unknown vNICs are
    /// unroutable (they indicate a stale vNIC-server mapping upstream).
    pub fn process_local(&mut self, pkt: &Packet, now: SimTime) -> ProcessResult {
        self.trace_event(now, pkt, TraceEventKind::Enqueue);
        let costs = self.cfg.costs;
        let key = SessionKey::of(pkt.vpc, pkt.tuple);
        let bytes = pkt.wire_len();

        if !self.vnics.contains_key(&pkt.vnic) {
            return self.finish_traced(
                ProcessOutcome::Unroutable,
                PathTaken::Slow,
                now,
                false,
                false,
                pkt,
            );
        }

        // Fast path: session hit with cached pre-actions.
        let have_cached = self
            .sessions
            .get(&key)
            .is_some_and(|e| e.pre_actions.is_some());

        if have_cached {
            self.trace_event(now, pkt, TraceEventKind::TableHit);
            let cycles = costs.fast_path_cycles(bytes);
            let done = match self.charge(now, pkt.vnic, cycles) {
                CpuOutcome::Dropped => {
                    return self.finish_traced(
                        ProcessOutcome::CpuOverload,
                        PathTaken::Fast,
                        now,
                        false,
                        false,
                        pkt,
                    )
                }
                CpuOutcome::Done { done_at } => done_at,
            };
            self.trace_event(now, pkt, TraceEventKind::CpuCharge { cycles });
            self.profile_local(pkt, now, done, cycles, bytes, PathTaken::Fast);
            let entry = self.sessions.get_mut(&key).expect("checked above");
            let pre = *entry
                .pre_actions
                .as_ref()
                .expect("checked above")
                .for_direction(pkt.dir);
            let action = pipeline::process_pkt(&pre, &mut entry.state, pkt);
            entry.last_seen = now;
            let outcome = if action.verdict == Decision::Drop {
                ProcessOutcome::AclDrop
            } else if !self
                .vnics
                .get_mut(&pkt.vnic)
                .expect("vnic present")
                .tables
                .qos
                .admit(now, action.qos_class, bytes as u64)
            {
                ProcessOutcome::RateLimited
            } else {
                ProcessOutcome::Forwarded(action)
            };
            return self.finish_traced(outcome, PathTaken::Fast, done, false, false, pkt);
        }

        // Slow path: full lookup (+ session establishment). Priced here
        // rather than up front so fast-path packets skip the slow-path
        // formula's `ln`.
        self.trace_event(now, pkt, TraceEventKind::TableMiss);
        let cycles = self
            .vnics
            .get(&pkt.vnic)
            .expect("checked above")
            .slow_path_cycles(&costs, bytes);
        let done = match self.charge(now, pkt.vnic, cycles) {
            CpuOutcome::Dropped => {
                return self.finish_traced(
                    ProcessOutcome::CpuOverload,
                    PathTaken::Slow,
                    now,
                    false,
                    false,
                    pkt,
                )
            }
            CpuOutcome::Done { done_at } => done_at,
        };
        self.trace_event(now, pkt, TraceEventKind::CpuCharge { cycles });
        self.profile_local(pkt, now, done, cycles, bytes, PathTaken::Slow);
        let vnic = self.vnics.get(&pkt.vnic).expect("checked above");
        let lookup = pipeline::slow_path_lookup(vnic, &pkt.tuple, pkt.dir);

        // Routing failures are stateless, final drops.
        let pre = *lookup.pair.for_direction(pkt.dir);
        if pre.verdict == Decision::Drop && !pre.stateful_acl {
            return self.finish_traced(
                ProcessOutcome::Unroutable,
                PathTaken::Slow,
                done,
                false,
                false,
                pkt,
            );
        }

        let (mut created, mut overflow) = (false, false);
        if self.sessions.get(&key).is_none() {
            match self.sessions.establish(
                key,
                pkt.vnic,
                pkt.dir,
                Some(lookup.pair),
                now,
                &mut self.mem,
                &self.cfg.memory,
            ) {
                Ok(_) => created = true,
                Err(_) => overflow = true, // process uncached
            }
        } else if let Some(e) = self.sessions.get_mut(&key) {
            // Entry existed without cached flows (post rule-update): try to
            // re-cache the fresh lookup.
            if e.pre_actions.is_none() && self.mem.alloc(self.cfg.memory.flow_entry).is_ok() {
                e.pre_actions = Some(lookup.pair);
            }
            e.last_seen = now;
        }

        let action = if let Some(e) = self.sessions.get_mut(&key) {
            pipeline::process_pkt(&pre, &mut e.state, pkt)
        } else {
            // Uncached processing: ephemeral state (stateful guarantees
            // degrade exactly as they would on a real overflowing switch).
            let mut scratch = nezha_types::SessionState::default();
            pipeline::process_pkt(&pre, &mut scratch, pkt)
        };

        let outcome = if action.verdict == Decision::Drop {
            ProcessOutcome::AclDrop
        } else if !self
            .vnics
            .get_mut(&pkt.vnic)
            .expect("vnic present")
            .tables
            .qos
            .admit(now, action.qos_class, bytes as u64)
        {
            ProcessOutcome::RateLimited
        } else {
            ProcessOutcome::Forwarded(action)
        };
        self.finish_traced(outcome, PathTaken::Slow, done, created, overflow, pkt)
    }

    /// Records the span tree for one successful local-pipeline charge:
    /// a `local` root (linked to any span the packet already carries)
    /// with per-stage leaves whose cycles sum to exactly what the CPU
    /// model charged. No-op while the profiler is disabled.
    fn profile_local(
        &self,
        pkt: &Packet,
        start: SimTime,
        end: SimTime,
        nominal_cycles: u64,
        bytes: usize,
        path: PathTaken,
    ) {
        let prof = &self.tel.profiler;
        if !prof.is_enabled() {
            return;
        }
        let Some(vnic) = self.vnics.get(&pkt.vnic) else {
            return;
        };
        let st = &self.tel.stages;
        let total = self.scaled_cycles(nominal_cycles);
        let base = Span {
            stage: st.local,
            parent: SpanId::from_raw(pkt.prof_span),
            trace: pkt.trace,
            server: self.id,
            vnic: pkt.vnic,
            start,
            end,
            cycles: 0,
            bytes: bytes as u64,
            packets: 1,
        };
        let root = prof.record(base);
        let c = pipeline::stage_costs(&self.cfg.costs, vnic, bytes, total, path);
        let leaf = |stage, cycles| Span {
            stage,
            parent: root,
            cycles,
            bytes: 0,
            packets: 0,
            ..base
        };
        for (stage, cycles) in [
            (st.dma, c.dma),
            (st.parse, c.parse),
            (st.session_lookup, c.session),
            (st.slowpath, c.overhead),
        ] {
            if cycles > 0 {
                prof.record(leaf(stage, cycles));
            }
        }
        for (i, &cycles) in c.tiers.iter().enumerate() {
            if cycles > 0 {
                let tier = st.rule_tiers[i.min(st.rule_tiers.len() - 1)];
                prof.record(leaf(tier, cycles));
            }
        }
    }

    fn finish_traced(
        &mut self,
        outcome: ProcessOutcome,
        path: PathTaken,
        done_at: SimTime,
        created_session: bool,
        session_overflow: bool,
        pkt: &Packet,
    ) -> ProcessResult {
        let reg = &self.tel.registry;
        let drop_reason = match outcome {
            ProcessOutcome::Forwarded(a) => {
                reg.inc(self.tel.forwarded);
                if a.mirror_to.is_some() {
                    reg.inc(self.tel.mirrored);
                }
                None
            }
            ProcessOutcome::AclDrop => {
                reg.inc(self.tel.acl_drops);
                Some(DropReason::PolicyDeny)
            }
            ProcessOutcome::Unroutable => {
                reg.inc(self.tel.unroutable);
                Some(DropReason::NoRoute)
            }
            ProcessOutcome::RateLimited => {
                reg.inc(self.tel.rate_limited);
                Some(DropReason::RateLimited)
            }
            ProcessOutcome::CpuOverload => {
                reg.inc(self.tel.cpu_drops);
                Some(DropReason::Backlog)
            }
        };
        if session_overflow {
            reg.inc(self.tel.session_overflows);
        }
        if let Some(reason) = drop_reason {
            self.trace_event(done_at, pkt, TraceEventKind::Drop(reason));
        }
        ProcessResult {
            outcome,
            path,
            done_at,
            created_session,
            session_overflow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnic::VnicProfile;
    use nezha_types::{FiveTuple, Ipv4Addr, ServerId, TcpFlags, VpcId};

    fn vswitch_with_vnic() -> (VSwitch, VnicId) {
        let mut vs = VSwitch::new(ServerId(0), VSwitchConfig::default());
        let vnic = Vnic::new(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile::default(),
            ServerId(0),
        );
        vs.add_vnic(vnic).unwrap();
        (vs, VnicId(1))
    }

    fn tx_pkt(trace: u64, sport: u16) -> Packet {
        Packet::tx_data(
            trace,
            VpcId(1),
            VnicId(1),
            FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 0, 1),
                sport,
                Ipv4Addr::new(10, 7, 0, 100),
                9000,
            ),
            TcpFlags::SYN,
            64,
        )
    }

    #[test]
    fn first_packet_slow_then_fast() {
        let (mut vs, _) = vswitch_with_vnic();
        let r1 = vs.process_local(&tx_pkt(1, 40000), SimTime(0));
        assert!(r1.outcome.is_forwarded());
        assert_eq!(r1.path, PathTaken::Slow);
        assert!(r1.created_session);

        let mut p2 = tx_pkt(2, 40000);
        p2.tcp_flags = TcpFlags::ACK;
        let r2 = vs.process_local(&p2, SimTime(1000));
        assert!(r2.outcome.is_forwarded());
        assert_eq!(r2.path, PathTaken::Fast);
        assert!(!r2.created_session);
        assert_eq!(vs.sessions.len(), 1);
        assert_eq!(vs.counters().forwarded, 2);
    }

    #[test]
    fn fast_path_is_cheaper_than_slow_path() {
        let (mut vs, _) = vswitch_with_vnic();
        let r1 = vs.process_local(&tx_pkt(1, 40001), SimTime(0));
        let slow_latency = r1.done_at.since(SimTime(0));
        // Re-use the session from a quiet start time.
        let t = SimTime(1_000_000_000);
        let mut p2 = tx_pkt(2, 40001);
        p2.tcp_flags = TcpFlags::ACK;
        let r2 = vs.process_local(&p2, t);
        let fast_latency = r2.done_at.since(t);
        assert!(
            fast_latency.nanos() * 3 < slow_latency.nanos(),
            "fast {fast_latency} vs slow {slow_latency}"
        );
    }

    #[test]
    fn unknown_vnic_is_unroutable() {
        let (mut vs, _) = vswitch_with_vnic();
        let mut p = tx_pkt(1, 40000);
        p.vnic = VnicId(99);
        let r = vs.process_local(&p, SimTime(0));
        assert_eq!(r.outcome, ProcessOutcome::Unroutable);
        assert_eq!(vs.counters().unroutable, 1);
    }

    #[test]
    fn sustained_overload_drops_packets() {
        let (mut vs, _) = vswitch_with_vnic();
        // Hammer new connections at one instant; the backlog bound breaks.
        let mut cpu_drops = 0;
        for i in 0..3000 {
            let r = vs.process_local(&tx_pkt(i, 10000 + (i % 50_000) as u16), SimTime(0));
            if r.outcome == ProcessOutcome::CpuOverload {
                cpu_drops += 1;
            }
        }
        assert!(cpu_drops > 0);
        assert_eq!(vs.counters().cpu_drops, cpu_drops);
    }

    #[test]
    fn vnic_table_memory_enforced() {
        // 10 MB: fits one default vNIC.
        let cfg = VSwitchConfig::builder()
            .table_memory(10 * 1024 * 1024)
            .build();
        let mut vs = VSwitch::new(ServerId(0), cfg);
        let v1 = Vnic::new(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile::default(),
            ServerId(0),
        );
        let v2 = Vnic::new(
            VnicId(2),
            VpcId(1),
            Ipv4Addr::new(10, 8, 0, 1),
            VnicProfile::default(),
            ServerId(0),
        );
        vs.add_vnic(v1).unwrap();
        assert!(vs.add_vnic(v2).is_err(), "second vNIC must not fit");
        assert_eq!(vs.vnic_count(), 1);
    }

    #[test]
    fn remove_vnic_releases_memory() {
        let (mut vs, id) = vswitch_with_vnic();
        let used = vs.mem.used();
        assert!(used > 0);
        let v = vs.remove_vnic(id).unwrap();
        assert_eq!(vs.mem.used(), 0);
        assert_eq!(v.id, id);
        assert!(vs.remove_vnic(id).is_none());
    }

    #[test]
    fn cycle_attribution_ranks_heavy_vnics() {
        let (mut vs, _) = vswitch_with_vnic();
        let v2 = Vnic::new(
            VnicId(2),
            VpcId(1),
            Ipv4Addr::new(10, 9, 0, 1),
            VnicProfile::default(),
            ServerId(0),
        );
        vs.add_vnic(v2).unwrap();
        // vNIC 1 gets 10 connections, vNIC 2 gets 1.
        for i in 0..10 {
            vs.process_local(&tx_pkt(i, 41000 + i as u16), SimTime(i * 1_000_000));
        }
        let mut p = tx_pkt(100, 45000);
        p.vnic = VnicId(2);
        p.tuple.src_ip = Ipv4Addr::new(10, 9, 0, 1);
        // Offer after the earlier backlog has drained (time is monotone in
        // real runs; the CPU model treats an out-of-order earlier offer as
        // arriving behind the whole backlog).
        vs.process_local(&p, SimTime(20_000_000));
        let shares = vs.vnic_cycle_shares();
        assert!(shares[&VnicId(1)] > shares[&VnicId(2)]);
    }

    #[test]
    fn session_overflow_processes_uncached() {
        // Just enough memory for the vNIC tables + one session.
        let cfg = VSwitchConfig::builder()
            .table_memory(8 * 1024 * 1024)
            .build();
        let mut vs = VSwitch::new(ServerId(0), cfg);
        let vnic = Vnic::new(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile::default(),
            ServerId(0),
        );
        vs.add_vnic(vnic).unwrap();
        // Fill the remaining memory with sessions.
        let mut overflowed = false;
        for i in 0..200_000 {
            let r = vs.process_local(
                &tx_pkt(i, (i % 60_000) as u16),
                SimTime(i * 10_000_000), // spread to avoid CPU drops
            );
            if r.session_overflow {
                overflowed = true;
                assert!(r.outcome.is_forwarded(), "overflow still forwards");
                break;
            }
        }
        assert!(overflowed, "never hit session-table memory limit");
        assert!(vs.counters().session_overflows > 0);
    }

    #[test]
    fn utilization_reflects_load() {
        let (mut vs, _) = vswitch_with_vnic();
        vs.set_util_window(nezha_sim::time::SimDuration::from_millis(10));
        assert_eq!(vs.cpu_utilization(SimTime(0)), 0.0);
        // 2000 new connections at 5 us spacing = 200K CPS offered for 10 ms
        // on a ~400K-CPS-lookup-capable switch: roughly half utilized.
        for i in 0..2000 {
            vs.process_local(&tx_pkt(i, 20000 + (i % 40_000) as u16), SimTime(i * 5_000));
        }
        let u = vs.cpu_utilization(SimTime(2000 * 5_000));
        assert!(u > 0.2, "utilization {u}");
        assert!(vs.mem_utilization() > 0.0);
    }

    #[test]
    fn expire_sessions_frees_capacity() {
        let (mut vs, _) = vswitch_with_vnic();
        vs.process_local(&tx_pkt(1, 40000), SimTime(0));
        assert_eq!(vs.sessions.len(), 1);
        // SYN sessions age out after syn_aging (1 s).
        let n = vs.expire_sessions(SimTime(2_000_000_000));
        assert_eq!(n, 1);
        assert_eq!(vs.sessions.len(), 0);
    }
}

#[cfg(test)]
mod qos_tests {
    use super::*;
    use crate::tables::acl::PortRange;
    use crate::tables::qos::{ClassLimit, QosRule};
    use crate::vnic::VnicProfile;
    use nezha_types::{FiveTuple, Ipv4Addr, ServerId, TcpFlags, VpcId};

    /// A vNIC whose port-443 class is rate limited to ~10 packets of
    /// burst: the fast path must start returning RateLimited once the
    /// bucket drains, and recover as tokens refill.
    #[test]
    fn qos_rate_limit_enforced_on_fast_path() {
        let mut vs = VSwitch::new(ServerId(0), VSwitchConfig::default());
        let mut vnic = Vnic::new(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile {
                qos_rules: 0,
                ..VnicProfile::default()
            },
            ServerId(0),
        );
        vnic.tables.qos.add_rule(QosRule {
            dst_ports: PortRange::only(443),
            class: 2,
        });
        vnic.tables.qos.add_limit(ClassLimit {
            class: 2,
            rate_bytes_per_sec: 10_000.0,
            burst_bytes: 2_000.0,
        });
        vs.add_vnic(vnic).unwrap();

        let pkt = |n: u64| {
            Packet::tx_data(
                n,
                VpcId(1),
                VnicId(1),
                FiveTuple::tcp(
                    Ipv4Addr::new(10, 7, 0, 1),
                    50_000,
                    Ipv4Addr::new(10, 7, 0, 9),
                    443,
                ),
                if n == 0 { TcpFlags::SYN } else { TcpFlags::ACK },
                100,
            )
        };
        // Burst through the bucket (each packet ~154B on the wire).
        let mut limited = 0;
        for n in 0..30 {
            let r = vs.process_local(&pkt(n), SimTime(n * 1_000_000));
            if r.outcome == ProcessOutcome::RateLimited {
                limited += 1;
            }
        }
        assert!(limited > 5, "rate limit never engaged: {limited}");
        assert_eq!(vs.counters().rate_limited, limited);
        // After a second, tokens are back.
        let r = vs.process_local(&pkt(100), SimTime(1_500_000_000));
        assert!(
            r.outcome.is_forwarded(),
            "bucket must refill: {:?}",
            r.outcome
        );
    }

    /// Unlimited classes never rate limit, regardless of volume.
    #[test]
    fn best_effort_class_is_unlimited() {
        let mut vs = VSwitch::new(ServerId(0), VSwitchConfig::default());
        let vnic = Vnic::new(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile {
                qos_rules: 0,
                ..VnicProfile::default()
            },
            ServerId(0),
        );
        vs.add_vnic(vnic).unwrap();
        for n in 0..200u64 {
            let pkt = Packet::tx_data(
                n,
                VpcId(1),
                VnicId(1),
                FiveTuple::tcp(
                    Ipv4Addr::new(10, 7, 0, 1),
                    50_000,
                    Ipv4Addr::new(10, 7, 0, 9),
                    9000,
                ),
                if n == 0 { TcpFlags::SYN } else { TcpFlags::ACK },
                1_400,
            );
            let r = vs.process_local(&pkt, SimTime(n * 10_000_000));
            assert!(r.outcome != ProcessOutcome::RateLimited);
        }
        assert_eq!(vs.counters().rate_limited, 0);
    }
}

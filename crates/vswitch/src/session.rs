//! The bidirectional session table.
//!
//! One entry serves both directions of a session (keyed by the canonical
//! 5-tuple + VPC id, §2.1), holding the cached pre-actions for both
//! directions ("cached flows") and the session state. Memory is charged
//! against the vSwitch table pool: a full entry costs
//! `flow_entry (≈100 B) + state_slab (64 B)`; a Nezha-BE entry whose
//! cached flows moved to the FEs costs only the state slab — that freed
//! memory is exactly where the paper's #concurrent-flows gain comes from
//! (§6.2.1).
//!
//! Aging (§2.2.2, §7.3): established sessions expire after ~8 s idle;
//! embryonic (SYN-state) sessions get a much shorter timeout so a SYN
//! flood cannot pin BE memory; closed sessions are reclaimed on sweep.

use crate::config::{MemoryModel, VSwitchConfig};
use nezha_sim::dense::DenseMap;
use nezha_sim::resources::{MemoryPool, OutOfMemory};
use nezha_sim::time::SimTime;
use nezha_types::{Direction, PreActionPair, SessionKey, SessionState, TcpState};

/// One bidirectional session entry.
#[derive(Clone, Debug)]
pub struct SessionEntry {
    /// The vNIC this session belongs to (for per-vNIC attribution).
    pub vnic: nezha_types::VnicId,
    /// Cached pre-actions for both directions; `None` once offloaded to
    /// FEs (BE role) or for entries created without a local rule lookup.
    pub pre_actions: Option<PreActionPair>,
    /// The locally-kept session state (single copy).
    pub state: SessionState,
    /// Creation time.
    pub created: SimTime,
    /// Last packet time, for aging.
    pub last_seen: SimTime,
}

impl SessionEntry {
    fn memory_bytes(&self, m: &MemoryModel) -> u64 {
        m.state_slab
            + if self.pre_actions.is_some() {
                m.flow_entry
            } else {
                0
            }
    }
}

/// The session table with byte-accounted capacity.
///
/// Backed by a [`DenseMap`]: per-packet lookups are O(1) hash probes
/// instead of ordered-tree walks. Lookup order is never visible;
/// iteration (aging sweeps, flow invalidation) is aggregate-only, so
/// the map's deterministic insertion order — a pure function of the
/// call sequence — preserves byte-identical same-seed runs (lint rule
/// D3's contract constrains iteration, not lookup).
#[derive(Debug, Default)]
pub struct SessionTable {
    entries: DenseMap<SessionKey, SessionEntry>,
    created_total: u64,
    expired_total: u64,
    rejected_total: u64,
}

impl SessionTable {
    /// An empty table.
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(created, expired, rejected-for-memory)` lifetime counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.created_total, self.expired_total, self.rejected_total)
    }

    /// Looks up a session.
    pub fn get(&self, key: &SessionKey) -> Option<&SessionEntry> {
        self.entries.get(key)
    }

    /// Mutable lookup (does not touch aging; call [`SessionTable::touch`]).
    pub fn get_mut(&mut self, key: &SessionKey) -> Option<&mut SessionEntry> {
        self.entries.get_mut(key)
    }

    /// Marks activity on a session.
    pub fn touch(&mut self, key: &SessionKey, now: SimTime) {
        if let Some(e) = self.entries.get_mut(key) {
            e.last_seen = now;
        }
    }

    /// Inserts a new session, charging `pool`. On memory exhaustion the
    /// insert is rejected — the overload condition behind the paper's
    /// #concurrent-flows hotspots.
    pub fn insert(
        &mut self,
        key: SessionKey,
        entry: SessionEntry,
        pool: &mut MemoryPool,
        m: &MemoryModel,
    ) -> Result<(), OutOfMemory> {
        debug_assert!(!self.entries.contains_key(&key), "duplicate session insert");
        pool.alloc(entry.memory_bytes(m)).inspect_err(|_e| {
            self.rejected_total += 1;
        })?;
        self.entries.insert(key, entry);
        self.created_total += 1;
        Ok(())
    }

    /// Removes one session, releasing its memory.
    pub fn remove(&mut self, key: &SessionKey, pool: &mut MemoryPool, m: &MemoryModel) {
        if let Some(e) = self.entries.remove(key) {
            pool.free(e.memory_bytes(m));
        }
    }

    /// Drops the cached pre-actions of **every** entry, releasing their
    /// flow-entry bytes. This is the BE entering Nezha's final stage:
    /// "we can delete the rule tables and cached flows on the BE" (§4.2.1).
    /// Returns the bytes freed.
    pub fn drop_cached_flows(&mut self, pool: &mut MemoryPool, m: &MemoryModel) -> u64 {
        let mut freed = 0;
        for e in self.entries.values_mut() {
            if e.pre_actions.take().is_some() {
                freed += m.flow_entry;
            }
        }
        pool.free(freed);
        freed
    }

    /// Invalidates cached pre-actions only (keeps state), as happens when
    /// rule tables change: "the associated cached flows are invalidated
    /// and deleted, which will be regenerated after subsequent rule table
    /// lookups" (§3.2.2). Returns how many entries were invalidated.
    pub fn invalidate_flows(&mut self, pool: &mut MemoryPool, m: &MemoryModel) -> usize {
        let mut n = 0;
        let mut freed = 0;
        for e in self.entries.values_mut() {
            if e.pre_actions.take().is_some() {
                n += 1;
                freed += m.flow_entry;
            }
        }
        pool.free(freed);
        n
    }

    /// Sweeps expired sessions at `now` under the aging policy of `cfg`.
    /// Returns the number of entries reclaimed.
    pub fn expire(&mut self, now: SimTime, cfg: &VSwitchConfig, pool: &mut MemoryPool) -> usize {
        let m = &cfg.memory;
        let mut freed_bytes = 0;
        let before = self.entries.len();
        self.entries.retain(|_, e| {
            let idle = now.since(e.last_seen);
            let timeout = if e.state.tcp.is_closed() {
                // Closed sessions reclaim on the next sweep.
                nezha_sim::time::SimDuration::ZERO
            } else if e.state.tcp.is_embryonic() {
                cfg.syn_aging
            } else {
                cfg.session_aging
            };
            let keep = idle <= timeout;
            if !keep {
                freed_bytes += e.memory_bytes(m);
            }
            keep
        });
        pool.free(freed_bytes);
        let expired = before - self.entries.len();
        self.expired_total += expired as u64;
        expired
    }

    /// Creates-and-inserts the common case: a first packet in direction
    /// `dir` with optional cached pre-actions.
    #[allow(clippy::too_many_arguments)]
    pub fn establish(
        &mut self,
        key: SessionKey,
        vnic: nezha_types::VnicId,
        dir: Direction,
        pre_actions: Option<PreActionPair>,
        now: SimTime,
        pool: &mut MemoryPool,
        m: &MemoryModel,
    ) -> Result<&mut SessionEntry, OutOfMemory> {
        let mut state = SessionState::first_packet(dir);
        state.tcp = TcpState::None;
        self.insert(
            key,
            SessionEntry {
                vnic,
                pre_actions,
                state,
                created: now,
                last_seen: now,
            },
            pool,
            m,
        )?;
        Ok(self.entries.get_mut(&key).expect("just inserted"))
    }

    /// Iterates over `(key, entry)` pairs (stable only within one run).
    pub fn iter(&self) -> impl Iterator<Item = (&SessionKey, &SessionEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nezha_sim::time::SimDuration;
    use nezha_types::{FiveTuple, Ipv4Addr, VpcId};

    fn key(n: u16) -> SessionKey {
        SessionKey::of(
            VpcId(1),
            FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                1000 + n,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
        )
    }

    fn setup() -> (SessionTable, MemoryPool, VSwitchConfig) {
        (
            SessionTable::new(),
            MemoryPool::new(10_000),
            VSwitchConfig::default(),
        )
    }

    #[test]
    fn establish_charges_full_entry() {
        let (mut t, mut pool, cfg) = setup();
        t.establish(
            key(1),
            nezha_types::VnicId(0),
            Direction::Tx,
            Some(PreActionPair::accept(None, None)),
            SimTime(0),
            &mut pool,
            &cfg.memory,
        )
        .unwrap();
        assert_eq!(pool.used(), 100 + 64);
        assert_eq!(t.len(), 1);
        assert_eq!(t.counters().0, 1);
    }

    #[test]
    fn stateless_be_entry_costs_only_slab() {
        let (mut t, mut pool, cfg) = setup();
        t.establish(
            key(1),
            nezha_types::VnicId(0),
            Direction::Rx,
            None,
            SimTime(0),
            &mut pool,
            &cfg.memory,
        )
        .unwrap();
        assert_eq!(pool.used(), 64);
    }

    #[test]
    fn memory_exhaustion_rejects_new_sessions() {
        let (mut t, _, cfg) = setup();
        let mut pool = MemoryPool::new(200); // room for exactly one full entry
        t.establish(
            key(1),
            nezha_types::VnicId(0),
            Direction::Tx,
            Some(PreActionPair::accept(None, None)),
            SimTime(0),
            &mut pool,
            &cfg.memory,
        )
        .unwrap();
        let err = t.establish(
            key(2),
            nezha_types::VnicId(0),
            Direction::Tx,
            Some(PreActionPair::accept(None, None)),
            SimTime(0),
            &mut pool,
            &cfg.memory,
        );
        assert!(err.is_err());
        assert_eq!(t.counters().2, 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn drop_cached_flows_multiplies_capacity() {
        // The §6.2.1 mechanism: dropping 100 B of flow entry per session
        // leaves 64 B entries — the same pool then fits ~2.5x the sessions.
        let (mut t, _, cfg) = setup();
        let mut pool = MemoryPool::new(164 * 10);
        for i in 0..10 {
            t.establish(
                key(i),
                nezha_types::VnicId(0),
                Direction::Tx,
                Some(PreActionPair::accept(None, None)),
                SimTime(0),
                &mut pool,
                &cfg.memory,
            )
            .unwrap();
        }
        assert_eq!(pool.available(), 0);
        let freed = t.drop_cached_flows(&mut pool, &cfg.memory);
        assert_eq!(freed, 1000);
        // 1000 freed bytes now fit 15 more state-only sessions.
        for i in 10..25 {
            t.establish(
                key(i),
                nezha_types::VnicId(0),
                Direction::Tx,
                None,
                SimTime(0),
                &mut pool,
                &cfg.memory,
            )
            .unwrap();
        }
        assert_eq!(t.len(), 25);
    }

    #[test]
    fn aging_established_vs_embryonic() {
        let (mut t, mut pool, cfg) = setup();
        // Established session.
        let e = t
            .establish(
                key(1),
                nezha_types::VnicId(0),
                Direction::Tx,
                None,
                SimTime(0),
                &mut pool,
                &cfg.memory,
            )
            .unwrap();
        e.state.tcp = TcpState::Established;
        // Embryonic session.
        let e = t
            .establish(
                key(2),
                nezha_types::VnicId(0),
                Direction::Tx,
                None,
                SimTime(0),
                &mut pool,
                &cfg.memory,
            )
            .unwrap();
        e.state.tcp = TcpState::SynSent;

        // After 2 s (> syn_aging 1 s, < session_aging 8 s): SYN expires.
        let n = t.expire(SimTime(2_000_000_000), &cfg, &mut pool);
        assert_eq!(n, 1);
        assert!(t.get(&key(1)).is_some());
        assert!(t.get(&key(2)).is_none());

        // After 10 s idle the established one goes too.
        let n = t.expire(SimTime(10_000_000_000), &cfg, &mut pool);
        assert_eq!(n, 1);
        assert!(t.is_empty());
        assert_eq!(pool.used(), 0);
        assert_eq!(t.counters().1, 2);
    }

    #[test]
    fn touch_resets_aging_clock() {
        let (mut t, mut pool, cfg) = setup();
        let e = t
            .establish(
                key(1),
                nezha_types::VnicId(0),
                Direction::Tx,
                None,
                SimTime(0),
                &mut pool,
                &cfg.memory,
            )
            .unwrap();
        e.state.tcp = TcpState::Established;
        t.touch(&key(1), SimTime(7_000_000_000));
        // 8 s after creation but only 1 s after the touch: still alive.
        assert_eq!(t.expire(SimTime(8_000_000_000), &cfg, &mut pool), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn closed_sessions_reclaim_on_sweep() {
        let (mut t, mut pool, cfg) = setup();
        let e = t
            .establish(
                key(1),
                nezha_types::VnicId(0),
                Direction::Tx,
                None,
                SimTime(0),
                &mut pool,
                &cfg.memory,
            )
            .unwrap();
        e.state.tcp = TcpState::Closed;
        assert_eq!(
            t.expire(SimTime(0) + SimDuration::from_millis(1), &cfg, &mut pool),
            1
        );
        assert!(t.is_empty());
    }

    #[test]
    fn invalidate_flows_keeps_state() {
        let (mut t, mut pool, cfg) = setup();
        t.establish(
            key(1),
            nezha_types::VnicId(0),
            Direction::Tx,
            Some(PreActionPair::accept(None, None)),
            SimTime(0),
            &mut pool,
            &cfg.memory,
        )
        .unwrap();
        assert_eq!(t.invalidate_flows(&mut pool, &cfg.memory), 1);
        let e = t.get(&key(1)).unwrap();
        assert!(e.pre_actions.is_none());
        assert_eq!(e.state.first_dir, Some(Direction::Tx));
        assert_eq!(pool.used(), 64);
        // Idempotent.
        assert_eq!(t.invalidate_flows(&mut pool, &cfg.memory), 0);
    }

    #[test]
    fn remove_releases_memory() {
        let (mut t, mut pool, cfg) = setup();
        t.establish(
            key(1),
            nezha_types::VnicId(0),
            Direction::Tx,
            Some(PreActionPair::accept(None, None)),
            SimTime(0),
            &mut pool,
            &cfg.memory,
        )
        .unwrap();
        t.remove(&key(1), &mut pool, &cfg.memory);
        assert_eq!(pool.used(), 0);
        // Removing a missing key is a no-op.
        t.remove(&key(1), &mut pool, &cfg.memory);
        assert_eq!(pool.used(), 0);
    }
}

//! Policy-based routing — the first of the "advanced features" §2.2.2
//! names ("policy-based routing, traffic mirroring, or flow logging").
//!
//! PBR overrides the destination-driven VXLAN route by *source*: traffic
//! from designated prefixes is steered through an inspection or egress
//! point regardless of where the destination table would send it.
//! Stateless tenant configuration, so — like every other rule table — it
//! replicates to FEs verbatim.

use nezha_types::Ipv4Addr;
use serde::{Deserialize, Serialize};

/// One policy route.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PbrRule {
    /// Matched *source* prefix.
    pub src_prefix: (Ipv4Addr, u8),
    /// Overlay next hop overriding the route-table result.
    pub via: Ipv4Addr,
}

/// The policy-based routing table: longest source prefix wins.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PbrTable {
    rules: Vec<PbrRule>,
}

impl PbrTable {
    /// An empty table (no overrides).
    pub fn new() -> Self {
        PbrTable::default()
    }

    /// Adds a rule.
    pub fn insert(&mut self, rule: PbrRule) {
        self.rules.push(rule);
    }

    /// The override next hop for `src`, if any — longest matching source
    /// prefix wins, insertion order breaking ties.
    pub fn lookup(&self, src: Ipv4Addr) -> Option<Ipv4Addr> {
        self.rules
            .iter()
            .filter(|r| src.in_prefix(r.src_prefix.0, r.src_prefix.1))
            .max_by_key(|r| r.src_prefix.1)
            .map(|r| r.via)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no overrides exist.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Memory footprint under the given per-rule cost.
    pub fn memory_bytes(&self, per_rule: u64) -> u64 {
        self.rules.len() as u64 * per_rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_source_prefix_wins() {
        let mut t = PbrTable::new();
        t.insert(PbrRule {
            src_prefix: (Ipv4Addr::new(10, 1, 0, 0), 16),
            via: Ipv4Addr::new(192, 168, 0, 1),
        });
        t.insert(PbrRule {
            src_prefix: (Ipv4Addr::new(10, 1, 2, 0), 24),
            via: Ipv4Addr::new(192, 168, 0, 2),
        });
        assert_eq!(
            t.lookup(Ipv4Addr::new(10, 1, 2, 9)),
            Some(Ipv4Addr::new(192, 168, 0, 2))
        );
        assert_eq!(
            t.lookup(Ipv4Addr::new(10, 1, 9, 9)),
            Some(Ipv4Addr::new(192, 168, 0, 1))
        );
        assert_eq!(t.lookup(Ipv4Addr::new(10, 2, 0, 1)), None);
    }

    #[test]
    fn accounting() {
        let mut t = PbrTable::new();
        assert!(t.is_empty());
        t.insert(PbrRule {
            src_prefix: (Ipv4Addr::UNSPECIFIED, 0),
            via: Ipv4Addr::new(1, 1, 1, 1),
        });
        assert_eq!(t.len(), 1);
        assert_eq!(t.memory_bytes(24), 24);
    }
}

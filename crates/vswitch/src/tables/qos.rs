//! The QoS/meter table: classifies flows and enforces per-class rates.
//!
//! The slow path queries QoS to stamp a class into the pre-action; the
//! fast path then only consults the class's token bucket. Rate limiting at
//! VM granularity is exactly the operation the paper notes becomes a
//! *distributed* rate-limiting problem under Sirius's bucket spreading —
//! and stays a purely local one under Nezha, because all of a vNIC's
//! classification state lives in its rule tables which every FE holds in
//! full (§2.3.3, §3.2.3).

use super::acl::PortRange;
use nezha_sim::resources::TokenBucket;
use nezha_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// One QoS classification rule.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QosRule {
    /// Destination-port range selecting the class.
    pub dst_ports: PortRange,
    /// Class stamped into the pre-action (0 = best effort).
    pub class: u8,
}

/// Per-class rate limit.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClassLimit {
    /// Class the limit applies to.
    pub class: u8,
    /// Sustained rate in bytes per second.
    pub rate_bytes_per_sec: f64,
    /// Burst allowance in bytes.
    pub burst_bytes: f64,
}

/// The QoS table: classification rules plus per-class token buckets.
#[derive(Debug, Clone, Default)]
pub struct QosTable {
    rules: Vec<QosRule>,
    limits: Vec<(u8, TokenBucket)>,
}

impl QosTable {
    /// An empty table: everything is class 0, unlimited.
    pub fn new() -> Self {
        QosTable::default()
    }

    /// Adds a classification rule (first match wins).
    pub fn add_rule(&mut self, rule: QosRule) {
        self.rules.push(rule);
    }

    /// Installs a rate limit for a class.
    pub fn add_limit(&mut self, limit: ClassLimit) {
        self.limits.push((
            limit.class,
            TokenBucket::new(limit.rate_bytes_per_sec, limit.burst_bytes),
        ));
    }

    /// Classifies a destination port.
    pub fn classify(&self, dst_port: u16) -> u8 {
        self.rules
            .iter()
            .find(|r| r.dst_ports.contains(dst_port))
            .map_or(0, |r| r.class)
    }

    /// Admits `bytes` for `class` at `now`; classes without a limit always
    /// admit. Returns false when the packet exceeds the class rate.
    pub fn admit(&mut self, now: SimTime, class: u8, bytes: u64) -> bool {
        match self.limits.iter_mut().find(|(c, _)| *c == class) {
            Some((_, tb)) => tb.admit(now, bytes as f64),
            None => true,
        }
    }

    /// Number of classification rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no classification rules exist.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Memory footprint under the given per-rule cost.
    pub fn memory_bytes(&self, per_rule: u64) -> u64 {
        (self.rules.len() + self.limits.len()) as u64 * per_rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_first_match() {
        let mut q = QosTable::new();
        q.add_rule(QosRule {
            dst_ports: PortRange { lo: 80, hi: 80 },
            class: 2,
        });
        q.add_rule(QosRule {
            dst_ports: PortRange { lo: 0, hi: 1023 },
            class: 1,
        });
        assert_eq!(q.classify(80), 2);
        assert_eq!(q.classify(443), 1);
        assert_eq!(q.classify(8080), 0);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn unlimited_class_always_admits() {
        let mut q = QosTable::new();
        assert!(q.admit(SimTime(0), 0, 1_000_000_000));
    }

    #[test]
    fn limited_class_enforces_rate() {
        let mut q = QosTable::new();
        q.add_limit(ClassLimit {
            class: 3,
            rate_bytes_per_sec: 1000.0,
            burst_bytes: 100.0,
        });
        assert!(q.admit(SimTime(0), 3, 100));
        assert!(!q.admit(SimTime(0), 3, 1));
        // 100 ms refills 100 bytes.
        assert!(q.admit(SimTime(100_000_000), 3, 100));
        // Other classes unaffected.
        assert!(q.admit(SimTime(0), 0, 10_000));
    }

    #[test]
    fn memory_counts_rules_and_limits() {
        let mut q = QosTable::new();
        q.add_rule(QosRule {
            dst_ports: PortRange::ANY,
            class: 1,
        });
        q.add_limit(ClassLimit {
            class: 1,
            rate_bytes_per_sec: 1.0,
            burst_bytes: 1.0,
        });
        assert_eq!(q.memory_bytes(32), 64);
    }
}

//! The statistics-policy table (flow logging / metering policy).
//!
//! This table is the canonical source of **rule-table-involved state**
//! (§3.2.2): a session's statistics state ("what to record for this flow")
//! exists only as the outcome of a policy-table lookup. Under Nezha the
//! lookup happens at the FE, so the BE learns the policy either from a
//! notify packet (TX workflow) or piggybacked in the outer header (RX
//! workflow).

use super::acl::PortRange;
use nezha_types::Ipv4Addr;
use serde::{Deserialize, Serialize};

/// One statistics-policy rule.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Matched destination prefix.
    pub dst_prefix: (Ipv4Addr, u8),
    /// Matched destination ports.
    pub dst_ports: PortRange,
    /// Policy id stamped into the pre-action and recorded as session
    /// state; 0 = record nothing.
    pub policy: u8,
}

/// The statistics-policy table.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PolicyTable {
    rules: Vec<PolicyRule>,
}

impl PolicyTable {
    /// An empty table: no flow is recorded.
    pub fn new() -> Self {
        PolicyTable::default()
    }

    /// Adds a rule (first match wins).
    pub fn insert(&mut self, rule: PolicyRule) {
        self.rules.push(rule);
    }

    /// The policy for a destination, 0 when nothing matches.
    pub fn lookup(&self, dst: Ipv4Addr, dst_port: u16) -> u8 {
        self.rules
            .iter()
            .find(|r| {
                dst.in_prefix(r.dst_prefix.0, r.dst_prefix.1) && r.dst_ports.contains(dst_port)
            })
            .map_or(0, |r| r.policy)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules exist.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Memory footprint under the given per-rule cost.
    pub fn memory_bytes(&self, per_rule: u64) -> u64 {
        self.rules.len() as u64 * per_rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_matches_prefix_and_port() {
        let mut p = PolicyTable::new();
        p.insert(PolicyRule {
            dst_prefix: (Ipv4Addr::new(10, 0, 0, 0), 8),
            dst_ports: PortRange::only(443),
            policy: 7,
        });
        assert_eq!(p.lookup(Ipv4Addr::new(10, 1, 1, 1), 443), 7);
        assert_eq!(p.lookup(Ipv4Addr::new(10, 1, 1, 1), 80), 0);
        assert_eq!(p.lookup(Ipv4Addr::new(11, 1, 1, 1), 443), 0);
    }

    #[test]
    fn accounting() {
        let mut p = PolicyTable::new();
        assert!(p.is_empty());
        p.insert(PolicyRule {
            dst_prefix: (Ipv4Addr::UNSPECIFIED, 0),
            dst_ports: PortRange::ANY,
            policy: 1,
        });
        assert_eq!(p.len(), 1);
        assert_eq!(p.memory_bytes(24), 24);
    }
}

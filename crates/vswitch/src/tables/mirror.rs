//! The traffic-mirroring table — one of the "advanced features" whose
//! extra table pushes the slow path toward its 12-table worst case
//! (§2.2.2: "policy-based routing, traffic mirroring, or flow logging").
//!
//! A mirror rule selects flows by destination prefix/ports and names the
//! overlay collector that receives copies. The matched collector rides in
//! the pre-action — stateless tenant configuration like everything else
//! in the slow path, so it offloads to FEs unchanged, and under Nezha the
//! *FE* emits the mirror copies (the packets pass through it anyway).

use super::acl::PortRange;
use nezha_types::Ipv4Addr;
use serde::{Deserialize, Serialize};

/// One mirroring rule.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MirrorRule {
    /// Matched destination prefix.
    pub dst_prefix: (Ipv4Addr, u8),
    /// Matched destination ports.
    pub dst_ports: PortRange,
    /// Overlay address of the collector receiving copies.
    pub collector: Ipv4Addr,
}

/// The mirror table (first match wins).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MirrorTable {
    rules: Vec<MirrorRule>,
}

impl MirrorTable {
    /// An empty table (nothing mirrored).
    pub fn new() -> Self {
        MirrorTable::default()
    }

    /// Adds a rule.
    pub fn insert(&mut self, rule: MirrorRule) {
        self.rules.push(rule);
    }

    /// The collector for a destination, if any rule matches.
    pub fn lookup(&self, dst: Ipv4Addr, dst_port: u16) -> Option<Ipv4Addr> {
        self.rules
            .iter()
            .find(|r| {
                dst.in_prefix(r.dst_prefix.0, r.dst_prefix.1) && r.dst_ports.contains(dst_port)
            })
            .map(|r| r.collector)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when nothing is mirrored.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Memory footprint under the given per-rule cost.
    pub fn memory_bytes(&self, per_rule: u64) -> u64 {
        self.rules.len() as u64 * per_rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_match_selects_collector() {
        let mut m = MirrorTable::new();
        m.insert(MirrorRule {
            dst_prefix: (Ipv4Addr::new(10, 0, 0, 0), 24),
            dst_ports: PortRange::only(443),
            collector: Ipv4Addr::new(172, 16, 0, 1),
        });
        m.insert(MirrorRule {
            dst_prefix: (Ipv4Addr::new(10, 0, 0, 0), 8),
            dst_ports: PortRange::ANY,
            collector: Ipv4Addr::new(172, 16, 0, 2),
        });
        assert_eq!(
            m.lookup(Ipv4Addr::new(10, 0, 0, 9), 443),
            Some(Ipv4Addr::new(172, 16, 0, 1))
        );
        assert_eq!(
            m.lookup(Ipv4Addr::new(10, 9, 0, 9), 80),
            Some(Ipv4Addr::new(172, 16, 0, 2))
        );
        assert_eq!(m.lookup(Ipv4Addr::new(11, 0, 0, 1), 443), None);
    }

    #[test]
    fn accounting() {
        let mut m = MirrorTable::new();
        assert!(m.is_empty());
        m.insert(MirrorRule {
            dst_prefix: (Ipv4Addr::UNSPECIFIED, 0),
            dst_ports: PortRange::ANY,
            collector: Ipv4Addr::new(1, 1, 1, 1),
        });
        assert_eq!(m.len(), 1);
        assert_eq!(m.memory_bytes(32), 32);
    }
}

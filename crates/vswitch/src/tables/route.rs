//! VXLAN routing: longest-prefix match over overlay destinations.
//!
//! The route table answers "is this overlay destination reachable in the
//! tenant's VPC, and through what overlay endpoint". Entries are grouped
//! by prefix length and probed from most- to least-specific — a simple,
//! allocation-light LPM adequate for the table sizes the model uses.

use nezha_types::Ipv4Addr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of a route lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RouteTarget {
    /// Deliver within the VPC overlay toward this gateway/endpoint hint
    /// (the vNIC→server map resolves the physical server).
    Overlay(Ipv4Addr),
    /// Destination is unreachable in this VPC; drop.
    Blackhole,
}

/// The LPM route table.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RouteTable {
    /// Prefix-length → (masked address → target). Probed longest-first.
    by_len: BTreeMap<u8, BTreeMap<u32, RouteTarget>>,
    /// Sorted (desc) list of present prefix lengths, kept in sync.
    lens: Vec<u8>,
    entries: usize,
}

impl RouteTable {
    /// An empty table (everything unreachable).
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Inserts or replaces a route for `prefix/len`.
    pub fn insert(&mut self, prefix: Ipv4Addr, len: u8, target: RouteTarget) {
        assert!(len <= 32);
        let masked = prefix.masked(len).0;
        let bucket = self.by_len.entry(len).or_default();
        if bucket.insert(masked, target).is_none() {
            self.entries += 1;
        }
        if !self.lens.contains(&len) {
            self.lens.push(len);
            self.lens.sort_unstable_by(|a, b| b.cmp(a));
        }
    }

    /// Longest-prefix-match lookup; `None` when no route covers `dst`.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<RouteTarget> {
        for &len in &self.lens {
            if let Some(t) = self
                .by_len
                .get(&len)
                .and_then(|b| b.get(&dst.masked(len).0))
            {
                return Some(*t);
            }
        }
        None
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when the table holds no routes.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Memory footprint under the given per-entry cost.
    pub fn memory_bytes(&self, per_entry: u64) -> u64 {
        self.entries as u64 * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let mut rt = RouteTable::new();
        rt.insert(Ipv4Addr::new(10, 0, 0, 0), 8, RouteTarget::Blackhole);
        rt.insert(
            Ipv4Addr::new(10, 1, 0, 0),
            16,
            RouteTarget::Overlay(Ipv4Addr::new(192, 168, 0, 1)),
        );
        assert_eq!(
            rt.lookup(Ipv4Addr::new(10, 1, 9, 9)),
            Some(RouteTarget::Overlay(Ipv4Addr::new(192, 168, 0, 1)))
        );
        assert_eq!(
            rt.lookup(Ipv4Addr::new(10, 2, 9, 9)),
            Some(RouteTarget::Blackhole)
        );
        assert_eq!(rt.lookup(Ipv4Addr::new(11, 0, 0, 1)), None);
    }

    #[test]
    fn default_route_via_len_zero() {
        let mut rt = RouteTable::new();
        rt.insert(
            Ipv4Addr::UNSPECIFIED,
            0,
            RouteTarget::Overlay(Ipv4Addr::new(1, 1, 1, 1)),
        );
        assert!(rt.lookup(Ipv4Addr::new(203, 0, 113, 5)).is_some());
    }

    #[test]
    fn replace_does_not_double_count() {
        let mut rt = RouteTable::new();
        rt.insert(Ipv4Addr::new(10, 0, 0, 0), 24, RouteTarget::Blackhole);
        rt.insert(
            Ipv4Addr::new(10, 0, 0, 0),
            24,
            RouteTarget::Overlay(Ipv4Addr::new(2, 2, 2, 2)),
        );
        assert_eq!(rt.len(), 1);
        assert!(!rt.is_empty());
        assert_eq!(rt.memory_bytes(32), 32);
        assert_eq!(
            rt.lookup(Ipv4Addr::new(10, 0, 0, 7)),
            Some(RouteTarget::Overlay(Ipv4Addr::new(2, 2, 2, 2)))
        );
    }

    #[test]
    fn host_routes() {
        let mut rt = RouteTable::new();
        rt.insert(
            Ipv4Addr::new(10, 0, 0, 7),
            32,
            RouteTarget::Overlay(Ipv4Addr::new(3, 3, 3, 3)),
        );
        rt.insert(Ipv4Addr::new(10, 0, 0, 0), 24, RouteTarget::Blackhole);
        assert_eq!(
            rt.lookup(Ipv4Addr::new(10, 0, 0, 7)),
            Some(RouteTarget::Overlay(Ipv4Addr::new(3, 3, 3, 3)))
        );
        assert_eq!(
            rt.lookup(Ipv4Addr::new(10, 0, 0, 8)),
            Some(RouteTarget::Blackhole)
        );
    }
}

//! The per-vNIC rule tables of the vSwitch slow path.
//!
//! A new connection queries at least five tables — ACL, QoS, statistics
//! policy, VXLAN routing, and the vNIC→server mapping (§2.2.2); NAT joins
//! the pipeline for NAT-gateway vNICs. These tables are **stateless
//! tenant configuration**: given the same rules, any node answers a lookup
//! identically — the property Nezha exploits by replicating them to every
//! FE with no synchronization beyond controller config pushes (§3.2.3).
//!
//! Each table reports its [`memory bytes`](acl::AclTable::memory_bytes)
//! under the configured [`MemoryModel`](crate::config::MemoryModel), which
//! is how the #vNICs-limited-by-memory bottleneck (§2.2.2) is enforced.

pub mod acl;
pub mod mirror;
pub mod nat;
pub mod pbr;
pub mod policy;
pub mod qos;
pub mod route;
pub mod vnic_server;

//! The vNIC→server mapping table (the "global routing table").
//!
//! Maps an overlay vNIC address to the physical server currently hosting
//! it. The full table lives at the gateway; vSwitches learn entries on
//! demand with a 200 ms learning interval (§4.2.1), which is why Nezha's
//! offload needs a dual-running stage — in-flight packets keep arriving at
//! the BE until every peer has learned the FE addresses.
//!
//! Entries are deliberately heavy (≈2 KB each in the memory model): the
//! paper observes single vNICs storing O(100K) entries and consuming over
//! 200 MB (§2.2.2), which is one of the forces behind the #vNICs-limited-
//! by-memory bottleneck.

use nezha_types::{Ipv4Addr, ServerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Hosting set for one overlay address. Almost every entry points at a
/// single server (only offloaded vNICs fan out to FE lists), and `set`
/// runs once per learned peer connection, so the single-server case is
/// kept inline to avoid a heap allocation per call.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum Hosting {
    One(ServerId),
    Many(Vec<ServerId>),
}

impl Hosting {
    fn as_slice(&self) -> &[ServerId] {
        match self {
            Hosting::One(s) => std::slice::from_ref(s),
            Hosting::Many(v) => v,
        }
    }
}

/// The mapping table: overlay address → hosting server(s).
///
/// Under Nezha an offloaded vNIC maps to *several* servers (its FEs); the
/// sender picks one by flow hash. A non-offloaded vNIC maps to exactly its
/// home server.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VnicServerMap {
    entries: BTreeMap<Ipv4Addr, Hosting>,
}

impl VnicServerMap {
    /// An empty map.
    pub fn new() -> Self {
        VnicServerMap::default()
    }

    /// Points `addr` at a single hosting server. Re-learning an unchanged
    /// mapping is a no-op write — bulk workloads re-add connections to the
    /// same few peers constantly.
    pub fn set(&mut self, addr: Ipv4Addr, server: ServerId) {
        match self.entries.get_mut(&addr) {
            Some(Hosting::One(s)) if *s == server => {}
            Some(h) => *h = Hosting::One(server),
            None => {
                self.entries.insert(addr, Hosting::One(server));
            }
        }
    }

    /// Points `addr` at a set of servers (the FEs of an offloaded vNIC).
    /// Order matters: the flow-hash index selects into this list.
    pub fn set_many(&mut self, addr: Ipv4Addr, servers: Vec<ServerId>) {
        assert!(
            !servers.is_empty(),
            "a vNIC must map to at least one server"
        );
        self.entries.insert(addr, Hosting::Many(servers));
    }

    /// Removes the mapping for `addr`.
    pub fn remove(&mut self, addr: Ipv4Addr) {
        self.entries.remove(&addr);
    }

    /// The servers hosting `addr`, empty when unknown.
    pub fn lookup(&self, addr: Ipv4Addr) -> &[ServerId] {
        self.entries.get(&addr).map_or(&[], Hosting::as_slice)
    }

    /// Selects one hosting server for a flow with the given stable hash
    /// (Nezha's `Hash(5-tuple)` load balancing, §3.2.3).
    pub fn select(&self, addr: Ipv4Addr, flow_hash: u64) -> Option<ServerId> {
        let servers = self.lookup(addr);
        if servers.is_empty() {
            None
        } else {
            Some(servers[(flow_hash % servers.len() as u64) as usize])
        }
    }

    /// Number of mapped addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Memory footprint under the given per-entry cost.
    pub fn memory_bytes(&self, per_entry: u64) -> u64 {
        self.entries.len() as u64 * per_entry
    }

    /// Copies the entry for `addr` from `other` (the on-demand gateway
    /// learning path). Returns true when something was learned.
    pub fn learn_from(&mut self, other: &VnicServerMap, addr: Ipv4Addr) -> bool {
        match other.entries.get(&addr) {
            Some(servers) => {
                self.entries.insert(addr, servers.clone());
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_mapping() {
        let mut m = VnicServerMap::new();
        m.set(Ipv4Addr::new(10, 0, 0, 5), ServerId(3));
        assert_eq!(m.lookup(Ipv4Addr::new(10, 0, 0, 5)), &[ServerId(3)]);
        assert_eq!(
            m.select(Ipv4Addr::new(10, 0, 0, 5), 12345),
            Some(ServerId(3))
        );
        assert_eq!(m.lookup(Ipv4Addr::new(10, 0, 0, 6)), &[] as &[ServerId]);
        assert_eq!(m.select(Ipv4Addr::new(10, 0, 0, 6), 0), None);
    }

    #[test]
    fn multi_mapping_selects_by_hash() {
        let mut m = VnicServerMap::new();
        let fes = vec![ServerId(1), ServerId(2), ServerId(3), ServerId(4)];
        m.set_many(Ipv4Addr::new(10, 0, 0, 9), fes.clone());
        // Deterministic and covering: each index reachable.
        for (h, want) in [(0u64, 1u32), (1, 2), (2, 3), (3, 4), (4, 1)] {
            assert_eq!(
                m.select(Ipv4Addr::new(10, 0, 0, 9), h),
                Some(ServerId(want))
            );
        }
        assert_eq!(m.lookup(Ipv4Addr::new(10, 0, 0, 9)), fes.as_slice());
    }

    #[test]
    fn remove_and_accounting() {
        let mut m = VnicServerMap::new();
        m.set(Ipv4Addr::new(1, 1, 1, 1), ServerId(1));
        m.set(Ipv4Addr::new(2, 2, 2, 2), ServerId(2));
        assert_eq!(m.len(), 2);
        assert_eq!(m.memory_bytes(2048), 4096);
        m.remove(Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn learning_copies_entries_on_demand() {
        let mut gateway = VnicServerMap::new();
        gateway.set_many(Ipv4Addr::new(10, 0, 0, 1), vec![ServerId(5), ServerId(6)]);
        let mut local = VnicServerMap::new();
        assert!(local.learn_from(&gateway, Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!local.learn_from(&gateway, Ipv4Addr::new(10, 0, 0, 2)));
        assert_eq!(local.lookup(Ipv4Addr::new(10, 0, 0, 1)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_server_list_rejected() {
        let mut m = VnicServerMap::new();
        m.set_many(Ipv4Addr::new(1, 1, 1, 1), vec![]);
    }
}

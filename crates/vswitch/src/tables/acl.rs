//! The access-control-list table, with stateful rules.
//!
//! ACL rules match on source/destination prefixes, port ranges, and
//! protocol — the "expensive range matching" of §2.1 — in priority order,
//! first hit wins. A rule may be **stateful**: its verdict is preliminary
//! and the final decision combines it with the session's first-packet
//! direction (§5.1). A default verdict applies when nothing matches.

use nezha_types::{Decision, Direction, FiveTuple, IpProtocol, Ipv4Addr};
use serde::{Deserialize, Serialize};

/// An inclusive port range. `PortRange::ANY` matches every port.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PortRange {
    /// Lowest matching port.
    pub lo: u16,
    /// Highest matching port (inclusive).
    pub hi: u16,
}

impl PortRange {
    /// Matches all ports.
    pub const ANY: PortRange = PortRange {
        lo: 0,
        hi: u16::MAX,
    };

    /// A single-port range.
    pub const fn only(p: u16) -> Self {
        PortRange { lo: p, hi: p }
    }

    /// True when `p` falls inside the range.
    pub const fn contains(&self, p: u16) -> bool {
        self.lo <= p && p <= self.hi
    }
}

/// One ACL rule.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AclRule {
    /// Priority; lower value = matched first.
    pub priority: u32,
    /// Direction the rule applies to (`None` = both). Security groups are
    /// direction-scoped: egress and ingress rule sets are distinct.
    pub direction: Option<Direction>,
    /// Source prefix (address, length).
    pub src: (Ipv4Addr, u8),
    /// Destination prefix (address, length).
    pub dst: (Ipv4Addr, u8),
    /// Source port range.
    pub src_ports: PortRange,
    /// Destination port range.
    pub dst_ports: PortRange,
    /// Protocol filter (`None` = any).
    pub protocol: Option<IpProtocol>,
    /// Verdict when the rule matches.
    pub decision: Decision,
    /// True when the verdict is connection-based (stateful ACL, §5.1).
    pub stateful: bool,
}

impl AclRule {
    /// A catch-all rule with the given verdict.
    pub const fn catch_all(priority: u32, decision: Decision, stateful: bool) -> Self {
        AclRule {
            priority,
            direction: None,
            src: (Ipv4Addr::UNSPECIFIED, 0),
            dst: (Ipv4Addr::UNSPECIFIED, 0),
            src_ports: PortRange::ANY,
            dst_ports: PortRange::ANY,
            protocol: None,
            decision,
            stateful,
        }
    }

    /// True when the rule matches the tuple in the given direction.
    pub fn matches(&self, t: &FiveTuple, dir: Direction) -> bool {
        self.direction.is_none_or(|d| d == dir)
            && t.src_ip.in_prefix(self.src.0, self.src.1)
            && t.dst_ip.in_prefix(self.dst.0, self.dst.1)
            && self.src_ports.contains(t.src_port)
            && self.dst_ports.contains(t.dst_port)
            && self.protocol.is_none_or(|p| p == t.protocol)
    }
}

/// Result of an ACL lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AclVerdict {
    /// The matched (or default) decision.
    pub decision: Decision,
    /// Whether the matched rule was stateful.
    pub stateful: bool,
}

/// The ACL table: rules in priority order plus a default verdict.
///
/// `Default` is [`AclTable::allow_all`] — the permissive stateless table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AclTable {
    rules: Vec<AclRule>,
    /// Default verdict for egress traffic when no rule matches.
    default_tx: AclVerdict,
    /// Default verdict for ingress traffic when no rule matches. Cloud
    /// security groups typically default-deny inbound *statefully*:
    /// unsolicited ingress drops, but replies to locally initiated
    /// connections pass (§5.1).
    default_rx: AclVerdict,
}

impl Default for AclTable {
    fn default() -> Self {
        AclTable::allow_all()
    }
}

impl AclTable {
    /// An empty table with the given per-direction defaults.
    pub fn new(default_tx: AclVerdict, default_rx: AclVerdict) -> Self {
        AclTable {
            rules: Vec::new(),
            default_tx,
            default_rx,
        }
    }

    /// A permissive table: accept everything, stateless, both directions.
    pub fn allow_all() -> Self {
        let accept = AclVerdict {
            decision: Decision::Accept,
            stateful: false,
        };
        AclTable::new(accept, accept)
    }

    /// The classic security-group shape: egress default-accept (stateful,
    /// so return traffic of an inbound-accepted session also passes),
    /// ingress default-deny *stateful* (replies to locally initiated
    /// connections pass, unsolicited traffic drops — §5.1).
    pub fn security_group() -> Self {
        AclTable::new(
            AclVerdict {
                decision: Decision::Accept,
                stateful: true,
            },
            AclVerdict {
                decision: Decision::Drop,
                stateful: true,
            },
        )
    }

    /// Inserts a rule, keeping priority order (stable for equal priority).
    pub fn insert(&mut self, rule: AclRule) {
        let pos = self.rules.partition_point(|r| r.priority <= rule.priority);
        self.rules.insert(pos, rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the table holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Clears all rules.
    pub fn clear(&mut self) {
        self.rules.clear();
    }

    /// First-hit lookup in priority order; falls back to the direction's
    /// default.
    pub fn lookup(&self, t: &FiveTuple, dir: Direction) -> AclVerdict {
        for r in &self.rules {
            if r.matches(t, dir) {
                return AclVerdict {
                    decision: r.decision,
                    stateful: r.stateful,
                };
            }
        }
        match dir {
            Direction::Tx => self.default_tx,
            Direction::Rx => self.default_rx,
        }
    }

    /// Memory footprint under the given per-rule cost.
    pub fn memory_bytes(&self, per_rule: u64) -> u64 {
        self.rules.len() as u64 * per_rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(src: Ipv4Addr, sp: u16, dst: Ipv4Addr, dp: u16) -> FiveTuple {
        FiveTuple::tcp(src, sp, dst, dp)
    }

    fn table(default_tx: Decision, default_rx: Decision, stateful: bool) -> AclTable {
        AclTable::new(
            AclVerdict {
                decision: default_tx,
                stateful,
            },
            AclVerdict {
                decision: default_rx,
                stateful,
            },
        )
    }

    #[test]
    fn port_range_semantics() {
        assert!(PortRange::ANY.contains(0));
        assert!(PortRange::ANY.contains(65535));
        let r = PortRange { lo: 100, hi: 200 };
        assert!(r.contains(100) && r.contains(200) && r.contains(150));
        assert!(!r.contains(99) && !r.contains(201));
        assert!(PortRange::only(443).contains(443));
        assert!(!PortRange::only(443).contains(444));
    }

    #[test]
    fn priority_order_first_hit_wins() {
        let mut acl = table(Decision::Accept, Decision::Accept, false);
        // Low priority: drop everything from 10/8.
        acl.insert(AclRule {
            priority: 10,
            src: (Ipv4Addr::new(10, 0, 0, 0), 8),
            ..AclRule::catch_all(10, Decision::Drop, false)
        });
        // Higher priority (lower number): allow 10.1/16.
        acl.insert(AclRule {
            priority: 1,
            src: (Ipv4Addr::new(10, 1, 0, 0), 16),
            ..AclRule::catch_all(1, Decision::Accept, false)
        });
        let allowed = t(Ipv4Addr::new(10, 1, 2, 3), 1, Ipv4Addr::new(8, 8, 8, 8), 80);
        let denied = t(Ipv4Addr::new(10, 2, 2, 3), 1, Ipv4Addr::new(8, 8, 8, 8), 80);
        assert_eq!(
            acl.lookup(&allowed, Direction::Tx).decision,
            Decision::Accept
        );
        assert_eq!(acl.lookup(&denied, Direction::Tx).decision, Decision::Drop);
        assert_eq!(acl.len(), 2);
    }

    #[test]
    fn port_and_protocol_filters() {
        let mut acl = table(Decision::Drop, Decision::Drop, false);
        acl.insert(AclRule {
            dst_ports: PortRange::only(443),
            protocol: Some(IpProtocol::Tcp),
            ..AclRule::catch_all(1, Decision::Accept, false)
        });
        let https = t(Ipv4Addr::new(1, 1, 1, 1), 5, Ipv4Addr::new(2, 2, 2, 2), 443);
        let http = t(Ipv4Addr::new(1, 1, 1, 1), 5, Ipv4Addr::new(2, 2, 2, 2), 80);
        let udp443 = FiveTuple::udp(Ipv4Addr::new(1, 1, 1, 1), 5, Ipv4Addr::new(2, 2, 2, 2), 443);
        assert_eq!(acl.lookup(&https, Direction::Tx).decision, Decision::Accept);
        assert_eq!(acl.lookup(&http, Direction::Tx).decision, Decision::Drop);
        assert_eq!(acl.lookup(&udp443, Direction::Tx).decision, Decision::Drop);
    }

    #[test]
    fn security_group_defaults_are_direction_scoped() {
        let acl = AclTable::security_group();
        let tuple = t(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2);
        let rx = acl.lookup(&tuple, Direction::Rx);
        assert_eq!(rx.decision, Decision::Drop);
        assert!(rx.stateful);
        let tx = acl.lookup(&tuple, Direction::Tx);
        assert_eq!(tx.decision, Decision::Accept);
        assert!(tx.stateful);
        assert!(acl.is_empty());
    }

    #[test]
    fn direction_scoped_rules_only_match_their_direction() {
        let mut acl = AclTable::security_group();
        acl.insert(AclRule {
            direction: Some(Direction::Rx),
            dst_ports: PortRange::only(22),
            ..AclRule::catch_all(1, Decision::Accept, false)
        });
        let ssh = t(Ipv4Addr::new(9, 9, 9, 9), 5, Ipv4Addr::new(10, 0, 0, 1), 22);
        assert_eq!(acl.lookup(&ssh, Direction::Rx).decision, Decision::Accept);
        // The same tuple as egress misses the RX-scoped rule and falls to
        // the TX default (accept, stateful).
        let v = acl.lookup(&ssh, Direction::Tx);
        assert_eq!(v.decision, Decision::Accept);
        assert!(v.stateful);
    }

    #[test]
    fn memory_scales_with_rules() {
        let mut acl = AclTable::allow_all();
        assert_eq!(acl.memory_bytes(64), 0);
        for i in 0..10 {
            acl.insert(AclRule::catch_all(i, Decision::Accept, false));
        }
        assert_eq!(acl.memory_bytes(64), 640);
        acl.clear();
        assert_eq!(acl.memory_bytes(64), 0);
    }

    #[test]
    fn equal_priority_is_stable_insertion_order() {
        let mut acl = table(Decision::Drop, Decision::Drop, false);
        acl.insert(AclRule {
            src: (Ipv4Addr::new(10, 0, 0, 0), 8),
            ..AclRule::catch_all(5, Decision::Accept, false)
        });
        acl.insert(AclRule {
            src: (Ipv4Addr::new(10, 0, 0, 0), 8),
            ..AclRule::catch_all(5, Decision::Drop, false)
        });
        // The first-inserted accept wins at equal priority.
        let v = acl.lookup(
            &t(Ipv4Addr::new(10, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
            Direction::Tx,
        );
        assert_eq!(v.decision, Decision::Accept);
    }
}

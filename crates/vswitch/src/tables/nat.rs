//! The NAT table: source-address rewriting for NAT-gateway vNICs.
//!
//! A NAT gateway (one of the paper's three evaluated middleboxes, §6.3.1)
//! rewrites tenant-private sources to allocated public addresses. The
//! mapping rule is stateless tenant configuration — which private prefix
//! maps to which public address — so it offloads to FEs like any other
//! rule table; per-connection port state stays in the session table.

use nezha_types::Ipv4Addr;
use serde::{Deserialize, Serialize};

/// One source-NAT rule: a private prefix rewritten to a public address.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NatRule {
    /// Matched private source prefix.
    pub src_prefix: (Ipv4Addr, u8),
    /// Public address substituted for the source.
    pub public: Ipv4Addr,
}

/// The NAT rule table (first match wins, most-specific-first by insertion
/// discipline of the controller).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NatTable {
    rules: Vec<NatRule>,
}

impl NatTable {
    /// An empty table (no NAT).
    pub fn new() -> Self {
        NatTable::default()
    }

    /// Adds a rule.
    pub fn insert(&mut self, rule: NatRule) {
        self.rules.push(rule);
    }

    /// The rewrite for `src`, if any rule covers it.
    pub fn lookup(&self, src: Ipv4Addr) -> Option<Ipv4Addr> {
        self.rules
            .iter()
            .find(|r| src.in_prefix(r.src_prefix.0, r.src_prefix.1))
            .map(|r| r.public)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules exist.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Memory footprint under the given per-rule cost.
    pub fn memory_bytes(&self, per_rule: u64) -> u64 {
        self.rules.len() as u64 * per_rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_match_rewrites() {
        let mut nat = NatTable::new();
        nat.insert(NatRule {
            src_prefix: (Ipv4Addr::new(10, 1, 0, 0), 16),
            public: Ipv4Addr::new(203, 0, 113, 1),
        });
        nat.insert(NatRule {
            src_prefix: (Ipv4Addr::new(10, 0, 0, 0), 8),
            public: Ipv4Addr::new(203, 0, 113, 2),
        });
        assert_eq!(
            nat.lookup(Ipv4Addr::new(10, 1, 5, 5)),
            Some(Ipv4Addr::new(203, 0, 113, 1))
        );
        assert_eq!(
            nat.lookup(Ipv4Addr::new(10, 2, 5, 5)),
            Some(Ipv4Addr::new(203, 0, 113, 2))
        );
        assert_eq!(nat.lookup(Ipv4Addr::new(192, 168, 0, 1)), None);
    }

    #[test]
    fn accounting() {
        let mut nat = NatTable::new();
        assert!(nat.is_empty());
        nat.insert(NatRule {
            src_prefix: (Ipv4Addr::new(10, 0, 0, 0), 8),
            public: Ipv4Addr::new(1, 1, 1, 1),
        });
        assert_eq!(nat.len(), 1);
        assert_eq!(nat.memory_bytes(32), 32);
    }
}

//! # nezha-vswitch
//!
//! A faithful model of the SmartNIC-accelerated vSwitch the Nezha paper
//! builds on (its Fig. 1): per-vNIC **rule tables** queried on the slow
//! path, a bidirectional **session table** caching pre-actions and holding
//! session state on the fast path, stateful NFs expressed as
//! `Action = func(pkt, rules, states)`, and explicit CPU/memory resource
//! accounting against the SmartNIC's budgets.
//!
//! The crate is deliberately role-agnostic: the same [`VSwitch`] object
//! serves as a traditional local vSwitch (the baseline), as a Nezha vNIC
//! **backend** (holding only states), and as a Nezha **frontend** (holding
//! only rule tables and cached flows) — `nezha-core` composes these roles
//! from the primitives exposed here, mirroring the paper's claim that
//! Nezha modifies less than 5% of the vSwitch code (§6.4).
//!
//! ## Module map
//!
//! * [`config`] — every calibration constant of the resource model;
//! * [`tables`] — the rule tables: stateful ACL, VXLAN route (LPM), QoS
//!   meter, NAT, statistics policy, and the vNIC→server mapping;
//! * [`vnic`] — a vNIC: its tables, overlay address, and size profile;
//! * [`session`] — the bidirectional session table with aging (including
//!   the short SYN aging of §7.3);
//! * [`pipeline`] — slow-path lookup (with cycle costing) and fast-path
//!   `process_pkt(pre_actions, state)`;
//! * [`stage`] — the pipeline as typed, composable stage graphs:
//!   combinators ([`stage::seq`], [`stage::branch`], [`stage::tee`],
//!   [`stage::guard`]), the compiled [`StageGraph`], graph-derived cost
//!   plans;
//! * [`vswitch`] — the vSwitch facade: resource enforcement + driving
//!   the compiled graph.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod pipeline;
pub mod session;
pub mod stage;
pub mod tables;
mod telemetry;
pub mod vnic;
pub mod vswitch;

pub use config::{CostModel, VSwitchConfig};
pub use pipeline::{finalize_with_state, process_pkt, slow_path_lookup, update_state};
pub use pipeline::{LookupResult, PathTaken, ProcessOutcome, ProcessResult};
pub use session::{SessionEntry, SessionTable};
pub use stage::{
    CostSlot, PktCtx, PktGraph, Stage, StageCtx, StageGraph, StageVerdict, SwitchEnv, SwitchGraphs,
};
pub use tables::acl::{AclRule, AclTable, PortRange};
pub use tables::nat::NatTable;
pub use tables::policy::PolicyTable;
pub use tables::qos::QosTable;
pub use tables::route::RouteTable;
pub use tables::vnic_server::VnicServerMap;
pub use vnic::{Vnic, VnicProfile, VnicTables};
pub use vswitch::VSwitch;

//! # nezha-baselines
//!
//! The comparator architectures the paper positions Nezha against
//! (Table 2, §2.3, §8), implemented over the same resource models as the
//! Nezha stack so comparisons are apples-to-apples:
//!
//! * [`local`] — the traditional local-only vSwitch (the "before" in
//!   every gain computation);
//! * [`sirius`] — a Sirius-like dedicated DPU pool with primary/backup
//!   in-line state replication (packets ping-pong between the cards, so
//!   **new-connection capacity halves**) and bucket-based load balancing
//!   with state transfer for long-lived flows;
//! * [`tea`] — a Tea-like design keeping per-session state in remote
//!   DRAM servers: every state access from the switch pays a fabric RTT;
//! * [`sailfish`] — a Sailfish-like programmable-switch gateway that
//!   offloads **stateless** NFs only;
//! * [`features`] — the Table 2 qualitative feature matrix;
//! * [`cost`] — the Table 5 deployment-cost model;
//! * [`arch`] — the comparators expressed as alternative stage graphs
//!   over the Nezha datapath's combinators (`nezha_vswitch::stage`),
//!   which the capacity models above drive.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch;
pub mod cost;
pub mod features;
pub mod local;
pub mod sailfish;
pub mod sirius;
pub mod tea;

pub use arch::{ArchCtx, ArchGraph, ArchParams};
pub use cost::{DeploymentCost, ScaleOutTime};
pub use features::{FeatureMatrix, SystemFeatures};
pub use local::LocalOnly;
pub use sailfish::SailfishGateway;
pub use sirius::SiriusPool;
pub use tea::TeaSwitch;

//! A Sailfish-like programmable-switch gateway (§2.3.3).
//!
//! Sailfish offloads **stateless** NFs (e.g. VXLAN routing) to Tofino,
//! building a high-performance cloud gateway. With limited on-chip
//! memory it cannot host stateful NFs at cloud scale — the Table 2 row
//! that motivates Nezha's stateful support.

use crate::arch::{self, ArchCtx, ArchParams};
use nezha_vswitch::stage::StageVerdict;
use serde::{Deserialize, Serialize};

/// A Sailfish-like stateless gateway.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SailfishGateway {
    /// On-chip exact-match entries available for (stateless) tables.
    pub onchip_entries: u64,
}

impl SailfishGateway {
    /// A gateway with a typical Tofino-class table budget.
    pub fn tofino() -> Self {
        SailfishGateway {
            onchip_entries: 3_000_000,
        }
    }

    /// Whether an NF with the given statefulness can be offloaded at
    /// all: the [`arch::sailfish_graph`] statefulness branch either
    /// admits it or stops the pipeline. (The struct is `Copy`-plain and
    /// serde-visible, so the graph is built here rather than stored.)
    pub fn can_offload(&self, stateful: bool) -> bool {
        let graph = arch::sailfish_graph();
        let mut ctx = ArchCtx {
            stateful,
            ..ArchCtx::default()
        };
        graph.eval(&mut ctx, &mut ArchParams::default()) == StageVerdict::Continue
    }

    /// Whether a stateless table of `entries` fits on-chip.
    pub fn fits(&self, entries: u64) -> bool {
        entries <= self.onchip_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stateless_only() {
        let g = SailfishGateway::tofino();
        assert!(g.can_offload(false));
        assert!(!g.can_offload(true));
    }

    #[test]
    fn table_budget_is_finite() {
        let g = SailfishGateway::tofino();
        assert!(g.fits(1_000_000));
        assert!(!g.fits(100_000_000), "cloud-scale session state cannot fit");
    }
}

//! A Sirius-like dedicated DPU pool (§2.3.3, §8).
//!
//! Sirius steers a high-demand vNIC's processing to a shared pool of
//! high-performance DPUs. Two costs distinguish it from Nezha:
//!
//! 1. **In-line state replication**: "Sirius ping-pongs packets that
//!    change states between the primary and secondary cards … such
//!    in-line state replication limits the achievable CPS to only half of
//!    the total capacity of the two cards."
//! 2. **Bucket-based load balancing with state transfer**: flows hash
//!    into a fixed number of buckets assigned to cards; moving load
//!    reassigns buckets, and long-lived flows' state must transfer.
//!
//! And one cost Nezha does not have at all: the pool is **new hardware**.

use crate::arch::{self, ArchCtx, ArchParams};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The replication graph an instantiated pool carries (serde skips the
/// compiled graph — it is a pure function of the architecture, not of
/// the pool's parameters).
fn replication_graph() -> Arc<arch::ArchGraph> {
    Arc::new(arch::sirius_graph())
}

/// A Sirius-like DPU pool.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SiriusPool {
    /// Number of DPU cards (must be even: primary/secondary pairs).
    pub cards: usize,
    /// Per-card new-connection capacity (their DPUs are powerful).
    pub card_cps: f64,
    /// Per-card session-table capacity (entries).
    pub card_sessions: u64,
    /// Hash buckets used for load distribution.
    pub buckets: u32,
    /// Current bucket→card-pair assignment.
    assignment: Vec<usize>,
    /// The connection graph (primary process + guarded in-line
    /// replication hop), compiled once at construction.
    #[serde(skip, default = "replication_graph")]
    graph: Arc<arch::ArchGraph>,
}

impl SiriusPool {
    /// Builds a pool of `cards` DPUs (rounded down to pairs) with a
    /// default 256-bucket map.
    pub fn new(cards: usize, card_cps: f64, card_sessions: u64) -> Self {
        let pairs = (cards / 2).max(1);
        let buckets = 256;
        let assignment = (0..buckets).map(|b| b as usize % pairs).collect();
        SiriusPool {
            cards: pairs * 2,
            card_cps,
            card_sessions,
            buckets,
            assignment,
            graph: replication_graph(),
        }
    }

    /// Evaluates one (stateful) connection event against the compiled
    /// replication graph: total cycle units, extra fabric packets, and
    /// state copies for a connection whose primary share costs one unit.
    fn conn_footprint(&self) -> ArchCtx {
        let mut ctx = ArchCtx::stateful();
        let mut params = ArchParams {
            card_conn_cycles: 1,
            replication_packets: 8,
            ..ArchParams::default()
        };
        self.graph.eval(&mut ctx, &mut params);
        ctx
    }

    /// Number of primary/secondary pairs.
    pub fn pairs(&self) -> usize {
        self.cards / 2
    }

    /// Aggregate CPS capacity. **Half** the raw card total: every new
    /// connection's state is replicated in-line by ping-ponging the
    /// packet between the pair, consuming both cards' cycles (§2.3.3).
    /// The divisor is the graph's cycle footprint (2 units: primary +
    /// replication hop), not a hand-written constant.
    pub fn cps_capacity(&self) -> f64 {
        self.cards as f64 * self.card_cps / self.conn_footprint().cycles as f64
    }

    /// Raw CPS the same silicon would deliver without in-line replication
    /// (what Nezha-style statelessness would unlock).
    pub fn cps_capacity_unreplicated(&self) -> f64 {
        self.cards as f64 * self.card_cps
    }

    /// Session capacity: state is held once per copy the graph records
    /// (primary + secondary).
    pub fn session_capacity(&self) -> u64 {
        self.cards as u64 * self.card_sessions / self.conn_footprint().state_copies as u64
    }

    /// The pair serving a flow hash.
    pub fn pair_of(&self, flow_hash: u64) -> usize {
        self.assignment[(flow_hash % self.buckets as u64) as usize]
    }

    /// Rebalances: moves `n` buckets from the most- to the least-loaded
    /// pair (the paper's elegant-but-stateful mechanism). Returns the
    /// number of *long-lived* sessions whose state must transfer, given
    /// the caller's estimate of long-lived sessions per bucket.
    pub fn move_buckets(&mut self, n: u32, long_lived_per_bucket: u64) -> u64 {
        if self.pairs() < 2 {
            return 0;
        }
        // Count buckets per pair.
        let mut counts = vec![0u32; self.pairs()];
        for &p in &self.assignment {
            counts[p] += 1;
        }
        let src = (0..self.pairs()).max_by_key(|&p| counts[p]).unwrap();
        let dst = (0..self.pairs()).min_by_key(|&p| counts[p]).unwrap();
        if src == dst {
            return 0;
        }
        let mut moved = 0;
        for a in self.assignment.iter_mut() {
            if moved == n {
                break;
            }
            if *a == src {
                *a = dst;
                moved += 1;
            }
        }
        // "State transfer … is only necessary for long-lived flows."
        moved as u64 * long_lived_per_bucket
    }

    /// Per-connection extra packets on the pool fabric from in-line
    /// replication: each state-changing packet crosses to the secondary
    /// and back. A TCP_CRR connection changes state on SYN, final ACK of
    /// the handshake, and both FINs ⇒ 4 state changes ⇒ 8 extra
    /// traversals, accumulated by the graph's replication stage.
    pub fn replication_packets_per_conn(&self) -> u32 {
        self.conn_footprint().fabric_packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> SiriusPool {
        SiriusPool::new(8, 1_000_000.0, 10_000_000)
    }

    #[test]
    fn cps_halves_under_inline_replication() {
        let p = pool();
        assert_eq!(p.cps_capacity(), 4_000_000.0);
        assert_eq!(p.cps_capacity_unreplicated(), 8_000_000.0);
        assert_eq!(p.cps_capacity_unreplicated() / p.cps_capacity(), 2.0);
    }

    #[test]
    fn sessions_stored_twice() {
        let p = pool();
        assert_eq!(p.session_capacity(), 40_000_000);
    }

    #[test]
    fn odd_card_counts_round_to_pairs() {
        let p = SiriusPool::new(5, 1.0, 1);
        assert_eq!(p.cards, 4);
        assert_eq!(p.pairs(), 2);
    }

    #[test]
    fn bucket_moves_transfer_longlived_state_only() {
        let mut p = pool();
        // Unbalance the pool first.
        for a in p.assignment.iter_mut() {
            *a = 0;
        }
        let transferred = p.move_buckets(16, 250);
        assert_eq!(transferred, 16 * 250);
        // The moved buckets now resolve to a different pair.
        let mut seen_dst = 0;
        for b in 0..p.buckets as u64 {
            if p.pair_of(b) != 0 {
                seen_dst += 1;
            }
        }
        assert_eq!(seen_dst, 16);
    }

    #[test]
    fn flow_to_pair_is_stable() {
        let p = pool();
        assert_eq!(p.pair_of(12345), p.pair_of(12345));
        assert_eq!(p.replication_packets_per_conn(), 8);
    }
}

//! The Table 2 feature matrix: what each remote-resource-pool design
//! offers.
//!
//! | | Stateful NF | No remote state | No new hardware |
//! |---|---|---|---|
//! | Sailfish | ✗ | ✓ | ✗ |
//! | Sirius | ✓ | ✗ | ✗ |
//! | Tea | ✓ | ✗ | ✗ |
//! | Nezha | ✓ | ✓ | ✓ |

use serde::{Deserialize, Serialize};

/// Feature flags of one design (Table 2's three columns).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SystemFeatures {
    /// Design name.
    pub name: &'static str,
    /// Supports stateful NFs.
    pub stateful_nf: bool,
    /// Avoids maintaining state at the remote pool (no replica sync, no
    /// state transfer on rebalancing).
    pub no_remote_state: bool,
    /// Introduces no additional hardware into the data center.
    pub no_new_hardware: bool,
}

/// The full Table 2 matrix.
#[derive(Clone, Copy, Debug)]
pub struct FeatureMatrix;

impl FeatureMatrix {
    /// The four rows of Table 2.
    pub fn rows() -> [SystemFeatures; 4] {
        [
            SystemFeatures {
                name: "Sailfish",
                stateful_nf: false,
                no_remote_state: true,
                no_new_hardware: false,
            },
            SystemFeatures {
                name: "Sirius",
                stateful_nf: true,
                no_remote_state: false,
                no_new_hardware: false,
            },
            SystemFeatures {
                name: "Tea",
                stateful_nf: true,
                no_remote_state: false,
                no_new_hardware: false,
            },
            SystemFeatures {
                name: "Nezha",
                stateful_nf: true,
                no_remote_state: true,
                no_new_hardware: true,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_nezha_has_all_three() {
        let rows = FeatureMatrix::rows();
        let all3 = |r: &SystemFeatures| r.stateful_nf && r.no_remote_state && r.no_new_hardware;
        assert_eq!(rows.iter().filter(|r| all3(r)).count(), 1);
        assert!(all3(rows.iter().find(|r| r.name == "Nezha").unwrap()));
    }

    #[test]
    fn matrix_matches_table2() {
        let rows = FeatureMatrix::rows();
        let get = |n: &str| *rows.iter().find(|r| r.name == n).unwrap();
        assert!(!get("Sailfish").stateful_nf && get("Sailfish").no_remote_state);
        assert!(get("Sirius").stateful_nf && !get("Sirius").no_remote_state);
        assert!(get("Tea").stateful_nf && !get("Tea").no_remote_state);
        assert!(rows.iter().filter(|r| !r.no_new_hardware).count() == 3);
    }
}

//! The Table 5 deployment-cost model.
//!
//! Introducing new hardware (Sailfish's Tofino gateways, Sirius's DPU
//! pool) costs chip selection, design, prototyping, security assessment,
//! performance work, ongoing iteration staffing — and months of lead time
//! for every new region. Nezha reuses running SmartNICs and modifies
//! "less than 5% of the existing vSwitch code", so its entire cost is a
//! modest software effort and a gray release.

use serde::{Deserialize, Serialize};

/// Time to scale the system into a new region / cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ScaleOutTime {
    /// Fastest case, in days.
    pub min_days: u32,
    /// Slowest case (e.g. device procurement involved), in days.
    pub max_days: u32,
}

/// One system's deployment cost (one Table 5 column).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DeploymentCost {
    /// Display name.
    pub name: &'static str,
    /// Hardware development, person-months.
    pub hardware_pm: u32,
    /// Software development, person-months.
    pub software_pm: u32,
    /// Extra human effort for ongoing iteration, person-months.
    pub iteration_pm: u32,
    /// Time required to scale out to a new region.
    pub scale_out: ScaleOutTime,
}

impl DeploymentCost {
    /// Table 5's Sailfish column, representing solutions that introduce
    /// new devices.
    pub fn sailfish() -> Self {
        DeploymentCost {
            name: "Sailfish",
            hardware_pm: 100,
            software_pm: 48,
            iteration_pm: 20,
            scale_out: ScaleOutTime {
                min_days: 30,
                max_days: 90,
            },
        }
    }

    /// Table 5's Nezha column.
    pub fn nezha() -> Self {
        DeploymentCost {
            name: "Nezha",
            hardware_pm: 0,
            software_pm: 15,
            iteration_pm: 0,
            scale_out: ScaleOutTime {
                min_days: 1,
                max_days: 7,
            },
        }
    }

    /// Total person-months.
    pub fn total_pm(&self) -> u32 {
        self.hardware_pm + self.software_pm + self.iteration_pm
    }
}

/// The development-effort ratio the paper headlines: "Deploying Nezha …
/// requires only 10% of the development effort compared to Sailfish".
pub fn nezha_effort_ratio() -> f64 {
    DeploymentCost::nezha().total_pm() as f64 / DeploymentCost::sailfish().total_pm() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_values() {
        let s = DeploymentCost::sailfish();
        let n = DeploymentCost::nezha();
        assert_eq!(s.total_pm(), 168);
        assert_eq!(n.total_pm(), 15);
        assert_eq!(n.hardware_pm, 0);
        assert_eq!(n.iteration_pm, 0);
        assert_eq!(
            s.scale_out,
            ScaleOutTime {
                min_days: 30,
                max_days: 90
            }
        );
        assert_eq!(
            n.scale_out,
            ScaleOutTime {
                min_days: 1,
                max_days: 7
            }
        );
    }

    #[test]
    fn effort_ratio_is_about_ten_percent() {
        let r = nezha_effort_ratio();
        assert!((0.05..0.15).contains(&r), "ratio {r}");
    }
}

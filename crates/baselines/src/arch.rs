//! The comparator architectures expressed as **alternative stage graphs**
//! over the same combinators as the Nezha datapath
//! ([`nezha_vswitch::stage`]).
//!
//! Table 2's columns differ precisely in how they *compose* the same
//! primitive work items — a rule lookup, a fast-path pass, a state
//! access, a replication hop — so each comparator is written here as a
//! different graph over a shared [`ArchCtx`] accounting context:
//!
//! * [`local_graph`] — one slow-path pass then the fast-path remainder
//!   of a TCP_CRR exchange (the traditional local vSwitch);
//! * [`sirius_graph`] — primary processing plus an in-line replication
//!   hop **guarded on statefulness** (the ping-pong that halves CPS);
//! * [`tea_graph`] — a state access **branched on locality** (on-chip
//!   SRAM vs a remote-DRAM round trip);
//! * [`sailfish_graph`] — an offload decision **branched on
//!   statefulness** (stateless NFs offload, stateful ones stop).
//!
//! The capacity models in [`local`](crate::local),
//! [`sirius`](crate::sirius), [`tea`](crate::tea), and
//! [`sailfish`](crate::sailfish) drive these graphs instead of inlining
//! the arithmetic, so every "before Nezha" number is derived from the
//! same combinator vocabulary as the Nezha pipeline itself.

use nezha_vswitch::stage::{branch, guard, seq, stage, Stage, StageCtx, StageGraph, StageVerdict};

/// Per-event accounting context for one comparator graph walk: a modeled
/// connection (local, Sirius), one state access (Tea), or one offload
/// decision (Sailfish). Stages only ever *accumulate* into it.
#[derive(Clone, Copy, Debug, Default)]
pub struct ArchCtx {
    /// Whether the modeled event involves session-stateful processing.
    pub stateful: bool,
    /// Whether the flow's state lives off-chip (Tea).
    pub offchip: bool,
    /// Processing cycles consumed across the architecture's cards.
    pub cycles: u64,
    /// Extra fabric traversals the architecture generates for the event.
    pub fabric_packets: u32,
    /// Copies of the session state stored across the system.
    pub state_copies: u32,
    /// Accumulated state-access latency, in seconds.
    pub latency_s: f64,
}

impl ArchCtx {
    /// A stateful-event context (connections; state-changing packets).
    pub fn stateful() -> Self {
        ArchCtx {
            stateful: true,
            ..ArchCtx::default()
        }
    }
}

/// Model parameters the comparator stages read: the graph environment.
/// Callers load the numbers of the concrete model under evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ArchParams {
    /// One slow-path (rule lookup) pass, cycles.
    pub slow_cycles: u64,
    /// One fast-path packet, cycles.
    pub fast_cycles: u64,
    /// Fast-path packets in the remainder of a TCP_CRR exchange.
    pub crr_fast_packets: u64,
    /// One card's share of a connection on a Sirius pair, cycles.
    pub card_conn_cycles: u64,
    /// Extra fabric traversals per replicated connection (Sirius).
    pub replication_packets: u32,
    /// On-chip state access, seconds (Tea).
    pub onchip_access_s: f64,
    /// Remote-DRAM state access round trip, seconds (Tea).
    pub dram_rtt_s: f64,
}

impl StageCtx for ArchCtx {
    type Env<'a> = ArchParams;
}

/// A compiled comparator graph.
pub type ArchGraph = StageGraph<ArchCtx>;

fn is_stateful(c: &ArchCtx) -> bool {
    c.stateful
}

fn is_offchip(c: &ArchCtx) -> bool {
    c.offchip
}

/// First packet of a connection: one full rule-pipeline pass.
#[derive(Debug)]
struct SlowPathPass;
impl Stage<ArchCtx> for SlowPathPass {
    fn name(&self) -> &'static str {
        "slow-path-pass"
    }
    fn eval(&self, ctx: &mut ArchCtx, env: &mut ArchParams) -> StageVerdict {
        ctx.cycles += env.slow_cycles;
        ctx.state_copies += 1;
        StageVerdict::Continue
    }
}

/// The cached-flow remainder of a TCP_CRR exchange.
#[derive(Debug)]
struct FastPathRemainder;
impl Stage<ArchCtx> for FastPathRemainder {
    fn name(&self) -> &'static str {
        "fast-path-remainder"
    }
    fn eval(&self, ctx: &mut ArchCtx, env: &mut ArchParams) -> StageVerdict {
        ctx.cycles += env.fast_cycles * env.crr_fast_packets;
        StageVerdict::Continue
    }
}

/// Primary-card processing of a connection on a Sirius pair.
#[derive(Debug)]
struct PrimaryProcess;
impl Stage<ArchCtx> for PrimaryProcess {
    fn name(&self) -> &'static str {
        "primary-process"
    }
    fn eval(&self, ctx: &mut ArchCtx, env: &mut ArchParams) -> StageVerdict {
        ctx.cycles += env.card_conn_cycles;
        ctx.state_copies += 1;
        StageVerdict::Continue
    }
}

/// The in-line replication hop: the secondary card re-processes every
/// state-changing packet, consuming its own cycles and fabric crossings.
#[derive(Debug)]
struct InlineReplicate;
impl Stage<ArchCtx> for InlineReplicate {
    fn name(&self) -> &'static str {
        "inline-replicate"
    }
    fn eval(&self, ctx: &mut ArchCtx, env: &mut ArchParams) -> StageVerdict {
        ctx.cycles += env.card_conn_cycles;
        ctx.fabric_packets += env.replication_packets;
        ctx.state_copies += 1;
        StageVerdict::Continue
    }
}

/// An on-chip (SRAM) state access.
#[derive(Debug)]
struct SramFetch;
impl Stage<ArchCtx> for SramFetch {
    fn name(&self) -> &'static str {
        "sram-fetch"
    }
    fn eval(&self, ctx: &mut ArchCtx, env: &mut ArchParams) -> StageVerdict {
        ctx.latency_s += env.onchip_access_s;
        StageVerdict::Continue
    }
}

/// A remote-DRAM state access: one fabric round trip.
#[derive(Debug)]
struct DramFetch;
impl Stage<ArchCtx> for DramFetch {
    fn name(&self) -> &'static str {
        "dram-fetch"
    }
    fn eval(&self, ctx: &mut ArchCtx, env: &mut ArchParams) -> StageVerdict {
        ctx.latency_s += env.dram_rtt_s;
        ctx.fabric_packets += 2;
        StageVerdict::Continue
    }
}

/// Stateful NFs cannot be hosted on the gateway: the pipeline stops.
#[derive(Debug)]
struct RejectStateful;
impl Stage<ArchCtx> for RejectStateful {
    fn name(&self) -> &'static str {
        "reject-stateful"
    }
    fn eval(&self, _ctx: &mut ArchCtx, _env: &mut ArchParams) -> StageVerdict {
        StageVerdict::Stop
    }
}

/// A stateless NF offloads onto the on-chip tables.
#[derive(Debug)]
struct OffloadStateless;
impl Stage<ArchCtx> for OffloadStateless {
    fn name(&self) -> &'static str {
        "offload-stateless"
    }
    fn eval(&self, _ctx: &mut ArchCtx, _env: &mut ArchParams) -> StageVerdict {
        StageVerdict::Continue
    }
}

/// The local-only vSwitch's connection graph: slow-path first packet,
/// then the fast-path remainder of the exchange.
pub fn local_graph() -> ArchGraph {
    StageGraph::compile(seq(vec![stage(SlowPathPass), stage(FastPathRemainder)]))
        .expect("local comparator graph must compile")
}

/// Sirius's connection graph: primary processing plus the in-line
/// replication hop for stateful traffic — which is *all* connection
/// setup, hence the CPS halving (§2.3.3).
pub fn sirius_graph() -> ArchGraph {
    StageGraph::compile(seq(vec![
        stage(PrimaryProcess),
        guard("inline-replication", is_stateful, stage(InlineReplicate)),
    ]))
    .expect("sirius comparator graph must compile")
}

/// Tea's state-access graph: locality decides between an SRAM probe and
/// a remote-DRAM round trip.
pub fn tea_graph() -> ArchGraph {
    StageGraph::compile(branch(
        "state-locality",
        is_offchip,
        stage(DramFetch),
        stage(SramFetch),
    ))
    .expect("tea comparator graph must compile")
}

/// Sailfish's offload-decision graph: statefulness gates admission onto
/// the programmable gateway.
pub fn sailfish_graph() -> ArchGraph {
    StageGraph::compile(branch(
        "statefulness",
        is_stateful,
        stage(RejectStateful),
        stage(OffloadStateless),
    ))
    .expect("sailfish comparator graph must compile")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_compile_and_inventory_their_stages() {
        assert!(local_graph().contains_stage("slow-path-pass"));
        assert!(sirius_graph().contains_stage("inline-replicate"));
        assert!(tea_graph().contains_stage("dram-fetch"));
        assert!(sailfish_graph().contains_stage("reject-stateful"));
    }

    #[test]
    fn sirius_guard_skips_replication_for_stateless_events() {
        let g = sirius_graph();
        let mut p = ArchParams {
            card_conn_cycles: 1,
            replication_packets: 8,
            ..ArchParams::default()
        };
        let mut on = ArchCtx::stateful();
        g.eval(&mut on, &mut p);
        assert_eq!((on.cycles, on.fabric_packets, on.state_copies), (2, 8, 2));
        let mut off = ArchCtx::default();
        g.eval(&mut off, &mut p);
        assert_eq!(
            (off.cycles, off.fabric_packets, off.state_copies),
            (1, 0, 1)
        );
    }

    #[test]
    fn tea_branch_selects_by_locality() {
        let g = tea_graph();
        let mut p = ArchParams {
            onchip_access_s: 1e-9,
            dram_rtt_s: 1e-6,
            ..ArchParams::default()
        };
        let mut near = ArchCtx::default();
        g.eval(&mut near, &mut p);
        assert_eq!((near.latency_s, near.fabric_packets), (1e-9, 0));
        let mut far = ArchCtx {
            offchip: true,
            ..ArchCtx::default()
        };
        g.eval(&mut far, &mut p);
        assert_eq!((far.latency_s, far.fabric_packets), (1e-6, 2));
    }

    #[test]
    fn sailfish_stops_only_stateful_offloads() {
        let g = sailfish_graph();
        let mut p = ArchParams::default();
        assert_eq!(g.eval(&mut ArchCtx::stateful(), &mut p), StageVerdict::Stop);
        assert_eq!(
            g.eval(&mut ArchCtx::default(), &mut p),
            StageVerdict::Continue
        );
    }
}

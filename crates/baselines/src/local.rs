//! The traditional local-only vSwitch baseline.
//!
//! Wraps the analytic capacity formulas of one SmartNIC in one place so
//! every experiment computes "before Nezha" numbers identically: CPS from
//! the slow-path cycle cost, #concurrent flows from the session-entry
//! footprint, #vNICs from the rule-table footprint.

use crate::arch::{self, ArchCtx, ArchParams};
use nezha_types::{Ipv4Addr, ServerId, VnicId, VpcId};
use nezha_vswitch::config::VSwitchConfig;
use nezha_vswitch::vnic::{Vnic, VnicProfile};
use std::sync::Arc;

/// A local-only vSwitch capacity model for one vNIC profile.
#[derive(Clone, Debug)]
pub struct LocalOnly {
    /// Host configuration.
    pub host: VSwitchConfig,
    /// The vNIC profile under load.
    pub profile: VnicProfile,
    vnic: Vnic,
    /// The connection graph (slow-path pass → fast-path remainder),
    /// compiled once at construction like the vSwitch's own graphs.
    graph: Arc<arch::ArchGraph>,
}

impl LocalOnly {
    /// Builds the baseline for a host + profile pair.
    pub fn new(host: VSwitchConfig, profile: VnicProfile) -> Self {
        let vnic = Vnic::new(
            VnicId(0),
            VpcId(0),
            Ipv4Addr::new(10, 0, 0, 1),
            profile,
            ServerId(0),
        );
        LocalOnly {
            host,
            profile,
            vnic,
            graph: Arc::new(arch::local_graph()),
        }
    }

    /// CPS capacity: one slow-path pass per connection (the first packet
    /// caches the bidirectional flow) plus the fast-path remainder of a
    /// TCP_CRR exchange — the connection's cycle footprint is what the
    /// compiled [`arch::local_graph`] accumulates.
    pub fn cps_capacity(&self, pkt_bytes: usize) -> f64 {
        let mut ctx = ArchCtx::stateful();
        let mut params = ArchParams {
            slow_cycles: self.vnic.slow_path_cycles(&self.host.costs, pkt_bytes),
            fast_cycles: self.host.costs.fast_path_cycles(pkt_bytes),
            crr_fast_packets: 6,
            ..ArchParams::default()
        };
        self.graph.eval(&mut ctx, &mut params);
        debug_assert_eq!(
            ctx.cycles,
            self.vnic.crr_cycles(&self.host.costs, pkt_bytes)
        );
        self.host.capacity_hz() / ctx.cycles as f64
    }

    /// Concurrent-flow capacity given a session-table memory budget.
    pub fn flow_capacity(&self, session_memory: u64) -> f64 {
        let m = self.host.memory;
        session_memory as f64 / (m.flow_entry + m.state_slab) as f64
    }

    /// Number of vNICs of this profile the host can fit alongside a
    /// deployed session table.
    pub fn vnic_capacity(&self, session_memory: u64) -> u64 {
        let tables = self.vnic.table_memory(&self.host.memory);
        (self.host.table_memory.saturating_sub(session_memory) / tables).max(1)
    }

    /// Bytes of rule tables this profile occupies.
    pub fn table_bytes(&self) -> u64 {
        self.vnic.table_memory(&self.host.memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_matches_paper_envelope() {
        let b = LocalOnly::new(VSwitchConfig::default(), VnicProfile::default());
        let cps = b.cps_capacity(64);
        assert!(
            (80_000.0..400_000.0).contains(&cps),
            "baseline CPS {cps} outside O(100K)"
        );
        // 1 GB session budget at 164 B/entry ≈ 6.5M flows.
        let flows = b.flow_capacity(1 << 30);
        assert!((5e6..8e6).contains(&flows), "flows {flows}");
    }

    #[test]
    fn middlebox_profiles_are_slower_per_connection() {
        let host = VSwitchConfig::middlebox_host();
        let plain = LocalOnly::new(host, VnicProfile::default()).cps_capacity(64);
        let lb = LocalOnly::new(host, VnicProfile::load_balancer()).cps_capacity(64);
        let nat = LocalOnly::new(host, VnicProfile::nat_gateway()).cps_capacity(64);
        let tr = LocalOnly::new(host, VnicProfile::transit_router()).cps_capacity(64);
        // §6.3.1: the more complex the lookup, the lower the CPS —
        // NAT < LB < TR < plain.
        assert!(
            nat < lb && lb < tr && tr < plain,
            "nat={nat} lb={lb} tr={tr} plain={plain}"
        );
    }

    #[test]
    fn middlebox_hosts_fit_only_a_few_middlebox_vnics() {
        let b = LocalOnly::new(
            VSwitchConfig::middlebox_host(),
            VnicProfile::load_balancer(),
        );
        let n = b.vnic_capacity(1 << 30);
        // §2.2.2: "#vNICs ... drastically reduced to just a few".
        assert!(n < 30, "fit {n} LB vNICs");
        assert!(b.table_bytes() > 50 << 20, "LB tables should be O(100MB)");
    }
}

//! A Tea-like switch + remote-DRAM state store (§2.3.3, §8).
//!
//! Tea extends a programmable switch's tiny on-chip memory with DRAM on
//! ordinary servers: state that does not fit on-chip is fetched across
//! the fabric. The architectural costs relative to Nezha: per-access RTT
//! for off-chip state, a DRAM-server bandwidth ceiling, and — like
//! Sirius — **new components in the system** (the DRAM servers).

use crate::arch::{self, ArchCtx, ArchParams};
use nezha_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A Tea-like state-external switch.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TeaSwitch {
    /// On-chip state entries that fit in SRAM.
    pub onchip_sessions: u64,
    /// Entries available in the remote DRAM pool.
    pub dram_sessions: u64,
    /// Pipeline lookup time for on-chip state.
    pub onchip_access: SimDuration,
    /// Round trip to the DRAM server for off-chip state.
    pub dram_rtt: SimDuration,
    /// DRAM server access ceiling (lookups per second).
    pub dram_rate: f64,
}

impl Default for TeaSwitch {
    fn default() -> Self {
        TeaSwitch {
            onchip_sessions: 2_000_000, // tens of MB of SRAM at ~20 B/entry
            dram_sessions: 500_000_000,
            onchip_access: SimDuration::from_nanos(400),
            dram_rtt: SimDuration::from_micros(8),
            dram_rate: 40_000_000.0,
        }
    }
}

impl TeaSwitch {
    /// Total sessions the design can hold.
    pub fn session_capacity(&self) -> u64 {
        self.onchip_sessions + self.dram_sessions
    }

    /// Fraction of state accesses that go off-chip for a working set of
    /// `sessions` (uniform access assumption).
    pub fn offchip_fraction(&self, sessions: u64) -> f64 {
        if sessions <= self.onchip_sessions {
            0.0
        } else {
            (sessions - self.onchip_sessions) as f64 / sessions as f64
        }
    }

    /// The latency of one state access at the given `offchip` locality,
    /// evaluated through the [`arch::tea_graph`] locality branch. The
    /// struct is `Copy`-plain (it travels through serde snapshots), so
    /// the graph is built here rather than stored.
    fn access_latency_s(&self, offchip: bool) -> f64 {
        let graph = arch::tea_graph();
        let mut ctx = ArchCtx {
            offchip,
            ..ArchCtx::default()
        };
        let mut params = ArchParams {
            onchip_access_s: self.onchip_access.as_secs_f64(),
            dram_rtt_s: self.dram_rtt.as_secs_f64(),
            ..ArchParams::default()
        };
        graph.eval(&mut ctx, &mut params);
        ctx.latency_s
    }

    /// Mean state-access latency for a working set of `sessions`: the
    /// off-chip fraction mixes the graph's two locality outcomes.
    pub fn mean_access_latency(&self, sessions: u64) -> SimDuration {
        let f = self.offchip_fraction(sessions);
        SimDuration::from_secs_f64(
            (1.0 - f) * self.access_latency_s(false) + f * self.access_latency_s(true),
        )
    }

    /// Packet-rate ceiling for a working set of `sessions`: off-chip
    /// accesses are bounded by the DRAM servers.
    pub fn pps_ceiling(&self, sessions: u64, switch_pps: f64) -> f64 {
        let f = self.offchip_fraction(sessions);
        if f == 0.0 {
            switch_pps
        } else {
            switch_pps.min(self.dram_rate / f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onchip_working_sets_are_fast() {
        let t = TeaSwitch::default();
        assert_eq!(t.offchip_fraction(1_000_000), 0.0);
        assert_eq!(t.mean_access_latency(1_000_000), t.onchip_access);
        assert_eq!(t.pps_ceiling(1_000_000, 1e9), 1e9);
    }

    #[test]
    fn latency_grows_with_working_set() {
        let t = TeaSwitch::default();
        let small = t.mean_access_latency(2_000_000);
        let big = t.mean_access_latency(200_000_000);
        assert!(big > small);
        // Nearly all accesses off-chip at 100x the SRAM size: latency
        // approaches the DRAM RTT.
        assert!(big > SimDuration::from_micros(7));
    }

    #[test]
    fn dram_rate_caps_throughput() {
        let t = TeaSwitch::default();
        // At 50% off-chip, the ceiling is dram_rate / 0.5.
        let sessions = t.onchip_sessions * 2;
        let cap = t.pps_ceiling(sessions, 1e9);
        assert!((cap - 80_000_000.0).abs() < 1.0, "cap {cap}");
    }

    #[test]
    fn capacity_is_sram_plus_dram() {
        let t = TeaSwitch::default();
        assert_eq!(t.session_capacity(), 502_000_000);
    }
}

//! [`HandlerCtx`]: the one place the datapath's cross-cutting plumbing
//! lives.
//!
//! Every BE/FE handler receives a `&mut HandlerCtx` and reaches metrics,
//! the packet-trace ring, the profiler, the fault engine, and the
//! CPU-charging model exclusively through it (lint rule D7 enforces
//! this). The handlers keep direct access to protocol state via
//! [`HandlerCtx::cl`] — split field borrows (`switches` vs `fes`) are
//! obtained with `let cl = &mut *ctx.cl;`.

use crate::cluster::Cluster;
use nezha_sim::profile::{Span, SpanId, StageHandle, StageSet};
use nezha_sim::resources::CpuOutcome;
use nezha_sim::time::SimTime;
use nezha_sim::trace::{DropReason, TraceEvent, TraceEventKind};
use nezha_types::{Action, Packet, ServerId};
use nezha_vswitch::pipeline;

/// Borrowed view of the cluster for one handler invocation: the packet's
/// current server, the arrival time, and the full cluster state.
///
/// The cross-cutting methods below are the *only* sanctioned route from
/// a datapath handler to telemetry, faults, and cycle charging.
pub(crate) struct HandlerCtx<'c> {
    /// The whole cluster; handlers use this for protocol state only.
    pub(crate) cl: &'c mut Cluster,
    /// The server whose vSwitch is processing the packet.
    pub(crate) server: ServerId,
    /// Arrival time of the packet being handled.
    pub(crate) now: SimTime,
}

/// A successful CPU charge: when the work finishes, and how many cycles
/// were actually consumed after gray-failure scaling.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Charge {
    /// Completion time of the charged work.
    pub(crate) done: SimTime,
    /// The scaled cycle count actually burned (profiler attribution).
    pub(crate) scaled: u64,
}

impl<'c> HandlerCtx<'c> {
    pub(crate) fn new(cl: &'c mut Cluster, server: ServerId, now: SimTime) -> Self {
        HandlerCtx { cl, server, now }
    }

    // ------------------------------------------------------------------
    // Arrival gate.
    // ------------------------------------------------------------------

    /// The arrival gate: dead server, blackholed link, scripted link
    /// fault. Returns `false` — after recording the drop and scheduling
    /// the retry — when the packet must be discarded.
    pub(crate) fn gate(&mut self, pkt: &Packet) -> bool {
        if !self.cl.alive[self.server.0 as usize] {
            self.drop_pkt(pkt, DropReason::PeerDown);
            return false;
        }
        if let (Some(src), Some(dst)) = (pkt.outer_src, pkt.outer_dst) {
            if self.cl.link_blackholed(src, dst) {
                self.drop_pkt(pkt, DropReason::PeerDown);
                return false;
            }
            // Scripted link faults: partitions drop deterministically,
            // (bursty) loss models sample the seeded fault RNG.
            if self.cl.faults.should_drop(src, dst) {
                self.cl.tel.inc(self.cl.tel.fault_link_drops);
                self.drop_pkt(pkt, DropReason::Fault);
                return false;
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Cycle charging.
    // ------------------------------------------------------------------

    /// Charges `cycles` against this server's vSwitch for `pkt`'s vNIC.
    /// On CPU overload the packet is lost (retry scheduled) and `None`
    /// is returned — the handler just returns.
    pub(crate) fn charge(&mut self, pkt: &Packet, cycles: u64) -> Option<Charge> {
        match self.charge_silent(pkt, cycles) {
            Some(c) => Some(c),
            None => {
                self.cl.lose_packet(pkt.trace, self.now);
                None
            }
        }
    }

    /// Like [`HandlerCtx::charge`] but an overload drop is *not* counted
    /// as a lost packet (best-effort traffic such as notifies, which are
    /// retried implicitly on the next miss).
    pub(crate) fn charge_silent(&mut self, pkt: &Packet, cycles: u64) -> Option<Charge> {
        let vs = &mut self.cl.switches[self.server.0 as usize];
        match vs.charge(self.now, pkt.vnic, cycles) {
            CpuOutcome::Dropped => None,
            CpuOutcome::Done { done_at } => Some(Charge {
                done: done_at,
                scaled: vs.scaled_cycles(cycles),
            }),
        }
    }

    /// The cluster's compiled stage graphs (cloned handle, so callers can
    /// keep it across the split borrows of `cl`).
    pub(crate) fn graphs(&self) -> std::sync::Arc<nezha_vswitch::SwitchGraphs> {
        std::sync::Arc::clone(&self.cl.graphs)
    }

    /// Reports cycles burned on this server for its *own* (BE) traffic.
    pub(crate) fn note_local_cycles(&mut self, cycles: u64) {
        self.cl.controller.note_local_cycles(self.server, cycles);
    }

    /// Reports cycles burned on this server on *behalf of others* (FE).
    pub(crate) fn note_remote_cycles(&mut self, cycles: u64) {
        self.cl.controller.note_remote_cycles(self.server, cycles);
    }

    // ------------------------------------------------------------------
    // Tracing and profiling.
    // ------------------------------------------------------------------

    /// Records one cluster-level trace event for `pkt` at this server.
    pub(crate) fn trace(&self, at: SimTime, pkt: &Packet, kind: TraceEventKind) {
        self.cl.trace_pkt(at, self.server, pkt, kind);
    }

    /// Whether profiling is on (so handlers can skip leaf assembly).
    pub(crate) fn profiler_enabled(&self) -> bool {
        self.cl.tel.profiler.is_enabled()
    }

    /// The pre-registered stage handles (interned once; lint rule D6).
    pub(crate) fn stages(&self) -> &StageSet {
        &self.cl.tel.stages
    }

    /// Records this handler's root span plus its cycle-bearing leaves;
    /// returns the root id for threading across the BE↔FE hop.
    pub(crate) fn span(
        &self,
        stage: StageHandle,
        pkt: &Packet,
        start: SimTime,
        end: SimTime,
        leaves: &[(StageHandle, u64)],
    ) -> Option<SpanId> {
        self.cl
            .tel
            .profile_handler(stage, pkt, self.server, start, end, leaves)
    }

    /// Records one explicit marker span (NSH encap/decap hop parents)
    /// under `parent`. Bytes/packets are not re-counted — the root span
    /// carries them.
    pub(crate) fn span_marker(
        &self,
        stage: StageHandle,
        parent: Option<SpanId>,
        pkt: &Packet,
        start: SimTime,
        end: SimTime,
        cycles: u64,
    ) -> Option<SpanId> {
        self.cl.tel.profiler.record(Span {
            stage,
            parent,
            trace: pkt.trace,
            server: self.server,
            vnic: pkt.vnic,
            start,
            end,
            cycles,
            bytes: 0,
            packets: 0,
        })
    }

    // ------------------------------------------------------------------
    // Drops and terminal accounting.
    // ------------------------------------------------------------------

    /// Full fault-drop sequence at arrival time: trace marker, profiler
    /// marker, lost-packet accounting (with retry).
    pub(crate) fn drop_pkt(&mut self, pkt: &Packet, reason: DropReason) {
        self.fault_drop_marker(self.now, pkt, reason);
        self.cl.lose_packet(pkt.trace, self.now);
    }

    /// Trace + profiler markers for a fault-discarded packet, *without*
    /// loss accounting (the caller decides whether the packet counts).
    pub(crate) fn fault_drop_marker(&self, at: SimTime, pkt: &Packet, reason: DropReason) {
        self.trace(at, pkt, TraceEventKind::Drop(reason));
        self.cl.tel.profile_fault_drop(pkt, self.server, at);
    }

    /// A packet arrived somewhere that cannot process it: count the
    /// misroute and lose the packet (retry scheduled).
    pub(crate) fn misroute(&mut self, pkt: &Packet) {
        self.cl.tel.inc(self.cl.tel.misroutes);
        self.cl.lose_packet(pkt.trace, self.now);
    }

    /// Loss accounting + retry scheduling for `trace`.
    pub(crate) fn lose(&mut self, trace: u64) {
        self.cl.lose_packet(trace, self.now);
    }

    /// Terminal policy drop for `trace`'s connection (no retry).
    pub(crate) fn deny(&mut self, trace: u64) {
        self.cl.deny_conn(trace);
    }

    /// `trace`'s step reached its terminal point at `at`.
    pub(crate) fn complete(&mut self, trace: u64, sent_at: SimTime, at: SimTime) {
        self.cl.complete_step(trace, sent_at, at);
    }

    // ------------------------------------------------------------------
    // Targeted event counters and fault queries.
    // ------------------------------------------------------------------

    /// Counts the mirror copies an action fans out (§2.2.2).
    pub(crate) fn count_mirrors(&self, action: &Action) {
        self.cl.tel.add(
            self.cl.tel.mirror_copies,
            pipeline::mirror_copies(action) as u64,
        );
    }

    /// One notify packet generated (§3.2.2).
    pub(crate) fn inc_notifies(&self) {
        self.cl.tel.inc(self.cl.tel.notifies);
    }

    /// One RX packet bounced off the post-final-stage BE.
    pub(crate) fn inc_stale_bounces(&self) {
        self.cl.tel.inc(self.cl.tel.stale_bounces);
    }

    /// One graceful degradation to local processing.
    pub(crate) fn inc_degraded(&self) {
        self.cl.tel.inc(self.cl.tel.degraded_events);
    }

    /// One notify discarded by the scripted fault engine.
    pub(crate) fn inc_fault_notify_drops(&self) {
        self.cl.tel.inc(self.cl.tel.fault_notify_drops);
    }

    /// Samples the scripted notify-loss fault (seeded fault RNG stream).
    pub(crate) fn drop_notify(&mut self) -> bool {
        self.cl.faults.drop_notify()
    }

    /// One RX packet processed by this server's FE — feeds the per-server
    /// `fe.rx_pkts` window counters behind the fairness SLO. No-op until
    /// [`Cluster::enable_windows`](crate::cluster::Cluster::enable_windows).
    pub(crate) fn note_fe_rx(&self) {
        self.cl.tel.note_fe_rx(self.server);
    }
}

impl Cluster {
    /// Records one cluster-level trace event for `pkt` at `server`.
    /// Datapath code calls this through [`HandlerCtx::trace`].
    pub(crate) fn trace_pkt(
        &self,
        at: SimTime,
        server: ServerId,
        pkt: &Packet,
        kind: TraceEventKind,
    ) {
        if self.tel.trace.is_enabled() {
            self.tel.trace.record(TraceEvent {
                at,
                trace_id: pkt.trace,
                server,
                vnic: pkt.vnic,
                kind,
            });
        }
    }
}

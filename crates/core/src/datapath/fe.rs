//! Stateless frontend (FE) handlers: TX-carry finalization, RX
//! pre-action lookup + piggybacking, and notify emission (§3.2.1/§3.2.2).

use crate::datapath::ctx::HandlerCtx;
use crate::datapath::dispatch::{fe_path, fe_stage_leaves, forward_to_peer};
use nezha_sim::time::SimTime;
use nezha_sim::trace::{DropReason, TraceEventKind};
use nezha_types::{Direction, NezhaHeader, NezhaPayloadKind, Packet, ServerId, VnicId};
use nezha_vswitch::pipeline;

/// Proof that `server` was a configured FE for a packet's vNIC at demux
/// time, carrying the facts the RX handler needs (satellite of the
/// membership-assumption fix: `fe_handle_rx` no longer trusts an
/// unstated "caller checked membership" comment — it receives the claim
/// as a value, and degrades to a counted misroute if the entry vanished).
pub(crate) struct FeBinding {
    /// The FE server the claim was made for.
    pub(crate) server: ServerId,
    /// The vNIC whose FE table the claim hit.
    pub(crate) vnic: VnicId,
    /// Where this vNIC's stateful BE lives (captured from the entry).
    pub(crate) be: ServerId,
}

impl FeBinding {
    /// Claims FE membership for a plain packet: only RX traffic is ever
    /// FE-bound, and the `(server, vnic)` pair must have a configured
    /// frontend. Returns `None` — the demux counts a misroute — otherwise.
    pub(crate) fn claim(
        cl: &crate::cluster::Cluster,
        server: ServerId,
        pkt: &Packet,
    ) -> Option<Self> {
        if pkt.dir != Direction::Rx {
            return None;
        }
        let fe = cl.fes.get(&(server, pkt.vnic))?;
        Some(FeBinding {
            server,
            vnic: pkt.vnic,
            be: fe.be_location,
        })
    }
}

/// TX-carried packet arriving at an FE: look up pre-actions, finalize
/// with the carried state, and forward to the destination.
pub(crate) fn fe_handle_tx_carry(
    ctx: &mut HandlerCtx<'_>,
    nsh: NezhaHeader,
    mut pkt: Packet,
    sent_at: SimTime,
) {
    let (server, now) = (ctx.server, ctx.now);
    if !ctx.cl.fes.contains_key(&(server, pkt.vnic)) {
        return ctx.misroute(&pkt);
    }
    ctx.trace(now, &pkt, TraceEventKind::NshDecap);
    let graphs = ctx.graphs();
    // Split borrows: switch and FE are distinct fields.
    let cl = &mut *ctx.cl;
    let vs = &mut cl.switches[server.0 as usize];
    let mem_model = vs.config().memory;
    let costs = vs.config().costs;
    let Some(fe) = cl.fes.get_mut(&(server, pkt.vnic)) else {
        return; // membership checked on entry; fes untouched since
    };
    let (pair, miss) = fe.lookup_or_insert(
        &graphs.lookup,
        &pkt.tuple,
        Direction::Tx,
        &mut vs.mem,
        &mem_model,
    );
    // A cache miss re-executes the full slow path: "the FE executes
    // the same code as before deploying Nezha" (§5.1) — which is why
    // per-FE CPS capacity matches a local vSwitch's, and Fig. 9's
    // gain curve needs ~4 FEs to saturate the VM. Priced only on the
    // miss branch: the slow-path formula costs an `ln` per call.
    let cycles = costs.fe_carry
        + if miss {
            fe.vnic.slow_path_cycles(&costs, pkt.wire_len())
        } else {
            costs.fast_path_cycles(pkt.wire_len())
        };
    let Some(charge) = ctx.charge(&pkt, cycles) else {
        return;
    };
    let done = charge.done;
    // Attribute the FE charge: the `fe_carry` share is NSH decap work,
    // the remainder follows the lookup path's own cost decomposition.
    // The root hangs off the BE's encap marker carried in `prof_span`,
    // and replaces it so the notify (if any) chains off this FE visit.
    if ctx.profiler_enabled() {
        if let Some(fe) = ctx.cl.fes.get(&(server, pkt.vnic)) {
            let st = ctx.stages();
            let charged = charge.scaled;
            let decap = charged.min(costs.fe_carry);
            let leaves = fe_stage_leaves(
                st,
                st.nsh_decap,
                decap,
                graphs.process.plan(fe_path(miss)),
                pipeline::stage_costs(
                    &costs,
                    &fe.vnic,
                    pkt.wire_len(),
                    charged - decap,
                    fe_path(miss),
                ),
            );
            if let Some(root) = ctx.span(st.fe_tx_carry, &pkt, now, done, &leaves) {
                pkt.prof_span = root.to_raw();
            }
        }
    }
    ctx.note_remote_cycles(cycles);

    // Reconstruct the carried state and finalize.
    let mut carried = nezha_types::SessionState {
        first_dir: nsh.first_dir,
        ..Default::default()
    };
    if let Some(a) = nsh.decap_addr {
        carried.decap = Some(nezha_types::StatefulDecapState { overlay_src: a });
    }
    if let Some(p) = nsh.stats_policy {
        carried.stats.policy = p;
    }
    let inner = pkt.strip_nezha();
    let action = pipeline::finalize_with_state(&pair.tx, &carried, &inner);
    if action.verdict == nezha_types::Decision::Drop {
        return ctx.deny(pkt.trace);
    }
    ctx.count_mirrors(&action);

    // Notify packets: rule-table-involved state discovered at the FE
    // that differs from what the packet carried (§3.2.2).
    let state_differs = pair.tx.stats_policy != 0 && nsh.stats_policy != Some(pair.tx.stats_policy);
    if miss && (state_differs || ctx.cl.cfg.notify_always) {
        send_notify(ctx, &pkt, pair.tx.stats_policy, done);
    }

    // Forward toward the destination (peer endpoint).
    forward_to_peer(ctx, inner, action, sent_at, done);
}

/// RX packet arriving at an FE from the fabric: look up pre-actions,
/// piggyback them (plus state-initialization info), send to the BE.
pub(crate) fn fe_handle_rx(
    ctx: &mut HandlerCtx<'_>,
    binding: FeBinding,
    pkt: Packet,
    sent_at: SimTime,
) {
    let (server, now) = (ctx.server, ctx.now);
    let be = binding.be;
    let graphs = ctx.graphs();
    let cl = &mut *ctx.cl;
    let vs = &mut cl.switches[server.0 as usize];
    let mem_model = vs.config().memory;
    let costs = vs.config().costs;
    let Some(fe) = cl.fes.get_mut(&(binding.server, binding.vnic)) else {
        // The binding was claimed at demux time; an FE entry vanishing
        // between then and now means the pool changed under us — count
        // it rather than silently dropping on the floor.
        return ctx.misroute(&pkt);
    };
    let (pair, miss) = fe.lookup_or_insert(
        &graphs.lookup,
        &pkt.tuple,
        Direction::Rx,
        &mut vs.mem,
        &mem_model,
    );
    let cycles = costs.fe_carry
        + if miss {
            fe.vnic.slow_path_cycles(&costs, pkt.wire_len())
        } else {
            costs.fast_path_cycles(pkt.wire_len())
        };
    let Some(charge) = ctx.charge(&pkt, cycles) else {
        return;
    };
    ctx.note_fe_rx();
    let done = charge.done;
    // Attribute the FE charge as on the TX side, except the carry
    // share is encap work here (the FE wraps the packet for the BE).
    let mut hop_span = 0u64;
    if ctx.profiler_enabled() {
        if let Some(fe) = ctx.cl.fes.get(&(binding.server, binding.vnic)) {
            let st = ctx.stages();
            let charged = charge.scaled;
            let encap = charged.min(costs.fe_carry);
            let leaves = fe_stage_leaves(
                st,
                st.nsh_encap,
                0,
                graphs.process.plan(fe_path(miss)),
                pipeline::stage_costs(
                    &costs,
                    &fe.vnic,
                    pkt.wire_len(),
                    charged - encap,
                    fe_path(miss),
                ),
            );
            if let Some(root) = ctx.span(st.fe_rx, &pkt, now, done, &leaves) {
                // The encap leaf doubles as the causal hop parent the BE
                // will see — record it explicitly to capture its id.
                let id = ctx.span_marker(st.nsh_encap, Some(root), &pkt, now, done, encap);
                if let Some(id) = id {
                    hop_span = id.to_raw();
                }
            }
        }
    }
    ctx.note_remote_cycles(cycles);

    let mut nsh = NezhaHeader::bare(NezhaPayloadKind::RxCarry, pkt.vnic, pkt.vpc);
    nsh.pre_actions = Some(pair);
    // Information the BE needs for state init that FE processing
    // destroys: the overlay encap source (stateful decap, §3.2.2).
    nsh.decap_addr = pkt.overlay_encap_src;
    if pair.rx.stats_policy != 0 {
        nsh.stats_policy = Some(pair.rx.stats_policy);
    }
    let mut out = pkt;
    out.overlay_encap_src = None; // FE rewrites the outer header
    let mut out = out.with_nezha(nsh);
    out.outer_src = Some(server);
    out.outer_dst = Some(be);
    out.prof_span = hop_span;
    ctx.trace(done, &out, TraceEventKind::NshEncap);
    let lat = ctx.cl.topo.latency(server, be, out.wire_len());
    ctx.cl.schedule_arrive(done + lat, be, out, sent_at);
}

/// Emits one FE→BE notify packet for a missed flow (§3.2.2).
pub(crate) fn send_notify(ctx: &mut HandlerCtx<'_>, pkt: &Packet, policy: u8, done: SimTime) {
    let fe_server = ctx.server;
    ctx.inc_notifies();
    ctx.trace(done, pkt, TraceEventKind::Notify);
    let be = ctx.cl.vnic_home[&pkt.vnic];
    let mut nsh = NezhaHeader::bare(NezhaPayloadKind::Notify, pkt.vnic, pkt.vpc);
    nsh.stats_policy = Some(policy);
    let mut notify = Packet::tx_data(
        0,
        pkt.vpc,
        pkt.vnic,
        pkt.tuple,
        nezha_types::TcpFlags::empty(),
        0,
    )
    .with_nezha(nsh);
    notify.outer_src = Some(fe_server);
    notify.outer_dst = Some(be);
    // The notify inherits the emitting FE visit's span so the BE-side
    // processing lands in the same causal tree as the original packet.
    notify.prof_span = pkt.prof_span;
    // Scripted notify loss (§3.2.2's channel is best-effort: the BE's
    // rule-table-involved state converges on a later miss instead).
    if ctx.drop_notify() {
        ctx.inc_fault_notify_drops();
        ctx.fault_drop_marker(done, &notify, DropReason::Fault);
        return;
    }
    let lat = ctx.cl.topo.latency(fe_server, be, notify.wire_len());
    ctx.cl.schedule_arrive(done + lat, be, notify, done);
}

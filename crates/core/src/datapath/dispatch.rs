//! Event dispatch: the cluster's [`Event`] match, the arrival gate, and
//! the NSH demux that hands each packet to its role handler (`be` / `fe`).
//!
//! Also home to the flow-hash helpers and the shared terminal forwarding
//! paths (`process_locally` / `forward_to_peer` / `deliver_to_vm`) both
//! roles funnel into.

use crate::cluster::Cluster;
use crate::config::{ConfigOp, LbMode};
use crate::datapath::be;
use crate::datapath::ctx::HandlerCtx;
use crate::datapath::fe::{self, FeBinding};
use nezha_sim::fault::FaultKind;
use nezha_sim::time::SimTime;
use nezha_types::{Direction, NezhaPayloadKind, Packet, ServerId};
use nezha_vswitch::pipeline::{self, ProcessOutcome};

/// Events driving the cluster.
#[derive(Clone, Debug)]
pub enum Event {
    /// A packet arrives at a server's vSwitch.
    ///
    /// The packet itself is parked in the cluster's packet slab and the
    /// heap entry carries only its 4-byte id: the event heap sifts
    /// ~50-byte entries instead of ~220-byte ones, which is most of the
    /// simulator's memory traffic under load.
    Arrive {
        /// Receiving server.
        server: ServerId,
        /// Slab id of the parked packet (`Cluster::schedule_arrive`).
        pkt: u32,
        /// When the packet's current network journey began (for latency).
        sent_at: SimTime,
    },
    /// Start a registered connection.
    StartConn {
        /// Connection id.
        conn: u64,
    },
    /// A step's packet reached its terminal point; inject the next step.
    AdvanceConn {
        /// Connection id.
        conn: u64,
        /// The step that completed.
        from_step: usize,
    },
    /// Retransmit a lost step.
    RetryStep {
        /// Connection id.
        conn: u64,
        /// The step to retry.
        step: usize,
    },
    /// Periodic controller tick (utilization reports + decisions).
    ControllerTick,
    /// Periodic health-monitor tick (ping polling).
    MonitorTick,
    /// Periodic session-aging sweep.
    AgingTick,
    /// A delayed configuration push takes effect.
    Config(ConfigOp),
    /// Hard-crash a server's SmartNIC.
    Crash {
        /// The crashing server.
        server: ServerId,
    },
    /// Begin a standalone probe packet's journey from `from`.
    StartProbe {
        /// Slab id of the parked probe packet (RX-oriented, trace has
        /// the probe bit set).
        pkt: u32,
        /// The injecting server.
        from: ServerId,
    },
    /// A scripted fault transition fires (see `Cluster::apply_fault_plan`).
    Fault(FaultKind),
}

/// The flow hash used for FE selection: `Hash(5-tuple)` over the session's
/// canonical orientation, so both directions of a session select the same
/// FE and each session performs exactly one rule lookup and caches one
/// flow entry. (Nezha does not *need* this — state lives at the BE either
/// way, §3.2.3 — but collocating directions avoids duplicate lookups and
/// duplicate cached flows, and is what makes Fig. 9's CPS knee sit at 4
/// FEs.)
pub(crate) fn flow_hash(t: &nezha_types::FiveTuple) -> u64 {
    t.canonical().stable_hash()
}

/// Mixes a per-packet discriminator into the flow hash for the
/// packet-level LB ablation.
pub(crate) fn packet_hash(t: &nezha_types::FiveTuple, trace: u64) -> u64 {
    let mut h = flow_hash(t) ^ trace.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 29;
    h
}

impl Cluster {
    /// The FE-selection hash for one packet under the configured LB mode.
    pub(crate) fn select_hash(&self, t: &nezha_types::FiveTuple, trace: u64) -> u64 {
        match self.cfg.lb_mode {
            LbMode::FlowLevel => flow_hash(t),
            LbMode::PacketLevel => packet_hash(t, trace),
        }
    }

    /// Dispatches one engine event.
    pub(crate) fn handle(&mut self, ev: Event, now: SimTime) {
        match ev {
            Event::Arrive {
                server,
                pkt,
                sent_at,
            } => {
                let pkt = self.pkt_slab.take(pkt);
                self.handle_arrive(server, pkt, sent_at, now);
            }
            Event::StartConn { conn } => self.inject_step(conn, 0, now),
            Event::AdvanceConn { conn, from_step } => self.advance_conn(conn, from_step, now),
            Event::RetryStep { conn, step } => self.retry_step(conn, step, now),
            Event::ControllerTick => self.controller_tick(now),
            Event::MonitorTick => self.monitor_tick(now),
            Event::AgingTick => {
                for i in 0..self.switches.len() {
                    if self.alive[i] {
                        self.switches[i].expire_sessions(now);
                    }
                }
                self.engine
                    .schedule_in(self.cfg.aging_period, Event::AgingTick);
            }
            Event::Config(op) => self.apply_config(op, now),
            Event::Crash { server } => {
                self.alive[server.0 as usize] = false;
                self.monitor.crash_pending.insert(server, now);
            }
            Event::StartProbe { pkt, from } => {
                let pkt = self.pkt_slab.take(pkt);
                self.start_probe(pkt, from, now);
            }
            Event::Fault(kind) => self.handle_fault(kind, now),
        }
    }

    /// A packet arrives at `server`: gate it, then demux on the NSH
    /// header (role handlers) or the plain-packet routing rules.
    fn handle_arrive(&mut self, server: ServerId, pkt: Packet, sent_at: SimTime, now: SimTime) {
        let mut ctx = HandlerCtx::new(self, server, now);
        if !ctx.gate(&pkt) {
            return;
        }
        if let Some(nsh) = pkt.nezha {
            match nsh.kind {
                NezhaPayloadKind::TxCarry => fe::fe_handle_tx_carry(&mut ctx, nsh, pkt, sent_at),
                NezhaPayloadKind::RxCarry => be::be_handle_rx_carry(&mut ctx, nsh, pkt, sent_at),
                NezhaPayloadKind::Notify => be::be_handle_notify(&mut ctx, nsh, pkt),
                NezhaPayloadKind::HealthProbe | NezhaPayloadKind::HealthReply => {
                    // Health traffic is handled inline by the monitor tick
                    // (replies are modeled as observation of `alive`).
                }
            }
            return;
        }
        // Plain packet.
        let is_home = ctx.cl.vnic_home.get(&pkt.vnic) == Some(&server);
        if is_home {
            match pkt.dir {
                Direction::Tx => be::be_handle_tx(&mut ctx, pkt, sent_at),
                Direction::Rx => be::be_handle_direct_rx(&mut ctx, pkt, sent_at),
            }
        } else if let Some(binding) = FeBinding::claim(ctx.cl, server, &pkt) {
            fe::fe_handle_rx(&mut ctx, binding, pkt, sent_at);
        } else {
            // Stale mapping pointed at a server that is neither home nor a
            // configured FE (e.g. an FE that was just scaled in).
            ctx.misroute(&pkt);
        }
    }
}

/// Traditional processing at the home vSwitch.
pub(crate) fn process_locally(ctx: &mut HandlerCtx<'_>, pkt: Packet, sent_at: SimTime) {
    let (server, now) = (ctx.server, ctx.now);
    let vs = &mut ctx.cl.switches[server.0 as usize];
    let r = vs.process_local(&pkt, now);
    // Priced after the fact so the fast path never pays the slow-path
    // formula's `ln`; the vNIC set is untouched by `process_local`. A CPU
    // drop reports no path — the charge the switch *attempted* still
    // depends on what the flow-cache probe saw, which is re-derivable
    // because a dropped packet mutates no session state.
    let took_fast = match r.path {
        Some(p) => p == nezha_vswitch::PathTaken::Fast,
        None => vs
            .sessions
            .get(&nezha_types::SessionKey::of(pkt.vpc, pkt.tuple))
            .is_some_and(|e| e.pre_actions.is_some()),
    };
    let cycles_hint = if took_fast {
        vs.config().costs.fast_path_cycles(pkt.wire_len())
    } else {
        vs.vnic(pkt.vnic)
            .map(|v| v.slow_path_cycles(&vs.config().costs, pkt.wire_len()))
            .unwrap_or_else(|| vs.config().costs.slow_path_cycles(pkt.wire_len(), 0, 0))
    };
    ctx.note_local_cycles(cycles_hint);
    match r.outcome {
        ProcessOutcome::Forwarded(action) => {
            ctx.count_mirrors(&action);
            match pkt.dir {
                Direction::Tx => forward_to_peer(ctx, pkt, action, sent_at, r.done_at),
                Direction::Rx => deliver_to_vm(ctx, pkt.vnic, pkt.trace, sent_at, r.done_at),
            }
        }
        ProcessOutcome::AclDrop | ProcessOutcome::Unroutable | ProcessOutcome::RateLimited => {
            ctx.deny(pkt.trace)
        }
        ProcessOutcome::CpuOverload => ctx.lose(pkt.trace),
    }
}

/// Final TX forwarding toward the peer endpoint: the conn/probe's
/// packet has cleared the Nezha/local pipeline.
pub(crate) fn forward_to_peer(
    ctx: &mut HandlerCtx<'_>,
    pkt: Packet,
    action: nezha_types::Action,
    sent_at: SimTime,
    done: SimTime,
) {
    let from = ctx.server;
    // Resolve where the peer lives: the action's next hop when the
    // tables knew it, else the conn spec (gateway egress).
    let peer = action
        .next_hop
        .or_else(|| ctx.cl.conn(pkt.trace >> 4).map(|c| c.spec.peer_server));
    let Some(peer) = peer else {
        // No destination (pure probe toward gateway): terminal here.
        ctx.complete(pkt.trace, sent_at, done);
        return;
    };
    let lat = ctx.cl.topo.latency(from, peer, pkt.wire_len());
    // The peer endpoint consumes the packet without vSwitch charging
    // (the peer side is assumed unloaded, §6.1 testbed setup).
    ctx.complete(pkt.trace, sent_at, done + lat);
}

/// Final RX delivery into the VM kernel.
pub(crate) fn deliver_to_vm(
    ctx: &mut HandlerCtx<'_>,
    vnic: nezha_types::VnicId,
    trace: u64,
    sent_at: SimTime,
    done: SimTime,
) {
    let Some(vm) = ctx.cl.vms.get_mut(&vnic) else {
        return ctx.complete(trace, sent_at, done);
    };
    match vm.deliver_packet(done) {
        Some(kernel_done) => ctx.complete(trace, sent_at, kernel_done),
        None => ctx.lose(trace),
    }
}

/// The vSwitch cost path an FE lookup took: a flow-cache miss re-executes
/// the full slow path, a hit is fast-path work.
pub(crate) fn fe_path(miss: bool) -> nezha_vswitch::PathTaken {
    if miss {
        nezha_vswitch::PathTaken::Slow
    } else {
        nezha_vswitch::PathTaken::Fast
    }
}

/// Builds the profiler leaf list for one FE handler: the NSH carry share
/// first (decap on the TX side, encap on RX), then the lookup's own
/// per-stage cost split following the process graph's cost `plan` for
/// the path taken. Overflow tiers clamp onto the last tier handle
/// (inside `plan_leaves`).
pub(crate) fn fe_stage_leaves(
    st: &nezha_sim::profile::StageSet,
    carry: nezha_sim::profile::StageHandle,
    carry_cycles: u64,
    plan: &[nezha_vswitch::CostSlot],
    c: pipeline::StageCosts,
) -> Vec<(nezha_sim::profile::StageHandle, u64)> {
    // nezha-lint: allow(D10): stage attribution only runs under `profiler_enabled()`, never in measurement runs
    let mut leaves = vec![(carry, carry_cycles)];
    nezha_vswitch::stage::costing::plan_leaves(plan, st, &c, &mut |stage, cycles| {
        leaves.push((stage, cycles));
    });
    leaves
}

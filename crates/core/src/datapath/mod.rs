//! The Nezha data plane, decomposed by role (§3.2):
//!
//! * [`dispatch`] — the `Event` match, the arrival gate, and the NSH
//!   demux that routes each packet to its role handler;
//! * [`be`] — the stateful backend: TX origination, RX-carry
//!   consumption, notify absorption, and direct-RX bouncing;
//! * [`fe`] — the stateless frontends: TX-carry finalization and RX
//!   pre-action lookup, plus notify emission;
//! * [`ctx`] — the [`ctx::HandlerCtx`] borrowed view every handler works
//!   through.
//!
//! # The `HandlerCtx` contract
//!
//! Handlers contain *protocol logic only*. Every cross-cutting concern —
//! metrics, packet tracing, profiler spans, fault queries, CPU-cycle
//! charging, loss/deny/completion accounting — goes through
//! [`ctx::HandlerCtx`]; the plumbing exists once, in `ctx.rs`. Inside
//! `datapath/` (except `ctx.rs` itself) direct access to `Cluster::tel`,
//! `.metrics()`, `.profiler()`, `.trace_pkt()`, `.profile_handler()` or
//! `.profile_fault_drop()` is a lint error (rule D7).
//!
//! A handler MAY:
//! * read/mutate protocol state through `ctx.cl` (switches, sessions,
//!   FEs, BE metadata, gateway, topology, engine scheduling);
//! * call any `HandlerCtx` method.
//!
//! A handler MUST NOT:
//! * touch `tel`, the registry, the trace ring, or the profiler directly;
//! * draw from the RNG (only `lose_packet`'s jitter does, inside the
//!   driver);
//! * panic on broken invariants — degrade to a counted misroute/loss.

pub(crate) mod be;
pub(crate) mod ctx;
pub(crate) mod dispatch;
pub(crate) mod fe;

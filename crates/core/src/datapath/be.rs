//! Stateful backend (BE) handlers: TX origination + NSH encap, RX-carry
//! consumption, notify absorption, and direct-RX bouncing, plus the
//! graceful-degradation fallback (§3.2.1/§3.2.2, Appendix C.2).

use crate::be::OffloadPhase;
use crate::cluster::Cluster;
use crate::config::ConfigOp;
use crate::datapath::ctx::HandlerCtx;
use crate::datapath::dispatch::{flow_hash, process_locally, Event};
use nezha_sim::time::{SimDuration, SimTime};
use nezha_sim::trace::TraceEventKind;
use nezha_types::{Direction, NezhaHeader, NezhaPayloadKind, Packet, SessionKey, VnicId};
use nezha_vswitch::pipeline;

/// Does this vNIC currently steer TX traffic through FEs?
pub(crate) fn nezha_active_for_tx(cl: &Cluster, vnic: VnicId) -> bool {
    cl.be_meta.get(&vnic).is_some_and(|m| {
        matches!(m.phase, OffloadPhase::OffloadDual | OffloadPhase::Offloaded)
            && !m.ready_fes().is_empty()
    })
}

/// The graceful-degradation trigger: an offloaded vNIC whose entire
/// FE pool is dead. The BE's rule tables are gone and every packet
/// hashed to an FE would be lost until the monitor rebuilds the pool
/// — which it will not do while suspended (Appendix C.2).
pub(crate) fn fe_pool_collapsed(cl: &Cluster, vnic: VnicId) -> bool {
    cl.be_meta.get(&vnic).is_some_and(|m| {
        m.phase == OffloadPhase::Offloaded
            && !m.ready_fes().iter().any(|fe| cl.alive[fe.0 as usize])
    })
}

/// Emergency fallback from the data plane when the FE pool collapses:
/// re-arm the BE with the master tables and schedule the normal
/// fallback teardown. Unlike `Cluster::trigger_fallback` this runs
/// mid-packet and tolerates the dead pool. Returns false when the
/// home vSwitch cannot fit the tables (packets stay lost until the
/// management plane recovers).
pub(crate) fn degrade_to_local(ctx: &mut HandlerCtx<'_>, vnic: VnicId) -> bool {
    let now = ctx.now;
    let cl = &mut *ctx.cl;
    let Some(home) = cl.vnic_home.get(&vnic).copied() else {
        return false;
    };
    let Some(master) = cl.master_vnics.get(&vnic).cloned() else {
        return false;
    };
    if cl.switches[home.0 as usize].vnic(vnic).is_none()
        && cl.switches[home.0 as usize].add_vnic(master).is_err()
    {
        return false;
    }
    let Some(meta) = cl.be_meta.get_mut(&vnic) else {
        return false;
    };
    meta.phase = OffloadPhase::FallbackDual;
    ctx.inc_degraded();
    let cl = &mut *ctx.cl;
    let addr = cl.vnic_addr[&vnic];
    let cfg = cl.cfg.controller;
    let gw_at = now + cfg.gateway_update_delay;
    cl.engine.schedule_at(
        gw_at,
        Event::Config(ConfigOp::GatewayUpdate {
            addr,
            // nezha-lint: allow(D10): degradation to local vswitch is a rare fault-recovery event, not per-packet work
            servers: vec![home],
        }),
    );
    cl.engine.schedule_at(
        gw_at + cl.gateway.learning_interval() + SimDuration::from_millis(50),
        Event::Config(ConfigOp::FallbackFinal { vnic }),
    );
    true
}

/// TX packet from the local VM at its home (BE) vSwitch.
pub(crate) fn be_handle_tx(ctx: &mut HandlerCtx<'_>, pkt: Packet, sent_at: SimTime) {
    let (server, now) = (ctx.server, ctx.now);
    if fe_pool_collapsed(ctx.cl, pkt.vnic) {
        degrade_to_local(ctx, pkt.vnic);
    }
    if !nezha_active_for_tx(ctx.cl, pkt.vnic) {
        return process_locally(ctx, pkt, sent_at);
    }
    let key = SessionKey::of(pkt.vpc, pkt.tuple);
    let vs = &mut ctx.cl.switches[server.0 as usize];
    let costs = vs.config().costs;
    let mem_model = vs.config().memory;
    let is_first = vs.sessions.get(&key).is_none();
    let cycles = if is_first {
        costs.be_first_packet
    } else {
        costs.be_per_packet
    };
    let Some(charge) = ctx.charge(&pkt, cycles) else {
        return;
    };
    let done = charge.done;
    let charged = charge.scaled;
    ctx.note_local_cycles(cycles);
    // State handling: create (state-only) or update, locally.
    let vs = &mut ctx.cl.switches[server.0 as usize];
    if is_first {
        let mem_ok = vs
            .sessions
            .establish(
                key,
                pkt.vnic,
                Direction::Tx,
                None,
                now,
                &mut vs.mem,
                &mem_model,
            )
            .is_ok();
        if !mem_ok {
            // State memory exhausted: the flow is processed but its
            // stateful guarantees degrade (counted as overflow).
        }
    }
    let mut nsh = NezhaHeader::bare(NezhaPayloadKind::TxCarry, pkt.vnic, pkt.vpc);
    if let Some(entry) = vs.sessions.get_mut(&key) {
        pipeline::update_state(None, &mut entry.state, &pkt);
        entry.last_seen = now;
        nsh.first_dir = entry.state.first_dir;
        nsh.decap_addr = entry.state.decap.map(|d| d.overlay_src);
        if entry.state.stats.policy != 0 {
            nsh.stats_policy = Some(entry.state.stats.policy);
        }
    } else {
        nsh.first_dir = Some(Direction::Tx);
    }
    // Select the FE by flow hash and ship the packet with its state.
    // `nezha_active_for_tx` above implies the meta exists; degrade to a
    // loss (never a panic) if that invariant is ever broken.
    let Some(meta) = ctx.cl.be_meta.get(&pkt.vnic) else {
        return ctx.lose(pkt.trace);
    };
    let h = ctx.cl.select_hash(&pkt.tuple, pkt.trace);
    let Some(fe) = meta.select_fe(&key, h) else {
        return ctx.lose(pkt.trace);
    };
    let mut out = pkt.with_nezha(nsh);
    out.outer_src = Some(server);
    out.outer_dst = Some(fe);
    // Span tree: the BE charge is pure session work (the cost model
    // does not split it further); the zero-cycle encap marker is the
    // causal parent the FE's span will hang off across the hop.
    let st = ctx.stages();
    if let Some(root) = ctx.span(st.be_tx, &pkt, now, done, &[(st.session_update, charged)]) {
        let encap = ctx.span_marker(st.nsh_encap, Some(root), &pkt, done, done, 0);
        if let Some(encap) = encap {
            out.prof_span = encap.to_raw();
        }
    }
    ctx.trace(done, &out, TraceEventKind::NshEncap);
    let lat = ctx.cl.topo.latency(server, fe, out.wire_len());
    ctx.cl.schedule_arrive(done + lat, fe, out, sent_at);
}

/// RX-carried packet arriving at the BE: update local state with the
/// piggybacked pre-actions and deliver to the VM.
pub(crate) fn be_handle_rx_carry(
    ctx: &mut HandlerCtx<'_>,
    nsh: NezhaHeader,
    pkt: Packet,
    sent_at: SimTime,
) {
    let (server, now) = (ctx.server, ctx.now);
    if ctx.cl.vnic_home.get(&pkt.vnic) != Some(&server) {
        return ctx.misroute(&pkt);
    }
    let Some(pair) = nsh.pre_actions else {
        return ctx.misroute(&pkt);
    };
    ctx.trace(now, &pkt, TraceEventKind::NshDecap);
    let key = SessionKey::of(pkt.vpc, pkt.tuple);
    let vs = &mut ctx.cl.switches[server.0 as usize];
    let mem_model = vs.config().memory;
    let costs = vs.config().costs;
    let is_first = vs.sessions.get(&key).is_none();
    let cycles = if is_first {
        costs.be_first_packet
    } else {
        costs.be_per_packet
    };
    let Some(charge) = ctx.charge(&pkt, cycles) else {
        return;
    };
    let done = charge.done;
    // The BE charge is again pure session work; the zero-cycle decap
    // marker documents the hop in the tree (flamegraphs skip it).
    let st = ctx.stages();
    if let Some(root) = ctx.span(
        st.be_rx_carry,
        &pkt,
        now,
        done,
        &[(st.session_update, charge.scaled)],
    ) {
        ctx.span_marker(st.nsh_decap, Some(root), &pkt, now, now, 0);
    }
    ctx.note_local_cycles(cycles);

    let vs = &mut ctx.cl.switches[server.0 as usize];
    if is_first {
        let _ = vs.sessions.establish(
            key,
            pkt.vnic,
            Direction::Rx,
            None,
            now,
            &mut vs.mem,
            &mem_model,
        );
    }
    // Restore the info the FE carried for state initialization.
    let mut inner = pkt.strip_nezha();
    inner.overlay_encap_src = nsh.decap_addr;
    let action = if let Some(entry) = vs.sessions.get_mut(&key) {
        entry.last_seen = now;
        // Adopt rule-table-involved state piggybacked in the header
        // without verification (§3.2.2 RX workflow).
        if let Some(p) = nsh.stats_policy {
            entry.state.stats.policy = p;
        }
        pipeline::process_pkt(&pair.rx, &mut entry.state, &inner)
    } else {
        let mut scratch = nezha_types::SessionState::default();
        pipeline::process_pkt(&pair.rx, &mut scratch, &inner)
    };
    if action.verdict == nezha_types::Decision::Drop {
        return ctx.deny(pkt.trace);
    }
    ctx.count_mirrors(&action);
    crate::datapath::dispatch::deliver_to_vm(ctx, pkt.vnic, pkt.trace, sent_at, done);
}

/// Standalone notify packet at the BE (§3.2.2 TX workflow).
pub(crate) fn be_handle_notify(ctx: &mut HandlerCtx<'_>, nsh: NezhaHeader, pkt: Packet) {
    let (server, now) = (ctx.server, ctx.now);
    let key = SessionKey::of(pkt.vpc, pkt.tuple);
    let cycles = ctx.cl.switches[server.0 as usize]
        .config()
        .costs
        .be_per_packet;
    // A lost notify is retried implicitly on the next miss.
    let Some(charge) = ctx.charge_silent(&pkt, cycles) else {
        return;
    };
    // The notify chains off the FE span that emitted it, closing the
    // BE → FE → BE causal loop for the packet that missed.
    let st = ctx.stages();
    let _ = ctx.span(
        st.be_notify,
        &pkt,
        now,
        charge.done,
        &[(st.notify, charge.scaled)],
    );
    let vs = &mut ctx.cl.switches[server.0 as usize];
    if let Some(entry) = vs.sessions.get_mut(&key) {
        if let Some(p) = nsh.stats_policy {
            entry.state.stats.policy = p;
        }
    }
}

/// RX packet arriving directly at the BE (sender's mapping is stale or
/// the vNIC is simply not offloaded).
pub(crate) fn be_handle_direct_rx(ctx: &mut HandlerCtx<'_>, pkt: Packet, sent_at: SimTime) {
    let (server, now) = (ctx.server, ctx.now);
    // Graceful degradation: with every FE dead, bouncing is futile —
    // fall back to local processing if the tables fit.
    if fe_pool_collapsed(ctx.cl, pkt.vnic) && degrade_to_local(ctx, pkt.vnic) {
        return process_locally(ctx, pkt, sent_at);
    }
    let key = SessionKey::of(pkt.vpc, pkt.tuple);
    let fe = match ctx.cl.be_meta.get(&pkt.vnic) {
        Some(meta) if meta.phase == OffloadPhase::Offloaded => {
            meta.select_fe(&key, flow_hash(&pkt.tuple))
        }
        // Local / dual-running: the BE still has rules and flows.
        _ => return process_locally(ctx, pkt, sent_at),
    };
    // Final stage: tables are gone. Bounce to an FE (costs a parse).
    ctx.inc_stale_bounces();
    let Some(fe) = fe else {
        return ctx.lose(pkt.trace);
    };
    let cycles = ctx.cl.switches[server.0 as usize].config().costs.parse;
    let Some(charge) = ctx.charge(&pkt, cycles) else {
        return;
    };
    let done = charge.done;
    let mut out = pkt;
    // A stale bounce costs one parse; the FE visit it triggers hangs
    // off this root via `prof_span`.
    let st = ctx.stages();
    if let Some(root) = ctx.span(
        st.be_direct_rx,
        &out,
        now,
        done,
        &[(st.parse, charge.scaled)],
    ) {
        out.prof_span = root.to_raw();
    }
    out.outer_src = Some(server);
    out.outer_dst = Some(fe);
    let lat = ctx.cl.topo.latency(server, fe, out.wire_len());
    ctx.cl.schedule_arrive(done + lat, fe, out, sent_at);
}

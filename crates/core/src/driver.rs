//! Connection driving: step injection, retry scheduling with seeded
//! exponential backoff, terminal accounting (complete / deny / lose),
//! and standalone probe packets.
//!
//! This is the layer *around* the datapath: it turns [`ConnSpec`]
//! scripts into `Event::Arrive` packets and consumes the terminal
//! callbacks the datapath handlers fire through `HandlerCtx`.

use crate::cluster::Cluster;
use crate::conn::ConnStatus;
use crate::datapath::dispatch::{flow_hash, Event};
use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{Direction, Packet, ServerId};

/// Trace-id bit marking standalone probe packets: they traverse the full
/// data plane but never belong to a connection (and are not retried).
pub(crate) const PROBE_BIT: u64 = 1 << 63;
/// Probe packets with this bit traverse the full data plane but are not
/// recorded in the latency samples (bulk/background streams).
pub(crate) const SILENT_BIT: u64 = 1 << 62;

/// The (un-jittered) delay before retry number `retries + 1`:
/// `base · 2^retries`, saturating at `cap`. The caller applies ±25%
/// jitter from the seeded sim RNG on top.
pub fn retry_backoff(base: SimDuration, cap: SimDuration, retries: u32) -> SimDuration {
    let factor = 1u64 << retries.min(31);
    SimDuration(base.0.saturating_mul(factor)).min(cap)
}

impl Cluster {
    pub(crate) fn inject_step(&mut self, conn_id: u64, step_idx: usize, now: SimTime) {
        let Some(conn) = self.conn(conn_id) else {
            return;
        };
        if conn.status != ConnStatus::InFlight || conn.pos != step_idx {
            return;
        }
        let spec = conn.spec;
        let script = spec.kind.script();
        let step = script[step_idx];
        let tuple = spec.step_tuple(step.dir);
        let payload = if step.has_payload { spec.payload } else { 0 };
        let trace = (conn_id << 4) | step_idx as u64;
        let mut pkt = match step.dir {
            Direction::Tx => {
                Packet::tx_data(trace, spec.vpc, spec.vnic, tuple, step.flags, payload)
            }
            Direction::Rx => {
                Packet::rx_data(trace, spec.vpc, spec.vnic, tuple, step.flags, payload)
            }
        };
        self.tel.series_add(self.tel.total_series, now, 1.0);
        match step.dir {
            Direction::Tx => {
                // VM-originated: the kernel pays its share of the
                // connection's cycles to build and send the segment, then
                // the packet appears at the home vSwitch.
                let Some(vm) = self.vms.get_mut(&spec.vnic) else {
                    return self.lose_packet(trace, now);
                };
                let Some(sent) = vm.deliver_packet(now) else {
                    return self.lose_packet(trace, now);
                };
                let home = self.vnic_home[&spec.vnic];
                self.schedule_arrive(sent, home, pkt, sent);
            }
            Direction::Rx => {
                pkt.overlay_encap_src = spec.overlay_encap_src;
                // Peer-originated: resolve the vNIC's current location via
                // the (possibly stale) gateway-learned mapping.
                let addr = self.vnic_addr[&spec.vnic];
                let h = self.select_hash(&tuple, trace);
                let dst = self.gateway.select(addr, spec.peer_server, h, now);
                match dst {
                    Some(dst) => {
                        pkt.outer_src = Some(spec.peer_server);
                        pkt.outer_dst = Some(dst);
                        let lat = self.topo.latency(spec.peer_server, dst, pkt.wire_len());
                        self.schedule_arrive(now + lat, dst, pkt, now);
                    }
                    None => self.lose_packet(trace, now),
                }
            }
        }
    }

    pub(crate) fn advance_conn(&mut self, conn_id: u64, from_step: usize, now: SimTime) {
        // Field-level indexing (not the `conn_mut` helper) keeps the
        // borrow split so the telemetry calls below stay legal.
        let Some(conn) = conn_id
            .checked_sub(1)
            .and_then(|i| self.conns.get_mut(i as usize))
        else {
            return;
        };
        if conn.status != ConnStatus::InFlight || conn.pos != from_step {
            return; // duplicate / stale completion
        }
        conn.pos += 1;
        conn.retries = 0;
        self.tel.inc(self.tel.pkt_ok);
        if conn.pos == conn.spec.kind.script().len() {
            conn.status = ConnStatus::Completed;
            let latency = now.since(conn.started_at);
            self.tel.inc(self.tel.completed);
            self.tel.observe_duration(self.tel.conn_latency, latency);
            self.tel.series_add(self.tel.cps_series, now, 1.0);
            if let Some(vm) = self.vms.get_mut(&conn.spec.vnic) {
                vm.conn_completed();
            }
        } else {
            let next = conn.pos;
            self.inject_step(conn_id, next, now);
        }
    }

    pub(crate) fn retry_step(&mut self, conn_id: u64, step: usize, now: SimTime) {
        let Some(conn) = conn_id
            .checked_sub(1)
            .and_then(|i| self.conns.get_mut(i as usize))
        else {
            return;
        };
        if conn.status != ConnStatus::InFlight || conn.pos != step {
            return;
        }
        conn.retries += 1;
        if conn.retries > self.cfg.max_retries {
            conn.status = ConnStatus::Failed;
            self.tel.inc(self.tel.failed);
            return;
        }
        self.inject_step(conn_id, step, now);
    }

    /// Records a lost conn/probe packet and schedules the retry with
    /// exponential backoff (base `retry_timeout`, doubling per retry up
    /// to `retry_cap`) plus ±25% seeded jitter.
    pub(crate) fn lose_packet(&mut self, trace: u64, now: SimTime) {
        self.tel.series_add(self.tel.loss_series, now, 1.0);
        self.tel.inc(self.tel.pkt_dropped);
        if self.faults.any_active() {
            self.tel.inc(self.tel.fault_inflight_loss);
        }
        if trace & PROBE_BIT != 0 || trace == 0 {
            return; // probes and notify packets (trace 0) are not retried
        }
        let conn = trace >> 4;
        let step = (trace & 0xf) as usize;
        let retries = self.conn(conn).map_or(0, |c| c.retries);
        let base = retry_backoff(self.cfg.retry_timeout, self.cfg.retry_cap, retries);
        let jitter = 0.75 + 0.5 * self.rng.f64();
        let delay = SimDuration::from_secs_f64(base.as_secs_f64() * jitter);
        self.engine
            .schedule_in(delay, Event::RetryStep { conn, step });
    }

    /// A policy drop: terminal for the connection, no retry.
    pub(crate) fn deny_conn(&mut self, trace: u64) {
        if trace & PROBE_BIT != 0 {
            return;
        }
        if let Some(conn) = (trace >> 4)
            .checked_sub(1)
            .and_then(|i| self.conns.get_mut(i as usize))
        {
            if conn.status == ConnStatus::InFlight {
                conn.status = ConnStatus::Denied;
                self.tel.inc(self.tel.denied);
            }
        }
    }

    /// A step's packet reached its terminal point.
    pub(crate) fn complete_step(&mut self, trace: u64, sent_at: SimTime, at: SimTime) {
        if trace & PROBE_BIT != 0 {
            if trace & SILENT_BIT == 0 {
                self.tel
                    .observe_duration(self.tel.probe_latency, at.since(sent_at));
            }
            return;
        }
        let conn = trace >> 4;
        let step = (trace & 0xf) as usize;
        self.engine.schedule_at(
            at,
            Event::AdvanceConn {
                conn,
                from_step: step,
            },
        );
    }

    pub(crate) fn start_probe(&mut self, mut pkt: Packet, from: ServerId, now: SimTime) {
        let addr = self.vnic_addr[&pkt.vnic];
        match self.gateway.select(addr, from, flow_hash(&pkt.tuple), now) {
            Some(dst) => {
                pkt.outer_src = Some(from);
                pkt.outer_dst = Some(dst);
                let lat = self.topo.latency(from, dst, pkt.wire_len());
                self.schedule_arrive(now + lat, dst, pkt, now);
            }
            None => self.lose_packet(pkt.trace, now),
        }
    }
}

//! The gateway's vNIC→server table, with learning-delay semantics.
//!
//! The authoritative table lives at the gateway; vSwitches learn entries
//! on demand with a learning interval of 200 ms (§4.2.1). During an
//! offload (or fallback, or failover), an entry changes from one server
//! set to another — but each *sender* keeps using the stale value until
//! its own learning refresh fires. We model this with versioned entries:
//! a change records `(previous, current, switch_at)`, and a sender
//! resolves to `previous` until `switch_at + jitter(sender)`, where the
//! deterministic per-sender jitter is uniform over one learning interval.
//!
//! This is exactly the mechanism that forces Nezha's **dual-running
//! stage**: for up to `learning interval + RTT` after a change, packets
//! keep arriving at the old location, which must still be able to process
//! them (§4.2.1).

use nezha_sim::dense::DenseMap;
use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{Ipv4Addr, ServerId};

/// One versioned gateway entry.
#[derive(Clone, Debug)]
struct VersionedEntry {
    current: Vec<ServerId>,
    previous: Vec<ServerId>,
    switch_at: SimTime,
}

/// The gateway table.
#[derive(Clone, Debug)]
pub struct Gateway {
    /// Dense-hashed: `select` probes this (and `pins`) once per RX
    /// packet; neither map is ever iterated order-visibly (`unpin_*`
    /// retains are pure filters).
    entries: DenseMap<Ipv4Addr, VersionedEntry>,
    /// Exact-flow overrides: `(vNIC address, flow hash) → server`. Used to
    /// steer a pinned elephant flow to its dedicated FE while the general
    /// entry spreads everything else (§7.5).
    pins: DenseMap<(Ipv4Addr, u64), ServerId>,
    learning_interval: SimDuration,
}

impl Gateway {
    /// Creates a gateway with the given vSwitch learning interval
    /// (the paper's production value is 200 ms).
    pub fn new(learning_interval: SimDuration) -> Self {
        Gateway {
            entries: DenseMap::new(),
            pins: DenseMap::new(),
            learning_interval,
        }
    }

    /// Installs an exact-flow override steering `flow_hash` of `addr` to
    /// one server (elephant pinning, §7.5).
    pub fn pin(&mut self, addr: Ipv4Addr, flow_hash: u64, server: ServerId) {
        self.pins.insert((addr, flow_hash), server);
    }

    /// Removes an exact-flow override.
    pub fn unpin(&mut self, addr: Ipv4Addr, flow_hash: u64) {
        self.pins.remove(&(addr, flow_hash));
    }

    /// Removes every override of `addr` that steers to `server` — called
    /// when that server stops being one of the vNIC's FEs (failover,
    /// scale-in), so a dead pin cannot blackhole its flow.
    pub fn unpin_server(&mut self, addr: Ipv4Addr, server: ServerId) {
        self.pins.retain(|(a, _), s| *a != addr || *s != server);
    }

    /// Removes every override of `addr` (fallback: no FEs remain).
    pub fn unpin_addr(&mut self, addr: Ipv4Addr) {
        self.pins.retain(|(a, _), _| *a != addr);
    }

    /// The configured learning interval.
    pub fn learning_interval(&self) -> SimDuration {
        self.learning_interval
    }

    /// Installs or replaces the mapping for `addr`, effective for each
    /// sender within one learning interval of `now`.
    pub fn update(&mut self, addr: Ipv4Addr, servers: Vec<ServerId>, now: SimTime) {
        assert!(
            !servers.is_empty(),
            "gateway entry needs at least one server"
        );
        let previous = self
            .entries
            .get(&addr)
            .map(|e| e.current.clone())
            .unwrap_or_else(|| servers.clone());
        self.entries.insert(
            addr,
            VersionedEntry {
                current: servers,
                previous,
                switch_at: now,
            },
        );
    }

    /// Deterministic per-sender learning jitter in `[0, learning_interval)`.
    fn jitter(&self, sender: ServerId) -> SimDuration {
        let h = (sender.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 11;
        SimDuration(h % self.learning_interval.nanos().max(1))
    }

    /// Resolves `addr` as seen by `sender` at `now`: stale senders still
    /// see the previous mapping. Returns the full server set; the caller
    /// selects one by flow hash.
    pub fn resolve(&self, addr: Ipv4Addr, sender: ServerId, now: SimTime) -> Option<&[ServerId]> {
        let e = self.entries.get(&addr)?;
        let learned_at = e.switch_at + self.jitter(sender);
        if now < learned_at {
            Some(&e.previous)
        } else {
            Some(&e.current)
        }
    }

    /// Resolves one concrete server for a flow with the given stable hash.
    pub fn select(
        &self,
        addr: Ipv4Addr,
        sender: ServerId,
        flow_hash: u64,
        now: SimTime,
    ) -> Option<ServerId> {
        if let Some(&s) = self.pins.get(&(addr, flow_hash)) {
            return Some(s);
        }
        let servers = self.resolve(addr, sender, now)?;
        if servers.is_empty() {
            None
        } else {
            Some(servers[(flow_hash % servers.len() as u64) as usize])
        }
    }

    /// The authoritative (post-learning) mapping, ignoring staleness.
    pub fn current(&self, addr: Ipv4Addr) -> Option<&[ServerId]> {
        self.entries.get(&addr).map(|e| e.current.as_slice())
    }

    /// The instant by which *every* sender has learned the latest mapping
    /// for `addr`: `switch_at + learning_interval`.
    pub fn fully_learned_at(&self, addr: Ipv4Addr) -> Option<SimTime> {
        self.entries
            .get(&addr)
            .map(|e| e.switch_at + self.learning_interval)
    }

    /// Number of mapped addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the gateway has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gw() -> Gateway {
        Gateway::new(SimDuration::from_millis(200))
    }

    #[test]
    fn initial_entry_is_visible_immediately() {
        let mut g = gw();
        g.update(Ipv4Addr::new(10, 0, 0, 1), vec![ServerId(3)], SimTime(0));
        // First install: previous == current, so staleness is harmless.
        assert_eq!(
            g.select(Ipv4Addr::new(10, 0, 0, 1), ServerId(7), 0, SimTime(0)),
            Some(ServerId(3))
        );
    }

    #[test]
    fn senders_learn_within_one_interval() {
        let mut g = gw();
        let addr = Ipv4Addr::new(10, 0, 0, 1);
        g.update(addr, vec![ServerId(1)], SimTime(0));
        let t1 = SimTime(10_000_000_000);
        g.update(addr, vec![ServerId(2)], t1);

        // Immediately after the switch, some sender with nonzero jitter
        // still sees the old value.
        let mut saw_stale = false;
        let mut saw_fresh = false;
        for s in 0..64 {
            match g.select(addr, ServerId(s), 0, t1) {
                Some(ServerId(1)) => saw_stale = true,
                Some(ServerId(2)) => saw_fresh = true,
                _ => {}
            }
        }
        assert!(
            saw_stale,
            "some sender should still be stale at switch time"
        );
        let _ = saw_fresh; // jitter may or may not include ~0 for these ids

        // One full learning interval later, everyone sees the new value.
        let t2 = t1 + g.learning_interval();
        for s in 0..64 {
            assert_eq!(g.select(addr, ServerId(s), 0, t2), Some(ServerId(2)));
        }
        assert_eq!(g.fully_learned_at(addr), Some(t2));
    }

    #[test]
    fn select_uses_flow_hash_across_fes() {
        let mut g = gw();
        let addr = Ipv4Addr::new(10, 0, 0, 9);
        g.update(
            addr,
            vec![ServerId(1), ServerId(2), ServerId(3)],
            SimTime(0),
        );
        let t = SimTime(0) + g.learning_interval();
        let picks: Vec<_> = (0u64..6)
            .map(|h| g.select(addr, ServerId(0), h, t).unwrap())
            .collect();
        assert_eq!(
            picks,
            vec![
                ServerId(1),
                ServerId(2),
                ServerId(3),
                ServerId(1),
                ServerId(2),
                ServerId(3)
            ]
        );
    }

    #[test]
    fn unknown_addr_resolves_none() {
        let g = gw();
        assert!(g
            .resolve(Ipv4Addr::new(1, 2, 3, 4), ServerId(0), SimTime(0))
            .is_none());
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn current_ignores_staleness() {
        let mut g = gw();
        let addr = Ipv4Addr::new(10, 0, 0, 1);
        g.update(addr, vec![ServerId(1)], SimTime(0));
        g.update(addr, vec![ServerId(2)], SimTime(1));
        assert_eq!(g.current(addr), Some(&[ServerId(2)][..]));
    }

    #[test]
    fn flow_pins_override_the_hash() {
        let mut g = gw();
        let addr = Ipv4Addr::new(10, 0, 0, 1);
        g.update(addr, vec![ServerId(1), ServerId(2)], SimTime(0));
        let t = SimTime(0) + g.learning_interval();
        let h = 12345u64;
        let unpinned = g.select(addr, ServerId(0), h, t).unwrap();
        let target = ServerId(if unpinned == ServerId(1) { 2 } else { 1 });
        g.pin(addr, h, target);
        assert_eq!(g.select(addr, ServerId(0), h, t), Some(target));
        // Other hashes unaffected.
        assert!(g.select(addr, ServerId(0), h + 1, t).is_some());
        g.unpin(addr, h);
        assert_eq!(g.select(addr, ServerId(0), h, t), Some(unpinned));
    }

    #[test]
    fn jitter_is_deterministic_per_sender() {
        let mut g = gw();
        let addr = Ipv4Addr::new(10, 0, 0, 1);
        g.update(addr, vec![ServerId(1)], SimTime(0));
        g.update(addr, vec![ServerId(2)], SimTime(1_000_000_000));
        let a = g.select(addr, ServerId(42), 0, SimTime(1_050_000_000));
        let b = g.select(addr, ServerId(42), 0, SimTime(1_050_000_000));
        assert_eq!(a, b);
    }
}

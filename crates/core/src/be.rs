//! The vNIC **backend** (BE): the single local copy of session state.
//!
//! [`BackendMeta`] is the per-offloaded-vNIC bookkeeping the BE's vSwitch
//! keeps: the offload phase, the FE location config (Fig. 7), and which
//! FEs are ready. It costs the 2 KB "BE data" of §6.2.1 — the entire
//! local footprint that replaces the vNIC's multi-megabyte rule tables.

use nezha_sim::time::SimTime;
use nezha_types::{ServerId, SessionKey};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Phase of a vNIC's offload lifecycle (§4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum OffloadPhase {
    /// Not offloaded; traditional local processing.
    Local,
    /// Offload triggered: FEs being configured, peers learning the new
    /// mapping; BE still holds rules/flows and processes stale arrivals
    /// (the dual-running stage).
    OffloadDual,
    /// Final stage: BE holds state only; all traffic flows through FEs.
    Offloaded,
    /// Fallback triggered: BE re-armed with rules; peers relearning the
    /// BE address; FEs still process stale arrivals.
    FallbackDual,
}

/// Per-offloaded-vNIC bookkeeping at the BE.
#[derive(Clone, Debug)]
pub struct BackendMeta {
    /// Current lifecycle phase.
    pub phase: OffloadPhase,
    /// FE location config: the ordered FE list (order defines the flow-
    /// hash mapping). Includes FEs still being configured.
    pub fe_list: Vec<ServerId>,
    /// FEs whose rule tables have finished configuring and can serve.
    ready: Vec<ServerId>,
    /// When the offload was triggered (for completion-time measurement).
    pub triggered_at: SimTime,
    /// When all traffic started flowing through FEs (completion instant,
    /// the Table 4 quantity).
    pub activated_at: Option<SimTime>,
    /// Elephant flows pinned to a dedicated FE (§7.5).
    pinned: BTreeMap<SessionKey, ServerId>,
    /// FEs dedicated to pinned elephants: excluded from the general hash
    /// ring so the elephant "nearly monopolizes the resources of a single
    /// SmartNIC" while other tenant traffic is isolated from it (§7.5).
    dedicated: Vec<ServerId>,
}

impl BackendMeta {
    /// Fresh metadata for an offload triggered at `now`.
    pub fn new(now: SimTime) -> Self {
        BackendMeta {
            phase: OffloadPhase::OffloadDual,
            fe_list: Vec::new(),
            ready: Vec::new(),
            triggered_at: now,
            activated_at: None,
            pinned: BTreeMap::new(),
            dedicated: Vec::new(),
        }
    }

    /// Adds an FE to the location config (not yet ready).
    pub fn add_fe(&mut self, fe: ServerId) {
        if !self.fe_list.contains(&fe) {
            self.fe_list.push(fe);
        }
    }

    /// Marks an FE's configuration complete.
    pub fn mark_ready(&mut self, fe: ServerId) {
        if self.fe_list.contains(&fe) && !self.ready.contains(&fe) {
            self.ready.push(fe);
        }
    }

    /// Removes an FE (scale-in or failover). Returns true if it was
    /// present.
    pub fn remove_fe(&mut self, fe: ServerId) -> bool {
        let had = self.fe_list.contains(&fe);
        self.fe_list.retain(|&s| s != fe);
        self.ready.retain(|&s| s != fe);
        self.pinned.retain(|_, &mut s| s != fe);
        self.dedicated.retain(|&s| s != fe);
        had
    }

    /// The FEs currently able to serve traffic.
    pub fn ready_fes(&self) -> &[ServerId] {
        &self.ready
    }

    /// True once every configured FE is ready.
    pub fn all_ready(&self) -> bool {
        !self.fe_list.is_empty() && self.ready.len() == self.fe_list.len()
    }

    /// Selects the FE for a flow: a pinned assignment wins (elephant
    /// isolation, §7.5), otherwise `Hash(5-tuple) mod #ready` over the
    /// non-dedicated members (§3.2.3).
    pub fn select_fe(&self, key: &SessionKey, flow_hash: u64) -> Option<ServerId> {
        if let Some(&fe) = self.pinned.get(key) {
            if self.ready.contains(&fe) {
                return Some(fe);
            }
        }
        // General traffic avoids dedicated FEs (unless nothing else is
        // ready — availability beats isolation). Counted + nth rather
        // than collected: selection runs per flow on the TX path.
        let general = self
            .ready
            .iter()
            .filter(|s| !self.dedicated.contains(s))
            .count();
        if general > 0 {
            let want = (flow_hash % general as u64) as usize;
            self.ready
                .iter()
                .filter(|s| !self.dedicated.contains(s))
                .nth(want)
                .copied()
        } else if self.ready.is_empty() {
            None
        } else {
            Some(self.ready[(flow_hash % self.ready.len() as u64) as usize])
        }
    }

    /// Pins an elephant flow's session to a dedicated FE (§7.5). The FE
    /// leaves the general hash ring: the elephant gets the whole card,
    /// and other tenants' flows stop sharing it.
    pub fn pin_flow(&mut self, key: SessionKey, fe: ServerId) {
        self.pinned.insert(key, fe);
        if !self.dedicated.contains(&fe) {
            self.dedicated.push(fe);
        }
    }

    /// Number of pinned flows.
    pub fn pinned_count(&self) -> usize {
        self.pinned.len()
    }

    /// The ready FEs serving general (non-pinned) traffic: dedicated FEs
    /// are excluded while at least one general member remains.
    pub fn general_fes(&self) -> Vec<ServerId> {
        let general: Vec<ServerId> = self
            .ready
            .iter()
            .copied()
            .filter(|s| !self.dedicated.contains(s))
            .collect();
        if general.is_empty() {
            self.ready.clone()
        } else {
            general
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nezha_types::{FiveTuple, Ipv4Addr, VpcId};

    fn key(p: u16) -> SessionKey {
        SessionKey::of(
            VpcId(1),
            FiveTuple::tcp(Ipv4Addr::new(1, 1, 1, 1), p, Ipv4Addr::new(2, 2, 2, 2), 80),
        )
    }

    #[test]
    fn lifecycle_ready_tracking() {
        let mut be = BackendMeta::new(SimTime(0));
        assert_eq!(be.phase, OffloadPhase::OffloadDual);
        be.add_fe(ServerId(1));
        be.add_fe(ServerId(2));
        be.add_fe(ServerId(2)); // idempotent
        assert_eq!(be.fe_list.len(), 2);
        assert!(!be.all_ready());
        assert_eq!(be.select_fe(&key(1), 0), None, "nothing ready yet");
        be.mark_ready(ServerId(1));
        be.mark_ready(ServerId(1)); // idempotent
        assert_eq!(be.ready_fes(), &[ServerId(1)]);
        be.mark_ready(ServerId(2));
        assert!(be.all_ready());
    }

    #[test]
    fn mark_ready_requires_membership() {
        let mut be = BackendMeta::new(SimTime(0));
        be.add_fe(ServerId(1));
        be.mark_ready(ServerId(9)); // never added
        assert!(be.ready_fes().is_empty());
    }

    #[test]
    fn select_is_stable_hash_mod() {
        let mut be = BackendMeta::new(SimTime(0));
        for s in [1, 2, 3, 4] {
            be.add_fe(ServerId(s));
            be.mark_ready(ServerId(s));
        }
        assert_eq!(be.select_fe(&key(1), 5), Some(ServerId(2)));
        assert_eq!(be.select_fe(&key(1), 5), Some(ServerId(2)));
        assert_eq!(be.select_fe(&key(1), 7), Some(ServerId(4)));
    }

    #[test]
    fn remove_fe_updates_everything() {
        let mut be = BackendMeta::new(SimTime(0));
        for s in [1, 2, 3, 4] {
            be.add_fe(ServerId(s));
            be.mark_ready(ServerId(s));
        }
        be.pin_flow(key(9), ServerId(3));
        assert!(be.remove_fe(ServerId(3)));
        assert!(!be.remove_fe(ServerId(3)));
        assert_eq!(be.fe_list.len(), 3);
        assert_eq!(be.ready_fes().len(), 3);
        assert_eq!(be.pinned_count(), 0, "pins to a removed FE are dropped");
    }

    #[test]
    fn pinned_elephant_overrides_hash() {
        let mut be = BackendMeta::new(SimTime(0));
        for s in [1, 2, 3, 4] {
            be.add_fe(ServerId(s));
            be.mark_ready(ServerId(s));
        }
        let k = key(5);
        let default_pick = be.select_fe(&k, 0).unwrap();
        let dedicated = ServerId(if default_pick == ServerId(4) { 1 } else { 4 });
        be.pin_flow(k, dedicated);
        assert_eq!(be.select_fe(&k, 0), Some(dedicated));
        // Other flows hash over the remaining (non-dedicated) FEs.
        for h in 0..32 {
            let pick = be.select_fe(&key(6), h).unwrap();
            assert_ne!(
                pick, dedicated,
                "general traffic must avoid the dedicated FE"
            );
        }
    }
}

//! The vNIC **frontend** (FE): stateless rules + cached flows on a remote
//! idle SmartNIC.
//!
//! An FE holds a complete copy of one offloaded vNIC's rule tables and a
//! cache of flows it has looked up; it holds **no session state**. That is
//! the entire point: "as FEs only maintain stateless rule tables and
//! cached flows, packets can be processed correctly by any FE without
//! synchronization" (§3.2.3) — add or remove FEs freely, lose one with no
//! state loss, and a post-scaling cache miss costs only one re-executed
//! rule lookup ("slightly more than 10 microseconds").

use nezha_sim::dense::{DenseMap, Interner};
use nezha_sim::resources::MemoryPool;
use nezha_types::{Direction, FiveTuple, PreActionPair, ServerId, SessionKey};
use nezha_vswitch::config::MemoryModel;
use nezha_vswitch::pipeline;
use nezha_vswitch::vnic::Vnic;

/// One FE instance: an offloaded vNIC's tables hosted on a remote server.
#[derive(Debug)]
pub struct FrontEnd {
    /// A full copy of the vNIC's rule tables ("Each FE maintains a
    /// complete copy of the rule tables", §3.2.3).
    pub vnic: Vnic,
    /// The BE's location, configured by the controller ("BE Location
    /// Config", Fig. 7).
    pub be_location: ServerId,
    /// Cached flows regenerated on the fly by rule lookups (Fig. 7).
    /// Dense-hashed: the per-packet hit path is one O(1) probe, and the
    /// only iteration (invalidate-all) is aggregate, so lookup order is
    /// never behavior-visible. Entries store a 4-byte interned id rather
    /// than the 64-byte pair itself: flows over the same rule tables
    /// collapse onto a few hundred distinct pre-action values, so the
    /// probe array stays a quarter the size and the resolve table is
    /// cache-resident.
    flows: DenseMap<SessionKey, u32>,
    /// Distinct pre-action values behind the flow entries' interned ids.
    pairs: Interner<PreActionPair>,
    hits: u64,
    misses: u64,
    /// Flows that could not be cached because the host's table memory was
    /// exhausted (processing still succeeds, uncached).
    cache_skips: u64,
    /// Bytes charged on the host pool for the rule tables (kept exact
    /// across table mutations, mirroring `VSwitch::sync_vnic_memory`).
    pub(crate) charged_table_bytes: u64,
}

impl FrontEnd {
    /// Creates an FE for `vnic` whose backend lives at `be_location`.
    pub fn new(vnic: Vnic, be_location: ServerId) -> Self {
        FrontEnd {
            vnic,
            be_location,
            flows: DenseMap::new(),
            pairs: Interner::new(),
            hits: 0,
            misses: 0,
            cache_skips: 0,
            charged_table_bytes: 0,
        }
    }

    /// Rule-table memory this FE occupies on its host.
    pub fn table_memory(&self, m: &MemoryModel) -> u64 {
        self.vnic.table_memory(m)
    }

    /// Bytes of cached flows on the host.
    pub fn flow_memory(&self, m: &MemoryModel) -> u64 {
        self.flows.len() as u64 * m.flow_entry
    }

    /// Number of cached flows.
    pub fn cached_flows(&self) -> usize {
        self.flows.len()
    }

    /// `(hits, misses, cache_skips)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.cache_skips)
    }

    /// Returns the cached pre-actions for the session of `tuple`, running
    /// the slow-path lookup over `graph` (and caching the result in
    /// `pool`) on a miss. The FE runs the *same* compiled lookup graph as
    /// the local/BE vSwitch — Nezha's equivalence property (§3.1).
    ///
    /// The boolean is `true` on a miss — the caller charges lookup cycles
    /// instead of fast-path cycles, and (on the TX workflow) considers a
    /// notify packet (§3.2.2).
    pub fn lookup_or_insert(
        &mut self,
        graph: &nezha_vswitch::PktGraph,
        tuple: &FiveTuple,
        pkt_dir: Direction,
        pool: &mut MemoryPool,
        m: &MemoryModel,
    ) -> (PreActionPair, bool) {
        let key = SessionKey::of(self.vnic.vpc, *tuple);
        if let Some(&id) = self.flows.get(&key) {
            self.hits += 1;
            return (*self.pairs.resolve(id), false);
        }
        self.misses += 1;
        let pair = pipeline::slow_path_lookup(graph, &self.vnic, tuple, pkt_dir).pair;
        if pool.alloc(m.flow_entry).is_ok() {
            let id = self.pairs.intern(pair);
            self.flows.insert(key, id);
        } else {
            self.cache_skips += 1;
        }
        (pair, true)
    }

    /// Invalidates all cached flows (rule-table change, §3.2.2), releasing
    /// their memory. Returns the number invalidated.
    pub fn invalidate_flows(&mut self, pool: &mut MemoryPool, m: &MemoryModel) -> usize {
        let n = self.flows.len();
        pool.free(n as u64 * m.flow_entry);
        self.flows.clear();
        n
    }

    /// Re-reconciles the table-memory charge after the tables changed.
    pub(crate) fn sync_table_memory(
        &mut self,
        pool: &mut MemoryPool,
        m: &MemoryModel,
    ) -> Result<(), nezha_sim::resources::OutOfMemory> {
        let new = self.table_memory(m);
        if new > self.charged_table_bytes {
            pool.alloc(new - self.charged_table_bytes)?;
        } else {
            pool.free(self.charged_table_bytes - new);
        }
        self.charged_table_bytes = new;
        Ok(())
    }

    /// Releases **all** memory this FE holds on `pool` (tables + flows);
    /// called when the FE is removed (scale-in, failover cleanup).
    pub fn release(self, pool: &mut MemoryPool, m: &MemoryModel) {
        pool.free(self.charged_table_bytes + self.flows.len() as u64 * m.flow_entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nezha_types::{Ipv4Addr, VnicId, VpcId};
    use nezha_vswitch::vnic::VnicProfile;

    fn fe() -> FrontEnd {
        let vnic = Vnic::new(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile::default(),
            ServerId(0),
        );
        FrontEnd::new(vnic, ServerId(0))
    }

    fn graph() -> nezha_vswitch::PktGraph {
        nezha_vswitch::stage::lookup::lookup_graph()
    }

    fn tuple(port: u16) -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 0, 1),
            port,
            Ipv4Addr::new(10, 7, 0, 100),
            9000,
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut f = fe();
        let g = graph();
        let mut pool = MemoryPool::new(1_000_000);
        let m = MemoryModel::default();
        let (p1, miss1) = f.lookup_or_insert(&g, &tuple(1000), Direction::Tx, &mut pool, &m);
        assert!(miss1);
        let (p2, miss2) = f.lookup_or_insert(&g, &tuple(1000), Direction::Tx, &mut pool, &m);
        assert!(!miss2);
        assert_eq!(p1, p2);
        assert_eq!(f.counters(), (1, 1, 0));
        assert_eq!(f.cached_flows(), 1);
        assert_eq!(pool.used(), m.flow_entry);
    }

    #[test]
    fn both_directions_share_one_cached_flow() {
        let mut f = fe();
        let g = graph();
        let mut pool = MemoryPool::new(1_000_000);
        let m = MemoryModel::default();
        let (pa, _) = f.lookup_or_insert(&g, &tuple(1000), Direction::Tx, &mut pool, &m);
        let (pb, miss) =
            f.lookup_or_insert(&g, &tuple(1000).reversed(), Direction::Rx, &mut pool, &m);
        assert!(!miss, "reverse direction must hit the same entry");
        assert_eq!(pa, pb);
        assert_eq!(f.cached_flows(), 1);
    }

    #[test]
    fn oom_skips_caching_but_still_answers() {
        let mut f = fe();
        let g = graph();
        let mut pool = MemoryPool::new(0);
        let m = MemoryModel::default();
        let (_, miss) = f.lookup_or_insert(&g, &tuple(1), Direction::Tx, &mut pool, &m);
        assert!(miss);
        assert_eq!(f.cached_flows(), 0);
        assert_eq!(f.counters().2, 1);
        // Second lookup is a miss again (nothing cached) but still works.
        let (_, miss) = f.lookup_or_insert(&g, &tuple(1), Direction::Tx, &mut pool, &m);
        assert!(miss);
    }

    #[test]
    fn invalidate_and_release_free_memory() {
        let mut f = fe();
        let g = graph();
        let mut pool = MemoryPool::new(20_000_000);
        let m = MemoryModel::default();
        for p in 0..10 {
            f.lookup_or_insert(&g, &tuple(p), Direction::Tx, &mut pool, &m);
        }
        assert_eq!(pool.used(), 10 * m.flow_entry);
        assert_eq!(f.invalidate_flows(&mut pool, &m), 10);
        assert_eq!(pool.used(), 0);

        // Simulate the host charging table memory, then releasing the FE.
        pool.alloc(f.table_memory(&m)).unwrap();
        f.charged_table_bytes = f.table_memory(&m);
        f.lookup_or_insert(&g, &tuple(0), Direction::Tx, &mut pool, &m);
        let f2 = f;
        f2.release(&mut pool, &m);
        assert_eq!(pool.used(), 0);
    }
}

//! Integration-style tests of the packet-level testbed (kept out of
//! `cluster.rs` so the construction/accessor module stays small).

use crate::be::OffloadPhase;
use crate::cluster::{retry_backoff, Cluster, ClusterConfig, ConfigOp, Event};
use crate::vm::VmConfig;
use nezha_sim::time::{SimDuration, SimTime};
use nezha_sim::topology::TopologyConfig;
use nezha_types::{FiveTuple, Ipv4Addr, NezhaError, ServerId, SessionKey, VnicId, VpcId};
use nezha_vswitch::vnic::{Vnic, VnicProfile};
use nezha_vswitch::vswitch::VSwitch;

const HOME: ServerId = ServerId(0);
const VNIC: VnicId = VnicId(1);
const SVC_PORT: u16 = 9000;

fn small_cluster(auto: bool) -> Cluster {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 8,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(auto)
        .build();
    let mut cluster = Cluster::new(cfg);
    let mut vnic = Vnic::new(
        VNIC,
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        HOME,
    );
    vnic.allow_inbound_port(SVC_PORT);
    cluster
        .add_vnic(vnic, HOME, VmConfig::with_vcpus(64))
        .unwrap();
    cluster
}

fn inbound_spec(n: u16, at: SimTime) -> crate::conn::ConnSpec {
    crate::conn::ConnSpec {
        vnic: VNIC,
        vpc: VpcId(1),
        tuple: FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 1, (n % 200) as u8 + 1),
            10_000 + n,
            Ipv4Addr::new(10, 7, 0, 1),
            SVC_PORT,
        ),
        peer_server: ServerId(8 + (n % 8) as u32), // other rack
        kind: crate::conn::ConnKind::Inbound,
        start: at,
        payload: 128,
        overlay_encap_src: None,
    }
}

fn run_conns(cluster: &mut Cluster, n: u16, spacing: SimDuration) -> SimTime {
    for i in 0..n {
        cluster
            .add_conn(inbound_spec(i, SimTime(0) + spacing.times(i as u64)))
            .unwrap();
    }
    let end = SimTime(0) + spacing.times(n as u64) + SimDuration::from_secs(5);
    cluster.run_until(end);
    end
}

#[test]
fn retry_backoff_doubles_and_caps() {
    let base = SimDuration::from_millis(500);
    let cap = SimDuration::from_secs(2);
    assert_eq!(retry_backoff(base, cap, 0), SimDuration::from_millis(500));
    assert_eq!(retry_backoff(base, cap, 1), SimDuration::from_secs(1));
    assert_eq!(retry_backoff(base, cap, 2), SimDuration::from_secs(2));
    // Saturates at the cap from then on, even for huge retry counts.
    assert_eq!(retry_backoff(base, cap, 3), cap);
    assert_eq!(retry_backoff(base, cap, 63), cap);
    assert_eq!(retry_backoff(base, cap, u32::MAX), cap);
}

#[test]
fn scheduled_retries_back_off_exponentially_with_bounded_jitter() {
    // Drive lose_packet directly for one registered conn and check the
    // scheduled RetryStep delays grow like base·2^k (±25%), capped.
    let mut c = small_cluster(false);
    let id = c.add_conn(inbound_spec(1, SimTime(0))).unwrap();
    let base = c.cfg.retry_timeout;
    let cap = c.cfg.retry_cap;
    for k in 0..=c.cfg.max_retries {
        // Isolate the one RetryStep this loss schedules.
        c.engine.clear();
        if let Some(conn) = c.conn_mut(id) {
            conn.retries = k;
        }
        let before = c.engine.now();
        c.lose_packet(id << 4, before);
        let sched = c
            .engine
            .peek_time()
            .expect("lose_packet schedules a RetryStep");
        let delay = sched.since(before);
        let nominal = retry_backoff(base, cap, k);
        let lo = SimDuration::from_secs_f64(nominal.as_secs_f64() * 0.75);
        let hi = SimDuration::from_secs_f64(nominal.as_secs_f64() * 1.25);
        assert!(
            delay >= lo && delay <= hi,
            "retry {k}: delay {delay:?} outside [{lo:?}, {hi:?}]"
        );
    }
}

#[test]
fn local_baseline_completes_connections() {
    let mut c = small_cluster(false);
    run_conns(&mut c, 50, SimDuration::from_millis(2));
    assert_eq!(
        c.stats().completed,
        50,
        "failed={} denied={}",
        c.stats().failed,
        c.stats().denied
    );
    assert_eq!(c.stats().failed, 0);
    assert_eq!(c.stats().denied, 0);
    // Sessions were tracked and later aged out.
    let (created, _, _) = c.switch(HOME).unwrap().sessions.counters();
    assert_eq!(created, 50);
}

#[test]
fn control_plane_errors_are_typed() {
    let mut c = small_cluster(false);
    let ghost = VnicId(99);
    assert_eq!(
        c.trigger_offload(ghost, SimTime(0)),
        Err(NezhaError::UnknownVnic(ghost))
    );
    assert_eq!(
        c.add_conn(crate::conn::ConnSpec {
            vnic: ghost,
            ..inbound_spec(1, SimTime(0))
        }),
        Err(NezhaError::UnknownVnic(ghost))
    );
    let key = SessionKey::of(VpcId(1), inbound_spec(1, SimTime(0)).tuple);
    assert_eq!(
        c.pin_flow(ghost, key, ServerId(1)),
        Err(NezhaError::NotOffloaded(ghost))
    );
    assert_eq!(
        c.switch(ServerId(9_999)).err(),
        Some(NezhaError::UnknownServer(ServerId(9_999)))
    );
    c.trigger_offload(VNIC, SimTime(0)).unwrap();
    assert_eq!(
        c.trigger_offload(VNIC, SimTime(0)),
        Err(NezhaError::AlreadyOffloaded(VNIC))
    );
    // Fallback before the offload reaches its final stage is refused.
    assert_eq!(
        c.trigger_fallback(VNIC, c.now()),
        Err(NezhaError::OffloadInProgress(VNIC))
    );
    c.run_until(SimTime(0) + SimDuration::from_secs(3));
    // Pinning to a server that hosts no FE for the vNIC is refused.
    let not_fe = ServerId(15);
    assert!(!c.fe_servers(VNIC).contains(&not_fe));
    assert_eq!(
        c.pin_flow(VNIC, key, not_fe),
        Err(NezhaError::NotAnFe {
            vnic: VNIC,
            fe: not_fe
        })
    );
}

#[test]
fn unsolicited_port_is_denied_statefully() {
    let mut c = small_cluster(false);
    let mut spec = inbound_spec(1, SimTime(0));
    spec.tuple.dst_port = 47_123; // no accept rule, stateful default
    c.add_conn(spec).unwrap();
    c.run_until(SimTime(0) + SimDuration::from_secs(5));
    assert_eq!(c.stats().denied, 1);
    assert_eq!(c.stats().completed, 0);
}

#[test]
fn manual_offload_reaches_final_stage_without_loss() {
    let mut c = small_cluster(false);
    // Warm traffic before the offload.
    for i in 0..40 {
        c.add_conn(inbound_spec(
            i,
            SimTime(0) + SimDuration::from_millis(5 * i as u64),
        ))
        .unwrap();
    }
    c.run_until(SimTime(0) + SimDuration::from_millis(100));
    c.trigger_offload(VNIC, c.now()).unwrap();
    // Traffic continues through the transition.
    for i in 40..120 {
        c.add_conn(inbound_spec(
            i,
            c.now() + SimDuration::from_millis(5 * (i - 40) as u64),
        ))
        .unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(8));
    let meta = c.backend(VNIC).expect("offloaded");
    assert_eq!(meta.phase, OffloadPhase::Offloaded);
    assert_eq!(meta.fe_list.len(), 4);
    assert!(meta.activated_at.is_some());
    assert_eq!(
        c.stats().completed,
        120,
        "failed={} denied={} misroutes={}",
        c.stats().failed,
        c.stats().denied,
        c.stats().misroutes
    );
    assert_eq!(c.stats().failed, 0);
    // Completion time recorded, in Table 4's ballpark.
    let mean = c.stats().offload_completion.mean();
    assert!((0.3..3.0).contains(&mean), "completion {mean}s");
    // FEs actually processed traffic.
    let fe_hits: u64 = c
        .fe_servers(VNIC)
        .iter()
        .map(|s| c.fes.get(&(*s, VNIC)).unwrap().counters().0)
        .sum();
    assert!(fe_hits > 0, "FEs never saw traffic");
    // BE rule tables are gone; home switch no longer hosts the vNIC.
    assert!(c.switch(HOME).unwrap().vnic(VNIC).is_none());
}

#[test]
fn offloaded_traffic_spreads_across_fes() {
    let mut c = small_cluster(false);
    c.trigger_offload(VNIC, SimTime(0)).unwrap();
    c.run_until(SimTime(0) + SimDuration::from_secs(3));
    for i in 0..200 {
        c.add_conn(inbound_spec(
            i,
            c.now() + SimDuration::from_millis(i as u64),
        ))
        .unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(6));
    assert_eq!(c.stats().completed, 200);
    // Every FE served some flows (hash spreading, §3.2.3).
    for s in c.fe_servers(VNIC) {
        let (hits, misses, _) = c.fes.get(&(s, VNIC)).unwrap().counters();
        assert!(hits + misses > 0, "FE on {s} idle");
    }
    // Notifies were generated for stats-policy flows only on misses.
    assert!(c.stats().notifies <= c.stats().completed * 2);
}

#[test]
fn fe_crash_fails_over_within_seconds() {
    let mut c = small_cluster(false);
    c.trigger_offload(VNIC, SimTime(0)).unwrap();
    c.run_until(SimTime(0) + SimDuration::from_secs(3));
    let victim = c.fe_servers(VNIC)[0];
    let crash_at = c.now() + SimDuration::from_secs(1);
    c.crash_at(victim, crash_at);
    // Continuous traffic across the crash.
    for i in 0..600 {
        c.add_conn(inbound_spec(
            i,
            c.now() + SimDuration::from_millis(10 * i as u64),
        ))
        .unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(12));
    assert!(c.stats().failover_events >= 1);
    // The pool is restored to the 4-FE floor on live servers.
    let fes = c.fe_servers(VNIC);
    assert_eq!(fes.len(), 4, "pool {fes:?}");
    assert!(!fes.contains(&victim));
    // Losses were transient: the vast majority of conns completed.
    let total = c.stats().completed + c.stats().failed + c.stats().denied;
    assert_eq!(total, 600);
    assert!(
        c.stats().completed >= 590,
        "completed {}",
        c.stats().completed
    );
    // Loss was confined to around the crash instant (Fig. 14 shape).
    assert!(c.stats().pkts.dropped > 0, "crash must cost some packets");
}

#[test]
fn fallback_returns_to_local_processing() {
    let mut c = small_cluster(false);
    c.trigger_offload(VNIC, SimTime(0)).unwrap();
    c.run_until(SimTime(0) + SimDuration::from_secs(3));
    assert_eq!(c.backend(VNIC).unwrap().phase, OffloadPhase::Offloaded);
    c.trigger_fallback(VNIC, c.now()).unwrap();
    c.run_until(c.now() + SimDuration::from_secs(3));
    assert!(c.backend(VNIC).is_none(), "fallback must clear BE meta");
    assert_eq!(c.fe_count(VNIC), 0);
    assert!(
        c.switch(HOME).unwrap().vnic(VNIC).is_some(),
        "tables restored"
    );
    // Traffic flows locally again.
    for i in 0..30 {
        c.add_conn(inbound_spec(
            i,
            c.now() + SimDuration::from_millis(2 * i as u64),
        ))
        .unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(5));
    assert_eq!(c.stats().completed, 30);
    assert_eq!(c.stats().failed, 0);
}

#[test]
fn probe_latency_gains_one_hop_after_offload() {
    let mut c = small_cluster(false);
    let tuple = FiveTuple::tcp(
        Ipv4Addr::new(10, 7, 1, 9),
        12345,
        Ipv4Addr::new(10, 7, 0, 1),
        SVC_PORT,
    );
    // Local probe.
    c.inject_probe_rx(VNIC, tuple, 64, ServerId(9), SimTime(0))
        .unwrap();
    c.run_until(SimTime(0) + SimDuration::from_millis(100));
    assert_eq!(c.stats().probe_latency.len(), 1);
    let local = c.stats().probe_latency.raw()[0];

    // Offloaded probe (new session, same path shape plus FE detour).
    c.trigger_offload(VNIC, c.now()).unwrap();
    c.run_until(c.now() + SimDuration::from_secs(3));
    let tuple2 = FiveTuple::tcp(
        Ipv4Addr::new(10, 7, 1, 10),
        12346,
        Ipv4Addr::new(10, 7, 0, 1),
        SVC_PORT,
    );
    c.inject_probe_rx(VNIC, tuple2, 64, ServerId(9), c.now())
        .unwrap();
    c.run_until(c.now() + SimDuration::from_millis(100));
    assert_eq!(c.stats().probe_latency.len(), 2);
    let offloaded = c.stats().probe_latency.raw()[1];
    let extra = offloaded - local;
    // Fig. 12: the detour adds a few tens of microseconds at most.
    assert!(extra > 0.0, "offloaded {offloaded} <= local {local}");
    assert!(extra < 100e-6, "extra hop {}us", extra * 1e6);
}

#[test]
fn auto_offload_triggers_under_sustained_overload() {
    let mut c = small_cluster(true);
    // Shrink the home switch to one core and a short measurement
    // window so ~50K offered CPS (about 0.85x its capacity) crosses
    // the 70% threshold within the test's horizon.
    {
        let vs = c.switch_mut(HOME).unwrap();
        *vs = {
            let mut cfg = ClusterConfig::default().vswitch;
            cfg.cores = 1;
            let mut fresh = VSwitch::new(HOME, cfg);
            fresh.set_util_window(SimDuration::from_millis(500));
            let mut vnic = Vnic::new(
                VNIC,
                VpcId(1),
                Ipv4Addr::new(10, 7, 0, 1),
                VnicProfile::default(),
                HOME,
            );
            vnic.allow_inbound_port(SVC_PORT);
            fresh.add_vnic(vnic).unwrap();
            fresh
        };
    }
    for i in 0..30_000u32 {
        let spec = crate::conn::ConnSpec {
            vnic: VNIC,
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, (1 + i / 250) as u8, (i % 250) as u8 + 1),
                (10_000 + i % 50_000) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                SVC_PORT,
            ),
            peer_server: ServerId(8 + (i % 8)),
            kind: crate::conn::ConnKind::Inbound,
            start: SimTime(0) + SimDuration::from_micros(20 * i as u64),
            payload: 64,
            overlay_encap_src: None,
        };
        c.add_conn(spec).unwrap();
    }
    c.run_until(SimTime(0) + SimDuration::from_secs(4));
    assert!(c.stats().offload_events >= 1, "controller never offloaded");
    assert_eq!(
        c.backend(VNIC).map(|m| m.phase),
        Some(OffloadPhase::Offloaded)
    );
    // After offload the BE runs cool again.
    let be_util = c.switch(HOME).unwrap().cpu_utilization(c.now());
    assert!(be_util < 0.5, "BE still hot: {be_util}");
}

#[test]
fn stateful_decap_survives_the_split() {
    let mut c = small_cluster(false);
    // A second vNIC acting as an LB real server with stateful decap.
    let profile = VnicProfile {
        stateful_decap: true,
        ..VnicProfile::default()
    };
    let mut vnic = Vnic::new(
        VnicId(2),
        VpcId(1),
        Ipv4Addr::new(10, 8, 0, 1),
        profile,
        ServerId(1),
    );
    vnic.allow_inbound_port(8080);
    c.add_vnic(vnic, ServerId(1), VmConfig::with_vcpus(16))
        .unwrap();
    c.trigger_offload(VnicId(2), SimTime(0)).unwrap();
    c.run_until(SimTime(0) + SimDuration::from_secs(3));

    let spec = crate::conn::ConnSpec {
        vnic: VnicId(2),
        vpc: VpcId(1),
        tuple: FiveTuple::tcp(
            Ipv4Addr::new(203, 0, 113, 7), // client behind the LB
            40_000,
            Ipv4Addr::new(10, 8, 0, 1),
            8080,
        ),
        peer_server: ServerId(9),
        kind: crate::conn::ConnKind::Inbound,
        start: c.now(),
        payload: 256,
        overlay_encap_src: Some(Ipv4Addr::new(100, 64, 0, 5)), // LB VIP
    };
    c.add_conn(spec).unwrap();
    // Inspect the session before the aging sweep reclaims the closed
    // connection.
    c.run_until(c.now() + SimDuration::from_millis(400));
    assert_eq!(c.stats().completed, 1);
    // The BE recorded the LB address from the FE-carried info.
    let key = SessionKey::of(VpcId(1), spec.tuple);
    let entry = c
        .switch(ServerId(1))
        .unwrap()
        .sessions
        .get(&key)
        .expect("session");
    assert_eq!(
        entry.state.decap.map(|d| d.overlay_src),
        Some(Ipv4Addr::new(100, 64, 0, 5))
    );
    // The entry is state-only at the BE (flows live at the FEs).
    assert!(entry.pre_actions.is_none());
}

#[test]
fn live_migration_via_be_location_update() {
    let mut c = small_cluster(false);
    c.trigger_offload(VNIC, SimTime(0)).unwrap();
    c.run_until(SimTime(0) + SimDuration::from_secs(3));
    // Migrate the VM/BE to server 7 (not an FE; the initial pool is
    // the four lowest-utilization rack peers).
    let new_home = ServerId(7);
    assert!(!c.fe_servers(VNIC).contains(&new_home));
    // Move state to the new home (migration copies it with the VM).
    c.engine.schedule_in(
        SimDuration::from_micros(800),
        Event::Config(ConfigOp::BeLocationUpdate {
            vnic: VNIC,
            new_home,
        }),
    );
    c.run_until(c.now() + SimDuration::from_millis(10));
    assert_eq!(c.vnic_home[&VNIC], new_home);
    for s in c.fe_servers(VNIC) {
        assert_eq!(c.fes.get(&(s, VNIC)).unwrap().be_location, new_home);
    }
}

/// Regression for the silent-membership assumption the refactor removed:
/// an RX packet landing on a server that is neither the vNIC's home nor a
/// configured FE (the pool scaled in / the FE was torn down while packets
/// were in flight) must be counted as a misroute — never processed
/// against missing FE state, never a panic.
#[test]
fn rx_at_server_removed_from_fe_pool_is_a_counted_misroute() {
    let mut c = small_cluster(false);
    c.trigger_offload(VNIC, SimTime(0)).unwrap();
    c.run_until(SimTime(0) + SimDuration::from_secs(3));
    let fes = c.fe_servers(VNIC);
    assert!(!fes.is_empty());
    let removed = fes[0];
    // Tear the FE down out from under the data plane (what a scale-in
    // config push does), then aim an RX packet straight at it the way a
    // stale gateway mapping would.
    c.fes.remove(&(removed, VNIC));
    let before = c.stats().misroutes;
    let tuple = FiveTuple::tcp(
        Ipv4Addr::new(10, 7, 1, 77),
        23_456,
        Ipv4Addr::new(10, 7, 0, 1),
        SVC_PORT,
    );
    let pkt = nezha_types::Packet::rx_data(
        (1u64 << 63) | 7_777, // probe bit: no conn bookkeeping needed
        VpcId(1),
        VNIC,
        tuple,
        nezha_types::TcpFlags::ACK,
        64,
    );
    let at = c.now();
    c.schedule_arrive(at, removed, pkt, at);
    c.run_until(at + SimDuration::from_millis(10));
    assert_eq!(
        c.stats().misroutes,
        before + 1,
        "RX at an ex-FE must be counted as a misroute"
    );
}

//! The packet-level testbed: servers, the Nezha data plane, connection
//! driving, and failure injection, all on the deterministic event engine.
//!
//! Every packet in the cluster takes the real code path of its current
//! architecture:
//!
//! * **local** — the traditional Fig. 1 pipeline on the home vSwitch;
//! * **Nezha TX** — BE state handling + NSH `TxCarry` encapsulation, one
//!   fabric hop to a hash-selected FE, FE rule/flow lookup, finalization
//!   and forwarding (§3.2.1 red flow);
//! * **Nezha RX** — gateway-resolved arrival at an FE, rule/flow lookup,
//!   NSH `RxCarry` with piggybacked pre-actions, one hop to the BE,
//!   state update + finalization + VM delivery (§3.2.1 blue flow);
//! * **notify packets** — FE→BE rule-table-involved state updates
//!   (§3.2.2), generated only on cache misses whose lookup result differs
//!   from the packet-carried state.
//!
//! The controller (`controller.rs`) and health monitor (`monitor.rs`)
//! extend this struct with the management plane.

use crate::be::{BackendMeta, OffloadPhase};
use crate::conn::{ConnKind, ConnSpec, ConnState, ConnStatus};
use crate::controller::{ControllerConfig, ControllerState};
use crate::fe::FrontEnd;
use crate::gateway::Gateway;
use crate::monitor::MonitorState;
use crate::vm::{VmConfig, VmModel};
use nezha_sim::engine::Engine;
use nezha_sim::fault::{FaultKind, FaultPlan, FaultState};
use nezha_sim::metrics::{
    CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry, SeriesHandle,
};
use nezha_sim::profile::{Profiler, Span, SpanId, StageHandle, StageSet};
use nezha_sim::resources::CpuOutcome;
use nezha_sim::rng::SimRng;
use nezha_sim::stats::{Counter, Samples, TimeSeries};
use nezha_sim::time::{SimDuration, SimTime};
use nezha_sim::topology::{Topology, TopologyConfig};
use nezha_sim::trace::{DropReason, PacketTrace, TraceEvent, TraceEventKind};
use nezha_types::{
    Direction, Ipv4Addr, NezhaError, NezhaHeader, NezhaPayloadKind, NezhaResult, Packet, ServerId,
    SessionKey, VnicId,
};
use nezha_vswitch::config::VSwitchConfig;
use nezha_vswitch::pipeline::{self, ProcessOutcome};
use nezha_vswitch::vnic::Vnic;
use nezha_vswitch::vswitch::VSwitch;
use std::collections::BTreeMap;

/// FE load-balancing granularity (ablation of §3.2.3's design choice).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LbMode {
    /// Nezha's choice: `Hash(5-tuple)` per flow — cache friendly, one
    /// rule lookup and one cached flow per session.
    FlowLevel,
    /// The rejected alternative: per-packet spreading — better short-term
    /// balance, but duplicated lookups and duplicated cached flows on
    /// every FE a session's packets touch.
    PacketLevel,
}

/// Cluster-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Fabric shape.
    pub topology: TopologyConfig,
    /// Per-server vSwitch configuration.
    pub vswitch: VSwitchConfig,
    /// Controller thresholds and delays.
    pub controller: ControllerConfig,
    /// vSwitch gateway-learning interval (200 ms in production, §4.2.1).
    pub learning_interval: SimDuration,
    /// Session aging sweep period.
    pub aging_period: SimDuration,
    /// *Base* retransmission timeout for lost connection packets. Retry
    /// `k` waits `retry_timeout · 2^k` — capped at
    /// [`retry_cap`](ClusterConfig::retry_cap) — with ±25% jitter drawn
    /// from the seeded sim RNG, so a cluster-wide fault does not
    /// re-synchronize every retransmission into one thundering herd.
    pub retry_timeout: SimDuration,
    /// Upper bound on the backed-off retry delay (the exponential growth
    /// saturates here).
    pub retry_cap: SimDuration,
    /// Retries before a connection is declared failed.
    pub max_retries: u32,
    /// RNG seed (full determinism).
    pub seed: u64,
    /// FE selection granularity (ablation; Nezha uses flow-level).
    pub lb_mode: LbMode,
    /// Ablation: send a notify packet on *every* FE cache miss instead of
    /// only when the looked-up rule-table-involved state differs from the
    /// carried state (§3.2.2's suppression).
    pub notify_always: bool,
    /// Ablation: skip the dual-running stage — the BE deletes its rule
    /// tables as soon as the FEs are configured, before peers have
    /// learned the new mapping (§4.2.1 explains why this hurts).
    pub skip_dual_running: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            topology: TopologyConfig::default(),
            vswitch: VSwitchConfig::default(),
            controller: ControllerConfig::default(),
            learning_interval: SimDuration::from_millis(200),
            aging_period: SimDuration::from_secs(1),
            retry_timeout: SimDuration::from_millis(500),
            retry_cap: SimDuration::from_secs(2),
            max_retries: 5,
            seed: 0x4e5a_2025,
            lb_mode: LbMode::FlowLevel,
            notify_always: false,
            skip_dual_running: false,
        }
    }
}

/// Fluent builder for [`ClusterConfig`], starting from the defaults.
///
/// ```
/// use nezha_core::cluster::ClusterConfig;
///
/// let cfg = ClusterConfig::builder()
///     .seed(7)
///     .auto(true)
///     .build();
/// assert_eq!(cfg.seed, 7);
/// assert!(cfg.controller.auto_offload);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Fabric shape.
    pub fn topology(mut self, topology: TopologyConfig) -> Self {
        self.cfg.topology = topology;
        self
    }

    /// Per-server vSwitch configuration.
    pub fn vswitch(mut self, vswitch: VSwitchConfig) -> Self {
        self.cfg.vswitch = vswitch;
        self
    }

    /// Controller thresholds and delays.
    pub fn controller(mut self, controller: ControllerConfig) -> Self {
        self.cfg.controller = controller;
        self
    }

    /// vSwitch gateway-learning interval.
    pub fn learning_interval(mut self, interval: SimDuration) -> Self {
        self.cfg.learning_interval = interval;
        self
    }

    /// Session aging sweep period.
    pub fn aging_period(mut self, period: SimDuration) -> Self {
        self.cfg.aging_period = period;
        self
    }

    /// Base retransmission timeout for lost connection packets; retry
    /// `k` waits `timeout · 2^k` (capped at
    /// [`retry_cap`](ClusterConfigBuilder::retry_cap)) with ±25% seeded
    /// jitter.
    pub fn retry_timeout(mut self, timeout: SimDuration) -> Self {
        self.cfg.retry_timeout = timeout;
        self
    }

    /// Cap on the exponentially backed-off retry delay.
    pub fn retry_cap(mut self, cap: SimDuration) -> Self {
        self.cfg.retry_cap = cap;
        self
    }

    /// Retries before a connection is declared failed.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.cfg.max_retries = retries;
        self
    }

    /// RNG seed (full determinism).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// FE selection granularity (Nezha uses flow-level).
    pub fn lb_mode(mut self, mode: LbMode) -> Self {
        self.cfg.lb_mode = mode;
        self
    }

    /// Ablation: notify on every FE cache miss.
    pub fn notify_always(mut self, always: bool) -> Self {
        self.cfg.notify_always = always;
        self
    }

    /// Ablation: skip the dual-running stage.
    pub fn skip_dual_running(mut self, skip: bool) -> Self {
        self.cfg.skip_dual_running = skip;
        self
    }

    /// Convenience: vSwitch core count (the most-tuned knob in tests).
    pub fn cores(mut self, cores: u32) -> Self {
        self.cfg.vswitch.cores = cores;
        self
    }

    /// Convenience: enables/disables both automatic offload and scaling.
    pub fn auto(mut self, auto: bool) -> Self {
        self.cfg.controller.auto_offload = auto;
        self.cfg.controller.auto_scale = auto;
        self
    }

    /// Convenience: automatic offload only (leaves auto-scaling as-is).
    pub fn auto_offload(mut self, auto: bool) -> Self {
        self.cfg.controller.auto_offload = auto;
        self
    }

    /// Convenience: automatic FE scaling only (leaves auto-offload as-is).
    pub fn auto_scale(mut self, auto: bool) -> Self {
        self.cfg.controller.auto_scale = auto;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ClusterConfig {
        self.cfg
    }
}

impl ClusterConfig {
    /// Starts a fluent [`ClusterConfigBuilder`] from the defaults.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }
}

/// Delayed configuration operations (the controller's pushes take effect
/// asynchronously, which is what creates the dual-running stage).
#[derive(Clone, Debug)]
pub enum ConfigOp {
    /// An FE finished installing the vNIC's rule tables.
    FeConfigured {
        /// The offloaded vNIC.
        vnic: VnicId,
        /// The FE's server.
        fe: ServerId,
    },
    /// The gateway's vNIC-server entry is replaced (learning then begins).
    GatewayUpdate {
        /// The vNIC's overlay address.
        addr: Ipv4Addr,
        /// New hosting set.
        servers: Vec<ServerId>,
    },
    /// Re-derive the gateway entry for an offloaded vNIC from the FEs
    /// that are actually ready at apply time (a config push may have
    /// failed on a full candidate in the meantime).
    GatewaySyncFes {
        /// The offloaded vNIC.
        vnic: VnicId,
    },
    /// All senders have learned the FE mapping: offload is *active*.
    CheckActivation {
        /// The offloaded vNIC.
        vnic: VnicId,
    },
    /// BE enters the final stage: drop rule tables and cached flows.
    BeFinalStage {
        /// The offloaded vNIC.
        vnic: VnicId,
    },
    /// Fallback completes: remove all FEs, return to local processing.
    FallbackFinal {
        /// The vNIC falling back.
        vnic: VnicId,
    },
    /// VM live migration (§7.2): repoint the BE location on all FEs.
    BeLocationUpdate {
        /// The migrated vNIC.
        vnic: VnicId,
        /// The new home server.
        new_home: ServerId,
    },
}

/// Events driving the cluster.
#[derive(Clone, Debug)]
pub enum Event {
    /// A packet arrives at a server's vSwitch.
    Arrive {
        /// Receiving server.
        server: ServerId,
        /// The packet.
        pkt: Packet,
        /// When the packet's current network journey began (for latency).
        sent_at: SimTime,
    },
    /// Start a registered connection.
    StartConn {
        /// Connection id.
        conn: u64,
    },
    /// A step's packet reached its terminal point; inject the next step.
    AdvanceConn {
        /// Connection id.
        conn: u64,
        /// The step that completed.
        from_step: usize,
    },
    /// Retransmit a lost step.
    RetryStep {
        /// Connection id.
        conn: u64,
        /// The step to retry.
        step: usize,
    },
    /// Periodic controller tick (utilization reports + decisions).
    ControllerTick,
    /// Periodic health-monitor tick (ping polling).
    MonitorTick,
    /// Periodic session-aging sweep.
    AgingTick,
    /// A delayed configuration push takes effect.
    Config(ConfigOp),
    /// Hard-crash a server's SmartNIC.
    Crash {
        /// The crashing server.
        server: ServerId,
    },
    /// Begin a standalone probe packet's journey from `from`.
    StartProbe {
        /// The probe packet (RX-oriented, trace has the probe bit set).
        pkt: Packet,
        /// The injecting server.
        from: ServerId,
    },
    /// A scripted fault transition fires (see [`Cluster::apply_fault_plan`]).
    Fault(FaultKind),
}

/// Aggregated measurements.
///
/// Since the telemetry redesign this is an owned *view* assembled on
/// demand from the cluster's [`MetricsRegistry`] by [`Cluster::stats`];
/// field names are unchanged so `c.stats.X` call sites only became
/// `c.stats().X`. Experiments should prefer reading the registry snapshot
/// directly (`c.metrics().snapshot()`).
#[derive(Clone, Debug)]
pub struct ClusterStats {
    /// Connection-packet delivery counter (ok vs lost).
    pub pkts: Counter,
    /// End-to-end latency of probe packets (seconds).
    pub probe_latency: Samples,
    /// Completed connection latencies (seconds).
    pub conn_latency: Samples,
    /// Completed connections per time bin (CPS series).
    pub cps_series: TimeSeries,
    /// Lost packets per time bin.
    pub loss_series: TimeSeries,
    /// Injected packets per time bin.
    pub total_series: TimeSeries,
    /// Offload activation completion times (seconds; Table 4).
    pub offload_completion: Samples,
    /// Connections completed / denied / failed.
    pub completed: u64,
    /// Connections denied by policy.
    pub denied: u64,
    /// Connections failed after retries.
    pub failed: u64,
    /// Notify packets generated (§3.2.2).
    pub notifies: u64,
    /// Mirror copies emitted toward collectors (advanced tables, §2.2.2).
    /// Under Nezha the FE emits TX-direction copies and the BE emits
    /// RX-direction ones (each holds the packet at finalization time).
    pub mirror_copies: u64,
    /// RX packets that reached the BE after the final stage and had to be
    /// bounced to an FE (stale vNIC-server mappings).
    pub stale_bounces: u64,
    /// Packets that arrived somewhere that could not process them.
    pub misroutes: u64,
    /// Controller event counters.
    pub offload_events: u64,
    /// Scale-out operations performed.
    pub scale_out_events: u64,
    /// Scale-in operations performed.
    pub scale_in_events: u64,
    /// Fallback operations performed.
    pub fallback_events: u64,
    /// Failovers completed.
    pub failover_events: u64,
    /// Monitor false-positive suspensions (Appendix C).
    pub monitor_suspensions: u64,
    /// Scripted fault transitions applied (chaos injection).
    pub fault_events: u64,
    /// Graceful degradations: the FE pool collapsed and the BE fell back
    /// to local processing from the data plane.
    pub degraded_events: u64,
    /// FE pool membership changes caused by failure handling — each one
    /// re-hashes a slice of the flow space (re-hash churn).
    pub rehash_churn: u64,
    /// Crash-to-failover detection latencies (seconds).
    pub detection_latency: Samples,
}

/// The cluster's telemetry plumbing: the shared registry, the shared
/// packet-trace ring, and the pre-registered handles every hot-path
/// increment goes through. Registered once in [`Cluster::new`].
#[derive(Debug, Clone)]
pub(crate) struct ClusterTelemetry {
    /// The registry shared by the engine, every vSwitch, and the cluster.
    pub(crate) registry: MetricsRegistry,
    /// The trace ring shared with every vSwitch (disabled until
    /// [`Cluster::enable_trace`]).
    pub(crate) trace: PacketTrace,
    /// The cycle-attribution profiler shared with every vSwitch (disabled
    /// until [`Cluster::enable_profile`]).
    pub(crate) profiler: Profiler,
    /// Pre-registered span stage handles (lint rule D6: stage lookups are
    /// string-keyed and must never run mid-simulation).
    pub(crate) stages: StageSet,
    pub(crate) pkt_ok: CounterHandle,
    pub(crate) pkt_dropped: CounterHandle,
    pub(crate) probe_latency: HistogramHandle,
    pub(crate) conn_latency: HistogramHandle,
    pub(crate) cps_series: SeriesHandle,
    pub(crate) loss_series: SeriesHandle,
    pub(crate) total_series: SeriesHandle,
    pub(crate) offload_completion: HistogramHandle,
    pub(crate) completed: CounterHandle,
    pub(crate) denied: CounterHandle,
    pub(crate) failed: CounterHandle,
    pub(crate) notifies: CounterHandle,
    pub(crate) mirror_copies: CounterHandle,
    pub(crate) stale_bounces: CounterHandle,
    pub(crate) misroutes: CounterHandle,
    pub(crate) offload_events: CounterHandle,
    pub(crate) scale_out_events: CounterHandle,
    pub(crate) scale_in_events: CounterHandle,
    pub(crate) fallback_events: CounterHandle,
    pub(crate) failover_events: CounterHandle,
    pub(crate) monitor_suspensions: CounterHandle,
    pub(crate) fault_events: CounterHandle,
    pub(crate) fault_link_drops: CounterHandle,
    pub(crate) fault_notify_drops: CounterHandle,
    pub(crate) fault_inflight_loss: CounterHandle,
    pub(crate) degraded_events: CounterHandle,
    pub(crate) rehash_churn: CounterHandle,
    pub(crate) detection_latency: HistogramHandle,
    /// Per-server controller report gauges, indexed by `ServerId.0`.
    /// Pre-registered at startup: registry lookups are string-keyed and
    /// must never run mid-simulation (lint rule D5).
    pub(crate) ctrl_gauges: Vec<ServerCtrlGauges>,
}

/// The gauges one controller report publishes for one server.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ServerCtrlGauges {
    pub(crate) cpu_util: GaugeHandle,
    pub(crate) mem_util: GaugeHandle,
    pub(crate) local_cycles: GaugeHandle,
    pub(crate) remote_cycles: GaugeHandle,
}

impl ClusterTelemetry {
    fn register(registry: MetricsRegistry, servers: usize) -> Self {
        let ctrl_gauges = (0..servers)
            .map(|i| {
                let labels = [("server", i.to_string())];
                ServerCtrlGauges {
                    cpu_util: registry.gauge("ctrl.cpu_util", &labels),
                    mem_util: registry.gauge("ctrl.mem_util", &labels),
                    local_cycles: registry.gauge("ctrl.local_cycles", &labels),
                    remote_cycles: registry.gauge("ctrl.remote_cycles", &labels),
                }
            })
            .collect();
        let c = |name: &str| registry.counter(name, &[]);
        let h = |name: &str| registry.histogram(name, &[]);
        let profiler = Profiler::new();
        let stages = StageSet::register(&profiler);
        ClusterTelemetry {
            trace: PacketTrace::disabled(),
            profiler,
            stages,
            pkt_ok: c("pkt.ok"),
            pkt_dropped: c("pkt.dropped"),
            probe_latency: h("latency.probe"),
            conn_latency: h("latency.conn"),
            cps_series: registry.series("conn.cps", &[], SimDuration::from_millis(50)),
            loss_series: registry.series("pkt.loss", &[], SimDuration::from_millis(100)),
            total_series: registry.series("pkt.total", &[], SimDuration::from_millis(100)),
            offload_completion: h("offload.completion"),
            completed: c("conn.completed"),
            denied: c("conn.denied"),
            failed: c("conn.failed"),
            notifies: c("nsh.notifies"),
            mirror_copies: c("pkt.mirror_copies"),
            stale_bounces: c("pkt.stale_bounces"),
            misroutes: c("pkt.misroutes"),
            offload_events: c("ctrl.offload_events"),
            scale_out_events: c("ctrl.scale_out_events"),
            scale_in_events: c("ctrl.scale_in_events"),
            fallback_events: c("ctrl.fallback_events"),
            failover_events: c("ctrl.failover_events"),
            monitor_suspensions: c("monitor.suspensions"),
            fault_events: c("fault.events"),
            fault_link_drops: c("fault.link_drops"),
            fault_notify_drops: c("fault.notify_drops"),
            fault_inflight_loss: c("fault.inflight_loss"),
            degraded_events: c("ctrl.degraded_events"),
            rehash_churn: c("fault.rehash_churn"),
            detection_latency: h("fault.detection_latency"),
            ctrl_gauges,
            registry,
        }
    }

    /// Counter increment (hot path: one borrow + one index).
    pub(crate) fn inc(&self, h: CounterHandle) {
        self.registry.inc(h);
    }

    /// Counter increment by `n`.
    pub(crate) fn add(&self, h: CounterHandle, n: u64) {
        self.registry.add(h, n);
    }

    /// Duration observation in seconds.
    pub(crate) fn observe_duration(&self, h: HistogramHandle, d: SimDuration) {
        self.registry.observe_duration(h, d);
    }

    /// Series bin accumulation.
    pub(crate) fn series_add(&self, h: SeriesHandle, at: SimTime, v: f64) {
        self.registry.series_add(h, at, v);
    }

    /// Records one handler root span (zero cycles, one packet, the wire
    /// bytes) plus its cycle-bearing leaves, returning the root id so the
    /// caller can thread it through the next BE↔FE hop. The root parents
    /// on the packet's carried causal id (`pkt.prof_span`). Zero-cycle
    /// leaves are skipped — markers that must exist regardless (the NSH
    /// hop parents) are recorded by the caller directly.
    fn profile_handler(
        &self,
        stage: StageHandle,
        pkt: &Packet,
        server: ServerId,
        start: SimTime,
        end: SimTime,
        leaves: &[(StageHandle, u64)],
    ) -> Option<SpanId> {
        if !self.profiler.is_enabled() {
            return None;
        }
        let base = Span {
            stage,
            parent: SpanId::from_raw(pkt.prof_span),
            trace: pkt.trace,
            server,
            vnic: pkt.vnic,
            start,
            end,
            cycles: 0,
            bytes: pkt.wire_len() as u64,
            packets: 1,
        };
        let root = self.profiler.record(base);
        for &(stage, cycles) in leaves {
            if cycles > 0 {
                self.profiler.record(Span {
                    stage,
                    parent: root,
                    cycles,
                    bytes: 0,
                    packets: 0,
                    ..base
                });
            }
        }
        root
    }

    /// Records the zero-cycle drop marker for a packet the fault engine
    /// (or a dead peer) discarded, parented under the packet's causal
    /// span so injected losses show up inside the victim's span tree.
    fn profile_fault_drop(&self, pkt: &Packet, server: ServerId, at: SimTime) {
        if !self.profiler.is_enabled() {
            return;
        }
        self.profiler.record(Span {
            stage: self.stages.fault_drop,
            parent: SpanId::from_raw(pkt.prof_span),
            trace: pkt.trace,
            server,
            vnic: pkt.vnic,
            start: at,
            end: at,
            cycles: 0,
            bytes: pkt.wire_len() as u64,
            packets: 1,
        });
    }

    /// Assembles the legacy [`ClusterStats`] view from the registry.
    fn stats(&self) -> ClusterStats {
        let v = |h: CounterHandle| self.registry.counter_value(h);
        ClusterStats {
            pkts: Counter {
                ok: v(self.pkt_ok),
                dropped: v(self.pkt_dropped),
            },
            probe_latency: self.registry.histogram_samples(self.probe_latency),
            conn_latency: self.registry.histogram_samples(self.conn_latency),
            cps_series: self.registry.series_data(self.cps_series),
            loss_series: self.registry.series_data(self.loss_series),
            total_series: self.registry.series_data(self.total_series),
            offload_completion: self.registry.histogram_samples(self.offload_completion),
            completed: v(self.completed),
            denied: v(self.denied),
            failed: v(self.failed),
            notifies: v(self.notifies),
            mirror_copies: v(self.mirror_copies),
            stale_bounces: v(self.stale_bounces),
            misroutes: v(self.misroutes),
            offload_events: v(self.offload_events),
            scale_out_events: v(self.scale_out_events),
            scale_in_events: v(self.scale_in_events),
            fallback_events: v(self.fallback_events),
            failover_events: v(self.failover_events),
            monitor_suspensions: v(self.monitor_suspensions),
            fault_events: v(self.fault_events),
            degraded_events: v(self.degraded_events),
            rehash_churn: v(self.rehash_churn),
            detection_latency: self.registry.histogram_samples(self.detection_latency),
        }
    }
}

const PROBE_BIT: u64 = 1 << 63;
/// Probe packets with this bit traverse the full data plane but are not
/// recorded in the latency samples (bulk/background streams).
const SILENT_BIT: u64 = 1 << 62;

/// The flow hash used for FE selection: `Hash(5-tuple)` over the session's
/// canonical orientation, so both directions of a session select the same
/// FE and each session performs exactly one rule lookup and caches one
/// flow entry. (Nezha does not *need* this — state lives at the BE either
/// way, §3.2.3 — but collocating directions avoids duplicate lookups and
/// duplicate cached flows, and is what makes Fig. 9's CPS knee sit at 4
/// FEs.)
fn flow_hash(t: &nezha_types::FiveTuple) -> u64 {
    t.canonical().stable_hash()
}

/// The vSwitch cost path an FE lookup took: a flow-cache miss re-executes
/// the full slow path, a hit is fast-path work.
fn fe_path(miss: bool) -> nezha_vswitch::PathTaken {
    if miss {
        nezha_vswitch::PathTaken::Slow
    } else {
        nezha_vswitch::PathTaken::Fast
    }
}

/// Builds the profiler leaf list for one FE handler: the NSH carry share
/// first (decap on the TX side, encap on RX), then the lookup's own
/// per-stage cost split. Overflow tiers clamp onto the last tier handle.
fn fe_stage_leaves(
    st: &StageSet,
    carry: StageHandle,
    carry_cycles: u64,
    c: pipeline::StageCosts,
) -> Vec<(StageHandle, u64)> {
    let mut leaves = vec![
        (carry, carry_cycles),
        (st.dma, c.dma),
        (st.parse, c.parse),
        (st.session_lookup, c.session),
        (st.slowpath, c.overhead),
    ];
    for (i, &t) in c.tiers.iter().enumerate() {
        leaves.push((st.rule_tiers[i.min(st.rule_tiers.len() - 1)], t));
    }
    leaves
}

/// Mixes a per-packet discriminator into the flow hash for the
/// packet-level LB ablation.
fn packet_hash(t: &nezha_types::FiveTuple, trace: u64) -> u64 {
    let mut h = flow_hash(t) ^ trace.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 29;
    h
}

/// The (un-jittered) delay before retry number `retries + 1`:
/// `base · 2^retries`, saturating at `cap`. The caller applies ±25%
/// jitter from the seeded sim RNG on top.
pub fn retry_backoff(base: SimDuration, cap: SimDuration, retries: u32) -> SimDuration {
    let factor = 1u64 << retries.min(31);
    SimDuration(base.0.saturating_mul(factor)).min(cap)
}

/// The packet-level testbed.
#[derive(Debug)]
pub struct Cluster {
    /// Configuration.
    pub cfg: ClusterConfig,
    /// The fabric.
    pub topo: Topology,
    /// Event engine.
    pub engine: Engine<Event>,
    pub(crate) switches: Vec<VSwitch>,
    pub(crate) alive: Vec<bool>,
    /// The gateway's versioned vNIC-server table.
    pub gateway: Gateway,
    pub(crate) fes: BTreeMap<(ServerId, VnicId), FrontEnd>,
    pub(crate) be_meta: BTreeMap<VnicId, BackendMeta>,
    pub(crate) vnic_home: BTreeMap<VnicId, ServerId>,
    pub(crate) vnic_addr: BTreeMap<VnicId, Ipv4Addr>,
    /// Controller-side master copy of each vNIC's tables (tenant intent),
    /// used to (re)configure FEs and to re-arm the BE on fallback.
    pub(crate) master_vnics: BTreeMap<VnicId, Vnic>,
    pub(crate) vms: BTreeMap<VnicId, VmModel>,
    pub(crate) conns: BTreeMap<u64, ConnState>,
    next_conn_id: u64,
    next_probe_id: u64,
    /// Telemetry: shared registry + trace + pre-registered handles.
    pub(crate) tel: ClusterTelemetry,
    /// Controller bookkeeping.
    pub(crate) controller: ControllerState,
    /// Monitor bookkeeping.
    pub(crate) monitor: MonitorState,
    pub(crate) rng: SimRng,
    /// Blackholed directed server pairs (fabric faults between otherwise
    /// healthy servers — the Appendix C.1 scenario the centralized
    /// monitor cannot see).
    blackholes: std::collections::BTreeSet<(ServerId, ServerId)>,
    /// Live scripted fault conditions (chaos injection). Sampled from its
    /// own forked RNG stream so fault outcomes replay seed-for-seed.
    pub(crate) faults: FaultState,
    /// Global switch: when false the cluster behaves as the pre-Nezha
    /// baseline (no offloading ever triggers).
    pub nezha_enabled: bool,
}

impl Cluster {
    /// The FE-selection hash for one packet under the configured LB mode.
    fn select_hash(&self, t: &nezha_types::FiveTuple, trace: u64) -> u64 {
        match self.cfg.lb_mode {
            LbMode::FlowLevel => flow_hash(t),
            LbMode::PacketLevel => packet_hash(t, trace),
        }
    }

    /// Builds a cluster and schedules the periodic management ticks.
    pub fn new(cfg: ClusterConfig) -> Self {
        let topo = Topology::new(cfg.topology);
        let n = topo.total_servers() as usize;
        let tel = ClusterTelemetry::register(MetricsRegistry::new(), n);
        let switches: Vec<VSwitch> = (0..n)
            .map(|i| {
                let mut vs = VSwitch::new(ServerId(i as u32), cfg.vswitch);
                vs.attach_metrics(&tel.registry);
                vs.attach_trace(&tel.trace);
                vs.attach_profiler(&tel.profiler);
                vs
            })
            .collect();
        let mut engine = Engine::new();
        engine.attach_metrics(&tel.registry);
        engine.schedule_in(cfg.controller.report_period, Event::ControllerTick);
        engine.schedule_in(cfg.controller.ping_period, Event::MonitorTick);
        engine.schedule_in(cfg.aging_period, Event::AgingTick);
        Cluster {
            topo,
            engine,
            switches,
            alive: vec![true; n],
            gateway: Gateway::new(cfg.learning_interval),
            fes: BTreeMap::new(),
            be_meta: BTreeMap::new(),
            vnic_home: BTreeMap::new(),
            vnic_addr: BTreeMap::new(),
            master_vnics: BTreeMap::new(),
            vms: BTreeMap::new(),
            conns: BTreeMap::new(),
            next_conn_id: 1,
            next_probe_id: 1,
            tel,
            controller: ControllerState::new(),
            monitor: MonitorState::new(),
            rng: SimRng::new(cfg.seed),
            blackholes: std::collections::BTreeSet::new(),
            // An independent stream derived from the seed (not forked from
            // `rng`, so enabling faults never perturbs baseline draws).
            faults: FaultState::new(SimRng::new(
                cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xFA17,
            )),
            nezha_enabled: true,
            cfg,
        }
    }

    /// Blackholes the fabric path between two servers in both directions
    /// (a link/switch fault the servers themselves survive). The BE↔FE
    /// mutual ping (Appendix C.1) is the only detector for this.
    pub fn blackhole_link(&mut self, a: ServerId, b: ServerId) {
        self.blackholes.insert((a, b));
        self.blackholes.insert((b, a));
    }

    /// Restores a blackholed path.
    pub fn heal_link(&mut self, a: ServerId, b: ServerId) {
        self.blackholes.remove(&(a, b));
        self.blackholes.remove(&(b, a));
    }

    /// True when the directed path `from -> to` is blackholed.
    pub fn link_blackholed(&self, from: ServerId, to: ServerId) -> bool {
        self.blackholes.contains(&(from, to))
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The cluster's shared [`MetricsRegistry`] — engine, every vSwitch,
    /// and the management plane all report here. Take `.snapshot()` to
    /// read every metric deterministically.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.tel.registry
    }

    /// The shared packet-trace ring (disabled until
    /// [`Cluster::enable_trace`]).
    pub fn trace(&self) -> &PacketTrace {
        &self.tel.trace
    }

    /// Turns on structured per-packet tracing, keeping at most `capacity`
    /// most-recent events. Pass 0 to disable again.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tel.trace.set_capacity(capacity);
    }

    /// The shared cycle-attribution [`Profiler`] (disabled until
    /// [`Cluster::enable_profile`]).
    pub fn profiler(&self) -> &Profiler {
        &self.tel.profiler
    }

    /// Turns on cycle-attribution profiling: every subsequent CPU charge
    /// records a causal span tree, keeping at most `span_capacity` full
    /// span records (aggregate stage/flamegraph totals are unbounded).
    pub fn enable_profile(&mut self, span_capacity: usize) {
        self.tel.profiler.enable(span_capacity);
    }

    /// Total cycles the CPU model has charged across every switch and
    /// vNIC since construction — the ground truth the profiler's
    /// per-stage totals must reconcile with.
    pub fn total_charged_cycles(&self) -> f64 {
        self.switches
            .iter()
            .map(|vs| vs.vnic_cycle_shares().values().sum::<f64>())
            .sum()
    }

    /// The legacy aggregated view, assembled from the metrics registry.
    pub fn stats(&self) -> ClusterStats {
        self.tel.stats()
    }

    /// Records one cluster-level trace event for `pkt` at `server`.
    fn trace_pkt(&self, at: SimTime, server: ServerId, pkt: &Packet, kind: TraceEventKind) {
        if self.tel.trace.is_enabled() {
            self.tel.trace.record(TraceEvent {
                at,
                trace_id: pkt.trace,
                server,
                vnic: pkt.vnic,
                kind,
            });
        }
    }

    /// Immutable access to a server's vSwitch.
    ///
    /// Errors with [`NezhaError::UnknownServer`] when `s` is outside the
    /// topology.
    pub fn switch(&self, s: ServerId) -> NezhaResult<&VSwitch> {
        self.switches
            .get(s.0 as usize)
            .ok_or(NezhaError::UnknownServer(s))
    }

    /// Mutable access to a server's vSwitch (tests / rule pushes).
    pub fn switch_mut(&mut self, s: ServerId) -> NezhaResult<&mut VSwitch> {
        self.switches
            .get_mut(s.0 as usize)
            .ok_or(NezhaError::UnknownServer(s))
    }

    /// Whether a server is alive.
    pub fn is_alive(&self, s: ServerId) -> bool {
        self.alive[s.0 as usize]
    }

    /// The BE metadata of an offloaded vNIC, if any.
    pub fn backend(&self, vnic: VnicId) -> Option<&BackendMeta> {
        self.be_meta.get(&vnic)
    }

    /// The VM attached to a vNIC.
    pub fn vm(&self, vnic: VnicId) -> Option<&VmModel> {
        self.vms.get(&vnic)
    }

    /// Number of FEs currently hosted for `vnic`.
    pub fn fe_count(&self, vnic: VnicId) -> usize {
        self.fes.keys().filter(|(_, v)| *v == vnic).count()
    }

    /// An FE's `(hits, misses, cache_skips)` counters.
    pub fn fe_counters(&self, fe: ServerId, vnic: VnicId) -> Option<(u64, u64, u64)> {
        self.fes.get(&(fe, vnic)).map(|f| f.counters())
    }

    /// Number of flows cached at one FE.
    pub fn fe_cached_flows(&self, fe: ServerId, vnic: VnicId) -> Option<usize> {
        self.fes.get(&(fe, vnic)).map(|f| f.cached_flows())
    }

    /// Pins an elephant flow's session to a dedicated FE (§7.5): the BE's
    /// TX selection, the gateway's RX selection, and the general hash
    /// ring are all updated — the dedicated FE serves (nearly) only the
    /// elephant from now on.
    pub fn pin_flow(&mut self, vnic: VnicId, key: SessionKey, fe: ServerId) -> NezhaResult<()> {
        let meta = self
            .be_meta
            .get_mut(&vnic)
            .ok_or(NezhaError::NotOffloaded(vnic))?;
        if !meta.fe_list.contains(&fe) {
            return Err(NezhaError::NotAnFe { vnic, fe });
        }
        meta.pin_flow(key, fe);
        let general = meta.general_fes();
        let addr = self.vnic_addr[&vnic];
        let now = self.engine.now();
        self.gateway.pin(addr, key.canonical.stable_hash(), fe);
        if !general.is_empty() {
            self.gateway.update(addr, general, now);
        }
        Ok(())
    }

    /// The BE location configured on one FE (None when that FE does not
    /// exist).
    pub fn fe_be_location(&self, fe: ServerId, vnic: VnicId) -> Option<ServerId> {
        self.fes.get(&(fe, vnic)).map(|f| f.be_location)
    }

    /// The current home (BE) server of a vNIC.
    pub fn home_of(&self, vnic: VnicId) -> Option<ServerId> {
        self.vnic_home.get(&vnic).copied()
    }

    /// Servers hosting FEs for `vnic`, in stable (id) order.
    pub fn fe_servers(&self, vnic: VnicId) -> Vec<ServerId> {
        let mut servers: Vec<ServerId> = self
            .fes
            .keys()
            .filter(|(_, v)| *v == vnic)
            .map(|(s, _)| *s)
            .collect();
        servers.sort_unstable_by_key(|s| s.0);
        servers
    }

    /// Installs a vNIC (with VM) on its home server and registers it at
    /// the gateway.
    ///
    /// Errors when `home` is outside the topology or its vSwitch cannot
    /// fit the vNIC's tables; the cluster is left unchanged.
    pub fn add_vnic(&mut self, vnic: Vnic, home: ServerId, vm: VmConfig) -> NezhaResult<()> {
        let id = vnic.id;
        let addr = vnic.addr;
        self.switches
            .get_mut(home.0 as usize)
            .ok_or(NezhaError::UnknownServer(home))?
            .add_vnic(vnic.clone())
            .map_err(|_| NezhaError::InsufficientMemory {
                what: "vNIC tables",
            })?;
        self.master_vnics.insert(id, vnic);
        self.vnic_home.insert(id, home);
        self.vnic_addr.insert(id, addr);
        self.gateway.update(addr, vec![home], self.engine.now());
        self.vms.insert(id, VmModel::new(vm));
        Ok(())
    }

    /// Registers the mapping of a peer/client overlay address so the
    /// vNIC's egress lookups resolve to real topology servers.
    ///
    /// Errors with [`NezhaError::UnknownVnic`] for a vNIC that was never
    /// [added](Cluster::add_vnic).
    pub fn map_peer(&mut self, vnic: VnicId, addr: Ipv4Addr, server: ServerId) -> NezhaResult<()> {
        let home = *self
            .vnic_home
            .get(&vnic)
            .ok_or(NezhaError::UnknownVnic(vnic))?;
        if let Some(master) = self.master_vnics.get_mut(&vnic) {
            master.tables.vnic_server.set(addr, server);
        }
        let home_vs = &mut self.switches[home.0 as usize];
        if let Some(home_vnic) = home_vs.vnic_mut(vnic) {
            home_vnic.tables.vnic_server.set(addr, server);
            if home_vs.sync_vnic_memory(vnic).is_err() {
                // The learned-mapping cache is full: drop the entry (the
                // gateway remains authoritative; traffic to this peer
                // resolves via the gateway/default path instead).
                if let Some(home_vnic) = home_vs.vnic_mut(vnic) {
                    home_vnic.tables.vnic_server.remove(addr);
                }
                let _ = home_vs.sync_vnic_memory(vnic);
            }
        }
        let m = self.cfg.vswitch.memory;
        for ((fe_server, v), fe) in self.fes.iter_mut() {
            if *v == vnic {
                fe.vnic.tables.vnic_server.set(addr, server);
                let pool = &mut self.switches[fe_server.0 as usize].mem;
                if fe.sync_table_memory(pool, &m).is_err() {
                    fe.vnic.tables.vnic_server.remove(addr);
                    let _ = fe.sync_table_memory(pool, &m);
                }
            }
        }
        Ok(())
    }

    /// Registers a connection and schedules its start. Peer addresses are
    /// mapped automatically. Returns the connection id.
    ///
    /// Errors with [`NezhaError::UnknownVnic`] when `spec.vnic` was never
    /// [added](Cluster::add_vnic).
    pub fn add_conn(&mut self, spec: ConnSpec) -> NezhaResult<u64> {
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        let peer_addr = match spec.kind {
            ConnKind::Inbound | ConnKind::PersistentInbound | ConnKind::SynOnly => {
                spec.tuple.src_ip
            }
            ConnKind::Outbound => spec.tuple.dst_ip,
        };
        self.map_peer(spec.vnic, peer_addr, spec.peer_server)?;
        self.conns.insert(
            id,
            ConnState {
                spec,
                pos: 0,
                retries: 0,
                started_at: spec.start,
                status: ConnStatus::InFlight,
            },
        );
        self.engine
            .schedule_at(spec.start, Event::StartConn { conn: id });
        Ok(id)
    }

    /// Injects a standalone probe packet (latency measurement, Fig. 12).
    /// RX probes start at `from` and follow the full ingress path to the
    /// VM; the delivered latency lands in [`ClusterStats::probe_latency`].
    pub fn inject_probe_rx(
        &mut self,
        vnic: VnicId,
        tuple: nezha_types::FiveTuple,
        payload: u32,
        from: ServerId,
        at: SimTime,
    ) -> NezhaResult<()> {
        self.inject_rx_packet(vnic, tuple, payload, from, at, false)
    }

    /// Injects a bulk/background RX packet: takes the full data-plane
    /// path (and loads every resource on it) but is excluded from the
    /// probe-latency samples. Used for elephant-flow streams (§7.5).
    pub fn inject_bulk_rx(
        &mut self,
        vnic: VnicId,
        tuple: nezha_types::FiveTuple,
        payload: u32,
        from: ServerId,
        at: SimTime,
    ) -> NezhaResult<()> {
        self.inject_rx_packet(vnic, tuple, payload, from, at, true)
    }

    fn inject_rx_packet(
        &mut self,
        vnic: VnicId,
        tuple: nezha_types::FiveTuple,
        payload: u32,
        from: ServerId,
        at: SimTime,
        silent: bool,
    ) -> NezhaResult<()> {
        let vpc = self
            .master_vnics
            .get(&vnic)
            .ok_or(NezhaError::UnknownVnic(vnic))?
            .vpc;
        let id = PROBE_BIT | if silent { SILENT_BIT } else { 0 } | self.next_probe_id;
        self.next_probe_id += 1;
        let pkt = Packet::rx_data(id, vpc, vnic, tuple, nezha_types::TcpFlags::ACK, payload);
        self.engine.schedule_at(at, Event::StartProbe { pkt, from });
        Ok(())
    }

    /// Crashes a server at `at` (its vSwitch stops processing and stops
    /// answering health probes).
    pub fn crash_at(&mut self, server: ServerId, at: SimTime) {
        self.engine.schedule_at(at, Event::Crash { server });
    }

    /// Schedules every transition of a scripted [`FaultPlan`] onto the
    /// event engine. Faults replay on the simulated clock from the
    /// cluster's seeded fault RNG stream: two runs with the same seed and
    /// the same plan observe identical fault behavior.
    pub fn apply_fault_plan(&mut self, plan: FaultPlan) {
        for ev in plan.into_events() {
            self.engine.schedule_at(ev.at, Event::Fault(ev.kind));
        }
    }

    /// Read access to the live fault conditions.
    pub fn fault_state(&self) -> &FaultState {
        &self.faults
    }

    /// Runs the cluster until simulated time `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(s) = self.engine.pop_until(deadline) {
            let at = s.at;
            self.handle(s.event, at);
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch.
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event, now: SimTime) {
        match ev {
            Event::Arrive {
                server,
                pkt,
                sent_at,
            } => self.handle_arrive(server, pkt, sent_at, now),
            Event::StartConn { conn } => self.inject_step(conn, 0, now),
            Event::AdvanceConn { conn, from_step } => self.advance_conn(conn, from_step, now),
            Event::RetryStep { conn, step } => self.retry_step(conn, step, now),
            Event::ControllerTick => self.controller_tick(now),
            Event::MonitorTick => self.monitor_tick(now),
            Event::AgingTick => {
                for i in 0..self.switches.len() {
                    if self.alive[i] {
                        self.switches[i].expire_sessions(now);
                    }
                }
                self.engine
                    .schedule_in(self.cfg.aging_period, Event::AgingTick);
            }
            Event::Config(op) => self.apply_config(op, now),
            Event::Crash { server } => {
                self.alive[server.0 as usize] = false;
                self.monitor.crash_pending.insert(server, now);
            }
            Event::StartProbe { pkt, from } => self.start_probe(pkt, from, now),
            Event::Fault(kind) => self.handle_fault(kind, now),
        }
    }

    /// Applies one scripted fault transition: cluster-level side effects
    /// first (liveness flags, vSwitch cycle multipliers), then the
    /// recorded condition set the per-packet queries are answered from.
    fn handle_fault(&mut self, kind: FaultKind, now: SimTime) {
        self.tel.inc(self.tel.fault_events);
        match &kind {
            FaultKind::Crash { server } => {
                if let Some(alive) = self.alive.get_mut(server.0 as usize) {
                    *alive = false;
                }
                self.monitor.crash_pending.insert(*server, now);
            }
            FaultKind::Restart { server } => {
                if let Some(alive) = self.alive.get_mut(server.0 as usize) {
                    *alive = true;
                }
                self.monitor.crash_pending.remove(server);
            }
            FaultKind::GraySlow { server, multiplier } => {
                if let Some(vs) = self.switches.get_mut(server.0 as usize) {
                    vs.set_cycle_multiplier(*multiplier);
                }
            }
            FaultKind::GrayRecover { server } => {
                if let Some(vs) = self.switches.get_mut(server.0 as usize) {
                    vs.set_cycle_multiplier(1.0);
                }
            }
            _ => {}
        }
        self.faults.apply(&kind);
    }

    // ------------------------------------------------------------------
    // Connection driving.
    // ------------------------------------------------------------------

    fn inject_step(&mut self, conn_id: u64, step_idx: usize, now: SimTime) {
        let Some(conn) = self.conns.get(&conn_id) else {
            return;
        };
        if conn.status != ConnStatus::InFlight || conn.pos != step_idx {
            return;
        }
        let spec = conn.spec;
        let script = spec.kind.script();
        let step = script[step_idx];
        let tuple = spec.step_tuple(step.dir);
        let payload = if step.has_payload { spec.payload } else { 0 };
        let trace = (conn_id << 4) | step_idx as u64;
        let mut pkt = match step.dir {
            Direction::Tx => {
                Packet::tx_data(trace, spec.vpc, spec.vnic, tuple, step.flags, payload)
            }
            Direction::Rx => {
                Packet::rx_data(trace, spec.vpc, spec.vnic, tuple, step.flags, payload)
            }
        };
        self.tel.series_add(self.tel.total_series, now, 1.0);
        match step.dir {
            Direction::Tx => {
                // VM-originated: the kernel pays its share of the
                // connection's cycles to build and send the segment, then
                // the packet appears at the home vSwitch.
                let Some(vm) = self.vms.get_mut(&spec.vnic) else {
                    return self.lose_packet(trace, now);
                };
                let Some(sent) = vm.deliver_packet(now) else {
                    return self.lose_packet(trace, now);
                };
                let home = self.vnic_home[&spec.vnic];
                self.engine.schedule_at(
                    sent,
                    Event::Arrive {
                        server: home,
                        pkt,
                        sent_at: sent,
                    },
                );
            }
            Direction::Rx => {
                pkt.overlay_encap_src = spec.overlay_encap_src;
                // Peer-originated: resolve the vNIC's current location via
                // the (possibly stale) gateway-learned mapping.
                let addr = self.vnic_addr[&spec.vnic];
                let h = self.select_hash(&tuple, trace);
                let dst = self.gateway.select(addr, spec.peer_server, h, now);
                match dst {
                    Some(dst) => {
                        pkt.outer_src = Some(spec.peer_server);
                        pkt.outer_dst = Some(dst);
                        let lat = self.topo.latency(spec.peer_server, dst, pkt.wire_len());
                        self.engine.schedule_at(
                            now + lat,
                            Event::Arrive {
                                server: dst,
                                pkt,
                                sent_at: now,
                            },
                        );
                    }
                    None => self.lose_packet(trace, now),
                }
            }
        }
    }

    fn advance_conn(&mut self, conn_id: u64, from_step: usize, now: SimTime) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        if conn.status != ConnStatus::InFlight || conn.pos != from_step {
            return; // duplicate / stale completion
        }
        conn.pos += 1;
        conn.retries = 0;
        self.tel.inc(self.tel.pkt_ok);
        if conn.pos == conn.spec.kind.script().len() {
            conn.status = ConnStatus::Completed;
            let latency = now.since(conn.started_at);
            self.tel.inc(self.tel.completed);
            self.tel.observe_duration(self.tel.conn_latency, latency);
            self.tel.series_add(self.tel.cps_series, now, 1.0);
            if let Some(vm) = self.vms.get_mut(&conn.spec.vnic) {
                vm.conn_completed();
            }
        } else {
            let next = conn.pos;
            self.inject_step(conn_id, next, now);
        }
    }

    fn retry_step(&mut self, conn_id: u64, step: usize, now: SimTime) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        if conn.status != ConnStatus::InFlight || conn.pos != step {
            return;
        }
        conn.retries += 1;
        if conn.retries > self.cfg.max_retries {
            conn.status = ConnStatus::Failed;
            self.tel.inc(self.tel.failed);
            return;
        }
        self.inject_step(conn_id, step, now);
    }

    /// Records a lost conn/probe packet and schedules the retry with
    /// exponential backoff (base `retry_timeout`, doubling per retry up
    /// to `retry_cap`) plus ±25% seeded jitter.
    fn lose_packet(&mut self, trace: u64, now: SimTime) {
        self.tel.series_add(self.tel.loss_series, now, 1.0);
        self.tel.inc(self.tel.pkt_dropped);
        if self.faults.any_active() {
            self.tel.inc(self.tel.fault_inflight_loss);
        }
        if trace & PROBE_BIT != 0 || trace == 0 {
            return; // probes and notify packets (trace 0) are not retried
        }
        let conn = trace >> 4;
        let step = (trace & 0xf) as usize;
        let retries = self.conns.get(&conn).map_or(0, |c| c.retries);
        let base = retry_backoff(self.cfg.retry_timeout, self.cfg.retry_cap, retries);
        let jitter = 0.75 + 0.5 * self.rng.f64();
        let delay = SimDuration::from_secs_f64(base.as_secs_f64() * jitter);
        self.engine
            .schedule_in(delay, Event::RetryStep { conn, step });
    }

    /// A policy drop: terminal for the connection, no retry.
    fn deny_conn(&mut self, trace: u64) {
        if trace & PROBE_BIT != 0 {
            return;
        }
        if let Some(conn) = self.conns.get_mut(&(trace >> 4)) {
            if conn.status == ConnStatus::InFlight {
                conn.status = ConnStatus::Denied;
                self.tel.inc(self.tel.denied);
            }
        }
    }

    /// A step's packet reached its terminal point.
    fn complete_step(&mut self, trace: u64, sent_at: SimTime, at: SimTime) {
        if trace & PROBE_BIT != 0 {
            if trace & SILENT_BIT == 0 {
                self.tel
                    .observe_duration(self.tel.probe_latency, at.since(sent_at));
            }
            return;
        }
        let conn = trace >> 4;
        let step = (trace & 0xf) as usize;
        self.engine.schedule_at(
            at,
            Event::AdvanceConn {
                conn,
                from_step: step,
            },
        );
    }

    fn start_probe(&mut self, mut pkt: Packet, from: ServerId, now: SimTime) {
        let addr = self.vnic_addr[&pkt.vnic];
        match self.gateway.select(addr, from, flow_hash(&pkt.tuple), now) {
            Some(dst) => {
                pkt.outer_src = Some(from);
                pkt.outer_dst = Some(dst);
                let lat = self.topo.latency(from, dst, pkt.wire_len());
                self.engine.schedule_at(
                    now + lat,
                    Event::Arrive {
                        server: dst,
                        pkt,
                        sent_at: now,
                    },
                );
            }
            None => self.lose_packet(pkt.trace, now),
        }
    }

    // ------------------------------------------------------------------
    // Data plane.
    // ------------------------------------------------------------------

    fn handle_arrive(&mut self, server: ServerId, pkt: Packet, sent_at: SimTime, now: SimTime) {
        if !self.alive[server.0 as usize] {
            self.trace_pkt(
                now,
                server,
                &pkt,
                TraceEventKind::Drop(DropReason::PeerDown),
            );
            self.tel.profile_fault_drop(&pkt, server, now);
            return self.lose_packet(pkt.trace, now);
        }
        if let (Some(src), Some(dst)) = (pkt.outer_src, pkt.outer_dst) {
            if self.link_blackholed(src, dst) {
                self.trace_pkt(
                    now,
                    server,
                    &pkt,
                    TraceEventKind::Drop(DropReason::PeerDown),
                );
                self.tel.profile_fault_drop(&pkt, server, now);
                return self.lose_packet(pkt.trace, now);
            }
            // Scripted link faults: partitions drop deterministically,
            // (bursty) loss models sample the seeded fault RNG.
            if self.faults.should_drop(src, dst) {
                self.tel.inc(self.tel.fault_link_drops);
                self.trace_pkt(now, server, &pkt, TraceEventKind::Drop(DropReason::Fault));
                self.tel.profile_fault_drop(&pkt, server, now);
                return self.lose_packet(pkt.trace, now);
            }
        }
        if let Some(nsh) = pkt.nezha {
            match nsh.kind {
                NezhaPayloadKind::TxCarry => {
                    self.fe_handle_tx_carry(server, nsh, pkt, sent_at, now)
                }
                NezhaPayloadKind::RxCarry => {
                    self.be_handle_rx_carry(server, nsh, pkt, sent_at, now)
                }
                NezhaPayloadKind::Notify => self.be_handle_notify(server, nsh, pkt, now),
                NezhaPayloadKind::HealthProbe | NezhaPayloadKind::HealthReply => {
                    // Health traffic is handled inline by the monitor tick
                    // (replies are modeled as observation of `alive`).
                }
            }
            return;
        }
        // Plain packet.
        let is_home = self.vnic_home.get(&pkt.vnic) == Some(&server);
        if is_home {
            match pkt.dir {
                Direction::Tx => self.be_handle_tx(server, pkt, sent_at, now),
                Direction::Rx => self.be_handle_direct_rx(server, pkt, sent_at, now),
            }
        } else if self.fes.contains_key(&(server, pkt.vnic)) && pkt.dir == Direction::Rx {
            self.fe_handle_rx(server, pkt, sent_at, now);
        } else {
            // Stale mapping pointed at a server that is neither home nor a
            // configured FE (e.g. an FE that was just scaled in).
            self.tel.inc(self.tel.misroutes);
            self.lose_packet(pkt.trace, now);
        }
    }

    /// Does this vNIC currently steer TX traffic through FEs?
    fn nezha_active_for_tx(&self, vnic: VnicId) -> bool {
        self.be_meta.get(&vnic).is_some_and(|m| {
            matches!(m.phase, OffloadPhase::OffloadDual | OffloadPhase::Offloaded)
                && !m.ready_fes().is_empty()
        })
    }

    /// The graceful-degradation trigger: an offloaded vNIC whose entire
    /// FE pool is dead. The BE's rule tables are gone and every packet
    /// hashed to an FE would be lost until the monitor rebuilds the pool
    /// — which it will not do while suspended (Appendix C.2).
    fn fe_pool_collapsed(&self, vnic: VnicId) -> bool {
        self.be_meta.get(&vnic).is_some_and(|m| {
            m.phase == OffloadPhase::Offloaded
                && !m.ready_fes().iter().any(|fe| self.alive[fe.0 as usize])
        })
    }

    /// Emergency fallback from the data plane when the FE pool collapses:
    /// re-arm the BE with the master tables and schedule the normal
    /// fallback teardown. Unlike [`Cluster::trigger_fallback`] this runs
    /// mid-packet and tolerates the dead pool. Returns false when the
    /// home vSwitch cannot fit the tables (packets stay lost until the
    /// management plane recovers).
    fn degrade_to_local(&mut self, vnic: VnicId, now: SimTime) -> bool {
        let Some(home) = self.vnic_home.get(&vnic).copied() else {
            return false;
        };
        let Some(master) = self.master_vnics.get(&vnic).cloned() else {
            return false;
        };
        if self.switches[home.0 as usize].vnic(vnic).is_none()
            && self.switches[home.0 as usize].add_vnic(master).is_err()
        {
            return false;
        }
        let Some(meta) = self.be_meta.get_mut(&vnic) else {
            return false;
        };
        meta.phase = OffloadPhase::FallbackDual;
        self.tel.inc(self.tel.degraded_events);
        let addr = self.vnic_addr[&vnic];
        let cfg = self.cfg.controller;
        let gw_at = now + cfg.gateway_update_delay;
        self.engine.schedule_at(
            gw_at,
            Event::Config(ConfigOp::GatewayUpdate {
                addr,
                servers: vec![home],
            }),
        );
        self.engine.schedule_at(
            gw_at + self.gateway.learning_interval() + SimDuration::from_millis(50),
            Event::Config(ConfigOp::FallbackFinal { vnic }),
        );
        true
    }

    /// TX packet from the local VM at its home (BE) vSwitch.
    fn be_handle_tx(&mut self, server: ServerId, pkt: Packet, sent_at: SimTime, now: SimTime) {
        if self.fe_pool_collapsed(pkt.vnic) {
            self.degrade_to_local(pkt.vnic, now);
        }
        if !self.nezha_active_for_tx(pkt.vnic) {
            return self.process_locally(server, pkt, sent_at, now);
        }
        let key = SessionKey::of(pkt.vpc, pkt.tuple);
        let vs = &mut self.switches[server.0 as usize];
        let costs = vs.config().costs;
        let mem_model = vs.config().memory;
        let is_first = vs.sessions.get(&key).is_none();
        let cycles = if is_first {
            costs.be_first_packet
        } else {
            costs.be_per_packet
        };
        let done = match vs.charge(now, pkt.vnic, cycles) {
            CpuOutcome::Dropped => return self.lose_packet(pkt.trace, now),
            CpuOutcome::Done { done_at } => done_at,
        };
        let charged = vs.scaled_cycles(cycles);
        self.controller.note_local_cycles(server, cycles);
        // State handling: create (state-only) or update, locally.
        if is_first {
            let mem_ok = vs
                .sessions
                .establish(
                    key,
                    pkt.vnic,
                    Direction::Tx,
                    None,
                    now,
                    &mut vs.mem,
                    &mem_model,
                )
                .is_ok();
            if !mem_ok {
                // State memory exhausted: the flow is processed but its
                // stateful guarantees degrade (counted as overflow).
            }
        }
        let mut nsh = NezhaHeader::bare(NezhaPayloadKind::TxCarry, pkt.vnic, pkt.vpc);
        if let Some(entry) = vs.sessions.get_mut(&key) {
            pipeline::update_state(None, &mut entry.state, &pkt);
            entry.last_seen = now;
            nsh.first_dir = entry.state.first_dir;
            nsh.decap_addr = entry.state.decap.map(|d| d.overlay_src);
            if entry.state.stats.policy != 0 {
                nsh.stats_policy = Some(entry.state.stats.policy);
            }
        } else {
            nsh.first_dir = Some(Direction::Tx);
        }
        // Select the FE by flow hash and ship the packet with its state.
        // `nezha_active_for_tx` above implies the meta exists; degrade to a
        // loss (never a panic) if that invariant is ever broken.
        let Some(meta) = self.be_meta.get(&pkt.vnic) else {
            return self.lose_packet(pkt.trace, now);
        };
        let h = match self.cfg.lb_mode {
            LbMode::FlowLevel => flow_hash(&pkt.tuple),
            LbMode::PacketLevel => packet_hash(&pkt.tuple, pkt.trace),
        };
        let Some(fe) = meta.select_fe(&key, h) else {
            return self.lose_packet(pkt.trace, now);
        };
        let mut out = pkt.with_nezha(nsh);
        out.outer_src = Some(server);
        out.outer_dst = Some(fe);
        // Span tree: the BE charge is pure session work (the cost model
        // does not split it further); the zero-cycle encap marker is the
        // causal parent the FE's span will hang off across the hop.
        if let Some(root) = self.tel.profile_handler(
            self.tel.stages.be_tx,
            &pkt,
            server,
            now,
            done,
            &[(self.tel.stages.session_update, charged)],
        ) {
            let encap = self.tel.profiler.record(Span {
                stage: self.tel.stages.nsh_encap,
                parent: Some(root),
                trace: pkt.trace,
                server,
                vnic: pkt.vnic,
                start: done,
                end: done,
                cycles: 0,
                bytes: 0,
                packets: 0,
            });
            if let Some(encap) = encap {
                out.prof_span = encap.to_raw();
            }
        }
        self.trace_pkt(done, server, &out, TraceEventKind::NshEncap);
        let lat = self.topo.latency(server, fe, out.wire_len());
        self.engine.schedule_at(
            done + lat,
            Event::Arrive {
                server: fe,
                pkt: out,
                sent_at,
            },
        );
    }

    /// TX-carried packet arriving at an FE: look up pre-actions, finalize
    /// with the carried state, and forward to the destination.
    fn fe_handle_tx_carry(
        &mut self,
        server: ServerId,
        nsh: NezhaHeader,
        mut pkt: Packet,
        sent_at: SimTime,
        now: SimTime,
    ) {
        if !self.fes.contains_key(&(server, pkt.vnic)) {
            self.tel.inc(self.tel.misroutes);
            return self.lose_packet(pkt.trace, now);
        }
        self.trace_pkt(now, server, &pkt, TraceEventKind::NshDecap);
        // Split borrows: switch and FE are distinct fields.
        let vs = &mut self.switches[server.0 as usize];
        let mem_model = vs.config().memory;
        let costs = vs.config().costs;
        let Some(fe) = self.fes.get_mut(&(server, pkt.vnic)) else {
            return; // membership checked on entry; fes untouched since
        };
        // A cache miss re-executes the full slow path: "the FE executes
        // the same code as before deploying Nezha" (§5.1) — which is why
        // per-FE CPS capacity matches a local vSwitch's, and Fig. 9's
        // gain curve needs ~4 FEs to saturate the VM.
        let slow = fe.vnic.slow_path_cycles(&costs, pkt.wire_len());
        let (pair, miss) = fe.lookup_or_insert(&pkt.tuple, Direction::Tx, &mut vs.mem, &mem_model);
        let cycles = costs.fe_carry
            + if miss {
                slow
            } else {
                costs.fast_path_cycles(pkt.wire_len())
            };
        let done = match vs.charge(now, pkt.vnic, cycles) {
            CpuOutcome::Dropped => return self.lose_packet(pkt.trace, now),
            CpuOutcome::Done { done_at } => done_at,
        };
        // Attribute the FE charge: the `fe_carry` share is NSH decap work,
        // the remainder follows the lookup path's own cost decomposition.
        // The root hangs off the BE's encap marker carried in `prof_span`,
        // and replaces it so the notify (if any) chains off this FE visit.
        if self.tel.profiler.is_enabled() {
            let charged = vs.scaled_cycles(cycles);
            let decap = charged.min(costs.fe_carry);
            let leaves = fe_stage_leaves(
                &self.tel.stages,
                self.tel.stages.nsh_decap,
                decap,
                pipeline::stage_costs(
                    &costs,
                    &fe.vnic,
                    pkt.wire_len(),
                    charged - decap,
                    fe_path(miss),
                ),
            );
            if let Some(root) = self.tel.profile_handler(
                self.tel.stages.fe_tx_carry,
                &pkt,
                server,
                now,
                done,
                &leaves,
            ) {
                pkt.prof_span = root.to_raw();
            }
        }
        self.controller.note_remote_cycles(server, cycles);

        // Reconstruct the carried state and finalize.
        let mut carried = nezha_types::SessionState {
            first_dir: nsh.first_dir,
            ..Default::default()
        };
        if let Some(a) = nsh.decap_addr {
            carried.decap = Some(nezha_types::StatefulDecapState { overlay_src: a });
        }
        if let Some(p) = nsh.stats_policy {
            carried.stats.policy = p;
        }
        let inner = pkt.strip_nezha();
        let action = pipeline::finalize_with_state(&pair.tx, &carried, &inner);
        if action.verdict == nezha_types::Decision::Drop {
            return self.deny_conn(pkt.trace);
        }
        self.tel.add(
            self.tel.mirror_copies,
            pipeline::mirror_copies(&action) as u64,
        );

        // Notify packets: rule-table-involved state discovered at the FE
        // that differs from what the packet carried (§3.2.2).
        let state_differs =
            pair.tx.stats_policy != 0 && nsh.stats_policy != Some(pair.tx.stats_policy);
        if miss && (state_differs || self.cfg.notify_always) {
            self.send_notify(server, &pkt, pair.tx.stats_policy, done, now);
        }

        // Forward toward the destination (peer endpoint).
        self.forward_to_peer(server, inner, action, sent_at, done);
    }

    /// RX packet arriving at an FE from the fabric: look up pre-actions,
    /// piggyback them (plus state-initialization info), send to the BE.
    fn fe_handle_rx(&mut self, server: ServerId, pkt: Packet, sent_at: SimTime, now: SimTime) {
        let vs = &mut self.switches[server.0 as usize];
        let mem_model = vs.config().memory;
        let costs = vs.config().costs;
        let Some(fe) = self.fes.get_mut(&(server, pkt.vnic)) else {
            return; // caller (handle_arrive) checked membership
        };
        let slow = fe.vnic.slow_path_cycles(&costs, pkt.wire_len());
        let be = fe.be_location;
        let (pair, miss) = fe.lookup_or_insert(&pkt.tuple, Direction::Rx, &mut vs.mem, &mem_model);
        let cycles = costs.fe_carry
            + if miss {
                slow
            } else {
                costs.fast_path_cycles(pkt.wire_len())
            };
        let done = match vs.charge(now, pkt.vnic, cycles) {
            CpuOutcome::Dropped => return self.lose_packet(pkt.trace, now),
            CpuOutcome::Done { done_at } => done_at,
        };
        // Attribute the FE charge as on the TX side, except the carry
        // share is encap work here (the FE wraps the packet for the BE).
        let mut hop_span = 0u64;
        if self.tel.profiler.is_enabled() {
            let charged = vs.scaled_cycles(cycles);
            let encap = charged.min(costs.fe_carry);
            let leaves = fe_stage_leaves(
                &self.tel.stages,
                self.tel.stages.nsh_encap,
                0,
                pipeline::stage_costs(
                    &costs,
                    &fe.vnic,
                    pkt.wire_len(),
                    charged - encap,
                    fe_path(miss),
                ),
            );
            if let Some(root) = self.tel.profile_handler(
                self.tel.stages.fe_rx,
                &pkt,
                server,
                now,
                done,
                &leaves,
            ) {
                // The encap leaf doubles as the causal hop parent the BE
                // will see — record it explicitly to capture its id.
                let id = self.tel.profiler.record(Span {
                    stage: self.tel.stages.nsh_encap,
                    parent: Some(root),
                    trace: pkt.trace,
                    server,
                    vnic: pkt.vnic,
                    start: now,
                    end: done,
                    cycles: encap,
                    bytes: 0,
                    packets: 0,
                });
                if let Some(id) = id {
                    hop_span = id.to_raw();
                }
            }
        }
        self.controller.note_remote_cycles(server, cycles);

        let mut nsh = NezhaHeader::bare(NezhaPayloadKind::RxCarry, pkt.vnic, pkt.vpc);
        nsh.pre_actions = Some(pair);
        // Information the BE needs for state init that FE processing
        // destroys: the overlay encap source (stateful decap, §3.2.2).
        nsh.decap_addr = pkt.overlay_encap_src;
        if pair.rx.stats_policy != 0 {
            nsh.stats_policy = Some(pair.rx.stats_policy);
        }
        let mut out = pkt;
        out.overlay_encap_src = None; // FE rewrites the outer header
        let mut out = out.with_nezha(nsh);
        out.outer_src = Some(server);
        out.outer_dst = Some(be);
        out.prof_span = hop_span;
        self.trace_pkt(done, server, &out, TraceEventKind::NshEncap);
        let lat = self.topo.latency(server, be, out.wire_len());
        self.engine.schedule_at(
            done + lat,
            Event::Arrive {
                server: be,
                pkt: out,
                sent_at,
            },
        );
    }

    /// RX-carried packet arriving at the BE: update local state with the
    /// piggybacked pre-actions and deliver to the VM.
    fn be_handle_rx_carry(
        &mut self,
        server: ServerId,
        nsh: NezhaHeader,
        pkt: Packet,
        sent_at: SimTime,
        now: SimTime,
    ) {
        if self.vnic_home.get(&pkt.vnic) != Some(&server) {
            self.tel.inc(self.tel.misroutes);
            return self.lose_packet(pkt.trace, now);
        }
        let Some(pair) = nsh.pre_actions else {
            self.tel.inc(self.tel.misroutes);
            return self.lose_packet(pkt.trace, now);
        };
        self.trace_pkt(now, server, &pkt, TraceEventKind::NshDecap);
        let key = SessionKey::of(pkt.vpc, pkt.tuple);
        let vs = &mut self.switches[server.0 as usize];
        let mem_model = vs.config().memory;
        let costs = vs.config().costs;
        let is_first = vs.sessions.get(&key).is_none();
        let cycles = if is_first {
            costs.be_first_packet
        } else {
            costs.be_per_packet
        };
        let done = match vs.charge(now, pkt.vnic, cycles) {
            CpuOutcome::Dropped => return self.lose_packet(pkt.trace, now),
            CpuOutcome::Done { done_at } => done_at,
        };
        // The BE charge is again pure session work; the zero-cycle decap
        // marker documents the hop in the tree (flamegraphs skip it).
        if let Some(root) = self.tel.profile_handler(
            self.tel.stages.be_rx_carry,
            &pkt,
            server,
            now,
            done,
            &[(self.tel.stages.session_update, vs.scaled_cycles(cycles))],
        ) {
            self.tel.profiler.record(Span {
                stage: self.tel.stages.nsh_decap,
                parent: Some(root),
                trace: pkt.trace,
                server,
                vnic: pkt.vnic,
                start: now,
                end: now,
                cycles: 0,
                bytes: 0,
                packets: 0,
            });
        }
        self.controller.note_local_cycles(server, cycles);

        if is_first {
            let _ = vs.sessions.establish(
                key,
                pkt.vnic,
                Direction::Rx,
                None,
                now,
                &mut vs.mem,
                &mem_model,
            );
        }
        // Restore the info the FE carried for state initialization.
        let mut inner = pkt.strip_nezha();
        inner.overlay_encap_src = nsh.decap_addr;
        let action = if let Some(entry) = vs.sessions.get_mut(&key) {
            entry.last_seen = now;
            // Adopt rule-table-involved state piggybacked in the header
            // without verification (§3.2.2 RX workflow).
            if let Some(p) = nsh.stats_policy {
                entry.state.stats.policy = p;
            }
            pipeline::process_pkt(&pair.rx, &mut entry.state, &inner)
        } else {
            let mut scratch = nezha_types::SessionState::default();
            pipeline::process_pkt(&pair.rx, &mut scratch, &inner)
        };
        if action.verdict == nezha_types::Decision::Drop {
            return self.deny_conn(pkt.trace);
        }
        self.tel.add(
            self.tel.mirror_copies,
            pipeline::mirror_copies(&action) as u64,
        );
        self.deliver_to_vm(pkt.vnic, pkt.trace, sent_at, done, now);
    }

    /// Standalone notify packet at the BE (§3.2.2 TX workflow).
    fn be_handle_notify(&mut self, server: ServerId, nsh: NezhaHeader, pkt: Packet, now: SimTime) {
        let key = SessionKey::of(pkt.vpc, pkt.tuple);
        let vs = &mut self.switches[server.0 as usize];
        let cycles = vs.config().costs.be_per_packet;
        let done = match vs.charge(now, pkt.vnic, cycles) {
            // A lost notify is retried implicitly on the next miss.
            CpuOutcome::Dropped => return,
            CpuOutcome::Done { done_at } => done_at,
        };
        // The notify chains off the FE span that emitted it, closing the
        // BE → FE → BE causal loop for the packet that missed.
        self.tel.profile_handler(
            self.tel.stages.be_notify,
            &pkt,
            server,
            now,
            done,
            &[(self.tel.stages.notify, vs.scaled_cycles(cycles))],
        );
        if let Some(entry) = vs.sessions.get_mut(&key) {
            if let Some(p) = nsh.stats_policy {
                entry.state.stats.policy = p;
            }
        }
    }

    /// RX packet arriving directly at the BE (sender's mapping is stale or
    /// the vNIC is simply not offloaded).
    fn be_handle_direct_rx(
        &mut self,
        server: ServerId,
        pkt: Packet,
        sent_at: SimTime,
        now: SimTime,
    ) {
        // Graceful degradation: with every FE dead, bouncing is futile —
        // fall back to local processing if the tables fit.
        if self.fe_pool_collapsed(pkt.vnic) && self.degrade_to_local(pkt.vnic, now) {
            return self.process_locally(server, pkt, sent_at, now);
        }
        let key = SessionKey::of(pkt.vpc, pkt.tuple);
        let fe = match self.be_meta.get(&pkt.vnic) {
            Some(meta) if meta.phase == OffloadPhase::Offloaded => {
                meta.select_fe(&key, flow_hash(&pkt.tuple))
            }
            // Local / dual-running: the BE still has rules and flows.
            _ => return self.process_locally(server, pkt, sent_at, now),
        };
        // Final stage: tables are gone. Bounce to an FE (costs a parse).
        self.tel.inc(self.tel.stale_bounces);
        let Some(fe) = fe else {
            return self.lose_packet(pkt.trace, now);
        };
        let vs = &mut self.switches[server.0 as usize];
        let cycles = vs.config().costs.parse;
        let done = match vs.charge(now, pkt.vnic, cycles) {
            CpuOutcome::Dropped => return self.lose_packet(pkt.trace, now),
            CpuOutcome::Done { done_at } => done_at,
        };
        let mut out = pkt;
        // A stale bounce costs one parse; the FE visit it triggers hangs
        // off this root via `prof_span`.
        if let Some(root) = self.tel.profile_handler(
            self.tel.stages.be_direct_rx,
            &pkt,
            server,
            now,
            done,
            &[(self.tel.stages.parse, vs.scaled_cycles(cycles))],
        ) {
            out.prof_span = root.to_raw();
        }
        out.outer_src = Some(server);
        out.outer_dst = Some(fe);
        let lat = self.topo.latency(server, fe, out.wire_len());
        self.engine.schedule_at(
            done + lat,
            Event::Arrive {
                server: fe,
                pkt: out,
                sent_at,
            },
        );
    }

    /// Traditional processing at the home vSwitch.
    fn process_locally(&mut self, server: ServerId, pkt: Packet, sent_at: SimTime, now: SimTime) {
        let vs = &mut self.switches[server.0 as usize];
        let slow_cycles = vs
            .vnic(pkt.vnic)
            .map(|v| v.slow_path_cycles(&vs.config().costs, pkt.wire_len()));
        let r = vs.process_local(&pkt, now);
        let cycles_hint = match r.path {
            nezha_vswitch::PathTaken::Fast => vs.config().costs.fast_path_cycles(pkt.wire_len()),
            nezha_vswitch::PathTaken::Slow => slow_cycles
                .unwrap_or_else(|| vs.config().costs.slow_path_cycles(pkt.wire_len(), 0, 0)),
        };
        self.controller.note_local_cycles(server, cycles_hint);
        match r.outcome {
            ProcessOutcome::Forwarded(action) => {
                self.tel.add(
                    self.tel.mirror_copies,
                    pipeline::mirror_copies(&action) as u64,
                );
                match pkt.dir {
                    Direction::Tx => self.forward_to_peer(server, pkt, action, sent_at, r.done_at),
                    Direction::Rx => {
                        self.deliver_to_vm(pkt.vnic, pkt.trace, sent_at, r.done_at, now)
                    }
                }
            }
            ProcessOutcome::AclDrop | ProcessOutcome::Unroutable | ProcessOutcome::RateLimited => {
                self.deny_conn(pkt.trace)
            }
            ProcessOutcome::CpuOverload => self.lose_packet(pkt.trace, now),
        }
    }

    /// Final TX forwarding toward the peer endpoint: the conn/probe's
    /// packet has cleared the Nezha/local pipeline.
    fn forward_to_peer(
        &mut self,
        from: ServerId,
        pkt: Packet,
        action: nezha_types::Action,
        sent_at: SimTime,
        done: SimTime,
    ) {
        // Resolve where the peer lives: the action's next hop when the
        // tables knew it, else the conn spec (gateway egress).
        let peer = action.next_hop.or_else(|| {
            self.conns
                .get(&(pkt.trace >> 4))
                .map(|c| c.spec.peer_server)
        });
        let Some(peer) = peer else {
            // No destination (pure probe toward gateway): terminal here.
            self.complete_step(pkt.trace, sent_at, done);
            return;
        };
        let lat = self.topo.latency(from, peer, pkt.wire_len());
        // The peer endpoint consumes the packet without vSwitch charging
        // (the peer side is assumed unloaded, §6.1 testbed setup).
        self.complete_step(pkt.trace, sent_at, done + lat);
    }

    /// Final RX delivery into the VM kernel.
    fn deliver_to_vm(
        &mut self,
        vnic: VnicId,
        trace: u64,
        sent_at: SimTime,
        done: SimTime,
        now: SimTime,
    ) {
        let Some(vm) = self.vms.get_mut(&vnic) else {
            return self.complete_step(trace, sent_at, done);
        };
        match vm.deliver_packet(done) {
            Some(kernel_done) => self.complete_step(trace, sent_at, kernel_done),
            None => self.lose_packet(trace, now),
        }
    }

    fn send_notify(
        &mut self,
        fe_server: ServerId,
        pkt: &Packet,
        policy: u8,
        done: SimTime,
        _now: SimTime,
    ) {
        self.tel.inc(self.tel.notifies);
        self.trace_pkt(done, fe_server, pkt, TraceEventKind::Notify);
        let be = self.vnic_home[&pkt.vnic];
        let mut nsh = NezhaHeader::bare(NezhaPayloadKind::Notify, pkt.vnic, pkt.vpc);
        nsh.stats_policy = Some(policy);
        let mut notify = Packet::tx_data(
            0,
            pkt.vpc,
            pkt.vnic,
            pkt.tuple,
            nezha_types::TcpFlags::empty(),
            0,
        )
        .with_nezha(nsh);
        notify.outer_src = Some(fe_server);
        notify.outer_dst = Some(be);
        // The notify inherits the emitting FE visit's span so the BE-side
        // processing lands in the same causal tree as the original packet.
        notify.prof_span = pkt.prof_span;
        // Scripted notify loss (§3.2.2's channel is best-effort: the BE's
        // rule-table-involved state converges on a later miss instead).
        if self.faults.drop_notify() {
            self.tel.inc(self.tel.fault_notify_drops);
            self.trace_pkt(
                done,
                fe_server,
                &notify,
                TraceEventKind::Drop(DropReason::Fault),
            );
            self.tel.profile_fault_drop(&notify, fe_server, done);
            return;
        }
        let lat = self.topo.latency(fe_server, be, notify.wire_len());
        self.engine.schedule_at(
            done + lat,
            Event::Arrive {
                server: be,
                pkt: notify,
                sent_at: done,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmConfig;
    use nezha_types::{FiveTuple, VpcId};
    use nezha_vswitch::vnic::VnicProfile;

    const HOME: ServerId = ServerId(0);
    const VNIC: VnicId = VnicId(1);
    const SVC_PORT: u16 = 9000;

    fn small_cluster(auto: bool) -> Cluster {
        let cfg = ClusterConfig::builder()
            .topology(TopologyConfig {
                servers_per_rack: 8,
                racks_per_pod: 2,
                pods: 1,
                ..TopologyConfig::default()
            })
            .auto(auto)
            .build();
        let mut cluster = Cluster::new(cfg);
        let mut vnic = Vnic::new(
            VNIC,
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile::default(),
            HOME,
        );
        vnic.allow_inbound_port(SVC_PORT);
        cluster
            .add_vnic(vnic, HOME, VmConfig::with_vcpus(64))
            .unwrap();
        cluster
    }

    fn inbound_spec(n: u16, at: SimTime) -> crate::conn::ConnSpec {
        crate::conn::ConnSpec {
            vnic: VNIC,
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 1, (n % 200) as u8 + 1),
                10_000 + n,
                Ipv4Addr::new(10, 7, 0, 1),
                SVC_PORT,
            ),
            peer_server: ServerId(8 + (n % 8) as u32), // other rack
            kind: crate::conn::ConnKind::Inbound,
            start: at,
            payload: 128,
            overlay_encap_src: None,
        }
    }

    fn run_conns(cluster: &mut Cluster, n: u16, spacing: SimDuration) -> SimTime {
        for i in 0..n {
            cluster
                .add_conn(inbound_spec(i, SimTime(0) + spacing.times(i as u64)))
                .unwrap();
        }
        let end = SimTime(0) + spacing.times(n as u64) + SimDuration::from_secs(5);
        cluster.run_until(end);
        end
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let base = SimDuration::from_millis(500);
        let cap = SimDuration::from_secs(2);
        assert_eq!(retry_backoff(base, cap, 0), SimDuration::from_millis(500));
        assert_eq!(retry_backoff(base, cap, 1), SimDuration::from_secs(1));
        assert_eq!(retry_backoff(base, cap, 2), SimDuration::from_secs(2));
        // Saturates at the cap from then on, even for huge retry counts.
        assert_eq!(retry_backoff(base, cap, 3), cap);
        assert_eq!(retry_backoff(base, cap, 63), cap);
        assert_eq!(retry_backoff(base, cap, u32::MAX), cap);
    }

    #[test]
    fn scheduled_retries_back_off_exponentially_with_bounded_jitter() {
        // Drive lose_packet directly for one registered conn and check the
        // scheduled RetryStep delays grow like base·2^k (±25%), capped.
        let mut c = small_cluster(false);
        let id = c.add_conn(inbound_spec(1, SimTime(0))).unwrap();
        let base = c.cfg.retry_timeout;
        let cap = c.cfg.retry_cap;
        for k in 0..=c.cfg.max_retries {
            // Isolate the one RetryStep this loss schedules.
            c.engine.clear();
            if let Some(conn) = c.conns.get_mut(&id) {
                conn.retries = k;
            }
            let before = c.engine.now();
            c.lose_packet(id << 4, before);
            let sched = c
                .engine
                .peek_time()
                .expect("lose_packet schedules a RetryStep");
            let delay = sched.since(before);
            let nominal = retry_backoff(base, cap, k);
            let lo = SimDuration::from_secs_f64(nominal.as_secs_f64() * 0.75);
            let hi = SimDuration::from_secs_f64(nominal.as_secs_f64() * 1.25);
            assert!(
                delay >= lo && delay <= hi,
                "retry {k}: delay {delay:?} outside [{lo:?}, {hi:?}]"
            );
        }
    }

    #[test]
    fn local_baseline_completes_connections() {
        let mut c = small_cluster(false);
        run_conns(&mut c, 50, SimDuration::from_millis(2));
        assert_eq!(
            c.stats().completed,
            50,
            "failed={} denied={}",
            c.stats().failed,
            c.stats().denied
        );
        assert_eq!(c.stats().failed, 0);
        assert_eq!(c.stats().denied, 0);
        // Sessions were tracked and later aged out.
        let (created, _, _) = c.switch(HOME).unwrap().sessions.counters();
        assert_eq!(created, 50);
    }

    #[test]
    fn control_plane_errors_are_typed() {
        let mut c = small_cluster(false);
        let ghost = VnicId(99);
        assert_eq!(
            c.trigger_offload(ghost, SimTime(0)),
            Err(NezhaError::UnknownVnic(ghost))
        );
        assert_eq!(
            c.add_conn(crate::conn::ConnSpec {
                vnic: ghost,
                ..inbound_spec(1, SimTime(0))
            }),
            Err(NezhaError::UnknownVnic(ghost))
        );
        let key = SessionKey::of(VpcId(1), inbound_spec(1, SimTime(0)).tuple);
        assert_eq!(
            c.pin_flow(ghost, key, ServerId(1)),
            Err(NezhaError::NotOffloaded(ghost))
        );
        assert_eq!(
            c.switch(ServerId(9_999)).err(),
            Some(NezhaError::UnknownServer(ServerId(9_999)))
        );
        c.trigger_offload(VNIC, SimTime(0)).unwrap();
        assert_eq!(
            c.trigger_offload(VNIC, SimTime(0)),
            Err(NezhaError::AlreadyOffloaded(VNIC))
        );
        // Fallback before the offload reaches its final stage is refused.
        assert_eq!(
            c.trigger_fallback(VNIC, c.now()),
            Err(NezhaError::OffloadInProgress(VNIC))
        );
        c.run_until(SimTime(0) + SimDuration::from_secs(3));
        // Pinning to a server that hosts no FE for the vNIC is refused.
        let not_fe = ServerId(15);
        assert!(!c.fe_servers(VNIC).contains(&not_fe));
        assert_eq!(
            c.pin_flow(VNIC, key, not_fe),
            Err(NezhaError::NotAnFe {
                vnic: VNIC,
                fe: not_fe
            })
        );
    }

    #[test]
    fn unsolicited_port_is_denied_statefully() {
        let mut c = small_cluster(false);
        let mut spec = inbound_spec(1, SimTime(0));
        spec.tuple.dst_port = 47_123; // no accept rule, stateful default
        c.add_conn(spec).unwrap();
        c.run_until(SimTime(0) + SimDuration::from_secs(5));
        assert_eq!(c.stats().denied, 1);
        assert_eq!(c.stats().completed, 0);
    }

    #[test]
    fn manual_offload_reaches_final_stage_without_loss() {
        let mut c = small_cluster(false);
        // Warm traffic before the offload.
        for i in 0..40 {
            c.add_conn(inbound_spec(
                i,
                SimTime(0) + SimDuration::from_millis(5 * i as u64),
            ))
            .unwrap();
        }
        c.run_until(SimTime(0) + SimDuration::from_millis(100));
        c.trigger_offload(VNIC, c.now()).unwrap();
        // Traffic continues through the transition.
        for i in 40..120 {
            c.add_conn(inbound_spec(
                i,
                c.now() + SimDuration::from_millis(5 * (i - 40) as u64),
            ))
            .unwrap();
        }
        c.run_until(c.now() + SimDuration::from_secs(8));
        let meta = c.backend(VNIC).expect("offloaded");
        assert_eq!(meta.phase, OffloadPhase::Offloaded);
        assert_eq!(meta.fe_list.len(), 4);
        assert!(meta.activated_at.is_some());
        assert_eq!(
            c.stats().completed,
            120,
            "failed={} denied={} misroutes={}",
            c.stats().failed,
            c.stats().denied,
            c.stats().misroutes
        );
        assert_eq!(c.stats().failed, 0);
        // Completion time recorded, in Table 4's ballpark.
        let mean = c.stats().offload_completion.mean();
        assert!((0.3..3.0).contains(&mean), "completion {mean}s");
        // FEs actually processed traffic.
        let fe_hits: u64 = c
            .fe_servers(VNIC)
            .iter()
            .map(|s| c.fes[&(*s, VNIC)].counters().0)
            .sum();
        assert!(fe_hits > 0, "FEs never saw traffic");
        // BE rule tables are gone; home switch no longer hosts the vNIC.
        assert!(c.switch(HOME).unwrap().vnic(VNIC).is_none());
    }

    #[test]
    fn offloaded_traffic_spreads_across_fes() {
        let mut c = small_cluster(false);
        c.trigger_offload(VNIC, SimTime(0)).unwrap();
        c.run_until(SimTime(0) + SimDuration::from_secs(3));
        for i in 0..200 {
            c.add_conn(inbound_spec(
                i,
                c.now() + SimDuration::from_millis(i as u64),
            ))
            .unwrap();
        }
        c.run_until(c.now() + SimDuration::from_secs(6));
        assert_eq!(c.stats().completed, 200);
        // Every FE served some flows (hash spreading, §3.2.3).
        for s in c.fe_servers(VNIC) {
            let (hits, misses, _) = c.fes[&(s, VNIC)].counters();
            assert!(hits + misses > 0, "FE on {s} idle");
        }
        // Notifies were generated for stats-policy flows only on misses.
        assert!(c.stats().notifies <= c.stats().completed * 2);
    }

    #[test]
    fn fe_crash_fails_over_within_seconds() {
        let mut c = small_cluster(false);
        c.trigger_offload(VNIC, SimTime(0)).unwrap();
        c.run_until(SimTime(0) + SimDuration::from_secs(3));
        let victim = c.fe_servers(VNIC)[0];
        let crash_at = c.now() + SimDuration::from_secs(1);
        c.crash_at(victim, crash_at);
        // Continuous traffic across the crash.
        for i in 0..600 {
            c.add_conn(inbound_spec(
                i,
                c.now() + SimDuration::from_millis(10 * i as u64),
            ))
            .unwrap();
        }
        c.run_until(c.now() + SimDuration::from_secs(12));
        assert!(c.stats().failover_events >= 1);
        // The pool is restored to the 4-FE floor on live servers.
        let fes = c.fe_servers(VNIC);
        assert_eq!(fes.len(), 4, "pool {fes:?}");
        assert!(!fes.contains(&victim));
        // Losses were transient: the vast majority of conns completed.
        let total = c.stats().completed + c.stats().failed + c.stats().denied;
        assert_eq!(total, 600);
        assert!(
            c.stats().completed >= 590,
            "completed {}",
            c.stats().completed
        );
        // Loss was confined to around the crash instant (Fig. 14 shape).
        assert!(c.stats().pkts.dropped > 0, "crash must cost some packets");
    }

    #[test]
    fn fallback_returns_to_local_processing() {
        let mut c = small_cluster(false);
        c.trigger_offload(VNIC, SimTime(0)).unwrap();
        c.run_until(SimTime(0) + SimDuration::from_secs(3));
        assert_eq!(c.backend(VNIC).unwrap().phase, OffloadPhase::Offloaded);
        c.trigger_fallback(VNIC, c.now()).unwrap();
        c.run_until(c.now() + SimDuration::from_secs(3));
        assert!(c.backend(VNIC).is_none(), "fallback must clear BE meta");
        assert_eq!(c.fe_count(VNIC), 0);
        assert!(
            c.switch(HOME).unwrap().vnic(VNIC).is_some(),
            "tables restored"
        );
        // Traffic flows locally again.
        for i in 0..30 {
            c.add_conn(inbound_spec(
                i,
                c.now() + SimDuration::from_millis(2 * i as u64),
            ))
            .unwrap();
        }
        c.run_until(c.now() + SimDuration::from_secs(5));
        assert_eq!(c.stats().completed, 30);
        assert_eq!(c.stats().failed, 0);
    }

    #[test]
    fn probe_latency_gains_one_hop_after_offload() {
        let mut c = small_cluster(false);
        let tuple = FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 1, 9),
            12345,
            Ipv4Addr::new(10, 7, 0, 1),
            SVC_PORT,
        );
        // Local probe.
        c.inject_probe_rx(VNIC, tuple, 64, ServerId(9), SimTime(0))
            .unwrap();
        c.run_until(SimTime(0) + SimDuration::from_millis(100));
        assert_eq!(c.stats().probe_latency.len(), 1);
        let local = c.stats().probe_latency.raw()[0];

        // Offloaded probe (new session, same path shape plus FE detour).
        c.trigger_offload(VNIC, c.now()).unwrap();
        c.run_until(c.now() + SimDuration::from_secs(3));
        let tuple2 = FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 1, 10),
            12346,
            Ipv4Addr::new(10, 7, 0, 1),
            SVC_PORT,
        );
        c.inject_probe_rx(VNIC, tuple2, 64, ServerId(9), c.now())
            .unwrap();
        c.run_until(c.now() + SimDuration::from_millis(100));
        assert_eq!(c.stats().probe_latency.len(), 2);
        let offloaded = c.stats().probe_latency.raw()[1];
        let extra = offloaded - local;
        // Fig. 12: the detour adds a few tens of microseconds at most.
        assert!(extra > 0.0, "offloaded {offloaded} <= local {local}");
        assert!(extra < 100e-6, "extra hop {}us", extra * 1e6);
    }

    #[test]
    fn auto_offload_triggers_under_sustained_overload() {
        let mut c = small_cluster(true);
        // Shrink the home switch to one core and a short measurement
        // window so ~50K offered CPS (about 0.85x its capacity) crosses
        // the 70% threshold within the test's horizon.
        {
            let vs = c.switch_mut(HOME).unwrap();
            *vs = {
                let mut cfg = ClusterConfig::default().vswitch;
                cfg.cores = 1;
                let mut fresh = VSwitch::new(HOME, cfg);
                fresh.set_util_window(SimDuration::from_millis(500));
                let mut vnic = Vnic::new(
                    VNIC,
                    VpcId(1),
                    Ipv4Addr::new(10, 7, 0, 1),
                    VnicProfile::default(),
                    HOME,
                );
                vnic.allow_inbound_port(SVC_PORT);
                fresh.add_vnic(vnic).unwrap();
                fresh
            };
        }
        for i in 0..30_000u32 {
            let spec = crate::conn::ConnSpec {
                vnic: VNIC,
                vpc: VpcId(1),
                tuple: FiveTuple::tcp(
                    Ipv4Addr::new(10, 7, (1 + i / 250) as u8, (i % 250) as u8 + 1),
                    (10_000 + i % 50_000) as u16,
                    Ipv4Addr::new(10, 7, 0, 1),
                    SVC_PORT,
                ),
                peer_server: ServerId(8 + (i % 8)),
                kind: crate::conn::ConnKind::Inbound,
                start: SimTime(0) + SimDuration::from_micros(20 * i as u64),
                payload: 64,
                overlay_encap_src: None,
            };
            c.add_conn(spec).unwrap();
        }
        c.run_until(SimTime(0) + SimDuration::from_secs(4));
        assert!(c.stats().offload_events >= 1, "controller never offloaded");
        assert_eq!(
            c.backend(VNIC).map(|m| m.phase),
            Some(OffloadPhase::Offloaded)
        );
        // After offload the BE runs cool again.
        let be_util = c.switch(HOME).unwrap().cpu_utilization(c.now());
        assert!(be_util < 0.5, "BE still hot: {be_util}");
    }

    #[test]
    fn stateful_decap_survives_the_split() {
        let mut c = small_cluster(false);
        // A second vNIC acting as an LB real server with stateful decap.
        let profile = VnicProfile {
            stateful_decap: true,
            ..VnicProfile::default()
        };
        let mut vnic = Vnic::new(
            VnicId(2),
            VpcId(1),
            Ipv4Addr::new(10, 8, 0, 1),
            profile,
            ServerId(1),
        );
        vnic.allow_inbound_port(8080);
        c.add_vnic(vnic, ServerId(1), VmConfig::with_vcpus(16))
            .unwrap();
        c.trigger_offload(VnicId(2), SimTime(0)).unwrap();
        c.run_until(SimTime(0) + SimDuration::from_secs(3));

        let spec = crate::conn::ConnSpec {
            vnic: VnicId(2),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(203, 0, 113, 7), // client behind the LB
                40_000,
                Ipv4Addr::new(10, 8, 0, 1),
                8080,
            ),
            peer_server: ServerId(9),
            kind: crate::conn::ConnKind::Inbound,
            start: c.now(),
            payload: 256,
            overlay_encap_src: Some(Ipv4Addr::new(100, 64, 0, 5)), // LB VIP
        };
        c.add_conn(spec).unwrap();
        // Inspect the session before the aging sweep reclaims the closed
        // connection.
        c.run_until(c.now() + SimDuration::from_millis(400));
        assert_eq!(c.stats().completed, 1);
        // The BE recorded the LB address from the FE-carried info.
        let key = SessionKey::of(VpcId(1), spec.tuple);
        let entry = c
            .switch(ServerId(1))
            .unwrap()
            .sessions
            .get(&key)
            .expect("session");
        assert_eq!(
            entry.state.decap.map(|d| d.overlay_src),
            Some(Ipv4Addr::new(100, 64, 0, 5))
        );
        // The entry is state-only at the BE (flows live at the FEs).
        assert!(entry.pre_actions.is_none());
    }

    #[test]
    fn live_migration_via_be_location_update() {
        let mut c = small_cluster(false);
        c.trigger_offload(VNIC, SimTime(0)).unwrap();
        c.run_until(SimTime(0) + SimDuration::from_secs(3));
        // Migrate the VM/BE to server 7 (not an FE; the initial pool is
        // the four lowest-utilization rack peers).
        let new_home = ServerId(7);
        assert!(!c.fe_servers(VNIC).contains(&new_home));
        // Move state to the new home (migration copies it with the VM).
        c.engine.schedule_in(
            SimDuration::from_micros(800),
            Event::Config(ConfigOp::BeLocationUpdate {
                vnic: VNIC,
                new_home,
            }),
        );
        c.run_until(c.now() + SimDuration::from_millis(10));
        assert_eq!(c.vnic_home[&VNIC], new_home);
        for s in c.fe_servers(VNIC) {
            assert_eq!(c.fes[&(s, VNIC)].be_location, new_home);
        }
    }
}

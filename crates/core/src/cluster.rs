//! The packet-level testbed: cluster construction, public accessors, and
//! scripted fault application, all on the deterministic event engine.
//!
//! The cluster's moving parts live in sibling modules:
//!
//! * [`crate::config`] — [`ClusterConfig`] + builder and the delayed
//!   [`ConfigOp`] pushes;
//! * [`crate::telemetry`] — the shared registry/trace/profiler bundle and
//!   the aggregated [`ClusterStats`] view;
//! * `crate::datapath` — the per-packet handlers (BE/FE roles, NSH demux,
//!   the `HandlerCtx` plumbing every handler works through);
//! * `crate::driver` — connection scripts, retries and probes.
//!
//! The controller (`controller.rs`) and health monitor (`monitor.rs`)
//! extend this struct with the management plane.

use crate::be::BackendMeta;
use crate::conn::{ConnKind, ConnSpec, ConnState, ConnStatus};
use crate::controller::ControllerState;
use crate::fe::FrontEnd;
use crate::gateway::Gateway;
use crate::monitor::MonitorState;
use crate::telemetry::ClusterTelemetry;
use crate::vm::{VmConfig, VmModel};
use nezha_sim::dense::DenseMap;
use nezha_sim::engine::Engine;
use nezha_sim::fault::{FaultKind, FaultPlan, FaultState};
use nezha_sim::metrics::MetricsRegistry;
use nezha_sim::profile::Profiler;
use nezha_sim::rng::SimRng;
use nezha_sim::time::SimTime;
use nezha_sim::topology::Topology;
use nezha_sim::trace::PacketTrace;
use nezha_types::{Ipv4Addr, NezhaError, NezhaResult, Packet, ServerId, SessionKey, VnicId};
use nezha_vswitch::vnic::Vnic;
use nezha_vswitch::vswitch::VSwitch;

pub use crate::config::{ClusterConfig, ClusterConfigBuilder, ConfigOp, LbMode};
pub use crate::datapath::dispatch::Event;
pub use crate::driver::retry_backoff;
pub use crate::telemetry::ClusterStats;

use crate::driver::{PROBE_BIT, SILENT_BIT};

/// The packet-level testbed.
#[derive(Debug)]
pub struct Cluster {
    /// Configuration.
    pub cfg: ClusterConfig,
    /// The fabric.
    pub topo: Topology,
    /// Event engine.
    pub engine: Engine<Event>,
    pub(crate) switches: Vec<VSwitch>,
    pub(crate) alive: Vec<bool>,
    /// The gateway's versioned vNIC-server table.
    pub gateway: Gateway,
    /// FE instances keyed by `(host, vnic)`. Dense-hashed: the per-packet
    /// FE-binding claim is an O(1) probe. Every iteration site either
    /// aggregates or sorts explicitly (monitor targets, failover victims),
    /// so map order is never behavior-visible.
    pub(crate) fes: DenseMap<(ServerId, VnicId), FrontEnd>,
    /// Per-vNIC lookup tables, all dense-hashed: each is probed on the
    /// per-packet path (home resolution, VM delivery, BE metadata) and
    /// none is iterated order-visibly — the one iteration site (the
    /// monitor's mutual-ping pairs over `be_meta`) sorts explicitly.
    pub(crate) be_meta: DenseMap<VnicId, BackendMeta>,
    pub(crate) vnic_home: DenseMap<VnicId, ServerId>,
    pub(crate) vnic_addr: DenseMap<VnicId, Ipv4Addr>,
    /// Controller-side master copy of each vNIC's tables (tenant intent),
    /// used to (re)configure FEs and to re-arm the BE on fallback.
    pub(crate) master_vnics: DenseMap<VnicId, Vnic>,
    pub(crate) vms: DenseMap<VnicId, VmModel>,
    /// Connection states, indexed by `id - 1`: ids are handed out
    /// sequentially from 1 and never reclaimed, so the dense Vec replaces
    /// the former ordered map — the per-packet conn lookups on the
    /// datapath become direct indexing.
    pub(crate) conns: Vec<ConnState>,
    /// In-flight packets parked between schedule and arrival, addressed
    /// by the `u32` id inside [`Event::Arrive`] / [`Event::StartProbe`].
    /// Slot reuse is LIFO and ids are a pure function of the schedule
    /// call sequence, so replay stays seed-deterministic.
    pub(crate) pkt_slab: nezha_sim::dense::Slab<Packet>,
    next_probe_id: u64,
    /// Telemetry: shared registry + trace + pre-registered handles.
    pub(crate) tel: ClusterTelemetry,
    /// Controller bookkeeping.
    pub(crate) controller: ControllerState,
    /// Monitor bookkeeping.
    pub(crate) monitor: MonitorState,
    pub(crate) rng: SimRng,
    /// Blackholed directed server pairs (fabric faults between otherwise
    /// healthy servers — the Appendix C.1 scenario the centralized
    /// monitor cannot see).
    blackholes: std::collections::BTreeSet<(ServerId, ServerId)>,
    /// Live scripted fault conditions (chaos injection). Sampled from its
    /// own forked RNG stream so fault outcomes replay seed-for-seed.
    pub(crate) faults: FaultState,
    /// Global switch: when false the cluster behaves as the pre-Nezha
    /// baseline (no offloading ever triggers).
    pub nezha_enabled: bool,
    /// The compiled stage graphs the datapath handlers drive (shared with
    /// every role: FE lookups evaluate `graphs.lookup`, cost/profiler
    /// decomposition follows `graphs.process` — the same topology each
    /// switch compiled for itself, per the paper's §3.1 equivalence).
    pub(crate) graphs: std::sync::Arc<nezha_vswitch::SwitchGraphs>,
}

impl Cluster {
    /// Builds a cluster and schedules the periodic management ticks.
    pub fn new(cfg: ClusterConfig) -> Self {
        let topo = Topology::new(cfg.topology);
        let n = topo.total_servers() as usize;
        let tel = ClusterTelemetry::register(MetricsRegistry::new(), n);
        let switches: Vec<VSwitch> = (0..n)
            .map(|i| {
                let mut vs = VSwitch::new(ServerId(i as u32), cfg.vswitch);
                vs.attach_metrics(&tel.registry);
                vs.attach_trace(&tel.trace);
                vs.attach_profiler(&tel.profiler);
                vs
            })
            .collect();
        let mut engine = Engine::new();
        engine.attach_metrics(&tel.registry);
        engine.schedule_in(cfg.controller.report_period, Event::ControllerTick);
        engine.schedule_in(cfg.controller.ping_period, Event::MonitorTick);
        engine.schedule_in(cfg.aging_period, Event::AgingTick);
        Cluster {
            topo,
            engine,
            switches,
            alive: vec![true; n],
            gateway: Gateway::new(cfg.learning_interval),
            fes: DenseMap::new(),
            be_meta: DenseMap::new(),
            vnic_home: DenseMap::new(),
            vnic_addr: DenseMap::new(),
            master_vnics: DenseMap::new(),
            vms: DenseMap::new(),
            conns: Vec::new(),
            pkt_slab: nezha_sim::dense::Slab::new(),
            next_probe_id: 1,
            tel,
            controller: ControllerState::new(),
            monitor: MonitorState::new(),
            // nezha-lint: allow(D9): seed derivation pinned by golden fixtures (refactor_equivalence, BENCH_pr6); migrate to derive_seed when re-baselining
            rng: SimRng::new(cfg.seed),
            blackholes: std::collections::BTreeSet::new(),
            // An independent stream derived from the seed (not forked from
            // `rng`, so enabling faults never perturbs baseline draws).
            // nezha-lint: allow(D9): seed derivation pinned by golden fixtures (refactor_equivalence, BENCH_pr6); migrate to derive_seed when re-baselining
            faults: FaultState::new(SimRng::new(
                cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xFA17,
            )),
            nezha_enabled: true,
            graphs: std::sync::Arc::new(nezha_vswitch::SwitchGraphs::standard()),
            cfg,
        }
    }

    /// Blackholes the fabric path between two servers in both directions
    /// (a link/switch fault the servers themselves survive). The BE↔FE
    /// mutual ping (Appendix C.1) is the only detector for this.
    pub fn blackhole_link(&mut self, a: ServerId, b: ServerId) {
        self.blackholes.insert((a, b));
        self.blackholes.insert((b, a));
    }

    /// Restores a blackholed path.
    pub fn heal_link(&mut self, a: ServerId, b: ServerId) {
        self.blackholes.remove(&(a, b));
        self.blackholes.remove(&(b, a));
    }

    /// True when the directed path `from -> to` is blackholed.
    pub fn link_blackholed(&self, from: ServerId, to: ServerId) -> bool {
        self.blackholes.contains(&(from, to))
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Parks `pkt` in the packet slab and schedules its arrival at
    /// `server` — the heap entry carries the slab id, not the packet.
    pub(crate) fn schedule_arrive(
        &mut self,
        at: SimTime,
        server: ServerId,
        pkt: Packet,
        sent_at: SimTime,
    ) {
        let pkt = self.pkt_slab.insert(pkt);
        self.engine.schedule_at(
            at,
            Event::Arrive {
                server,
                pkt,
                sent_at,
            },
        );
    }

    /// The cluster's shared [`MetricsRegistry`] — engine, every vSwitch,
    /// and the management plane all report here. Take `.snapshot()` to
    /// read every metric deterministically.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.tel.registry
    }

    /// The shared packet-trace ring (disabled until
    /// [`Cluster::enable_trace`]).
    pub fn trace(&self) -> &PacketTrace {
        &self.tel.trace
    }

    /// Turns on structured per-packet tracing, keeping at most `capacity`
    /// most-recent events. Pass 0 to disable again.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tel.trace.set_capacity(capacity);
    }

    /// The shared cycle-attribution [`Profiler`] (disabled until
    /// [`Cluster::enable_profile`]).
    pub fn profiler(&self) -> &Profiler {
        &self.tel.profiler
    }

    /// Turns on cycle-attribution profiling: every subsequent CPU charge
    /// records a causal span tree, keeping at most `span_capacity` full
    /// span records (aggregate stage/flamegraph totals are unbounded).
    pub fn enable_profile(&mut self, span_capacity: usize) {
        self.tel.profiler.enable(span_capacity);
    }

    /// Turns on the live observability plane: windowed rollups of every
    /// registry metric (counter deltas, changed gauges, per-window
    /// histogram summaries) every `width` of simulated time, a bounded
    /// ring of `retain` full window records, and an SLO watchdog over
    /// `rules` evaluated at each window close. Also registers the
    /// per-FE-server `fe.rx_pkts` counters the fairness rule consumes.
    ///
    /// Call before the run starts (registration is string-keyed and must
    /// not happen mid-simulation — lint rule D5). Runs that never enable
    /// windows carry zero overhead and identical snapshots.
    pub fn enable_windows(
        &mut self,
        width: nezha_sim::time::SimDuration,
        retain: usize,
        rules: Vec<nezha_sim::obs::SloRule>,
    ) {
        let n = self.switches.len();
        self.tel.register_windows(n, width, retain, rules);
    }

    /// The windowed rollup (window records, JSONL stream, SLO events);
    /// `None` until [`Cluster::enable_windows`].
    pub fn windows(&self) -> Option<&nezha_sim::obs::WindowedRollup> {
        self.tel.windows.as_ref().map(|w| w.rollup())
    }

    /// Closes every open window whose end is `<= t` against the current
    /// registry contents. `run_until` does this automatically as sim
    /// time advances; experiments stepping the run window-by-window call
    /// it explicitly at segment ends.
    pub fn close_windows_to(&mut self, t: SimTime) {
        let crate::telemetry::ClusterTelemetry {
            windows, registry, ..
        } = &mut self.tel;
        if let Some(w) = windows.as_mut() {
            w.advance_to(t, registry);
        }
    }

    /// Total cycles the CPU model has charged across every switch and
    /// vNIC since construction — the ground truth the profiler's
    /// per-stage totals must reconcile with.
    pub fn total_charged_cycles(&self) -> f64 {
        self.switches
            .iter()
            .map(|vs| vs.vnic_cycle_shares().values().sum::<f64>())
            .sum()
    }

    /// The legacy aggregated view, assembled from the metrics registry.
    pub fn stats(&self) -> ClusterStats {
        self.tel.stats()
    }

    /// Immutable access to a server's vSwitch.
    ///
    /// Errors with [`NezhaError::UnknownServer`] when `s` is outside the
    /// topology.
    pub fn switch(&self, s: ServerId) -> NezhaResult<&VSwitch> {
        self.switches
            .get(s.0 as usize)
            .ok_or(NezhaError::UnknownServer(s))
    }

    /// Mutable access to a server's vSwitch (tests / rule pushes).
    pub fn switch_mut(&mut self, s: ServerId) -> NezhaResult<&mut VSwitch> {
        self.switches
            .get_mut(s.0 as usize)
            .ok_or(NezhaError::UnknownServer(s))
    }

    /// Whether a server is alive.
    pub fn is_alive(&self, s: ServerId) -> bool {
        self.alive[s.0 as usize]
    }

    /// The BE metadata of an offloaded vNIC, if any.
    pub fn backend(&self, vnic: VnicId) -> Option<&BackendMeta> {
        self.be_meta.get(&vnic)
    }

    /// The VM attached to a vNIC.
    pub fn vm(&self, vnic: VnicId) -> Option<&VmModel> {
        self.vms.get(&vnic)
    }

    /// Number of FEs currently hosted for `vnic`.
    pub fn fe_count(&self, vnic: VnicId) -> usize {
        self.fes.keys().filter(|(_, v)| *v == vnic).count()
    }

    /// An FE's `(hits, misses, cache_skips)` counters.
    pub fn fe_counters(&self, fe: ServerId, vnic: VnicId) -> Option<(u64, u64, u64)> {
        self.fes.get(&(fe, vnic)).map(|f| f.counters())
    }

    /// Number of flows cached at one FE.
    pub fn fe_cached_flows(&self, fe: ServerId, vnic: VnicId) -> Option<usize> {
        self.fes.get(&(fe, vnic)).map(|f| f.cached_flows())
    }

    /// Pins an elephant flow's session to a dedicated FE (§7.5): the BE's
    /// TX selection, the gateway's RX selection, and the general hash
    /// ring are all updated — the dedicated FE serves (nearly) only the
    /// elephant from now on.
    pub fn pin_flow(&mut self, vnic: VnicId, key: SessionKey, fe: ServerId) -> NezhaResult<()> {
        let meta = self
            .be_meta
            .get_mut(&vnic)
            .ok_or(NezhaError::NotOffloaded(vnic))?;
        if !meta.fe_list.contains(&fe) {
            return Err(NezhaError::NotAnFe { vnic, fe });
        }
        meta.pin_flow(key, fe);
        let general = meta.general_fes();
        let addr = self.vnic_addr[&vnic];
        let now = self.engine.now();
        self.gateway.pin(addr, key.canonical.stable_hash(), fe);
        if !general.is_empty() {
            self.gateway.update(addr, general, now);
        }
        Ok(())
    }

    /// The BE location configured on one FE (None when that FE does not
    /// exist).
    pub fn fe_be_location(&self, fe: ServerId, vnic: VnicId) -> Option<ServerId> {
        self.fes.get(&(fe, vnic)).map(|f| f.be_location)
    }

    /// The current home (BE) server of a vNIC.
    pub fn home_of(&self, vnic: VnicId) -> Option<ServerId> {
        self.vnic_home.get(&vnic).copied()
    }

    /// Servers hosting FEs for `vnic`, in stable (id) order.
    pub fn fe_servers(&self, vnic: VnicId) -> Vec<ServerId> {
        let mut servers: Vec<ServerId> = self
            .fes
            .keys()
            .filter(|(_, v)| *v == vnic)
            .map(|(s, _)| *s)
            .collect();
        servers.sort_unstable_by_key(|s| s.0);
        servers
    }

    /// Installs a vNIC (with VM) on its home server and registers it at
    /// the gateway.
    ///
    /// Errors when `home` is outside the topology or its vSwitch cannot
    /// fit the vNIC's tables; the cluster is left unchanged.
    pub fn add_vnic(&mut self, vnic: Vnic, home: ServerId, vm: VmConfig) -> NezhaResult<()> {
        let id = vnic.id;
        let addr = vnic.addr;
        self.switches
            .get_mut(home.0 as usize)
            .ok_or(NezhaError::UnknownServer(home))?
            .add_vnic(vnic.clone())
            .map_err(|_| NezhaError::InsufficientMemory {
                what: "vNIC tables",
            })?;
        self.master_vnics.insert(id, vnic);
        self.vnic_home.insert(id, home);
        self.vnic_addr.insert(id, addr);
        self.gateway.update(addr, vec![home], self.engine.now());
        self.vms.insert(id, VmModel::new(vm));
        Ok(())
    }

    /// Registers the mapping of a peer/client overlay address so the
    /// vNIC's egress lookups resolve to real topology servers.
    ///
    /// Errors with [`NezhaError::UnknownVnic`] for a vNIC that was never
    /// [added](Cluster::add_vnic).
    pub fn map_peer(&mut self, vnic: VnicId, addr: Ipv4Addr, server: ServerId) -> NezhaResult<()> {
        let home = *self
            .vnic_home
            .get(&vnic)
            .ok_or(NezhaError::UnknownVnic(vnic))?;
        if let Some(master) = self.master_vnics.get_mut(&vnic) {
            master.tables.vnic_server.set(addr, server);
        }
        let home_vs = &mut self.switches[home.0 as usize];
        if let Some(home_vnic) = home_vs.vnic_mut(vnic) {
            home_vnic.tables.vnic_server.set(addr, server);
            if home_vs.sync_vnic_memory(vnic).is_err() {
                // The learned-mapping cache is full: drop the entry (the
                // gateway remains authoritative; traffic to this peer
                // resolves via the gateway/default path instead).
                if let Some(home_vnic) = home_vs.vnic_mut(vnic) {
                    home_vnic.tables.vnic_server.remove(addr);
                }
                let _ = home_vs.sync_vnic_memory(vnic);
            }
        }
        let m = self.cfg.vswitch.memory;
        for ((fe_server, v), fe) in self.fes.iter_mut() {
            if *v == vnic {
                fe.vnic.tables.vnic_server.set(addr, server);
                let pool = &mut self.switches[fe_server.0 as usize].mem;
                if fe.sync_table_memory(pool, &m).is_err() {
                    fe.vnic.tables.vnic_server.remove(addr);
                    let _ = fe.sync_table_memory(pool, &m);
                }
            }
        }
        Ok(())
    }

    /// Registers a connection and schedules its start. Peer addresses are
    /// mapped automatically. Returns the connection id.
    ///
    /// Errors with [`NezhaError::UnknownVnic`] when `spec.vnic` was never
    /// [added](Cluster::add_vnic).
    pub fn add_conn(&mut self, spec: ConnSpec) -> NezhaResult<u64> {
        let id = self.conns.len() as u64 + 1;
        let peer_addr = match spec.kind {
            ConnKind::Inbound | ConnKind::PersistentInbound | ConnKind::SynOnly => {
                spec.tuple.src_ip
            }
            ConnKind::Outbound => spec.tuple.dst_ip,
        };
        self.map_peer(spec.vnic, peer_addr, spec.peer_server)?;
        self.conns.push(ConnState {
            spec,
            pos: 0,
            retries: 0,
            started_at: spec.start,
            status: ConnStatus::InFlight,
        });
        self.engine
            .schedule_at(spec.start, Event::StartConn { conn: id });
        Ok(id)
    }

    /// The state of connection `id` (ids start at 1; 0 and probe traces
    /// resolve to `None`).
    pub(crate) fn conn(&self, id: u64) -> Option<&ConnState> {
        self.conns.get(usize::try_from(id.checked_sub(1)?).ok()?)
    }

    /// Mutable access to connection `id` (the datapath uses split field
    /// borrows instead; tests drive connections through this).
    #[cfg(test)]
    pub(crate) fn conn_mut(&mut self, id: u64) -> Option<&mut ConnState> {
        self.conns
            .get_mut(usize::try_from(id.checked_sub(1)?).ok()?)
    }

    /// Injects a standalone probe packet (latency measurement, Fig. 12).
    /// RX probes start at `from` and follow the full ingress path to the
    /// VM; the delivered latency lands in [`ClusterStats::probe_latency`].
    pub fn inject_probe_rx(
        &mut self,
        vnic: VnicId,
        tuple: nezha_types::FiveTuple,
        payload: u32,
        from: ServerId,
        at: SimTime,
    ) -> NezhaResult<()> {
        self.inject_rx_packet(vnic, tuple, payload, from, at, false)
    }

    /// Injects a bulk/background RX packet: takes the full data-plane
    /// path (and loads every resource on it) but is excluded from the
    /// probe-latency samples. Used for elephant-flow streams (§7.5).
    pub fn inject_bulk_rx(
        &mut self,
        vnic: VnicId,
        tuple: nezha_types::FiveTuple,
        payload: u32,
        from: ServerId,
        at: SimTime,
    ) -> NezhaResult<()> {
        self.inject_rx_packet(vnic, tuple, payload, from, at, true)
    }

    fn inject_rx_packet(
        &mut self,
        vnic: VnicId,
        tuple: nezha_types::FiveTuple,
        payload: u32,
        from: ServerId,
        at: SimTime,
        silent: bool,
    ) -> NezhaResult<()> {
        let vpc = self
            .master_vnics
            .get(&vnic)
            .ok_or(NezhaError::UnknownVnic(vnic))?
            .vpc;
        let id = PROBE_BIT | if silent { SILENT_BIT } else { 0 } | self.next_probe_id;
        self.next_probe_id += 1;
        let pkt = Packet::rx_data(id, vpc, vnic, tuple, nezha_types::TcpFlags::ACK, payload);
        let pkt = self.pkt_slab.insert(pkt);
        self.engine.schedule_at(at, Event::StartProbe { pkt, from });
        Ok(())
    }

    /// Crashes a server at `at` (its vSwitch stops processing and stops
    /// answering health probes).
    pub fn crash_at(&mut self, server: ServerId, at: SimTime) {
        self.engine.schedule_at(at, Event::Crash { server });
    }

    /// Schedules every transition of a scripted [`FaultPlan`] onto the
    /// event engine. Faults replay on the simulated clock from the
    /// cluster's seeded fault RNG stream: two runs with the same seed and
    /// the same plan observe identical fault behavior.
    pub fn apply_fault_plan(&mut self, plan: FaultPlan) {
        for ev in plan.into_events() {
            self.engine.schedule_at(ev.at, Event::Fault(ev.kind));
        }
    }

    /// Read access to the live fault conditions.
    pub fn fault_state(&self) -> &FaultState {
        &self.faults
    }

    /// Runs the cluster until simulated time `deadline`.
    ///
    /// Dispatch is batched: each engine round drains every event due at
    /// the earliest pending instant, then handles them in sequence order
    /// — identical delivery order to one-at-a-time popping (see
    /// [`Engine::pop_batch_until`]), with one heap peek per instant
    /// instead of one per event.
    ///
    /// When windows are enabled, every window whose end falls at or
    /// before the next batch's timestamp is closed *before* that batch is
    /// handled (a boundary event belongs to the window it opens), and all
    /// windows up to `deadline` are flushed once the event heap drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        let mut batch = Vec::new();
        loop {
            self.engine.pop_batch_until(deadline, &mut batch);
            match batch.first() {
                None => break,
                Some(s) => {
                    if self.tel.windows.is_some() {
                        self.close_windows_to(s.at);
                    }
                }
            }
            for s in batch.drain(..) {
                let at = s.at;
                self.handle(s.event, at);
            }
        }
        if self.tel.windows.is_some() {
            self.close_windows_to(deadline);
        }
    }

    /// Applies one scripted fault transition: cluster-level side effects
    /// first (liveness flags, vSwitch cycle multipliers), then the
    /// recorded condition set the per-packet queries are answered from.
    pub(crate) fn handle_fault(&mut self, kind: FaultKind, now: SimTime) {
        self.tel.inc(self.tel.fault_events);
        match &kind {
            FaultKind::Crash { server } => {
                if let Some(alive) = self.alive.get_mut(server.0 as usize) {
                    *alive = false;
                }
                self.monitor.crash_pending.insert(*server, now);
            }
            FaultKind::Restart { server } => {
                if let Some(alive) = self.alive.get_mut(server.0 as usize) {
                    *alive = true;
                }
                self.monitor.crash_pending.remove(server);
            }
            FaultKind::GraySlow { server, multiplier } => {
                if let Some(vs) = self.switches.get_mut(server.0 as usize) {
                    vs.set_cycle_multiplier(*multiplier);
                }
            }
            FaultKind::GrayRecover { server } => {
                if let Some(vs) = self.switches.get_mut(server.0 as usize) {
                    vs.set_cycle_multiplier(1.0);
                }
            }
            _ => {}
        }
        self.faults.apply(&kind);
    }
}

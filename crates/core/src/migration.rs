//! VM live-migration cost model (Fig. A1, §7.2).
//!
//! Traditional live migration copies dirtied memory iteratively, pauses
//! the VM for the final copy, reconfigures the vNIC on the target
//! vSwitch (seconds for O(100 MB) rule tables), and waits for the global
//! routing tables to converge (tens of ms). Both completion time and
//! downtime grow with the VM's vCPU count and memory (Fig. A1).
//!
//! With Nezha the vNIC is already offloaded: redirecting traffic is one
//! `BE location config` update on the FEs, taking effect "in less than
//! 1 ms" (§7.2) and independent of VM size.

use nezha_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of the migration cost model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MigrationModel {
    /// Copy bandwidth available for migration, bytes/second.
    pub copy_bw: f64,
    /// Fraction of memory dirtied per copy round (drives extra rounds).
    pub dirty_fraction: f64,
    /// Iterative copy rounds before the stop-and-copy phase.
    pub rounds: u32,
    /// Final stop-and-copy working set as a fraction of memory.
    pub final_set_fraction: f64,
    /// Per-vCPU state save/restore cost during the pause.
    pub per_vcpu_pause: SimDuration,
    /// Fixed downtime floor: device re-attach + route convergence.
    pub fixed_downtime: SimDuration,
    /// Per-byte vNIC rule-table reconfiguration cost on the target
    /// vSwitch (bytes/second).
    pub vnic_config_bw: f64,
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel {
            copy_bw: 2.5e9, // ~20 Gbps effective migration stream
            dirty_fraction: 0.18,
            rounds: 4,
            final_set_fraction: 0.02,
            per_vcpu_pause: SimDuration::from_millis(2),
            fixed_downtime: SimDuration::from_millis(40),
            vnic_config_bw: 60e6,
        }
    }
}

/// Predicted cost of one migration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Wall-clock time from start to cut-over.
    pub completion: SimDuration,
    /// Service interruption (stop-and-copy + reconfig + convergence).
    pub downtime: SimDuration,
}

impl MigrationModel {
    /// Cost of migrating a VM with `mem_gb` of memory, `vcpus` cores, and
    /// `rule_table_bytes` of vNIC configuration.
    pub fn migrate(&self, mem_gb: f64, vcpus: u32, rule_table_bytes: u64) -> MigrationCost {
        let mem = mem_gb * 1e9;
        // Iterative pre-copy: full pass + geometric dirty passes.
        let mut copied = mem;
        let mut dirty = mem * self.dirty_fraction;
        for _ in 0..self.rounds {
            copied += dirty;
            dirty *= self.dirty_fraction;
        }
        let copy_time = SimDuration::from_secs_f64(copied / self.copy_bw);
        // Stop-and-copy: final working set + vCPU state + devices.
        let pause = SimDuration::from_secs_f64(mem * self.final_set_fraction / self.copy_bw)
            + SimDuration(self.per_vcpu_pause.nanos() * vcpus as u64)
            + self.fixed_downtime;
        // vNIC reconfiguration on the target vSwitch (§7.2: "can take
        // several seconds" for O(100 MB) tables).
        let vnic_config = SimDuration::from_secs_f64(rule_table_bytes as f64 / self.vnic_config_bw);
        MigrationCost {
            completion: copy_time + pause + vnic_config,
            downtime: pause + vnic_config,
        }
    }

    /// Nezha's alternative for an offloaded vNIC: one BE-location update
    /// pushed to the FEs, independent of VM size (§7.2).
    pub fn nezha_redirect(&self) -> MigrationCost {
        let d = SimDuration::from_micros(800);
        MigrationCost {
            completion: d,
            downtime: d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downtime_grows_with_memory() {
        let m = MigrationModel::default();
        let small = m.migrate(16.0, 8, 8 * 1024 * 1024);
        let big = m.migrate(1024.0, 128, 200 * 1024 * 1024);
        assert!(big.downtime > small.downtime);
        assert!(big.completion > small.completion);
        // Fig. A1 / §7.2: a 1024 GB VM takes tens of minutes to migrate.
        let mins = big.completion.as_secs_f64() / 60.0;
        assert!(
            (5.0..120.0).contains(&mins),
            "1 TB migration took {mins} min"
        );
    }

    #[test]
    fn downtime_grows_with_vcpus() {
        let m = MigrationModel::default();
        let a = m.migrate(64.0, 8, 8 << 20);
        let b = m.migrate(64.0, 128, 8 << 20);
        assert!(b.downtime > a.downtime);
    }

    #[test]
    fn large_rule_tables_dominate_small_vm_downtime() {
        let m = MigrationModel::default();
        let light = m.migrate(16.0, 8, 2 << 20);
        let heavy = m.migrate(16.0, 8, 200 << 20);
        // §7.2: "configuring the vNIC … can take several seconds".
        assert!(heavy.downtime.as_secs_f64() - light.downtime.as_secs_f64() > 1.0);
    }

    #[test]
    fn nezha_redirect_is_sub_millisecond_and_size_independent() {
        let m = MigrationModel::default();
        let r = m.nezha_redirect();
        assert!(r.completion < SimDuration::from_millis(1));
        // At least three orders of magnitude below even a small migration.
        let small = m.migrate(16.0, 8, 8 << 20);
        assert!(small.downtime.nanos() / r.downtime.nanos() > 50);
    }
}

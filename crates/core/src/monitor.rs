//! Centralized FE crash monitoring and failover (§4.4, Appendix C).
//!
//! A centralized module ping-polls every vSwitch hosting FEs (via a
//! flow-direct rule to the vSwitch's VF in the real system — here the
//! probe outcome is the `alive` flag observed at tick time, which models
//! an un-answered ping). After `ping_misses` consecutive silent periods
//! the vSwitch is declared crashed and every FE it hosted is removed via
//! the scale-in logic, keeping the pool at the ≥4-FE floor by adding
//! replacements.
//!
//! Appendix C's production lesson is implemented too: when a majority of
//! monitored FE hosts appear dead *simultaneously*, the monitor suspends
//! automatic removal (such widespread failure is overwhelmingly a
//! monitoring bug, not a real outage) and counts a suspension for manual
//! inspection.

use crate::cluster::{Cluster, Event};
use nezha_sim::time::SimTime;
use nezha_types::{ServerId, VnicId};
use std::collections::BTreeMap;

/// Monitor bookkeeping.
#[derive(Debug, Default)]
pub struct MonitorState {
    missed: BTreeMap<ServerId, u32>,
    /// Consecutive failed BE↔FE mutual pings per (BE, FE) pair
    /// (Appendix C.1).
    mutual_missed: BTreeMap<(ServerId, ServerId), u32>,
    /// True while automatic removal is suspended (Appendix C.2).
    pub suspended: bool,
    /// Crash instants not yet detected by the monitor, for the
    /// crash-to-failover detection-latency metric.
    pub(crate) crash_pending: BTreeMap<ServerId, SimTime>,
}

impl MonitorState {
    /// Fresh state.
    pub fn new() -> Self {
        MonitorState::default()
    }
}

impl Cluster {
    /// One ping-polling round (runs every [`ControllerConfig::ping_period`]
    /// (crate::controller::ControllerConfig::ping_period)).
    pub(crate) fn monitor_tick(&mut self, now: SimTime) {
        let cfg = self.cfg.controller;
        self.engine.schedule_in(cfg.ping_period, Event::MonitorTick);
        // A controller outage silences the health monitor with it: ticks
        // keep rescheduling but no observation or removal happens, so
        // detection latency grows by the outage length.
        if self.faults.controller_down() {
            return;
        }

        // Only vSwitches hosting FEs are monitored — "since there are only
        // a few VMs requiring offloading, the monitoring targets are
        // limited, keeping detection overhead low" (§4.4).
        let mut targets: Vec<ServerId> = self.fes.keys().map(|(s, _)| *s).collect();
        targets.sort_unstable_by_key(|s| s.0);
        targets.dedup();
        if targets.is_empty() {
            self.monitor.missed.clear();
            return;
        }

        let mut newly_dead: Vec<ServerId> = Vec::new();
        let mut apparently_dead = 0usize;
        for &s in &targets {
            if self.alive[s.0 as usize] {
                self.monitor.missed.insert(s, 0);
            } else {
                let m = self.monitor.missed.entry(s).or_insert(0);
                *m += 1;
                apparently_dead += 1;
                // `>=`, not `==`: a server whose threshold crossing was
                // swallowed by a suspension window must still be failed
                // over once the suspension lifts. (Duplicate failovers are
                // harmless — the first removal empties the victim list.)
                if *m >= cfg.ping_misses {
                    newly_dead.push(s);
                }
            }
        }

        // Appendix C.2: widespread "failure" smells like a monitor bug.
        if targets.len() >= 4 && apparently_dead * 2 > targets.len() {
            if !self.monitor.suspended {
                self.monitor.suspended = true;
                self.tel.inc(self.tel.monitor_suspensions);
            }
            return;
        }
        self.monitor.suspended = false;

        for dead in newly_dead {
            self.failover_server(dead, now);
        }

        // BE↔FE mutual ping (Appendix C.1): detects link faults between a
        // healthy BE and a healthy FE that the centralized monitor cannot
        // see. Runs at the same cadence here; production uses a lower
        // frequency because total partitions between servers are rare.
        let mut pairs: Vec<(nezha_types::VnicId, ServerId, ServerId)> = self
            .be_meta
            .iter()
            .flat_map(|(v, m)| {
                let be = self.vnic_home[v];
                m.ready_fes()
                    .iter()
                    .map(move |fe| (*v, be, *fe))
                    .collect::<Vec<_>>()
            })
            .collect();
        pairs.sort_unstable_by_key(|(v, _, fe)| (v.0, fe.0));
        for (vnic, be, fe) in pairs {
            let reachable = self.alive[be.0 as usize]
                && self.alive[fe.0 as usize]
                && !self.link_blackholed(be, fe)
                && !self.faults.partitioned(be, fe);
            if reachable {
                self.monitor.mutual_missed.insert((be, fe), 0);
            } else if self.alive[fe.0 as usize] {
                // The FE answers the central monitor but not this BE: a
                // link fault. After the miss threshold, remove the FE from
                // *this* BE's pool only.
                let miss = self.monitor.mutual_missed.entry((be, fe)).or_insert(0);
                *miss += 1;
                if *miss >= cfg.ping_misses {
                    self.remove_fe(vnic, fe, now);
                    let cur = self.be_meta.get(&vnic).map_or(0, |m| m.fe_list.len());
                    if cur < cfg.min_fes {
                        self.scale_out_excluding(vnic, cfg.min_fes - cur, &[fe], now);
                    }
                    self.tel.inc(self.tel.failover_events);
                }
            }
        }
    }

    /// True while automatic removal is suspended (Appendix C.2).
    pub fn monitor_suspended(&self) -> bool {
        self.monitor.suspended
    }

    /// Removes every FE on a crashed server and restores the ≥`min_fes`
    /// floor (§4.4 failover).
    pub(crate) fn failover_server(&mut self, dead: ServerId, now: SimTime) {
        let mut victims: Vec<VnicId> = self
            .fes
            .keys()
            .filter(|(s, _)| *s == dead)
            .map(|(_, v)| *v)
            .collect();
        victims.sort_unstable_by_key(|v| v.0);
        if victims.is_empty() {
            return;
        }
        if let Some(crashed_at) = self.monitor.crash_pending.remove(&dead) {
            self.tel
                .observe_duration(self.tel.detection_latency, now.since(crashed_at));
        }
        self.tel.inc(self.tel.failover_events);
        for vnic in victims {
            self.remove_fe(vnic, dead, now);
            let cur = self.be_meta.get(&vnic).map_or(0, |m| m.fe_list.len());
            let floor = self.cfg.controller.min_fes;
            // "If one of the 4 FEs crashes, we will delete the faulty FE
            // and add a new one. If there are more than 4 … only delete"
            // (§4.4).
            if cur < floor {
                self.scale_out(vnic, floor - cur, now);
            }
        }
    }
}

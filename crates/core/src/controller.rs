//! The Nezha controller: utilization monitoring, offload/fallback,
//! FE selection, and remote-pool scale-out/scale-in (§4.2, §4.3, Fig. 8).
//!
//! Decision tree per vSwitch report (Fig. 8):
//!
//! * utilization > **70%** and dominated by *local* vNIC load → **offload**
//!   vNICs in descending order of consumption until below the safe level;
//! * utilization > **40%**:
//!   * dominated by *remote* (FE) load → **scale out** more FEs;
//!   * dominated by *local* load while hosting FEs → **scale in**: remove
//!     every FE on this vSwitch to prioritize local traffic (§4.3);
//! * an offloaded vNIC whose remote usage is low, where the BE could
//!   absorb the load locally → **fallback** (§4.2.2).
//!
//! Every configuration change takes effect with a modeled propagation
//! delay (log-normal push latency per FE, a gateway update, then the
//! 200 ms learning interval), which yields Table 4's completion-time
//! distribution and the dual-running stage for free.

use crate::be::{BackendMeta, OffloadPhase};
use crate::cluster::{Cluster, ConfigOp, Event};
use crate::fe::FrontEnd;
use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{NezhaError, NezhaResult, ServerId, VnicId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Controller thresholds and delays.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Utilization report / decision period.
    pub report_period: SimDuration,
    /// Offload trigger threshold (70% in Fig. 8).
    pub offload_threshold: f64,
    /// Scale-out/-in trigger threshold (40% in Fig. 8).
    pub scale_threshold: f64,
    /// Offload vNICs until projected utilization falls below this.
    pub safe_level: f64,
    /// Initial FE count (4 in production, Appendix B.2).
    pub initial_fes: usize,
    /// Minimum FE count maintained by failover (§4.4).
    pub min_fes: usize,
    /// FEs added per scale-out (production doubles 4 → 8, Fig. 11).
    pub scale_out_step: usize,
    /// Minimum spacing between scale-outs of one vNIC's pool: utilization
    /// windows keep reading hot for up to their length after a widening
    /// takes effect, so reacting faster than this double-fires.
    pub scale_out_cooldown: SimDuration,
    /// Median of the per-FE config push latency.
    pub config_push_median: SimDuration,
    /// Log-normal sigma of the push latency.
    pub config_push_sigma: f64,
    /// Delay for a gateway table update to apply.
    pub gateway_update_delay: SimDuration,
    /// Health-monitor ping period (§4.4).
    pub ping_period: SimDuration,
    /// Missed pings before a vSwitch is declared crashed.
    pub ping_misses: u32,
    /// Enable automatic offloading on threshold crossings.
    pub auto_offload: bool,
    /// Enable automatic FE scaling.
    pub auto_scale: bool,
    /// Enable automatic fallback.
    pub auto_fallback: bool,
    /// Remote-usage level (relative to BE capacity) below which fallback
    /// is considered.
    pub fallback_low_water: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            report_period: SimDuration::from_millis(500),
            offload_threshold: 0.70,
            scale_threshold: 0.40,
            safe_level: 0.40,
            initial_fes: 4,
            min_fes: 4,
            scale_out_step: 4,
            scale_out_cooldown: SimDuration::from_secs(2),
            config_push_median: SimDuration::from_millis(430),
            config_push_sigma: 0.50,
            gateway_update_delay: SimDuration::from_millis(100),
            ping_period: SimDuration::from_millis(500),
            ping_misses: 3,
            auto_offload: true,
            auto_scale: true,
            auto_fallback: false,
            fallback_low_water: 0.05,
        }
    }
}

/// Controller bookkeeping between ticks.
#[derive(Debug, Default)]
pub struct ControllerState {
    /// Cycles charged for *local* (BE or traditional) work per server
    /// since the last tick.
    local_cycles: BTreeMap<ServerId, f64>,
    /// Cycles charged for *remote* (FE) work per server since last tick.
    remote_cycles: BTreeMap<ServerId, f64>,
    /// Last scale-out instant per vNIC (cooldown enforcement).
    last_scale_out: BTreeMap<VnicId, SimTime>,
}

impl ControllerState {
    /// Fresh state.
    pub fn new() -> Self {
        ControllerState::default()
    }

    pub(crate) fn note_local_cycles(&mut self, s: ServerId, cycles: u64) {
        *self.local_cycles.entry(s).or_insert(0.0) += cycles as f64;
    }

    pub(crate) fn note_remote_cycles(&mut self, s: ServerId, cycles: u64) {
        *self.remote_cycles.entry(s).or_insert(0.0) += cycles as f64;
    }

    fn split(&self, s: ServerId) -> (f64, f64) {
        (
            self.local_cycles.get(&s).copied().unwrap_or(0.0),
            self.remote_cycles.get(&s).copied().unwrap_or(0.0),
        )
    }

    fn reset(&mut self) {
        self.local_cycles.clear();
        self.remote_cycles.clear();
    }
}

impl Cluster {
    /// One controller decision round (runs every
    /// [`ControllerConfig::report_period`]).
    pub(crate) fn controller_tick(&mut self, now: SimTime) {
        let cfg = self.cfg.controller;
        self.engine
            .schedule_in(cfg.report_period, Event::ControllerTick);
        if !self.nezha_enabled {
            self.controller.reset();
            return;
        }
        // Scripted controller outage: reports are lost and no decision is
        // made until the controller recovers (the data plane keeps
        // forwarding on its last-pushed configuration — §4.4's argument
        // that the controller is off the critical path).
        if self.faults.controller_down() {
            self.controller.reset();
            return;
        }
        let n = self.switches.len();
        let mut to_scale_out: Vec<ServerId> = Vec::new();
        for i in 0..n {
            if !self.alive[i] {
                continue;
            }
            let server = ServerId(i as u32);
            let cpu = self.switches[i].cpu_utilization(now);
            let mem = self.switches[i].mem_utilization();
            let util = cpu.max(mem);
            let (local, remote) = self.controller.split(server);
            // Publish the per-server utilization report the decisions
            // below are based on. The gauge handles were pre-registered
            // at startup (D5): no string-keyed registry lookup here.
            if let Some(g) = self.tel.ctrl_gauges.get(i).copied() {
                let reg = &self.tel.registry;
                reg.set(g.cpu_util, cpu);
                reg.set(g.mem_util, mem);
                reg.set(g.local_cycles, local);
                reg.set(g.remote_cycles, remote);
            }

            if util > cfg.offload_threshold && cfg.auto_offload && local >= remote {
                self.offload_overloaded(server, cpu, mem, now);
            } else if util > cfg.scale_threshold && cfg.auto_scale {
                if remote > local {
                    to_scale_out.push(server);
                } else if remote > 0.0 {
                    self.scale_in_server(server, now);
                }
            }
        }
        // One scale-out per vNIC per tick: several hot FE hosts of the
        // same pool are one signal, not several.
        let mut scaled: Vec<VnicId> = Vec::new();
        for server in to_scale_out {
            if let Some(vnic) = self.hottest_fe_vnic(server) {
                if !scaled.contains(&vnic) {
                    self.scale_out(vnic, cfg.scale_out_step, now);
                    scaled.push(vnic);
                }
            }
        }
        if cfg.auto_fallback {
            self.consider_fallbacks(now);
        }
        self.controller.reset();
    }

    /// Offloads this vSwitch's local vNICs, heaviest first, until the
    /// projected utilization is below the safe level (§4.2.1).
    fn offload_overloaded(&mut self, server: ServerId, cpu: f64, mem: f64, now: SimTime) {
        let cfg = self.cfg.controller;
        let by_cpu = cpu >= mem;
        let vs = &self.switches[server.0 as usize];
        // Rank candidates by the triggering resource.
        let mut candidates: Vec<(VnicId, f64)> = vs
            .vnic_ids()
            .into_iter()
            .filter(|v| self.vnic_home.get(v) == Some(&server))
            .filter(|v| !self.be_meta.contains_key(v))
            .map(|v| {
                let weight = if by_cpu {
                    vs.vnic_cycle_shares().get(&v).copied().unwrap_or(0.0)
                } else {
                    vs.vnic_memory(v) as f64
                };
                (v, weight)
            })
            .collect();
        candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));

        let total: f64 = candidates.iter().map(|c| c.1).sum();
        let mut util = cpu.max(mem);
        for (vnic, weight) in candidates {
            if util <= cfg.safe_level {
                break;
            }
            if self.trigger_offload(vnic, now).is_ok() {
                // Project the relief proportionally to the vNIC's share.
                if total > 0.0 {
                    util -= (weight / total) * util;
                }
            }
        }
    }

    /// Starts offloading `vnic` to a fresh FE set (§4.2.1 workflow).
    ///
    /// Errors if the vNIC is unknown, already offloaded, or no candidate
    /// FEs exist.
    pub fn trigger_offload(&mut self, vnic: VnicId, now: SimTime) -> NezhaResult<()> {
        self.trigger_offload_to_version(vnic, now, None)
    }

    /// Offloads `vnic` to FEs running an exact vSwitch version — the §7.2
    /// capability: steer a vNIC onto upgraded vSwitches to get a new
    /// feature early, or onto older known-good ones to dodge a release
    /// bug, without touching the VM.
    pub fn trigger_offload_to_version(
        &mut self,
        vnic: VnicId,
        now: SimTime,
        version: Option<u32>,
    ) -> NezhaResult<()> {
        if self.be_meta.contains_key(&vnic) {
            return Err(NezhaError::AlreadyOffloaded(vnic));
        }
        let home = *self
            .vnic_home
            .get(&vnic)
            .ok_or(NezhaError::UnknownVnic(vnic))?;
        let cfg = self.cfg.controller;
        let fes = self.select_idle_vswitches_versioned(home, cfg.initial_fes, &[], version);
        if fes.is_empty() {
            return Err(NezhaError::NoIdleVswitches);
        }
        // BE metadata costs the 2 KB of §6.2.1.
        let be_bytes = self.cfg.vswitch.memory.be_metadata;
        if self.switches[home.0 as usize].mem.alloc(be_bytes).is_err() {
            return Err(NezhaError::InsufficientMemory {
                what: "BE metadata",
            });
        }
        let mut meta = BackendMeta::new(now);
        self.tel.inc(self.tel.offload_events);

        // Push rule tables to each FE with a modeled per-FE delay.
        let mut worst = SimDuration::ZERO;
        for fe in fes {
            meta.add_fe(fe);
            let delay = self
                .rng
                .lognormal_duration(cfg.config_push_median, cfg.config_push_sigma);
            worst = worst.max(delay);
            self.engine
                .schedule_in(delay, Event::Config(ConfigOp::FeConfigured { vnic, fe }));
        }
        self.be_meta.insert(vnic, meta);

        // Gateway update follows the slowest FE config plus its own push;
        // at apply time it reflects whichever FEs actually configured.
        let gw_at = now + worst + cfg.gateway_update_delay;
        self.engine
            .schedule_at(gw_at, Event::Config(ConfigOp::GatewaySyncFes { vnic }));
        if self.cfg.skip_dual_running {
            // Ablation: tear the BE's tables down the moment the FEs are
            // up — before a single peer has learned the new mapping.
            self.engine
                .schedule_at(now + worst, Event::Config(ConfigOp::BeFinalStage { vnic }));
        }
        // Activation check once every sender has learned the new mapping.
        self.engine.schedule_at(
            gw_at + self.gateway.learning_interval(),
            Event::Config(ConfigOp::CheckActivation { vnic }),
        );
        Ok(())
    }

    /// Selects idle vSwitches to host FEs: same ToR first, widening to the
    /// pod and then the whole fabric; candidates must be alive, have
    /// headroom, and have *similar* utilization for a consistent flow
    /// experience (Appendix B.1 — we sort ascending and take a contiguous
    /// low-utilization block).
    pub(crate) fn select_idle_vswitches(
        &mut self,
        home: ServerId,
        want: usize,
        exclude: &[ServerId],
    ) -> Vec<ServerId> {
        self.select_idle_vswitches_versioned(home, want, exclude, None)
    }

    /// FE selection with an optional exact-version requirement (§7.2).
    pub(crate) fn select_idle_vswitches_versioned(
        &mut self,
        home: ServerId,
        want: usize,
        exclude: &[ServerId],
        version: Option<u32>,
    ) -> Vec<ServerId> {
        let now = self.engine.now();
        let scopes = [
            self.topo.rack_peers(home),
            self.topo.pod_peers(home),
            self.topo.all_peers(home),
        ];
        for scope in scopes {
            let mut cands: Vec<(ServerId, f64)> = scope
                .into_iter()
                .filter(|s| self.alive[s.0 as usize])
                .filter(|s| !exclude.contains(s))
                .filter(|s| version.is_none_or(|v| self.switches[s.0 as usize].version == v))
                .map(|s| (s, self.switches[s.0 as usize].cpu_utilization(now)))
                .filter(|(_, u)| *u < self.cfg.controller.scale_threshold)
                .collect();
            if cands.len() >= want {
                cands.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0 .0.cmp(&b.0 .0)));
                return cands.into_iter().take(want).map(|(s, _)| s).collect();
            }
        }
        Vec::new()
    }

    /// Adds `n` more FEs for an offloaded vNIC (scale-out, §4.3).
    ///
    /// A no-op while a previous scale-out's pushes are still in flight —
    /// the pool must see the effect of one widening before deciding on
    /// another.
    pub fn scale_out(&mut self, vnic: VnicId, n: usize, now: SimTime) -> usize {
        self.scale_out_excluding(vnic, n, &[], now)
    }

    /// Like [`Cluster::scale_out`] but never placing FEs on `avoid` —
    /// used by scale-in so the compensating widening does not land right
    /// back on the vSwitch that just shed its remote load.
    pub(crate) fn scale_out_excluding(
        &mut self,
        vnic: VnicId,
        n: usize,
        avoid: &[ServerId],
        _now: SimTime,
    ) -> usize {
        let Some(meta) = self.be_meta.get(&vnic) else {
            return 0;
        };
        if !meta.all_ready() {
            return 0;
        }
        let now = self.engine.now();
        if let Some(&last) = self.controller.last_scale_out.get(&vnic) {
            if now.since(last) < self.cfg.controller.scale_out_cooldown {
                return 0;
            }
        }
        let home = self.vnic_home[&vnic];
        let existing = meta.fe_list.clone();
        let existing_count = existing.len();
        let mut unavailable = existing.clone();
        unavailable.extend_from_slice(avoid);
        let cfg = self.cfg.controller;
        let new_fes = self.select_idle_vswitches(home, n, &unavailable);
        if new_fes.is_empty() {
            return 0;
        }
        self.tel.inc(self.tel.scale_out_events);
        self.controller.last_scale_out.insert(vnic, now);
        // Every added FE re-hashes a slice of the flow space onto a cold
        // cache — counted as churn for the recovery metrics.
        self.tel.add(self.tel.rehash_churn, new_fes.len() as u64);
        let Some(meta) = self.be_meta.get_mut(&vnic) else {
            return 0; // meta existence checked at fn entry
        };
        let mut added = 0;
        for fe in new_fes {
            meta.add_fe(fe);
            added += 1;
        }
        let fe_list = meta.fe_list.clone();
        for fe in fe_list.iter().skip(existing_count).copied() {
            let delay = self
                .rng
                .lognormal_duration(cfg.config_push_median, cfg.config_push_sigma);
            self.engine
                .schedule_in(delay, Event::Config(ConfigOp::FeConfigured { vnic, fe }));
        }
        // Gateway learns the wider set after the pushes.
        let _ = fe_list;
        self.engine.schedule_in(
            cfg.config_push_median.times(2) + cfg.gateway_update_delay,
            Event::Config(ConfigOp::GatewaySyncFes { vnic }),
        );
        added
    }

    /// The vNIC with the largest FE (remote) usage on `server` — the
    /// scale-out candidate when that host runs hot.
    fn hottest_fe_vnic(&self, server: ServerId) -> Option<VnicId> {
        let vs = &self.switches[server.0 as usize];
        let shares = vs.vnic_cycle_shares();
        self.fes
            .keys()
            .filter(|(s, _)| *s == server)
            .map(|(_, v)| (*v, shares.get(v).copied().unwrap_or(0.0)))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0 .0.cmp(&a.0 .0)))
            .map(|(v, _)| v)
    }

    /// Scale-in: remove every FE on `server` to prioritize its local vNIC
    /// traffic (§4.3). May trigger compensating scale-out elsewhere.
    pub fn scale_in_server(&mut self, server: ServerId, now: SimTime) {
        let mut victims: Vec<VnicId> = self
            .fes
            .keys()
            .filter(|(s, _)| *s == server)
            .map(|(_, v)| *v)
            .collect();
        victims.sort_unstable_by_key(|v| v.0);
        if victims.is_empty() {
            return;
        }
        self.tel.inc(self.tel.scale_in_events);
        for vnic in victims {
            self.remove_fe(vnic, server, now);
            // Keep the pool at the minimum (§4.4 logic shared with
            // failover): add a replacement if we dropped below — but not
            // on the server we just prioritized for local traffic.
            let cur = self.be_meta.get(&vnic).map_or(0, |m| m.fe_list.len());
            if cur < self.cfg.controller.min_fes {
                self.scale_out_excluding(vnic, self.cfg.controller.min_fes - cur, &[server], now);
            }
        }
    }

    /// Removes one FE of one vNIC: config, gateway, memory.
    pub(crate) fn remove_fe(&mut self, vnic: VnicId, fe_server: ServerId, now: SimTime) {
        let Some(meta) = self.be_meta.get_mut(&vnic) else {
            return;
        };
        if !meta.remove_fe(fe_server) {
            return;
        }
        // A removal re-hashes the departed FE's flow slice onto the
        // survivors (churn, mirrored by the add side in scale-out).
        self.tel.inc(self.tel.rehash_churn);
        let remaining: Vec<ServerId> = meta.ready_fes().to_vec();
        if let Some(fe) = self.fes.remove(&(fe_server, vnic)) {
            let m = self.cfg.vswitch.memory;
            fe.release(&mut self.switches[fe_server.0 as usize].mem, &m);
        }
        // Elephant pins steering to this FE would blackhole their flows.
        self.gateway.unpin_server(self.vnic_addr[&vnic], fe_server);
        // Point the gateway at the survivors (or back at the BE if none).
        let addr = self.vnic_addr[&vnic];
        let servers = if remaining.is_empty() {
            vec![self.vnic_home[&vnic]]
        } else {
            remaining
        };
        self.engine.schedule_in(
            self.cfg.controller.gateway_update_delay,
            Event::Config(ConfigOp::GatewayUpdate { addr, servers }),
        );
        let _ = now;
    }

    /// Starts a fallback to local processing (§4.2.2).
    pub fn trigger_fallback(&mut self, vnic: VnicId, now: SimTime) -> NezhaResult<()> {
        let meta = self
            .be_meta
            .get_mut(&vnic)
            .ok_or(NezhaError::NotOffloaded(vnic))?;
        if meta.phase != OffloadPhase::Offloaded {
            return Err(NezhaError::OffloadInProgress(vnic));
        }
        let home = self.vnic_home[&vnic];
        // Re-arm the BE with the master tables first (dual-running again).
        let master = self
            .master_vnics
            .get(&vnic)
            .ok_or(NezhaError::UnknownVnic(vnic))?
            .clone();
        self.switches[home.0 as usize]
            .add_vnic(master)
            .map_err(|_| NezhaError::InsufficientMemory { what: "BE tables" })?;
        let Some(meta) = self.be_meta.get_mut(&vnic) else {
            return Err(NezhaError::NotOffloaded(vnic));
        };
        meta.phase = OffloadPhase::FallbackDual;
        self.tel.inc(self.tel.fallback_events);
        // Gateway points back at the BE; once learned, tear the FEs down.
        let addr = self.vnic_addr[&vnic];
        let cfg = self.cfg.controller;
        let gw_at = now + cfg.gateway_update_delay;
        self.engine.schedule_at(
            gw_at,
            Event::Config(ConfigOp::GatewayUpdate {
                addr,
                servers: vec![home],
            }),
        );
        self.engine.schedule_at(
            gw_at + self.gateway.learning_interval() + SimDuration::from_millis(50),
            Event::Config(ConfigOp::FallbackFinal { vnic }),
        );
        Ok(())
    }

    /// Periodic fallback consideration: offloaded vNICs whose remote usage
    /// is low fall back when the BE can absorb the load (§4.2.2).
    fn consider_fallbacks(&mut self, now: SimTime) {
        let cfg = self.cfg.controller;
        let candidates: Vec<VnicId> = self
            .be_meta
            .iter()
            .filter(|(_, m)| m.phase == OffloadPhase::Offloaded)
            .map(|(v, _)| *v)
            .collect();
        // Remote usage is judged from this tick's cycle counters (reset
        // every tick), normalized to utilization over the report period —
        // a lifetime counter would saturate the threshold permanently.
        let window_cycles = self.cfg.vswitch.capacity_hz() * cfg.report_period.as_secs_f64();
        for vnic in candidates {
            let home = self.vnic_home[&vnic];
            let fe_usage: f64 = self
                .fe_servers(vnic)
                .iter()
                .map(|s| self.controller.split(*s).1)
                .sum::<f64>()
                / window_cycles;
            let be_util = self.switches[home.0 as usize].cpu_utilization(now);
            if fe_usage < cfg.fallback_low_water && be_util + fe_usage < cfg.safe_level {
                let _ = self.trigger_fallback(vnic, now);
            }
        }
    }

    /// Applies a delayed configuration operation.
    pub(crate) fn apply_config(&mut self, op: ConfigOp, now: SimTime) {
        match op {
            ConfigOp::FeConfigured { vnic, fe } => {
                if !self.alive[fe.0 as usize] {
                    return;
                }
                let Some(meta) = self.be_meta.get_mut(&vnic) else {
                    return;
                };
                if !meta.fe_list.contains(&fe) {
                    return; // removed while the push was in flight
                }
                let Some(master) = self.master_vnics.get(&vnic) else {
                    return;
                };
                let m = self.cfg.vswitch.memory;
                let bytes = master.table_memory(&m);
                if self.switches[fe.0 as usize].mem.alloc(bytes).is_err() {
                    // The candidate filled up while configuring; drop it.
                    if let Some(meta) = self.be_meta.get_mut(&vnic) {
                        meta.remove_fe(fe);
                    }
                    return;
                }
                let home = self.vnic_home[&vnic];
                let mut frontend = FrontEnd::new(master.clone(), home);
                frontend.charged_table_bytes = bytes;
                self.fes.insert((fe, vnic), frontend);
                let Some(meta) = self.be_meta.get_mut(&vnic) else {
                    return; // meta presence checked above
                };
                meta.mark_ready(fe);
                // A straggling push can land after the scheduled gateway
                // sync; re-sync once the set completes so every ready FE
                // receives RX traffic.
                if meta.all_ready() {
                    self.engine.schedule_in(
                        self.cfg.controller.gateway_update_delay,
                        Event::Config(ConfigOp::GatewaySyncFes { vnic }),
                    );
                }
            }
            ConfigOp::GatewayUpdate { addr, servers } => {
                let live: Vec<ServerId> = servers
                    .into_iter()
                    .filter(|s| self.alive[s.0 as usize])
                    .collect();
                if !live.is_empty() {
                    self.gateway.update(addr, live, now);
                }
            }
            ConfigOp::GatewaySyncFes { vnic } => {
                let Some(meta) = self.be_meta.get(&vnic) else {
                    return;
                };
                let mut servers: Vec<ServerId> = meta
                    .ready_fes()
                    .iter()
                    .copied()
                    .filter(|s| self.alive[s.0 as usize])
                    .collect();
                if servers.is_empty() {
                    servers = vec![self.vnic_home[&vnic]];
                }
                let addr = self.vnic_addr[&vnic];
                self.gateway.update(addr, servers, now);
            }
            ConfigOp::CheckActivation { vnic } => {
                let Some(meta) = self.be_meta.get_mut(&vnic) else {
                    return;
                };
                if meta.phase == OffloadPhase::OffloadDual && meta.activated_at.is_none() {
                    meta.activated_at = Some(now);
                    let completion = now.since(meta.triggered_at);
                    self.tel
                        .observe_duration(self.tel.offload_completion, completion);
                    // Enter the final stage after learning-interval + RTT.
                    self.engine.schedule_in(
                        self.gateway.learning_interval() + SimDuration::from_millis(2),
                        Event::Config(ConfigOp::BeFinalStage { vnic }),
                    );
                }
            }
            ConfigOp::BeFinalStage { vnic } => {
                let Some(meta) = self.be_meta.get_mut(&vnic) else {
                    return;
                };
                if meta.phase != OffloadPhase::OffloadDual {
                    return;
                }
                meta.phase = OffloadPhase::Offloaded;
                let home = self.vnic_home[&vnic];
                let vs = &mut self.switches[home.0 as usize];
                // "Delete the rule tables and cached flows on the BE"
                // (§4.2.1): frees the memory that becomes #flows headroom.
                vs.remove_vnic(vnic);
                let m = self.cfg.vswitch.memory;
                vs.sessions.drop_cached_flows(&mut vs.mem, &m);
            }
            ConfigOp::FallbackFinal { vnic } => {
                let Some(meta) = self.be_meta.get(&vnic) else {
                    return;
                };
                if meta.phase != OffloadPhase::FallbackDual {
                    return;
                }
                for fe_server in self.fe_servers(vnic) {
                    if let Some(fe) = self.fes.remove(&(fe_server, vnic)) {
                        let m = self.cfg.vswitch.memory;
                        fe.release(&mut self.switches[fe_server.0 as usize].mem, &m);
                    }
                }
                let home = self.vnic_home[&vnic];
                self.switches[home.0 as usize]
                    .mem
                    .free(self.cfg.vswitch.memory.be_metadata);
                self.gateway.unpin_addr(self.vnic_addr[&vnic]);
                self.be_meta.remove(&vnic);
            }
            ConfigOp::BeLocationUpdate { vnic, new_home } => {
                // §7.2: live migration — repoint every FE's BE location.
                for ((_, v), fe) in self.fes.iter_mut() {
                    if *v == vnic {
                        fe.be_location = new_home;
                    }
                }
                self.vnic_home.insert(vnic, new_home);
            }
        }
    }
}

//! The flow-level (fluid) region simulator for production-scale results.
//!
//! The paper's production experiments span O(10K) servers and months
//! (Figs. 2–4, 13; Tables 1, 3, 4; Appendix B.2). Packet-level simulation
//! at that scale is pointless — those results are *statistical* — so this
//! module models each vSwitch's demand as a stochastic process with the
//! same resource accounting as the packet-level cluster:
//!
//! * per-server baseline demand is heavy-tailed (log-normal, clipped),
//!   calibrated to Fig. 4's utilization CDF ("shortage and waste": ~5%
//!   average CPU with a P9999 of ~90%);
//! * demand **spikes** arrive randomly, with a heavy-tailed magnitude and
//!   a log-normal *rise time*; an overload occurs when demand exceeds
//!   capacity while the vNIC is not yet offloaded — under Nezha that
//!   requires the spike to outrun the ~1–3 s offload activation
//!   (Fig. 13's residual >99.9%-mitigated overloads);
//! * offload/scale events follow the controller thresholds of Fig. 8 and
//!   sample the same completion-time model as the packet-level
//!   controller (Table 4);
//! * `middlebox` computes Table 3's per-middlebox gains analytically from
//!   the calibrated capacity models.
//!
//! Every distributional parameter lives in [`RegionConfig`], documented
//! against the paper quantity it was calibrated to.

use crate::vm::VmConfig;
use nezha_sim::metrics::{CounterHandle, HistogramHandle, MetricsRegistry};
use nezha_sim::rng::SimRng;
use nezha_sim::stats::Samples;
use nezha_sim::time::SimDuration;
use nezha_vswitch::config::VSwitchConfig;
use nezha_vswitch::vnic::VnicProfile;
use serde::{Deserialize, Serialize};

/// Which capability a demand spike stresses (Fig. 3's hotspot causes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SpikeKind {
    /// New connections per second (CPU on the slow path).
    Cps,
    /// Concurrent flows (memory on the fast path).
    Flows,
    /// vNIC provisioning (memory on the slow path).
    Vnics,
}

/// Region model parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RegionConfig {
    /// Number of servers (paper: O(10K)).
    pub servers: usize,
    /// RNG seed.
    pub seed: u64,
    /// Epoch length (demand re-sampling period).
    pub epoch: SimDuration,
    /// Median of the per-server baseline CPU demand (fraction of
    /// capacity). Calibrated with `cpu_sigma` to Fig. 4a: avg ≈ 5%,
    /// P90 ≈ 15%, P99 ≈ 41%, P999 ≈ 68%, P9999 ≈ 90%.
    pub cpu_median: f64,
    /// Log-normal sigma of the CPU baseline.
    pub cpu_sigma: f64,
    /// Median of the per-server baseline memory demand. Calibrated with
    /// `mem_sigma` to Fig. 4b: avg ≈ 1.5%, P999 ≈ 93%, P9999 ≈ 96%.
    pub mem_median: f64,
    /// Log-normal sigma of the memory baseline.
    pub mem_sigma: f64,
    /// Fraction of servers hosting memory-heavy middlebox-style vNICs
    /// (the fat tail of Fig. 4b).
    pub mem_heavy_frac: f64,
    /// Per-server, per-epoch probability of a demand spike.
    pub spike_prob: f64,
    /// Bounded-Pareto tail index of spike magnitude.
    pub spike_alpha: f64,
    /// Spike magnitude bounds (multiplier on baseline).
    pub spike_mult: (f64, f64),
    /// Median spike rise time; a spike faster than the offload
    /// activation still causes a (brief) overload under Nezha.
    pub spike_rise_median: SimDuration,
    /// Log-normal sigma of the rise time.
    pub spike_rise_sigma: f64,
    /// Relative frequency of CPS / flows / vNIC spikes. Calibrated to
    /// Fig. 3's observed hotspot shares (≈61% / 30% / 9%, Appendix A.1).
    pub spike_weights: (f64, f64, f64),
    /// Offload trigger threshold (Fig. 8: 70%).
    pub offload_threshold: f64,
    /// Median of one FE config push (same model as the packet cluster).
    pub push_median: SimDuration,
    /// Log-normal sigma of the push.
    pub push_sigma: f64,
    /// Gateway update delay.
    pub gateway_delay: SimDuration,
    /// vSwitch learning interval.
    pub learning_interval: SimDuration,
    /// Initial FE count (Appendix B.2: 4).
    pub initial_fes: usize,
    /// Per offloaded-vNIC, per-day probability that demand growth forces
    /// a scale-out (calibrated to Appendix B.2's ≈2.6% of pools).
    pub scale_out_daily_prob: f64,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            servers: 10_000,
            seed: 0x4e5a,
            epoch: SimDuration::from_secs(3600),
            cpu_median: 0.028,
            cpu_sigma: 1.15,
            mem_median: 0.008,
            mem_sigma: 1.05,
            mem_heavy_frac: 0.0035,
            spike_prob: 0.002,
            spike_alpha: 1.1,
            spike_mult: (1.5, 40.0),
            spike_rise_median: SimDuration::from_secs(60),
            spike_rise_sigma: 1.2,
            spike_weights: (0.61, 0.30, 0.09),
            offload_threshold: 0.70,
            push_median: SimDuration::from_millis(430),
            push_sigma: 0.50,
            gateway_delay: SimDuration::from_millis(100),
            learning_interval: SimDuration::from_millis(200),
            initial_fes: 4,
            scale_out_daily_prob: 0.0009,
        }
    }
}

/// Per-server state.
#[derive(Clone, Copy, Debug)]
struct ServerState {
    base_cpu: f64,
    base_mem: f64,
    offloaded: bool,
}

/// Aggregated outputs of a region run.
#[derive(Debug, Default)]
pub struct RegionReport {
    /// Overload occurrences per day, by cause.
    pub daily_cps: Vec<u64>,
    /// Overloads from #concurrent flows per day.
    pub daily_flows: Vec<u64>,
    /// Overloads from #vNICs per day.
    pub daily_vnics: Vec<u64>,
    /// CPU utilization snapshots across servers and epochs (Fig. 4a).
    pub cpu_utils: Samples,
    /// Memory utilization snapshots (Fig. 4b).
    pub mem_utils: Samples,
    /// Offload events triggered.
    pub offload_events: u64,
    /// Total FEs provisioned (Appendix B.2's 10 062-style count).
    pub total_fes_provisioned: u64,
    /// Scale-out operations.
    pub scale_out_events: u64,
    /// Offload completion times (Table 4), in seconds.
    pub completion_times: Samples,
}

impl RegionReport {
    /// Total overloads by cause across the run.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.daily_cps.iter().sum(),
            self.daily_flows.iter().sum(),
            self.daily_vnics.iter().sum(),
        )
    }
}

/// Pre-registered handles mirroring [`RegionReport`] into an attached
/// [`MetricsRegistry`] (all under the `region.` prefix).
#[derive(Clone, Debug)]
struct RegionTelemetry {
    registry: MetricsRegistry,
    overload_cps: CounterHandle,
    overload_flows: CounterHandle,
    overload_vnics: CounterHandle,
    offload_events: CounterHandle,
    scale_out_events: CounterHandle,
    fes_provisioned: CounterHandle,
    cpu_util: HistogramHandle,
    mem_util: HistogramHandle,
    completion_secs: HistogramHandle,
}

impl RegionTelemetry {
    fn register(registry: &MetricsRegistry) -> Self {
        RegionTelemetry {
            registry: registry.clone(),
            overload_cps: registry.counter("region.overload.cps", &[]),
            overload_flows: registry.counter("region.overload.flows", &[]),
            overload_vnics: registry.counter("region.overload.vnics", &[]),
            offload_events: registry.counter("region.offload_events", &[]),
            scale_out_events: registry.counter("region.scale_out_events", &[]),
            fes_provisioned: registry.counter("region.fes_provisioned", &[]),
            cpu_util: registry.histogram("region.cpu_util", &[]),
            mem_util: registry.histogram("region.mem_util", &[]),
            completion_secs: registry.histogram("region.offload_completion_secs", &[]),
        }
    }
}

/// The fluid region simulator.
#[derive(Debug)]
pub struct Region {
    cfg: RegionConfig,
    rng: SimRng,
    servers: Vec<ServerState>,
    tel: Option<RegionTelemetry>,
}

impl Region {
    /// Builds a region: every server draws its heavy-tailed baseline.
    pub fn new(cfg: RegionConfig) -> Self {
        // nezha-lint: allow(D9): seed derivation pinned by golden fixtures (refactor_equivalence, BENCH_pr6); migrate to derive_seed when re-baselining
        let mut rng = SimRng::new(cfg.seed);
        let servers = (0..cfg.servers)
            .map(|_| {
                let base_cpu = (cfg.cpu_median * (cfg.cpu_sigma * rng.normal()).exp()).min(0.98);
                let heavy = rng.chance(cfg.mem_heavy_frac);
                let base_mem = if heavy {
                    0.3 + 0.66 * rng.f64()
                } else {
                    (cfg.mem_median * (cfg.mem_sigma * rng.normal()).exp()).min(0.96)
                };
                ServerState {
                    base_cpu,
                    base_mem,
                    offloaded: false,
                }
            })
            .collect();
        Region {
            cfg,
            rng,
            servers,
            tel: None,
        }
    }

    /// Attaches a [`MetricsRegistry`]: subsequent [`Region::run_days`]
    /// calls mirror the [`RegionReport`] quantities into `region.*`
    /// counters and histograms there. Optional — an unattached region
    /// pays no telemetry cost.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.tel = Some(RegionTelemetry::register(registry));
    }

    /// Samples one offload activation completion time: the slowest of the
    /// initial FE config pushes, plus the gateway update, plus the
    /// learning interval — identical in form to the packet-level
    /// controller, hence Table 4's distribution.
    pub fn sample_completion(&mut self) -> SimDuration {
        let mut worst = SimDuration::ZERO;
        for _ in 0..self.cfg.initial_fes {
            let d = self
                .rng
                .lognormal_duration(self.cfg.push_median, self.cfg.push_sigma);
            if d > worst {
                worst = d;
            }
        }
        worst + self.cfg.gateway_delay + self.cfg.learning_interval
    }

    fn spike_kind(&mut self) -> SpikeKind {
        let (a, b, _) = self.cfg.spike_weights;
        let x = self.rng.f64()
            * (self.cfg.spike_weights.0 + self.cfg.spike_weights.1 + self.cfg.spike_weights.2);
        if x < a {
            SpikeKind::Cps
        } else if x < a + b {
            SpikeKind::Flows
        } else {
            SpikeKind::Vnics
        }
    }

    /// Runs the region for `days`, with or without Nezha, producing the
    /// per-day overload counts and utilization snapshots.
    pub fn run_days(&mut self, days: usize, nezha: bool) -> RegionReport {
        let epochs_per_day = ((24 * 3600) as f64 / self.cfg.epoch.as_secs_f64())
            .round()
            .max(1.0) as usize;
        let mut report = RegionReport::default();
        // Nezha proactively offloads every server already above the
        // threshold at rollout.
        if nezha {
            for i in 0..self.servers.len() {
                if self.servers[i].base_cpu.max(self.servers[i].base_mem)
                    > self.cfg.offload_threshold
                    && !self.servers[i].offloaded
                {
                    self.offload(i, &mut report);
                }
            }
        } else {
            for s in &mut self.servers {
                s.offloaded = false;
            }
        }

        for _day in 0..days {
            let (mut cps, mut flows, mut vnics) = (0u64, 0u64, 0u64);
            for _epoch in 0..epochs_per_day {
                for i in 0..self.servers.len() {
                    // Small multiplicative wander around the baseline.
                    let wobble = (0.25 * self.rng.normal()).exp();
                    let s = self.servers[i];
                    let mut cpu = (s.base_cpu * wobble).min(0.99);
                    let mut mem = s.base_mem;

                    // Record the *post-Nezha residual* utilization: an
                    // offloaded server sheds most of its hot vNIC's load.
                    if s.offloaded {
                        cpu *= 0.15;
                        mem *= 0.4;
                    }
                    report.cpu_utils.record(cpu);
                    report.mem_utils.record(mem);
                    if let Some(tel) = &self.tel {
                        tel.registry.observe(tel.cpu_util, cpu);
                        tel.registry.observe(tel.mem_util, mem);
                    }

                    // Threshold-triggered proactive offload.
                    if nezha && !s.offloaded && cpu.max(mem) > self.cfg.offload_threshold {
                        self.offload(i, &mut report);
                    }

                    // Spikes.
                    if self.rng.chance(self.cfg.spike_prob) {
                        let kind = self.spike_kind();
                        let mult = self.rng.bounded_pareto(
                            self.cfg.spike_alpha,
                            self.cfg.spike_mult.0,
                            self.cfg.spike_mult.1,
                        );
                        let s = self.servers[i];
                        // A surge adds demand on top of the baseline: a
                        // tenant's traffic jumps by an absolute amount (a
                        // flash crowd does not scale with how idle the
                        // switch was).
                        let surge = 0.05 * mult;
                        let demand = match kind {
                            SpikeKind::Cps => s.base_cpu + surge,
                            _ => s.base_mem + surge,
                        };
                        if demand <= 1.0 {
                            continue;
                        }
                        // The spike exceeds capacity.
                        let overload = if !nezha {
                            true
                        } else if kind == SpikeKind::Vnics {
                            // vNIC rule tables are created directly on the
                            // FEs — Nezha fully prevents these (§6.3.3).
                            false
                        } else if s.offloaded {
                            // Remote pool absorbs it (possibly scaling).
                            false
                        } else {
                            // Offload races the spike's rise: only spikes
                            // faster than the activation window overload.
                            let completion = self.sample_completion();
                            let rise = self.rng.lognormal_duration(
                                self.cfg.spike_rise_median,
                                self.cfg.spike_rise_sigma,
                            );
                            let lost = rise < completion;
                            self.offload(i, &mut report);
                            lost
                        };
                        if overload {
                            match kind {
                                SpikeKind::Cps => cps += 1,
                                SpikeKind::Flows => flows += 1,
                                SpikeKind::Vnics => vnics += 1,
                            }
                            if let Some(tel) = &self.tel {
                                let h = match kind {
                                    SpikeKind::Cps => tel.overload_cps,
                                    SpikeKind::Flows => tel.overload_flows,
                                    SpikeKind::Vnics => tel.overload_vnics,
                                };
                                tel.registry.inc(h);
                            }
                        }
                    }
                }
                // Scale-out pressure on offloaded pools.
                if nezha {
                    let offloaded: Vec<usize> = self
                        .servers
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.offloaded)
                        .map(|(i, _)| i)
                        .collect();
                    let p = self.cfg.scale_out_daily_prob / epochs_per_day as f64;
                    for _ in offloaded {
                        if self.rng.chance(p) {
                            report.scale_out_events += 1;
                            report.total_fes_provisioned += 1;
                            if let Some(tel) = &self.tel {
                                tel.registry.inc(tel.scale_out_events);
                                tel.registry.inc(tel.fes_provisioned);
                            }
                        }
                    }
                }
            }
            report.daily_cps.push(cps);
            report.daily_flows.push(flows);
            report.daily_vnics.push(vnics);
        }
        report
    }

    fn offload(&mut self, server: usize, report: &mut RegionReport) {
        self.servers[server].offloaded = true;
        report.offload_events += 1;
        report.total_fes_provisioned += self.cfg.initial_fes as u64;
        let c = self.sample_completion();
        report.completion_times.record_duration(c);
        if let Some(tel) = &self.tel {
            tel.registry.inc(tel.offload_events);
            tel.registry
                .add(tel.fes_provisioned, self.cfg.initial_fes as u64);
            tel.registry.observe(tel.completion_secs, c.as_secs_f64());
        }
    }
}

/// Analytic Table 3 computation: per-middlebox gains from the calibrated
/// capacity models.
pub mod middlebox {
    use super::*;

    /// Deployed session-table memory of each middlebox class *before*
    /// Nezha, reflecting production configurations: LBs hold long-lived
    /// connections to many real servers (large session tables); NAT and
    /// TR mostly carry short-lived flows (§6.3.1).
    #[derive(Clone, Copy, Debug)]
    pub struct MiddleboxClass {
        /// Display name.
        pub name: &'static str,
        /// Table profile.
        pub profile: VnicProfile,
        /// Session-table memory budget before Nezha, bytes.
        pub session_memory_before: u64,
        /// Per-VM vNIC provisioning cap (blast-radius policy, §6.3.1).
        pub vnic_policy_cap: u64,
    }

    /// The three evaluated middleboxes.
    pub fn classes() -> [MiddleboxClass; 3] {
        [
            MiddleboxClass {
                name: "Load-balancer",
                profile: VnicProfile::load_balancer(),
                session_memory_before: 1_000 << 20, // ≈1 GB
                vnic_policy_cap: 1_000,
            },
            MiddleboxClass {
                name: "NAT gateway",
                profile: VnicProfile::nat_gateway(),
                session_memory_before: 100 << 20, // ≈100 MB
                vnic_policy_cap: 1_000,
            },
            MiddleboxClass {
                name: "Transit router",
                profile: VnicProfile::transit_router(),
                session_memory_before: 330 << 20, // ≈330 MB
                vnic_policy_cap: 1_000,
            },
        ]
    }

    /// One Table 3 row.
    #[derive(Clone, Copy, Debug)]
    pub struct GainRow {
        /// Middlebox name.
        pub name: &'static str,
        /// CPS before Nezha.
        pub cps_before: f64,
        /// CPS after Nezha (VM-kernel or BE limited).
        pub cps_after: f64,
        /// CPS gain.
        pub cps_gain: f64,
        /// #vNIC gain.
        pub vnic_gain: f64,
        /// #concurrent-flows before.
        pub flows_before: f64,
        /// #concurrent-flows after.
        pub flows_after: f64,
        /// #concurrent-flows gain.
        pub flows_gain: f64,
    }

    /// Computes Table 3 for the given host/VM configuration.
    pub fn gains(host: &VSwitchConfig, vm: &VmConfig) -> Vec<GainRow> {
        let m = host.memory;
        classes()
            .iter()
            .map(|c| {
                // --- CPS ---
                // Before: the full slow path runs locally, per connection
                // two first-packets (one per direction) + fast-path rest.
                let vnic = nezha_vswitch::vnic::Vnic::new(
                    nezha_types::VnicId(0),
                    nezha_types::VpcId(0),
                    nezha_types::Ipv4Addr::new(10, 0, 0, 1),
                    c.profile,
                    nezha_types::ServerId(0),
                );
                let per_conn_before = vnic.crr_cycles(&host.costs, 64);
                let cps_before = host.capacity_hz() / per_conn_before as f64;
                // After: BE residual work per connection (7-packet script).
                let per_conn_be = host.costs.be_first_packet + 6 * host.costs.be_per_packet;
                let be_cap = host.capacity_hz() / per_conn_be as f64;
                let cps_after = be_cap.min(vm.kernel_cps_capacity());

                // --- #vNICs ---
                // Before: rule tables compete with the deployed session
                // table for the networking memory pool.
                let tables = vnic.table_memory(&m);
                let before_vnics =
                    (host.table_memory.saturating_sub(c.session_memory_before) / tables).max(1);
                let after_vnics = (host.table_memory / m.be_metadata).min(c.vnic_policy_cap);

                // --- #concurrent flows ---
                let per_entry_before = (m.flow_entry + m.state_slab) as f64;
                let flows_before = c.session_memory_before as f64 / per_entry_before;
                // After: every rule table lives remotely and entries are
                // state-only, so (nearly) the whole networking pool holds
                // 64 B states (§6.3.1: "roughly 30M flows").
                let session_budget_after = host.table_memory.saturating_sub(m.be_metadata) as f64;
                let flows_after = session_budget_after / m.state_slab as f64;

                GainRow {
                    name: c.name,
                    cps_before,
                    cps_after,
                    cps_gain: cps_after / cps_before,
                    vnic_gain: after_vnics as f64 / before_vnics as f64,
                    flows_before,
                    flows_after,
                    flows_gain: flows_after / flows_before,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> RegionConfig {
        RegionConfig {
            servers: 2_000,
            epoch: SimDuration::from_secs(6 * 3600),
            ..Default::default()
        }
    }

    #[test]
    fn utilization_cdf_matches_fig4_shape() {
        let mut region = Region::new(small_cfg());
        let mut report = region.run_days(2, false);
        let (mean, _, p90, p99, _, _) = report.cpu_utils.summary();
        // Fig. 4a envelope: avg ~5%, P90 ~15%, P99 ~41%.
        assert!((0.02..0.10).contains(&mean), "cpu mean {mean}");
        assert!((0.08..0.25).contains(&p90), "cpu p90 {p90}");
        assert!((0.25..0.60).contains(&p99), "cpu p99 {p99}");
        let mem_mean = report.mem_utils.mean();
        assert!((0.005..0.04).contains(&mem_mean), "mem mean {mem_mean}");
        // The extreme-imbalance headline: P9999 ≫ average.
        let p9999 = report.cpu_utils.percentile(99.99);
        assert!(p9999 / mean > 8.0, "imbalance ratio {}", p9999 / mean);
    }

    #[test]
    fn nezha_mitigates_overloads_by_orders_of_magnitude() {
        let cfg = RegionConfig {
            spike_prob: 0.05,
            ..small_cfg()
        };
        let mut r1 = Region::new(cfg);
        let before = r1.run_days(5, false);
        let mut r2 = Region::new(cfg);
        let after = r2.run_days(5, true);
        let (b_cps, b_flows, b_vnics) = before.totals();
        let (a_cps, a_flows, a_vnics) = after.totals();
        assert!(b_cps > 50, "need a meaningful baseline, got {b_cps}");
        assert!(b_flows > 10);
        assert!(b_vnics > 0);
        // Fig. 13: >99.9% of CPS/flows overloads resolved; #vNICs 100%.
        assert!(
            (a_cps + a_flows) * 50 < b_cps + b_flows,
            "mitigation too weak: {b_cps}+{b_flows} -> {a_cps}+{a_flows}"
        );
        assert_eq!(a_vnics, 0, "#vNIC overloads must vanish entirely");
    }

    #[test]
    fn hotspot_cause_shares_match_fig3() {
        let mut r = Region::new(RegionConfig {
            servers: 4_000,
            spike_prob: 0.05,
            ..small_cfg()
        });
        let before = r.run_days(10, false);
        let (c, f, v) = before.totals();
        let total = (c + f + v) as f64;
        assert!(total > 100.0);
        let cs = c as f64 / total;
        let fs = f as f64 / total;
        let vs = v as f64 / total;
        // Fig. 3: ≈61% / 30% / 9%.
        assert!((0.45..0.75).contains(&cs), "cps share {cs}");
        assert!((0.18..0.42).contains(&fs), "flows share {fs}");
        assert!((0.02..0.20).contains(&vs), "vnic share {vs}");
    }

    #[test]
    fn completion_times_match_table4_band() {
        let mut r = Region::new(small_cfg());
        let mut s = Samples::new();
        for _ in 0..5_000 {
            s.record_duration(r.sample_completion());
        }
        let (mean, _, p90, p99, _, _) = s.summary();
        // Table 4: avg ≈1.08 s, P90 ≈1.50 s, P99 ≈2.09 s. Shape check.
        assert!((0.6..1.6).contains(&mean), "mean {mean}");
        assert!(p90 > mean && p99 > p90);
        assert!((1.0..2.4).contains(&p90), "p90 {p90}");
        assert!((1.2..3.5).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn table3_gains_match_paper_shape() {
        let host = VSwitchConfig::middlebox_host();
        let vm = VmConfig {
            vcpus: 64,
            per_core_cps: 90_000.0,
            contention: 0.055,
            ..Default::default()
        };
        let rows = middlebox::gains(&host, &vm);
        let lb = &rows[0];
        let nat = &rows[1];
        let tr = &rows[2];
        // Table 3 ordering: NAT > LB > TR on CPS gain; all 2.5-5.5x.
        assert!(nat.cps_gain > lb.cps_gain && lb.cps_gain > tr.cps_gain);
        for r in &rows {
            assert!(
                (2.5..5.5).contains(&r.cps_gain),
                "{} cps gain {}",
                r.name,
                r.cps_gain
            );
            assert!(r.vnic_gain > 40.0, "{} vnic gain {}", r.name, r.vnic_gain);
        }
        // Flows: NAT ≫ TR ≫ LB (50.4 / 15.3 / 5.04).
        assert!(nat.flows_gain > tr.flows_gain && tr.flows_gain > lb.flows_gain);
        assert!(
            (3.0..8.0).contains(&lb.flows_gain),
            "lb flows {}",
            lb.flows_gain
        );
        assert!(
            (30.0..70.0).contains(&nat.flows_gain),
            "nat flows {}",
            nat.flows_gain
        );
        assert!(
            (10.0..25.0).contains(&tr.flows_gain),
            "tr flows {}",
            tr.flows_gain
        );
    }

    #[test]
    fn attached_registry_mirrors_the_report() {
        let reg = MetricsRegistry::new();
        let mut r = Region::new(RegionConfig {
            servers: 500,
            spike_prob: 0.05,
            ..small_cfg()
        });
        r.attach_metrics(&reg);
        let report = r.run_days(3, true);
        let snap = reg.snapshot();
        let (cps, flows, vnics) = report.totals();
        assert_eq!(snap.counter("region.overload.cps"), cps);
        assert_eq!(snap.counter("region.overload.flows"), flows);
        assert_eq!(snap.counter("region.overload.vnics"), vnics);
        assert_eq!(snap.counter("region.offload_events"), report.offload_events);
        assert_eq!(
            snap.counter("region.fes_provisioned"),
            report.total_fes_provisioned
        );
        assert_eq!(
            snap.counter("region.scale_out_events"),
            report.scale_out_events
        );
        let cpu = snap.histogram("region.cpu_util");
        assert_eq!(cpu.len(), report.cpu_utils.len());
        assert!((cpu.mean() - report.cpu_utils.mean()).abs() < 1e-12);
    }

    #[test]
    fn appendix_b2_scale_out_rate_is_small() {
        let mut r = Region::new(RegionConfig {
            servers: 5_000,
            spike_prob: 0.004,
            ..small_cfg()
        });
        let report = r.run_days(30, true);
        assert!(
            report.offload_events > 50,
            "events {}",
            report.offload_events
        );
        // Appendix B.2: ≈4 FEs per offload, ≤ a few % scale-outs.
        let per_offload = report.total_fes_provisioned as f64 / report.offload_events as f64;
        assert!(
            (4.0..4.5).contains(&per_offload),
            "FEs/offload {per_offload}"
        );
        let ratio = report.scale_out_events as f64 / report.offload_events as f64;
        assert!(ratio < 0.10, "scale-out ratio {ratio}");
    }
}

//! Analytic Table 3 computation: per-middlebox gains from the calibrated
//! capacity models.

use crate::vm::VmConfig;
use nezha_vswitch::config::VSwitchConfig;
use nezha_vswitch::vnic::VnicProfile;

/// Deployed session-table memory of each middlebox class *before*
/// Nezha, reflecting production configurations: LBs hold long-lived
/// connections to many real servers (large session tables); NAT and
/// TR mostly carry short-lived flows (§6.3.1).
#[derive(Clone, Copy, Debug)]
pub struct MiddleboxClass {
    /// Display name.
    pub name: &'static str,
    /// Table profile.
    pub profile: VnicProfile,
    /// Session-table memory budget before Nezha, bytes.
    pub session_memory_before: u64,
    /// Per-VM vNIC provisioning cap (blast-radius policy, §6.3.1).
    pub vnic_policy_cap: u64,
}

/// The three evaluated middleboxes.
pub fn classes() -> [MiddleboxClass; 3] {
    [
        MiddleboxClass {
            name: "Load-balancer",
            profile: VnicProfile::load_balancer(),
            session_memory_before: 1_000 << 20, // ≈1 GB
            vnic_policy_cap: 1_000,
        },
        MiddleboxClass {
            name: "NAT gateway",
            profile: VnicProfile::nat_gateway(),
            session_memory_before: 100 << 20, // ≈100 MB
            vnic_policy_cap: 1_000,
        },
        MiddleboxClass {
            name: "Transit router",
            profile: VnicProfile::transit_router(),
            session_memory_before: 330 << 20, // ≈330 MB
            vnic_policy_cap: 1_000,
        },
    ]
}

/// One Table 3 row.
#[derive(Clone, Copy, Debug)]
pub struct GainRow {
    /// Middlebox name.
    pub name: &'static str,
    /// CPS before Nezha.
    pub cps_before: f64,
    /// CPS after Nezha (VM-kernel or BE limited).
    pub cps_after: f64,
    /// CPS gain.
    pub cps_gain: f64,
    /// #vNIC gain.
    pub vnic_gain: f64,
    /// #concurrent-flows before.
    pub flows_before: f64,
    /// #concurrent-flows after.
    pub flows_after: f64,
    /// #concurrent-flows gain.
    pub flows_gain: f64,
}

/// Computes Table 3 for the given host/VM configuration.
pub fn gains(host: &VSwitchConfig, vm: &VmConfig) -> Vec<GainRow> {
    let m = host.memory;
    classes()
        .iter()
        .map(|c| {
            // --- CPS ---
            // Before: the full slow path runs locally, per connection
            // two first-packets (one per direction) + fast-path rest.
            let vnic = nezha_vswitch::vnic::Vnic::new(
                nezha_types::VnicId(0),
                nezha_types::VpcId(0),
                nezha_types::Ipv4Addr::new(10, 0, 0, 1),
                c.profile,
                nezha_types::ServerId(0),
            );
            let per_conn_before = vnic.crr_cycles(&host.costs, 64);
            let cps_before = host.capacity_hz() / per_conn_before as f64;
            // After: BE residual work per connection (7-packet script).
            let per_conn_be = host.costs.be_first_packet + 6 * host.costs.be_per_packet;
            let be_cap = host.capacity_hz() / per_conn_be as f64;
            let cps_after = be_cap.min(vm.kernel_cps_capacity());

            // --- #vNICs ---
            // Before: rule tables compete with the deployed session
            // table for the networking memory pool.
            let tables = vnic.table_memory(&m);
            let before_vnics =
                (host.table_memory.saturating_sub(c.session_memory_before) / tables).max(1);
            let after_vnics = (host.table_memory / m.be_metadata).min(c.vnic_policy_cap);

            // --- #concurrent flows ---
            let per_entry_before = (m.flow_entry + m.state_slab) as f64;
            let flows_before = c.session_memory_before as f64 / per_entry_before;
            // After: every rule table lives remotely and entries are
            // state-only, so (nearly) the whole networking pool holds
            // 64 B states (§6.3.1: "roughly 30M flows").
            let session_budget_after = host.table_memory.saturating_sub(m.be_metadata) as f64;
            let flows_after = session_budget_after / m.state_slab as f64;

            GainRow {
                name: c.name,
                cps_before,
                cps_after,
                cps_gain: cps_after / cps_before,
                vnic_gain: after_vnics as f64 / before_vnics as f64,
                flows_before,
                flows_after,
                flows_gain: flows_after / flows_before,
            }
        })
        .collect()
}

//! The lazily-materialized heavy-tailed tenant population.
//!
//! The paper's region hosts millions of vNICs across O(10K) servers, and
//! the multi-tenant pressure that makes SmartNIC sharing hard (SuperNIC,
//! Meili) comes from the *tail*: a few tenants orders of magnitude
//! hotter than the median. Materializing millions of tenant structs
//! would dominate memory for no benefit, so [`TenantModel`] stores only
//! the distribution parameters — O(1) state regardless of population
//! size — and derives every tenant on demand as a pure function of
//! `derive_seed_indexed(seed, "region.tenant", id)`.
//!
//! Purity is also what makes the population shard-count invariant: any
//! shard can re-derive exactly the tenants homed on its servers without
//! consuming shared RNG state, and a migrated tenant's demand can be
//! removed/added bit-exactly on both sides from the id alone.

use super::scenario::Scenario;
use super::RegionConfig;
use nezha_sim::rng::{derive_seed_indexed, SimRng};

/// O(1)-state generator for the tenant population.
#[derive(Clone, Copy, Debug)]
pub struct TenantModel {
    seed: u64,
    count: u64,
    alpha: f64,
    weight_lo: f64,
    weight_hi: f64,
    cpu_scale: f64,
    mem_scale: f64,
}

/// One derived tenant: its demand contribution plus the uniform draws
/// the scenario interprets into a lifecycle. ~100 bytes, alive only
/// while being inspected.
#[derive(Clone, Copy, Debug)]
pub struct Tenant {
    /// Tenant id in `[0, count)`.
    pub id: u64,
    /// CPU demand contributed to its server (fraction of capacity).
    pub cpu: f64,
    /// Memory demand contributed to its server (fraction of capacity).
    pub mem: f64,
    churn_u: f64,
    life_frac: f64,
    migrate_u: f64,
    migrate_to_u: f64,
}

/// What happens to a tenant during one scenario run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lifecycle {
    /// Present for the whole run.
    Resident,
    /// Present from the start, deprovisioned at the given epoch.
    DiesAt(u64),
    /// Provisioned at the given epoch.
    BornAt(u64),
    /// Live-migrates to the given server at the given epoch.
    MigratesAt(u64, u64),
}

impl TenantModel {
    /// Builds the generator from region config — O(1) time and memory
    /// for any population size.
    pub fn from_config(cfg: &RegionConfig) -> Self {
        TenantModel {
            seed: cfg.seed,
            count: cfg.tenants,
            alpha: cfg.tenant_alpha,
            weight_lo: cfg.tenant_weight.0,
            weight_hi: cfg.tenant_weight.1,
            cpu_scale: cfg.tenant_cpu_scale,
            mem_scale: cfg.tenant_mem_scale,
        }
    }

    /// Population size.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Derives tenant `id` — a pure function of `(seed, id)`; two calls
    /// always return bit-identical tenants.
    pub fn tenant(&self, id: u64) -> Tenant {
        let mut rng = SimRng::new(derive_seed_indexed(self.seed, "region.tenant", id));
        let cpu_w = rng.bounded_pareto(self.alpha, self.weight_lo, self.weight_hi);
        let mem_w = rng.bounded_pareto(self.alpha, self.weight_lo, self.weight_hi);
        Tenant {
            id,
            cpu: cpu_w * self.cpu_scale,
            mem: mem_w * self.mem_scale,
            churn_u: rng.f64(),
            life_frac: rng.f64(),
            migrate_u: rng.f64(),
            migrate_to_u: rng.f64(),
        }
    }
}

impl Tenant {
    /// The server this tenant is provisioned on at the start of the run.
    pub fn home(&self, servers: u64) -> u64 {
        self.id % servers
    }

    /// Interprets the tenant's uniform draws under `sc`: churners split
    /// evenly into mid-run deaths and mid-run births; of the rest,
    /// `migrate_frac` migrate once (never to their own server — that
    /// collapses to [`Lifecycle::Resident`]). Churn and migration are
    /// disjoint so a tenant's demand always has exactly one owner per
    /// epoch.
    pub fn lifecycle(&self, sc: &Scenario, total_epochs: u64, servers: u64) -> Lifecycle {
        if total_epochs == 0 || servers == 0 {
            return Lifecycle::Resident;
        }
        let epoch = ((self.life_frac * total_epochs as f64) as u64).min(total_epochs - 1);
        if self.churn_u < sc.churn_frac * 0.5 {
            return Lifecycle::DiesAt(epoch);
        }
        if self.churn_u < sc.churn_frac {
            return Lifecycle::BornAt(epoch);
        }
        if self.migrate_u < sc.migrate_frac {
            let to = ((self.migrate_to_u * servers as f64) as u64).min(servers - 1);
            if to != self.home(servers) {
                return Lifecycle::MigratesAt(epoch.max(1), to);
            }
        }
        Lifecycle::Resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(seed: u64, count: u64) -> TenantModel {
        let cfg = RegionConfig {
            seed,
            tenants: count,
            ..Default::default()
        };
        TenantModel::from_config(&cfg)
    }

    #[test]
    fn model_state_is_constant_size() {
        // Lazy materialization: the generator for 100M tenants is the
        // same few words as for 10 — no per-tenant storage anywhere.
        assert!(std::mem::size_of::<TenantModel>() <= 64);
        let huge = model(1, 100_000_000);
        assert_eq!(huge.count(), 100_000_000);
        // Deriving a far-out tenant is O(1), not O(id).
        let t = huge.tenant(99_999_999);
        assert!(t.cpu > 0.0);
    }

    #[test]
    fn population_is_seed_deterministic() {
        let a = model(7, 10_000);
        let b = model(7, 10_000);
        for id in (0..10_000).step_by(97) {
            let (ta, tb) = (a.tenant(id), b.tenant(id));
            assert_eq!(ta.cpu.to_bits(), tb.cpu.to_bits());
            assert_eq!(ta.mem.to_bits(), tb.mem.to_bits());
            assert_eq!(ta.churn_u.to_bits(), tb.churn_u.to_bits());
        }
        // A different seed produces a different population.
        let c = model(8, 10_000);
        let diff = (0..100).filter(|&i| a.tenant(i).cpu.to_bits() != c.tenant(i).cpu.to_bits());
        assert!(diff.count() > 90);
    }

    #[test]
    fn top_one_percent_holds_an_outsized_demand_share() {
        // Heavy tail (bounded Pareto, alpha ~1): the top 1% of tenants
        // must hold a grossly disproportionate share of total demand —
        // the Fig. 4 / Table 1 skew motif.
        let m = model(42, 200_000);
        let mut weights: Vec<f64> = (0..m.count()).map(|id| m.tenant(id).cpu).collect();
        weights.sort_by(f64::total_cmp);
        let total: f64 = weights.iter().sum();
        let top: f64 = weights[weights.len() - weights.len() / 100..].iter().sum();
        let share = top / total;
        assert!(
            (0.25..0.95).contains(&share),
            "top-1% share {share} outside heavy-tail band"
        );
        // And the single hottest tenant dwarfs the median.
        let median = weights[weights.len() / 2];
        let max = weights[weights.len() - 1];
        assert!(max / median > 100.0, "max/median {}", max / median);
    }

    #[test]
    fn lifecycles_partition_and_respect_rates() {
        let m = model(3, 50_000);
        let sc = Scenario {
            churn_frac: 0.10,
            migrate_frac: 0.05,
            ..Scenario::quiet(1)
        };
        let (mut dies, mut born, mut migrates, mut resident) = (0u64, 0u64, 0u64, 0u64);
        for id in 0..m.count() {
            let t = m.tenant(id);
            match t.lifecycle(&sc, 24, 1_000) {
                Lifecycle::DiesAt(e) => {
                    assert!(e < 24);
                    dies += 1;
                }
                Lifecycle::BornAt(e) => {
                    assert!(e < 24);
                    born += 1;
                }
                Lifecycle::MigratesAt(e, to) => {
                    assert!((1..24).contains(&e));
                    assert!(to < 1_000);
                    assert_ne!(to, t.home(1_000));
                    migrates += 1;
                }
                Lifecycle::Resident => resident += 1,
            }
        }
        let n = m.count() as f64;
        assert!((dies as f64 / n - 0.05).abs() < 0.01, "dies {dies}");
        assert!((born as f64 / n - 0.05).abs() < 0.01, "born {born}");
        assert!(
            (migrates as f64 / n - 0.045).abs() < 0.01,
            "migrates {migrates}"
        );
        assert_eq!(dies + born + migrates + resident, m.count());
        // A quiet scenario has no lifecycle events at all.
        let quiet = Scenario::quiet(1);
        assert!(
            (0..1000).all(|id| m.tenant(id).lifecycle(&quiet, 24, 1_000) == Lifecycle::Resident)
        );
    }

    #[test]
    fn homes_cover_servers_evenly() {
        let m = model(5, 10_000);
        let servers = 100u64;
        let mut counts = vec![0u64; servers as usize];
        for id in 0..m.count() {
            counts[m.tenant(id).home(servers) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "modular homing is exact");
    }
}

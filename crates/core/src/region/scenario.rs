//! Region scenarios: the shape of a simulated production day.
//!
//! A [`Scenario`] bundles everything about a region run that is *not* a
//! calibration constant: how long it runs, the diurnal traffic wave,
//! flash crowds, correlated fault waves, and tenant churn/migration
//! rates. [`Scenario::quiet`] reproduces the original steady-state
//! model (used by the Fig. 3/4/13 calibration experiments);
//! [`Scenario::production_day`] is the `region10k` shape — one diurnal
//! day with every stressor enabled.
//!
//! Everything here is a *pure function* of the scenario parameters and
//! the epoch index: the barrier draws the per-epoch randomness (whether
//! a flash crowd fires, where a fault wave lands) from its own global
//! stream, so these knobs never touch per-shard RNG state.

use serde::{Deserialize, Serialize};

/// The shape of one region run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// Simulated days to run.
    pub days: usize,
    /// Amplitude of the diurnal demand wave in `[0, 1)`: the per-epoch
    /// demand multiplier swings between `1 - a` (pre-dawn trough) and
    /// `1 + a` (mid-day peak). Zero disables the wave.
    pub diurnal_amplitude: f64,
    /// Per-epoch probability that a flash crowd hits a contiguous span
    /// of servers.
    pub flash_prob: f64,
    /// Number of consecutive servers a flash crowd hits.
    pub flash_span: u64,
    /// Demand surge a flash crowd adds to each hit server (fraction of
    /// capacity, on top of the baseline).
    pub flash_surge: f64,
    /// Per-epoch probability of a correlated fault wave (a contiguous
    /// span of servers crash-rebooting together, e.g. a bad rack PDU).
    pub fault_prob: f64,
    /// Number of consecutive servers a fault wave crashes.
    pub fault_span: u64,
    /// Epochs until a fault wave's servers restart.
    pub fault_epochs: u64,
    /// Fraction of tenants that churn during the run: half die partway
    /// through, half are born partway through.
    pub churn_frac: f64,
    /// Fraction of (non-churning) tenants that live-migrate to another
    /// server once during the run.
    pub migrate_frac: f64,
}

impl Scenario {
    /// The steady-state scenario: no waves, no churn, no faults — the
    /// original calibration model, run for `days`.
    pub fn quiet(days: usize) -> Self {
        Scenario {
            days,
            diurnal_amplitude: 0.0,
            flash_prob: 0.0,
            flash_span: 0,
            flash_surge: 0.0,
            fault_prob: 0.0,
            fault_span: 0,
            fault_epochs: 0,
            churn_frac: 0.0,
            migrate_frac: 0.0,
        }
    }

    /// One full production day with every stressor on: a strong diurnal
    /// wave, flash crowds, correlated fault waves, and tenant
    /// churn/migration. The `region10k` experiment runs this shape.
    pub fn production_day() -> Self {
        Scenario {
            days: 1,
            diurnal_amplitude: 0.6,
            flash_prob: 0.12,
            flash_span: 250,
            flash_surge: 0.55,
            fault_prob: 0.06,
            fault_span: 120,
            fault_epochs: 2,
            churn_frac: 0.04,
            migrate_frac: 0.02,
        }
    }

    /// The demand multiplier for `epoch`: a sine wave over the day with
    /// its trough at the start of the day and its peak mid-day. Exactly
    /// `1.0` when the amplitude is zero. Pure — no RNG.
    pub fn diurnal(&self, epoch: u64, epochs_per_day: u64) -> f64 {
        if self.diurnal_amplitude == 0.0 || epochs_per_day == 0 {
            return 1.0;
        }
        let frac = (epoch % epochs_per_day) as f64 / epochs_per_day as f64;
        let phase = 2.0 * std::f64::consts::PI * frac - 0.5 * std::f64::consts::PI;
        1.0 + self.diurnal_amplitude * phase.sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_scenario_is_flat() {
        let sc = Scenario::quiet(3);
        assert_eq!(sc.days, 3);
        for e in 0..24 {
            assert_eq!(sc.diurnal(e, 24), 1.0);
        }
    }

    #[test]
    fn diurnal_wave_peaks_midday_and_troughs_at_dawn() {
        let sc = Scenario {
            diurnal_amplitude: 0.5,
            ..Scenario::quiet(1)
        };
        let trough = sc.diurnal(0, 24);
        let peak = sc.diurnal(12, 24);
        assert!((trough - 0.5).abs() < 1e-9, "trough {trough}");
        assert!((peak - 1.5).abs() < 1e-9, "peak {peak}");
        // The wave repeats across days.
        assert_eq!(sc.diurnal(5, 24), sc.diurnal(29, 24));
    }

    #[test]
    fn production_day_enables_every_stressor() {
        let sc = Scenario::production_day();
        assert!(sc.diurnal_amplitude > 0.0);
        assert!(sc.flash_prob > 0.0 && sc.flash_span > 0);
        assert!(sc.fault_prob > 0.0 && sc.fault_span > 0 && sc.fault_epochs > 0);
        assert!(sc.churn_frac > 0.0 && sc.migrate_frac > 0.0);
    }
}

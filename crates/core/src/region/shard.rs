//! One region shard: a contiguous server partition with its own RNG
//! streams, bucket-ladder event queue, and fault state.
//!
//! The shard-count invariance contract, in full:
//!
//! * **Per-server streams.** Every random draw a server makes (baseline,
//!   wobble, spikes, offload races, scale-outs) comes from that server's
//!   own `derive_seed_indexed(seed, "region.server", id)` stream — a
//!   pure function of the global server id, so the draw sequence is
//!   identical no matter which shard executes it.
//! * **Canonical intra-epoch ordering.** Queue events due in an epoch
//!   are drained, sorted by `(server, tenant, kind)`, then applied —
//!   scheduling order (which *does* depend on partition layout) never
//!   reaches simulation state.
//! * **Ascending emission.** Per-epoch outputs (utilization samples,
//!   requests, migrations) are emitted in ascending server order, so the
//!   barrier's ascending-shard concatenation reproduces the global
//!   ascending-server order for any shard count — which is what makes
//!   floating-point accumulation (histogram sums are order-sensitive in
//!   the last ulp) byte-identical.
//! * **Shard-partitioned faults.** Fault waves arrive as
//!   [`FaultPlan`] sub-plans (split by server owner), replay through the
//!   shard's own [`FaultState`], and mirror into per-server crash flags.

use super::barrier::{EpochPlan, Migration, OffloadRequest, ShardInbox};
use super::generator::{Lifecycle, TenantModel};
use super::scenario::Scenario;
use super::{completion_from, RegionConfig, SpikeKind};
use nezha_sim::engine::Engine;
use nezha_sim::fault::{FaultKind, FaultPlan, FaultState};
use nezha_sim::obs::{LogHistogram, WindowValue};
use nezha_sim::rng::{derive_seed_indexed, SimRng};
use nezha_sim::shard::ShardSpec;
use nezha_sim::time::SimTime;
use nezha_types::ServerId;

/// A deferred intra-shard event on the shard's bucket-ladder queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum QueueEvent {
    /// A scripted crash (`crash: true`) or restart of one owned server.
    Fault { server: u64, crash: bool },
    /// A churning tenant deprovisions from its server.
    TenantDeath { server: u64, tenant: u64 },
    /// A churning tenant provisions onto its server.
    TenantBirth { server: u64, tenant: u64 },
    /// A tenant live-migrates away from its server.
    MigrateOut { server: u64, tenant: u64, to: u64 },
}

impl QueueEvent {
    /// Canonical application key: `(server, tenant, kind)`. Draining
    /// order is a function of partition layout; applying in key order
    /// makes epoch semantics layout-independent.
    fn key(&self) -> (u64, u64, u8) {
        match *self {
            QueueEvent::Fault { server, crash } => (server, 0, u8::from(!crash)),
            QueueEvent::TenantDeath { server, tenant } => (server, tenant, 2),
            QueueEvent::TenantBirth { server, tenant } => (server, tenant, 3),
            QueueEvent::MigrateOut { server, tenant, .. } => (server, tenant, 4),
        }
    }
}

/// Everything one shard reports from one epoch. Consumed by the barrier
/// in ascending shard order.
#[derive(Clone, Debug, Default)]
pub(crate) struct EpochOutput {
    /// `(cpu, mem)` utilization per owned server, ascending server order.
    pub utils: Vec<(f64, f64)>,
    /// Offload requests (server, completion secs), ascending server order.
    pub requests: Vec<OffloadRequest>,
    /// Outbound tenant migrations, ascending (server, tenant) order.
    pub migrations: Vec<Migration>,
    /// Overload counts by cause: `[cps, flows, vnics]`.
    pub overloads: [u64; 3],
    /// Tenants provisioned this epoch.
    pub births: u64,
    /// Tenants deprovisioned this epoch.
    pub deaths: u64,
    /// Servers crashed by fault waves this epoch.
    pub crashes: u64,
    /// Servers restarted this epoch.
    pub restarts: u64,
    /// Scale-out operations on offloaded pools this epoch.
    pub scale_outs: u64,
}

impl EpochOutput {
    /// Renders the epoch as shard-local window effects for the region's
    /// observability plane: counter deltas plus utilization histograms.
    ///
    /// Every value is merge-invariant — counters add, [`LogHistogram`]s
    /// merge bucket-wise — so folding the per-shard effect lists through
    /// `merge_effects` produces the same window record for any shard
    /// count (the shard-equivalence contract extends to the rollup
    /// stream).
    pub(crate) fn window_effects(&self) -> Vec<(String, WindowValue)> {
        let mut cpu = LogHistogram::new();
        let mut mem = LogHistogram::new();
        for &(c, m) in &self.utils {
            cpu.record(c);
            mem.record(m);
        }
        vec![
            (
                "region.overload.cps".into(),
                WindowValue::Count(self.overloads[0]),
            ),
            (
                "region.overload.flows".into(),
                WindowValue::Count(self.overloads[1]),
            ),
            (
                "region.overload.vnics".into(),
                WindowValue::Count(self.overloads[2]),
            ),
            (
                "region.offload_requests".into(),
                WindowValue::Count(self.requests.len() as u64),
            ),
            (
                "region.migrations_out".into(),
                WindowValue::Count(self.migrations.len() as u64),
            ),
            (
                "region.tenant_births".into(),
                WindowValue::Count(self.births),
            ),
            (
                "region.tenant_deaths".into(),
                WindowValue::Count(self.deaths),
            ),
            (
                "region.fault_crashes".into(),
                WindowValue::Count(self.crashes),
            ),
            (
                "region.fault_restarts".into(),
                WindowValue::Count(self.restarts),
            ),
            (
                "region.scale_out_events".into(),
                WindowValue::Count(self.scale_outs),
            ),
            ("region.util.cpu".into(), WindowValue::Hist(cpu)),
            ("region.util.mem".into(), WindowValue::Hist(mem)),
        ]
    }
}

/// Per-server state owned by exactly one shard.
#[derive(Debug)]
struct ShardServer {
    rng: SimRng,
    base_cpu: f64,
    base_mem: f64,
    tenant_cpu: f64,
    tenant_mem: f64,
    offloaded: bool,
    /// An offload request is in flight; blocks duplicates until the
    /// barrier answers with a grant or denial.
    requested: bool,
    crashed: bool,
}

/// One shard of the region: a contiguous server range plus its queue.
#[derive(Debug)]
pub(crate) struct RegionShard {
    id: u32,
    /// Global id of `servers[0]`.
    first: u64,
    servers: Vec<ShardServer>,
    queue: Engine<QueueEvent>,
    fault: FaultState,
    /// Drain buffer reused across epochs.
    drained: Vec<QueueEvent>,
}

impl RegionShard {
    /// Builds shard `id` of the partition, deriving every owned server's
    /// stream and heavy-tailed baseline from the global server id.
    pub fn new(id: u32, spec: &ShardSpec, cfg: &RegionConfig) -> Self {
        let range = spec.range(id);
        let first = range.start;
        let servers = range
            .map(|g| {
                let mut rng = SimRng::new(derive_seed_indexed(cfg.seed, "region.server", g));
                let base_cpu = (cfg.cpu_median * (cfg.cpu_sigma * rng.normal()).exp()).min(0.98);
                let heavy = rng.chance(cfg.mem_heavy_frac);
                let base_mem = if heavy {
                    0.3 + 0.66 * rng.f64()
                } else {
                    (cfg.mem_median * (cfg.mem_sigma * rng.normal()).exp()).min(0.96)
                };
                ShardServer {
                    rng,
                    base_cpu,
                    base_mem,
                    tenant_cpu: 0.0,
                    tenant_mem: 0.0,
                    offloaded: false,
                    requested: false,
                    crashed: false,
                }
            })
            .collect();
        RegionShard {
            id,
            first,
            servers,
            queue: Engine::with_bucket_width(cfg.epoch),
            fault: FaultState::new(SimRng::new(derive_seed_indexed(
                cfg.seed,
                "region.shard.fault",
                u64::from(id),
            ))),
            drained: Vec::new(),
        }
    }

    /// Shard id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Events still pending on the shard queue (tenant lifecycle +
    /// faults) — the resident footprint of the lazy tenant population.
    pub fn pending_events(&self) -> usize {
        self.queue.pending()
    }

    /// Resets run-scoped state and schedules the shard's tenant
    /// lifecycle events: for each owned server, its home tenants (ids
    /// congruent to the server modulo the server count) are derived
    /// lazily, their steady demand accumulated in ascending tenant
    /// order, and only churning/migrating tenants ever touch the queue.
    pub fn begin_run(
        &mut self,
        cfg: &RegionConfig,
        sc: &Scenario,
        model: &TenantModel,
        total_epochs: u64,
        epoch_ns: u64,
    ) {
        self.queue = Engine::with_bucket_width(cfg.epoch);
        self.fault = FaultState::new(SimRng::new(derive_seed_indexed(
            cfg.seed,
            "region.shard.fault",
            u64::from(self.id),
        )));
        let servers_total = cfg.servers as u64;
        for (local, srv) in self.servers.iter_mut().enumerate() {
            srv.tenant_cpu = 0.0;
            srv.tenant_mem = 0.0;
            srv.offloaded = false;
            srv.requested = false;
            srv.crashed = false;
            if servers_total == 0 {
                continue;
            }
            let g = self.first + local as u64;
            let mut t = g;
            while t < model.count() {
                let tenant = model.tenant(t);
                match tenant.lifecycle(sc, total_epochs, servers_total) {
                    Lifecycle::Resident => {
                        srv.tenant_cpu += tenant.cpu;
                        srv.tenant_mem += tenant.mem;
                    }
                    Lifecycle::DiesAt(e) => {
                        srv.tenant_cpu += tenant.cpu;
                        srv.tenant_mem += tenant.mem;
                        self.queue.schedule_at(
                            SimTime(e * epoch_ns),
                            QueueEvent::TenantDeath {
                                server: g,
                                tenant: t,
                            },
                        );
                    }
                    Lifecycle::BornAt(e) => {
                        self.queue.schedule_at(
                            SimTime(e * epoch_ns),
                            QueueEvent::TenantBirth {
                                server: g,
                                tenant: t,
                            },
                        );
                    }
                    Lifecycle::MigratesAt(e, to) => {
                        srv.tenant_cpu += tenant.cpu;
                        srv.tenant_mem += tenant.mem;
                        self.queue.schedule_at(
                            SimTime(e * epoch_ns),
                            QueueEvent::MigrateOut {
                                server: g,
                                tenant: t,
                                to,
                            },
                        );
                    }
                }
                t += servers_total;
            }
        }
    }

    /// Schedules a fault-wave sub-plan (produced by
    /// [`FaultPlan::split_by_server`]) onto the shard queue. Only
    /// crash/restart transitions are meaningful at the fluid level.
    pub fn apply_fault_plan(&mut self, plan: FaultPlan) {
        for ev in plan.into_events() {
            let queued = match ev.kind {
                FaultKind::Crash { server } => QueueEvent::Fault {
                    server: u64::from(server.raw()),
                    crash: true,
                },
                FaultKind::Restart { server } => QueueEvent::Fault {
                    server: u64::from(server.raw()),
                    crash: false,
                },
                _ => continue,
            };
            self.queue.schedule_at(ev.at, queued);
        }
    }

    /// Pre-run proactive offload scan (Nezha rollout): every owned
    /// server already above the threshold emits a request, in ascending
    /// server order.
    pub fn initial_requests(&mut self, cfg: &RegionConfig) -> Vec<OffloadRequest> {
        let mut reqs = Vec::new();
        for (local, srv) in self.servers.iter_mut().enumerate() {
            let demand = (srv.base_cpu + srv.tenant_cpu).max(srv.base_mem + srv.tenant_mem);
            if demand > cfg.offload_threshold && !srv.offloaded && !srv.requested {
                srv.requested = true;
                let c = completion_from(&mut srv.rng, cfg);
                reqs.push((self.first + local as u64, c.as_secs_f64()));
            }
        }
        reqs
    }

    /// Runs one epoch over the owned partition.
    #[allow(clippy::too_many_arguments)]
    pub fn run_epoch(
        &mut self,
        t_epoch: SimTime,
        plan: &EpochPlan,
        inbox: &ShardInbox,
        cfg: &RegionConfig,
        sc: &Scenario,
        model: &TenantModel,
        nezha: bool,
        epochs_per_day: u64,
    ) -> EpochOutput {
        let mut out = EpochOutput::default();

        // 1. Barrier responses from last epoch (disjoint server sets).
        for &g in &inbox.grants {
            let srv = &mut self.servers[(g - self.first) as usize];
            srv.offloaded = true;
            srv.requested = false;
        }
        for &g in &inbox.denials {
            self.servers[(g - self.first) as usize].requested = false;
        }
        // 2. Inbound migrations (already in canonical merged order).
        for &(_, to, cpu, mem) in &inbox.arrivals {
            let srv = &mut self.servers[(to - self.first) as usize];
            srv.tenant_cpu += cpu;
            srv.tenant_mem += mem;
        }

        // 3. Drain queue events due this epoch and apply in canonical
        // (server, tenant, kind) order — layout-independent.
        self.drained.clear();
        while let Some(s) = self.queue.pop_until(t_epoch) {
            self.drained.push(s.event);
        }
        self.drained.sort_unstable_by_key(QueueEvent::key);
        for ev in self.drained.drain(..) {
            match ev {
                QueueEvent::Fault { server, crash } => {
                    let sid = ServerId(server as u32);
                    let kind = if crash {
                        FaultKind::Crash { server: sid }
                    } else {
                        FaultKind::Restart { server: sid }
                    };
                    self.fault.apply(&kind);
                    let srv = &mut self.servers[(server - self.first) as usize];
                    srv.crashed = self.fault.is_crashed(sid);
                    if crash {
                        out.crashes += 1;
                    } else {
                        out.restarts += 1;
                    }
                }
                QueueEvent::TenantDeath { server, tenant } => {
                    let t = model.tenant(tenant);
                    let srv = &mut self.servers[(server - self.first) as usize];
                    srv.tenant_cpu -= t.cpu;
                    srv.tenant_mem -= t.mem;
                    out.deaths += 1;
                }
                QueueEvent::TenantBirth { server, tenant } => {
                    let t = model.tenant(tenant);
                    let srv = &mut self.servers[(server - self.first) as usize];
                    srv.tenant_cpu += t.cpu;
                    srv.tenant_mem += t.mem;
                    out.births += 1;
                }
                QueueEvent::MigrateOut { server, tenant, to } => {
                    let t = model.tenant(tenant);
                    let srv = &mut self.servers[(server - self.first) as usize];
                    srv.tenant_cpu -= t.cpu;
                    srv.tenant_mem -= t.mem;
                    out.migrations.push((tenant, to, t.cpu, t.mem));
                }
            }
        }

        // 4. Per-server epoch step, ascending server order.
        let scale_p = cfg.scale_out_daily_prob / epochs_per_day as f64;
        for local in 0..self.servers.len() {
            let g = self.first + local as u64;
            let srv = &mut self.servers[local];
            if srv.crashed {
                // The vSwitch is down: no demand served, no draws made
                // (the stream resumes exactly where it paused).
                out.utils.push((0.0, 0.0));
                continue;
            }
            // Small multiplicative wander around the baseline, scaled by
            // the diurnal wave.
            let wobble = (0.25 * srv.rng.normal()).exp();
            let base_cpu = srv.base_cpu + srv.tenant_cpu;
            let base_mem = srv.base_mem + srv.tenant_mem;
            let mut cpu = (base_cpu * wobble * plan.diurnal).min(0.99);
            let mut mem = base_mem.min(0.99);
            // Record the *post-Nezha residual* utilization: an offloaded
            // server sheds most of its hot vNIC's load.
            if srv.offloaded {
                cpu *= 0.15;
                mem *= 0.4;
            }
            out.utils.push((cpu, mem));

            // Threshold-triggered proactive offload request.
            if nezha && !srv.offloaded && !srv.requested && cpu.max(mem) > cfg.offload_threshold {
                srv.requested = true;
                let c = completion_from(&mut srv.rng, cfg);
                out.requests.push((g, c.as_secs_f64()));
            }

            // Random demand spikes; the diurnal wave modulates arrival
            // pressure.
            if srv.rng.chance(cfg.spike_prob * plan.diurnal) {
                let kind = spike_kind(&mut srv.rng, cfg);
                let mult =
                    srv.rng
                        .bounded_pareto(cfg.spike_alpha, cfg.spike_mult.0, cfg.spike_mult.1);
                // A surge adds demand on top of the baseline: a tenant's
                // traffic jumps by an absolute amount (a flash crowd does
                // not scale with how idle the switch was).
                let surge = 0.05 * mult;
                let demand = match kind {
                    SpikeKind::Cps => base_cpu + surge,
                    _ => base_mem + surge,
                };
                if demand > 1.0 {
                    if let Some(cause) = spike_outcome(srv, kind, nezha, cfg, &mut out.requests, g)
                    {
                        out.overloads[cause] += 1;
                    }
                }
            }

            // Flash crowd: a scenario-scripted surge on a contiguous
            // span, stressing the CPS slow path.
            if let Some((lo, hi)) = plan.flash {
                if (lo..hi).contains(&g) && base_cpu + sc.flash_surge > 1.0 {
                    if let Some(cause) =
                        spike_outcome(srv, SpikeKind::Cps, nezha, cfg, &mut out.requests, g)
                    {
                        out.overloads[cause] += 1;
                    }
                }
            }

            // Scale-out pressure on offloaded pools.
            if nezha && srv.offloaded && srv.rng.chance(scale_p) {
                out.scale_outs += 1;
            }
        }
        out
    }
}

/// Draws which capability a spike stresses (Fig. 3 shares).
fn spike_kind(rng: &mut SimRng, cfg: &RegionConfig) -> SpikeKind {
    let (a, b, c) = cfg.spike_weights;
    let x = rng.f64() * (a + b + c);
    if x < a {
        SpikeKind::Cps
    } else if x < a + b {
        SpikeKind::Flows
    } else {
        SpikeKind::Vnics
    }
}

/// Decides whether a capacity-exceeding spike overloads, mirroring the
/// packet-level controller: without Nezha every such spike overloads;
/// vNIC spikes are fully absorbed (§6.3.3); offloaded (or
/// activation-in-flight) servers absorb remotely; otherwise the offload
/// activation races the spike's rise time and a request is emitted.
/// Returns the overload cause index, if any.
fn spike_outcome(
    srv: &mut ShardServer,
    kind: SpikeKind,
    nezha: bool,
    cfg: &RegionConfig,
    requests: &mut Vec<OffloadRequest>,
    server: u64,
) -> Option<usize> {
    let cause = match kind {
        SpikeKind::Cps => 0,
        SpikeKind::Flows => 1,
        SpikeKind::Vnics => 2,
    };
    if !nezha {
        return Some(cause);
    }
    if kind == SpikeKind::Vnics {
        // vNIC rule tables are created directly on the FEs — Nezha fully
        // prevents these (§6.3.3).
        return None;
    }
    if srv.offloaded || srv.requested {
        // Remote pool absorbs it (possibly scaling).
        return None;
    }
    // Offload races the spike's rise: only spikes faster than the
    // activation window overload.
    let completion = completion_from(&mut srv.rng, cfg);
    let rise = srv
        .rng
        .lognormal_duration(cfg.spike_rise_median, cfg.spike_rise_sigma);
    srv.requested = true;
    requests.push((server, completion.as_secs_f64()));
    (rise < completion).then_some(cause)
}

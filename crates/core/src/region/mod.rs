//! The flow-level (fluid) region simulator for production-scale results,
//! executed as deterministic shards.
//!
//! The paper's production experiments span O(10K) servers and months
//! (Figs. 2–4, 13; Tables 1, 3, 4; Appendix B.2). Packet-level simulation
//! at that scale is pointless — those results are *statistical* — so this
//! module models each vSwitch's demand as a stochastic process with the
//! same resource accounting as the packet-level cluster:
//!
//! * per-server baseline demand is heavy-tailed (log-normal, clipped),
//!   calibrated to Fig. 4's utilization CDF ("shortage and waste": ~5%
//!   average CPU with a P9999 of ~90%);
//! * a lazily-materialized heavy-tailed tenant population
//!   ([`generator`]) layers per-tenant demand, churn, and live migration
//!   on top — millions of tenants in O(1) memory;
//! * demand **spikes** arrive randomly, with a heavy-tailed magnitude and
//!   a log-normal *rise time*; an overload occurs when demand exceeds
//!   capacity while the vNIC is not yet offloaded — under Nezha that
//!   requires the spike to outrun the ~1–3 s offload activation
//!   (Fig. 13's residual >99.9%-mitigated overloads);
//! * offload/scale events follow the controller thresholds of Fig. 8 and
//!   sample the same completion-time model as the packet-level
//!   controller (Table 4);
//! * [`middlebox`] computes Table 3's per-middlebox gains analytically
//!   from the calibrated capacity models.
//!
//! # Sharded execution
//!
//! The region runs as `cfg.shards` independent per-partition event loops
//! ([`shard`]): each shard owns a contiguous server range (and the
//! tenants homed there), its own `derive_seed_indexed` RNG streams, and
//! its own bucket-ladder queue of deferred lifecycle/fault events.
//! Cross-shard effects — offload grants against the region FE pool,
//! tenant migrations, flash crowds, fault waves — are exchanged only at
//! per-epoch [`barrier`] merges whose ordering is a pure function of
//! (epoch, shard id, sorted effect keys). The invariant, enforced by
//! `tests/shard_equivalence.rs`: **the same seed produces byte-identical
//! results for any shard count**.
//!
//! Every distributional parameter lives in [`RegionConfig`], documented
//! against the paper quantity it was calibrated to.

mod barrier;
pub mod generator;
pub mod middlebox;
pub mod scenario;
mod shard;

pub use generator::{Lifecycle, Tenant, TenantModel};
pub use scenario::Scenario;

use barrier::{Barrier, GrantOutcome, Migration, OffloadRequest, ShardInbox};
use nezha_sim::metrics::{CounterHandle, HistogramHandle, MetricsRegistry};
use nezha_sim::obs::{LogHistogram, SloRule, WindowRecord, WindowValue, WindowedRollup};
use nezha_sim::report::BenchReport;
use nezha_sim::rng::{derive_seed, SimRng};
use nezha_sim::shard::{merge_effects, ShardSpec};
use nezha_sim::stats::Samples;
use nezha_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use shard::RegionShard;

/// Which capability a demand spike stresses (Fig. 3's hotspot causes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SpikeKind {
    /// New connections per second (CPU on the slow path).
    Cps,
    /// Concurrent flows (memory on the fast path).
    Flows,
    /// vNIC provisioning (memory on the slow path).
    Vnics,
}

/// Region model parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RegionConfig {
    /// Number of servers (paper: O(10K)).
    pub servers: usize,
    /// Number of execution shards the server partition is split into.
    /// Results are byte-identical for any value ≥ 1 (the shard count is
    /// an execution detail, never a model parameter).
    pub shards: u32,
    /// RNG seed.
    pub seed: u64,
    /// Epoch length (demand re-sampling period).
    pub epoch: SimDuration,
    /// Tenant population size (lazily materialized — never allocated
    /// per-tenant). Zero disables the tenant layer, reproducing the
    /// pure baseline-demand model.
    pub tenants: u64,
    /// Bounded-Pareto tail index of per-tenant demand weight (~1 ⇒ the
    /// top 1% of tenants holds most of the demand).
    pub tenant_alpha: f64,
    /// Bounds of the per-tenant demand weight.
    pub tenant_weight: (f64, f64),
    /// CPU demand per unit of tenant weight (fraction of capacity).
    pub tenant_cpu_scale: f64,
    /// Memory demand per unit of tenant weight (fraction of capacity).
    pub tenant_mem_scale: f64,
    /// Region-wide FE pool capacity; offload grants beyond it are
    /// denied. `u64::MAX` models an effectively unconstrained pool.
    pub fe_pool_cap: u64,
    /// Median of the per-server baseline CPU demand (fraction of
    /// capacity). Calibrated with `cpu_sigma` to Fig. 4a: avg ≈ 5%,
    /// P90 ≈ 15%, P99 ≈ 41%, P999 ≈ 68%, P9999 ≈ 90%.
    pub cpu_median: f64,
    /// Log-normal sigma of the CPU baseline.
    pub cpu_sigma: f64,
    /// Median of the per-server baseline memory demand. Calibrated with
    /// `mem_sigma` to Fig. 4b: avg ≈ 1.5%, P999 ≈ 93%, P9999 ≈ 96%.
    pub mem_median: f64,
    /// Log-normal sigma of the memory baseline.
    pub mem_sigma: f64,
    /// Fraction of servers hosting memory-heavy middlebox-style vNICs
    /// (the fat tail of Fig. 4b).
    pub mem_heavy_frac: f64,
    /// Per-server, per-epoch probability of a demand spike.
    pub spike_prob: f64,
    /// Bounded-Pareto tail index of spike magnitude.
    pub spike_alpha: f64,
    /// Spike magnitude bounds (multiplier on baseline).
    pub spike_mult: (f64, f64),
    /// Median spike rise time; a spike faster than the offload
    /// activation still causes a (brief) overload under Nezha.
    pub spike_rise_median: SimDuration,
    /// Log-normal sigma of the rise time.
    pub spike_rise_sigma: f64,
    /// Relative frequency of CPS / flows / vNIC spikes. Calibrated to
    /// Fig. 3's observed hotspot shares (≈61% / 30% / 9%, Appendix A.1).
    pub spike_weights: (f64, f64, f64),
    /// Offload trigger threshold (Fig. 8: 70%).
    pub offload_threshold: f64,
    /// Median of one FE config push (same model as the packet cluster).
    pub push_median: SimDuration,
    /// Log-normal sigma of the push.
    pub push_sigma: f64,
    /// Gateway update delay.
    pub gateway_delay: SimDuration,
    /// vSwitch learning interval.
    pub learning_interval: SimDuration,
    /// Initial FE count (Appendix B.2: 4).
    pub initial_fes: usize,
    /// Per offloaded-vNIC, per-day probability that demand growth forces
    /// a scale-out (calibrated to Appendix B.2's ≈2.6% of pools).
    pub scale_out_daily_prob: f64,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            servers: 10_000,
            shards: 4,
            seed: 0x4e5a,
            epoch: SimDuration::from_secs(3600),
            tenants: 0,
            tenant_alpha: 1.05,
            tenant_weight: (1.0, 20_000.0),
            tenant_cpu_scale: 4.0e-5,
            tenant_mem_scale: 1.5e-5,
            fe_pool_cap: u64::MAX,
            cpu_median: 0.028,
            cpu_sigma: 1.15,
            mem_median: 0.008,
            mem_sigma: 1.05,
            mem_heavy_frac: 0.0035,
            spike_prob: 0.002,
            spike_alpha: 1.1,
            spike_mult: (1.5, 40.0),
            spike_rise_median: SimDuration::from_secs(60),
            spike_rise_sigma: 1.2,
            spike_weights: (0.61, 0.30, 0.09),
            offload_threshold: 0.70,
            push_median: SimDuration::from_millis(430),
            push_sigma: 0.50,
            gateway_delay: SimDuration::from_millis(100),
            learning_interval: SimDuration::from_millis(200),
            initial_fes: 4,
            scale_out_daily_prob: 0.0009,
        }
    }
}

/// Aggregated outputs of a region run.
#[derive(Debug, Default)]
pub struct RegionReport {
    /// Overload occurrences per day, by cause.
    pub daily_cps: Vec<u64>,
    /// Overloads from #concurrent flows per day.
    pub daily_flows: Vec<u64>,
    /// Overloads from #vNICs per day.
    pub daily_vnics: Vec<u64>,
    /// CPU utilization snapshots across servers and epochs (Fig. 4a).
    pub cpu_utils: Samples,
    /// Memory utilization snapshots (Fig. 4b).
    pub mem_utils: Samples,
    /// Offload events triggered.
    pub offload_events: u64,
    /// Offload requests denied by the FE pool cap.
    pub offload_denied: u64,
    /// Total FEs provisioned (Appendix B.2's 10 062-style count).
    pub total_fes_provisioned: u64,
    /// Scale-out operations.
    pub scale_out_events: u64,
    /// Offload completion times (Table 4), in seconds.
    pub completion_times: Samples,
    /// Tenants provisioned mid-run (churn).
    pub tenant_births: u64,
    /// Tenants deprovisioned mid-run (churn).
    pub tenant_deaths: u64,
    /// Tenant live migrations completed.
    pub migrations: u64,
    /// Flash crowds that fired.
    pub flash_crowds: u64,
    /// Servers crashed by correlated fault waves.
    pub fault_crashes: u64,
}

impl RegionReport {
    /// Total overloads by cause across the run.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.daily_cps.iter().sum(),
            self.daily_flows.iter().sum(),
            self.daily_vnics.iter().sum(),
        )
    }

    /// Renders the run as a [`BenchReport`] whose metrics section is a
    /// deterministic function of the simulation (safe to exact-diff in
    /// the bench gate regardless of shard count or host). The percentile
    /// sections are [`LogHistogram`]-sourced latency/utilization
    /// quantiles — also pure functions of the seed, since log-bucket
    /// counts are insertion-order independent.
    pub fn bench_report(&mut self, id: &str) -> BenchReport {
        let (cps, flows, vnics) = self.totals();
        let cpu_p99 = self.cpu_utils.percentile(99.0);
        let completion_mean = self.completion_times.mean();
        let completion_hist = LogHistogram::from_samples(&self.completion_times);
        let cpu_hist = LogHistogram::from_samples(&self.cpu_utils);
        BenchReport::new(id)
            .percentiles("offload_completion_secs", &completion_hist)
            .percentiles("cpu_util", &cpu_hist)
            .metric("overloads_cps", cps as f64, "count")
            .metric("overloads_flows", flows as f64, "count")
            .metric("overloads_vnics", vnics as f64, "count")
            .metric("offload_events", self.offload_events as f64, "count")
            .metric("offload_denied", self.offload_denied as f64, "count")
            .metric(
                "fes_provisioned",
                self.total_fes_provisioned as f64,
                "count",
            )
            .metric("scale_out_events", self.scale_out_events as f64, "count")
            .metric("tenant_births", self.tenant_births as f64, "count")
            .metric("tenant_deaths", self.tenant_deaths as f64, "count")
            .metric("migrations", self.migrations as f64, "count")
            .metric("flash_crowds", self.flash_crowds as f64, "count")
            .metric("fault_crashes", self.fault_crashes as f64, "count")
            .metric("cpu_util_mean", self.cpu_utils.mean(), "fraction")
            .metric("cpu_util_p99", cpu_p99, "fraction")
            .metric("mem_util_mean", self.mem_utils.mean(), "fraction")
            .metric("completion_mean", completion_mean, "seconds")
    }
}

/// Pre-registered handles mirroring [`RegionReport`] into an attached
/// [`MetricsRegistry`] (all under the `region.` prefix).
#[derive(Clone, Debug)]
struct RegionTelemetry {
    registry: MetricsRegistry,
    overload_cps: CounterHandle,
    overload_flows: CounterHandle,
    overload_vnics: CounterHandle,
    offload_events: CounterHandle,
    offload_denied: CounterHandle,
    scale_out_events: CounterHandle,
    fes_provisioned: CounterHandle,
    tenant_births: CounterHandle,
    tenant_deaths: CounterHandle,
    migrations: CounterHandle,
    flash_crowds: CounterHandle,
    fault_crashes: CounterHandle,
    cpu_util: HistogramHandle,
    mem_util: HistogramHandle,
    completion_secs: HistogramHandle,
}

impl RegionTelemetry {
    fn register(registry: &MetricsRegistry) -> Self {
        RegionTelemetry {
            registry: registry.clone(),
            overload_cps: registry.counter("region.overload.cps", &[]),
            overload_flows: registry.counter("region.overload.flows", &[]),
            overload_vnics: registry.counter("region.overload.vnics", &[]),
            offload_events: registry.counter("region.offload_events", &[]),
            offload_denied: registry.counter("region.offload_denied", &[]),
            scale_out_events: registry.counter("region.scale_out_events", &[]),
            fes_provisioned: registry.counter("region.fes_provisioned", &[]),
            tenant_births: registry.counter("region.tenant_births", &[]),
            tenant_deaths: registry.counter("region.tenant_deaths", &[]),
            migrations: registry.counter("region.migrations", &[]),
            flash_crowds: registry.counter("region.flash_crowds", &[]),
            fault_crashes: registry.counter("region.fault_crashes", &[]),
            cpu_util: registry.histogram("region.cpu_util", &[]),
            mem_util: registry.histogram("region.mem_util", &[]),
            completion_secs: registry.histogram("region.offload_completion_secs", &[]),
        }
    }
}

/// Folds one barrier grant outcome into the current window's scratch:
/// grant/denial counts plus the completion-time histogram.
fn note_grant_window(
    outcome: &GrantOutcome,
    granted: &mut u64,
    denied: &mut u64,
    completions: &mut LogHistogram,
) {
    *granted += outcome.granted.len() as u64;
    *denied += outcome.denied.len() as u64;
    for &(_, secs) in &outcome.granted {
        completions.record(secs);
    }
}

/// Samples one offload activation completion time from `rng`: the
/// slowest of the initial FE config pushes, plus the gateway update,
/// plus the learning interval — identical in form to the packet-level
/// controller, hence Table 4's distribution.
pub(crate) fn completion_from(rng: &mut SimRng, cfg: &RegionConfig) -> SimDuration {
    let mut worst = SimDuration::ZERO;
    for _ in 0..cfg.initial_fes {
        let d = rng.lognormal_duration(cfg.push_median, cfg.push_sigma);
        if d > worst {
            worst = d;
        }
    }
    worst + cfg.gateway_delay + cfg.learning_interval
}

/// The fluid region simulator, executed as deterministic shards.
#[derive(Debug)]
pub struct Region {
    cfg: RegionConfig,
    spec: ShardSpec,
    shards: Vec<RegionShard>,
    /// Standalone stream for [`Region::sample_completion`] — never used
    /// by the sharded run itself (servers sample completions from their
    /// own streams).
    completion_rng: SimRng,
    tel: Option<RegionTelemetry>,
    /// Per-epoch windowed rollup + SLO watchdog; `None` until
    /// [`Region::enable_windows`]. Window `i` is epoch `i`, built by
    /// merging shard-local effects at the barrier — the JSONL stream and
    /// SLO event log are byte-identical for any shard count.
    windows: Option<WindowedRollup>,
}

impl Region {
    /// Builds a region: the server partition is split into `cfg.shards`
    /// contiguous shards and every server draws its heavy-tailed
    /// baseline from its own global-id-derived stream.
    pub fn new(cfg: RegionConfig) -> Self {
        let spec = ShardSpec::new(cfg.shards.max(1), cfg.servers as u64);
        let shards = (0..spec.shards())
            .map(|i| RegionShard::new(i, &spec, &cfg))
            .collect();
        Region {
            cfg,
            spec,
            shards,
            completion_rng: SimRng::new(derive_seed(cfg.seed, "region.completion")),
            tel: None,
            windows: None,
        }
    }

    /// Turns on the per-epoch observability plane: each epoch closes as
    /// one window (counter deltas, utilization and completion-time
    /// histograms), retained in a ring of `retain` records, with `rules`
    /// evaluated at every close. Shard-local effects are merged at the
    /// barrier in canonical order, so the window stream is part of the
    /// shard-count-invariance contract.
    pub fn enable_windows(&mut self, retain: usize, rules: Vec<SloRule>) {
        self.windows = Some(WindowedRollup::new(retain, rules));
    }

    /// The windowed rollup; `None` until [`Region::enable_windows`].
    /// A new run ([`Region::run_scenario`]) continues appending windows.
    pub fn windows(&self) -> Option<&WindowedRollup> {
        self.windows.as_ref()
    }

    /// Attaches a [`MetricsRegistry`]: subsequent runs mirror the
    /// [`RegionReport`] quantities into `region.*` counters and
    /// histograms there. Optional — an unattached region pays no
    /// telemetry cost.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.tel = Some(RegionTelemetry::register(registry));
    }

    /// Samples one offload activation completion time (Table 4) from the
    /// region's standalone completion stream.
    pub fn sample_completion(&mut self) -> SimDuration {
        completion_from(&mut self.completion_rng, &self.cfg)
    }

    /// Deferred events currently pending across all shard queues. The
    /// lazy-materialization bound: this scales with *churning* tenants
    /// (plus scripted faults), never with the population size.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(RegionShard::pending_events).sum()
    }

    /// Runs the steady-state scenario for `days`, with or without Nezha
    /// — the original calibration model (no waves, churn, or faults).
    pub fn run_days(&mut self, days: usize, nezha: bool) -> RegionReport {
        self.run_scenario(&Scenario::quiet(days), nezha)
    }

    /// Runs one scenario to completion, producing the per-day overload
    /// counts and utilization snapshots. Byte-identical for any
    /// `cfg.shards` value: all cross-shard effects flow through the
    /// per-epoch barrier, whose merge order is partition-independent.
    pub fn run_scenario(&mut self, sc: &Scenario, nezha: bool) -> RegionReport {
        let cfg = self.cfg;
        let epoch_ns = cfg.epoch.nanos();
        let epochs_per_day = ((24 * 3600) as f64 / cfg.epoch.as_secs_f64())
            .round()
            .max(1.0) as u64;
        let total_epochs = sc.days as u64 * epochs_per_day;
        let model = TenantModel::from_config(&cfg);
        let servers = cfg.servers as u64;
        let mut report = RegionReport::default();
        let mut barrier = Barrier::new(&cfg);
        let mut inboxes: Vec<ShardInbox> = vec![ShardInbox::default(); self.shards.len()];

        for sh in &mut self.shards {
            sh.begin_run(&cfg, sc, &model, total_epochs, epoch_ns);
        }

        // Barrier-level window scratch, reset every epoch. The pre-run
        // proactive grants below land in epoch 0's inboxes, so they are
        // accounted to window 0.
        let windows_on = self.windows.is_some();
        let (mut win_granted, mut win_denied) = (0u64, 0u64);
        let mut win_completions = LogHistogram::new();

        // Nezha proactively offloads every server already above the
        // threshold at rollout; grants land in epoch 0's inboxes.
        if nezha {
            let per_shard: Vec<(u32, Vec<OffloadRequest>)> = self
                .shards
                .iter_mut()
                .map(|sh| (sh.id(), sh.initial_requests(&cfg)))
                .collect();
            let outcome = barrier.resolve_requests(per_shard, cfg.initial_fes as u64);
            self.record_grants(&outcome, &mut report, &mut inboxes);
            if windows_on {
                note_grant_window(
                    &outcome,
                    &mut win_granted,
                    &mut win_denied,
                    &mut win_completions,
                );
            }
        }

        let (mut day_cps, mut day_flows, mut day_vnics) = (0u64, 0u64, 0u64);
        for epoch in 0..total_epochs {
            let t_epoch = SimTime(epoch * epoch_ns);
            let mut plan =
                barrier.plan_epoch(epoch, t_epoch, sc, servers, epochs_per_day, epoch_ns);
            if plan.flash.is_some() {
                report.flash_crowds += 1;
                if let Some(tel) = &self.tel {
                    tel.registry.inc(tel.flash_crowds);
                }
            }
            if let Some(wave) = plan.wave.take() {
                let spec = self.spec;
                let subs =
                    wave.split_by_server(spec.shards(), |sid| spec.owner(u64::from(sid.raw())));
                for (sh, sub) in self.shards.iter_mut().zip(subs) {
                    sh.apply_fault_plan(sub);
                }
            }

            // Run every shard, folding outputs in ascending shard order
            // (float accumulation order must be partition-independent).
            let mut requests: Vec<(u32, Vec<OffloadRequest>)> =
                Vec::with_capacity(self.shards.len());
            let mut migrations: Vec<(u32, Vec<Migration>)> = Vec::with_capacity(self.shards.len());
            let mut win_effects: Vec<(u32, Vec<(String, WindowValue)>)> = Vec::new();
            for sh in &mut self.shards {
                let inbox = std::mem::take(&mut inboxes[sh.id() as usize]);
                let mut out = sh.run_epoch(
                    t_epoch,
                    &plan,
                    &inbox,
                    &cfg,
                    sc,
                    &model,
                    nezha,
                    epochs_per_day,
                );
                for &(cpu, mem) in &out.utils {
                    report.cpu_utils.record(cpu);
                    report.mem_utils.record(mem);
                    if let Some(tel) = &self.tel {
                        tel.registry.observe(tel.cpu_util, cpu);
                        tel.registry.observe(tel.mem_util, mem);
                    }
                }
                day_cps += out.overloads[0];
                day_flows += out.overloads[1];
                day_vnics += out.overloads[2];
                report.tenant_births += out.births;
                report.tenant_deaths += out.deaths;
                report.fault_crashes += out.crashes;
                report.scale_out_events += out.scale_outs;
                report.total_fes_provisioned += out.scale_outs;
                barrier.charge_scale_outs(out.scale_outs);
                if let Some(tel) = &self.tel {
                    tel.registry.add(tel.overload_cps, out.overloads[0]);
                    tel.registry.add(tel.overload_flows, out.overloads[1]);
                    tel.registry.add(tel.overload_vnics, out.overloads[2]);
                    tel.registry.add(tel.tenant_births, out.births);
                    tel.registry.add(tel.tenant_deaths, out.deaths);
                    tel.registry.add(tel.fault_crashes, out.crashes);
                    tel.registry.add(tel.scale_out_events, out.scale_outs);
                    tel.registry.add(tel.fes_provisioned, out.scale_outs);
                }
                if windows_on {
                    win_effects.push((sh.id(), out.window_effects()));
                }
                requests.push((sh.id(), std::mem::take(&mut out.requests)));
                migrations.push((sh.id(), std::mem::take(&mut out.migrations)));
            }

            // Barrier: resolve this epoch's offload requests in global
            // server order against the FE pool; route migrations to the
            // owners of their destination servers. Both apply next epoch.
            let outcome = barrier.resolve_requests(requests, cfg.initial_fes as u64);
            self.record_grants(&outcome, &mut report, &mut inboxes);
            if windows_on {
                note_grant_window(
                    &outcome,
                    &mut win_granted,
                    &mut win_denied,
                    &mut win_completions,
                );
            }
            let mut win_migrations = 0u64;
            for m in Barrier::merge_migrations(migrations) {
                report.migrations += 1;
                win_migrations += 1;
                if let Some(tel) = &self.tel {
                    tel.registry.inc(tel.migrations);
                }
                inboxes[self.spec.owner(m.1) as usize].arrivals.push(m);
            }

            // Window close: fold the shard-local effects in canonical
            // (shard, key) order, then overlay the barrier-level values
            // (which are already global and partition-independent).
            if let Some(windows) = &mut self.windows {
                let mut rec = WindowRecord::from_effects(
                    epoch,
                    t_epoch,
                    SimTime((epoch + 1) * epoch_ns),
                    merge_effects(std::mem::take(&mut win_effects)),
                );
                rec.set_counter("region.offload_granted", win_granted);
                rec.set_counter("region.offload_denied", win_denied);
                rec.set_counter("region.migrations", win_migrations);
                rec.set_counter("region.flash_crowds", u64::from(plan.flash.is_some()));
                if !win_completions.is_empty() {
                    rec.set_hist("region.offload_completion_secs", win_completions.summary());
                }
                windows.push(rec);
                (win_granted, win_denied) = (0, 0);
                win_completions = LogHistogram::new();
            }

            if (epoch + 1) % epochs_per_day == 0 {
                report.daily_cps.push(day_cps);
                report.daily_flows.push(day_flows);
                report.daily_vnics.push(day_vnics);
                (day_cps, day_flows, day_vnics) = (0, 0, 0);
            }
        }
        report
    }

    /// Records a barrier grant outcome into the report/telemetry and
    /// routes each decision to its server's owning shard inbox.
    fn record_grants(
        &self,
        outcome: &GrantOutcome,
        report: &mut RegionReport,
        inboxes: &mut [ShardInbox],
    ) {
        for &(server, secs) in &outcome.granted {
            report.offload_events += 1;
            report.total_fes_provisioned += self.cfg.initial_fes as u64;
            report.completion_times.record(secs);
            if let Some(tel) = &self.tel {
                tel.registry.inc(tel.offload_events);
                tel.registry
                    .add(tel.fes_provisioned, self.cfg.initial_fes as u64);
                tel.registry.observe(tel.completion_secs, secs);
            }
            inboxes[self.spec.owner(server) as usize]
                .grants
                .push(server);
        }
        for &server in &outcome.denied {
            report.offload_denied += 1;
            if let Some(tel) = &self.tel {
                tel.registry.inc(tel.offload_denied);
            }
            inboxes[self.spec.owner(server) as usize]
                .denials
                .push(server);
        }
    }
}

#[cfg(test)]
impl Region {
    /// Test hook: schedules a scenario's lifecycle events without
    /// running any epochs, so tests can inspect the queue footprint.
    fn prime_for_test(&mut self, sc: &Scenario) {
        let cfg = self.cfg;
        let epoch_ns = cfg.epoch.nanos();
        let epochs_per_day = ((24 * 3600) as f64 / cfg.epoch.as_secs_f64())
            .round()
            .max(1.0) as u64;
        let total_epochs = sc.days as u64 * epochs_per_day;
        let model = TenantModel::from_config(&cfg);
        for sh in &mut self.shards {
            sh.begin_run(&cfg, sc, &model, total_epochs, epoch_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmConfig;
    use nezha_vswitch::config::VSwitchConfig;

    fn small_cfg() -> RegionConfig {
        RegionConfig {
            servers: 2_000,
            epoch: SimDuration::from_secs(6 * 3600),
            ..Default::default()
        }
    }

    #[test]
    fn utilization_cdf_matches_fig4_shape() {
        let mut region = Region::new(small_cfg());
        let mut report = region.run_days(2, false);
        let (mean, _, p90, p99, _, _) = report.cpu_utils.summary();
        // Fig. 4a envelope: avg ~5%, P90 ~15%, P99 ~41%.
        assert!((0.02..0.10).contains(&mean), "cpu mean {mean}");
        assert!((0.08..0.25).contains(&p90), "cpu p90 {p90}");
        assert!((0.25..0.60).contains(&p99), "cpu p99 {p99}");
        let mem_mean = report.mem_utils.mean();
        assert!((0.005..0.04).contains(&mem_mean), "mem mean {mem_mean}");
        // The extreme-imbalance headline: P9999 ≫ average.
        let p9999 = report.cpu_utils.percentile(99.99);
        assert!(p9999 / mean > 8.0, "imbalance ratio {}", p9999 / mean);
    }

    #[test]
    fn nezha_mitigates_overloads_by_orders_of_magnitude() {
        let cfg = RegionConfig {
            spike_prob: 0.05,
            ..small_cfg()
        };
        let mut r1 = Region::new(cfg);
        let before = r1.run_days(8, false);
        let mut r2 = Region::new(cfg);
        let after = r2.run_days(8, true);
        let (b_cps, b_flows, b_vnics) = before.totals();
        let (a_cps, a_flows, a_vnics) = after.totals();
        assert!(b_cps > 50, "need a meaningful baseline, got {b_cps}");
        assert!(b_flows > 10);
        assert!(b_vnics > 0);
        // Fig. 13: >99.9% of CPS/flows overloads resolved; #vNICs 100%.
        assert!(
            (a_cps + a_flows) * 50 < b_cps + b_flows,
            "mitigation too weak: {b_cps}+{b_flows} -> {a_cps}+{a_flows}"
        );
        assert_eq!(a_vnics, 0, "#vNIC overloads must vanish entirely");
    }

    #[test]
    fn hotspot_cause_shares_match_fig3() {
        let mut r = Region::new(RegionConfig {
            servers: 4_000,
            spike_prob: 0.05,
            ..small_cfg()
        });
        let before = r.run_days(10, false);
        let (c, f, v) = before.totals();
        let total = (c + f + v) as f64;
        assert!(total > 100.0);
        let cs = c as f64 / total;
        let fs = f as f64 / total;
        let vs = v as f64 / total;
        // Fig. 3: ≈61% / 30% / 9%.
        assert!((0.45..0.75).contains(&cs), "cps share {cs}");
        assert!((0.18..0.42).contains(&fs), "flows share {fs}");
        assert!((0.02..0.20).contains(&vs), "vnic share {vs}");
    }

    #[test]
    fn completion_times_match_table4_band() {
        let mut r = Region::new(small_cfg());
        let mut s = Samples::new();
        for _ in 0..5_000 {
            s.record_duration(r.sample_completion());
        }
        let (mean, _, p90, p99, _, _) = s.summary();
        // Table 4: avg ≈1.08 s, P90 ≈1.50 s, P99 ≈2.09 s. Shape check.
        assert!((0.6..1.6).contains(&mean), "mean {mean}");
        assert!(p90 > mean && p99 > p90);
        assert!((1.0..2.4).contains(&p90), "p90 {p90}");
        assert!((1.2..3.5).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn table3_gains_match_paper_shape() {
        let host = VSwitchConfig::middlebox_host();
        let vm = VmConfig {
            vcpus: 64,
            per_core_cps: 90_000.0,
            contention: 0.055,
            ..Default::default()
        };
        let rows = middlebox::gains(&host, &vm);
        let lb = &rows[0];
        let nat = &rows[1];
        let tr = &rows[2];
        // Table 3 ordering: NAT > LB > TR on CPS gain; all 2.5-5.5x.
        assert!(nat.cps_gain > lb.cps_gain && lb.cps_gain > tr.cps_gain);
        for r in &rows {
            assert!(
                (2.5..5.5).contains(&r.cps_gain),
                "{} cps gain {}",
                r.name,
                r.cps_gain
            );
            assert!(r.vnic_gain > 40.0, "{} vnic gain {}", r.name, r.vnic_gain);
        }
        // Flows: NAT ≫ TR ≫ LB (50.4 / 15.3 / 5.04).
        assert!(nat.flows_gain > tr.flows_gain && tr.flows_gain > lb.flows_gain);
        assert!(
            (3.0..8.0).contains(&lb.flows_gain),
            "lb flows {}",
            lb.flows_gain
        );
        assert!(
            (30.0..70.0).contains(&nat.flows_gain),
            "nat flows {}",
            nat.flows_gain
        );
        assert!(
            (10.0..25.0).contains(&tr.flows_gain),
            "tr flows {}",
            tr.flows_gain
        );
    }

    #[test]
    fn attached_registry_mirrors_the_report() {
        let reg = MetricsRegistry::new();
        let mut r = Region::new(RegionConfig {
            servers: 500,
            spike_prob: 0.05,
            ..small_cfg()
        });
        r.attach_metrics(&reg);
        let report = r.run_days(3, true);
        let snap = reg.snapshot();
        let (cps, flows, vnics) = report.totals();
        assert_eq!(snap.counter("region.overload.cps"), cps);
        assert_eq!(snap.counter("region.overload.flows"), flows);
        assert_eq!(snap.counter("region.overload.vnics"), vnics);
        assert_eq!(snap.counter("region.offload_events"), report.offload_events);
        assert_eq!(
            snap.counter("region.fes_provisioned"),
            report.total_fes_provisioned
        );
        assert_eq!(
            snap.counter("region.scale_out_events"),
            report.scale_out_events
        );
        let cpu = snap.histogram("region.cpu_util");
        assert_eq!(cpu.len(), report.cpu_utils.len());
        assert!((cpu.mean() - report.cpu_utils.mean()).abs() < 1e-12);
    }

    #[test]
    fn appendix_b2_scale_out_rate_is_small() {
        let mut r = Region::new(RegionConfig {
            servers: 5_000,
            spike_prob: 0.004,
            ..small_cfg()
        });
        let report = r.run_days(30, true);
        assert!(
            report.offload_events > 50,
            "events {}",
            report.offload_events
        );
        // Appendix B.2: ≈4 FEs per offload, ≤ a few % scale-outs.
        let per_offload = report.total_fes_provisioned as f64 / report.offload_events as f64;
        assert!(
            (4.0..4.5).contains(&per_offload),
            "FEs/offload {per_offload}"
        );
        let ratio = report.scale_out_events as f64 / report.offload_events as f64;
        assert!(ratio < 0.10, "scale-out ratio {ratio}");
    }

    fn stress_cfg() -> RegionConfig {
        RegionConfig {
            servers: 1_200,
            tenants: 60_000,
            spike_prob: 0.01,
            epoch: SimDuration::from_secs(3600),
            ..Default::default()
        }
    }

    /// Collapses a report into a bitwise-comparable signature.
    fn signature(report: &mut RegionReport) -> Vec<u64> {
        let (c, f, v) = report.totals();
        vec![
            c,
            f,
            v,
            report.cpu_utils.len() as u64,
            report.cpu_utils.mean().to_bits(),
            report.cpu_utils.percentile(99.0).to_bits(),
            report.mem_utils.mean().to_bits(),
            report.offload_events,
            report.offload_denied,
            report.total_fes_provisioned,
            report.scale_out_events,
            report.completion_times.mean().to_bits(),
            report.tenant_births,
            report.tenant_deaths,
            report.migrations,
            report.flash_crowds,
            report.fault_crashes,
        ]
    }

    #[test]
    fn shard_count_is_unobservable() {
        // The tentpole invariant, smoke-sized (the exhaustive matrix
        // lives in tests/shard_equivalence.rs): every output bit is
        // independent of how the partition is executed.
        let sc = Scenario::production_day();
        let mut base = None;
        for shards in [1u32, 3, 8] {
            let mut r = Region::new(RegionConfig {
                shards,
                ..stress_cfg()
            });
            let mut report = r.run_scenario(&sc, true);
            let sig = signature(&mut report);
            match &base {
                None => base = Some(sig),
                Some(b) => assert_eq!(b, &sig, "shards={shards} diverged"),
            }
        }
    }

    /// The SLO rule set the region experiments ship with (also used by
    /// `experiments watch --config=region`).
    fn region_rules() -> Vec<SloRule> {
        vec![
            SloRule::p99_above("cpu_p99_hot", "region.util.cpu", 0.60),
            SloRule::counter_above("flash_crowd", "region.flash_crowds", 0),
            SloRule::fairness_below("overload_skew", "region.overload.", 0.35),
        ]
    }

    #[test]
    fn window_stream_is_shard_count_invariant() {
        let sc = Scenario::production_day();
        let mut base: Option<(String, String)> = None;
        for shards in [1u32, 4] {
            let mut r = Region::new(RegionConfig {
                shards,
                ..stress_cfg()
            });
            r.enable_windows(8, region_rules());
            let _ = r.run_scenario(&sc, true);
            let w = r.windows().unwrap();
            // One window per epoch: 24 for a 1-hour-epoch production day;
            // the ring retains only the last 8 but the stream keeps all.
            assert_eq!(w.closed(), 24);
            assert_eq!(w.windows().count(), 8);
            assert_eq!(w.jsonl_lines().len(), 24);
            assert!(
                !w.watchdog().events().is_empty(),
                "production day must trip at least one SLO rule"
            );
            let sig = (w.jsonl(), w.watchdog().events_jsonl());
            match &base {
                None => base = Some(sig),
                Some(b) => assert_eq!(b, &sig, "shards={shards} window stream diverged"),
            }
        }
    }

    #[test]
    fn windows_capture_barrier_and_shard_effects() {
        let mut r = Region::new(stress_cfg());
        r.enable_windows(24, Vec::new());
        let report = r.run_scenario(&Scenario::production_day(), true);
        let w = r.windows().unwrap();
        let sum = |key: &str| -> u64 { w.windows().map(|rec| rec.counter(key)).sum() };
        // Shard-merged window counters reproduce the report totals.
        assert_eq!(sum("region.tenant_births"), report.tenant_births);
        assert_eq!(sum("region.tenant_deaths"), report.tenant_deaths);
        assert_eq!(sum("region.fault_crashes"), report.fault_crashes);
        // Barrier-level counters reproduce the report totals too.
        assert_eq!(sum("region.migrations"), report.migrations);
        assert_eq!(sum("region.flash_crowds"), report.flash_crowds);
        assert_eq!(sum("region.offload_granted"), report.offload_events);
        // Utilization histograms cover every (alive) server-epoch sample.
        let hist_count: u64 = w
            .windows()
            .filter_map(|rec| rec.hist("region.util.cpu"))
            .map(|s| s.count)
            .sum();
        assert_eq!(hist_count as usize, report.cpu_utils.len());
    }

    #[test]
    fn production_day_exercises_every_stressor() {
        let mut r = Region::new(stress_cfg());
        let report = r.run_scenario(&Scenario::production_day(), true);
        assert!(
            report.tenant_births > 100,
            "births {}",
            report.tenant_births
        );
        assert!(
            report.tenant_deaths > 100,
            "deaths {}",
            report.tenant_deaths
        );
        assert!(report.migrations > 100, "migrations {}", report.migrations);
        assert!(report.flash_crowds > 0, "no flash crowds fired");
        assert!(report.fault_crashes > 0, "no fault waves fired");
        // Tenant demand visibly lifts utilization above the bare
        // baseline model.
        let mut bare = Region::new(RegionConfig {
            tenants: 0,
            ..stress_cfg()
        });
        let bare_report = bare.run_scenario(&Scenario::quiet(1), true);
        assert!(report.cpu_utils.mean() > bare_report.cpu_utils.mean());
    }

    #[test]
    fn fe_pool_cap_denies_offloads_deterministically() {
        let cfg = RegionConfig {
            fe_pool_cap: 40, // room for 10 grants of 4 FEs
            spike_prob: 0.05,
            ..stress_cfg()
        };
        let mut r = Region::new(cfg);
        let report = r.run_scenario(&Scenario::quiet(3), true);
        assert!(report.offload_denied > 0, "cap never hit");
        assert!(
            report.offload_events <= 10,
            "grants {} exceed the pool",
            report.offload_events
        );
        // Denials must be shard-count invariant too.
        let mut r2 = Region::new(RegionConfig { shards: 7, ..cfg });
        let report2 = r2.run_scenario(&Scenario::quiet(3), true);
        assert_eq!(report.offload_events, report2.offload_events);
        assert_eq!(report.offload_denied, report2.offload_denied);
    }

    #[test]
    fn pending_events_scale_with_churn_not_population() {
        // Lazy materialization: a million-tenant region queues only its
        // churners/migrators (~ (churn + migrate) · tenants), never the
        // population.
        let mut r = Region::new(RegionConfig {
            servers: 2_000,
            tenants: 1_000_000,
            ..Default::default()
        });
        let sc = Scenario {
            churn_frac: 0.002,
            migrate_frac: 0.001,
            ..Scenario::quiet(1)
        };
        // Drive one run so queues are populated, then rebuild the run
        // state and inspect before draining.
        let _ = r.run_scenario(&sc, false);
        assert_eq!(r.pending_events(), 0, "a finished run drains its queues");
        let mut r2 = Region::new(RegionConfig {
            servers: 2_000,
            tenants: 1_000_000,
            ..Default::default()
        });
        r2.prime_for_test(&sc);
        let pending = r2.pending_events();
        let expected = (0.003 * 1_000_000.0) as usize;
        assert!(pending > expected / 2, "pending {pending} too low");
        assert!(
            pending < expected * 2,
            "pending {pending} scales with population?"
        );
    }
}

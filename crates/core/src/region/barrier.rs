//! The epoch barrier: global scenario draws and deterministic
//! cross-shard effect merges.
//!
//! Shards never talk to each other mid-epoch. Everything cross-shard —
//! offload grants (controller decisions against the region-wide FE
//! pool), tenant migrations, flash crowds, and fault waves — flows
//! through the [`Barrier`] between epochs:
//!
//! * **Per-epoch scenario draws** (does a flash crowd fire? where does a
//!   fault wave land?) come from the barrier's own global
//!   `region.controller` stream, drawn exactly once per epoch, so no
//!   shard's stream position ever depends on another shard's activity.
//! * **Effect merging** uses [`nezha_sim::shard::merge_effects`]: the
//!   merged order is a pure function of (epoch, shard id, sorted effect
//!   keys) — by construction, since the barrier runs once per epoch and
//!   the merge sorts by (shard id, key). Arrival order can never leak
//!   into results, which is what makes the shard count unobservable.
//!
//! The controller grants offload requests in merged (= global server
//! id) order against the FE pool cap, so a capped pool denies the same
//! requests for every shard count.

use super::scenario::Scenario;
use super::RegionConfig;
use nezha_sim::fault::FaultPlan;
use nezha_sim::rng::{derive_seed, SimRng};
use nezha_sim::shard::merge_effects;
use nezha_sim::time::SimTime;
use nezha_types::ServerId;

/// An offload request: (global server id, pre-sampled activation
/// completion in seconds). The server id is the merge key.
pub(crate) type OffloadRequest = (u64, f64);

/// A tenant migration in flight: (tenant id, destination server, cpu
/// demand, memory demand). The tenant id is the merge key.
pub(crate) type Migration = (u64, u64, f64, f64);

/// What the barrier decided for one epoch, already routed per shard.
#[derive(Clone, Debug, Default)]
pub(crate) struct ShardInbox {
    /// Global server ids granted an offload (apply before the epoch).
    pub grants: Vec<u64>,
    /// Global server ids whose request was denied (clear the pending
    /// flag so they may retry).
    pub denials: Vec<u64>,
    /// Migrations arriving at servers this shard owns.
    pub arrivals: Vec<Migration>,
}

/// The global per-epoch plan (identical for every shard).
#[derive(Clone, Debug)]
pub(crate) struct EpochPlan {
    /// Demand multiplier from the diurnal wave.
    pub diurnal: f64,
    /// Contiguous server range hit by a flash crowd, if one fired.
    pub flash: Option<(u64, u64)>,
    /// Correlated crash/restart wave, if one fired.
    pub wave: Option<FaultPlan>,
}

/// Result of resolving one epoch's merged offload requests.
#[derive(Clone, Debug, Default)]
pub(crate) struct GrantOutcome {
    /// (server, completion secs) for each granted request, in merged
    /// (global server id) order.
    pub granted: Vec<(u64, f64)>,
    /// Servers denied by the FE pool cap, in merged order.
    pub denied: Vec<u64>,
}

/// The barrier/controller state.
#[derive(Debug)]
pub(crate) struct Barrier {
    rng: SimRng,
    fe_pool_used: u64,
    fe_pool_cap: u64,
}

impl Barrier {
    /// Fresh barrier for one run, with an empty FE pool.
    pub fn new(cfg: &RegionConfig) -> Self {
        Barrier {
            rng: SimRng::new(derive_seed(cfg.seed, "region.controller")),
            fe_pool_used: 0,
            fe_pool_cap: cfg.fe_pool_cap,
        }
    }

    /// Draws the global plan for `epoch`. The draw sequence depends only
    /// on the scenario and the epoch sequence — never on shard activity.
    pub fn plan_epoch(
        &mut self,
        epoch: u64,
        t_epoch: SimTime,
        sc: &Scenario,
        servers: u64,
        epochs_per_day: u64,
        epoch_ns: u64,
    ) -> EpochPlan {
        let diurnal = sc.diurnal(epoch, epochs_per_day);
        let flash = if sc.flash_prob > 0.0 && servers > 0 && self.rng.chance(sc.flash_prob) {
            let span = sc.flash_span.clamp(1, servers);
            let lo = self.rng.range(0, servers - span + 1);
            Some((lo, lo + span))
        } else {
            None
        };
        let wave = if sc.fault_prob > 0.0 && servers > 0 && self.rng.chance(sc.fault_prob) {
            let span = sc.fault_span.clamp(1, servers);
            let lo = self.rng.range(0, servers - span + 1);
            let restart_at = SimTime(t_epoch.0 + sc.fault_epochs.max(1) * epoch_ns);
            let mut plan = FaultPlan::new();
            for s in lo..lo + span {
                let sid = ServerId(s as u32);
                plan = plan.crash(t_epoch, sid).restart(restart_at, sid);
            }
            Some(plan)
        } else {
            None
        };
        EpochPlan {
            diurnal,
            flash,
            wave,
        }
    }

    /// Merges per-shard offload requests and grants them in global
    /// server order against the FE pool cap. `initial_fes` FEs are
    /// charged per grant; scale-outs charge one more via
    /// [`Barrier::charge_scale_outs`].
    pub fn resolve_requests(
        &mut self,
        per_shard: Vec<(u32, Vec<OffloadRequest>)>,
        initial_fes: u64,
    ) -> GrantOutcome {
        let merged = merge_effects(
            per_shard
                .into_iter()
                .map(|(shard, reqs)| {
                    (
                        shard,
                        reqs.into_iter()
                            .map(|(s, c)| (s, (s, c)))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect(),
        );
        let mut out = GrantOutcome::default();
        for (_, (server, completion)) in merged {
            if self.fe_pool_used + initial_fes <= self.fe_pool_cap {
                self.fe_pool_used += initial_fes;
                out.granted.push((server, completion));
            } else {
                out.denied.push(server);
            }
        }
        out
    }

    /// Accounts scale-out FEs against the pool (never denied — a
    /// scale-out grows an existing offload, §B.2).
    pub fn charge_scale_outs(&mut self, n: u64) {
        self.fe_pool_used = self.fe_pool_used.saturating_add(n);
    }

    /// Merges per-shard outbound migrations into the canonical global
    /// order (shard id, then tenant id).
    pub fn merge_migrations(per_shard: Vec<(u32, Vec<Migration>)>) -> Vec<Migration> {
        merge_effects(
            per_shard
                .into_iter()
                .map(|(shard, migs)| {
                    (
                        shard,
                        migs.into_iter().map(|m| (m.0, m)).collect::<Vec<_>>(),
                    )
                })
                .collect(),
        )
        .into_iter()
        .map(|(_, m)| m)
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RegionConfig {
        RegionConfig::default()
    }

    #[test]
    fn plans_are_seed_deterministic() {
        let sc = Scenario::production_day();
        let run = || {
            let mut b = Barrier::new(&cfg());
            (0..48)
                .map(|e| {
                    let p = b.plan_epoch(e, SimTime(e * 100), &sc, 10_000, 48, 100);
                    (p.flash, p.wave.map(|w| w.len()))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        let plans = run();
        assert!(
            plans.iter().any(|(f, _)| f.is_some()) || plans.iter().any(|(_, w)| w.is_some()),
            "production day drew no events in 48 epochs (possible, but the seed says otherwise)"
        );
    }

    #[test]
    fn grants_respect_the_pool_cap_in_global_order() {
        let mut b = Barrier::new(&RegionConfig {
            fe_pool_cap: 10,
            ..cfg()
        });
        // Shards reported out of order, requests out of order within.
        let out = b.resolve_requests(
            vec![(1, vec![(70, 0.5), (50, 0.4)]), (0, vec![(3, 0.3)])],
            4,
        );
        // Granted in global server order until the cap: 3 and 50 fit
        // (8 FEs), 70 would need 12 > 10.
        assert_eq!(out.granted, vec![(3, 0.3), (50, 0.4)]);
        assert_eq!(out.denied, vec![70]);
    }

    #[test]
    fn migration_merge_is_arrival_order_invariant() {
        let a = || vec![(9u64, 5u64, 0.1, 0.2), (2, 7, 0.3, 0.4)];
        let b = || vec![(4u64, 1u64, 0.5, 0.6)];
        let fwd = Barrier::merge_migrations(vec![(0, a()), (1, b())]);
        let rev = Barrier::merge_migrations(vec![(1, b()), (0, a())]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd[0].0, 2, "shard 0's migrations sort by tenant id first");
    }

    #[test]
    fn quiet_scenarios_consume_no_controller_randomness() {
        let sc = Scenario::quiet(1);
        let mut b = Barrier::new(&cfg());
        for e in 0..24 {
            let p = b.plan_epoch(e, SimTime(e), &sc, 1_000, 24, 1);
            assert_eq!(p.diurnal, 1.0);
            assert!(p.flash.is_none() && p.wave.is_none());
        }
        // The stream was never advanced: a fresh barrier draws the same
        // next value.
        let mut fresh = Barrier::new(&cfg());
        assert_eq!(b.rng.f64().to_bits(), fresh.rng.f64().to_bits());
    }
}

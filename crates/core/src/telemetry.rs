//! The cluster's telemetry plumbing: the shared [`MetricsRegistry`], the
//! shared [`PacketTrace`] ring, the cycle-attribution [`Profiler`], and
//! every pre-registered handle the hot paths increment through.
//!
//! Registration happens exactly once, in [`ClusterTelemetry::register`]
//! (called from `Cluster::new`); registry lookups are string-keyed and
//! must never run mid-simulation (lint rules D5/D6). Datapath handlers
//! reach this module only through `datapath::ctx::HandlerCtx` (lint rule
//! D7); the management plane (`controller.rs`, `monitor.rs`) uses the
//! handles directly.

use nezha_sim::metrics::{
    CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry, SeriesHandle,
};
use nezha_sim::obs::{RegistryWindows, SloRule};
use nezha_sim::profile::{Profiler, Span, SpanId, StageHandle, StageSet};
use nezha_sim::stats::{Counter, Samples, TimeSeries};
use nezha_sim::time::{SimDuration, SimTime};
use nezha_sim::trace::PacketTrace;
use nezha_types::{Packet, ServerId};

/// Aggregated measurements.
///
/// Since the telemetry redesign this is an owned *view* assembled on
/// demand from the cluster's [`MetricsRegistry`] by `Cluster::stats`;
/// field names are unchanged so `c.stats.X` call sites only became
/// `c.stats().X`. Experiments should prefer reading the registry snapshot
/// directly (`c.metrics().snapshot()`).
#[derive(Clone, Debug)]
pub struct ClusterStats {
    /// Connection-packet delivery counter (ok vs lost).
    pub pkts: Counter,
    /// End-to-end latency of probe packets (seconds).
    pub probe_latency: Samples,
    /// Completed connection latencies (seconds).
    pub conn_latency: Samples,
    /// Completed connections per time bin (CPS series).
    pub cps_series: TimeSeries,
    /// Lost packets per time bin.
    pub loss_series: TimeSeries,
    /// Injected packets per time bin.
    pub total_series: TimeSeries,
    /// Offload activation completion times (seconds; Table 4).
    pub offload_completion: Samples,
    /// Connections completed / denied / failed.
    pub completed: u64,
    /// Connections denied by policy.
    pub denied: u64,
    /// Connections failed after retries.
    pub failed: u64,
    /// Notify packets generated (§3.2.2).
    pub notifies: u64,
    /// Mirror copies emitted toward collectors (advanced tables, §2.2.2).
    /// Under Nezha the FE emits TX-direction copies and the BE emits
    /// RX-direction ones (each holds the packet at finalization time).
    pub mirror_copies: u64,
    /// RX packets that reached the BE after the final stage and had to be
    /// bounced to an FE (stale vNIC-server mappings).
    pub stale_bounces: u64,
    /// Packets that arrived somewhere that could not process them.
    pub misroutes: u64,
    /// Controller event counters.
    pub offload_events: u64,
    /// Scale-out operations performed.
    pub scale_out_events: u64,
    /// Scale-in operations performed.
    pub scale_in_events: u64,
    /// Fallback operations performed.
    pub fallback_events: u64,
    /// Failovers completed.
    pub failover_events: u64,
    /// Monitor false-positive suspensions (Appendix C).
    pub monitor_suspensions: u64,
    /// Scripted fault transitions applied (chaos injection).
    pub fault_events: u64,
    /// Graceful degradations: the FE pool collapsed and the BE fell back
    /// to local processing from the data plane.
    pub degraded_events: u64,
    /// FE pool membership changes caused by failure handling — each one
    /// re-hashes a slice of the flow space (re-hash churn).
    pub rehash_churn: u64,
    /// Crash-to-failover detection latencies (seconds).
    pub detection_latency: Samples,
}

/// The cluster's telemetry plumbing: the shared registry, the shared
/// packet-trace ring, and the pre-registered handles every hot-path
/// increment goes through. Registered once in `Cluster::new`.
#[derive(Debug, Clone)]
pub(crate) struct ClusterTelemetry {
    /// The registry shared by the engine, every vSwitch, and the cluster.
    pub(crate) registry: MetricsRegistry,
    /// The trace ring shared with every vSwitch (disabled until
    /// `Cluster::enable_trace`).
    pub(crate) trace: PacketTrace,
    /// The cycle-attribution profiler shared with every vSwitch (disabled
    /// until `Cluster::enable_profile`).
    pub(crate) profiler: Profiler,
    /// Pre-registered span stage handles (lint rule D6: stage lookups are
    /// string-keyed and must never run mid-simulation).
    pub(crate) stages: StageSet,
    pub(crate) pkt_ok: CounterHandle,
    pub(crate) pkt_dropped: CounterHandle,
    pub(crate) probe_latency: HistogramHandle,
    pub(crate) conn_latency: HistogramHandle,
    pub(crate) cps_series: SeriesHandle,
    pub(crate) loss_series: SeriesHandle,
    pub(crate) total_series: SeriesHandle,
    pub(crate) offload_completion: HistogramHandle,
    pub(crate) completed: CounterHandle,
    pub(crate) denied: CounterHandle,
    pub(crate) failed: CounterHandle,
    pub(crate) notifies: CounterHandle,
    pub(crate) mirror_copies: CounterHandle,
    pub(crate) stale_bounces: CounterHandle,
    pub(crate) misroutes: CounterHandle,
    pub(crate) offload_events: CounterHandle,
    pub(crate) scale_out_events: CounterHandle,
    pub(crate) scale_in_events: CounterHandle,
    pub(crate) fallback_events: CounterHandle,
    pub(crate) failover_events: CounterHandle,
    pub(crate) monitor_suspensions: CounterHandle,
    pub(crate) fault_events: CounterHandle,
    pub(crate) fault_link_drops: CounterHandle,
    pub(crate) fault_notify_drops: CounterHandle,
    pub(crate) fault_inflight_loss: CounterHandle,
    pub(crate) degraded_events: CounterHandle,
    pub(crate) rehash_churn: CounterHandle,
    pub(crate) detection_latency: HistogramHandle,
    /// Per-server controller report gauges, indexed by `ServerId.0`.
    /// Pre-registered at startup: registry lookups are string-keyed and
    /// must never run mid-simulation (lint rule D5).
    pub(crate) ctrl_gauges: Vec<ServerCtrlGauges>,
    /// Windowed-rollup driver (None until `Cluster::enable_windows`).
    pub(crate) windows: Option<RegistryWindows>,
    /// Per-server FE RX-packet counters (`fe.rx_pkts{server=i}`) feeding
    /// the fairness SLO, indexed by `ServerId.0`. Registered together
    /// with the rollup in [`ClusterTelemetry::register_windows`], so runs
    /// that never enable windows keep their golden snapshots unchanged.
    pub(crate) fe_rx: Option<Vec<CounterHandle>>,
}

/// The gauges one controller report publishes for one server.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ServerCtrlGauges {
    pub(crate) cpu_util: GaugeHandle,
    pub(crate) mem_util: GaugeHandle,
    pub(crate) local_cycles: GaugeHandle,
    pub(crate) remote_cycles: GaugeHandle,
}

impl ClusterTelemetry {
    /// Registers every handle. The registration *order* is part of the
    /// golden-snapshot contract: metric snapshots serialize in it, so it
    /// must not change across refactors.
    pub(crate) fn register(registry: MetricsRegistry, servers: usize) -> Self {
        let ctrl_gauges = (0..servers)
            .map(|i| {
                let labels = [("server", i.to_string())];
                ServerCtrlGauges {
                    cpu_util: registry.gauge("ctrl.cpu_util", &labels),
                    mem_util: registry.gauge("ctrl.mem_util", &labels),
                    local_cycles: registry.gauge("ctrl.local_cycles", &labels),
                    remote_cycles: registry.gauge("ctrl.remote_cycles", &labels),
                }
            })
            .collect();
        let c = |name: &str| registry.counter(name, &[]);
        let h = |name: &str| registry.histogram(name, &[]);
        let profiler = Profiler::new();
        let stages = StageSet::register(&profiler);
        ClusterTelemetry {
            trace: PacketTrace::disabled(),
            profiler,
            stages,
            pkt_ok: c("pkt.ok"),
            pkt_dropped: c("pkt.dropped"),
            probe_latency: h("latency.probe"),
            conn_latency: h("latency.conn"),
            cps_series: registry.series("conn.cps", &[], SimDuration::from_millis(50)),
            loss_series: registry.series("pkt.loss", &[], SimDuration::from_millis(100)),
            total_series: registry.series("pkt.total", &[], SimDuration::from_millis(100)),
            offload_completion: h("offload.completion"),
            completed: c("conn.completed"),
            denied: c("conn.denied"),
            failed: c("conn.failed"),
            notifies: c("nsh.notifies"),
            mirror_copies: c("pkt.mirror_copies"),
            stale_bounces: c("pkt.stale_bounces"),
            misroutes: c("pkt.misroutes"),
            offload_events: c("ctrl.offload_events"),
            scale_out_events: c("ctrl.scale_out_events"),
            scale_in_events: c("ctrl.scale_in_events"),
            fallback_events: c("ctrl.fallback_events"),
            failover_events: c("ctrl.failover_events"),
            monitor_suspensions: c("monitor.suspensions"),
            fault_events: c("fault.events"),
            fault_link_drops: c("fault.link_drops"),
            fault_notify_drops: c("fault.notify_drops"),
            fault_inflight_loss: c("fault.inflight_loss"),
            degraded_events: c("ctrl.degraded_events"),
            rehash_churn: c("fault.rehash_churn"),
            detection_latency: h("fault.detection_latency"),
            ctrl_gauges,
            windows: None,
            fe_rx: None,
            registry,
        }
    }

    /// Registers the windowed-rollup driver plus the per-FE-server RX
    /// counters the fairness SLO consumes. Lazy by design: enabling
    /// windows adds `fe.rx_pkts{server=i}` keys to the registry, so runs
    /// that never call this serialize exactly the golden snapshots
    /// pinned before the observability plane existed.
    pub(crate) fn register_windows(
        &mut self,
        servers: usize,
        width: SimDuration,
        retain: usize,
        rules: Vec<SloRule>,
    ) {
        let fe_rx = (0..servers)
            .map(|i| {
                self.registry
                    .counter("fe.rx_pkts", &[("server", i.to_string())])
            })
            .collect();
        self.fe_rx = Some(fe_rx);
        self.windows = Some(RegistryWindows::new(width, retain, rules));
    }

    /// Hot-path increment of the per-FE RX counter (no-op until windows
    /// are enabled). One branch, one borrow, one index — no allocation.
    pub(crate) fn note_fe_rx(&self, server: ServerId) {
        if let Some(fe_rx) = &self.fe_rx {
            if let Some(h) = fe_rx.get(server.0 as usize) {
                self.registry.inc(*h);
            }
        }
    }

    /// Counter increment (hot path: one borrow + one index).
    pub(crate) fn inc(&self, h: CounterHandle) {
        self.registry.inc(h);
    }

    /// Counter increment by `n`.
    pub(crate) fn add(&self, h: CounterHandle, n: u64) {
        self.registry.add(h, n);
    }

    /// Duration observation in seconds.
    pub(crate) fn observe_duration(&self, h: HistogramHandle, d: SimDuration) {
        self.registry.observe_duration(h, d);
    }

    /// Series bin accumulation.
    pub(crate) fn series_add(&self, h: SeriesHandle, at: SimTime, v: f64) {
        self.registry.series_add(h, at, v);
    }

    /// Records one handler root span (zero cycles, one packet, the wire
    /// bytes) plus its cycle-bearing leaves, returning the root id so the
    /// caller can thread it through the next BE↔FE hop. The root parents
    /// on the packet's carried causal id (`pkt.prof_span`). Zero-cycle
    /// leaves are skipped — markers that must exist regardless (the NSH
    /// hop parents) are recorded by the caller directly.
    pub(crate) fn profile_handler(
        &self,
        stage: StageHandle,
        pkt: &Packet,
        server: ServerId,
        start: SimTime,
        end: SimTime,
        leaves: &[(StageHandle, u64)],
    ) -> Option<SpanId> {
        if !self.profiler.is_enabled() {
            return None;
        }
        let base = Span {
            stage,
            parent: SpanId::from_raw(pkt.prof_span),
            trace: pkt.trace,
            server,
            vnic: pkt.vnic,
            start,
            end,
            cycles: 0,
            bytes: pkt.wire_len() as u64,
            packets: 1,
        };
        let root = self.profiler.record(base);
        for &(stage, cycles) in leaves {
            if cycles > 0 {
                self.profiler.record(Span {
                    stage,
                    parent: root,
                    cycles,
                    bytes: 0,
                    packets: 0,
                    ..base
                });
            }
        }
        root
    }

    /// Records the zero-cycle drop marker for a packet the fault engine
    /// (or a dead peer) discarded, parented under the packet's causal
    /// span so injected losses show up inside the victim's span tree.
    pub(crate) fn profile_fault_drop(&self, pkt: &Packet, server: ServerId, at: SimTime) {
        if !self.profiler.is_enabled() {
            return;
        }
        self.profiler.record(Span {
            stage: self.stages.fault_drop,
            parent: SpanId::from_raw(pkt.prof_span),
            trace: pkt.trace,
            server,
            vnic: pkt.vnic,
            start: at,
            end: at,
            cycles: 0,
            bytes: pkt.wire_len() as u64,
            packets: 1,
        });
    }

    /// Assembles the legacy [`ClusterStats`] view from the registry.
    pub(crate) fn stats(&self) -> ClusterStats {
        let v = |h: CounterHandle| self.registry.counter_value(h);
        ClusterStats {
            pkts: Counter {
                ok: v(self.pkt_ok),
                dropped: v(self.pkt_dropped),
            },
            probe_latency: self.registry.histogram_samples(self.probe_latency),
            conn_latency: self.registry.histogram_samples(self.conn_latency),
            cps_series: self.registry.series_data(self.cps_series),
            loss_series: self.registry.series_data(self.loss_series),
            total_series: self.registry.series_data(self.total_series),
            offload_completion: self.registry.histogram_samples(self.offload_completion),
            completed: v(self.completed),
            denied: v(self.denied),
            failed: v(self.failed),
            notifies: v(self.notifies),
            mirror_copies: v(self.mirror_copies),
            stale_bounces: v(self.stale_bounces),
            misroutes: v(self.misroutes),
            offload_events: v(self.offload_events),
            scale_out_events: v(self.scale_out_events),
            scale_in_events: v(self.scale_in_events),
            fallback_events: v(self.fallback_events),
            failover_events: v(self.failover_events),
            monitor_suspensions: v(self.monitor_suspensions),
            fault_events: v(self.fault_events),
            degraded_events: v(self.degraded_events),
            rehash_churn: v(self.rehash_churn),
            detection_latency: self.registry.histogram_samples(self.detection_latency),
        }
    }
}

//! Cluster-wide configuration: the [`ClusterConfig`] knobs, the fluent
//! [`ClusterConfigBuilder`], and the delayed [`ConfigOp`] pushes the
//! controller applies asynchronously.
//!
//! Everything here is re-exported from [`crate::cluster`] so existing
//! `nezha_core::cluster::ClusterConfig` imports keep working.

use crate::controller::ControllerConfig;
use nezha_sim::time::SimDuration;
use nezha_sim::topology::TopologyConfig;
use nezha_types::{Ipv4Addr, ServerId, VnicId};
use nezha_vswitch::config::VSwitchConfig;

/// FE load-balancing granularity (ablation of §3.2.3's design choice).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LbMode {
    /// Nezha's choice: `Hash(5-tuple)` per flow — cache friendly, one
    /// rule lookup and one cached flow per session.
    FlowLevel,
    /// The rejected alternative: per-packet spreading — better short-term
    /// balance, but duplicated lookups and duplicated cached flows on
    /// every FE a session's packets touch.
    PacketLevel,
}

/// Cluster-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Fabric shape.
    pub topology: TopologyConfig,
    /// Per-server vSwitch configuration.
    pub vswitch: VSwitchConfig,
    /// Controller thresholds and delays.
    pub controller: ControllerConfig,
    /// vSwitch gateway-learning interval (200 ms in production, §4.2.1).
    pub learning_interval: SimDuration,
    /// Session aging sweep period.
    pub aging_period: SimDuration,
    /// *Base* retransmission timeout for lost connection packets. Retry
    /// `k` waits `retry_timeout · 2^k` — capped at
    /// [`retry_cap`](ClusterConfig::retry_cap) — with ±25% jitter drawn
    /// from the seeded sim RNG, so a cluster-wide fault does not
    /// re-synchronize every retransmission into one thundering herd.
    pub retry_timeout: SimDuration,
    /// Upper bound on the backed-off retry delay (the exponential growth
    /// saturates here).
    pub retry_cap: SimDuration,
    /// Retries before a connection is declared failed.
    pub max_retries: u32,
    /// RNG seed (full determinism).
    pub seed: u64,
    /// FE selection granularity (ablation; Nezha uses flow-level).
    pub lb_mode: LbMode,
    /// Ablation: send a notify packet on *every* FE cache miss instead of
    /// only when the looked-up rule-table-involved state differs from the
    /// carried state (§3.2.2's suppression).
    pub notify_always: bool,
    /// Ablation: skip the dual-running stage — the BE deletes its rule
    /// tables as soon as the FEs are configured, before peers have
    /// learned the new mapping (§4.2.1 explains why this hurts).
    pub skip_dual_running: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            topology: TopologyConfig::default(),
            vswitch: VSwitchConfig::default(),
            controller: ControllerConfig::default(),
            learning_interval: SimDuration::from_millis(200),
            aging_period: SimDuration::from_secs(1),
            retry_timeout: SimDuration::from_millis(500),
            retry_cap: SimDuration::from_secs(2),
            max_retries: 5,
            seed: 0x4e5a_2025,
            lb_mode: LbMode::FlowLevel,
            notify_always: false,
            skip_dual_running: false,
        }
    }
}

/// Generates one fluent setter per `(name, type, target field path)`
/// triple, collapsing the builder's otherwise hand-written boilerplate.
macro_rules! builder_setters {
    ($( $(#[$doc:meta])* $name:ident: $ty:ty => $($field:ident).+ ),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, $name: $ty) -> Self {
                self.cfg.$($field).+ = $name;
                self
            }
        )*
    };
}

/// Fluent builder for [`ClusterConfig`], starting from the defaults.
///
/// ```
/// use nezha_core::cluster::ClusterConfig;
///
/// let cfg = ClusterConfig::builder()
///     .seed(7)
///     .auto(true)
///     .build();
/// assert_eq!(cfg.seed, 7);
/// assert!(cfg.controller.auto_offload);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

impl ClusterConfigBuilder {
    builder_setters! {
        /// Fabric shape.
        topology: TopologyConfig => topology,
        /// Per-server vSwitch configuration.
        vswitch: VSwitchConfig => vswitch,
        /// Controller thresholds and delays.
        controller: ControllerConfig => controller,
        /// vSwitch gateway-learning interval.
        learning_interval: SimDuration => learning_interval,
        /// Session aging sweep period.
        aging_period: SimDuration => aging_period,
        /// Base retransmission timeout for lost connection packets; retry
        /// `k` waits `timeout · 2^k` (capped at
        /// [`retry_cap`](ClusterConfigBuilder::retry_cap)) with ±25%
        /// seeded jitter.
        retry_timeout: SimDuration => retry_timeout,
        /// Cap on the exponentially backed-off retry delay.
        retry_cap: SimDuration => retry_cap,
        /// Retries before a connection is declared failed.
        max_retries: u32 => max_retries,
        /// RNG seed (full determinism).
        seed: u64 => seed,
        /// FE selection granularity (Nezha uses flow-level).
        lb_mode: LbMode => lb_mode,
        /// Ablation: notify on every FE cache miss.
        notify_always: bool => notify_always,
        /// Ablation: skip the dual-running stage.
        skip_dual_running: bool => skip_dual_running,
        /// Convenience: vSwitch core count (the most-tuned knob in tests).
        cores: u32 => vswitch.cores,
        /// Convenience: automatic offload only (leaves auto-scaling as-is).
        auto_offload: bool => controller.auto_offload,
        /// Convenience: automatic FE scaling only (leaves auto-offload
        /// as-is).
        auto_scale: bool => controller.auto_scale,
    }

    /// Convenience: enables/disables both automatic offload and scaling.
    pub fn auto(mut self, auto: bool) -> Self {
        self.cfg.controller.auto_offload = auto;
        self.cfg.controller.auto_scale = auto;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ClusterConfig {
        self.cfg
    }
}

impl ClusterConfig {
    /// Starts a fluent [`ClusterConfigBuilder`] from the defaults.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }
}

/// Delayed configuration operations (the controller's pushes take effect
/// asynchronously, which is what creates the dual-running stage).
#[derive(Clone, Debug)]
pub enum ConfigOp {
    /// An FE finished installing the vNIC's rule tables.
    FeConfigured {
        /// The offloaded vNIC.
        vnic: VnicId,
        /// The FE's server.
        fe: ServerId,
    },
    /// The gateway's vNIC-server entry is replaced (learning then begins).
    GatewayUpdate {
        /// The vNIC's overlay address.
        addr: Ipv4Addr,
        /// New hosting set.
        servers: Vec<ServerId>,
    },
    /// Re-derive the gateway entry for an offloaded vNIC from the FEs
    /// that are actually ready at apply time (a config push may have
    /// failed on a full candidate in the meantime).
    GatewaySyncFes {
        /// The offloaded vNIC.
        vnic: VnicId,
    },
    /// All senders have learned the FE mapping: offload is *active*.
    CheckActivation {
        /// The offloaded vNIC.
        vnic: VnicId,
    },
    /// BE enters the final stage: drop rule tables and cached flows.
    BeFinalStage {
        /// The offloaded vNIC.
        vnic: VnicId,
    },
    /// Fallback completes: remove all FEs, return to local processing.
    FallbackFinal {
        /// The vNIC falling back.
        vnic: VnicId,
    },
    /// VM live migration (§7.2): repoint the BE location on all FEs.
    BeLocationUpdate {
        /// The migrated vNIC.
        vnic: VnicId,
        /// The new home server.
        new_home: ServerId,
    },
}

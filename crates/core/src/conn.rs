//! Connection scripts: the unit of CPS workload.
//!
//! A connection is a fixed script of packets (the netperf TCP_CRR shape
//! the paper's testbed uses, §6.2.1: handshake, request, response,
//! teardown). The cluster drives one step at a time — a step's packet is
//! injected only after the previous step's packet was delivered — so
//! end-to-end behaviour (vSwitch queueing, FE detours, VM kernel
//! saturation, losses and retries) shapes the achieved CPS exactly as it
//! does on a real testbed.

use nezha_sim::time::SimTime;
use nezha_types::{Direction, FiveTuple, ServerId, TcpFlags, VnicId, VpcId};
use serde::{Deserialize, Serialize};

/// Who initiates the connection, relative to the vNIC's VM.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ConnKind {
    /// A remote client connects to the VM (the high-CPS middlebox /
    /// server pattern that overloads SmartNICs, §2.2.1).
    Inbound,
    /// The VM initiates toward a remote peer (exercises the §5.1 stateful
    /// ACL TX workflow).
    Outbound,
    /// An inbound connection that stays open after the response — the
    /// persistent-connection pattern of L4 load balancers that bloats
    /// session tables (§2.2.2). The entry lives until idle aging.
    PersistentInbound,
    /// A bare inbound SYN that never completes the handshake: the SYN
    /// flood of §7.3, pinning embryonic state until the short SYN aging
    /// reclaims it.
    SynOnly,
}

/// One step of a connection script.
#[derive(Clone, Copy, Debug)]
pub struct StepDef {
    /// Packet direction relative to the vNIC's VM.
    pub dir: Direction,
    /// TCP flags of the step's packet.
    pub flags: TcpFlags,
    /// Whether the step carries the request/response payload.
    pub has_payload: bool,
}

const fn step(dir: Direction, flags: TcpFlags, has_payload: bool) -> StepDef {
    StepDef {
        dir,
        flags,
        has_payload,
    }
}

/// TCP_CRR script for an inbound connection (client → VM), from the
/// vNIC's perspective: SYN in, SYN+ACK out, ACK+request in, response
/// out, FIN in, FIN out, final ACK in.
pub const INBOUND_SCRIPT: [StepDef; 7] = [
    step(Direction::Rx, TcpFlags(0x02), false), // SYN
    step(Direction::Tx, TcpFlags(0x12), false), // SYN|ACK
    step(Direction::Rx, TcpFlags(0x18), true),  // PSH|ACK request
    step(Direction::Tx, TcpFlags(0x18), true),  // PSH|ACK response
    step(Direction::Rx, TcpFlags(0x11), false), // FIN|ACK
    step(Direction::Tx, TcpFlags(0x11), false), // FIN|ACK
    step(Direction::Rx, TcpFlags(0x10), false), // ACK
];

/// TCP_CRR script for an outbound connection (VM → peer): the mirror
/// image of [`INBOUND_SCRIPT`].
pub const OUTBOUND_SCRIPT: [StepDef; 7] = [
    step(Direction::Tx, TcpFlags(0x02), false),
    step(Direction::Rx, TcpFlags(0x12), false),
    step(Direction::Tx, TcpFlags(0x18), true),
    step(Direction::Rx, TcpFlags(0x18), true),
    step(Direction::Tx, TcpFlags(0x11), false),
    step(Direction::Rx, TcpFlags(0x11), false),
    step(Direction::Tx, TcpFlags(0x10), false),
];

/// Persistent-inbound script: handshake + one exchange, no teardown.
pub const PERSISTENT_INBOUND_SCRIPT: [StepDef; 4] = [
    step(Direction::Rx, TcpFlags(0x02), false),
    step(Direction::Tx, TcpFlags(0x12), false),
    step(Direction::Rx, TcpFlags(0x18), true),
    step(Direction::Tx, TcpFlags(0x18), true),
];

/// SYN-flood script: one unanswered SYN.
pub const SYN_ONLY_SCRIPT: [StepDef; 1] = [step(Direction::Rx, TcpFlags(0x02), false)];

impl ConnKind {
    /// The script for this kind.
    pub fn script(self) -> &'static [StepDef] {
        match self {
            ConnKind::Inbound => &INBOUND_SCRIPT,
            ConnKind::Outbound => &OUTBOUND_SCRIPT,
            ConnKind::PersistentInbound => &PERSISTENT_INBOUND_SCRIPT,
            ConnKind::SynOnly => &SYN_ONLY_SCRIPT,
        }
    }
}

/// A connection to be driven through the cluster.
#[derive(Clone, Copy, Debug)]
pub struct ConnSpec {
    /// The vNIC under test.
    pub vnic: VnicId,
    /// Its VPC.
    pub vpc: VpcId,
    /// The connection 5-tuple, oriented **initiator → responder**.
    pub tuple: FiveTuple,
    /// The server hosting the remote peer endpoint.
    pub peer_server: ServerId,
    /// Who initiates.
    pub kind: ConnKind,
    /// When the first packet is injected.
    pub start: SimTime,
    /// Payload bytes of the request/response steps.
    pub payload: u32,
    /// Overlay encapsulation source stamped on RX packets (exercises
    /// stateful decap, §5.2; `None` for ordinary traffic).
    pub overlay_encap_src: Option<nezha_types::Ipv4Addr>,
}

impl ConnSpec {
    /// The 5-tuple of a given step's packet, oriented as transmitted.
    ///
    /// For `Inbound`, `tuple` is client→VM, so RX steps use it directly
    /// and TX steps use the reverse; `Outbound` mirrors that.
    pub fn step_tuple(&self, dir: Direction) -> FiveTuple {
        let initiator_dir = match self.kind {
            ConnKind::Inbound | ConnKind::PersistentInbound | ConnKind::SynOnly => Direction::Rx,
            ConnKind::Outbound => Direction::Tx,
        };
        if dir == initiator_dir {
            self.tuple
        } else {
            self.tuple.reversed()
        }
    }
}

/// Runtime state of one in-flight connection.
#[derive(Clone, Debug)]
pub struct ConnState {
    /// The immutable spec.
    pub spec: ConnSpec,
    /// Next step index to inject (0-based). `script.len()` = completed.
    pub pos: usize,
    /// Retries used on the current step.
    pub retries: u32,
    /// When the first packet was injected.
    pub started_at: SimTime,
    /// Terminal status.
    pub status: ConnStatus,
}

/// Terminal status of a connection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConnStatus {
    /// Still being driven.
    InFlight,
    /// All steps delivered.
    Completed,
    /// A packet was denied by policy (expected for unsolicited traffic).
    Denied,
    /// Retries exhausted (overload / crash losses).
    Failed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nezha_types::Ipv4Addr;

    fn spec(kind: ConnKind) -> ConnSpec {
        ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                5555,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            peer_server: ServerId(9),
            kind,
            start: SimTime(0),
            payload: 128,
            overlay_encap_src: None,
        }
    }

    #[test]
    fn scripts_have_matched_shapes() {
        assert_eq!(INBOUND_SCRIPT.len(), OUTBOUND_SCRIPT.len());
        for (a, b) in INBOUND_SCRIPT.iter().zip(OUTBOUND_SCRIPT.iter()) {
            assert_eq!(a.dir, b.dir.flipped());
            assert_eq!(a.flags, b.flags);
            assert_eq!(a.has_payload, b.has_payload);
        }
    }

    #[test]
    fn inbound_script_starts_with_rx_syn() {
        let s = ConnKind::Inbound.script();
        assert_eq!(s[0].dir, Direction::Rx);
        assert!(s[0].flags.contains(TcpFlags::SYN));
        assert!(!s[0].flags.contains(TcpFlags::ACK));
        // Exactly two payload steps (request + response).
        assert_eq!(s.iter().filter(|st| st.has_payload).count(), 2);
    }

    #[test]
    fn step_tuples_orient_correctly() {
        let inb = spec(ConnKind::Inbound);
        // RX steps carry the client→VM tuple.
        assert_eq!(inb.step_tuple(Direction::Rx), inb.tuple);
        assert_eq!(inb.step_tuple(Direction::Tx), inb.tuple.reversed());

        let outb = spec(ConnKind::Outbound);
        assert_eq!(outb.step_tuple(Direction::Tx), outb.tuple);
        assert_eq!(outb.step_tuple(Direction::Rx), outb.tuple.reversed());
    }

    #[test]
    fn persistent_script_skips_teardown() {
        let s = ConnKind::PersistentInbound.script();
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|st| !st.flags.contains(TcpFlags::FIN)));
        assert_eq!(ConnKind::SynOnly.script().len(), 1);
    }

    #[test]
    fn both_orientations_share_a_session() {
        let s = spec(ConnKind::Inbound);
        let a = s.step_tuple(Direction::Rx).canonical();
        let b = s.step_tuple(Direction::Tx).canonical();
        assert_eq!(a, b);
    }
}

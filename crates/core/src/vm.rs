//! The VM kernel-stack model.
//!
//! Once Nezha removes the vSwitch bottleneck, "the CPS capability
//! bottleneck has shifted from the vSwitch to the VM kernel stack"
//! (abstract; §6.2.2). The kernel model captures the two effects Fig. 10
//! shows: per-core connection-handling capacity, and *sub-linear scaling*
//! with vCPU count caused by kernel locks and connection-management
//! limits.
//!
//! Effective capacity: `cps(n) = per_core_cps × n / (1 + contention × (n − 1))`
//! — Amdahl-flavored saturation. With the testbed defaults
//! (`per_core_cps = 30 K`, `contention = 0.055`), a 64-core VM saturates
//! near 430 K CPS ≈ 3.3× the default vSwitch's O(130 K) capacity, which is
//! exactly where Fig. 9's CPS curve plateaus.

use nezha_sim::resources::{CpuOutcome, CpuServer};
use nezha_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of a VM's kernel capacity.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VmConfig {
    /// Number of vCPU cores.
    pub vcpus: u32,
    /// Connections per second a single uncontended core can handle.
    pub per_core_cps: f64,
    /// Kernel contention factor (locks, listen-queue serialization).
    pub contention: f64,
    /// Kernel work per connection, expressed in abstract cycles; combined
    /// with the effective capacity this sets the service rate.
    pub cycles_per_conn: u64,
    /// Fraction of a connection's kernel work charged per packet (a
    /// connection is several packets; spreading the charge keeps the
    /// packet-level simulation smooth).
    pub packets_per_conn: u32,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            vcpus: 64,
            per_core_cps: 53_700.0,
            contention: 0.055,
            cycles_per_conn: 1_000_000,
            packets_per_conn: 7,
        }
    }
}

impl VmConfig {
    /// A testbed VM with the given core count (Fig. 10's sweep variable).
    pub fn with_vcpus(vcpus: u32) -> Self {
        VmConfig {
            vcpus,
            ..Default::default()
        }
    }

    /// The kernel's saturating CPS capacity for this configuration.
    pub fn kernel_cps_capacity(&self) -> f64 {
        let n = self.vcpus as f64;
        self.per_core_cps * n / (1.0 + self.contention * (n - 1.0))
    }
}

/// A VM instance: a kernel CPU server scaled to the saturating capacity.
#[derive(Debug)]
pub struct VmModel {
    cfg: VmConfig,
    kernel: CpuServer,
    accepted_conns: u64,
    dropped_pkts: u64,
}

impl VmModel {
    /// Builds a VM from its configuration.
    pub fn new(cfg: VmConfig) -> Self {
        // Size the kernel server so that exactly `kernel_cps_capacity`
        // connections/second saturate it.
        let hz = (cfg.kernel_cps_capacity() * cfg.cycles_per_conn as f64) as u64;
        VmModel {
            cfg,
            kernel: CpuServer::new(1, hz.max(1), SimDuration::from_millis(5)),
            accepted_conns: 0,
            dropped_pkts: 0,
        }
    }

    /// The VM's configuration.
    pub fn config(&self) -> &VmConfig {
        &self.cfg
    }

    /// Charges the kernel for one delivered packet of a connection.
    /// Returns when the kernel is done with it, or `None` if the kernel
    /// queue overflowed (listen-queue drop).
    pub fn deliver_packet(&mut self, now: SimTime) -> Option<SimTime> {
        let cycles = self.cfg.cycles_per_conn / self.cfg.packets_per_conn as u64;
        match self.kernel.offer(now, cycles) {
            CpuOutcome::Done { done_at } => Some(done_at),
            CpuOutcome::Dropped => {
                self.dropped_pkts += 1;
                None
            }
        }
    }

    /// Records a fully completed connection.
    pub fn conn_completed(&mut self) {
        self.accepted_conns += 1;
    }

    /// `(completed connections, kernel-dropped packets)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.accepted_conns, self.dropped_pkts)
    }

    /// Kernel utilization over its trailing window.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.kernel.utilization(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_saturates_with_cores() {
        let c8 = VmConfig::with_vcpus(8).kernel_cps_capacity();
        let c16 = VmConfig::with_vcpus(16).kernel_cps_capacity();
        let c32 = VmConfig::with_vcpus(32).kernel_cps_capacity();
        let c64 = VmConfig::with_vcpus(64).kernel_cps_capacity();
        assert!(c8 < c16 && c16 < c32 && c32 < c64, "monotone");
        // Sub-linear: doubling cores must yield well under 2x.
        assert!(c16 / c8 < 1.8);
        assert!(c64 / c32 < 1.5);
    }

    #[test]
    fn testbed_vm_plateaus_near_3_3x_vswitch_capacity() {
        // Fig. 9: CPS improvement plateaus ≈3.3x once the VM becomes the
        // bottleneck. The 64-core default must land in [3.0, 3.7]x of the
        // default vSwitch's nominal CPS.
        let vm = VmConfig::default().kernel_cps_capacity();
        let vs = nezha_vswitch::VSwitchConfig::default().nominal_cps(64, 100, 0);
        let ratio = vm / vs;
        assert!(
            (3.0..3.7).contains(&ratio),
            "VM/vSwitch capacity ratio {ratio}"
        );
    }

    #[test]
    fn kernel_admits_at_capacity_and_drops_beyond() {
        let cfg = VmConfig::with_vcpus(8);
        let cap = cfg.kernel_cps_capacity();
        let mut vm = VmModel::new(cfg);
        // Offer 2x capacity worth of per-packet work for 100 ms.
        let pkt_rate = 2.0 * cap * cfg.packets_per_conn as f64;
        let dt = SimDuration::from_secs_f64(1.0 / pkt_rate);
        let mut t = SimTime(0);
        let mut delivered = 0u64;
        let total = (pkt_rate * 0.1) as u64;
        for _ in 0..total {
            if vm.deliver_packet(t).is_some() {
                delivered += 1;
            }
            t += dt;
        }
        let frac = delivered as f64 / total as f64;
        assert!(
            (0.4..0.7).contains(&frac),
            "at 2x overload roughly half the packets should survive, got {frac}"
        );
        assert!(vm.counters().1 > 0);
    }

    #[test]
    fn underload_delivers_everything() {
        let cfg = VmConfig::with_vcpus(8);
        let cap = cfg.kernel_cps_capacity();
        let mut vm = VmModel::new(cfg);
        let pkt_rate = 0.5 * cap * cfg.packets_per_conn as f64;
        let dt = SimDuration::from_secs_f64(1.0 / pkt_rate);
        let mut t = SimTime(0);
        for _ in 0..1000 {
            assert!(vm.deliver_packet(t).is_some());
            t += dt;
        }
        assert_eq!(vm.counters().1, 0);
        vm.conn_completed();
        assert_eq!(vm.counters().0, 1);
        assert!(vm.utilization(t) > 0.0);
    }
}

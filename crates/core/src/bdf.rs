//! BDF-number management for massive-vNIC VMs (§7.4).
//!
//! Once Nezha removes the vSwitch-memory limit on #vNICs, the next
//! bottleneck is PCI addressing: every vNIC needs a bus/device/function
//! (BDF) number, and without SR-IOV/SIOV only the 8-bit bus field varies
//! — 256 numbers, most consumed by essential functions (storage,
//! compute, encryption), leaving "only a few dozen" for vNICs.
//!
//! Two escape hatches, both modeled here:
//! * **I/O device virtualization** (SR-IOV/SIOV): the 5-bit device and
//!   3-bit function fields open up, adding 256 more numbers — but it
//!   requires virtio ≥ 1.1 on the adapter.
//! * **Child vNICs**: many logical vNICs bound to one adapter vNIC,
//!   distinguished by VLAN tags; effectively unlimited numbers at the
//!   cost of sharing the parent's I/O bandwidth.

use serde::{Deserialize, Serialize};

/// How a vNIC attaches to the VM's I/O space.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum VnicAttachment {
    /// Its own BDF number.
    Direct {
        /// The allocated BDF (bus<<8 | device<<3 | function).
        bdf: u16,
    },
    /// A child bound to a parent adapter, distinguished by a VLAN tag.
    Child {
        /// The parent's BDF.
        parent_bdf: u16,
        /// The VLAN tag carrying this child's traffic.
        vlan: u16,
    },
}

/// Errors from BDF allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BdfError {
    /// Every BDF number (and, if disallowed, child slot) is taken.
    Exhausted,
}

impl std::fmt::Display for BdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no BDF numbers (or child slots) left")
    }
}

impl std::error::Error for BdfError {}

/// The per-VM BDF allocator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BdfAllocator {
    /// SR-IOV / SIOV available (virtio >= 1.1): device+function fields
    /// usable, adding 256 more numbers (§7.4).
    pub sriov: bool,
    /// Whether child vNICs may share adapters.
    pub allow_children: bool,
    /// Maximum children per parent adapter (VLAN-tag budget per port).
    pub children_per_parent: u16,
    /// BDF numbers consumed by essential functions (storage, compute,
    /// encryption — "most of which are allocated to essential functions").
    pub reserved: u16,
    allocated: u16,
    children: Vec<(u16, u16)>, // (parent_bdf, children_count)
}

impl BdfAllocator {
    /// Base BDF capacity without I/O virtualization: the 8-bit bus field.
    pub const BASE_CAPACITY: u16 = 256;
    /// Extra numbers unlocked by SR-IOV/SIOV: device (5b) × function (3b).
    pub const SRIOV_EXTRA: u16 = 256;

    /// A VM with typical essential-function pressure: a couple hundred
    /// BDFs already spoken for, a few dozen free (§7.4).
    pub fn new(sriov: bool, allow_children: bool) -> Self {
        BdfAllocator {
            sriov,
            allow_children,
            children_per_parent: 64,
            reserved: 220,
            allocated: 0,
            children: Vec::new(),
        }
    }

    /// Total direct BDF numbers available to vNICs.
    pub fn direct_capacity(&self) -> u16 {
        let total = Self::BASE_CAPACITY + if self.sriov { Self::SRIOV_EXTRA } else { 0 };
        total.saturating_sub(self.reserved)
    }

    /// Direct numbers still free.
    pub fn direct_free(&self) -> u16 {
        self.direct_capacity().saturating_sub(self.allocated)
    }

    /// Allocates an attachment for one more vNIC: direct while numbers
    /// last, then child slots (when allowed).
    pub fn allocate(&mut self) -> Result<VnicAttachment, BdfError> {
        if self.allocated < self.direct_capacity() {
            let bdf = self.reserved + self.allocated;
            self.allocated += 1;
            // A direct vNIC can later parent children.
            self.children.push((bdf, 0));
            return Ok(VnicAttachment::Direct { bdf });
        }
        if self.allow_children {
            if let Some(slot) = self
                .children
                .iter_mut()
                .find(|(_, n)| *n < self.children_per_parent)
            {
                slot.1 += 1;
                return Ok(VnicAttachment::Child {
                    parent_bdf: slot.0,
                    vlan: slot.1,
                });
            }
        }
        Err(BdfError::Exhausted)
    }

    /// Maximum vNICs this configuration supports.
    pub fn max_vnics(&self) -> u32 {
        let direct = self.direct_capacity() as u32;
        if self.allow_children {
            direct + direct * self.children_per_parent as u32
        } else {
            direct
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_vm_has_only_a_few_dozen_vnic_slots() {
        // §7.4: "a VM is limited to 256 BDF numbers, most of which are
        // allocated to essential functions, leaving only a few dozen".
        let a = BdfAllocator::new(false, false);
        assert_eq!(a.direct_capacity(), 36);
        assert!(a.direct_capacity() < 64);
    }

    #[test]
    fn sriov_adds_256_numbers() {
        let plain = BdfAllocator::new(false, false);
        let sriov = BdfAllocator::new(true, false);
        assert_eq!(
            sriov.direct_capacity() - plain.direct_capacity(),
            BdfAllocator::SRIOV_EXTRA
        );
    }

    #[test]
    fn allocation_exhausts_then_errors() {
        let mut a = BdfAllocator::new(false, false);
        let cap = a.direct_capacity();
        for _ in 0..cap {
            assert!(matches!(a.allocate(), Ok(VnicAttachment::Direct { .. })));
        }
        assert_eq!(a.allocate(), Err(BdfError::Exhausted));
        assert_eq!(a.direct_free(), 0);
    }

    #[test]
    fn children_extend_past_bdf_exhaustion() {
        let mut a = BdfAllocator::new(false, true);
        let cap = a.direct_capacity() as u32;
        // Fill direct slots, then a thousand children.
        for _ in 0..cap {
            a.allocate().unwrap();
        }
        let mut children = 0;
        for _ in 0..1_000 {
            match a.allocate() {
                Ok(VnicAttachment::Child { parent_bdf, vlan }) => {
                    children += 1;
                    assert!(vlan >= 1 && vlan <= a.children_per_parent);
                    assert!(parent_bdf >= a.reserved);
                }
                other => panic!("expected child, got {other:?}"),
            }
        }
        assert_eq!(children, 1_000);
        // O(1K) vNICs on one VM, as production needs (§6.3.1).
        assert!(a.max_vnics() > 1_000);
    }

    #[test]
    fn vlans_are_unique_per_parent() {
        let mut a = BdfAllocator::new(false, true);
        for _ in 0..a.direct_capacity() {
            a.allocate().unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            if let Ok(VnicAttachment::Child { parent_bdf, vlan }) = a.allocate() {
                assert!(seen.insert((parent_bdf, vlan)), "duplicate tag");
            }
        }
    }

    #[test]
    fn sriov_plus_children_reaches_tens_of_thousands() {
        let a = BdfAllocator::new(true, true);
        assert!(a.max_vnics() > 10_000);
    }
}

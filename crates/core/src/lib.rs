//! # nezha-core
//!
//! The paper's contribution: **Nezha**, a distributed vSwitch load-sharing
//! system that offloads the *stateless* rule tables and cached flows of a
//! high-demand vNIC to a pool of idle SmartNICs (frontends, FEs) while
//! keeping all session state local in a single copy (the backend, BE).
//!
//! The crate provides two simulation fidelities backed by the same
//! resource models:
//!
//! * [`cluster`] — a packet-level testbed: every packet traverses real
//!   BE/FE code paths with NSH encapsulation, CPU/memory charging, fabric
//!   latency, connection scripts and VM-kernel modeling. Used for the
//!   paper's testbed experiments (Figs. 9–12, 14) and all integration
//!   tests.
//! * [`region`] — a flow-level (fluid) region: O(10K) vSwitches with
//!   heavy-tailed tenant demand, controller thresholds, offload/scale
//!   events and overload counting at month timescales. Used for the
//!   production experiments (Figs. 2–4, 13; Tables 1, 3, 4; Appendix B.2).
//!
//! Module map:
//! * [`gateway`] — the versioned vNIC→server table with the 200 ms
//!   learning interval that forces Nezha's dual-running stage;
//! * [`fe`] / [`be`] — the frontend (rules + cached flows, stateless) and
//!   backend (state only) roles;
//! * [`vm`] — the VM kernel model whose saturation produces Fig. 10;
//! * [`conn`] — TCP_CRR-style connection scripts driven through the fabric;
//! * [`cluster`] — the event-driven world tying everything together:
//!   construction and accessors live here, while the per-packet BE/FE
//!   handlers live in the private `datapath` module (`dispatch` demux,
//!   `be`/`fe` handlers, and the `HandlerCtx` cross-cutting layer —
//!   lint rule D7 keeps telemetry access behind it), configuration in
//!   [`config`], instrument registration in [`telemetry`], and
//!   connection-script driving in the private `driver` module;
//! * [`controller`] — offload/fallback/scale-out/scale-in per Fig. 8;
//! * [`monitor`] — ping-polling crash detection and ≤2 s failover;
//! * [`migration`] — the VM live-migration cost model (Fig. A1);
//! * [`bdf`] — BDF-number management for massive-vNIC VMs (§7.4);
//! * [`region`] — the fluid region simulator.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bdf;
pub mod be;
pub mod cluster;
#[cfg(test)]
mod cluster_tests;
pub mod config;
pub mod conn;
pub mod controller;
mod datapath;
mod driver;
pub mod fe;
pub mod gateway;
pub mod migration;
pub mod monitor;
pub mod region;
pub mod telemetry;
pub mod vm;

pub use be::{BackendMeta, OffloadPhase};
pub use cluster::{Cluster, ClusterConfig, Event, LbMode};
pub use config::{ClusterConfigBuilder, ConfigOp};
pub use conn::{ConnKind, ConnSpec};
pub use controller::ControllerConfig;
pub use fe::FrontEnd;
pub use gateway::Gateway;
pub use telemetry::ClusterStats;
pub use vm::VmModel;

//! Property tests of the control-plane components: gateway convergence,
//! BDF allocation, backend-metadata invariants, and region monotonicity.

use nezha_core::bdf::{BdfAllocator, VnicAttachment};
use nezha_core::be::BackendMeta;
use nezha_core::gateway::Gateway;
use nezha_core::region::{Region, RegionConfig};
use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{FiveTuple, Ipv4Addr, ServerId, SessionKey, VpcId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// After any sequence of gateway updates, every sender converges to
    /// the final mapping within one learning interval of the last update,
    /// and never resolves to a server outside {previous ∪ current}.
    #[test]
    fn gateway_converges_within_learning_interval(
        updates in prop::collection::vec((prop::collection::vec(0u32..32, 1..5), 0u64..5_000), 1..8),
        senders in prop::collection::vec(0u32..64, 1..10),
    ) {
        let li = SimDuration::from_millis(200);
        let mut g = Gateway::new(li);
        let addr = Ipv4Addr::new(10, 0, 0, 1);
        let mut t = SimTime(0);
        let mut last_servers = Vec::new();
        let mut prev_servers: Vec<ServerId> = Vec::new();
        for (servers, gap_ms) in &updates {
            t += SimDuration::from_millis(*gap_ms);
            prev_servers = last_servers.clone();
            last_servers = servers.iter().map(|s| ServerId(*s)).collect();
            g.update(addr, last_servers.clone(), t);
        }
        // Mid-learning: only previous or current servers ever appear.
        for &s in &senders {
            if let Some(pick) = g.select(addr, ServerId(s), 7, t) {
                prop_assert!(
                    last_servers.contains(&pick)
                        || prev_servers.contains(&pick)
                        || prev_servers.is_empty(),
                    "sender {s} resolved {pick} outside prev/current"
                );
            }
        }
        // One interval later: everyone sees the final mapping.
        let settled = t + li;
        for &s in &senders {
            let pick = g.select(addr, ServerId(s), 7, settled).unwrap();
            prop_assert!(last_servers.contains(&pick));
        }
    }

    /// BDF allocation: attachments are unique, direct allocations never
    /// exceed capacity, and the allocator reports exhaustion exactly when
    /// `max_vnics` is reached.
    #[test]
    fn bdf_allocations_are_unique_until_exhaustion(
        sriov in prop::bool::ANY,
        children in prop::bool::ANY,
        want in 1u32..3_000,
    ) {
        let mut a = BdfAllocator::new(sriov, children);
        let mut seen = std::collections::HashSet::new();
        let mut granted = 0u32;
        for _ in 0..want {
            match a.allocate() {
                Ok(att) => {
                    granted += 1;
                    let key = match att {
                        VnicAttachment::Direct { bdf } => (bdf, 0u16),
                        VnicAttachment::Child { parent_bdf, vlan } => (parent_bdf, vlan),
                    };
                    prop_assert!(seen.insert(key), "duplicate attachment {key:?}");
                }
                Err(_) => break,
            }
        }
        prop_assert_eq!(granted, want.min(a.max_vnics()));
    }

    /// BackendMeta: any interleaving of add/ready/remove keeps `ready ⊆
    /// fe_list`, selection only returns ready members, and pinned flows
    /// never select a removed FE.
    #[test]
    fn backend_meta_invariants(ops in prop::collection::vec((0u8..3, 0u32..8), 1..60)) {
        let mut be = BackendMeta::new(SimTime(0));
        let key = SessionKey::of(
            VpcId(1),
            FiveTuple::tcp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
        );
        for (op, s) in ops {
            let fe = ServerId(s);
            match op {
                0 => be.add_fe(fe),
                1 => be.mark_ready(fe),
                _ => {
                    be.remove_fe(fe);
                }
            }
            for r in be.ready_fes() {
                prop_assert!(be.fe_list.contains(r), "ready member not in fe_list");
            }
            if let Some(pick) = be.select_fe(&key, 5) {
                prop_assert!(be.ready_fes().contains(&pick));
            }
        }
    }

    /// Region monotonicity: enabling Nezha never increases total
    /// overloads, and #vNIC overloads are always zero under Nezha.
    #[test]
    fn region_nezha_never_hurts(seed in 0u64..50) {
        let cfg = RegionConfig {
            servers: 600,
            spike_prob: 0.05,
            seed,
            epoch: SimDuration::from_secs(6 * 3600),
            ..RegionConfig::default()
        };
        let before = Region::new(cfg).run_days(2, false);
        let after = Region::new(cfg).run_days(2, true);
        let (b1, b2, b3) = before.totals();
        let (a1, a2, a3) = after.totals();
        prop_assert!(a1 + a2 + a3 <= b1 + b2 + b3, "Nezha increased overloads");
        prop_assert_eq!(a3, 0, "vNIC overloads must vanish");
    }
}

//! The timing-segregation contract of [`BenchReport`]: two same-seed
//! runs must agree **byte-for-byte** on the deterministic payload even
//! though their wall-clock sections differ — that is what lets
//! `scripts/bench_gate.sh` diff the payload exactly while applying only
//! a tolerance threshold to speed.

use nezha_core::cluster::{Cluster, ClusterConfig};
use nezha_core::conn::{ConnKind, ConnSpec};
use nezha_core::vm::VmConfig;
use nezha_sim::report::{reports_json, BenchReport, BENCH_SCHEMA_VERSION};
use nezha_sim::time::{SimDuration, SimTime};
use nezha_sim::topology::TopologyConfig;
use nezha_types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha_vswitch::vnic::{Vnic, VnicProfile};

/// A scaled-down copy of the `bench` experiment's measurement shape:
/// drive a seeded cluster, then fold its counters into a report whose
/// deterministic section is a pure function of the seed and whose timing
/// section carries genuine wall-clock observations.
fn mini_bench(seed: u64) -> BenchReport {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 8,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .auto(false)
        .seed(seed)
        .build();
    let mut c = Cluster::new(cfg);
    let mut vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    vnic.allow_inbound_port(9000);
    c.add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(64))
        .unwrap();
    c.trigger_offload(VnicId(1), SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(2));
    for i in 0..120u32 {
        c.add_conn(ConnSpec {
            vnic: VnicId(1),
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 100) as u8 + 1),
                (2048 + i) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            ),
            peer_server: ServerId(8 + i % 8),
            kind: ConnKind::Inbound,
            start: c.now() + SimDuration::from_micros(500 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    let wall_start = std::time::Instant::now();
    c.run_until(c.now() + SimDuration::from_secs(2));
    let wall = wall_start.elapsed().as_secs_f64();
    let stats = c.stats();
    BenchReport::new("bench.mini")
        .config("seed", seed)
        .metric("events_processed", c.engine.processed() as f64, "events")
        .metric("conns_completed", stats.completed as f64, "conns")
        .metric("pkts_dropped", stats.pkts.dropped as f64, "pkts")
        .timing("wall_seconds", wall, "s")
        .timing(
            "events_per_wall_sec",
            c.engine.processed() as f64 / wall.max(1e-9),
            "1/s",
        )
}

#[test]
fn same_seed_reports_identical_modulo_timing() {
    let a = mini_bench(0x4e5a_2026);
    let b = mini_bench(0x4e5a_2026);
    // The deterministic payload is byte-identical across runs...
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    // ...and is genuinely non-trivial.
    assert!(a.get("events_processed").unwrap() > 0.0);
    assert!(a.get("conns_completed").unwrap() > 0.0);
    // Wall-clock observations live only in the timing section: stripping
    // it must erase every difference two runs can legitimately have.
    assert_eq!(a.timing_samples().len(), 2);
    assert!(a
        .deterministic_samples()
        .iter()
        .all(|s| !s.name.contains("wall")));
}

#[test]
fn different_seed_changes_deterministic_payload() {
    let a = mini_bench(0x4e5a_2026);
    let b = mini_bench(0x4e5a_2027);
    assert_ne!(
        a.deterministic_json(),
        b.deterministic_json(),
        "different seeds must not collide on the behavior checksum"
    );
}

#[test]
fn reports_json_is_schema_versioned() {
    let doc = reports_json("pre-optimization", &[mini_bench(1)]);
    assert!(doc.contains(&format!("\"schema_version\": {BENCH_SCHEMA_VERSION}")));
    assert!(doc.contains("\"phase\": \"pre-optimization\""));
    assert!(doc.contains("\"deterministic\": {"));
    assert!(doc.contains("\"timing\": {"));
}

//! Ablations of Nezha's design choices, beyond the paper's own figures.
//!
//! DESIGN.md commits to exercising the choices the paper argues for in
//! prose; each ablation here flips exactly one of them and measures the
//! cost the paper predicts:
//!
//! 1. **flow-level vs packet-level load balancing** (§3.2.3): per-packet
//!    spreading duplicates rule lookups and cached flows across FEs;
//! 2. **notify suppression** (§3.2.2): notifying on every FE miss instead
//!    of only when rule-table-involved state differs floods the BE;
//! 3. **dual-running stage** (§4.2.1): deleting the BE's tables before
//!    peers learn the FE mapping forces in-flight packets onto the bounce
//!    path, adding detours during activation;
//! 4. **variable-length states** (§7.1): the measured state census implies
//!    the #concurrent-flow headroom the paper projects.

use crate::experiments::harness::{self, TestbedOpts};
use crate::output::*;
use nezha_core::cluster::{Cluster, LbMode};
use nezha_core::conn::{ConnKind, ConnSpec};
use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{FiveTuple, Ipv4Addr, ServerId, SessionState, VpcId};

/// Runs all ablations.
pub fn run() {
    banner(
        "Ablations",
        "Design-choice studies (beyond the paper's figures)",
    );
    lb_granularity();
    notify_suppression();
    dual_running();
    variable_state();
}

fn drive(c: &mut Cluster, conns: u32) {
    let t = c.now();
    for i in 0..conns {
        c.add_conn(ConnSpec {
            vnic: harness::VNIC,
            vpc: VpcId(1),
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                (1024 + i / 200 * 211 + i % 200) as u16,
                harness::SERVICE_ADDR,
                harness::SERVICE_PORT,
            ),
            peer_server: harness::client_servers()[(i % 8) as usize],
            kind: ConnKind::Inbound,
            start: t + SimDuration::from_micros(500 * i as u64),
            payload: 100,
            overlay_encap_src: None,
        })
        .unwrap();
    }
    c.run_until(c.now() + SimDuration::from_secs(4));
}

fn fresh(f: impl FnOnce(&mut nezha_core::ClusterConfig)) -> Cluster {
    let mut cfg = harness::testbed(TestbedOpts::scaled()).cfg;
    f(&mut cfg);
    let mut c = Cluster::new(cfg);
    let mut vnic = nezha_vswitch::vnic::Vnic::new(
        harness::VNIC,
        harness::VPC,
        harness::SERVICE_ADDR,
        nezha_vswitch::vnic::VnicProfile::default(),
        harness::HOME,
    );
    vnic.allow_inbound_port(harness::SERVICE_PORT);
    c.add_vnic(vnic, harness::HOME, nezha_core::vm::VmConfig::default())
        .unwrap();
    c
}

fn offloaded(f: impl FnOnce(&mut nezha_core::ClusterConfig)) -> Cluster {
    let mut c = fresh(f);
    c.trigger_offload(harness::VNIC, SimTime::ZERO).unwrap();
    c.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    c
}

fn lb_granularity() {
    println!();
    println!("  (1) flow-level vs packet-level FE load balancing (§3.2.3)");
    let widths = [16usize, 12, 14, 14];
    header(
        &["mode", "completed", "FE lookups", "cached flows"],
        &widths,
    );
    for (name, mode) in [
        ("flow-level", LbMode::FlowLevel),
        ("packet-level", LbMode::PacketLevel),
    ] {
        let mut c = offloaded(|cfg| cfg.lb_mode = mode);
        drive(&mut c, 1_000);
        let (mut lookups, mut cached) = (0u64, 0usize);
        for fe in c.fe_servers(harness::VNIC) {
            let (_, misses, _) = c.fe_counters(fe, harness::VNIC).unwrap();
            lookups += misses;
            cached += c.fe_cached_flows(fe, harness::VNIC).unwrap();
        }
        let snap = c.metrics().snapshot();
        row(
            &[
                name.to_string(),
                snap.counter("conn.completed").to_string(),
                lookups.to_string(),
                cached.to_string(),
            ],
            &widths,
        );
        emit_snapshot(&format!("ablation_lb_{name}"), &snap);
    }
    println!("  -> packet-level spreads each session over every FE: ~4x the rule");
    println!("     lookups and ~4x the cached-flow memory for identical goodput");
}

fn notify_suppression() {
    println!();
    println!("  (2) notify-packet suppression (§3.2.2)");
    let widths = [22usize, 12, 12];
    header(&["policy", "notifies", "completed"], &widths);
    for (id, name, always) in [
        ("differs_only", "differs-only (Nezha)", false),
        ("every_miss", "every miss", true),
    ] {
        let mut c = offloaded(|cfg| cfg.notify_always = always);
        // Outbound connections: the TX workflow is where notify packets
        // arise (§3.2.2) — the first packet reaches the FE from the BE.
        let t = c.now();
        for i in 0..1_000u32 {
            c.add_conn(ConnSpec {
                vnic: harness::VNIC,
                vpc: VpcId(1),
                tuple: FiveTuple::tcp(
                    harness::SERVICE_ADDR,
                    40_000 + (i % 20_000) as u16,
                    Ipv4Addr::new(10, 7, 3, (i % 200) as u8 + 1),
                    443,
                ),
                peer_server: harness::client_servers()[(i % 8) as usize],
                kind: ConnKind::Outbound,
                start: t + SimDuration::from_micros(500 * i as u64),
                payload: 100,
                overlay_encap_src: None,
            })
            .unwrap();
        }
        c.run_until(c.now() + SimDuration::from_secs(4));
        let snap = c.metrics().snapshot();
        row(
            &[
                name.to_string(),
                snap.counter("nsh.notifies").to_string(),
                snap.counter("conn.completed").to_string(),
            ],
            &widths,
        );
        emit_snapshot(&format!("ablation_notify_{id}"), &snap);
    }
    println!("  -> suppressing no-change notifies removes one BE interrupt per new");
    println!("     flow with no loss of state fidelity");
}

fn dual_running() {
    println!();
    println!("  (3) the dual-running stage (§4.2.1)");
    let widths = [22usize, 14, 12, 12];
    header(
        &["transition", "stale bounces", "completed", "failed"],
        &widths,
    );
    for (id, name, skip) in [
        ("dual_running", "dual-running (Nezha)", false),
        ("immediate_teardown", "immediate teardown", true),
    ] {
        // Drive traffic *across* the transition: start conns first, then
        // trigger the offload while they flow.
        let mut c = fresh(|cfg| cfg.skip_dual_running = skip);
        // 2000 conns spanning 0..2s; offload triggers at 100ms.
        let t0 = SimTime::ZERO;
        for i in 0..2000u32 {
            c.add_conn(ConnSpec {
                vnic: harness::VNIC,
                vpc: VpcId(1),
                tuple: FiveTuple::tcp(
                    Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                    (1024 + i / 200 * 211 + i % 200) as u16,
                    harness::SERVICE_ADDR,
                    harness::SERVICE_PORT,
                ),
                peer_server: ServerId(16 + (i % 8)),
                kind: ConnKind::Inbound,
                start: t0 + SimDuration::from_micros(1000 * i as u64),
                payload: 100,
                overlay_encap_src: None,
            })
            .unwrap();
        }
        c.run_until(t0 + SimDuration::from_millis(100));
        c.trigger_offload(harness::VNIC, c.now()).unwrap();
        c.run_until(t0 + SimDuration::from_secs(6));
        let snap = c.metrics().snapshot();
        row(
            &[
                name.to_string(),
                snap.counter("pkt.stale_bounces").to_string(),
                snap.counter("conn.completed").to_string(),
                snap.counter("conn.failed").to_string(),
            ],
            &widths,
        );
        emit_snapshot(&format!("ablation_dual_{id}"), &snap);
    }
    println!("  -> without the dual-running stage, every in-flight packet that");
    println!("     still targets the BE takes an extra bounce through an FE");
}

fn variable_state() {
    println!();
    println!("  (4) variable-length states (§7.1)");
    // Census a realistic state mix, then project the capacity uplift a
    // variable-length layout would buy over the fixed 64 B slab.
    // A production-like mix: overwhelmingly plain tracked connections,
    // small minorities behind LBs (decap) or under flow logging (stats).
    let mut mean = 0.0;
    let mut n = 0.0;
    for (weight, decap, stats) in [
        (0.88, false, false),
        (0.07, true, false),
        (0.05, false, true),
    ] {
        let mut s = SessionState {
            first_dir: Some(nezha_types::Direction::Tx),
            tcp: nezha_types::TcpState::Established,
            ..SessionState::default()
        };
        if decap {
            s.decap = Some(nezha_types::StatefulDecapState {
                overlay_src: Ipv4Addr::new(100, 64, 0, 1),
            });
        }
        if stats {
            s.stats.policy = 1;
        }
        mean += weight * s.used_bytes() as f64;
        n += weight;
    }
    mean /= n;
    println!(
        "  census mean {mean:.1} B vs the 64 B slab -> up to {:.1}x more states in",
        64.0 / mean
    );
    println!("  the same memory (paper: \"the improvement could be up to 8X\")");
}

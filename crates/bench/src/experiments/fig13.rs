//! Fig. 13 — daily vSwitch overload occurrences before/after Nezha.
//!
//! Paper: across two regions, Nezha mitigates >99.9% of overloads caused
//! by CPS and #concurrent flows and completely prevents #vNIC overloads;
//! the small residue comes from offloading's ~2 s activation racing the
//! fastest spikes.

use crate::output::*;
use nezha_core::region::{Region, RegionConfig};

/// Runs the experiment.
pub fn run() {
    banner(
        "Fig. 13",
        "Daily overload occurrence before/after Nezha (two regions)",
    );
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    for (region_name, seed) in [("region A", 131u64), ("region B", 132u64)] {
        let cfg = RegionConfig {
            servers: 10_000,
            spike_prob: 0.02,
            seed,
            ..RegionConfig::default()
        };
        let before = Region::new(cfg).run_days(30, false);
        let after = Region::new(cfg).run_days(30, true);
        let (b_cps, b_flows, b_vnics) = before.totals();
        let (a_cps, a_flows, a_vnics) = after.totals();

        println!();
        println!("  {region_name} (30 days before / 30 days after):");
        header(
            &["cause", "before/day", "after/day", "mitigated"],
            &[18, 12, 12, 10],
        );
        for (name, b, a) in [
            ("CPS", b_cps, a_cps),
            ("#concurrent flows", b_flows, a_flows),
            ("#vNICs", b_vnics, a_vnics),
        ] {
            let mitigated = if b == 0 {
                "-".to_string()
            } else {
                pct(1.0 - a as f64 / b as f64)
            };
            row(
                &[
                    name.to_string(),
                    format!("{:.1}", b as f64 / 30.0),
                    format!("{:.2}", a as f64 / 30.0),
                    mitigated,
                ],
                &[18, 12, 12, 10],
            );
        }
        let total_mitigated =
            1.0 - (a_cps + a_flows + a_vnics) as f64 / (b_cps + b_flows + b_vnics).max(1) as f64;
        println!(
            "  total mitigation: {} (paper: >99.9% for CPS/flows, 100% for #vNICs)",
            pct(total_mitigated)
        );
        assert_eq!(a_vnics, 0, "vNIC overloads must be fully prevented");
        let labels = [("region", region_name.to_string())];
        reg.add(
            reg.counter("fig13.overloads_before", &labels),
            b_cps + b_flows + b_vnics,
        );
        reg.add(
            reg.counter("fig13.overloads_after", &labels),
            a_cps + a_flows + a_vnics,
        );
        reg.set(reg.gauge("fig13.mitigated_share", &labels), total_mitigated);
    }
    emit_snapshot("fig13", &reg.snapshot());
}

//! Appendix B.2 — production validation of the 4-FE initial pool size.
//!
//! Paper, 30 days on a cluster of tens of thousands of servers: 2 499
//! offload events provisioned 10 062 FEs in total — i.e. ≈66 scale-out
//! additions beyond the initial 4 per offload, so at most 2.6% of pools
//! ever scaled out. We run the fluid region for 30 days and report the
//! same three numbers.

use crate::output::*;
use nezha_core::region::{Region, RegionConfig};

/// Runs the experiment.
pub fn run() {
    banner(
        "Appendix B.2",
        "Offload events vs. FEs provisioned over 30 days",
    );
    let mut region = Region::new(RegionConfig {
        servers: 20_000,
        spike_prob: 0.004,
        seed: 0xb2,
        ..RegionConfig::default()
    });
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    region.attach_metrics(&reg);
    let report = region.run_days(30, true);
    let per_offload = report.total_fes_provisioned as f64 / report.offload_events.max(1) as f64;
    let scaled_frac = report.scale_out_events as f64 / report.offload_events.max(1) as f64;

    header(&["quantity", "measured", "paper"], &[28, 12, 12]);
    for (name, v, p) in [
        (
            "offload events",
            report.offload_events.to_string(),
            "2499".to_string(),
        ),
        (
            "total FEs provisioned",
            report.total_fes_provisioned.to_string(),
            "10062".to_string(),
        ),
        (
            "scale-out additions",
            report.scale_out_events.to_string(),
            "≤66".to_string(),
        ),
        (
            "FEs per offload",
            format!("{per_offload:.3}"),
            "4.026".to_string(),
        ),
        (
            "pools that scaled out",
            pct(scaled_frac),
            "≤2.6%".to_string(),
        ),
    ] {
        row(&[name.to_string(), v, p], &[28, 12, 12]);
    }
    assert!(scaled_frac < 0.10, "scale-out ratio {scaled_frac} too high");
    emit_snapshot("appendix_b2", &reg.snapshot());
}

//! Shared testbed construction and CPS measurement for the packet-level
//! experiments (Figs. 9–12, 14).
//!
//! The standard testbed mirrors §6.1: one busy vNIC on server 0 with its
//! service port open, client endpoints on another rack, and a pool of
//! idle vSwitches available as FEs. Experiments that need small absolute
//! rates for tractable runtimes use [`TestbedOpts::scaled`], which
//! shrinks the vSwitch to one core and the VM's per-core CPS
//! proportionally — preserving every *ratio* the figures report while
//! dividing the event count by ~4.

use nezha_core::cluster::{Cluster, ClusterConfig};
use nezha_core::controller::ControllerConfig;
use nezha_core::vm::VmConfig;
use nezha_sim::time::SimDuration;
use nezha_sim::topology::TopologyConfig;
use nezha_types::{Ipv4Addr, ServerId, VnicId, VpcId};
use nezha_vswitch::vnic::{Vnic, VnicProfile};
use nezha_workloads::cps::CpsWorkload;

/// Shared per-dispatch context handed to every [`crate::experiments::Experiment`].
///
/// Holds the testbed options an experiment should build clusters from
/// (CLI configuration mutates these before `run`), so experiments share
/// one way of constructing the §6.1 testbed instead of each hard-wiring
/// its own.
#[derive(Clone, Copy, Debug)]
pub struct Harness {
    /// Options for [`Harness::testbed`]; defaults to the quarter-scale
    /// testbed most experiments use.
    pub opts: TestbedOpts,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness with the scaled-testbed defaults.
    pub fn new() -> Self {
        Harness {
            opts: TestbedOpts::scaled(),
        }
    }

    /// Builds the standard testbed from the current options.
    pub fn testbed(&self) -> Cluster {
        testbed(self.opts)
    }
}

/// The vNIC under test in every packet-level experiment.
pub const VNIC: VnicId = VnicId(1);
/// Its home server.
pub const HOME: ServerId = ServerId(0);
/// Its VPC.
pub const VPC: VpcId = VpcId(1);
/// Its overlay address.
pub const SERVICE_ADDR: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);
/// Its open service port.
pub const SERVICE_PORT: u16 = 9000;

/// Options for the testbed builder.
#[derive(Clone, Copy, Debug)]
pub struct TestbedOpts {
    /// vSwitch cores (1 = scaled-down testbed).
    pub cores: u32,
    /// VM vCPUs.
    pub vcpus: u32,
    /// VM per-core CPS (scaled together with `cores`).
    pub per_core_cps: f64,
    /// Enable automatic offload/scaling.
    pub auto: bool,
    /// Initial FE count for manual offloads.
    pub initial_fes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TestbedOpts {
    fn default() -> Self {
        TestbedOpts {
            cores: 4,
            vcpus: 64,
            per_core_cps: 53_700.0,
            auto: false,
            initial_fes: 4,
            seed: 0x4e5a,
        }
    }
}

impl TestbedOpts {
    /// Starts a fluent [`TestbedOptsBuilder`] from the defaults.
    pub fn builder() -> TestbedOptsBuilder {
        TestbedOptsBuilder::default()
    }

    /// The quarter-scale testbed: 1-core vSwitches + a VM with a quarter
    /// of the kernel capacity. All capacity *ratios* match the full-scale
    /// testbed.
    pub fn scaled() -> Self {
        TestbedOpts::builder()
            .cores(1)
            .per_core_cps(13_425.0)
            .build()
    }
}

/// Fluent builder for [`TestbedOpts`], starting from the defaults.
#[derive(Clone, Copy, Debug, Default)]
pub struct TestbedOptsBuilder {
    opts: TestbedOpts,
}

impl TestbedOptsBuilder {
    /// vSwitch cores (1 = scaled-down testbed).
    pub fn cores(mut self, cores: u32) -> Self {
        self.opts.cores = cores;
        self
    }

    /// VM vCPUs.
    pub fn vcpus(mut self, vcpus: u32) -> Self {
        self.opts.vcpus = vcpus;
        self
    }

    /// VM per-core CPS.
    pub fn per_core_cps(mut self, cps: f64) -> Self {
        self.opts.per_core_cps = cps;
        self
    }

    /// Enables automatic offload/scaling.
    pub fn auto(mut self, auto: bool) -> Self {
        self.opts.auto = auto;
        self
    }

    /// Initial FE count for manual offloads.
    pub fn initial_fes(mut self, fes: usize) -> Self {
        self.opts.initial_fes = fes;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> TestbedOpts {
        self.opts
    }
}

/// Builds the standard testbed.
pub fn testbed(opts: TestbedOpts) -> Cluster {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 16,
            racks_per_pod: 2,
            pods: 1,
            ..TopologyConfig::default()
        })
        .cores(opts.cores)
        .controller(ControllerConfig {
            auto_offload: opts.auto,
            auto_scale: opts.auto,
            initial_fes: opts.initial_fes,
            min_fes: opts.initial_fes.min(4),
            ..ControllerConfig::default()
        })
        .seed(opts.seed)
        .build();
    let mut cluster = Cluster::new(cfg);
    let mut vnic = Vnic::new(VNIC, VPC, SERVICE_ADDR, VnicProfile::default(), HOME);
    vnic.allow_inbound_port(SERVICE_PORT);
    cluster
        .add_vnic(
            vnic,
            HOME,
            VmConfig {
                vcpus: opts.vcpus,
                per_core_cps: opts.per_core_cps,
                ..VmConfig::default()
            },
        )
        .unwrap();
    cluster
}

/// Client endpoints on the second rack.
pub fn client_servers() -> Vec<ServerId> {
    (16..24).map(ServerId).collect()
}

/// Result of one CPS measurement.
#[derive(Clone, Copy, Debug)]
pub struct CpsResult {
    /// Goodput: completed connections per second in the window.
    pub cps: f64,
    /// Offered rate.
    pub offered: f64,
    /// Packet loss rate across the run.
    pub loss_rate: f64,
}

/// Offers `rate` TCP_CRR connections/second for `warmup + window`, and
/// measures goodput during the window.
pub fn measure_cps(
    cluster: &mut Cluster,
    rate: f64,
    warmup: SimDuration,
    window: SimDuration,
) -> CpsResult {
    let start = cluster.now();
    let wl = CpsWorkload::tcp_crr(
        VNIC,
        VPC,
        SERVICE_ADDR,
        SERVICE_PORT,
        client_servers(),
        rate,
        warmup + window,
    );
    let mut rng = nezha_sim::rng::SimRng::new(cluster.cfg.seed ^ rate as u64);
    let specs = wl.generate(start, &mut rng);
    for s in specs {
        cluster.add_conn(s).unwrap();
    }
    // Run past the end so in-flight connections finish.
    cluster.run_until(start + warmup + window + SimDuration::from_secs(2));
    // Count completions whose bin falls inside the measurement window.
    let w0 = (start + warmup).as_secs_f64();
    let w1 = (start + warmup + window).as_secs_f64();
    let stats = cluster.stats();
    let completed: f64 = stats
        .cps_series
        .points()
        .iter()
        .filter(|(t, _)| *t >= w0 && *t < w1)
        .map(|(_, v)| v)
        .sum();
    CpsResult {
        cps: completed / window.as_secs_f64(),
        offered: rate,
        loss_rate: stats.pkts.loss_rate(),
    }
}

/// Manually offloads the test vNIC and lets the transition complete.
pub fn offload_and_settle(cluster: &mut Cluster) {
    cluster
        .trigger_offload(VNIC, cluster.now())
        .expect("offload");
    let t = cluster.now();
    cluster.run_until(t + SimDuration::from_secs(3));
    assert_eq!(
        cluster.backend(VNIC).map(|m| m.phase),
        Some(nezha_core::be::OffloadPhase::Offloaded),
        "offload did not reach the final stage"
    );
}

/// Sweeps probe latency at a given instant: injects `n` probes with
/// distinct tuples 1 ms apart and returns their mean latency (seconds).
pub fn probe_latency(cluster: &mut Cluster, n: usize) -> f64 {
    let before = cluster.stats().probe_latency.len();
    let t0 = cluster.now();
    for i in 0..n {
        let tuple = nezha_types::FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 9, (i % 250) as u8 + 1),
            20_000 + i as u16,
            SERVICE_ADDR,
            SERVICE_PORT,
        );
        cluster
            .inject_probe_rx(
                VNIC,
                tuple,
                64,
                client_servers()[i % 8],
                t0 + SimDuration::from_millis(i as u64),
            )
            .unwrap();
    }
    cluster.run_until(t0 + SimDuration::from_millis(n as u64 + 500));
    let stats = cluster.stats();
    let lats = &stats.probe_latency.raw()[before..];
    if lats.is_empty() {
        return f64::NAN;
    }
    lats.iter().sum::<f64>() / lats.len() as f64
}

/// The scaled testbed's nominal local CPS capacity (denominator of every
/// gain figure).
pub fn local_capacity(cluster: &Cluster) -> f64 {
    let cfg = cluster.cfg.vswitch;
    let vnic = Vnic::new(VNIC, VPC, SERVICE_ADDR, VnicProfile::default(), HOME);
    cfg.capacity_hz() / vnic.crr_cycles(&cfg.costs, 64) as f64
}

/// Finds the sustainable CPS capacity by bisection: the largest offered
/// rate whose goodput stays within 7% of the offer. This mirrors how
/// closed-loop tools like netperf TCP_CRR report "capability" — they
/// self-clock at the achievable rate instead of collapsing the switch
/// with an open-loop flood.
pub fn find_capacity(mut build: impl FnMut() -> Cluster, lo: f64, hi: f64) -> f64 {
    let warm = SimDuration::from_millis(300);
    let win = SimDuration::from_millis(700);
    let supports = |build: &mut dyn FnMut() -> Cluster, rate: f64| {
        let mut cluster = build();
        let r = measure_cps(&mut cluster, rate, warm, win);
        r.cps >= 0.93 * rate
    };
    let (mut lo, mut hi) = (lo, hi);
    if supports(&mut build, hi) {
        return hi;
    }
    for _ in 0..7 {
        let mid = 0.5 * (lo + hi);
        if supports(&mut build, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

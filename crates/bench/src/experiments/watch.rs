//! `watch` — the live observability view: windowed rollups, SLO
//! watchdog events, and Prometheus/JSONL exports.
//!
//! Two configs:
//!
//! * `chaos` (default) — the packet-level testbed under the chaos crash
//!   scenario (steady TCP_CRR load, an FE crash at t = 6 s, restart at
//!   t = 11 s) with 1-second windows. The run is stepped window by
//!   window, printing one live table row per closed window, and the SLO
//!   watchdog must catch the crash: the run asserts at least one breach
//!   event, so `scripts/check.sh --fast` uses this as the observability
//!   smoke.
//! * `region` — the fluid region simulator through a production day,
//!   one window per epoch, with the region SLO rule set.
//!
//! `--jsonl=PATH` writes the full window stream (one JSON object per
//! line) and `PATH.slo` with the SLO event log; `--prom=PATH` writes
//! the final metrics snapshot in Prometheus text format. All three
//! artifacts are deterministic: same seed ⇒ byte-identical files, for
//! any shard count.

use crate::experiments::harness::{self, Harness, TestbedOpts};
use crate::experiments::Experiment;
use crate::output::*;
use nezha_core::region::{Region, RegionConfig, Scenario};
use nezha_sim::fault::FaultPlan;
use nezha_sim::metrics::MetricsRegistry;
use nezha_sim::obs::{prometheus_text, SloRule, WindowRecord, WindowedRollup};
use nezha_sim::report::BenchReport;
use nezha_sim::time::SimDuration;
use nezha_workloads::cps::CpsWorkload;

/// Window width on the chaos config.
const CHAOS_WINDOW: SimDuration = SimDuration::from_secs(1);
/// Simulated seconds the chaos config runs (load + drain).
const CHAOS_RUN_SECS: u64 = 18;

/// The registry entry.
pub struct Watch {
    config: String,
    jsonl: Option<String>,
    prom: Option<String>,
}

impl Default for Watch {
    fn default() -> Self {
        Watch {
            config: "chaos".into(),
            jsonl: None,
            prom: None,
        }
    }
}

impl Experiment for Watch {
    fn name(&self) -> &'static str {
        "watch"
    }

    fn configure(&mut self, args: &[String]) -> Result<(), String> {
        for a in args {
            if let Some(cfg) = a.strip_prefix("--config=") {
                match cfg {
                    "chaos" | "region" => self.config = cfg.to_string(),
                    other => return Err(format!("watch: unknown --config={other}")),
                }
            } else if let Some(path) = a.strip_prefix("--jsonl=") {
                self.jsonl = Some(path.to_string());
            } else if let Some(path) = a.strip_prefix("--prom=") {
                self.prom = Some(path.to_string());
            } else {
                return Err(format!(
                    "watch: unknown argument {a} (expected \
                     --config=chaos|region, --jsonl=PATH, --prom=PATH)"
                ));
            }
        }
        Ok(())
    }

    fn run(&mut self, _harness: &mut Harness) -> BenchReport {
        match self.config.as_str() {
            "region" => watch_region(self),
            _ => watch_chaos(self),
        }
    }
}

/// The SLO rule set the chaos watch runs (all window-delta based).
fn chaos_rules() -> Vec<SloRule> {
    vec![
        SloRule::loss_rate_above("pkt_loss", "pkt.dropped", "pkt.ok", 0.01),
        SloRule::p99_above("conn_p99", "latency.conn", 0.01),
        SloRule::p99_above("detect_slow", "fault.detection_latency", 4.0),
        SloRule::fairness_below("fe_imbalance", "fe.rx_pkts", 0.4),
    ]
}

/// The SLO rule set the region watch runs (mirrors the unit tests in
/// `nezha_core::region`).
fn region_rules() -> Vec<SloRule> {
    vec![
        SloRule::p99_above("cpu_p99_hot", "region.util.cpu", 0.60),
        SloRule::counter_above("flash_crowd", "region.flash_crowds", 0),
        SloRule::fairness_below("overload_skew", "region.overload.", 0.35),
    ]
}

/// Prints one live table row for a freshly closed window.
fn window_row(rec: &WindowRecord, rollup: &WindowedRollup, widths: &[usize]) {
    let ok = rec.counter("pkt.ok");
    let dropped = rec.counter("pkt.dropped");
    let total = ok + dropped;
    let loss = if total == 0 {
        0.0
    } else {
        dropped as f64 / total as f64
    };
    let p99 = rec
        .hist("latency.conn")
        .map_or("-".into(), |s| format!("{:.1}ms", s.p99 * 1e3));
    let events = rollup
        .watchdog()
        .events()
        .iter()
        .filter(|e| e.window == rec.index)
        .count();
    row(
        &[
            rec.index.to_string(),
            eng(ok as f64),
            eng(dropped as f64),
            pct(loss),
            p99,
            rec.counter("ctrl.failover_events").to_string(),
            events.to_string(),
        ],
        widths,
    );
}

/// The chaos watch: stepped live run, asserting the watchdog fires.
fn watch_chaos(opts: &Watch) -> BenchReport {
    banner(
        "watch",
        "Live windowed rollups under the chaos crash scenario",
    );
    let mut cluster = harness::testbed(TestbedOpts::scaled());
    cluster.enable_windows(CHAOS_WINDOW, 64, chaos_rules());
    harness::offload_and_settle(&mut cluster);
    let cap = harness::local_capacity(&cluster);

    let start = cluster.now();
    let wl = CpsWorkload::tcp_crr(
        harness::VNIC,
        harness::VPC,
        harness::SERVICE_ADDR,
        harness::SERVICE_PORT,
        harness::client_servers(),
        1.5 * cap,
        SimDuration::from_secs(14),
    );
    let mut rng = nezha_sim::rng::SimRng::new(14);
    let mut conns = 0u64;
    for s in wl.generate(start, &mut rng) {
        cluster.add_conn(s).unwrap();
        conns += 1;
    }
    let victim = cluster.fe_servers(harness::VNIC)[0];
    let fault_at = start + SimDuration::from_secs(6);
    cluster.apply_fault_plan(
        FaultPlan::new()
            .crash(fault_at, victim)
            .restart(fault_at + SimDuration::from_secs(5), victim),
    );

    let widths = [6usize, 10, 10, 8, 9, 10, 7];
    header(
        &[
            "window",
            "pkt.ok",
            "dropped",
            "loss",
            "conn p99",
            "failovers",
            "events",
        ],
        &widths,
    );
    // Step the run one window at a time; each step closes (at least) one
    // window, which is printed as it lands — the live view.
    let mut shown = cluster.windows().map_or(0, |w| w.closed());
    for step in 0..CHAOS_RUN_SECS {
        cluster.run_until(start + SimDuration::from_secs(step + 1));
        let rollup = cluster.windows().expect("windows enabled");
        for rec in rollup.windows().filter(|r| r.index >= shown) {
            window_row(rec, rollup, &widths);
        }
        shown = rollup.closed();
    }
    println!();

    let rollup = cluster.windows().expect("windows enabled");
    let events = rollup.watchdog().events();
    println!("  SLO events ({}):", events.len());
    for e in events {
        println!("    {}", e.json_line());
    }
    assert!(
        !events.is_empty(),
        "watch chaos: the crash scenario must trip at least one SLO rule"
    );
    let breaches = events
        .iter()
        .filter(|e| e.edge == nezha_sim::obs::SloEdge::Breach)
        .count();

    let report = BenchReport::new("watch.chaos")
        .config("window_secs", CHAOS_WINDOW.as_secs_f64())
        .config("seed", cluster.cfg.seed)
        .metric("conns_offered", conns as f64, "conns")
        .metric("windows_closed", rollup.closed() as f64, "windows")
        .metric("slo_events", events.len() as f64, "events")
        .metric("slo_breaches", breaches as f64, "events");
    write_artifacts(opts, rollup, &cluster.metrics().snapshot());
    report
}

/// The region watch: one production day, one window per epoch.
fn watch_region(opts: &Watch) -> BenchReport {
    banner("watch", "Windowed rollups over a region production day");
    let reg = MetricsRegistry::new();
    let mut region = Region::new(RegionConfig {
        servers: 2_000,
        shards: 4,
        tenants: 100_000,
        spike_prob: 0.01,
        ..RegionConfig::default()
    });
    region.attach_metrics(&reg);
    region.enable_windows(48, region_rules());
    let _ = region.run_scenario(&Scenario::production_day(), true);

    let rollup = region.windows().expect("windows enabled");
    let widths = [6usize, 10, 10, 10, 10, 7];
    header(
        &[
            "window",
            "cpu p99",
            "overloads",
            "grants",
            "migrations",
            "events",
        ],
        &widths,
    );
    for rec in rollup.windows() {
        let overloads = rec.counter("region.overload.cps")
            + rec.counter("region.overload.flows")
            + rec.counter("region.overload.vnics");
        let events = rollup
            .watchdog()
            .events()
            .iter()
            .filter(|e| e.window == rec.index)
            .count();
        row(
            &[
                rec.index.to_string(),
                rec.hist("region.util.cpu")
                    .map_or("-".into(), |s| pct(s.p99)),
                overloads.to_string(),
                rec.counter("region.offload_granted").to_string(),
                rec.counter("region.migrations").to_string(),
                events.to_string(),
            ],
            &widths,
        );
    }
    println!();
    let events = rollup.watchdog().events();
    println!("  SLO events ({}):", events.len());
    for e in events {
        println!("    {}", e.json_line());
    }

    let report = BenchReport::new("watch.region")
        .config("servers", 2_000)
        .config("shards", 4)
        .metric("windows_closed", rollup.closed() as f64, "windows")
        .metric("slo_events", events.len() as f64, "events");
    write_artifacts(opts, rollup, &reg.snapshot());
    report
}

/// Writes the requested export artifacts: `--jsonl=PATH` (window stream,
/// plus `PATH.slo` with the event log) and `--prom=PATH` (final snapshot
/// in Prometheus text format). Write errors warn, never abort.
fn write_artifacts(
    opts: &Watch,
    rollup: &WindowedRollup,
    snap: &nezha_sim::metrics::MetricsSnapshot,
) {
    if let Some(path) = &opts.jsonl {
        match std::fs::write(path, rollup.jsonl()) {
            Ok(()) => println!("  wrote {path} ({} windows)", rollup.closed()),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        }
        let slo_path = format!("{path}.slo");
        match std::fs::write(&slo_path, rollup.watchdog().events_jsonl()) {
            Ok(()) => println!(
                "  wrote {slo_path} ({} events)",
                rollup.watchdog().events().len()
            ),
            Err(e) => eprintln!("warning: cannot write {slo_path}: {e}"),
        }
    }
    if let Some(path) = &opts.prom {
        match std::fs::write(path, prometheus_text(snap)) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        }
    }
}

//! Fig. A1 — VM migration downtime vs. vCPU count and memory size.
//!
//! Paper: migration completion time and downtime grow with purchased
//! resources; a 1024 GB VM takes tens of minutes. Nezha's alternative —
//! updating the BE location config on the FEs — takes effect in <1 ms
//! regardless of VM size (§7.2).

use crate::output::*;
use nezha_core::migration::MigrationModel;

/// Runs the experiment.
pub fn run() {
    banner("Fig. A1", "VM migration downtime vs. vCPUs and memory");
    let m = MigrationModel::default();
    let widths = [10usize, 10, 12, 14, 12];
    let reg = nezha_sim::metrics::MetricsRegistry::new();

    header(
        &["vCPUs", "mem(GB)", "tables(MB)", "completion", "downtime"],
        &widths,
    );
    for (vcpus, mem_gb, tables_mb) in [
        (8u32, 16.0, 8u64),
        (16, 64.0, 8),
        (32, 128.0, 16),
        (64, 256.0, 64),
        (128, 512.0, 128),
        (128, 1024.0, 200),
    ] {
        let c = m.migrate(mem_gb, vcpus, tables_mb << 20);
        let labels = [("mem_gb", format!("{mem_gb:.0}"))];
        reg.set(
            reg.gauge("fig_a1.migration_completion_secs", &labels),
            c.completion.as_secs_f64(),
        );
        reg.set(
            reg.gauge("fig_a1.migration_downtime_secs", &labels),
            c.downtime.as_secs_f64(),
        );
        row(
            &[
                vcpus.to_string(),
                format!("{mem_gb:.0}"),
                tables_mb.to_string(),
                format!("{:.1}s", c.completion.as_secs_f64()),
                format!("{:.2}s", c.downtime.as_secs_f64()),
            ],
            &widths,
        );
    }
    let r = m.nezha_redirect();
    println!();
    println!(
        "  Nezha BE-location redirect: completion {:.2} ms, downtime {:.2} ms — size-independent",
        r.completion.as_millis_f64(),
        r.downtime.as_millis_f64()
    );
    println!("  paper: 1024 GB VM migration takes tens of minutes; Nezha redirect < 1 ms");
    reg.set(
        reg.gauge("fig_a1.nezha_redirect_downtime_secs", &[]),
        r.downtime.as_secs_f64(),
    );
    emit_snapshot("fig_a1", &reg.snapshot());
}

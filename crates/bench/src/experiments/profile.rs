//! `profile` — cycle attribution with causal BE↔FE span tracing.
//!
//! Not a paper figure: the observability walkthrough behind every other
//! experiment. Runs the scaled §6.1 testbed offloaded onto 4 FEs with the
//! profiler enabled, prints the per-stage cycle-share table, reconciles
//! the attribution against the CPU model's charged total (must agree
//! within 0.1%), shows one packet's BE → FE → BE causal chain, and
//! exports the flamegraph / Chrome-trace artifacts (`NEZHA_PROFILE_DIR`).

use crate::experiments::harness::{self, Harness, TestbedOpts};
use crate::experiments::Experiment;
use crate::output::*;
use nezha_core::conn::{ConnKind, ConnSpec};
use nezha_sim::profile::Profiler;
use nezha_sim::report::BenchReport;
use nezha_sim::time::SimDuration;
use nezha_types::{FiveTuple, Ipv4Addr};

/// Span-ring capacity: comfortably holds the measurement window's spans
/// at the scaled testbed's rates (aggregates are unbounded regardless).
const SPAN_CAPACITY: usize = 1 << 16;

/// Offered TCP_CRR rate during the profiled window (well below the
/// 4-FE capability so drops stay rare and the trees stay complete).
const RATE: f64 = 2_000.0;

/// Builds the offloaded scaled testbed, runs one TCP_CRR measurement
/// with the profiler on, and returns the profiler plus the cycles the
/// CPU model charged while it was enabled. Deterministic: same `opts`
/// produce byte-identical flamegraph / Chrome-trace artifacts.
pub fn run_profiled(opts: TestbedOpts) -> (Profiler, f64) {
    let mut cluster = harness::testbed(opts);
    // Notify on every FE miss so the BE → FE → notify → BE causal chain
    // shows up in the span trees (the default testbed's stats policies
    // are all zero, which would never trigger the §3.2.2 notify).
    cluster.cfg.notify_always = true;
    harness::offload_and_settle(&mut cluster);
    let base = cluster.total_charged_cycles();
    cluster.enable_profile(SPAN_CAPACITY);
    // A handful of outbound connections: the VM-initiated TX side is what
    // takes FE misses (inbound flows are cached by their RX SYN first),
    // so these are the packets whose trees carry the notify hop.
    let t0 = cluster.now();
    for i in 0..64u32 {
        cluster
            .add_conn(ConnSpec {
                vnic: harness::VNIC,
                vpc: harness::VPC,
                tuple: FiveTuple::tcp(
                    harness::SERVICE_ADDR,
                    30_000 + i as u16,
                    Ipv4Addr::new(10, 7, 3, (i % 200) as u8 + 1),
                    4433,
                ),
                peer_server: harness::client_servers()[(i % 8) as usize],
                kind: ConnKind::Outbound,
                start: t0 + SimDuration::from_micros(500 * i as u64),
                payload: 100,
                overlay_encap_src: None,
            })
            .expect("outbound conn");
    }
    harness::measure_cps(
        &mut cluster,
        RATE,
        SimDuration::from_millis(200),
        SimDuration::from_millis(800),
    );
    let charged = cluster.total_charged_cycles() - base;
    (cluster.profiler().clone(), charged)
}

/// The registry entry: cycle attribution with causal span tracing.
pub struct Profile;

impl Experiment for Profile {
    fn name(&self) -> &'static str {
        "profile"
    }

    fn run(&mut self, harness: &mut Harness) -> BenchReport {
        run_report(harness.opts)
    }
}

/// Runs the experiment, printing the tables and returning the typed
/// report (per-stage cycles and the reconciliation outcome).
pub fn run_report(opts: TestbedOpts) -> BenchReport {
    banner("profile", "Cycle attribution and causal BE↔FE span tracing");
    let (prof, charged) = run_profiled(opts);
    let attributed = prof.total_cycles() as f64;

    println!(
        "  scaled testbed, 4 FEs, {} CPS offered; {} span records kept, {} evicted",
        eng(RATE),
        eng(prof.spans().len() as f64),
        eng(prof.evicted() as f64),
    );
    println!();

    let widths = [16usize, 12, 9, 10, 10];
    header(&["stage", "cycles", "share", "bytes", "packets"], &widths);
    let mut totals = prof.stage_totals();
    totals.retain(|(_, t)| t.cycles > 0 || t.packets > 0);
    totals.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(&b.0)));
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    for (name, t) in &totals {
        let labels = [("stage", name.clone())];
        reg.set(reg.gauge("profile.stage_cycles", &labels), t.cycles as f64);
        row(
            &[
                name.clone(),
                eng(t.cycles as f64),
                pct(t.cycles as f64 / attributed.max(1.0)),
                eng(t.bytes as f64),
                eng(t.packets as f64),
            ],
            &widths,
        );
    }
    println!();

    // The tentpole invariant: leaf spans decompose *exactly* what the CPU
    // model charged — a drifting profiler is worse than none.
    let drift = (attributed - charged).abs() / charged.max(1.0);
    println!(
        "  charged (CPU model): {} cycles; attributed: {} (drift {})",
        eng(charged),
        eng(attributed),
        pct(drift),
    );
    assert!(
        drift <= 1e-3,
        "profiler attribution drifted {:.4}% from the charged total",
        drift * 100.0
    );
    reg.set(reg.gauge("profile.charged_cycles", &[]), charged);
    reg.set(reg.gauge("profile.attributed_cycles", &[]), attributed);

    // One packet's causal chain across servers, read from the (unbounded)
    // path table: the notify's ancestry reaches back through the FE visit
    // to the BE that emitted the packet.
    let fg = prof.flamegraph();
    let chain = fg
        .lines()
        .find(|l| l.contains("be_notify"))
        .and_then(|l| l.split(' ').next())
        .map(|path| path.replace(';', " -> "));
    if let Some(chain) = chain {
        println!("  causal chain (one TX miss): {chain}");
    }
    println!();
    println!("  artifacts: set NEZHA_PROFILE_DIR to export profile.folded");
    println!("  (inferno/flamegraph.pl input) and profile.trace.json");
    println!("  (chrome://tracing / Perfetto)");

    emit_profile("profile", &prof);
    BenchReport::new("profile")
        .config("testbed", "scaled")
        .config("offered_cps", RATE)
        .metric("charged_cycles", charged, "cycles")
        .metric("attributed_cycles", attributed, "cycles")
        .metric("reconciliation_drift", drift, "fraction")
        .metric("span_records", prof.spans().len() as f64, "spans")
        .with_snapshot(reg.snapshot())
}

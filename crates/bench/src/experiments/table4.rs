//! Table 4 — completion time for activating offloading.
//!
//! Paper, over a month of production offload events: avg 1077 ms,
//! P90 1503 ms, P99 2087 ms, P999 2858 ms. The completion time is
//! `max(per-FE config push) + gateway update + learning interval` — we
//! sample a month's worth of events from the same model the controller
//! uses, and cross-check against the packet-level cluster's measured
//! activations.

use crate::experiments::harness;
use crate::output::*;
use nezha_core::region::{Region, RegionConfig};
use nezha_sim::stats::Samples;
use nezha_sim::time::SimDuration;

/// Runs the experiment.
pub fn run() {
    banner("Table 4", "Completion time for activating offloading");
    // A month of offload events (paper: one cluster, one month).
    let mut region = Region::new(RegionConfig {
        seed: 44,
        ..RegionConfig::default()
    });
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    let model_hist = reg.histogram("table4.completion_model_secs", &[]);
    let measured_hist = reg.histogram("table4.completion_measured_secs", &[]);
    let mut s = Samples::new();
    for _ in 0..30_000 {
        let d = region.sample_completion();
        s.record_duration(d);
        reg.observe_duration(model_hist, d);
    }
    let ms = |v: f64| format!("{:.0}", v * 1e3);
    header(
        &["source", "avg(ms)", "P90", "P99", "P999"],
        &[22, 8, 8, 8, 8],
    );
    let (mean, _, p90, p99, p999, _) = s.summary();
    row(
        &[
            "model (30K events)".into(),
            ms(mean),
            ms(p90),
            ms(p99),
            ms(p999),
        ],
        &[22, 8, 8, 8, 8],
    );
    row(
        &[
            "paper".into(),
            "1077".into(),
            "1503".into(),
            "2087".into(),
            "2858".into(),
        ],
        &[22, 8, 8, 8, 8],
    );

    // Cross-check: measured activation in the packet-level cluster.
    let mut measured = Samples::new();
    for seed in 0..24 {
        let mut cluster = harness::testbed(harness::TestbedOpts {
            seed: 1000 + seed,
            ..harness::TestbedOpts::scaled()
        });
        cluster
            .trigger_offload(harness::VNIC, cluster.now())
            .unwrap();
        let t = cluster.now();
        cluster.run_until(t + SimDuration::from_secs(6));
        for v in cluster
            .metrics()
            .snapshot()
            .histogram("offload.completion")
            .raw()
        {
            measured.record(*v);
            reg.observe(measured_hist, *v);
        }
    }
    let (m_mean, _, m90, _, _, _) = measured.summary();
    println!();
    println!(
        "  packet-level cross-check over {} activations: avg {} ms, P90 {} ms",
        measured.len(),
        ms(m_mean),
        ms(m90)
    );
    emit_snapshot("table4", &reg.snapshot());
}

//! Table A1 — rule-table lookup throughput vs. packet size and #ACL rules.
//!
//! Paper (Mpps on their SmartNIC): 6.612 at 64 B / 0 rules, degrading to
//! 5.422 at 64 B / 1000 rules and 4.762 at 512 B / 1000 rules. Two
//! reproductions here:
//!
//! 1. the **cost model**: `capacity / lookup_cycles` on the simulated
//!    card, which every experiment uses;
//! 2. the same sweep driven through this repository's actual Rust lookup
//!    code, timed on the **simulated clock** (each iteration charges the
//!    modeled slow-path cost) so the table is identical run-to-run — a
//!    wall-clock variant lives in `cargo bench rule_lookup`. Absolute
//!    numbers differ from the paper's FPGA+CPU card, the shape (monotone
//!    degradation in both axes) is the target.

use crate::output::*;
use nezha_types::{Direction, FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha_vswitch::config::VSwitchConfig;
use nezha_vswitch::pipeline::slow_path_lookup;
use nezha_vswitch::vnic::{Vnic, VnicProfile};

const SIZES: [usize; 4] = [64, 128, 256, 512];
const RULES: [usize; 6] = [0, 1, 8, 64, 100, 1000];

/// Runs the experiment.
pub fn run() {
    banner("Table A1", "Rule-table lookup throughput (Mpps)");
    let cfg = VSwitchConfig::default();

    println!("  (a) simulated card: capacity / lookup cycles");
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    print_grid(|bytes, rules| {
        let mpps = cfg.capacity_hz() / cfg.costs.lookup_cycles(bytes, rules, 0) as f64 / 1e6;
        reg.set(
            reg.gauge(
                "table_a1.model_mpps",
                &[("bytes", bytes.to_string()), ("rules", rules.to_string())],
            ),
            mpps,
        );
        mpps
    });

    println!();
    println!("  (b) this repository's Rust lookup code (single thread)");
    // Pre-build one vNIC per rule count.
    let vnics: Vec<Vnic> = RULES
        .iter()
        .map(|&r| {
            let profile = VnicProfile {
                acl_rules: r,
                ..VnicProfile::default()
            };
            Vnic::new(
                VnicId(1),
                VpcId(1),
                Ipv4Addr::new(10, 7, 0, 1),
                profile,
                ServerId(0),
            )
        })
        .collect();
    // One compiled lookup graph serves every cell, like the real datapath.
    let graph = nezha_vswitch::stage::lookup::lookup_graph();
    print_grid(|bytes, rules| {
        let idx = RULES.iter().position(|&r| r == rules).unwrap();
        let vnic = &vnics[idx];
        // Parsing cost scales with packet size in the real pipeline; here
        // the lookup itself is size-independent, so we fold in a checksum
        // pass over a buffer of the packet size to model per-byte work.
        let buf = vec![0xa5u8; bytes];
        let iters = 60_000usize;
        // The loop executes the repository's real lookup code (kept live
        // via the black-boxed sink), but the reported throughput comes
        // from a simulated cycle counter charged per iteration — wall
        // clock here would make the table vary run-to-run (lint rule D1).
        let mut sim_cycles = 0u64;
        let mut sink = 0u64;
        for i in 0..iters {
            let tuple = FiveTuple::tcp(
                Ipv4Addr::new(10, 7, 1, (i % 200) as u8 + 1),
                (i % 50_000) as u16 + 1024,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            );
            sink ^= nezha_types::headers::internet_checksum(&buf) as u64;
            let r = slow_path_lookup(&graph, vnic, &tuple, Direction::Rx);
            sink ^= r.pair.rx.qos_class as u64;
            sim_cycles += cfg.costs.slow_path_cycles(bytes, rules, 0);
        }
        std::hint::black_box(sink);
        let elapsed_s = sim_cycles as f64 / cfg.capacity_hz();
        iters as f64 / elapsed_s / 1e6
    });
    println!();
    println!("  paper (64B row): 6.612  6.609  6.333  5.973  5.966  5.422 Mpps");
    emit_snapshot("table_a1", &reg.snapshot());
}

fn print_grid(f: impl Fn(usize, usize) -> f64) {
    let widths = [10usize, 8, 8, 8, 8, 8, 8];
    header(&["pkt size", "0", "1", "8", "64", "100", "1000"], &widths);
    for &bytes in &SIZES {
        let mut cells = vec![format!("{bytes}B")];
        for &rules in &RULES {
            cells.push(format!("{:.3}", f(bytes, rules)));
        }
        row(&cells, &widths);
    }
}

//! Fig. 14 — impact of an FE crash on the packet loss rate.
//!
//! Paper: when an FE crashes, the region-level loss rate surges for
//! roughly 2 s — ping detection (3 × 500 ms) plus config propagation —
//! affecting only the ~1/M of traffic hashed to the dead FE, then the
//! failover restores the pool.

use crate::experiments::harness::{self, TestbedOpts};
use crate::output::*;
use nezha_sim::time::{SimDuration, SimTime};
use nezha_workloads::cps::CpsWorkload;

/// Runs the experiment.
pub fn run() {
    banner("Fig. 14", "Impact of an FE crash on packet loss rate");
    let mut cluster = harness::testbed(TestbedOpts::scaled());
    harness::offload_and_settle(&mut cluster);
    let cap = harness::local_capacity(&cluster);

    // Steady traffic for 14 s; crash one FE at t = 6 s.
    let start = cluster.now();
    let wl = CpsWorkload::tcp_crr(
        harness::VNIC,
        harness::VPC,
        harness::SERVICE_ADDR,
        harness::SERVICE_PORT,
        harness::client_servers(),
        1.5 * cap,
        SimDuration::from_secs(14),
    );
    let mut rng = nezha_sim::rng::SimRng::new(14);
    for s in wl.generate(start, &mut rng) {
        cluster.add_conn(s).unwrap();
    }
    let victim = cluster.fe_servers(harness::VNIC)[0];
    let crash_at = start + SimDuration::from_secs(6);
    cluster.crash_at(victim, crash_at);
    cluster.run_until(start + SimDuration::from_secs(16));

    // Loss rate per 100 ms bin around the crash.
    let snap = cluster.metrics().snapshot();
    let ratios = snap.series("pkt.loss").ratio(snap.series("pkt.total"));
    let t0 = crash_at.as_secs_f64();
    let series: Vec<(f64, f64)> = ratios
        .into_iter()
        .filter(|(t, _)| (*t >= t0 - 1.0) && (*t <= t0 + 5.0))
        .collect();
    println!(
        "  crash at t={t0:.1}s; loss rate per 100ms bin (window {:.1}s..{:.1}s):",
        t0 - 1.0,
        t0 + 5.0
    );
    println!(
        "  {}",
        sparkline(&series.iter().map(|(_, v)| *v).collect::<Vec<_>>())
    );

    // Duration of the surge: first and last bins above 0.5% loss.
    let surge: Vec<f64> = series
        .iter()
        .filter(|(_, v)| *v > 0.005)
        .map(|(t, _)| *t)
        .collect();
    let surge_len = if surge.is_empty() {
        0.0
    } else {
        surge.last().unwrap() - surge.first().unwrap() + 0.1
    };
    println!();
    let widths = [28usize, 12, 12];
    header(&["quantity", "measured", "paper"], &widths);
    row(
        &[
            "loss surge duration".into(),
            format!("{surge_len:.1}s"),
            "~2s".into(),
        ],
        &widths,
    );
    let peak = series.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    row(
        &["peak loss rate".into(), pct(peak), "~1/#FEs".into()],
        &widths,
    );
    row(
        &[
            "failovers completed".into(),
            snap.counter("ctrl.failover_events").to_string(),
            "1".into(),
        ],
        &widths,
    );
    let after = SimTime(((t0 + 4.0) * 1e9) as u64);
    row(
        &[
            "loss rate 4s after crash".into(),
            pct(snap.series("pkt.loss").at(after) / snap.series("pkt.total").at(after).max(1.0)),
            "~0".into(),
        ],
        &widths,
    );
    assert!(
        snap.counter("ctrl.failover_events") >= 1,
        "failover must trigger"
    );
    emit_snapshot("fig14", &snap);
}

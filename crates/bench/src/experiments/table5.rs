//! Table 5 — deployment costs of Sailfish vs. Nezha.
//!
//! Qualitative-economic comparison: introducing new hardware (Sailfish,
//! representing all new-device designs) vs. reusing deployed SmartNICs.

use crate::output::*;
use nezha_baselines::cost::{nezha_effort_ratio, DeploymentCost};

/// Runs the experiment.
pub fn run() {
    banner("Table 5", "Deployment costs of Sailfish / Nezha");
    let systems = [DeploymentCost::sailfish(), DeploymentCost::nezha()];
    header(&["", "Sailfish", "Nezha"], &[30, 16, 16]);
    let fmt_pm = |v: u32| {
        if v == 0 {
            "0".to_string()
        } else {
            format!("{v} person-month")
        }
    };
    type CostCell = Box<dyn Fn(&DeploymentCost) -> String>;
    let rows: [(&str, CostCell); 4] = [
        (
            "Hardware development",
            Box::new(move |c| fmt_pm(c.hardware_pm)),
        ),
        (
            "Software development",
            Box::new(move |c| fmt_pm(c.software_pm)),
        ),
        (
            "Extra effort for iteration",
            Box::new(move |c| fmt_pm(c.iteration_pm)),
        ),
        (
            "Time required to scale out",
            Box::new(|c| format!("{}-{} days", c.scale_out.min_days, c.scale_out.max_days)),
        ),
    ];
    for (label, f) in rows {
        row(
            &[label.to_string(), f(&systems[0]), f(&systems[1])],
            &[30, 16, 16],
        );
    }
    println!();
    println!(
        "  Nezha / Sailfish total effort: {} (paper: \"only 10% of the development effort\")",
        pct(nezha_effort_ratio())
    );
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    reg.set(reg.gauge("table5.effort_ratio", &[]), nezha_effort_ratio());
    for c in &systems {
        let sys = [("system", c.name.to_string())];
        reg.add(
            reg.counter("table5.total_pm", &sys),
            (c.hardware_pm + c.software_pm + c.iteration_pm) as u64,
        );
    }
    emit_snapshot("table5", &reg.snapshot());
}

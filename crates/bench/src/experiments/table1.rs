//! Table 1 — normalized distribution of CPS, #concurrent-flow, and #vNIC
//! usage across VMs.
//!
//! Paper: P50 VMs use a fraction of a percent of what P9999 VMs use —
//! e.g. CPS shares 0.53% / 1.41% / 6.41% / 18.38% / 100%. We compute the
//! same normalized percentiles over the synthetic tenant population.

use crate::output::*;
use nezha_sim::rng::SimRng;
use nezha_workloads::tenants::TenantPopulation;

/// Runs the experiment.
pub fn run() {
    banner("Table 1", "Normalized usage distribution across VMs");
    let mut rng = SimRng::new(1);
    let shares = TenantPopulation::default().usage_shares(200_000, &mut rng);

    header(
        &["capability", "P50", "P90", "P99", "P999", "P9999"],
        &[18, 8, 8, 8, 8, 8],
    );
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    for (name, s) in [
        ("CPS", shares.cps),
        ("#concurrent flows", shares.flows),
        ("#vNICs", shares.vnics),
    ] {
        for (p, v) in ["p50", "p90", "p99", "p999", "p9999"].iter().zip(s) {
            reg.set(
                reg.gauge(
                    "table1.usage_share",
                    &[("capability", name.to_string()), ("pct", p.to_string())],
                ),
                v,
            );
        }
        row(
            &[
                name.to_string(),
                pct(s[0]),
                pct(s[1]),
                pct(s[2]),
                pct(s[3]),
                pct(s[4]),
            ],
            &[18, 8, 8, 8, 8, 8],
        );
    }
    println!();
    println!("  paper (CPS row): 0.53%  1.41%  6.41%  18.38%  100%");
    emit_snapshot("table1", &reg.snapshot());
}

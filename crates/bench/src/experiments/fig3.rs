//! Fig. 3 — hotspot (overload-cause) distribution in a region.
//!
//! Paper: CPS causes ≈61% of vSwitch overloads, #concurrent flows ≈30%,
//! #vNICs ≈9% (Appendix A.1). We run the fluid region without Nezha and
//! attribute each overload to its cause.

use crate::output::*;
use nezha_core::region::{Region, RegionConfig};

/// Runs the experiment.
pub fn run() {
    banner("Fig. 3", "Hotspot distribution in a region (pre-Nezha)");
    let mut region = Region::new(RegionConfig {
        servers: 10_000,
        spike_prob: 0.01,
        seed: 3,
        ..RegionConfig::default()
    });
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    region.attach_metrics(&reg);
    let report = region.run_days(20, false);
    let (cps, flows, vnics) = report.totals();
    let total = (cps + flows + vnics) as f64;

    header(&["cause", "overloads", "share", "paper"], &[18, 10, 8, 8]);
    for (name, n, paper) in [
        ("CPS", cps, "61%"),
        ("#concurrent flows", flows, "30%"),
        ("#vNICs", vnics, "9%"),
    ] {
        row(
            &[
                name.to_string(),
                n.to_string(),
                pct(n as f64 / total),
                paper.to_string(),
            ],
            &[18, 10, 8, 8],
        );
    }
    emit_snapshot("fig3", &reg.snapshot());
}

//! Fig. 11 — CPU utilization during offloading and FE scaling.
//!
//! Paper: ramping a vNIC's CPS drives the BE vSwitch's CPU toward the 70%
//! offload threshold; offloading to 4 FEs drops it to ~10% (residual
//! state handling); the continuing ramp pushes the FEs' average CPU past
//! the 40% scale threshold, triggering scale-out to 8 FEs, which halves
//! the per-FE load.
//!
//! Fully automatic here: the controller makes every decision; the
//! experiment only ramps the offered CPS and samples utilizations.

use crate::experiments::harness::{self, TestbedOpts};
use crate::output::*;
use nezha_core::conn::{ConnKind, ConnSpec};
use nezha_sim::rng::SimRng;
use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{FiveTuple, Ipv4Addr};

/// Runs the experiment.
pub fn run() {
    banner(
        "Fig. 11",
        "CPU utilization during offloading/scaling (automatic)",
    );
    let mut cluster = harness::testbed(TestbedOpts {
        auto: true,
        ..TestbedOpts::scaled()
    });
    let total = SimDuration::from_secs(16);
    let local_cap = harness::local_capacity(&cluster);

    // Ramp: offered CPS grows linearly to 1.75x the local capability over
    // the first 10 s — past the 70% offload threshold, then past the
    // 4-FE pool's 40% scale threshold — and holds there, as in the
    // paper's script-driven Fig. 11.
    let mut rng = SimRng::new(11);
    let mut t = SimTime::ZERO;
    let mut n = 0u64;
    while t < SimTime::ZERO + total {
        let frac = (t.as_secs_f64() / 10.0).min(1.0);
        let rate = (1.75 * local_cap * frac).max(200.0);
        t += SimDuration::from_secs_f64(rng.exp(1.0 / rate));
        let client = Ipv4Addr::new(10, 7, 1, (n % 200) as u8 + 1);
        cluster
            .add_conn(ConnSpec {
                vnic: harness::VNIC,
                vpc: harness::VPC,
                tuple: FiveTuple::tcp(
                    client,
                    (10_000 + (n / 200) % 50_000) as u16,
                    harness::SERVICE_ADDR,
                    harness::SERVICE_PORT,
                ),
                peer_server: harness::client_servers()[(n % 8) as usize],
                kind: ConnKind::Inbound,
                start: t,
                payload: 64,
                overlay_encap_src: None,
            })
            .unwrap();
        n += 1;
    }

    // Sample utilizations every 500 ms while the ramp plays out.
    let widths = [8usize, 10, 10, 8, 26];
    header(&["t(s)", "BE CPU", "FE avg", "#FEs", "events"], &widths);
    let mut be_series = Vec::new();
    let mut fe_series = Vec::new();
    let mut last_events = (0u64, 0u64);
    for step in 1..=32 {
        let sample_at = SimTime(step * 500_000_000);
        cluster.run_until(sample_at);
        let be = cluster
            .switch(harness::HOME)
            .unwrap()
            .cpu_utilization(sample_at);
        let fes = cluster.fe_servers(harness::VNIC);
        let fe_avg = if fes.is_empty() {
            0.0
        } else {
            fes.iter()
                .map(|s| cluster.switch(*s).unwrap().cpu_utilization(sample_at))
                .sum::<f64>()
                / fes.len() as f64
        };
        be_series.push(be);
        fe_series.push(fe_avg);
        let snap = cluster.metrics().snapshot();
        let events = (
            snap.counter("ctrl.offload_events"),
            snap.counter("ctrl.scale_out_events"),
        );
        let note = if events.0 > last_events.0 {
            "<- offload triggered"
        } else if events.1 > last_events.1 {
            "<- FE scale-out triggered"
        } else {
            ""
        };
        last_events = events;
        if step % 2 == 0 || !note.is_empty() {
            row(
                &[
                    format!("{:.1}", sample_at.as_secs_f64()),
                    pct(be),
                    pct(fe_avg),
                    fes.len().to_string(),
                    note.to_string(),
                ],
                &widths,
            );
        }
    }
    println!();
    println!("  BE CPU : {}", sparkline(&be_series));
    println!("  FE avg : {}", sparkline(&fe_series));
    let snap = cluster.metrics().snapshot();
    println!(
        "  offloads: {}, scale-outs: {} (paper: offload at 70% -> BE drops to ~10%;",
        snap.counter("ctrl.offload_events"),
        snap.counter("ctrl.scale_out_events")
    );
    println!("  FE scale-out at 40% -> per-FE load halves, 4 -> 8 FEs)");
    emit_snapshot("fig11", &snap);
}

//! Fig. 2 — CPU usage of high-CPS VMs vs. their vSwitches.
//!
//! Paper: every high-CPS VM's vSwitch runs at >95% CPU, while 90% of the
//! VMs themselves stay below 60% — the resource gap that motivates
//! offloading. We sample the tenant population, take the top CPS
//! demanders, and compare their own CPU against the vSwitch CPU their
//! demand induces.

use crate::output::*;
use nezha_sim::rng::SimRng;
use nezha_sim::stats::Samples;
use nezha_vswitch::config::VSwitchConfig;
use nezha_workloads::tenants::TenantPopulation;

/// Runs the experiment.
pub fn run() {
    banner("Fig. 2", "CPU usage of high-CPS VMs and their vSwitches");
    let mut rng = SimRng::new(2);
    let pop = TenantPopulation::default();
    let tenants = pop.sample_many(400_000, &mut rng);
    let vswitch_cap = VSwitchConfig::default().nominal_cps(64, 100, 0);

    // "High-CPS VMs": demand at or beyond the vSwitch's capacity.
    let mut hot: Vec<_> = tenants.iter().filter(|t| t.cps > vswitch_cap).collect();
    hot.sort_by(|a, b| b.cps.total_cmp(&a.cps));

    let mut vm_cpu = Samples::new();
    let mut vs_cpu = Samples::new();
    for t in &hot {
        vm_cpu.record(t.vm_cpu);
        vs_cpu.record((t.cps / vswitch_cap).min(1.0));
    }
    let under60 = hot.iter().filter(|t| t.vm_cpu < 0.6).count() as f64 / hot.len().max(1) as f64;
    let vs_over95 =
        vs_cpu.raw().iter().filter(|&&u| u > 0.95).count() as f64 / vs_cpu.len().max(1) as f64;

    println!("  high-CPS VMs (demand > vSwitch capacity): {}", hot.len());
    header(&["series", "P10", "P50", "P90", "mean"], &[22, 8, 8, 8, 8]);
    for (name, s) in [("VM CPU", &mut vm_cpu), ("vSwitch CPU", &mut vs_cpu)] {
        row(
            &[
                name.to_string(),
                pct(s.percentile(10.0)),
                pct(s.percentile(50.0)),
                pct(s.percentile(90.0)),
                pct(s.mean()),
            ],
            &[22, 8, 8, 8, 8],
        );
    }
    println!();
    println!(
        "  vSwitches above 95% CPU : {} (paper: all)",
        pct(vs_over95)
    );
    println!("  VMs below 60% own CPU   : {} (paper: ~90%)", pct(under60));

    let reg = nezha_sim::metrics::MetricsRegistry::new();
    reg.add(reg.counter("fig2.high_cps_vms", &[]), hot.len() as u64);
    reg.set(reg.gauge("fig2.vswitch_over95_share", &[]), vs_over95);
    reg.set(reg.gauge("fig2.vm_under60_share", &[]), under60);
    emit_snapshot("fig2", &reg.snapshot());
}

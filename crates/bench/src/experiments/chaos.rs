//! Chaos — Fig. 14 / Appendix C recovery behaviour under every scripted
//! fault class of `nezha_sim::fault`.
//!
//! For each class (FE crash, gray-slow member, bursty link loss,
//! partition, controller outage, notify loss) the same steady workload
//! runs for 14 s with the fault injected at t = 6 s, and the loss surge,
//! failover count, and crash-to-failover detection latency are compared
//! against the paper's ~2 s recovery envelope.

use crate::experiments::harness::{self, Harness, TestbedOpts};
use crate::experiments::Experiment;
use crate::output::*;
use nezha_core::cluster::Cluster;
use nezha_sim::fault::{FaultPlan, GilbertElliott};
use nezha_sim::report::BenchReport;
use nezha_sim::time::{SimDuration, SimTime};
use nezha_workloads::cps::CpsWorkload;

struct Outcome {
    surge_len: f64,
    peak_loss: f64,
    failovers: u64,
    detection: Option<f64>,
    completed: u64,
    degraded: u64,
}

/// One fault-class scenario: fresh testbed, 14 s of steady traffic,
/// the plan built by `mk_plan(cluster, fault_at)` applied at t = 6 s.
fn scenario(id: &str, mk_plan: impl Fn(&Cluster, SimTime) -> FaultPlan) -> Outcome {
    let mut cluster = harness::testbed(TestbedOpts::scaled());
    harness::offload_and_settle(&mut cluster);
    let cap = harness::local_capacity(&cluster);

    let start = cluster.now();
    let wl = CpsWorkload::tcp_crr(
        harness::VNIC,
        harness::VPC,
        harness::SERVICE_ADDR,
        harness::SERVICE_PORT,
        harness::client_servers(),
        1.5 * cap,
        SimDuration::from_secs(14),
    );
    let mut rng = nezha_sim::rng::SimRng::new(14);
    let mut total = 0u64;
    for s in wl.generate(start, &mut rng) {
        cluster.add_conn(s).unwrap();
        total += 1;
    }
    let fault_at = start + SimDuration::from_secs(6);
    cluster.apply_fault_plan(mk_plan(&cluster, fault_at));
    cluster.run_until(start + SimDuration::from_secs(18));

    let snap = cluster.metrics().snapshot();
    let t0 = fault_at.as_secs_f64();
    let series: Vec<(f64, f64)> = snap
        .series("pkt.loss")
        .ratio(snap.series("pkt.total"))
        .into_iter()
        .filter(|(t, _)| (*t >= t0 - 1.0) && (*t <= t0 + 6.0))
        .collect();
    let surge: Vec<f64> = series
        .iter()
        .filter(|(_, v)| *v > 0.005)
        .map(|(t, _)| *t)
        .collect();
    let surge_len = if surge.is_empty() {
        0.0
    } else {
        surge.last().unwrap() - surge.first().unwrap() + 0.1
    };
    let det = snap.histogram("fault.detection_latency");
    let outcome = Outcome {
        surge_len,
        peak_loss: series.iter().map(|(_, v)| *v).fold(0.0, f64::max),
        failovers: snap.counter("ctrl.failover_events"),
        detection: if det.is_empty() {
            None
        } else {
            Some(det.mean())
        },
        completed: snap.counter("conn.completed"),
        degraded: snap.counter("ctrl.degraded_events"),
    };
    println!(
        "  {id}: completed {}/{total}, loss per 100ms bin around the fault:",
        outcome.completed
    );
    println!(
        "  {}",
        sparkline(&series.iter().map(|(_, v)| *v).collect::<Vec<_>>())
    );
    emit_snapshot(&format!("chaos_{id}"), &snap);
    outcome
}

/// The registry entry: scripted-fault recovery sweep.
pub struct Chaos;

impl Experiment for Chaos {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn run(&mut self, _harness: &mut Harness) -> BenchReport {
        run_report()
    }
}

/// Runs every fault scenario, printing the recovery table and returning
/// the per-fault outcomes as a typed report.
pub fn run_report() -> BenchReport {
    banner(
        "Chaos",
        "Recovery under scripted fault classes (Fig. 14, App. C)",
    );

    let crash = scenario("crash", |c, at| {
        let victim = c.fe_servers(harness::VNIC)[0];
        FaultPlan::new()
            .crash(at, victim)
            .restart(at + SimDuration::from_secs(5), victim)
    });
    let gray = scenario("gray_slow", |c, at| {
        let victim = c.fe_servers(harness::VNIC)[0];
        FaultPlan::new()
            .gray_slow(at, victim, 1_000.0)
            .gray_recover(at + SimDuration::from_secs(2), victim)
    });
    let bursty = scenario("bursty_loss", |c, at| {
        let victim = c.fe_servers(harness::VNIC)[0];
        FaultPlan::new()
            .bursty_loss(at, harness::HOME, victim, GilbertElliott::bursty())
            .link_heal(at + SimDuration::from_secs(3), harness::HOME, victim)
    });
    let partition = scenario("partition", |c, at| {
        let victim = c.fe_servers(harness::VNIC)[0];
        let others: Vec<_> = (0..32)
            .map(nezha_types::ServerId)
            .filter(|s| *s != victim)
            .collect();
        FaultPlan::new()
            .partition(at, vec![victim], others)
            .heal_partition(at + SimDuration::from_secs(5))
    });
    let outage = scenario("ctrl_outage", |c, at| {
        let victim = c.fe_servers(harness::VNIC)[0];
        FaultPlan::new()
            .controller_outage(at)
            .crash(at + SimDuration::from_millis(250), victim)
            .controller_recover(at + SimDuration::from_secs(3))
    });
    let collapse = scenario("collapse", |c, at| {
        let mut plan = FaultPlan::new();
        for fe in c.fe_servers(harness::VNIC) {
            plan = plan.crash(at, fe);
        }
        plan
    });

    println!();
    let widths = [14usize, 10, 10, 10, 12, 10];
    header(
        &[
            "fault",
            "surge",
            "peak loss",
            "failovers",
            "detection",
            "degraded",
        ],
        &widths,
    );
    for (name, o) in [
        ("crash", &crash),
        ("gray_slow", &gray),
        ("bursty_loss", &bursty),
        ("partition", &partition),
        ("ctrl_outage", &outage),
        ("collapse", &collapse),
    ] {
        row(
            &[
                name.into(),
                format!("{:.1}s", o.surge_len),
                pct(o.peak_loss),
                o.failovers.to_string(),
                o.detection.map_or("-".into(), |d| format!("{d:.2}s")),
                o.degraded.to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!("  paper: crash surge ~2s (3×500ms pings + config push); gray/");
    println!("  bursty faults ride on retries without failover; a controller");
    println!("  outage stretches detection by its length; total collapse");
    println!("  degrades to local processing instead of dropping the VM.");

    assert!(crash.failovers >= 1, "crash must fail over");
    assert_eq!(gray.failovers, 0, "gray-slow must not fail over");
    assert!(
        outage.detection.unwrap_or(0.0) > crash.detection.unwrap_or(f64::MAX),
        "controller outage must delay detection"
    );

    let mut report = BenchReport::new("chaos").config("testbed", "scaled");
    for (name, o) in [
        ("crash", &crash),
        ("gray_slow", &gray),
        ("bursty_loss", &bursty),
        ("partition", &partition),
        ("ctrl_outage", &outage),
        ("collapse", &collapse),
    ] {
        report = report
            .metric(format!("{name}.completed"), o.completed as f64, "conns")
            .metric(format!("{name}.failovers"), o.failovers as f64, "events")
            .metric(format!("{name}.surge_len"), o.surge_len, "s")
            .metric(format!("{name}.peak_loss"), o.peak_loss, "fraction")
            .metric(format!("{name}.degraded"), o.degraded as f64, "events");
    }
    report
}

//! Fig. 12 — end-to-end latency with/without Nezha vs. load.
//!
//! Paper: below the 70% offload threshold the curves are identical (no
//! offload); around 80% the Nezha curve sits ~10 µs higher (the extra
//! BE↔FE hop); past ~90% the local-only curve explodes as the vSwitch
//! queue grows, while Nezha's stays flat.

use crate::experiments::harness::{self, TestbedOpts};
use crate::output::*;
use nezha_sim::time::SimDuration;

const LOADS: [f64; 8] = [0.2, 0.4, 0.6, 0.7, 0.8, 0.9, 0.95, 1.05];

/// Runs the experiment.
pub fn run() {
    banner("Fig. 12", "End-to-end latency with/without Nezha");
    let widths = [12usize, 14, 14];
    header(&["load (x cap)", "w/o Nezha", "with Nezha"], &widths);

    let mut without_series = Vec::new();
    let mut with_series = Vec::new();
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    for &f in &LOADS {
        // Without Nezha.
        let mut base = harness::testbed(TestbedOpts::scaled());
        base.nezha_enabled = false;
        let cap = harness::local_capacity(&base);
        let lat_wo = latency_under_load(&mut base, f * cap);

        // With Nezha: the controller offloads only past its threshold, so
        // below 70% the packet path is identical by construction.
        let mut nez = harness::testbed(TestbedOpts::scaled());
        if f >= 0.7 {
            harness::offload_and_settle(&mut nez);
        }
        let lat_w = latency_under_load(&mut nez, f * cap);

        without_series.push(lat_wo);
        with_series.push(lat_w);
        let load = [("load", format!("{f:.2}"))];
        reg.set(reg.gauge("fig12.latency_without_nezha", &load), lat_wo);
        reg.set(reg.gauge("fig12.latency_with_nezha", &load), lat_w);
        row(
            &[
                format!("{f:.2}"),
                format!("{:.1}us", lat_wo * 1e6),
                format!("{:.1}us", lat_w * 1e6),
            ],
            &widths,
        );
    }
    println!();
    println!("  w/o Nezha : {}", sparkline(&without_series));
    println!("  with Nezha: {}", sparkline(&with_series));
    println!("  paper: identical below 70%; ~10us extra hop around 80%; without");
    println!("  Nezha latency deteriorates rapidly beyond ~90% load");
    emit_snapshot("fig12", &reg.snapshot());
}

/// Applies `rate` CPS of background load, then probes latency mid-run.
fn latency_under_load(cluster: &mut nezha_core::Cluster, rate: f64) -> f64 {
    let start = cluster.now();
    let wl = nezha_workloads::cps::CpsWorkload::tcp_crr(
        harness::VNIC,
        harness::VPC,
        harness::SERVICE_ADDR,
        harness::SERVICE_PORT,
        harness::client_servers(),
        rate.max(100.0),
        SimDuration::from_millis(1200),
    );
    let mut rng = nezha_sim::rng::SimRng::new(12);
    for s in wl.generate(start, &mut rng) {
        cluster.add_conn(s).unwrap();
    }
    // Let the load establish, then probe in the steady window.
    cluster.run_until(start + SimDuration::from_millis(600));
    harness::probe_latency(cluster, 40)
}

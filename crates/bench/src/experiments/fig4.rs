//! Fig. 4 — resource-utilization CDFs over O(10K) vSwitches.
//!
//! Paper values: CPU avg ≈5%, P90 ≈15%, P99 ≈41%, P999 ≈68%, P9999 ≈90%;
//! memory avg ≈1.5%, P90 ≈15%, P99 ≈34%, P999 ≈93%, P9999 ≈96% — the
//! "shortage and waste" paradox. We snapshot the fluid region's per-server
//! utilization.

use crate::output::*;
use nezha_core::region::{Region, RegionConfig};

/// Runs the experiment.
pub fn run() {
    banner("Fig. 4", "Resource utilization CDF on O(10K) vSwitches");
    let mut region = Region::new(RegionConfig {
        servers: 10_000,
        seed: 4,
        ..RegionConfig::default()
    });
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    region.attach_metrics(&reg);
    let mut report = region.run_days(4, false);

    header(
        &[
            "resource",
            "avg",
            "P90",
            "P99",
            "P999",
            "P9999",
            "paper avg/P9999",
        ],
        &[8, 8, 8, 8, 8, 8, 16],
    );
    let (c_mean, _, c90, c99, c999, c9999) = report.cpu_utils.summary();
    row(
        &[
            "CPU".into(),
            pct(c_mean),
            pct(c90),
            pct(c99),
            pct(c999),
            pct(c9999),
            "5% / 90%".into(),
        ],
        &[8, 8, 8, 8, 8, 8, 16],
    );
    let (m_mean, _, m90, m99, m999, m9999) = report.mem_utils.summary();
    row(
        &[
            "memory".into(),
            pct(m_mean),
            pct(m90),
            pct(m99),
            pct(m999),
            pct(m9999),
            "1.5% / 96%".into(),
        ],
        &[8, 8, 8, 8, 8, 8, 16],
    );
    println!();
    println!(
        "  imbalance: CPU P9999 / avg = {:.1}x (paper ~20x), mem P9999 / avg = {:.1}x (paper ~64x)",
        c9999 / c_mean,
        m9999 / m_mean
    );
    emit_snapshot("fig4", &reg.snapshot());
}

//! Fig. 15 — average state size across services in a region.
//!
//! Paper: the fixed 64 B state slab mostly holds 5–8 B of actual state
//! (FSM + first-packet direction for the vast majority of sessions; a
//! decap address or statistics counters for a minority), so variable-
//! length states could lift #concurrent flows by up to 8× (§7.1).
//!
//! We drive four service classes with different stateful-NF mixes
//! through the packet-level testbed, then census the live session
//! tables' `used_bytes`.

use crate::experiments::harness;
use crate::output::*;
use nezha_core::conn::{ConnKind, ConnSpec};
use nezha_core::vm::VmConfig;
use nezha_sim::stats::Samples;
use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{FiveTuple, Ipv4Addr, ServerId, SessionState, VnicId, VpcId};
use nezha_vswitch::vnic::{Vnic, VnicProfile};

struct ServiceClass {
    name: &'static str,
    /// Fraction of flows hitting a statistics (flow-log) policy.
    logged: f64,
    /// Whether the service sits behind an LB (stateful decap).
    decap: bool,
}

/// Runs the experiment.
pub fn run() {
    banner("Fig. 15", "Average state size per service (vs 64B slab)");
    let classes = [
        ServiceClass {
            name: "api-frontend",
            logged: 0.00,
            decap: false,
        },
        ServiceClass {
            name: "web-tier",
            logged: 0.03,
            decap: false,
        },
        ServiceClass {
            name: "lb-real-server",
            logged: 0.00,
            decap: true,
        },
        ServiceClass {
            name: "audited-db",
            logged: 0.09,
            decap: false,
        },
    ];
    let widths = [16usize, 10, 12, 12];
    header(
        &["service", "sessions", "avg state(B)", "slab waste"],
        &widths,
    );

    let mut overall = Samples::new();
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    let state_bytes = reg.histogram("fig15.state_bytes", &[]);
    for (ci, class) in classes.iter().enumerate() {
        let mut cluster = harness::testbed(harness::TestbedOpts::scaled());
        let vnic_id = VnicId(10 + ci as u32);
        let addr = Ipv4Addr::new(10, 8 + ci as u8, 0, 1);
        let profile = VnicProfile {
            stateful_decap: class.decap,
            ..VnicProfile::default()
        };
        let mut vnic = Vnic::new(vnic_id, VpcId(1), addr, profile, ServerId(1));
        vnic.allow_inbound_port(8080);
        cluster
            .add_vnic(vnic, ServerId(1), VmConfig::with_vcpus(16))
            .unwrap();

        // Persistent connections so sessions stay live for the census.
        // "Logged" flows come from the prefixes the statistics policies
        // cover (the upper half of the service /16).
        let n = 2_000usize;
        for i in 0..n {
            let logged = (i as f64 / n as f64) < class.logged;
            let client = if logged {
                Ipv4Addr(addr.masked(16).0 | (128 << 8) | (i as u32 % 250 + 1))
            } else {
                Ipv4Addr(addr.masked(16).0 | (1 << 8) | (i as u32 % 250 + 1))
            };
            cluster
                .add_conn(ConnSpec {
                    vnic: vnic_id,
                    vpc: VpcId(1),
                    tuple: FiveTuple::tcp(
                        client,
                        10_000 + (i / 250) as u16 * 251 + (i % 250) as u16,
                        addr,
                        8080,
                    ),
                    peer_server: ServerId(16 + (i % 8) as u32),
                    kind: ConnKind::PersistentInbound,
                    start: SimTime::ZERO + SimDuration::from_micros(100 * i as u64),
                    payload: 64,
                    overlay_encap_src: class.decap.then_some(Ipv4Addr::new(100, 64, 0, 9)),
                })
                .unwrap();
        }
        cluster.run_until(SimTime::ZERO + SimDuration::from_millis(600));

        let mut sizes = Samples::new();
        for (_, e) in cluster.switch(ServerId(1)).unwrap().sessions.iter() {
            if e.vnic == vnic_id {
                sizes.record(e.state.used_bytes() as f64);
                overall.record(e.state.used_bytes() as f64);
                reg.observe(state_bytes, e.state.used_bytes() as f64);
            }
        }
        row(
            &[
                class.name.to_string(),
                sizes.len().to_string(),
                format!("{:.2}", sizes.mean()),
                pct(1.0 - sizes.mean() / SessionState::SLAB_BYTES as f64),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "  overall mean {:.2} B of a {} B slab -> variable-length states could lift #flows {:.1}x (paper: up to 8x, avg 5-8B)",
        overall.mean(),
        SessionState::SLAB_BYTES,
        SessionState::SLAB_BYTES as f64 / overall.mean()
    );
    emit_snapshot("fig15", &reg.snapshot());
}

//! `bench` — the macro-benchmark: raw simulator speed on the packet
//! datapath.
//!
//! Unlike every other experiment (which reproduces a paper figure), this
//! one measures the *simulator itself*: how many engine events per
//! wall-second the datapath sustains, how much simulated time one
//! wall-second buys, and the process's peak RSS. Two configs:
//!
//! * `testbed` — the full-scale §6.1 testbed (4-core vSwitches, 4 FEs),
//!   one busy vNIC under a steady TCP_CRR load;
//! * `region`  — a 128-server, 4-pod fabric with four busy vNICs
//!   offloaded simultaneously (the scale direction of ROADMAP item 2);
//! * `region10k` — the fluid region simulator at production scale:
//!   10 000 servers and one million lazily-materialized tenants through
//!   a full diurnal production day (flash crowds, churn, migration,
//!   correlated fault waves), executed on 8 shards. Its wall-clock and
//!   peak-RSS budgets are emitted as `budget.*` config entries and
//!   enforced by `scripts/bench_gate.sh`;
//! * `region10k_smoke` — a scaled-down region scenario run at 1, 2, and
//!   4 shards back-to-back, asserting the deterministic payloads are
//!   byte-identical (the shard-equivalence CI smoke).
//!
//! The deterministic section of each report (event counts, simulated
//! seconds, completions) is a pure function of the seed — it doubles as
//! an end-to-end behavior checksum, so the regression gate
//! (`scripts/bench_gate.sh`) can diff it byte-for-byte while applying
//! only a tolerance threshold to the wall-clock section.

use crate::experiments::harness::{self, Harness, TestbedOpts};
use crate::experiments::Experiment;
use crate::output::*;
use nezha_core::cluster::{Cluster, ClusterConfig};
use nezha_core::controller::ControllerConfig;
use nezha_core::region::{Region, RegionConfig, Scenario};
use nezha_core::vm::VmConfig;
use nezha_sim::obs::LogHistogram;
use nezha_sim::report::{reports_json, BenchReport};
use nezha_sim::time::SimDuration;
use nezha_sim::topology::TopologyConfig;
use nezha_types::{Ipv4Addr, ServerId, VnicId, VpcId};
use nezha_vswitch::vnic::{Vnic, VnicProfile};
use nezha_workloads::cps::CpsWorkload;

/// Offered TCP_CRR rate on the testbed config (comfortably below the
/// 4-FE capability so the run exercises the happy path, not collapse).
const TESTBED_RATE: f64 = 120_000.0;
/// Load duration on the testbed config (plus a 2 s drain).
const TESTBED_SECS: u64 = 2;

/// Per-vNIC offered rate on the region config (scaled vSwitches).
const REGION_RATE: f64 = 18_000.0;
/// Load duration on the region config (plus a 2 s drain).
const REGION_SECS: u64 = 1;
/// Busy vNICs on the region config.
const REGION_VNICS: u32 = 4;

/// Servers in the `region10k` scenario (paper: O(10K)).
const REGION10K_SERVERS: usize = 10_000;
/// Tenants in the `region10k` scenario (lazily materialized).
const REGION10K_TENANTS: u64 = 1_000_000;
/// Shards the full `region10k` run executes on.
const REGION10K_SHARDS: u32 = 8;
/// Wall-clock budget for the full `region10k` run, seconds. Enforced by
/// `scripts/bench_gate.sh` (scaled by `NEZHA_BENCH_BUDGET_SCALE`).
const REGION10K_WALL_BUDGET_SECS: f64 = 120.0;
/// Peak-RSS budget for the full `region10k` run, bytes: the point of
/// lazy tenant materialization is that a million tenants never shows up
/// as a million structs.
const REGION10K_RSS_BUDGET_BYTES: f64 = 2.0 * 1024.0 * 1024.0 * 1024.0;

/// The registry entry.
pub struct Bench {
    configs: Vec<String>,
    out: Option<String>,
    phase: String,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            configs: vec!["testbed".into(), "region".into(), "region10k".into()],
            out: std::env::var("NEZHA_BENCH_OUT")
                .ok()
                .filter(|s| !s.is_empty()),
            phase: "current".into(),
        }
    }
}

impl Experiment for Bench {
    fn name(&self) -> &'static str {
        "bench"
    }

    fn configure(&mut self, args: &[String]) -> Result<(), String> {
        for a in args {
            if let Some(cfg) = a.strip_prefix("--config=") {
                match cfg {
                    "testbed" | "region" | "region10k" | "region10k_smoke" => {
                        self.configs = vec![cfg.to_string()]
                    }
                    "all" => {
                        self.configs = vec!["testbed".into(), "region".into(), "region10k".into()]
                    }
                    other => return Err(format!("bench: unknown --config={other}")),
                }
            } else if let Some(path) = a.strip_prefix("--out=") {
                self.out = Some(path.to_string());
            } else if let Some(phase) = a.strip_prefix("--phase=") {
                self.phase = phase.to_string();
            } else {
                return Err(format!(
                    "bench: unknown argument {a} (expected \
                     --config=testbed|region|region10k|region10k_smoke|all, \
                     --out=PATH, --phase=NAME)"
                ));
            }
        }
        Ok(())
    }

    fn run(&mut self, _harness: &mut Harness) -> BenchReport {
        banner("bench", "Macro-benchmark: raw datapath speed");
        let widths = [10usize, 12, 12, 12, 12, 10];
        header(
            &[
                "config",
                "events",
                "events/s",
                "sim-s/wall-s",
                "peak RSS",
                "completed",
            ],
            &widths,
        );
        let mut reports = Vec::new();
        let mut summary = BenchReport::new("bench").config("phase", &self.phase);
        for cfg in &self.configs {
            let r = run_config(cfg).expect("known config");
            row(
                &[
                    cfg.clone(),
                    eng(r.get("events_processed").unwrap_or(0.0)),
                    eng(r.get("events_per_wall_sec").unwrap_or(0.0)),
                    format!("{:.2}", r.get("sim_sec_per_wall_sec").unwrap_or(0.0)),
                    eng(r.get("peak_rss_bytes").unwrap_or(0.0)),
                    eng(r.get("conns_completed").unwrap_or(0.0)),
                ],
                &widths,
            );
            summary = summary
                .metric(
                    format!("{cfg}.events_processed"),
                    r.get("events_processed").unwrap_or(0.0),
                    "events",
                )
                .timing(
                    format!("{cfg}.events_per_wall_sec"),
                    r.get("events_per_wall_sec").unwrap_or(0.0),
                    "1/s",
                );
            emit_report(&r);
            reports.push(r);
        }
        println!();
        if let Some(path) = &self.out {
            let doc = reports_json(&self.phase, &reports);
            match std::fs::write(path, doc) {
                Ok(()) => println!("  wrote {path} (phase: {})", self.phase),
                Err(e) => eprintln!("warning: cannot write {path}: {e}"),
            }
        }
        summary
    }
}

/// Runs one named config. Returns `None` for an unknown name.
pub fn run_config(name: &str) -> Option<BenchReport> {
    match name {
        "testbed" => Some(bench_testbed()),
        "region" => Some(bench_region()),
        "region10k" => Some(bench_region10k()),
        "region10k_smoke" => Some(bench_region10k_smoke()),
        _ => None,
    }
}

/// Measures one loaded cluster: drives `load_secs + 2 s` of simulation,
/// reading the engine's event counter around the run and the wall clock
/// strictly outside the simulated section.
fn measure(id: &str, mut cluster: Cluster, conns: u64, load_secs: u64) -> BenchReport {
    let t0 = cluster.now();
    let deadline = t0 + SimDuration::from_secs(load_secs + 2);
    let events_before = cluster.engine.processed();
    // Wall-clock instrumentation of the simulator's own speed: the reads
    // bracket the run and never feed back into simulated behavior.
    // nezha-lint: allow(D1): measuring simulator wall speed, not sim-visible time
    let wall_start = std::time::Instant::now();
    cluster.run_until(deadline);
    let wall = wall_start.elapsed().as_secs_f64();
    let events = (cluster.engine.processed() - events_before) as f64;
    let sim_secs = cluster.now().since(t0).as_secs_f64();
    let stats = cluster.stats();
    let snap = cluster.metrics().snapshot();
    let latency = LogHistogram::from_samples(&snap.histogram("latency.conn"));
    BenchReport::new(id)
        .percentiles("conn_latency_secs", &latency)
        .config("seed", cluster.cfg.seed)
        .config("load_secs", load_secs)
        .metric("events_processed", events, "events")
        .metric("sim_seconds", sim_secs, "s")
        .metric("conns_offered", conns as f64, "conns")
        .metric("conns_completed", stats.completed as f64, "conns")
        .metric("pkts_dropped", stats.pkts.dropped as f64, "pkts")
        .timing("wall_seconds", wall, "s")
        .timing("events_per_wall_sec", events / wall.max(1e-9), "1/s")
        .timing("sim_sec_per_wall_sec", sim_secs / wall.max(1e-9), "s/s")
        .timing("peak_rss_bytes", peak_rss_bytes() as f64, "bytes")
}

/// The testbed config: full-scale §6.1 testbed, one busy vNIC, 4 FEs.
fn bench_testbed() -> BenchReport {
    let opts = TestbedOpts::default();
    let mut cluster = harness::testbed(opts);
    harness::offload_and_settle(&mut cluster);
    let start = cluster.now();
    let wl = CpsWorkload::tcp_crr(
        harness::VNIC,
        harness::VPC,
        harness::SERVICE_ADDR,
        harness::SERVICE_PORT,
        harness::client_servers(),
        TESTBED_RATE,
        SimDuration::from_secs(TESTBED_SECS),
    );
    let mut rng = nezha_sim::rng::SimRng::new(cluster.cfg.seed ^ 0xbe7c);
    let mut conns = 0u64;
    for s in wl.generate(start, &mut rng) {
        cluster.add_conn(s).unwrap();
        conns += 1;
    }
    measure("bench.testbed", cluster, conns, TESTBED_SECS)
}

/// The region config: 128 servers, four busy vNICs offloaded at once.
fn bench_region() -> BenchReport {
    let cfg = ClusterConfig::builder()
        .topology(TopologyConfig {
            servers_per_rack: 16,
            racks_per_pod: 2,
            pods: 4,
            ..TopologyConfig::default()
        })
        .cores(1)
        .controller(ControllerConfig {
            initial_fes: 4,
            min_fes: 4,
            ..ControllerConfig::default()
        })
        .seed(0x4e5a_0006)
        .build();
    let mut cluster = Cluster::new(cfg);
    let mut vnics = Vec::new();
    for i in 0..REGION_VNICS {
        let id = VnicId(i + 1);
        let addr = Ipv4Addr::new(10, 7, 0, (i + 1) as u8);
        let home = ServerId(i);
        let mut vnic = Vnic::new(id, VpcId(1), addr, VnicProfile::default(), home);
        vnic.allow_inbound_port(9000);
        cluster
            .add_vnic(
                vnic,
                home,
                VmConfig {
                    vcpus: 64,
                    per_core_cps: 13_425.0,
                    ..VmConfig::default()
                },
            )
            .unwrap();
        vnics.push((id, addr));
    }
    for (id, _) in &vnics {
        cluster.trigger_offload(*id, cluster.now()).unwrap();
    }
    let t = cluster.now();
    cluster.run_until(t + SimDuration::from_secs(3));
    let start = cluster.now();
    let clients: Vec<ServerId> = (64..72).map(ServerId).collect();
    let mut conns = 0u64;
    for (i, (id, addr)) in vnics.iter().enumerate() {
        let wl = CpsWorkload::tcp_crr(
            *id,
            VpcId(1),
            *addr,
            9000,
            clients.clone(),
            REGION_RATE,
            SimDuration::from_secs(REGION_SECS),
        );
        let mut rng = nezha_sim::rng::SimRng::new(cluster.cfg.seed ^ (i as u64 + 1));
        for s in wl.generate(start, &mut rng) {
            cluster.add_conn(s).unwrap();
            conns += 1;
        }
    }
    measure("bench.region", cluster, conns, REGION_SECS)
}

/// Runs one region scenario with Nezha on, timing the run and folding
/// the full [`RegionReport`] into the deterministic payload (every
/// metric is a pure function of the seed — and of nothing else, shard
/// count included). The observability plane runs too: per-epoch windows
/// with the region SLO rule set, so the peak-RSS budget covers rollups
/// and the window/SLO counts land in the deterministic section.
fn run_region_scenario(id: &str, cfg: RegionConfig, sc: &Scenario) -> BenchReport {
    let mut region = Region::new(cfg);
    region.enable_windows(
        64,
        vec![
            nezha_sim::obs::SloRule::p99_above("cpu_p99_hot", "region.util.cpu", 0.60),
            nezha_sim::obs::SloRule::counter_above("flash_crowd", "region.flash_crowds", 0),
        ],
    );
    // Wall-clock instrumentation of the simulator's own speed: the reads
    // bracket the run and never feed back into simulated behavior.
    // nezha-lint: allow(D1): measuring simulator wall speed, not sim-visible time
    let wall_start = std::time::Instant::now();
    let mut report = region.run_scenario(sc, true);
    let wall = wall_start.elapsed().as_secs_f64();
    let samples = report.cpu_utils.len() as f64;
    let sim_secs = sc.days as f64 * 24.0 * 3600.0;
    let rollup = region.windows().expect("windows enabled");
    report
        .bench_report(id)
        .metric("windows_closed", rollup.closed() as f64, "windows")
        .metric(
            "slo_events",
            rollup.watchdog().events().len() as f64,
            "events",
        )
        .config("seed", cfg.seed)
        .config("servers", cfg.servers)
        .config("tenants", cfg.tenants)
        .config("epoch_secs", cfg.epoch.as_secs_f64() as u64)
        .config("days", sc.days)
        .metric("events_processed", samples, "samples")
        .timing("wall_seconds", wall, "s")
        .timing("events_per_wall_sec", samples / wall.max(1e-9), "1/s")
        .timing("sim_sec_per_wall_sec", sim_secs / wall.max(1e-9), "s/s")
        .timing("peak_rss_bytes", peak_rss_bytes() as f64, "bytes")
}

/// The production-scale diurnal region scenario: 10 000 servers, one
/// million heavy-tailed tenants, every stressor on, 8 shards. The
/// `budget.*` config entries are the CI budgets `bench_gate.sh`
/// enforces against the timing section.
fn bench_region10k() -> BenchReport {
    let cfg = RegionConfig {
        servers: REGION10K_SERVERS,
        shards: REGION10K_SHARDS,
        tenants: REGION10K_TENANTS,
        epoch: SimDuration::from_secs(1800),
        ..RegionConfig::default()
    };
    run_region_scenario("bench.region10k", cfg, &Scenario::production_day())
        .config("shards", REGION10K_SHARDS)
        .config("budget.wall_seconds", REGION10K_WALL_BUDGET_SECS)
        .config("budget.peak_rss_bytes", REGION10K_RSS_BUDGET_BYTES)
}

/// Scaled-down region scenario run at 1, 2, and 4 shards back-to-back;
/// panics unless the three deterministic payloads are byte-identical.
/// This is the shard-equivalence smoke `scripts/check.sh --fast` runs.
fn bench_region10k_smoke() -> BenchReport {
    let base = RegionConfig {
        servers: 1_000,
        tenants: 50_000,
        spike_prob: 0.01,
        ..RegionConfig::default()
    };
    let sc = Scenario::production_day();
    let mut reference: Option<(u32, String)> = None;
    let mut first = None;
    for shards in [1u32, 2, 4] {
        let id = "bench.region10k_smoke";
        let report = run_region_scenario(id, RegionConfig { shards, ..base }, &sc);
        let det = report.deterministic_json();
        match &reference {
            None => {
                reference = Some((shards, det));
                first = Some(report);
            }
            Some((ref_shards, ref_det)) => {
                assert_eq!(
                    ref_det, &det,
                    "region10k_smoke: {shards}-shard run diverged from the \
                     {ref_shards}-shard run — sharding leaked into results"
                );
            }
        }
    }
    println!("  region10k_smoke: 1/2/4-shard deterministic payloads byte-identical");
    first
        .expect("at least one smoke run")
        .config("shards_checked", "1,2,4")
}

/// The process's peak resident set (`VmHWM`), in bytes; 0 when
/// `/proc/self/status` is unavailable (non-Linux hosts).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_config_is_none() {
        assert!(run_config("nope").is_none());
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        // On Linux this must be nonzero; elsewhere the fallback is 0.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes() > 0);
        }
    }
}

//! One module per paper table/figure, plus the shared testbed harness.
//!
//! Every experiment exposes `run()`, printing a plain-text reproduction
//! of its table or figure with the paper's reference values alongside.

pub mod ablations;
pub mod appendix_b2;
pub mod chaos;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig9;
pub mod fig_a1;
pub mod harness;
pub mod profile;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table_a1;

/// Ids of all experiments, in paper order.
pub const ALL: &[&str] = &[
    "fig2",
    "fig3",
    "fig4",
    "table1",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table3",
    "table4",
    "fig13",
    "fig14",
    "fig15",
    "table5",
    "table_a1",
    "fig_a1",
    "appendix_b2",
    "ablations",
    "chaos",
    "profile",
];

/// Dispatches one experiment by id. Returns false for unknown ids.
pub fn dispatch(id: &str) -> bool {
    match id {
        "fig2" => fig2::run(),
        "fig3" => fig3::run(),
        "fig4" => fig4::run(),
        "table1" => table1::run(),
        "fig9" => fig9::run(),
        "fig10" => fig10::run(),
        "fig11" => fig11::run(),
        "fig12" => fig12::run(),
        "table3" => table3::run(),
        "table4" => table4::run(),
        "fig13" => fig13::run(),
        "fig14" => fig14::run(),
        "fig15" => fig15::run(),
        "table5" => table5::run(),
        "table_a1" => table_a1::run(),
        "fig_a1" => fig_a1::run(),
        "appendix_b2" => appendix_b2::run(),
        "ablations" => ablations::run(),
        "chaos" => chaos::run(),
        "profile" => profile::run(),
        _ => return false,
    }
    true
}

//! One module per paper table/figure, plus the shared testbed harness —
//! all dispatched through one [`Experiment`] registry.
//!
//! Every experiment implements [`Experiment`]: a registry key
//! ([`Experiment::name`], the CLI subcommand), an argument hook
//! ([`Experiment::configure`]), and a typed [`Experiment::run`] that
//! receives the shared [`Harness`] and returns a [`BenchReport`]. The
//! CLI, the bench regression gate, and future experiments all enter
//! through [`dispatch_with`]; there is no per-experiment wiring left.
//!
//! The paper-figure modules keep their original `run()` free functions
//! (plain-text tables plus legacy snapshot lines — those byte-exact
//! outputs are pinned by golden tests) and are adapted into the registry
//! by [`Legacy`]; `profile`, `chaos`, and `bench` implement the trait
//! natively and return fully-populated reports.

pub mod ablations;
pub mod appendix_b2;
pub mod bench;
pub mod chaos;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig9;
pub mod fig_a1;
pub mod harness;
pub mod profile;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table_a1;
pub mod watch;

pub use harness::Harness;
use nezha_sim::report::BenchReport;

/// One runnable experiment behind the registry.
///
/// `name()` is the stable CLI id; `configure()` receives any `--flag`
/// arguments that followed the id on the command line; `run()` does the
/// work and returns the typed report, which the dispatcher hands to
/// [`crate::output::emit_report`].
pub trait Experiment {
    /// The registry key / CLI subcommand (e.g. `"fig9"`).
    fn name(&self) -> &'static str;

    /// Applies CLI arguments. The default accepts none.
    fn configure(&mut self, args: &[String]) -> Result<(), String> {
        if args.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{}: unexpected arguments {args:?}",
                Experiment::name(self)
            ))
        }
    }

    /// Runs the experiment.
    fn run(&mut self, harness: &mut Harness) -> BenchReport;
}

/// Adapter for the paper-figure modules that still expose a bare
/// `run()`: prints exactly what it always printed, returns an id-only
/// report.
struct Legacy {
    name: &'static str,
    run: fn(),
}

impl Experiment for Legacy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&mut self, _harness: &mut Harness) -> BenchReport {
        (self.run)();
        BenchReport::new(self.name)
    }
}

fn legacy(name: &'static str, run: fn()) -> Box<dyn Experiment> {
    Box::new(Legacy { name, run })
}

/// Builds the full registry, in paper order (the order `all` runs).
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        legacy("fig2", fig2::run),
        legacy("fig3", fig3::run),
        legacy("fig4", fig4::run),
        legacy("table1", table1::run),
        legacy("fig9", fig9::run),
        legacy("fig10", fig10::run),
        legacy("fig11", fig11::run),
        legacy("fig12", fig12::run),
        legacy("table3", table3::run),
        legacy("table4", table4::run),
        legacy("fig13", fig13::run),
        legacy("fig14", fig14::run),
        legacy("fig15", fig15::run),
        legacy("table5", table5::run),
        legacy("table_a1", table_a1::run),
        legacy("fig_a1", fig_a1::run),
        legacy("appendix_b2", appendix_b2::run),
        legacy("ablations", ablations::run),
        Box::new(chaos::Chaos),
        Box::new(profile::Profile),
        Box::new(bench::Bench::default()),
        Box::new(watch::Watch::default()),
    ]
}

/// Ids of all experiments, in paper order. Kept in sync with
/// [`registry`] by a unit test.
pub const ALL: &[&str] = &[
    "fig2",
    "fig3",
    "fig4",
    "table1",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table3",
    "table4",
    "fig13",
    "fig14",
    "fig15",
    "table5",
    "table_a1",
    "fig_a1",
    "appendix_b2",
    "ablations",
    "chaos",
    "profile",
    "bench",
    "watch",
];

/// Outcome of a dispatch attempt.
pub enum DispatchOutcome {
    /// The experiment ran; its report was emitted.
    Ran(BenchReport),
    /// No experiment has this id.
    UnknownId,
    /// The id matched but its arguments did not parse.
    BadArgs(String),
}

/// Dispatches one experiment by id, passing `args` to its `configure`.
pub fn dispatch_with(id: &str, args: &[String]) -> DispatchOutcome {
    let Some(mut exp) = registry().into_iter().find(|e| e.name() == id) else {
        return DispatchOutcome::UnknownId;
    };
    if let Err(e) = exp.configure(args) {
        return DispatchOutcome::BadArgs(e);
    }
    let mut harness = Harness::new();
    let report = exp.run(&mut harness);
    crate::output::emit_report(&report);
    DispatchOutcome::Ran(report)
}

/// Dispatches one experiment by id with no arguments. Returns false for
/// unknown ids.
pub fn dispatch(id: &str) -> bool {
    match dispatch_with(id, &[]) {
        DispatchOutcome::Ran(_) => true,
        DispatchOutcome::UnknownId => false,
        DispatchOutcome::BadArgs(e) => {
            eprintln!("{e}");
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_all_ids_in_order() {
        let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
        assert_eq!(names, ALL);
    }

    #[test]
    fn unknown_id_is_reported() {
        assert!(matches!(
            dispatch_with("nope", &[]),
            DispatchOutcome::UnknownId
        ));
    }

    #[test]
    fn default_configure_rejects_arguments() {
        let args = vec!["--bogus".to_string()];
        assert!(matches!(
            dispatch_with("fig2", &args),
            DispatchOutcome::BadArgs(_)
        ));
    }
}

//! Fig. 10 — CPS under different #vCPU cores in the VM.
//!
//! Paper: with Nezha the vSwitch is out of the way, so CPS should grow
//! with VM cores — but kernel locks and connection-management limits make
//! the growth sub-linear and eventually flat; without Nezha the curve is
//! pinned at the vSwitch's capacity regardless of cores.
//!
//! Measured on the quarter-scale packet testbed (all capacity ratios
//! preserved; see `harness::TestbedOpts::scaled`).

use crate::experiments::harness::{self, TestbedOpts};
use crate::output::*;

const VCPUS: [u32; 5] = [8, 16, 32, 48, 64];

/// Runs the experiment.
pub fn run() {
    banner("Fig. 10", "CPS vs #vCPU cores in the VM");
    let widths = [8usize, 12, 12, 12];
    header(&["vCPUs", "with Nezha", "w/o Nezha", "kernel cap"], &widths);
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    for &v in &VCPUS {
        let opts = TestbedOpts {
            vcpus: v,
            ..TestbedOpts::scaled()
        };
        let kernel_cap = harness::testbed(opts)
            .vm(harness::VNIC)
            .unwrap()
            .config()
            .kernel_cps_capacity();
        // With Nezha: capability with 4 FEs armed.
        let with = harness::find_capacity(
            || {
                let mut c = harness::testbed(opts);
                harness::offload_and_settle(&mut c);
                c
            },
            1_000.0,
            1.5 * kernel_cap,
        );
        // Without Nezha: local-only capability.
        let without = harness::find_capacity(
            || {
                let mut c = harness::testbed(opts);
                c.nezha_enabled = false;
                c
            },
            1_000.0,
            1.5 * kernel_cap,
        );
        let vcpus = [("vcpus", v.to_string())];
        reg.set(reg.gauge("fig10.cps_with_nezha", &vcpus), with);
        reg.set(reg.gauge("fig10.cps_without_nezha", &vcpus), without);
        reg.set(reg.gauge("fig10.kernel_cap", &vcpus), kernel_cap);
        row(
            &[v.to_string(), eng(with), eng(without), eng(kernel_cap)],
            &widths,
        );
    }
    println!();
    println!("  paper: with Nezha CPS grows sub-linearly with vCPUs (kernel locks);");
    println!("         without Nezha it stays pinned at the vSwitch's capacity");
    emit_snapshot("fig10", &reg.snapshot());
}

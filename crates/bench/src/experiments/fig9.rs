//! Fig. 9 — performance gain under different #FEs (auto-scaling off).
//!
//! Paper: CPS improvement grows with #FEs and plateaus at ≈3.3× beyond 4
//! FEs (the VM kernel becomes the bottleneck); #concurrent-flow gain
//! plateaus at ≈3.8× (local state memory becomes the bottleneck); #vNIC
//! gain is proportional to #FEs with a theoretical 1000× ceiling from the
//! 2 KB BE metadata.
//!
//! CPS is *measured* on the quarter-scale packet testbed; the memory
//! gains are computed from the byte-accounted capacity models at each
//! pool size.

use crate::experiments::harness::{self, TestbedOpts};
use crate::output::*;
use nezha_types::{Ipv4Addr, ServerId, VnicId, VpcId};
use nezha_vswitch::config::VSwitchConfig;
use nezha_vswitch::vnic::{Vnic, VnicProfile};

const FE_COUNTS: [usize; 5] = [1, 2, 4, 6, 8];

/// Runs the experiment.
pub fn run() {
    banner("Fig. 9", "Performance gain under different #FEs");

    // Baseline: the local-only CPS capability, found by bisection the
    // way a closed-loop netperf TCP_CRR run would.
    let nominal = harness::local_capacity(&harness::testbed(TestbedOpts::scaled()));
    let base = harness::find_capacity(
        || harness::testbed(TestbedOpts::scaled()),
        0.2 * nominal,
        4.2 * nominal,
    );
    println!(
        "  baseline (local-only) capability: {} CPS (nominal model: {})",
        eng(base),
        eng(nominal)
    );
    println!();

    let widths = [8usize, 10, 10, 12, 12];
    header(
        &["#FEs", "CPS", "CPS gain", "#flows gain", "#vNICs gain"],
        &widths,
    );
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    reg.set(reg.gauge("fig9.baseline_cps", &[]), base);
    for &k in &FE_COUNTS {
        let cps = harness::find_capacity(
            || {
                let mut cluster = harness::testbed(TestbedOpts {
                    initial_fes: k,
                    ..TestbedOpts::scaled()
                });
                harness::offload_and_settle(&mut cluster);
                assert_eq!(cluster.fe_count(harness::VNIC), k, "pool size");
                cluster
            },
            0.2 * nominal,
            4.2 * nominal,
        );
        let cfg = harness::testbed(TestbedOpts::scaled()).cfg.vswitch;
        let (flows_gain, vnic_gain) = memory_gains(&cfg, k);
        let fes = [("fes", k.to_string())];
        reg.set(reg.gauge("fig9.cps", &fes), cps);
        reg.set(reg.gauge("fig9.cps_gain", &fes), cps / base);
        reg.set(reg.gauge("fig9.flows_gain", &fes), flows_gain);
        reg.set(reg.gauge("fig9.vnic_gain", &fes), vnic_gain);
        row(
            &[
                k.to_string(),
                eng(cps),
                gain(cps / base),
                gain(flows_gain),
                gain(vnic_gain),
            ],
            &widths,
        );
    }
    println!();
    println!("  paper: CPS plateaus at ~3.3x and #flows at ~3.8x beyond 4 FEs;");
    println!("         #vNICs grows with #FEs toward the 1000x BE-metadata ceiling");
    emit_snapshot("fig9", &reg.snapshot());
}

/// #flows and #vNICs gains at pool size `k`, from the byte models.
///
/// * #flows: locally, a session costs `flow_entry + state_slab` out of the
///   session budget; offloaded, the BE keeps 64 B states in the budget
///   *plus* the freed rule-table bytes, but each live session also needs
///   its cached flow at the FE handling it — with `k` FEs the cached-flow
///   capacity is `k × fe_budget / flow_entry`, which is what makes the
///   gain grow with #FEs before the BE memory plateau (paper §6.2.1).
/// * #vNICs: locally `budget / table_bytes` vNICs fit; offloaded, each
///   vNIC costs 2 KB of BE metadata locally and a full table copy on each
///   of its FEs, so `k` pool members host `k × budget / table_bytes`
///   table sets while the BE ceiling is `budget / 2 KB` (the 1000×).
fn memory_gains(cfg: &VSwitchConfig, k: usize) -> (f64, f64) {
    let m = cfg.memory;
    let vnic = Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    let tables = vnic.table_memory(&m) as f64;
    // The testbed dedicates a session budget sized like its rule tables
    // (a mid-size deployment: ~half the pool to tables, half to sessions).
    let session_budget = 2.0 * tables;
    let fe_budget = session_budget + tables;

    let flows_before = session_budget / (m.flow_entry + m.state_slab) as f64;
    let be_states = (session_budget + tables - m.be_metadata as f64) / m.state_slab as f64;
    // Each FE reserves most of its memory for its own local tenants; ~60%
    // of a session-budget's worth is available for cached flows.
    let fe_flows = k as f64 * 0.6 * session_budget / m.flow_entry as f64;
    let flows_after = be_states.min(fe_flows);

    let budget = fe_budget;
    let vnics_before = (budget / tables).max(1.0);
    let be_ceiling = budget / m.be_metadata as f64;
    let vnics_after = (k as f64 * budget / tables).min(be_ceiling);

    (flows_after / flows_before, vnics_after / vnics_before)
}
